#include "linear/classifier.h"

namespace wmsketch {

std::vector<FeatureWeight> ScanTopK(const BudgetedClassifier& model, size_t k,
                                    uint32_t dimension) {
  TopKHeap heap(k);
  for (uint32_t i = 0; i < dimension; ++i) {
    const float w = model.WeightEstimate(i);
    if (w == 0.0f) continue;
    heap.Offer(i, w);
  }
  return heap.TopK(k);
}

}  // namespace wmsketch
