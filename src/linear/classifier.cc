#include "linear/classifier.h"

#include <limits>
#include <memory>
#include <unordered_map>

namespace wmsketch {

Status BudgetedClassifier::CanMerge(const BudgetedClassifier& other) const {
  (void)other;
  return Status::Unimplemented(Name() + " does not support merging");
}

Status BudgetedClassifier::MergeScaled(const BudgetedClassifier& other, double coeff) {
  (void)other;
  (void)coeff;
  return Status::Unimplemented(Name() + " does not support merging");
}

Status BudgetedClassifier::ScaleWeights(double factor) {
  (void)factor;
  return Status::Unimplemented(Name() + " does not support weight scaling");
}

Status BudgetedClassifier::SetSteps(uint64_t steps) {
  (void)steps;
  return Status::Unimplemented(Name() + " does not support step overrides");
}

std::unique_ptr<BudgetedClassifier> BudgetedClassifier::Clone() const { return nullptr; }

WeightEstimator BudgetedClassifier::EstimatorSnapshot() const {
  // Heap-backed methods (truncation, Space-Saving, CM-FF) keep every nonzero
  // weight behind a tracked identifier, so the full TopK *is* the model.
  auto weights = std::make_shared<std::unordered_map<uint32_t, float>>();
  for (const FeatureWeight& fw : TopK(std::numeric_limits<size_t>::max())) {
    weights->emplace(fw.feature, fw.weight);
  }
  return [weights](uint32_t feature) {
    const auto it = weights->find(feature);
    return it == weights->end() ? 0.0f : it->second;
  };
}

namespace {

/// The default frozen read model: a WeightEstimator closure plus the linear
/// margin over it. Exact for every method whose live PredictMargin is the
/// linear functional of its tracked weights (the Sec. 7 baselines apply one
/// shared lazy scale per margin where this applies it per frozen term, so
/// agreement is up to float rounding of the individual estimates).
class EstimatorReadModel final : public ReadModel {
 public:
  explicit EstimatorReadModel(WeightEstimator estimator)
      : estimator_(std::move(estimator)) {}

  double PredictMargin(const SparseVector& x) const override {
    double acc = 0.0;
    for (size_t i = 0; i < x.nnz(); ++i) {
      acc += static_cast<double>(estimator_(x.index(i))) * static_cast<double>(x.value(i));
    }
    return acc;
  }

  float Estimate(uint32_t feature) const override { return estimator_(feature); }

 private:
  WeightEstimator estimator_;
};

}  // namespace

std::unique_ptr<const ReadModel> BudgetedClassifier::MakeReadModel() const {
  return std::make_unique<EstimatorReadModel>(EstimatorSnapshot());
}

std::vector<FeatureWeight> ScanTopK(const BudgetedClassifier& model, size_t k,
                                    uint32_t dimension) {
  return ScanTopK([&model](uint32_t i) { return model.WeightEstimate(i); }, k, dimension);
}

std::vector<FeatureWeight> ScanTopK(const WeightEstimator& estimator, size_t k,
                                    uint32_t dimension) {
  TopKHeap heap(k);
  for (uint32_t i = 0; i < dimension; ++i) {
    const float w = estimator(i);
    if (w == 0.0f) continue;
    heap.Offer(i, w);
  }
  return heap.TopK(k);
}

}  // namespace wmsketch
