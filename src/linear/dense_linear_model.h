#pragma once

#include <cstdint>
#include <vector>

#include "linear/classifier.h"
#include "util/memory_cost.h"
#include "util/top_k_heap.h"

namespace wmsketch {

/// The memory-*unconstrained* online linear model: a dense weight array of
/// the full feature dimension plus a passive top-K min-heap (the paper's
/// reference configuration stores 32-bit weights for every feature and
/// tracks the heaviest K = 128 with a heap, Sec. 7.4).
///
/// This model plays two roles in the reproduction:
///  1. it is the "LR" line in Figs. 6, 7, 8, 9 and 10, and
///  2. its final weight vector is the w* against which the RelErr recovery
///     metric of Sec. 7.2 compares every budgeted method.
///
/// ℓ2 regularization uses the lazy global-scale trick (Sec. 5.1 /
/// Shalev-Shwartz et al.): the stored array v satisfies w = α·v, decay
/// multiplies α, and gradient writes divide by α, keeping updates
/// O(nnz(x)). The array is re-materialized when α underflows.
class DenseLinearModel final : public BudgetedClassifier {
 public:
  /// Constructs a model over feature ids [0, dimension) tracking the top
  /// `heap_capacity` weights. Requires dimension >= 1, heap_capacity >= 1.
  DenseLinearModel(uint32_t dimension, const LearnerOptions& opts, size_t heap_capacity = 128);

  double PredictMargin(const SparseVector& x) const override;
  double Update(const SparseVector& x, int8_t y) override;
  /// Devirtualized batch ingest (bit-identical to a loop of Update).
  void UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) override;
  float WeightEstimate(uint32_t feature) const override;
  /// Frozen estimator over a materialized copy of the full weight vector
  /// (0 for features outside [0, dimension)).
  WeightEstimator EstimatorSnapshot() const override;
  std::vector<FeatureWeight> TopK(size_t k) const override;
  size_t MemoryCostBytes() const override {
    return TableBytes(weights_.size()) + HeapBytes(heap_.capacity());
  }
  uint64_t steps() const override { return t_; }
  const LearnerOptions& options() const override { return opts_; }
  std::string Name() const override { return "lr"; }

  uint32_t dimension() const { return static_cast<uint32_t>(weights_.size()); }

  /// Materializes the full weight vector w = α·v (the RelErr reference w*).
  std::vector<float> Weights() const;

 private:
  void MaybeRescale();

  LearnerOptions opts_;
  std::vector<float> weights_;  // raw v; true weight = scale_ * v
  double scale_ = 1.0;          // α
  uint64_t t_ = 0;
  TopKHeap heap_;               // raw values, same scale as weights_
};

}  // namespace wmsketch
