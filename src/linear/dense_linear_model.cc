#include "linear/dense_linear_model.h"

#include <cassert>
#include <memory>

namespace wmsketch {

namespace {
// Rescale threshold: keeps raw float values far from overflow even though
// the true weights stay O(1) as the scale shrinks.
constexpr double kMinScale = 1e-25;
}  // namespace

DenseLinearModel::DenseLinearModel(uint32_t dimension, const LearnerOptions& opts,
                                   size_t heap_capacity)
    : opts_(opts), weights_(dimension, 0.0f), heap_(heap_capacity) {
  assert(dimension >= 1);
}

double DenseLinearModel::PredictMargin(const SparseVector& x) const {
  return scale_ * x.Dot(weights_);
}

double DenseLinearModel::Update(const SparseVector& x, int8_t y) {
  const double margin = PredictMargin(x);
  ++t_;
  const double eta = opts_.rate.Rate(t_);
  const double g = opts_.loss->Derivative(static_cast<double>(y) * margin);

  // Lazy decay: w ← (1-ηλ)w via the global scale.
  if (opts_.lambda > 0.0) scale_ *= (1.0 - eta * opts_.lambda);

  // Gradient step: w_i ← w_i − η·y·g·x_i, written through the scale.
  const double step = eta * static_cast<double>(y) * g / scale_;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t idx = x.index(i);
    assert(idx < weights_.size());
    weights_[idx] -= static_cast<float>(step * static_cast<double>(x.value(i)));
    // Passive top-K maintenance on the raw values; the shared scale keeps
    // magnitude order identical to the true weights.
    heap_.Offer(idx, weights_[idx]);
  }
  MaybeRescale();
  return margin;
}

void DenseLinearModel::UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) {
  for (const Example& ex : batch) {
    const double margin = Update(ex.x, ex.y);
    if (margins != nullptr) margins->push_back(margin);
  }
}

WeightEstimator DenseLinearModel::EstimatorSnapshot() const {
  auto weights = std::make_shared<const std::vector<float>>(Weights());
  return [weights](uint32_t feature) {
    return feature < weights->size() ? (*weights)[feature] : 0.0f;
  };
}

void DenseLinearModel::MaybeRescale() {
  if (scale_ >= kMinScale) return;
  const float f = static_cast<float>(scale_);
  for (float& w : weights_) w *= f;
  heap_.Scale(f);
  scale_ = 1.0;
}

float DenseLinearModel::WeightEstimate(uint32_t feature) const {
  assert(feature < weights_.size());
  return static_cast<float>(scale_ * static_cast<double>(weights_[feature]));
}

std::vector<FeatureWeight> DenseLinearModel::TopK(size_t k) const {
  // Re-query current values for the tracked candidates; cheap and exact.
  std::vector<FeatureWeight> out;
  out.reserve(heap_.size());
  for (const FeatureWeight& fw : heap_.Entries()) {
    out.push_back(FeatureWeight{fw.feature, WeightEstimate(fw.feature)});
  }
  SortByMagnitudeAndTruncate(out, k);
  return out;
}

std::vector<float> DenseLinearModel::Weights() const {
  std::vector<float> out(weights_.size());
  for (size_t i = 0; i < weights_.size(); ++i) {
    out[i] = static_cast<float>(scale_ * static_cast<double>(weights_[i]));
  }
  return out;
}

}  // namespace wmsketch
