#include "linear/feature_hashing.h"

#include <cassert>
#include <memory>

#include "util/math.h"

namespace wmsketch {

namespace {
constexpr double kMinScale = 1e-25;
}  // namespace

FeatureHashingClassifier::FeatureHashingClassifier(uint32_t buckets, const LearnerOptions& opts)
    : opts_(opts), hash_(SplitMix64(opts.seed).Next(), buckets), table_(buckets, 0.0f) {
  assert(IsPowerOfTwo(buckets));
}

double FeatureHashingClassifier::PredictMargin(const SparseVector& x) const {
  double acc = 0.0;
  for (size_t i = 0; i < x.nnz(); ++i) {
    uint32_t bucket;
    float sign;
    hash_.BucketAndSign(x.index(i), &bucket, &sign);
    acc += static_cast<double>(sign) * static_cast<double>(table_[bucket]) *
           static_cast<double>(x.value(i));
  }
  return scale_ * acc;
}

double FeatureHashingClassifier::Update(const SparseVector& x, int8_t y) {
  const double margin = PredictMargin(x);
  ++t_;
  const double eta = opts_.rate.Rate(t_);
  const double g = opts_.loss->Derivative(static_cast<double>(y) * margin);
  if (opts_.lambda > 0.0) scale_ *= (1.0 - eta * opts_.lambda);
  const double step = eta * static_cast<double>(y) * g / scale_;
  for (size_t i = 0; i < x.nnz(); ++i) {
    uint32_t bucket;
    float sign;
    hash_.BucketAndSign(x.index(i), &bucket, &sign);
    table_[bucket] -= static_cast<float>(step * static_cast<double>(sign) *
                                         static_cast<double>(x.value(i)));
  }
  MaybeRescale();
  return margin;
}

void FeatureHashingClassifier::UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) {
  for (const Example& ex : batch) {
    const double margin = Update(ex.x, ex.y);
    if (margins != nullptr) margins->push_back(margin);
  }
}

WeightEstimator FeatureHashingClassifier::EstimatorSnapshot() const {
  struct State {
    SignedBucketHash hash;
    std::vector<float> table;
    double scale;
  };
  auto st = std::make_shared<const State>(State{hash_, table_, scale_});
  return [st](uint32_t feature) {
    uint32_t bucket;
    float sign;
    st->hash.BucketAndSign(feature, &bucket, &sign);
    return static_cast<float>(st->scale * static_cast<double>(sign) *
                              static_cast<double>(st->table[bucket]));
  };
}

void FeatureHashingClassifier::MaybeRescale() {
  if (scale_ >= kMinScale) return;
  const float f = static_cast<float>(scale_);
  for (float& w : table_) w *= f;
  scale_ = 1.0;
}

float FeatureHashingClassifier::WeightEstimate(uint32_t feature) const {
  uint32_t bucket;
  float sign;
  hash_.BucketAndSign(feature, &bucket, &sign);
  return static_cast<float>(scale_ * static_cast<double>(sign) *
                            static_cast<double>(table_[bucket]));
}

std::vector<FeatureWeight> FeatureHashingClassifier::TopK(size_t) const { return {}; }

}  // namespace wmsketch
