#include "linear/feature_hashing.h"

#include <cassert>
#include <memory>

#include "sketch/hash_plan.h"
#include "sketch/read_path.h"
#include "util/math.h"
#include "util/simd.h"

namespace wmsketch {

namespace {

constexpr double kMinScale = 1e-25;

/// Frozen feature-hashing read model: the bucket hash, the published pages
/// of the raw table (shared across snapshots; dirtied pages copied), and
/// the resolved scale. A depth-1 "sketch" as far as the paged read paths
/// are concerned (the median of one row is the row itself).
class HashReadModel final : public ReadModel {
 public:
  HashReadModel(SignedBucketHash hash, PageSet<float> pages, double scale)
      : hash_(hash), pages_(std::move(pages)), scale_(scale) {}

  double PredictMargin(const SparseVector& x) const override {
    return readpath::FusedMarginPaged(pages_.view(),
                                      std::span<const SignedBucketHash>(&hash_, 1), x,
                                      scale_);
  }

  void PredictBatch(std::span<const Example> batch, double* out) const override {
    readpath::MarginBatchPaged(pages_.view(),
                               std::span<const SignedBucketHash>(&hash_, 1), batch,
                               scale_, out);
  }

  float Estimate(uint32_t feature) const override {
    return readpath::FusedEstimatePaged(pages_.view(),
                                        std::span<const SignedBucketHash>(&hash_, 1),
                                        feature, scale_);
  }

  void EstimateBatch(std::span<const uint32_t> features, float* out) const override {
    readpath::EstimateBatchPaged(pages_.view(),
                                 std::span<const SignedBucketHash>(&hash_, 1), features,
                                 scale_, out);
  }

  size_t ResidentBytes() const override { return pages_.ResidentBytes(); }

 private:
  SignedBucketHash hash_;
  PageSet<float> pages_;
  double scale_;
};

}  // namespace

FeatureHashingClassifier::FeatureHashingClassifier(uint32_t buckets, const LearnerOptions& opts)
    : opts_(opts), hash_(SplitMix64(opts.seed).Next(), buckets), table_(buckets) {
  assert(IsPowerOfTwo(buckets));
}

double FeatureHashingClassifier::PredictMargin(const SparseVector& x) const {
  // Standalone queries keep the fused loop (one hash per feature already);
  // updates ride the depth-1 plan so their hashes feed both the margin and
  // the scatter.
  double acc = 0.0;
  for (size_t i = 0; i < x.nnz(); ++i) {
    uint32_t bucket;
    float sign;
    hash_.BucketAndSign(x.index(i), &bucket, &sign);
    acc += static_cast<double>(sign) * static_cast<double>(table_.data()[bucket]) *
           static_cast<double>(x.value(i));
  }
  return scale_ * acc;
}

void FeatureHashingClassifier::PredictBatch(std::span<const Example> batch,
                                            double* margins) const {
  readpath::PlanMarginBatch(table_.data(), std::span<const SignedBucketHash>(&hash_, 1),
                            batch, scale_, margins);
}

void FeatureHashingClassifier::EstimateBatch(std::span<const uint32_t> features,
                                             float* out) const {
  readpath::GatherMedianBatch(table_.data(), std::span<const SignedBucketHash>(&hash_, 1),
                              features, scale_, out);
}

std::unique_ptr<const ReadModel> FeatureHashingClassifier::MakeReadModel() const {
  return std::make_unique<HashReadModel>(hash_, table_.SharePages(), scale_);
}

double FeatureHashingClassifier::Update(const SparseVector& x, int8_t y) {
  HashPlan& plan = TlsPlan();
  plan.Build(std::span<const SignedBucketHash>(&hash_, 1), x);
  return UpdateWithPlan(x, y, plan.View(), plan.scratch());
}

double FeatureHashingClassifier::UpdateWithPlan(const SparseVector& x, int8_t y,
                                                const simd::PlanView& plan,
                                                float* scratch) {
  const double margin =
      scale_ * simd::PlanMargin(table_.data(), plan, x.values().data(), scratch);
  ++t_;
  const double eta = opts_.rate.Rate(t_);
  const double g = opts_.loss->Derivative(static_cast<double>(y) * margin);
  if (opts_.lambda > 0.0) scale_ *= (1.0 - eta * opts_.lambda);
  const double step = eta * static_cast<double>(y) * g / scale_;
  table_.MarkPlanDirty(plan.offsets, plan.entries());
  simd::PlanScatter(table_.data(), plan, x.values().data(), step, scratch);
  MaybeRescale();
  return margin;
}

void FeatureHashingClassifier::UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) {
  // Whole-batch hashing into the arena + next-example prefetch, exactly as
  // in the sketches; bit-identical to the per-example loop.
  HashPlanArena& arena = TlsArena();
  arena.Build(std::span<const SignedBucketHash>(&hash_, 1), batch);
  for (size_t e = 0; e < batch.size(); ++e) {
    if (e + 1 < batch.size()) arena.PrefetchTable(table_.data(), e + 1);
    const double margin =
        UpdateWithPlan(batch[e].x, batch[e].y, arena.View(e), arena.scratch());
    if (margins != nullptr) margins->push_back(margin);
  }
}

WeightEstimator FeatureHashingClassifier::EstimatorSnapshot() const {
  // Shares published pages (O(dirty) capture, not O(buckets)).
  struct State {
    SignedBucketHash hash;
    PageSet<float> pages;
    double scale;
  };
  auto st = std::make_shared<const State>(State{hash_, table_.SharePages(), scale_});
  return [st](uint32_t feature) {
    uint32_t bucket;
    float sign;
    st->hash.BucketAndSign(feature, &bucket, &sign);
    return static_cast<float>(st->scale * static_cast<double>(sign) *
                              static_cast<double>(st->pages.view().At(bucket)));
  };
}

void FeatureHashingClassifier::MaybeRescale() {
  if (scale_ >= kMinScale) return;
  table_.MarkAllDirty();
  simd::ScaleTable(table_.data(), table_.size(), static_cast<float>(scale_));
  scale_ = 1.0;
}

float FeatureHashingClassifier::WeightEstimate(uint32_t feature) const {
  uint32_t bucket;
  float sign;
  hash_.BucketAndSign(feature, &bucket, &sign);
  return static_cast<float>(scale_ * static_cast<double>(sign) *
                            static_cast<double>(table_.data()[bucket]));
}

std::vector<FeatureWeight> FeatureHashingClassifier::TopK(size_t) const { return {}; }

}  // namespace wmsketch
