#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "hash/tabulation.h"
#include "linear/classifier.h"
#include "util/memory_cost.h"
#include "util/paged_table.h"
#include "util/simd.h"
#include "util/status.h"

namespace wmsketch {

class FeatureHashingClassifier;
namespace snapshot {
class SnapshotReader;
}
namespace detail {
Status SaveFeatureHashingPayload(const FeatureHashingClassifier&, std::ostream&);
Result<FeatureHashingClassifier> LoadFeatureHashingPayload(snapshot::SnapshotReader&,
                                                           const LearnerOptions&);
}  // namespace detail

/// The feature-hashing ("hashing trick") classifier of Shi et al. 2009 /
/// Weinberger et al. 2009: every feature id is hashed into one of k buckets
/// with a ±1 sign, and a linear model is trained directly on the k-
/// dimensional hashed representation.
///
/// This is the strongest *classification* baseline in the paper (Fig. 6) but
/// supports no identifier recovery: colliding features are permanently
/// indistinguishable, which is why its RelErr in Fig. 3 is poor. It stores
/// no ids, so its entire budget goes to weights — exactly one float per
/// bucket. Equivalent to a depth-1 WM-Sketch with no heap.
class FeatureHashingClassifier final : public BudgetedClassifier {
 public:
  /// Constructs with `buckets` hashed weights (power of two).
  FeatureHashingClassifier(uint32_t buckets, const LearnerOptions& opts);

  /// Plan-driven (depth-1 plan): one hash per feature per call.
  double PredictMargin(const SparseVector& x) const override;
  /// Batched margins through the plan arena (whole batch hashed once,
  /// cross-example prefetch) — bit-identical to the loop.
  void PredictBatch(std::span<const Example> batch, double* margins) const override;
  /// Batched point estimates via one wide signed gather.
  void EstimateBatch(std::span<const uint32_t> features, float* out) const override;
  /// Frozen table-backed read model with the batched SIMD read paths.
  std::unique_ptr<const ReadModel> MakeReadModel() const override;
  double Update(const SparseVector& x, int8_t y) override;
  /// Devirtualized batch ingest (bit-identical to a loop of Update): the
  /// whole batch is hashed up front into a plan arena with next-example
  /// table prefetch.
  void UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) override;
  float WeightEstimate(uint32_t feature) const override;
  /// Frozen estimator capturing copies of the bucket hash and table.
  WeightEstimator EstimatorSnapshot() const override;
  /// Feature hashing stores no identifiers; native top-K is empty (use
  /// ScanTopK to rank an explicit universe).
  std::vector<FeatureWeight> TopK(size_t k) const override;
  size_t MemoryCostBytes() const override { return TableBytes(table_.size()); }
  size_t ResidentStorageBytes() const override {
    return TableBytes(table_.size()) + table_.MetadataBytes();
  }
  TablePublishStats publish_stats() const override { return table_.publish_stats(); }
  uint64_t steps() const override { return t_; }
  const LearnerOptions& options() const override { return opts_; }
  std::string Name() const override { return "hash"; }

  uint32_t buckets() const { return hash_.width(); }

 private:
  friend Status detail::SaveFeatureHashingPayload(const FeatureHashingClassifier&,
                                                  std::ostream&);
  friend Result<FeatureHashingClassifier> detail::LoadFeatureHashingPayload(
      snapshot::SnapshotReader&, const LearnerOptions&);

  /// The Update body once the plan exists (shared by Update and UpdateBatch).
  double UpdateWithPlan(const SparseVector& x, int8_t y, const simd::PlanView& plan,
                        float* scratch);
  void MaybeRescale();

  LearnerOptions opts_;
  SignedBucketHash hash_;
  // Raw bucket weights (true hashed weight = scale_ * cell) in copy-on-write
  // paged storage: live arena contiguous, snapshots publish shared pages.
  PagedTable table_;
  double scale_ = 1.0;
  uint64_t t_ = 0;
};

}  // namespace wmsketch
