#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "linear/learning_rate.h"
#include "linear/loss.h"
#include "stream/sparse_vector.h"
#include "util/paged_table.h"
#include "util/status.h"
#include "util/top_k_heap.h"

namespace wmsketch {

/// A self-contained per-feature weight estimator: captures (copies of)
/// whatever state it needs at creation time, so it stays valid — and keeps
/// answering from the same frozen model — after the classifier that produced
/// it is further trained or destroyed. The budget constraint is what makes
/// this cheap: a classifier's entire state is at most its byte budget.
using WeightEstimator = std::function<float(uint32_t)>;

/// An immutable, self-contained *frozen read model*: everything needed to
/// answer margins and point estimates from one moment of a classifier's
/// life, decoupled from the live (mutating) model. This is the structured
/// sibling of \ref WeightEstimator — where the estimator is a single frozen
/// point-query closure, a ReadModel additionally carries the batched SIMD
/// read paths (plan-driven margins, wide gathered medians), which is what
/// the wait-free serving layer (src/engine/serving.h) publishes to readers.
///
/// Contract: every method is const, thread-safe, and allocation-free on the
/// steady state (per-thread plan scratch only ever grows), so any number of
/// reader threads may query one ReadModel concurrently.
class ReadModel {
 public:
  virtual ~ReadModel() = default;

  /// The margin wᵀx under the frozen model.
  virtual double PredictMargin(const SparseVector& x) const = 0;

  /// Batched margins: out[e] = PredictMargin(batch[e].x), bit-identical to
  /// the loop. Methods with a plan-driven read path override it to hash the
  /// whole batch up front and prefetch across examples (see
  /// sketch/read_path.h); the default is the plain loop.
  virtual void PredictBatch(std::span<const Example> batch, double* out) const {
    for (size_t e = 0; e < batch.size(); ++e) out[e] = PredictMargin(batch[e].x);
  }

  /// Frozen point estimate ŵᵢ.
  virtual float Estimate(uint32_t feature) const = 0;

  /// Batched point estimates: out[i] = Estimate(features[i]), bit-identical
  /// to the loop; sketch-backed overrides hash all keys once and run one
  /// wide signed gather.
  virtual void EstimateBatch(std::span<const uint32_t> features, float* out) const {
    for (size_t i = 0; i < features.size(); ++i) out[i] = Estimate(features[i]);
  }

  /// Bytes of model state this frozen view keeps alive. Page-backed models
  /// (the sketches, feature hashing) report the pages they pin plus
  /// metadata — pages shared with other snapshots count in full (see
  /// PageSet::ResidentBytes). The default (closure-backed baselines) reports
  /// 0: their capture is opaque to this accounting.
  virtual size_t ResidentBytes() const { return 0; }
};

/// Hyperparameters shared by every online linear learner in the library.
struct LearnerOptions {
  /// ℓ2-regularization strength λ (Eq. 1). The paper sweeps
  /// {1e-3, 1e-4, 1e-5, 1e-6}.
  double lambda = 1e-6;
  /// Learning-rate schedule; the paper uses η0 = 0.1.
  LearningRate rate = LearningRate::InverseSqrt(0.1);
  /// Loss ℓ; logistic regression by default, matching the experiments.
  const LossFunction* loss = &DefaultLogisticLoss();
  /// Seed for all hash functions / randomized internals of the learner.
  uint64_t seed = 42;
};

/// Interface implemented by the memory-budgeted streaming classifiers: the
/// WM-Sketch, the AWM-Sketch, the four baselines of Sec. 7, the feature-
/// hashing classifier, and the memory-unconstrained reference model.
///
/// The contract mirrors Fig. 1 of the paper: a classifier is *updated* with
/// labeled examples and *queried* for individual weight estimates or the
/// top-K heaviest features of the uncompressed model it approximates.
class BudgetedClassifier {
 public:
  virtual ~BudgetedClassifier() = default;

  /// The margin wᵀx under the current model (no state change).
  virtual double PredictMargin(const SparseVector& x) const = 0;

  /// The predicted label sign(wᵀx) ∈ {-1, +1} (ties map to +1).
  int8_t Classify(const SparseVector& x) const { return PredictMargin(x) >= 0.0 ? 1 : -1; }

  /// Performs one online-gradient-descent step on (x, y); y ∈ {-1, +1}.
  /// Returns the *pre-update* margin so callers can do progressive
  /// validation (predict-then-update, Sec. 7.3) with no extra pass.
  virtual double Update(const SparseVector& x, int8_t y) = 0;

  /// Ingests a batch of labeled examples, equivalent to calling Update() on
  /// each in order (implementations guarantee bit-identical state). The
  /// batch path exists so high-throughput ingest pays one virtual dispatch
  /// per batch instead of one per example; every concrete classifier
  /// overrides it with a devirtualized loop over its own update step. When
  /// `margins` is non-null the pre-update margin of every example is
  /// appended to it (batched progressive validation) without leaving the
  /// devirtualized loop.
  virtual void UpdateBatch(std::span<const Example> batch,
                           std::vector<double>* margins = nullptr) {
    for (const Example& ex : batch) {
      const double margin = Update(ex.x, ex.y);
      if (margins != nullptr) margins->push_back(margin);
    }
  }

  /// Batched read-only margins: out[e] = PredictMargin(batch[e].x), bit-
  /// identical to the loop. WM-Sketch and feature hashing override it with
  /// the plan-arena path (whole batch hashed once, cross-example prefetch,
  /// SIMD gathers); the AWM overrides it with its lazy per-example plan.
  /// NOTE: reads the live model — it races with concurrent updates exactly
  /// like PredictMargin does. Concurrent serving goes through a published
  /// ReadModel (engine/serving.h) instead.
  virtual void PredictBatch(std::span<const Example> batch, double* margins) const {
    for (size_t e = 0; e < batch.size(); ++e) margins[e] = PredictMargin(batch[e].x);
  }

  /// Batched point estimates: out[i] = WeightEstimate(features[i]), bit-
  /// identical to the loop; sketch-backed methods override with a
  /// hash-once + wide-gather path (sketch/read_path.h).
  virtual void EstimateBatch(std::span<const uint32_t> features, float* out) const {
    for (size_t i = 0; i < features.size(); ++i) out[i] = WeightEstimate(features[i]);
  }

  /// Returns a frozen, self-contained weight estimator (see
  /// \ref WeightEstimator). The default materializes every tracked entry
  /// from TopK(); classifiers whose estimates are not exhausted by their
  /// tracked identifiers (the sketches, feature hashing, the dense model)
  /// override it to capture their table state instead.
  virtual WeightEstimator EstimatorSnapshot() const;

  /// Returns a frozen \ref ReadModel capturing this classifier's current
  /// queryable state (O(budget) copy). The default wraps EstimatorSnapshot:
  /// Estimate answers from the frozen estimator and PredictMargin is the
  /// linear functional Σᵢ Estimate(i)·xᵢ of the frozen estimates — exact for
  /// every method whose live margin is that same functional of its tracked
  /// weights (all Sec. 7 baselines), up to the per-term rounding of the
  /// frozen float estimates. The sketches and feature hashing override it
  /// with table-backed models carrying the batched SIMD read paths.
  virtual std::unique_ptr<const ReadModel> MakeReadModel() const;

  /// Point estimate ŵᵢ of the uncompressed model's weight for `feature`.
  virtual float WeightEstimate(uint32_t feature) const = 0;

  // --- Mergeability (the linearity dividend of sketched classifiers) ---
  //
  // A Count-Sketch is a linear projection, so two WM/AWM-Sketches with equal
  // projection matrices (same shape and seed) can be *summed* into the sketch
  // of the summed weight vectors — the property distributed and sharded
  // training builds on (Sec. 5.1's linearity; see also turnstile linear-
  // sketch theory). Non-linear baselines (truncation, Space-Saving, CM-FF)
  // cannot combine states losslessly and keep the Unimplemented defaults.

  /// Checks whether `other` can be merged into this classifier: same
  /// concrete method, same table shape, same seed (hence identical hash
  /// rows). OK means Merge(other) is well-defined; the default reports
  /// Unimplemented for methods with no merge semantics.
  virtual Status CanMerge(const BudgetedClassifier& other) const;

  /// The linear-combination primitive: w ← w + coeff·w_other, leaving the
  /// step counter untouched. `coeff` may be negative (base-corrected
  /// parameter mixing subtracts a shared starting point) but must be finite.
  /// On any error `this` is unchanged. Default: Unimplemented.
  virtual Status MergeScaled(const BudgetedClassifier& other, double coeff);

  /// Adds `other`'s model into this one: weight vectors sum (exactly, up to
  /// floating-point rounding of the underlying linear structures) and step
  /// counts add — the semantics of combining learners trained on *disjoint*
  /// stream partitions. Requires nothing beyond CanMerge(other).ok().
  /// Average instead of sum by following N-way merges with
  /// ScaleWeights(1.0/N) (parameter mixing).
  Status Merge(const BudgetedClassifier& other) {
    WMS_RETURN_NOT_OK(MergeScaled(other, 1.0));
    return SetSteps(steps() + other.steps());
  }

  /// Multiplies every model weight by `factor` (> 0); step count unchanged.
  /// O(1) for the lazily-scaled sketches. Unimplemented by default.
  virtual Status ScaleWeights(double factor);

  /// Overwrites the update counter — bookkeeping for merge orchestration
  /// (after N-way parameter mixing the true global step count is the
  /// orchestrator's example total, not the sum of mixed replicas).
  /// Unimplemented by default.
  virtual Status SetSteps(uint64_t steps);

  /// Deep copy with identical state (hash rows, tables, heaps, counters), or
  /// nullptr for methods that do not support cloning. Mergeable methods
  /// implement this; the sharded engine uses it to redistribute the averaged
  /// model to workers at a sync point.
  virtual std::unique_ptr<BudgetedClassifier> Clone() const;

  /// The top-k features by estimated |weight| among those the method tracks
  /// identifiers for; sorted by descending magnitude. Methods that store no
  /// identifiers (pure feature hashing) return an empty vector — see
  /// ScanTopK for the exhaustive alternative.
  virtual std::vector<FeatureWeight> TopK(size_t k) const = 0;

  /// Memory footprint under the Sec. 7.1 cost model (4 bytes per id /
  /// weight / auxiliary scalar). Deliberately excludes paged-storage
  /// bookkeeping: this is the *cost model* every method is compared under at
  /// equal budgets (and the planner sizes against), not resident memory —
  /// see ResidentStorageBytes for the latter.
  virtual size_t MemoryCostBytes() const = 0;

  /// Actual resident bytes of the model's own storage: the cost-model bytes
  /// plus paged-table metadata (per-page mirror pointers and epoch tags) for
  /// the table-backed methods. Snapshot-pinned page copies are accounted to
  /// the snapshots that pin them (ReadModel::ResidentBytes), not here.
  virtual size_t ResidentStorageBytes() const { return MemoryCostBytes(); }

  /// Cumulative paged-storage publication counters (zeroes for methods
  /// without paged tables). The serving bench differences these around a
  /// window to report bytes copied per publish.
  virtual TablePublishStats publish_stats() const { return {}; }

  /// Number of Update() calls so far.
  virtual uint64_t steps() const = 0;

  /// The hyperparameters the classifier was constructed with (for restored
  /// models: λ and seed from the snapshot, loss/rate from the caller).
  virtual const LearnerOptions& options() const = 0;

  /// Short stable name for reports ("awm", "hash", ...).
  virtual std::string Name() const = 0;
};

/// Exhaustive top-k: evaluates WeightEstimate over the full feature universe
/// [0, dimension) and returns the k largest-magnitude results. This is the
/// only way to rank features for methods without identifier storage, and is
/// also how the recovery metric treats every method uniformly.
std::vector<FeatureWeight> ScanTopK(const BudgetedClassifier& model, size_t k,
                                    uint32_t dimension);

/// The same exhaustive scan over any point-estimate source (e.g. a frozen
/// \ref WeightEstimator); the model overload and LearnerSnapshot::ScanTopK
/// both delegate here.
std::vector<FeatureWeight> ScanTopK(const WeightEstimator& estimator, size_t k,
                                    uint32_t dimension);

}  // namespace wmsketch
