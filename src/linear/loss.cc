#include "linear/loss.h"

#include <cassert>

#include "util/math.h"

namespace wmsketch {

double LogisticLoss::Value(double margin) const { return Log1pExp(-margin); }

double LogisticLoss::Derivative(double margin) const {
  // d/dm log(1+e^{-m}) = -sigmoid(-m).
  return -Sigmoid(-margin);
}

SmoothedHingeLoss::SmoothedHingeLoss(double gamma) : gamma_(gamma) {
  assert(gamma > 0.0 && gamma <= 1.0);
}

double SmoothedHingeLoss::Value(double margin) const {
  if (margin >= 1.0) return 0.0;
  if (margin > 1.0 - gamma_) {
    const double z = 1.0 - margin;
    return z * z / (2.0 * gamma_);
  }
  return 1.0 - margin - gamma_ / 2.0;
}

double SmoothedHingeLoss::Derivative(double margin) const {
  if (margin >= 1.0) return 0.0;
  if (margin > 1.0 - gamma_) return (margin - 1.0) / gamma_;
  return -1.0;
}

double SquaredLoss::Value(double margin) const {
  const double z = 1.0 - margin;
  return z * z / 2.0;
}

double SquaredLoss::Derivative(double margin) const { return margin - 1.0; }

const LossFunction& DefaultLogisticLoss() {
  static const LogisticLoss kLoss;
  return kLoss;
}

}  // namespace wmsketch
