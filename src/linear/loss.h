#pragma once

#include <string>

namespace wmsketch {

/// A margin-based classification loss ℓ(m), where m = y·(wᵀx).
///
/// The online update for every classifier in this library is
///   w ← (1−ηλ)·w − η·y·ℓ'(m)·x,
/// so the interface exposes the scalar derivative ℓ'(m). The theory
/// (Theorems 1–2) requires β-strong smoothness; each loss reports its β so
/// tests and the budget planner can plug it into the bound.
class LossFunction {
 public:
  virtual ~LossFunction() = default;

  /// Loss value at margin m.
  virtual double Value(double margin) const = 0;

  /// Derivative dℓ/dm at margin m (non-positive for monotone losses).
  virtual double Derivative(double margin) const = 0;

  /// Strong-smoothness constant β (w.r.t. ‖·‖₂).
  virtual double SmoothnessBeta() const = 0;

  /// Stable identifier for logs and bench output.
  virtual std::string Name() const = 0;
};

/// Logistic loss ℓ(m) = log(1 + e^{−m}); defines logistic regression.
/// β = 1/4 (paper Sec. 6.1 uses the loose bound β = 1).
class LogisticLoss final : public LossFunction {
 public:
  double Value(double margin) const override;
  double Derivative(double margin) const override;
  double SmoothnessBeta() const override { return 0.25; }
  std::string Name() const override { return "logistic"; }
};

/// Quadratically-smoothed hinge loss (Shalev-Shwartz et al.):
///   ℓ(m) = 0                    if m ≥ 1
///        = (1−m)²/(2γ)          if 1−γ < m < 1
///        = 1 − m − γ/2          otherwise.
/// A close relative of the linear SVM (paper Sec. 4.1); β = 1/γ.
class SmoothedHingeLoss final : public LossFunction {
 public:
  /// Constructs with smoothing width γ in (0, 1]; γ = 1 is the common
  /// "smooth hinge".
  explicit SmoothedHingeLoss(double gamma = 1.0);

  double Value(double margin) const override;
  double Derivative(double margin) const override;
  double SmoothnessBeta() const override { return 1.0 / gamma_; }
  std::string Name() const override { return "smoothed_hinge"; }
  double gamma() const { return gamma_; }

 private:
  double gamma_;
};

/// Squared loss on the margin, ℓ(m) = (1−m)²/2 — least-squares
/// classification; β = 1. Included for the weight-estimation framework's
/// generality (Definition 3 covers any convex loss).
class SquaredLoss final : public LossFunction {
 public:
  double Value(double margin) const override;
  double Derivative(double margin) const override;
  double SmoothnessBeta() const override { return 1.0; }
  std::string Name() const override { return "squared"; }
};

/// Process-lifetime singleton logistic loss (the default everywhere, as in
/// the paper's experiments).
const LossFunction& DefaultLogisticLoss();

}  // namespace wmsketch
