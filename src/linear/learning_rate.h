#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

namespace wmsketch {

/// A learning-rate schedule η_t (t counts from 1). Value-type — classifiers
/// copy it — with the three standard online-gradient-descent schedules.
class LearningRate {
 public:
  enum class Kind {
    kConstant,     ///< η_t = η0
    kInverseSqrt,  ///< η_t = η0 / √t      (general convex OGD)
    kInverse,      ///< η_t = η0 / (1 + η0·λ·t)  (λ-strongly-convex, Pegasos-style)
  };

  /// η_t = η0 (default matches the paper's η0 = 0.1).
  static LearningRate Constant(double eta0 = 0.1) { return {Kind::kConstant, eta0, 0.0}; }
  /// η_t = η0/√t.
  static LearningRate InverseSqrt(double eta0 = 0.1) { return {Kind::kInverseSqrt, eta0, 0.0}; }
  /// η_t = η0/(1 + η0·λ·t).
  static LearningRate Inverse(double eta0, double lambda) {
    return {Kind::kInverse, eta0, lambda};
  }

  /// Rate for step t (1-based). Requires t >= 1.
  double Rate(uint64_t t) const {
    assert(t >= 1);
    switch (kind_) {
      case Kind::kConstant:
        return eta0_;
      case Kind::kInverseSqrt:
        return eta0_ / std::sqrt(static_cast<double>(t));
      case Kind::kInverse:
        return eta0_ / (1.0 + eta0_ * lambda_ * static_cast<double>(t));
    }
    return eta0_;
  }

  Kind kind() const { return kind_; }
  double eta0() const { return eta0_; }

 private:
  LearningRate(Kind kind, double eta0, double lambda)
      : kind_(kind), eta0_(eta0), lambda_(lambda) {}

  Kind kind_;
  double eta0_;
  double lambda_;
};

}  // namespace wmsketch
