#pragma once

#include <cstdint>
#include <deque>
#include <functional>

namespace wmsketch {

/// Enumerates co-occurring token pairs within a sliding window of the last
/// `window` tokens, the bigram definition used by the paper's PMI experiments
/// ("word pairs that co-occur within 5-word spans of text": window = 6
/// including the new token).
///
/// For each pushed token `v`, the callback fires once per retained
/// predecessor `u` (ordered pair (u, v), most recent last). Pairs never span
/// a Reset() boundary (use Reset between documents/sentences).
class SlidingWindowPairs {
 public:
  using PairCallback = std::function<void(uint32_t u, uint32_t v)>;

  /// Constructs with total span `window` >= 2 (a window of W produces pairs
  /// with the W-1 preceding tokens).
  explicit SlidingWindowPairs(size_t window) : window_(window) {}

  /// Pushes the next token, invoking `cb` for each in-window pair.
  void Push(uint32_t token, const PairCallback& cb) {
    for (uint32_t u : buffer_) cb(u, token);
    buffer_.push_back(token);
    if (buffer_.size() >= window_) buffer_.pop_front();
  }

  /// Clears the window (document boundary).
  void Reset() { buffer_.clear(); }

  size_t window() const { return window_; }

 private:
  size_t window_;
  std::deque<uint32_t> buffer_;
};

}  // namespace wmsketch
