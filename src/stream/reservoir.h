#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace wmsketch {

/// Uniform reservoir sample of a stream (Vitter's Algorithm R): after T
/// observations, each holds a slot with probability capacity/T.
///
/// The streaming PMI estimator (Sec. 8.3) approximates sampling from the
/// unigram distribution p(u) by drawing from a reservoir of recently-observed
/// tokens, exactly as the paper does (reservoir size 4000 in their
/// experiments).
template <typename T>
class ReservoirSample {
 public:
  /// Constructs a reservoir holding at most `capacity` items (>= 1).
  ReservoirSample(size_t capacity, uint64_t seed) : capacity_(capacity), rng_(seed) {
    assert(capacity >= 1);
    items_.reserve(capacity);
  }

  /// Observes one stream element.
  void Add(const T& item) {
    ++count_;
    if (items_.size() < capacity_) {
      items_.push_back(item);
      return;
    }
    const uint64_t j = rng_.Bounded(count_);
    if (j < capacity_) items_[j] = item;
  }

  /// True iff at least one element has been observed.
  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }
  /// Stream length observed so far.
  uint64_t count() const { return count_; }

  /// Draws a uniform element from the reservoir (approximates a draw from
  /// the empirical stream distribution). Requires non-empty.
  const T& Sample(Rng& rng) const {
    assert(!items_.empty());
    return items_[rng.Bounded(items_.size())];
  }

  /// The raw reservoir contents.
  const std::vector<T>& items() const { return items_; }

 private:
  size_t capacity_;
  Rng rng_;
  uint64_t count_ = 0;
  std::vector<T> items_;
};

}  // namespace wmsketch
