#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "stream/sparse_vector.h"
#include "util/status.h"

namespace wmsketch {

/// Parses one LIBSVM-format line: `<label> <idx>:<val> <idx>:<val> ...`.
///
/// Labels "+1"/"1" map to +1; "-1"/"0" map to -1 (the 0/1 convention used by
/// some KDD-cup exports). Indices may be 0- or 1-based in the file; set
/// `one_based` for files that start at 1 (the LIBSVM convention) and they
/// are shifted down. Malformed fields, non-finite values, trailing junk
/// tokens, and out-of-order or duplicate indices all yield InvalidArgument
/// naming the offending token — the indices of a record must be strictly
/// increasing, and a violation is reported rather than silently repaired
/// (sorting/summing would mask an exporter bug and change every downstream
/// hash plan). Explicit zero values are validated, then dropped.
Result<Example> ParseLibsvmLine(std::string_view line, bool one_based = true);

/// Reads every non-empty, non-comment ('#') line of `path` as an Example.
/// Paths ending in ".gz" are streamed through `gzip -cd` (no in-process
/// decompressor; the tool is assumed present, as on any machine that made
/// the archive). Fails with IOError if the file cannot be opened (or gzip
/// exits nonzero) and InvalidArgument (prefixed path:lineno:) on the first
/// malformed record.
Result<std::vector<Example>> ReadLibsvmFile(const std::string& path, bool one_based = true);

/// Serializes an example in LIBSVM format (1-based indices).
std::string FormatLibsvmLine(const Example& ex);

/// Writes examples to `path`, one per line. Returns IOError on failure.
Status WriteLibsvmFile(const std::string& path, const std::vector<Example>& examples);

}  // namespace wmsketch
