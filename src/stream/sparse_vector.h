#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace wmsketch {

/// A sparse feature vector: parallel arrays of strictly-increasing feature
/// indices and their (finite, nonzero) values. This is the `x` of every
/// example flowing through the library; all classifiers touch only the
/// nonzero entries, giving O(s·nnz(x)) updates (Sec. 5.1).
class SparseVector {
 public:
  SparseVector() = default;

  /// Constructs from parallel arrays without validation; prefer
  /// FromUnsorted/Validate for untrusted input. Asserts equal lengths.
  SparseVector(std::vector<uint32_t> indices, std::vector<float> values);

  /// Builds a vector from possibly-unsorted, possibly-duplicated pairs:
  /// sorts by index, sums duplicates, and drops exact zeros. Returns
  /// InvalidArgument for non-finite values.
  static Result<SparseVector> FromUnsorted(std::vector<std::pair<uint32_t, float>> pairs);

  /// A vector with a single nonzero entry (the 1-sparse encoding used by the
  /// streaming-explanation, deltoid, and PMI applications).
  static SparseVector OneHot(uint32_t index, float value = 1.0f);

  /// Checks the representation invariants (sorted unique indices, finite
  /// nonzero values); used on untrusted inputs such as parsed files.
  Status Validate() const;

  size_t nnz() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }
  const std::vector<uint32_t>& indices() const { return indices_; }
  const std::vector<float>& values() const { return values_; }
  uint32_t index(size_t i) const { return indices_[i]; }
  float value(size_t i) const { return values_[i]; }

  /// L1 norm (the γ = max‖x‖₁ quantity in Theorem 1's bound).
  double L1Norm() const;
  /// L2 norm.
  double L2Norm() const;
  /// Divides all values by the L1 norm (no-op on empty vectors); the paper's
  /// theory assumes ‖x‖₁ = 1 and the generators normalize this way.
  void NormalizeL1();
  /// Divides all values by the L2 norm (no-op on empty vectors).
  void NormalizeL2();

  /// Dot product against a dense weight array of dimension >= max index + 1.
  double Dot(const std::vector<float>& dense) const;

  bool operator==(const SparseVector& other) const = default;

 private:
  std::vector<uint32_t> indices_;
  std::vector<float> values_;
};

/// A labeled example: sparse features and a binary label in {-1, +1}.
struct Example {
  SparseVector x;
  int8_t y = 1;

  /// Validates the feature vector and the label domain.
  Status Validate() const {
    if (y != 1 && y != -1) return Status::InvalidArgument("label must be +1 or -1");
    return x.Validate();
  }
};

}  // namespace wmsketch
