#include "stream/libsvm_io.h"

#include <sys/wait.h>

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace wmsketch {

namespace {

// Splits off the next whitespace-delimited token from `s`; empty view at end.
std::string_view NextToken(std::string_view& s) {
  size_t start = 0;
  while (start < s.size() && (s[start] == ' ' || s[start] == '\t')) ++start;
  size_t end = start;
  while (end < s.size() && s[end] != ' ' && s[end] != '\t') ++end;
  std::string_view tok = s.substr(start, end - start);
  s.remove_prefix(end);
  return tok;
}

bool EndsWithGz(const std::string& path) {
  return path.size() > 3 && path.compare(path.size() - 3, 3, ".gz") == 0;
}

// Single-quotes `s` for /bin/sh so the popen("gzip -cd ...") passthrough is
// safe for any path the caller hands us.
std::string ShellQuote(const std::string& s) {
  std::string q = "'";
  for (const char c : s) {
    if (c == '\'') {
      q += "'\\''";
    } else {
      q += c;
    }
  }
  q += "'";
  return q;
}

}  // namespace

Result<Example> ParseLibsvmLine(std::string_view line, bool one_based) {
  // Strip trailing CR/comment.
  if (const size_t hash = line.find('#'); hash != std::string_view::npos) {
    line = line.substr(0, hash);
  }
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) line.remove_suffix(1);

  std::string_view rest = line;
  const std::string_view label_tok = NextToken(rest);
  if (label_tok.empty()) return Status::InvalidArgument("empty line");

  int8_t y;
  if (label_tok == "+1" || label_tok == "1") {
    y = 1;
  } else if (label_tok == "-1" || label_tok == "0") {
    y = -1;
  } else {
    return Status::InvalidArgument("unrecognized label '" + std::string(label_tok) + "'");
  }

  std::vector<uint32_t> indices;
  std::vector<float> values;
  bool have_prev = false;
  uint64_t prev = 0;
  for (std::string_view tok = NextToken(rest); !tok.empty(); tok = NextToken(rest)) {
    const size_t colon = tok.find(':');
    if (colon == std::string_view::npos || colon == 0 || colon + 1 >= tok.size()) {
      return Status::InvalidArgument("malformed feature '" + std::string(tok) + "'");
    }
    uint64_t idx = 0;
    const std::string_view idx_sv = tok.substr(0, colon);
    auto [iptr, ierr] = std::from_chars(idx_sv.data(), idx_sv.data() + idx_sv.size(), idx);
    if (ierr != std::errc() || iptr != idx_sv.data() + idx_sv.size()) {
      return Status::InvalidArgument("bad feature index '" + std::string(idx_sv) + "'");
    }
    if (one_based) {
      if (idx == 0) return Status::InvalidArgument("index 0 in one-based file");
      idx -= 1;
    }
    if (idx > 0xffffffffULL) {
      return Status::OutOfRange("feature index " + std::to_string(idx) + " exceeds 32 bits");
    }
    // Enforce the strictly-increasing index contract here, at the offending
    // token, rather than silently repairing with FromUnsorted: a duplicate or
    // out-of-order index in a real dataset export is almost always a
    // generator bug upstream, and "sort and sum" would mask it while also
    // changing every downstream hash plan.
    if (have_prev && idx <= prev) {
      return Status::InvalidArgument(
          std::string(idx == prev ? "duplicate" : "out-of-order") + " feature index in '" +
          std::string(tok) + "' (indices must be strictly increasing)");
    }
    have_prev = true;
    prev = idx;
    // std::from_chars for float is available but strtof handles exponents the
    // same; keep from_chars for locale independence.
    const std::string_view val_sv = tok.substr(colon + 1);
    float val = 0.0f;
    auto [vptr, verr] = std::from_chars(val_sv.data(), val_sv.data() + val_sv.size(), val);
    if (verr != std::errc() || vptr != val_sv.data() + val_sv.size()) {
      return Status::InvalidArgument("bad feature value '" + std::string(val_sv) + "'");
    }
    if (!std::isfinite(val)) {
      return Status::InvalidArgument("non-finite feature value '" + std::string(val_sv) + "'");
    }
    // Explicit zeros are legal in the wild (some exporters emit the full
    // active set) but carry no information for a sparse learner; drop them
    // after they have participated in the monotonicity check.
    if (val != 0.0f) {
      indices.push_back(static_cast<uint32_t>(idx));
      values.push_back(val);
    }
  }

  return Example{SparseVector(std::move(indices), std::move(values)), y};
}

namespace {

// Parses one already-read line in the context of a file scan: skips blanks
// and comments, prefixes parse failures with path:lineno.
Status ConsumeLine(const std::string& line, const std::string& path, size_t lineno,
                   bool one_based, std::vector<Example>& out) {
  const size_t first = line.find_first_not_of(" \t\r\n");
  if (first == std::string::npos || line[first] == '#') return Status::OK();
  Result<Example> ex = ParseLibsvmLine(line, one_based);
  if (!ex.ok()) {
    return Status(ex.status().code(),
                  path + ":" + std::to_string(lineno) + ": " + ex.status().message());
  }
  out.push_back(std::move(ex).value());
  return Status::OK();
}

// Streams a gzip-compressed file through `gzip -cd` (no zlib dependency; the
// decompressor is already on every machine that produced the .gz). The
// decompressor's exit status is checked on close: a truncated or corrupt .gz
// makes gzip exit nonzero *after* emitting whatever prefix it could decode,
// so trusting EOF alone would silently accept a partial dataset as complete.
Result<std::vector<Example>> ReadLibsvmGzFile(const std::string& path, bool one_based) {
  const std::string cmd = "gzip -cd -- " + ShellQuote(path);
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return Status::IOError("cannot run '" + cmd + "'");
  std::vector<Example> out;
  Status st = Status::OK();
  size_t lineno = 0;
  char* buf = nullptr;
  size_t cap = 0;
  ssize_t n;
  while (st.ok() && (n = getline(&buf, &cap, pipe)) != -1) {
    ++lineno;
    if (n > 0 && buf[n - 1] == '\n') --n;
    st = ConsumeLine(std::string(buf, static_cast<size_t>(n)), path, lineno, one_based, out);
  }
  free(buf);
  const bool pipe_error = ferror(pipe) != 0;
  const int rc = pclose(pipe);
  if (!st.ok()) return st;
  if (pipe_error) return Status::IOError("read error on gzip pipe for '" + path + "'");
  if (rc == -1) {
    return Status::IOError("cannot collect gzip exit status for '" + path + "': " +
                           std::strerror(errno));
  }
  if (rc != 0) {
    // Decode the wait status so a truncated stream (exit 1), a usage error
    // (exit 2), and a signaled decompressor are all distinguishable.
    std::string detail;
    if (WIFEXITED(rc)) {
      detail = "exit status " + std::to_string(WEXITSTATUS(rc));
    } else if (WIFSIGNALED(rc)) {
      detail = "killed by signal " + std::to_string(WTERMSIG(rc));
    } else {
      detail = "wait status " + std::to_string(rc);
    }
    return Status::IOError("gzip -cd failed for '" + path + "' (" + detail +
                           "); stream may be truncated or corrupt");
  }
  return out;
}

}  // namespace

Result<std::vector<Example>> ReadLibsvmFile(const std::string& path, bool one_based) {
  if (EndsWithGz(path)) return ReadLibsvmGzFile(path, one_based);
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::vector<Example> out;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    WMS_RETURN_NOT_OK(ConsumeLine(line, path, lineno, one_based, out));
  }
  return out;
}

std::string FormatLibsvmLine(const Example& ex) {
  std::ostringstream os;
  os << (ex.y > 0 ? "+1" : "-1");
  for (size_t i = 0; i < ex.x.nnz(); ++i) {
    os << ' ' << (ex.x.index(i) + 1) << ':' << ex.x.value(i);
  }
  return os.str();
}

Status WriteLibsvmFile(const std::string& path, const std::vector<Example>& examples) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  for (const Example& ex : examples) {
    out << FormatLibsvmLine(ex) << '\n';
  }
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace wmsketch
