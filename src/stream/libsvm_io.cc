#include "stream/libsvm_io.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

namespace wmsketch {

namespace {

// Splits off the next whitespace-delimited token from `s`; empty view at end.
std::string_view NextToken(std::string_view& s) {
  size_t start = 0;
  while (start < s.size() && (s[start] == ' ' || s[start] == '\t')) ++start;
  size_t end = start;
  while (end < s.size() && s[end] != ' ' && s[end] != '\t') ++end;
  std::string_view tok = s.substr(start, end - start);
  s.remove_prefix(end);
  return tok;
}

}  // namespace

Result<Example> ParseLibsvmLine(std::string_view line, bool one_based) {
  // Strip trailing CR/comment.
  if (const size_t hash = line.find('#'); hash != std::string_view::npos) {
    line = line.substr(0, hash);
  }
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) line.remove_suffix(1);

  std::string_view rest = line;
  const std::string_view label_tok = NextToken(rest);
  if (label_tok.empty()) return Status::InvalidArgument("empty line");

  int8_t y;
  if (label_tok == "+1" || label_tok == "1") {
    y = 1;
  } else if (label_tok == "-1" || label_tok == "0") {
    y = -1;
  } else {
    return Status::InvalidArgument("unrecognized label '" + std::string(label_tok) + "'");
  }

  std::vector<std::pair<uint32_t, float>> pairs;
  for (std::string_view tok = NextToken(rest); !tok.empty(); tok = NextToken(rest)) {
    const size_t colon = tok.find(':');
    if (colon == std::string_view::npos || colon == 0 || colon + 1 >= tok.size()) {
      return Status::InvalidArgument("malformed feature '" + std::string(tok) + "'");
    }
    uint64_t idx = 0;
    const std::string_view idx_sv = tok.substr(0, colon);
    auto [iptr, ierr] = std::from_chars(idx_sv.data(), idx_sv.data() + idx_sv.size(), idx);
    if (ierr != std::errc() || iptr != idx_sv.data() + idx_sv.size()) {
      return Status::InvalidArgument("bad feature index '" + std::string(idx_sv) + "'");
    }
    if (one_based) {
      if (idx == 0) return Status::InvalidArgument("index 0 in one-based file");
      idx -= 1;
    }
    if (idx > 0xffffffffULL) {
      return Status::OutOfRange("feature index " + std::to_string(idx) + " exceeds 32 bits");
    }
    // std::from_chars for float is available but strtof handles exponents the
    // same; keep from_chars for locale independence.
    const std::string_view val_sv = tok.substr(colon + 1);
    float val = 0.0f;
    auto [vptr, verr] = std::from_chars(val_sv.data(), val_sv.data() + val_sv.size(), val);
    if (verr != std::errc() || vptr != val_sv.data() + val_sv.size()) {
      return Status::InvalidArgument("bad feature value '" + std::string(val_sv) + "'");
    }
    if (!std::isfinite(val)) {
      return Status::InvalidArgument("non-finite feature value '" + std::string(val_sv) + "'");
    }
    pairs.emplace_back(static_cast<uint32_t>(idx), val);
  }

  WMS_ASSIGN_OR_RETURN(SparseVector x, SparseVector::FromUnsorted(std::move(pairs)));
  return Example{std::move(x), y};
}

Result<std::vector<Example>> ReadLibsvmFile(const std::string& path, bool one_based) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::vector<Example> out;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Skip blank and comment lines.
    const size_t first = line.find_first_not_of(" \t\r\n");
    if (first == std::string::npos || line[first] == '#') continue;
    Result<Example> ex = ParseLibsvmLine(line, one_based);
    if (!ex.ok()) {
      return Status(ex.status().code(),
                    path + ":" + std::to_string(lineno) + ": " + ex.status().message());
    }
    out.push_back(std::move(ex).value());
  }
  return out;
}

std::string FormatLibsvmLine(const Example& ex) {
  std::ostringstream os;
  os << (ex.y > 0 ? "+1" : "-1");
  for (size_t i = 0; i < ex.x.nnz(); ++i) {
    os << ' ' << (ex.x.index(i) + 1) << ':' << ex.x.value(i);
  }
  return os.str();
}

Status WriteLibsvmFile(const std::string& path, const std::vector<Example>& examples) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  for (const Example& ex : examples) {
    out << FormatLibsvmLine(ex) << '\n';
  }
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace wmsketch
