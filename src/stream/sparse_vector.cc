#include "stream/sparse_vector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wmsketch {

SparseVector::SparseVector(std::vector<uint32_t> indices, std::vector<float> values)
    : indices_(std::move(indices)), values_(std::move(values)) {
  assert(indices_.size() == values_.size());
}

Result<SparseVector> SparseVector::FromUnsorted(std::vector<std::pair<uint32_t, float>> pairs) {
  for (const auto& [idx, val] : pairs) {
    if (!std::isfinite(val)) {
      return Status::InvalidArgument("non-finite feature value at index " + std::to_string(idx));
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<uint32_t> indices;
  std::vector<float> values;
  indices.reserve(pairs.size());
  values.reserve(pairs.size());
  for (const auto& [idx, val] : pairs) {
    if (!indices.empty() && indices.back() == idx) {
      values.back() += val;
    } else {
      indices.push_back(idx);
      values.push_back(val);
    }
  }
  // Drop entries that summed to exactly zero.
  size_t out = 0;
  for (size_t i = 0; i < indices.size(); ++i) {
    if (values[i] != 0.0f) {
      indices[out] = indices[i];
      values[out] = values[i];
      ++out;
    }
  }
  indices.resize(out);
  values.resize(out);
  return SparseVector(std::move(indices), std::move(values));
}

SparseVector SparseVector::OneHot(uint32_t index, float value) {
  return SparseVector({index}, {value});
}

Status SparseVector::Validate() const {
  if (indices_.size() != values_.size()) {
    return Status::Corruption("index/value arrays disagree in length");
  }
  for (size_t i = 0; i < indices_.size(); ++i) {
    if (i > 0 && indices_[i] <= indices_[i - 1]) {
      return Status::InvalidArgument("indices not strictly increasing at position " +
                                     std::to_string(i));
    }
    if (!std::isfinite(values_[i])) {
      return Status::InvalidArgument("non-finite value at position " + std::to_string(i));
    }
    if (values_[i] == 0.0f) {
      return Status::InvalidArgument("explicit zero value at position " + std::to_string(i));
    }
  }
  return Status::OK();
}

double SparseVector::L1Norm() const {
  double s = 0.0;
  for (float v : values_) s += std::fabs(static_cast<double>(v));
  return s;
}

double SparseVector::L2Norm() const {
  double s = 0.0;
  for (float v : values_) s += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(s);
}

void SparseVector::NormalizeL1() {
  const double n = L1Norm();
  if (n == 0.0) return;
  for (float& v : values_) v = static_cast<float>(v / n);
}

void SparseVector::NormalizeL2() {
  const double n = L2Norm();
  if (n == 0.0) return;
  for (float& v : values_) v = static_cast<float>(v / n);
}

double SparseVector::Dot(const std::vector<float>& dense) const {
  double s = 0.0;
  for (size_t i = 0; i < indices_.size(); ++i) {
    assert(indices_[i] < dense.size());
    s += static_cast<double>(values_[i]) * static_cast<double>(dense[indices_[i]]);
  }
  return s;
}

}  // namespace wmsketch
