#pragma once

#include <cstdint>
#include <vector>

#include "api/learner.h"
#include "sketch/count_min.h"
#include "util/top_k_heap.h"

namespace wmsketch {

/// Relative-deltoid detection (Sec. 8.2): find items whose occurrence-rate
/// ratio φ(i) = n₁(i)/n₂(i) between two concurrently-observed streams is
/// large in either direction.
///
/// The classifier formulation: every stream-1 observation is a 1-sparse
/// positive example, every stream-2 observation a negative one. With equal
/// stream rates, the logistic weight for item i converges to
/// log p(stream1 | i)/p(stream2 | i) = log φ(i) — so the heaviest positive
/// and negative weights are exactly the relative deltoids, and the budgeted
/// classifier's top-K retrieval does the detection.
class RelativeDeltoidDetector {
 public:
  /// Wraps a learner over item-id feature space (built through
  /// LearnerBuilder); not owned.
  explicit RelativeDeltoidDetector(Learner* learner) : learner_(learner) {}

  /// Observes one item occurrence from stream 1 (`first_stream` = true) or
  /// stream 2.
  void Observe(uint32_t item, bool first_stream) {
    learner_->Update(Example{SparseVector::OneHot(item),
                             static_cast<int8_t>(first_stream ? 1 : -1)});
  }

  /// Estimated log occurrence ratio for an item (the model weight).
  double EstimateLogRatio(uint32_t item) const {
    return static_cast<double>(learner_->WeightEstimate(item));
  }

  /// The k items with the largest |estimated log ratio| among tracked ones,
  /// materialized into a detached list.
  std::vector<FeatureWeight> TopDeltoids(size_t k) const { return learner_->TopK(k); }

  const Learner& learner() const { return *learner_; }

 private:
  Learner* learner_;
};

/// The paired Count-Min ratio estimator baseline (Cormode–Muthukrishnan
/// 2005a, as used for Fig. 10's "CM" and "CMx8" lines): one CM sketch per
/// stream; the ratio estimate for an item is the quotient of its two count
/// estimates. Supports no native enumeration — callers rank an explicit
/// candidate universe by |log ratio estimate|.
class PairedCmRatioEstimator {
 public:
  /// Constructs two CM sketches of `width` x `depth` counters each.
  PairedCmRatioEstimator(uint32_t width, uint32_t depth, uint64_t seed);

  /// Observes one item occurrence on one stream.
  void Observe(uint32_t item, bool first_stream) {
    (first_stream ? cm1_ : cm2_).Update(item, 1.0);
  }

  /// Estimated log ratio log(n̂₁(i)/n̂₂(i)) with add-half smoothing.
  double EstimateLogRatio(uint32_t item) const;

  /// The k candidate items with the largest |estimated log ratio|.
  std::vector<FeatureWeight> TopDeltoids(size_t k, uint32_t universe) const;

  /// Total footprint of both sketches under the Sec. 7.1 cost model.
  size_t MemoryCostBytes() const { return cm1_.MemoryCostBytes() + cm2_.MemoryCostBytes(); }

 private:
  CountMinSketch cm1_;
  CountMinSketch cm2_;
};

}  // namespace wmsketch
