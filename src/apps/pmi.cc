#include "apps/pmi.h"

#include <algorithm>
#include <cmath>

#include "hash/polynomial.h"
#include "util/memory_cost.h"

namespace wmsketch {

StreamingPmiEstimator::StreamingPmiEstimator(const PmiOptions& options)
    : options_(options),
      model_(options.sketch, options.learner),
      window_(options.window),
      reservoir_(options.reservoir_size, options.learner.seed ^ 0x6c62272e07bb0142ULL),
      rng_(options.learner.seed ^ 0x27d4eb2f165667c5ULL),
      log_k_(std::log(static_cast<double>(options.negatives_per_positive))) {}

void StreamingPmiEstimator::ObserveToken(uint32_t token, bool document_boundary) {
  if (document_boundary) window_.Reset();
  ++tokens_;
  window_.Push(token, [this](uint32_t u, uint32_t v) { TrainPositive(u, v); });
  reservoir_.Add(token);
  if (options_.prune_interval > 0 && tokens_ % options_.prune_interval == 0) {
    PruneIdentities();
  }
}

void StreamingPmiEstimator::TrainPositive(uint32_t u, uint32_t v) {
  ++positives_;
  const uint32_t feature = PairFeatureId(u, v);
  model_.Update(SparseVector::OneHot(feature), /*y=*/1);
  RecordIdentity(feature, u, v);

  // K synthetic pairs from the product-of-unigrams distribution.
  if (reservoir_.size() < 2) return;
  for (uint32_t n = 0; n < options_.negatives_per_positive; ++n) {
    const uint32_t nu = reservoir_.Sample(rng_);
    const uint32_t nv = reservoir_.Sample(rng_);
    const uint32_t nf = PairFeatureId(nu, nv);
    model_.Update(SparseVector::OneHot(nf), /*y=*/-1);
    RecordIdentity(nf, nu, nv);
  }
}

void StreamingPmiEstimator::RecordIdentity(uint32_t feature, uint32_t u, uint32_t v) {
  // Identities are only worth keeping while the pair is exactly tracked; the
  // periodic prune removes entries that have since been evicted.
  if (model_.InActiveSet(feature)) identities_[feature] = {u, v};
}

void StreamingPmiEstimator::PruneIdentities() {
  for (auto it = identities_.begin(); it != identities_.end();) {
    if (model_.InActiveSet(it->first)) {
      ++it;
    } else {
      it = identities_.erase(it);
    }
  }
}

double StreamingPmiEstimator::EstimatePmi(uint32_t u, uint32_t v) const {
  const double w = static_cast<double>(model_.WeightEstimate(PairFeatureId(u, v)));
  return w + log_k_;
}

std::vector<PmiPair> StreamingPmiEstimator::TopPairs(size_t k) const {
  std::vector<PmiPair> out;
  for (const FeatureWeight& fw : model_.TopK(model_.config().heap_capacity)) {
    if (fw.weight <= 0.0f) continue;  // only positively-associated pairs
    auto it = identities_.find(fw.feature);
    if (it == identities_.end()) continue;  // evicted-and-returned ghost
    out.push_back(PmiPair{it->second.first, it->second.second,
                          static_cast<double>(fw.weight) + log_k_,
                          static_cast<double>(fw.weight)});
  }
  std::sort(out.begin(), out.end(),
            [](const PmiPair& a, const PmiPair& b) { return a.estimated_pmi > b.estimated_pmi; });
  if (out.size() > k) out.resize(k);
  return out;
}

size_t StreamingPmiEstimator::MemoryCostBytes() const {
  return model_.MemoryCostBytes() + identities_.size() * (2 * kBytesPerId);
}

}  // namespace wmsketch
