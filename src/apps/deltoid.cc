#include "apps/deltoid.h"

#include <cmath>

#include "util/random.h"

namespace wmsketch {

PairedCmRatioEstimator::PairedCmRatioEstimator(uint32_t width, uint32_t depth, uint64_t seed)
    : cm1_(width, depth, SplitMix64(seed).Next(), /*conservative=*/true),
      cm2_(width, depth, SplitMix64(seed ^ 0x2545f4914f6cdd1dULL).Next(),
           /*conservative=*/true) {}

double PairedCmRatioEstimator::EstimateLogRatio(uint32_t item) const {
  const double n1 = cm1_.Query(item) + 0.5;
  const double n2 = cm2_.Query(item) + 0.5;
  return std::log(n1 / n2);
}

std::vector<FeatureWeight> PairedCmRatioEstimator::TopDeltoids(size_t k,
                                                               uint32_t universe) const {
  TopKHeap heap(k);
  for (uint32_t item = 0; item < universe; ++item) {
    const double r = EstimateLogRatio(item);
    if (r == 0.0) continue;
    heap.Offer(item, static_cast<float>(r));
  }
  return heap.TopK(k);
}

}  // namespace wmsketch
