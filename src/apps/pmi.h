#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/awm_sketch.h"
#include "stream/reservoir.h"
#include "stream/window.h"

namespace wmsketch {

/// A retrieved high-PMI token pair with its estimated PMI (classifier weight
/// plus the negative-sampling offset correction).
struct PmiPair {
  uint32_t u;
  uint32_t v;
  double estimated_pmi;
  double raw_weight;
};

/// Options for the streaming PMI estimator, defaulting to the paper's
/// experimental setup (Sec. 8.3): 5-word co-occurrence spans (window 6),
/// 5 negative samples per true sample, a 4000-token unigram reservoir, and
/// an AWM-Sketch with heap size 1024 and depth 1.
struct PmiOptions {
  size_t window = 6;
  /// Synthetic product-of-unigram examples per true bigram. The default 1
  /// is the paper's balanced 0.5/0.5 formulation (Sec. 8.3), under which
  /// weights converge to the PMI exactly and chance pairs sit near weight 0.
  /// Values k > 1 give the word2vec-style k-negative-sampling objective:
  /// weights converge to PMI − log k (EstimatePmi adds the log k back), at
  /// the cost of a −log k "floor" of chance-pair weights that competes for
  /// the magnitude-ordered active set.
  uint32_t negatives_per_positive = 1;
  size_t reservoir_size = 4000;
  AwmSketchConfig sketch{/*width=*/1u << 16, /*depth=*/1, /*heap_capacity=*/1024};
  /// λ defaults to 1e-6 (the paper sweeps 1e-6..1e-8). The learning rate
  /// defaults to *constant* 0.1: the PMI objective is stationary and each
  /// individual pair is touched rarely, so a globally-decaying schedule
  /// starves late-arriving pairs of learning signal.
  LearnerOptions learner{.rate = LearningRate::Constant(0.1)};
  /// How often (in tokens) to prune pair-identity records not in the active
  /// set; bounds the identity map at O(heap + prune_interval).
  uint64_t prune_interval = 8192;
};

/// Streaming pointwise-mutual-information estimation (Sec. 8.3): a logistic
/// model is trained to discriminate true in-window bigrams (positives) from
/// synthetic bigrams drawn as independent unigram pairs from a reservoir
/// (negatives). At convergence with λ=0 the weight of pair (u,v) equals
/// log[p(u,v) / (K·p(u)p(v))] = PMI(u,v) − log K, where K is the
/// negative-to-positive sampling ratio; EstimatePmi adds the log K back.
///
/// The paper's insight (via Levy & Goldberg) is that this word2vec-style
/// objective, run over an AWM-Sketch instead of an embedding table, yields
/// the top-PMI *pairs* in sublinear memory. Pair identities (u,v) are
/// retained only while the pair occupies an active-set slot, mirroring the
/// paper's "strings in the heap" accounting.
class StreamingPmiEstimator {
 public:
  explicit StreamingPmiEstimator(const PmiOptions& options);

  /// Feeds the next token; `document_boundary` resets the co-occurrence
  /// window (pass true for the first token of each document).
  void ObserveToken(uint32_t token, bool document_boundary = false);

  /// Estimated PMI for an arbitrary pair (works for untracked pairs too,
  /// via the sketch estimate).
  double EstimatePmi(uint32_t u, uint32_t v) const;

  /// The k pairs with the largest estimated PMI among active-set pairs,
  /// sorted descending. Only pairs whose identity is still tracked are
  /// returned (hash-only entries are unresolvable, exactly as in the paper).
  std::vector<PmiPair> TopPairs(size_t k) const;

  /// Total positive (true bigram) examples consumed.
  uint64_t positives_seen() const { return positives_; }
  const AwmSketch& sketch() const { return model_; }
  /// Memory cost of the sketch + identity storage under the Sec. 7.1 model
  /// (two token ids per tracked pair).
  size_t MemoryCostBytes() const;

 private:
  void TrainPositive(uint32_t u, uint32_t v);
  void RecordIdentity(uint32_t feature, uint32_t u, uint32_t v);
  void PruneIdentities();

  PmiOptions options_;
  AwmSketch model_;
  SlidingWindowPairs window_;
  ReservoirSample<uint32_t> reservoir_;
  Rng rng_;
  double log_k_;  // log of negatives_per_positive
  uint64_t positives_ = 0;
  uint64_t tokens_ = 0;
  // feature id -> (u, v); pruned to the active set periodically.
  std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>> identities_;
};

}  // namespace wmsketch
