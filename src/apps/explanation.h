#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "api/learner.h"
#include "sketch/space_saving.h"
#include "util/top_k_heap.h"

namespace wmsketch {

/// Streaming data explanation (Sec. 8.1): find the attribute values most
/// indicative of a row being an outlier by training a budgeted classifier to
/// discriminate outliers from inliers, then reading off its heaviest
/// weights. Logistic weights approximate log-odds ratios, which track the
/// relative risk MacroBase-style systems rank by.
///
/// Following the paper's setup, each row is fed as a *sequence of 1-sparse
/// examples* — one per attribute — rather than a single multi-hot vector, so
/// that learned weights correlate cleanly with per-attribute relative risk
/// (footnote 4 of the paper). The per-row example burst is ingested through
/// Learner::UpdateBatch, and retrieval returns detached, materialized lists
/// (take a LearnerSnapshot for a frozen per-feature estimator).
class StreamingExplainer {
 public:
  /// Wraps a learner built through LearnerBuilder; the explainer does not
  /// own it. `outlier_repeats` upweights the (rarer) positive class by
  /// feeding each outlier row that many times: with outliers at fraction π,
  /// repeats ≈ (1−π)/π balances the classes so attribute weights become
  /// symmetric log-risk estimates (neutral ≈ 0) instead of being offset by
  /// the class prior — which is what makes magnitude-ranked retrieval
  /// surface *both* extremes of the risk scale (Fig. 8) and weights track
  /// relative risk linearly (Fig. 9).
  explicit StreamingExplainer(Learner* learner, uint32_t outlier_repeats = 1)
      : learner_(learner), outlier_repeats_(outlier_repeats) {}

  /// Observes one row: its attribute feature ids and outlier label. The
  /// row's 1-sparse examples (times the repeat factor) go in as one batch.
  void Observe(const std::vector<uint32_t>& attributes, bool outlier) {
    const int8_t y = outlier ? 1 : -1;
    const uint32_t repeats = outlier ? outlier_repeats_ : 1;
    batch_.clear();
    batch_.reserve(static_cast<size_t>(repeats) * attributes.size());
    for (uint32_t r = 0; r < repeats; ++r) {
      for (const uint32_t feature : attributes) {
        batch_.push_back(Example{SparseVector::OneHot(feature), y});
      }
    }
    learner_->UpdateBatch(batch_);
  }

  /// The k attributes with the largest |weight| — the extremes of the risk
  /// scale in both directions (Fig. 8's retrieval set), materialized into a
  /// detached list.
  std::vector<FeatureWeight> TopAttributes(size_t k) const { return learner_->TopK(k); }

  /// The k most outlier-indicative attributes: largest *signed* weights
  /// first. With imbalanced classes every weight may be negative (weights
  /// are conditional log-odds), so ranking by sign-descending weight — not
  /// by magnitude — identifies the risk-increasing side.
  std::vector<FeatureWeight> TopIndicative(size_t k) const {
    // Materialize everything the learner tracks, then re-rank by signed
    // weight.
    std::vector<FeatureWeight> all = learner_->TopK(std::numeric_limits<size_t>::max());
    std::sort(all.begin(), all.end(),
              [](const FeatureWeight& a, const FeatureWeight& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.feature < b.feature;
              });
    if (all.size() > k) all.resize(k);
    return all;
  }

  const Learner& learner() const { return *learner_; }

 private:
  Learner* learner_;
  uint32_t outlier_repeats_;
  std::vector<Example> batch_;  // reused per row to avoid reallocation
};

/// The MacroBase-style heavy-hitter explainer the paper compares against
/// (Fig. 8 top row): Space-Saving summaries of the attribute stream, either
/// over the positive (outlier) rows only or over both classes. Features it
/// surfaces are merely *frequent* — the experiment shows their relative risk
/// clusters near 1, wasting the budget.
class HeavyHitterExplainer {
 public:
  enum class Mode {
    kPositiveOnly,  ///< count attributes of outlier rows only
    kBoth,          ///< count attributes of all rows
  };

  HeavyHitterExplainer(size_t capacity, Mode mode) : ss_(capacity), mode_(mode) {}

  /// Observes one row.
  void Observe(const std::vector<uint32_t>& attributes, bool outlier) {
    if (mode_ == Mode::kPositiveOnly && !outlier) return;
    for (const uint32_t feature : attributes) ss_.Update(feature);
  }

  /// The k most frequent attributes under the mode's counting rule.
  std::vector<uint32_t> TopAttributes(size_t k) const {
    std::vector<uint32_t> out;
    for (const SpaceSavingEntry& e : ss_.Entries()) {
      if (out.size() >= k) break;
      out.push_back(e.item);
    }
    return out;
  }

  Mode mode() const { return mode_; }

 private:
  SpaceSaving ss_;
  Mode mode_;
};

}  // namespace wmsketch
