#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stream/sparse_vector.h"
#include "util/status.h"
#include "util/top_k_heap.h"

namespace wmsketch::net {

/// Payload codecs for the serving RPC protocol (framing: net/wire.h — the
/// same CRC32C envelope the dist sync protocol and the snapshot files use).
/// All payloads are little-endian fixed-field sections encoded with the
/// snapshot WriteRaw/SnapshotReader primitives, so truncation is detected
/// field-by-field and a malformed payload is Corruption, never a partial
/// parse.
///
/// Request/response flow (one request, one response, pipelining allowed —
/// the server answers a connection's requests in arrival order):
///
///   client                                 daemon
///     | -- kPredictRequest {examples} ------->  (micro-batched SIMD margins)
///     | <-- kPredictResponse {version, m[]} --
///     | -- kEstimateRequest {features} ------>  (micro-batched estimates)
///     | <-- kEstimateResponse {version, w[]} -
///     | -- kTopKRequest {k} ----------------->  (version-keyed cache)
///     | <-- kTopKResponse {version, pairs} ---
///     | -- kModelInfoRequest ---------------->
///     | <-- kModelInfoResponse {...} ---------
///     | -- kShutdownRequest ----------------->  (daemon stops serving)
///     | <-- kShutdownAck ---------------------
///
/// A request the daemon cannot serve comes back as kErrorResponse carrying
/// an encoded Status (round-tripped code/detail/message). Frame-level
/// corruption (bad magic/CRC/oversized length) is different: framing is
/// lost, so the daemon drops that connection — and only that connection.

inline constexpr uint32_t kServingProtocolVersion = 1;

/// Frame types on a serving connection. Values share the u8 type byte
/// namespace with dist::FrameType but live on different sockets; the range
/// starts above dist's so a cross-wired client fails loudly as Corruption.
enum class MsgType : uint8_t {
  kPredictRequest = 32,
  kPredictResponse = 33,
  kEstimateRequest = 34,
  kEstimateResponse = 35,
  kTopKRequest = 36,
  kTopKResponse = 37,
  kModelInfoRequest = 38,
  kModelInfoResponse = 39,
  kErrorResponse = 40,
  kShutdownRequest = 41,
  kShutdownAck = 42,
};

inline constexpr uint8_t kMinMsgType = static_cast<uint8_t>(MsgType::kPredictRequest);
inline constexpr uint8_t kMaxMsgType = static_cast<uint8_t>(MsgType::kShutdownAck);

/// Stable name for logging ("predict", "top-k", ...).
const char* MsgTypeName(MsgType type);

/// kPredictRequest payload: a batch of sparse vectors to score. Decoded
/// straight into Examples (label fixed at +1 — predict never reads it) so
/// the server can hand the batch to ServingHandle::PredictBatch untouched.
struct PredictRequest {
  std::vector<Example> examples;
};

/// kPredictResponse payload: margins[e] = wᵀx under one snapshot — the
/// whole batch is answered by a single pinned version.
struct PredictResponse {
  uint64_t version = 0;
  std::vector<double> margins;
};

/// kEstimateRequest payload: feature ids to point-estimate.
struct EstimateRequest {
  std::vector<uint32_t> features;
};

/// kEstimateResponse payload: estimates[i] = ŵ(features[i]) under one
/// snapshot version.
struct EstimateResponse {
  uint64_t version = 0;
  std::vector<float> estimates;
};

/// kTopKRequest payload.
struct TopKRequest {
  uint32_t k = 0;
};

/// kTopKResponse payload: the min(k, materialized) heaviest features in
/// descending magnitude, as of `version`.
struct TopKResponse {
  uint64_t version = 0;
  std::vector<FeatureWeight> entries;
};

/// kModelInfoResponse payload (the request carries no payload).
struct ModelInfoResponse {
  uint32_t protocol_version = kServingProtocolVersion;
  uint64_t snapshot_version = 0;
  uint64_t steps = 0;
  uint64_t resident_bytes = 0;
  /// Entries materialized in the snapshot's top-K (upper bound on any k).
  uint32_t top_k_capacity = 0;
};

std::string EncodePredictRequest(const PredictRequest& req);
/// Corruption on truncation; InvalidArgument when a decoded vector violates
/// the SparseVector invariants (unsorted/duplicate indices, non-finite
/// values) — the frame was CRC-valid, so this is a client bug, answered
/// with kErrorResponse on a live connection.
Result<PredictRequest> DecodePredictRequest(std::string_view payload);

std::string EncodePredictResponse(const PredictResponse& resp);
Result<PredictResponse> DecodePredictResponse(std::string_view payload);

std::string EncodeEstimateRequest(const EstimateRequest& req);
Result<EstimateRequest> DecodeEstimateRequest(std::string_view payload);

std::string EncodeEstimateResponse(const EstimateResponse& resp);
Result<EstimateResponse> DecodeEstimateResponse(std::string_view payload);

std::string EncodeTopKRequest(const TopKRequest& req);
Result<TopKRequest> DecodeTopKRequest(std::string_view payload);

std::string EncodeTopKResponse(const TopKResponse& resp);
Result<TopKResponse> DecodeTopKResponse(std::string_view payload);

std::string EncodeModelInfoResponse(const ModelInfoResponse& info);
Result<ModelInfoResponse> DecodeModelInfoResponse(std::string_view payload);

/// kErrorResponse payload: the daemon's Status, round-tripped so the client
/// reacts to the real failure, not a generic "rejected".
std::string EncodeError(const Status& status);
/// The remote Status (Corruption if the payload itself is malformed).
Status DecodeErrorStatus(std::string_view payload);

}  // namespace wmsketch::net
