#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace wmsketch::net {

/// Shared socket + frame wire helpers, used by BOTH network tiers: the
/// distributed-training sync protocol (src/dist/frame.cc is a thin wrapper
/// adding its FrameType enum) and the serving daemon (src/net/server.cc).
///
/// Every message on a SOCK_STREAM socket is one *typed frame*:
///
///   [u8 frame type][16-byte envelope header][u32 CRC32C][payload]
///
/// where the 16-byte header is the v3 snapshot envelope prefix
/// (core/snapshot_io.h: magic "WMS3", version, u64 payload length) and the
/// CRC32C covers header + payload. A frame is accepted only after its
/// declared length is bounded and its checksum verifies: a torn frame (peer
/// died mid-send), a bit-flipped payload, and a lying length field are all
/// rejected *before* any protocol state is touched — the receiver's only
/// possible reactions to a bad frame are "drop the connection" or "reject
/// with an error frame", never "apply half".
///
/// Failpoint sites are caller-named (e.g. "dist:send" / "net:recv") so each
/// tier's chaos harness can kill exactly its own protocol steps:
///   <site-send>  — error: fail before writing; short: write a torn prefix
///                  then fail; crash: exit mid-protocol.
///   <site-recv>  — error: fail before reading; short: consume a partial
///                  frame then fail (connection torn mid-read).

/// Upper bound on a single frame payload. Model snapshots and request
/// batches are KBs to MBs; anything near this bound is a corrupt length
/// field, rejected before allocation.
inline constexpr uint64_t kMaxFramePayloadBytes = uint64_t{1} << 28;

/// Bytes on the wire before the payload: type byte + 16-byte envelope
/// header + CRC32C.
inline constexpr size_t kFrameHeaderBytes = 1 + 16 + 4;

/// A received frame: the raw type byte (already range-checked against the
/// caller's [min_type, max_type] window) and the CRC-verified payload.
struct TypedFrame {
  uint8_t type = 0;
  std::string payload;
};

/// Writes all `n` bytes to `fd`, looping over partial writes. Uses
/// MSG_NOSIGNAL so a peer that died between frames surfaces as EPIPE, not a
/// process-killing SIGPIPE. IOError on any failure — a prefix may already
/// be on the wire, so the caller must treat the connection as dead.
Status WriteAll(int fd, const char* data, size_t n);

/// Reads exactly `n` bytes unless EOF intervenes; `*got` reports the bytes
/// actually read (short only at EOF). Timeouts (SO_RCVTIMEO) and resets
/// surface as IOError.
Status ReadUpTo(int fd, char* dst, size_t n, size_t* got);

/// Arms SO_RCVTIMEO/SO_SNDTIMEO on `fd` (no-op for timeout_ms <= 0), so a
/// hung peer surfaces as a timed-out IOError instead of a stuck thread.
Status SetIoTimeouts(int fd, int timeout_ms);

/// Assembles one complete frame (type + envelope header + CRC + payload).
std::string EncodeFrame(uint8_t type, std::string_view payload);

/// Writes one frame to `fd` (blocking, loops over partial writes).
/// `failpoint_site` names the WMS_FAILPOINT consulted first (error: fail
/// before writing; short: write a torn prefix then fail). IOError on any
/// write failure — by then a prefix may already be on the wire, so the
/// caller must treat the connection as dead.
Status SendFrame(int fd, uint8_t type, std::string_view payload,
                 const char* failpoint_site);

/// Reads one frame from `fd` (blocking). NotFound on clean EOF before the
/// first byte (peer closed between frames); IOError on timeouts/resets;
/// Corruption on a torn frame, a type outside [min_type, max_type], a bad
/// envelope, or a checksum mismatch. Only a returned OK frame has been
/// fully validated. `failpoint_site` as in SendFrame (error / short read).
Result<TypedFrame> RecvFrame(int fd, uint8_t min_type, uint8_t max_type,
                             const char* failpoint_site);

/// Non-blocking decode for buffered event loops: attempts to extract one
/// complete frame from the front of `buf`. Returns OK with *consumed == 0
/// when more bytes are needed (frame incomplete), OK with *consumed > 0
/// when `*frame` was decoded (the caller drops `*consumed` bytes), and
/// Corruption as in RecvFrame — after which the connection is
/// unrecoverable (framing is lost) and must be dropped.
Status TryDecodeFrame(std::string_view buf, uint8_t min_type, uint8_t max_type,
                      TypedFrame* frame, size_t* consumed);

}  // namespace wmsketch::net
