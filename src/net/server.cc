#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "net/wire.h"
#include "util/failpoint.h"

namespace wmsketch::net {

namespace {

/// One accepted connection, owned by exactly one reader thread.
struct Conn {
  int fd = -1;
  /// Raw bytes received and not yet decoded; frames are cut off the front
  /// via TryDecodeFrame. `pos` defers the erase so a drain pass over many
  /// frames is O(bytes), not O(bytes · frames).
  std::string in;
  size_t pos = 0;
  /// Peer closed its write side; serve what is buffered, then close.
  bool eof = false;
};

/// One request decoded in a dispatch round, in per-connection arrival
/// order. Predict/estimate requests carry their slice of the round's
/// combined batch; the response is assembled after the batched dispatch.
struct RoundRequest {
  int fd = -1;
  MsgType type{};
  /// [offset, offset+count) into the round's combined example/feature
  /// arrays (predict and estimate requests).
  size_t offset = 0;
  size_t count = 0;
  /// TopK: requested k. Decode failures: the error to answer with.
  uint32_t k = 0;
  Status error;
};

}  // namespace

/// Per-reader state. Everything except `mu`/`mailbox` and the stats
/// counters is touched only by the owning reader thread.
struct ServingServer::Reader {
  explicit Reader(ServingHandle h) : handle(std::move(h)) {}

  ServingHandle handle;
  std::thread thread;
  int epoll_fd = -1;
  /// eventfd: the acceptor signals new mailbox connections; Stop() signals
  /// termination. Wakes the blocking epoll_wait.
  int wake_fd = -1;

  Mutex mu;
  std::vector<int> mailbox WMS_GUARDED_BY(mu);

  std::unordered_map<int, Conn> conns;

  /// Version-keyed top-K response cache: encoded response bytes per k,
  /// valid for exactly one snapshot version. A publish invalidates the
  /// whole map the first time the reader observes the new version — no
  /// cross-thread protocol, the check rides the pin every query performs.
  uint64_t topk_cache_version = 0;
  std::unordered_map<uint32_t, std::string> topk_cache;

  /// Stats: written by the reader thread, read by stats() cross-thread.
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> corrupt{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> batched_requests{0};
  std::atomic<uint64_t> max_coalesced{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> cache_invalidations{0};
};

Result<std::unique_ptr<ServingServer>> ServingServer::Start(
    ServerOptions options, const HandleFactory& factory) {
  if (options.readers < 1 ||
      static_cast<size_t>(options.readers) > ServingState::kMaxHandles) {
    return Status::InvalidArgument("readers must be in [1, " +
                                   std::to_string(ServingState::kMaxHandles) + "]");
  }
  if (options.max_batch == 0) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (options.unix_path.empty() && options.tcp_port < 0) {
    return Status::InvalidArgument("no listener configured (unix_path or tcp_port)");
  }
  std::unique_ptr<ServingServer> server(new ServingServer());
  server->options_ = options;
  WMS_RETURN_NOT_OK(server->Bind(options));

  for (int i = 0; i < options.readers; ++i) {
    WMS_ASSIGN_OR_RETURN(ServingHandle handle, factory());
    auto reader = std::make_unique<Reader>(std::move(handle));
    reader->epoll_fd = ::epoll_create1(0);
    if (reader->epoll_fd < 0) {
      return Status::IOError(std::string("epoll_create1 failed: ") + std::strerror(errno));
    }
    reader->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (reader->wake_fd < 0) {
      return Status::IOError(std::string("eventfd failed: ") + std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = reader->wake_fd;
    if (::epoll_ctl(reader->epoll_fd, EPOLL_CTL_ADD, reader->wake_fd, &ev) != 0) {
      return Status::IOError(std::string("epoll_ctl failed: ") + std::strerror(errno));
    }
    server->readers_.push_back(std::move(reader));
  }
  for (auto& reader : server->readers_) {
    Reader* r = reader.get();
    r->thread = std::thread([server = server.get(), r] { server->ReaderLoop(*r); });
  }
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Status ServingServer::Bind(const ServerOptions& options) {
  accept_wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (accept_wake_fd_ < 0) {
    return Status::IOError(std::string("eventfd failed: ") + std::strerror(errno));
  }
  if (!options.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " + options.unix_path);
    }
    std::memcpy(addr.sun_path, options.unix_path.c_str(), options.unix_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::IOError(std::string("socket failed: ") + std::strerror(errno));
    ::unlink(options.unix_path.c_str());  // a stale path from a dead daemon
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
      const Status st =
          Status::IOError("bind/listen " + options.unix_path + " failed: " + std::strerror(errno));
      ::close(fd);
      return st;
    }
    unix_listen_fd_ = fd;
  }
  if (options.tcp_port >= 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options.tcp_port));
    addr.sin_addr.s_addr = htonl(options.tcp_any ? INADDR_ANY : INADDR_LOOPBACK);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::IOError(std::string("socket failed: ") + std::strerror(errno));
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
      const Status st = Status::IOError(std::string("bind/listen tcp failed: ") +
                                        std::strerror(errno));
      ::close(fd);
      return st;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      ::close(fd);
      return Status::IOError(std::string("getsockname failed: ") + std::strerror(errno));
    }
    tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    tcp_listen_fd_ = fd;
  }
  return Status::OK();
}

ServingServer::~ServingServer() { Stop(); }

void ServingServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Second caller: the first already joined (or is joining) — just make
    // sure we don't return before the threads are gone.
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& r : readers_) {
      if (r->thread.joinable()) r->thread.join();
    }
    return;
  }
  const uint64_t one = 1;
  if (accept_wake_fd_ >= 0) {
    (void)!::write(accept_wake_fd_, &one, sizeof(one));
  }
  for (auto& r : readers_) {
    if (r->wake_fd >= 0) (void)!::write(r->wake_fd, &one, sizeof(one));
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& r : readers_) {
    if (r->thread.joinable()) r->thread.join();
  }
  for (auto& r : readers_) {
    for (auto& [fd, conn] : r->conns) ::close(fd);
    r->conns.clear();
    {
      MutexLock lock(r->mu);
      for (const int fd : r->mailbox) ::close(fd);
      r->mailbox.clear();
    }
    if (r->wake_fd >= 0) ::close(std::exchange(r->wake_fd, -1));
    if (r->epoll_fd >= 0) ::close(std::exchange(r->epoll_fd, -1));
  }
  if (unix_listen_fd_ >= 0) {
    ::close(std::exchange(unix_listen_fd_, -1));
    ::unlink(options_.unix_path.c_str());
  }
  if (tcp_listen_fd_ >= 0) ::close(std::exchange(tcp_listen_fd_, -1));
  if (accept_wake_fd_ >= 0) ::close(std::exchange(accept_wake_fd_, -1));
  {
    MutexLock lock(shutdown_mu_);
    shutdown_requested_.store(true, std::memory_order_release);
  }
  shutdown_cv_.NotifyAll();
}

void ServingServer::WaitForShutdown() {
  MutexLock lock(shutdown_mu_);
  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    shutdown_cv_.Wait(shutdown_mu_, lock);
  }
}

ServerStats ServingServer::stats() const {
  ServerStats out;
  for (const auto& r : readers_) {
    out.connections_accepted += r->accepted.load(std::memory_order_relaxed);
    out.connections_dropped += r->dropped.load(std::memory_order_relaxed);
    out.frames_corrupt += r->corrupt.load(std::memory_order_relaxed);
    out.requests_rejected += r->rejected.load(std::memory_order_relaxed);
    out.batches_dispatched += r->batches.load(std::memory_order_relaxed);
    out.requests_batched += r->batched_requests.load(std::memory_order_relaxed);
    out.max_coalesced =
        std::max(out.max_coalesced, r->max_coalesced.load(std::memory_order_relaxed));
    out.topk_cache_hits += r->cache_hits.load(std::memory_order_relaxed);
    out.topk_cache_misses += r->cache_misses.load(std::memory_order_relaxed);
    out.topk_cache_invalidations +=
        r->cache_invalidations.load(std::memory_order_relaxed);
  }
  return out;
}

// ------------------------------------------------------------- acceptor

void ServingServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = pollfd{accept_wake_fd_, POLLIN, 0};
    if (unix_listen_fd_ >= 0) fds[n++] = pollfd{unix_listen_fd_, POLLIN, 0};
    if (tcp_listen_fd_ >= 0) fds[n++] = pollfd{tcp_listen_fd_, POLLIN, 0};
    const int ready = ::poll(fds, n, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;  // acceptor down; existing connections keep serving
    }
    for (nfds_t i = 1; i < n; ++i) {
      if ((fds[i].revents & POLLIN) != 0) (void)AcceptOne(fds[i].fd);
    }
  }
}

Status ServingServer::AcceptOne(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return Status::OK();
    return Status::IOError(std::string("accept failed: ") + std::strerror(errno));
  }
  if (const Status st = SetIoTimeouts(fd, options_.io_timeout_ms); !st.ok()) {
    ::close(fd);
    return st;
  }
  // Round-robin deal to a reader; the reader adopts the fd into its epoll
  // set at the next wake.
  Reader& r = *readers_[next_reader_];
  next_reader_ = (next_reader_ + 1) % readers_.size();
  {
    MutexLock lock(r.mu);
    r.mailbox.push_back(fd);
  }
  r.accepted.fetch_add(1, std::memory_order_relaxed);
  const uint64_t one = 1;
  (void)!::write(r.wake_fd, &one, sizeof(one));
  return Status::OK();
}

// -------------------------------------------------------------- readers

namespace {

void MaxRelaxed(std::atomic<uint64_t>& target, uint64_t value) {
  uint64_t cur = target.load(std::memory_order_relaxed);
  while (value > cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// Drains everything currently readable on `conn` into its buffer with
/// MSG_DONTWAIT (the fd itself stays blocking for the send path). Returns
/// false when the connection must be dropped (error or injected fault);
/// clean EOF sets conn.eof instead so buffered frames still get served.
bool ReadAvailable(Conn& conn) {
  const failpoint::Action act = WMS_FAILPOINT("net:recv");
  if (act == failpoint::Action::kError) return false;
  if (act == failpoint::Action::kShortWrite) {
    // Consume a torn prefix, then fail: the client died mid-request.
    char tear[8];
    (void)::recv(conn.fd, tear, sizeof(tear), MSG_DONTWAIT);
    return false;
  }
  char buf[64 * 1024];
  while (true) {
    const ssize_t r = ::recv(conn.fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    if (r == 0) {
      conn.eof = true;
      return true;
    }
    conn.in.append(buf, static_cast<size_t>(r));
  }
}

}  // namespace

void ServingServer::ReaderLoop(Reader& r) {
  std::vector<epoll_event> events(64);

  auto drop_conn = [&r](int fd, bool clean) {
    (void)::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    r.conns.erase(fd);
    if (!clean) r.dropped.fetch_add(1, std::memory_order_relaxed);
  };

  auto adopt_mailbox = [this, &r] {
    std::vector<int> incoming;
    {
      MutexLock lock(r.mu);
      incoming.swap(r.mailbox);
    }
    for (const int fd : incoming) {
      if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        continue;
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        r.dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Conn conn;
      conn.fd = fd;
      r.conns.emplace(fd, std::move(conn));
    }
  };

  // Serves one kTopKRequest from the version-keyed cache; a miss encodes a
  // fresh response and caches it for the snapshot version it was served at.
  auto serve_topk = [&r](uint32_t k) -> const std::string& {
    uint64_t version = r.handle.Refresh();
    if (version != r.topk_cache_version) {
      if (r.topk_cache_version != 0) {
        r.cache_invalidations.fetch_add(1, std::memory_order_relaxed);
      }
      r.topk_cache.clear();
      r.topk_cache_version = version;
    }
    const auto it = r.topk_cache.find(k);
    if (it != r.topk_cache.end()) {
      r.cache_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    r.cache_misses.fetch_add(1, std::memory_order_relaxed);
    TopKResponse resp;
    resp.entries = r.handle.TopK(k);
    resp.version = r.handle.version();
    if (resp.version != version) {
      // A publish landed between the refresh and the copy (vanishingly
      // rare): key the entry under the version actually served.
      r.topk_cache.clear();
      r.topk_cache_version = resp.version;
    }
    return r.topk_cache.emplace(k, EncodeTopKResponse(resp)).first->second;
  };

  while (!stopping_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(r.epoll_fd, events.data(), static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }

    // Deadline-or-size batch accumulation: after the blocking wait returns,
    // keep taking zero-timeout passes while connections are still becoming
    // readable — the burst is over (and the batch is cut) the moment a pass
    // comes back empty, so idle traffic never waits on a timer. The size
    // cut is enforced by the drain below; the passes here just bound how
    // much buffered input a round can see.
    std::vector<int> dropped_fds;
    for (int pass = 0; pass < 16; ++pass) {
      bool any_conn = false;
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == r.wake_fd) {
          uint64_t drain = 0;
          (void)!::read(r.wake_fd, &drain, sizeof(drain));
          adopt_mailbox();
          continue;
        }
        const auto it = r.conns.find(fd);
        if (it == r.conns.end()) continue;
        any_conn = true;
        if (!ReadAvailable(it->second)) dropped_fds.push_back(fd);
      }
      if (stopping_.load(std::memory_order_acquire)) break;
      if (!any_conn && pass > 0) break;
      n = ::epoll_wait(r.epoll_fd, events.data(), static_cast<int>(events.size()), 0);
      if (n <= 0) break;
    }
    for (const int fd : dropped_fds) {
      if (r.conns.count(fd) != 0) drop_conn(fd, /*clean=*/false);
    }
    if (stopping_.load(std::memory_order_acquire)) break;

    // Dispatch rounds until every buffered complete frame is answered. Each
    // round coalesces at most max_batch examples (the size cut); the loop
    // re-runs for whatever stayed buffered.
    bool more = true;
    while (more && !stopping_.load(std::memory_order_acquire)) {
      more = false;
      std::vector<RoundRequest> round;
      std::vector<Example> examples;
      std::vector<uint32_t> features;
      std::vector<int> to_drop;
      std::vector<int> to_drop_clean;

      for (auto& [fd, conn] : r.conns) {
        bool conn_dead = false;
        while (examples.size() < options_.max_batch &&
               features.size() < options_.max_batch) {
          TypedFrame frame;
          size_t consumed = 0;
          const std::string_view buffered(conn.in.data() + conn.pos,
                                          conn.in.size() - conn.pos);
          const Status st =
              TryDecodeFrame(buffered, kMinMsgType, kMaxMsgType, &frame, &consumed);
          if (!st.ok()) {
            // Framing is lost: answer (best-effort) and drop the connection.
            r.corrupt.fetch_add(1, std::memory_order_relaxed);
            (void)SendFrame(fd, static_cast<uint8_t>(MsgType::kErrorResponse),
                            EncodeError(st), "net:send");
            to_drop.push_back(fd);
            conn_dead = true;
            break;
          }
          if (consumed == 0) break;  // incomplete frame: wait for more bytes
          conn.pos += consumed;

          RoundRequest req;
          req.fd = fd;
          req.type = static_cast<MsgType>(frame.type);
          switch (req.type) {
            case MsgType::kPredictRequest: {
              Result<PredictRequest> decoded = DecodePredictRequest(frame.payload);
              if (!decoded.ok()) {
                req.error = decoded.status();
              } else {
                PredictRequest request = std::move(decoded).value();
                req.offset = examples.size();
                req.count = request.examples.size();
                for (Example& example : request.examples) {
                  examples.push_back(std::move(example));
                }
              }
              break;
            }
            case MsgType::kEstimateRequest: {
              Result<EstimateRequest> decoded = DecodeEstimateRequest(frame.payload);
              if (!decoded.ok()) {
                req.error = decoded.status();
              } else {
                const EstimateRequest& request = decoded.value();
                req.offset = features.size();
                req.count = request.features.size();
                features.insert(features.end(), request.features.begin(),
                                request.features.end());
              }
              break;
            }
            case MsgType::kTopKRequest: {
              Result<TopKRequest> decoded = DecodeTopKRequest(frame.payload);
              if (!decoded.ok()) {
                req.error = decoded.status();
              } else {
                req.k = decoded.value().k;
              }
              break;
            }
            case MsgType::kModelInfoRequest:
            case MsgType::kShutdownRequest:
              break;
            default:
              req.error = Status::InvalidArgument(
                  std::string("unexpected frame on a serving connection: ") +
                  MsgTypeName(req.type));
              break;
          }
          round.push_back(std::move(req));
        }
        if (conn_dead) continue;
        // Compact the consumed prefix once per round, not once per frame.
        if (conn.pos > 0) {
          conn.in.erase(0, conn.pos);
          conn.pos = 0;
        }
        if (conn.in.size() > 0 &&
            (examples.size() >= options_.max_batch ||
             features.size() >= options_.max_batch)) {
          more = true;  // size cut hit with frames still buffered
        }
        if (conn.eof) {
          if (conn.in.empty()) {
            to_drop_clean.push_back(fd);  // clean close between frames
          } else {
            // EOF inside a frame: the peer died mid-send (torn frame).
            r.corrupt.fetch_add(1, std::memory_order_relaxed);
            to_drop.push_back(fd);
          }
        }
      }

      // The micro-batch dispatch: one snapshot pin + one SIMD batch kernel
      // call for every example (and every feature key) the round gathered,
      // regardless of how many connections they arrived on.
      std::vector<double> margins(examples.size());
      uint64_t predict_version = 0;
      if (!examples.empty()) {
        r.handle.PredictBatch(examples, margins.data());
        predict_version = r.handle.version();
        r.batches.fetch_add(1, std::memory_order_relaxed);
      }
      std::vector<float> estimates(features.size());
      uint64_t estimate_version = 0;
      if (!features.empty()) {
        r.handle.EstimateBatch(features, estimates.data());
        estimate_version = r.handle.version();
        r.batches.fetch_add(1, std::memory_order_relaxed);
      }

      uint64_t coalesced = 0;
      for (const RoundRequest& req : round) {
        if (req.type == MsgType::kPredictRequest ||
            req.type == MsgType::kEstimateRequest) {
          ++coalesced;
        }
      }
      if (coalesced > 0) {
        r.batched_requests.fetch_add(coalesced, std::memory_order_relaxed);
        MaxRelaxed(r.max_coalesced, coalesced);
      }

      // Answer in arrival order (the round was drained connection by
      // connection, in frame order within each).
      for (const RoundRequest& req : round) {
        if (r.conns.count(req.fd) == 0) continue;  // dropped earlier this round
        uint8_t type = 0;
        std::string payload;
        if (!req.error.ok()) {
          r.rejected.fetch_add(1, std::memory_order_relaxed);
          type = static_cast<uint8_t>(MsgType::kErrorResponse);
          payload = EncodeError(req.error);
        } else {
          switch (req.type) {
            case MsgType::kPredictRequest: {
              PredictResponse resp;
              resp.version = predict_version;
              resp.margins.assign(margins.begin() + static_cast<ptrdiff_t>(req.offset),
                                  margins.begin() +
                                      static_cast<ptrdiff_t>(req.offset + req.count));
              type = static_cast<uint8_t>(MsgType::kPredictResponse);
              payload = EncodePredictResponse(resp);
              break;
            }
            case MsgType::kEstimateRequest: {
              EstimateResponse resp;
              resp.version = estimate_version;
              resp.estimates.assign(
                  estimates.begin() + static_cast<ptrdiff_t>(req.offset),
                  estimates.begin() + static_cast<ptrdiff_t>(req.offset + req.count));
              type = static_cast<uint8_t>(MsgType::kEstimateResponse);
              payload = EncodeEstimateResponse(resp);
              break;
            }
            case MsgType::kTopKRequest:
              type = static_cast<uint8_t>(MsgType::kTopKResponse);
              payload = serve_topk(req.k);
              break;
            case MsgType::kModelInfoRequest: {
              ModelInfoResponse info;
              info.snapshot_version = r.handle.Refresh();
              info.steps = r.handle.steps();
              info.resident_bytes = r.handle.resident_bytes();
              info.top_k_capacity = static_cast<uint32_t>(r.handle.top_k_size());
              type = static_cast<uint8_t>(MsgType::kModelInfoResponse);
              payload = EncodeModelInfoResponse(info);
              break;
            }
            case MsgType::kShutdownRequest:
              type = static_cast<uint8_t>(MsgType::kShutdownAck);
              break;
            default:
              continue;  // unreachable: bad types got req.error above
          }
        }
        const Status sent = SendFrame(req.fd, type, payload, "net:send");
        if (!sent.ok()) {
          drop_conn(req.fd, /*clean=*/false);
          continue;
        }
        if (req.error.ok() && req.type == MsgType::kShutdownRequest) {
          {
            MutexLock lock(shutdown_mu_);
            shutdown_requested_.store(true, std::memory_order_release);
          }
          shutdown_cv_.NotifyAll();
        }
      }

      for (const int fd : to_drop) {
        if (r.conns.count(fd) != 0) drop_conn(fd, /*clean=*/false);
      }
      for (const int fd : to_drop_clean) {
        if (r.conns.count(fd) != 0) drop_conn(fd, /*clean=*/true);
      }
    }
  }
}

}  // namespace wmsketch::net
