#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/serving.h"
#include "net/protocol.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace wmsketch::net {

/// The serving daemon core: an epoll front-end over ServingHandle.
///
/// Layout: one acceptor thread owns the listening sockets (Unix-domain
/// and/or TCP) and deals accepted connections round-robin to N reader
/// threads. Each reader owns an epoll instance, its connections, and ONE
/// ServingHandle (the hazard-slot contract: one handle, one thread) — so
/// readers never share mutable state on the serving path and scale like the
/// in-process bench_serving readers.
///
/// The performance core is micro-batching: a reader drains every complete
/// frame its ready connections have buffered *before* touching the model,
/// then routes all pending predict examples through ONE
/// ServingHandle::PredictBatch call and all pending estimate features
/// through ONE EstimateBatch call — one snapshot pin and one SIMD gather
/// dispatch amortized across every request that arrived concurrently. The
/// batch cut is deadline-or-size: a dispatch fires as soon as either
/// `max_batch` examples are pending (size cut) or a zero-timeout epoll pass
/// finds no more ready connections (the "deadline" is the instant the
/// arrival burst is exhausted — idle traffic is dispatched immediately and
/// never waits on a timer).
///
/// Top-K requests are answered from a reader-local cache keyed on
/// (snapshot version, k): the encoded response bytes are reused until a
/// publish advances the version, which invalidates the whole cache in O(1)
/// observation — no cross-thread invalidation protocol, the version check
/// rides the pin the reader already performs.
///
/// Fault containment: frame-level corruption (bad magic, bad CRC, lying
/// length, unknown type) loses framing, so that connection — and only that
/// connection — is dropped. Payload-level failures on a CRC-valid frame
/// (malformed request content) are answered with an error frame and the
/// connection keeps serving. Failpoint sites "net:recv" / "net:send"
/// inject per-connection faults for the chaos tests.
struct ServerOptions {
  /// Unix-domain socket path ("" = no unix listener). Paths are capped at
  /// sizeof(sockaddr_un::sun_path)-1 (~107 bytes).
  std::string unix_path;
  /// TCP listen port (-1 = no TCP listener, 0 = kernel-assigned; read the
  /// bound port back via ServingServer::tcp_port()). Binds 127.0.0.1 unless
  /// `tcp_any` — serving sockets default loopback-only.
  int tcp_port = -1;
  bool tcp_any = false;
  /// Reader threads; each owns one epoll loop and one ServingHandle.
  int readers = 1;
  /// Size cut for micro-batches: a dispatch fires once this many examples
  /// (or estimate keys) are pending on a reader.
  size_t max_batch = 256;
  /// SO_RCVTIMEO/SO_SNDTIMEO on accepted connections (<= 0: none).
  int io_timeout_ms = 5000;
};

/// Monotonic counters exposed for tests and ops. Snapshot via
/// ServingServer::stats(); values are sums over all reader threads.
struct ServerStats {
  uint64_t connections_accepted = 0;
  /// Connections dropped for any reason other than clean client close
  /// (frame corruption, IO errors, injected faults).
  uint64_t connections_dropped = 0;
  /// Frames rejected as Corruption (each also drops its connection).
  uint64_t frames_corrupt = 0;
  /// CRC-valid requests answered with an error frame (connection kept).
  uint64_t requests_rejected = 0;
  /// Batched-dispatch calls into PredictBatch/EstimateBatch.
  uint64_t batches_dispatched = 0;
  /// Requests that rode a batched dispatch (predict + estimate).
  uint64_t requests_batched = 0;
  /// Largest number of requests coalesced into one dispatch.
  uint64_t max_coalesced = 0;
  uint64_t topk_cache_hits = 0;
  uint64_t topk_cache_misses = 0;
  /// Times a reader observed a version advance and flushed its top-K cache.
  uint64_t topk_cache_invalidations = 0;
};

class ServingServer {
 public:
  /// Acquires one ServingHandle per reader (e.g. from
  /// Learner::AcquireServingHandle). Called options.readers times on the
  /// starting thread; handles migrate onto their reader threads before any
  /// serving happens.
  using HandleFactory = std::function<Result<ServingHandle>()>;

  /// Binds the listeners, spawns the reader + acceptor threads, and starts
  /// serving. InvalidArgument for a configuration with no listener or no
  /// readers; IOError when a bind fails.
  static Result<std::unique_ptr<ServingServer>> Start(ServerOptions options,
                                                      const HandleFactory& factory);

  ~ServingServer();
  ServingServer(const ServingServer&) = delete;
  ServingServer& operator=(const ServingServer&) = delete;

  /// Stops accepting, closes all connections, and joins every thread.
  /// Idempotent; also invoked by the destructor.
  void Stop();

  /// Blocks until a client's kShutdownRequest lands (or Stop() is called).
  /// The daemon main loop: WaitForShutdown() then Stop().
  void WaitForShutdown();

  /// Bound TCP port (meaningful when options.tcp_port >= 0).
  int tcp_port() const { return tcp_port_; }

  /// Aggregated counters across all readers (weakly consistent — each
  /// counter is internally exact, reads between them are unordered).
  ServerStats stats() const;

 private:
  struct Reader;

  ServingServer() = default;

  Status Bind(const ServerOptions& options);
  void AcceptLoop();
  Status AcceptOne(int listen_fd);
  void ReaderLoop(Reader& reader);

  ServerOptions options_;
  int unix_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int tcp_port_ = -1;
  /// Wakes the acceptor poll on Stop().
  int accept_wake_fd_ = -1;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};

  mutable Mutex shutdown_mu_;
  CondVar shutdown_cv_;

  std::vector<std::unique_ptr<Reader>> readers_;
  std::thread accept_thread_;
  size_t next_reader_ = 0;
};

}  // namespace wmsketch::net
