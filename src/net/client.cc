#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "net/wire.h"

namespace wmsketch::net {

Result<ServingClient> ServingClient::ConnectUnix(const std::string& path,
                                                 int io_timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(std::string("socket failed: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st =
        Status::IOError("connect " + path + " failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (const Status st = SetIoTimeouts(fd, io_timeout_ms); !st.ok()) {
    ::close(fd);
    return st;
  }
  return ServingClient(fd);
}

Result<ServingClient> ServingClient::ConnectTcp(const std::string& host, int port,
                                                int io_timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(std::string("socket failed: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Status::IOError("connect " + host + ":" + std::to_string(port) +
                                      " failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (const Status st = SetIoTimeouts(fd, io_timeout_ms); !st.ok()) {
    ::close(fd);
    return st;
  }
  return ServingClient(fd);
}

ServingClient::ServingClient(ServingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

ServingClient& ServingClient::operator=(ServingClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

ServingClient::~ServingClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<TypedFrame> ServingClient::Call(MsgType request, std::string_view payload,
                                       MsgType expected_response) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  WMS_RETURN_NOT_OK(SendFrame(fd_, static_cast<uint8_t>(request), payload,
                              "net:client_send"));
  WMS_ASSIGN_OR_RETURN(
      TypedFrame reply,
      RecvFrame(fd_, kMinMsgType, kMaxMsgType, "net:client_recv"));
  if (reply.type == static_cast<uint8_t>(MsgType::kErrorResponse)) {
    return DecodeErrorStatus(reply.payload);
  }
  if (reply.type != static_cast<uint8_t>(expected_response)) {
    return Status::Corruption(std::string("unexpected reply type ") +
                              MsgTypeName(static_cast<MsgType>(reply.type)) +
                              " to a " + MsgTypeName(request) + " request");
  }
  return reply;
}

Result<PredictResponse> ServingClient::Predict(std::span<const Example> batch) {
  PredictRequest req;
  req.examples.assign(batch.begin(), batch.end());
  WMS_ASSIGN_OR_RETURN(const TypedFrame reply,
                       Call(MsgType::kPredictRequest, EncodePredictRequest(req),
                            MsgType::kPredictResponse));
  return DecodePredictResponse(reply.payload);
}

Result<EstimateResponse> ServingClient::Estimate(std::span<const uint32_t> features) {
  EstimateRequest req;
  req.features.assign(features.begin(), features.end());
  WMS_ASSIGN_OR_RETURN(const TypedFrame reply,
                       Call(MsgType::kEstimateRequest, EncodeEstimateRequest(req),
                            MsgType::kEstimateResponse));
  return DecodeEstimateResponse(reply.payload);
}

Result<TopKResponse> ServingClient::TopK(uint32_t k) {
  TopKRequest req;
  req.k = k;
  WMS_ASSIGN_OR_RETURN(const TypedFrame reply,
                       Call(MsgType::kTopKRequest, EncodeTopKRequest(req),
                            MsgType::kTopKResponse));
  return DecodeTopKResponse(reply.payload);
}

Result<ModelInfoResponse> ServingClient::ModelInfo() {
  WMS_ASSIGN_OR_RETURN(
      const TypedFrame reply,
      Call(MsgType::kModelInfoRequest, {}, MsgType::kModelInfoResponse));
  return DecodeModelInfoResponse(reply.payload);
}

Status ServingClient::Shutdown() {
  return Call(MsgType::kShutdownRequest, {}, MsgType::kShutdownAck).status();
}

}  // namespace wmsketch::net
