#include "net/wire.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/snapshot_io.h"
#include "util/crc32c.h"
#include "util/failpoint.h"

namespace wmsketch::net {

Status WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that died between frames must surface as EPIPE,
    // not kill the process with SIGPIPE — the retry loops depend on it.
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("frame write failed: ") + std::strerror(errno));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status ReadUpTo(int fd, char* dst, size_t n, size_t* got) {
  *got = 0;
  while (*got < n) {
    const ssize_t r = ::read(fd, dst + *got, n - *got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IOError("frame read timed out");
      }
      return Status::IOError(std::string("frame read failed: ") + std::strerror(errno));
    }
    if (r == 0) return Status::OK();  // EOF; caller inspects *got
    *got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status SetIoTimeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return Status::OK();
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError(std::string("setsockopt failed: ") + std::strerror(errno));
  }
  return Status::OK();
}

std::string EncodeFrame(uint8_t type, std::string_view payload) {
  // Assemble the whole frame first so a torn write is a contiguous prefix —
  // exactly what a process death mid-send leaves on a SOCK_STREAM socket.
  std::string buf;
  buf.reserve(kFrameHeaderBytes + payload.size());
  buf.push_back(static_cast<char>(type));
  char header[16];
  const uint32_t magic = snapshot::kEnvelopeMagic;
  const uint32_t version = snapshot::kEnvelopeVersion;
  const uint64_t length = payload.size();
  std::memcpy(header + 0, &magic, sizeof(magic));
  std::memcpy(header + 4, &version, sizeof(version));
  std::memcpy(header + 8, &length, sizeof(length));
  buf.append(header, sizeof(header));
  const uint32_t crc = crc32c::Extend(crc32c::Value(header, sizeof(header)),
                                      payload.data(), payload.size());
  buf.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  buf.append(payload);
  return buf;
}

Status SendFrame(int fd, uint8_t type, std::string_view payload,
                 const char* failpoint_site) {
  const failpoint::Action act = WMS_FAILPOINT(failpoint_site);
  if (act == failpoint::Action::kError) {
    return Status::IOError("injected send failure");
  }
  const std::string buf = EncodeFrame(type, payload);
  if (act == failpoint::Action::kShortWrite) {
    WMS_RETURN_NOT_OK(WriteAll(fd, buf.data(), buf.size() / 2));
    return Status::IOError("injected torn write mid-frame");
  }
  return WriteAll(fd, buf.data(), buf.size());
}

namespace {

/// Validates the 20 header bytes after the type byte (magic, version,
/// length cap) and extracts the declared payload length + CRC.
Status DecodeHeader(const char* head, uint64_t* length, uint32_t* declared_crc) {
  uint32_t magic, version;
  std::memcpy(&magic, head + 1, sizeof(magic));
  std::memcpy(&version, head + 5, sizeof(version));
  std::memcpy(length, head + 9, sizeof(*length));
  std::memcpy(declared_crc, head + 17, sizeof(*declared_crc));
  if (magic != snapshot::kEnvelopeMagic) return Status::Corruption("bad frame magic");
  if (version != snapshot::kEnvelopeVersion) {
    return Status::Corruption("unsupported frame envelope version");
  }
  if (*length > kMaxFramePayloadBytes) {
    return Status::Corruption("frame payload length exceeds sanity cap");
  }
  return Status::OK();
}

Status CheckCrc(const char* head, std::string_view payload, uint32_t declared_crc) {
  const uint32_t actual_crc = crc32c::Extend(crc32c::Value(head + 1, 16),
                                             payload.data(), payload.size());
  if (actual_crc != declared_crc) return Status::Corruption("frame checksum mismatch");
  return Status::OK();
}

}  // namespace

Result<TypedFrame> RecvFrame(int fd, uint8_t min_type, uint8_t max_type,
                             const char* failpoint_site) {
  const failpoint::Action act = WMS_FAILPOINT(failpoint_site);
  if (act == failpoint::Action::kError) {
    return Status::IOError("injected recv failure");
  }
  char head[kFrameHeaderBytes];
  size_t got = 0;
  WMS_RETURN_NOT_OK(ReadUpTo(fd, head, 1, &got));
  if (got == 0) return Status::NotFound("connection closed");
  const uint8_t raw_type = static_cast<uint8_t>(head[0]);
  if (raw_type < min_type || raw_type > max_type) {
    return Status::Corruption("unknown frame type " + std::to_string(raw_type));
  }
  WMS_RETURN_NOT_OK(ReadUpTo(fd, head + 1, sizeof(head) - 1, &got));
  if (got != sizeof(head) - 1) return Status::Corruption("torn frame header");

  uint64_t length;
  uint32_t declared_crc;
  WMS_RETURN_NOT_OK(DecodeHeader(head, &length, &declared_crc));

  TypedFrame frame;
  frame.type = raw_type;
  frame.payload.resize(static_cast<size_t>(length));
  if (act == failpoint::Action::kShortWrite) {
    // Consume a partial payload, then fail: the connection is now mid-frame
    // desynchronized, exactly like a peer reset halfway through a read.
    WMS_RETURN_NOT_OK(ReadUpTo(fd, frame.payload.data(), frame.payload.size() / 2, &got));
    return Status::IOError("injected torn read mid-frame");
  }
  WMS_RETURN_NOT_OK(ReadUpTo(fd, frame.payload.data(), frame.payload.size(), &got));
  if (got != frame.payload.size()) return Status::Corruption("torn frame payload");

  WMS_RETURN_NOT_OK(CheckCrc(head, frame.payload, declared_crc));
  return frame;
}

Status TryDecodeFrame(std::string_view buf, uint8_t min_type, uint8_t max_type,
                      TypedFrame* frame, size_t* consumed) {
  *consumed = 0;
  if (buf.empty()) return Status::OK();
  // The type byte and header are validated as soon as they are available —
  // a garbage connection is dropped without waiting for a (lying) payload
  // length worth of bytes to accumulate.
  const uint8_t raw_type = static_cast<uint8_t>(buf[0]);
  if (raw_type < min_type || raw_type > max_type) {
    return Status::Corruption("unknown frame type " + std::to_string(raw_type));
  }
  if (buf.size() < kFrameHeaderBytes) return Status::OK();
  uint64_t length;
  uint32_t declared_crc;
  WMS_RETURN_NOT_OK(DecodeHeader(buf.data(), &length, &declared_crc));
  if (buf.size() < kFrameHeaderBytes + length) return Status::OK();

  frame->type = raw_type;
  frame->payload.assign(buf.data() + kFrameHeaderBytes, static_cast<size_t>(length));
  WMS_RETURN_NOT_OK(CheckCrc(buf.data(), frame->payload, declared_crc));
  *consumed = kFrameHeaderBytes + static_cast<size_t>(length);
  return Status::OK();
}

}  // namespace wmsketch::net
