#pragma once

#include <span>
#include <string>

#include "net/protocol.h"
#include "net/wire.h"
#include "util/status.h"

namespace wmsketch::net {

/// Blocking client for the serving RPC protocol (net/protocol.h): one
/// request, one response, over a Unix-domain or TCP connection. Used by the
/// daemon's tests, the load-generator bench, and as the reference
/// implementation for external clients. Single-threaded per instance
/// (requests are serialized on one socket); open one client per thread.
///
/// Failpoint sites "net:client_send" / "net:client_recv" tear the client
/// side of the protocol — distinct from the server's "net:send"/"net:recv"
/// so chaos tests can kill exactly one side in-process.
class ServingClient {
 public:
  static Result<ServingClient> ConnectUnix(const std::string& path,
                                           int io_timeout_ms = 5000);
  static Result<ServingClient> ConnectTcp(const std::string& host, int port,
                                          int io_timeout_ms = 5000);

  ServingClient(ServingClient&& other) noexcept;
  ServingClient& operator=(ServingClient&& other) noexcept;
  ServingClient(const ServingClient&) = delete;
  ServingClient& operator=(const ServingClient&) = delete;
  ~ServingClient();

  /// Batched margins under one snapshot: margins[e] = wᵀ·batch[e].
  Result<PredictResponse> Predict(std::span<const Example> batch);
  /// Batched point estimates under one snapshot.
  Result<EstimateResponse> Estimate(std::span<const uint32_t> features);
  /// The k heaviest materialized features of the latest snapshot.
  Result<TopKResponse> TopK(uint32_t k);
  Result<ModelInfoResponse> ModelInfo();
  /// Asks the daemon to stop serving (acked before the daemon stops).
  Status Shutdown();

  /// The connected socket (tests only — e.g. writing hand-assembled bytes).
  int fd() const { return fd_; }

 private:
  explicit ServingClient(int fd) : fd_(fd) {}

  /// One request/response exchange; checks the reply type and unwraps
  /// kErrorResponse into its carried Status.
  Result<TypedFrame> Call(MsgType request, std::string_view payload,
                          MsgType expected_response);

  int fd_ = -1;
};

}  // namespace wmsketch::net
