#include "net/protocol.h"

#include <sstream>
#include <utility>

#include "core/snapshot_io.h"

namespace wmsketch::net {

namespace {

using snapshot::SnapshotReader;
using snapshot::WriteRaw;

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kPredictRequest: return "predict";
    case MsgType::kPredictResponse: return "predict-response";
    case MsgType::kEstimateRequest: return "estimate";
    case MsgType::kEstimateResponse: return "estimate-response";
    case MsgType::kTopKRequest: return "top-k";
    case MsgType::kTopKResponse: return "top-k-response";
    case MsgType::kModelInfoRequest: return "model-info";
    case MsgType::kModelInfoResponse: return "model-info-response";
    case MsgType::kErrorResponse: return "error";
    case MsgType::kShutdownRequest: return "shutdown";
    case MsgType::kShutdownAck: return "shutdown-ack";
  }
  return "unknown";
}

std::string EncodePredictRequest(const PredictRequest& req) {
  std::ostringstream os(std::ios::binary);
  WriteRaw(os, static_cast<uint32_t>(req.examples.size()));
  for (const Example& example : req.examples) {
    const SparseVector& x = example.x;
    WriteRaw(os, static_cast<uint32_t>(x.nnz()));
    snapshot::WriteBytes(os, x.indices().data(), x.nnz() * sizeof(uint32_t));
    snapshot::WriteBytes(os, x.values().data(), x.nnz() * sizeof(float));
  }
  return std::move(os).str();
}

Result<PredictRequest> DecodePredictRequest(std::string_view payload) {
  SnapshotReader in(payload);
  uint32_t count = 0;
  if (!in.ReadRaw(&count)) return Status::Corruption("truncated predict request");
  // Every example costs at least its nnz field, so `count` is bounded by the
  // (already CRC-verified, length-capped) payload before any allocation.
  if (!in.CanRead(count, sizeof(uint32_t))) {
    return Status::Corruption("predict request example count exceeds payload");
  }
  PredictRequest req;
  req.examples.reserve(count);
  for (uint32_t e = 0; e < count; ++e) {
    uint32_t nnz = 0;
    if (!in.ReadRaw(&nnz)) return Status::Corruption("truncated predict request");
    if (!in.CanRead(nnz, sizeof(uint32_t) + sizeof(float))) {
      return Status::Corruption("predict request nnz exceeds payload");
    }
    std::vector<uint32_t> indices(nnz);
    std::vector<float> values(nnz);
    if (!in.ReadExactRaw(reinterpret_cast<char*>(indices.data()),
                         nnz * sizeof(uint32_t)) ||
        !in.ReadExactRaw(reinterpret_cast<char*>(values.data()), nnz * sizeof(float))) {
      return Status::Corruption("truncated predict request");
    }
    Example example;
    example.x = SparseVector(std::move(indices), std::move(values));
    // CRC-valid frame, invalid content: a client bug (unsorted indices,
    // NaNs), answered with an error frame — the connection stays up.
    WMS_RETURN_NOT_OK(example.x.Validate());
    req.examples.push_back(std::move(example));
  }
  return req;
}

std::string EncodePredictResponse(const PredictResponse& resp) {
  std::ostringstream os(std::ios::binary);
  WriteRaw(os, resp.version);
  WriteRaw(os, static_cast<uint32_t>(resp.margins.size()));
  snapshot::WriteBytes(os, resp.margins.data(), resp.margins.size() * sizeof(double));
  return std::move(os).str();
}

Result<PredictResponse> DecodePredictResponse(std::string_view payload) {
  SnapshotReader in(payload);
  PredictResponse resp;
  uint32_t count = 0;
  if (!in.ReadRaw(&resp.version) || !in.ReadRaw(&count)) {
    return Status::Corruption("truncated predict response");
  }
  if (!in.CanRead(count, sizeof(double))) {
    return Status::Corruption("predict response count exceeds payload");
  }
  resp.margins.resize(count);
  if (!in.ReadExactRaw(reinterpret_cast<char*>(resp.margins.data()),
                       count * sizeof(double))) {
    return Status::Corruption("truncated predict response");
  }
  return resp;
}

std::string EncodeEstimateRequest(const EstimateRequest& req) {
  std::ostringstream os(std::ios::binary);
  WriteRaw(os, static_cast<uint32_t>(req.features.size()));
  snapshot::WriteBytes(os, req.features.data(), req.features.size() * sizeof(uint32_t));
  return std::move(os).str();
}

Result<EstimateRequest> DecodeEstimateRequest(std::string_view payload) {
  SnapshotReader in(payload);
  uint32_t count = 0;
  if (!in.ReadRaw(&count)) return Status::Corruption("truncated estimate request");
  if (!in.CanRead(count, sizeof(uint32_t))) {
    return Status::Corruption("estimate request count exceeds payload");
  }
  EstimateRequest req;
  req.features.resize(count);
  if (!in.ReadExactRaw(reinterpret_cast<char*>(req.features.data()),
                       count * sizeof(uint32_t))) {
    return Status::Corruption("truncated estimate request");
  }
  return req;
}

std::string EncodeEstimateResponse(const EstimateResponse& resp) {
  std::ostringstream os(std::ios::binary);
  WriteRaw(os, resp.version);
  WriteRaw(os, static_cast<uint32_t>(resp.estimates.size()));
  snapshot::WriteBytes(os, resp.estimates.data(), resp.estimates.size() * sizeof(float));
  return std::move(os).str();
}

Result<EstimateResponse> DecodeEstimateResponse(std::string_view payload) {
  SnapshotReader in(payload);
  EstimateResponse resp;
  uint32_t count = 0;
  if (!in.ReadRaw(&resp.version) || !in.ReadRaw(&count)) {
    return Status::Corruption("truncated estimate response");
  }
  if (!in.CanRead(count, sizeof(float))) {
    return Status::Corruption("estimate response count exceeds payload");
  }
  resp.estimates.resize(count);
  if (!in.ReadExactRaw(reinterpret_cast<char*>(resp.estimates.data()),
                       count * sizeof(float))) {
    return Status::Corruption("truncated estimate response");
  }
  return resp;
}

std::string EncodeTopKRequest(const TopKRequest& req) {
  std::ostringstream os(std::ios::binary);
  WriteRaw(os, req.k);
  return std::move(os).str();
}

Result<TopKRequest> DecodeTopKRequest(std::string_view payload) {
  SnapshotReader in(payload);
  TopKRequest req;
  if (!in.ReadRaw(&req.k)) return Status::Corruption("truncated top-k request");
  return req;
}

std::string EncodeTopKResponse(const TopKResponse& resp) {
  std::ostringstream os(std::ios::binary);
  WriteRaw(os, resp.version);
  WriteRaw(os, static_cast<uint32_t>(resp.entries.size()));
  for (const FeatureWeight& fw : resp.entries) {
    WriteRaw(os, fw.feature);
    WriteRaw(os, fw.weight);
  }
  return std::move(os).str();
}

Result<TopKResponse> DecodeTopKResponse(std::string_view payload) {
  SnapshotReader in(payload);
  TopKResponse resp;
  uint32_t count = 0;
  if (!in.ReadRaw(&resp.version) || !in.ReadRaw(&count)) {
    return Status::Corruption("truncated top-k response");
  }
  if (!in.CanRead(count, sizeof(uint32_t) + sizeof(float))) {
    return Status::Corruption("top-k response count exceeds payload");
  }
  resp.entries.resize(count);
  for (FeatureWeight& fw : resp.entries) {
    if (!in.ReadRaw(&fw.feature) || !in.ReadRaw(&fw.weight)) {
      return Status::Corruption("truncated top-k response");
    }
  }
  return resp;
}

std::string EncodeModelInfoResponse(const ModelInfoResponse& info) {
  std::ostringstream os(std::ios::binary);
  WriteRaw(os, info.protocol_version);
  WriteRaw(os, info.snapshot_version);
  WriteRaw(os, info.steps);
  WriteRaw(os, info.resident_bytes);
  WriteRaw(os, info.top_k_capacity);
  return std::move(os).str();
}

Result<ModelInfoResponse> DecodeModelInfoResponse(std::string_view payload) {
  SnapshotReader in(payload);
  ModelInfoResponse info;
  if (!in.ReadRaw(&info.protocol_version) || !in.ReadRaw(&info.snapshot_version) ||
      !in.ReadRaw(&info.steps) || !in.ReadRaw(&info.resident_bytes) ||
      !in.ReadRaw(&info.top_k_capacity)) {
    return Status::Corruption("truncated model-info response");
  }
  if (info.protocol_version != kServingProtocolVersion) {
    return Status::InvalidArgument("unsupported serving protocol version " +
                                   std::to_string(info.protocol_version));
  }
  return info;
}

std::string EncodeError(const Status& status) {
  std::ostringstream os(std::ios::binary);
  WriteRaw(os, static_cast<uint8_t>(status.code()));
  WriteRaw(os, status.detail());
  WriteRaw(os, static_cast<uint32_t>(status.message().size()));
  snapshot::WriteBytes(os, status.message().data(), status.message().size());
  return std::move(os).str();
}

Status DecodeErrorStatus(std::string_view payload) {
  SnapshotReader in(payload);
  uint8_t code = 0;
  uint16_t detail = 0;
  uint32_t len = 0;
  if (!in.ReadRaw(&code) || !in.ReadRaw(&detail) || !in.ReadRaw(&len)) {
    return Status::Corruption("truncated error payload");
  }
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kUnimplemented)) {
    return Status::Corruption("error payload has unknown status code");
  }
  if (!in.CanRead(len, 1)) return Status::Corruption("error message exceeds payload");
  std::string message(len, '\0');
  if (!in.ReadExactRaw(message.data(), len)) {
    return Status::Corruption("truncated error message");
  }
  return Status(static_cast<StatusCode>(code), "remote: " + message, detail);
}

}  // namespace wmsketch::net
