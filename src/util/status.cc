#include "util/status.h"

namespace wmsketch {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace wmsketch
