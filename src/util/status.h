#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace wmsketch {

/// Machine-readable category for a \ref Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kFailedPrecondition = 4,
  kIOError = 5,
  kCorruption = 6,
  kUnimplemented = 7,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail without the failure being a
/// programming error (e.g. parsing a malformed input line).
///
/// Follows the Arrow/RocksDB convention: recoverable errors travel through
/// `Status` return values rather than exceptions; invariant violations use
/// assertions. `Status` is cheap to copy for the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and diagnostic message.
  /// `detail` is an optional domain-specific subcode (e.g. a
  /// \ref ConfigError value) that lets callers distinguish failure cases of
  /// the same top-level code programmatically; 0 means "no detail".
  Status(StatusCode code, std::string msg, uint16_t detail = 0)
      : code_(code), detail_(detail), msg_(std::move(msg)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with the given message.
  static Status InvalidArgument(std::string msg, uint16_t detail = 0) {
    return Status(StatusCode::kInvalidArgument, std::move(msg), detail);
  }
  /// Returns an OutOfRange status with the given message.
  static Status OutOfRange(std::string msg, uint16_t detail = 0) {
    return Status(StatusCode::kOutOfRange, std::move(msg), detail);
  }
  /// Returns a NotFound status with the given message.
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  /// Returns a FailedPrecondition status with the given message.
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// Returns an IOError status with the given message.
  static Status IOError(std::string msg) { return Status(StatusCode::kIOError, std::move(msg)); }
  /// Returns a Corruption status with the given message.
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  /// Returns an Unimplemented status with the given message (an operation
  /// the concrete type does not support, e.g. Merge on a non-linear method).
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The domain-specific subcode (0 when none was attached).
  uint16_t detail() const { return detail_; }
  /// The diagnostic message (empty for OK).
  const std::string& message() const { return msg_; }

  /// Renders "Code: message" for logging.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && detail_ == other.detail_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  uint16_t detail_ = 0;
  std::string msg_;
};

/// A value-or-error holder: either contains a `T` or a non-OK \ref Status.
///
/// Used as the return type of fallible factory functions, mirroring
/// `arrow::Result`. Access to `value()` requires `ok()`.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a failed result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The status (OK iff a value is present).
  const Status& status() const { return status_; }

  /// The contained value. Requires `ok()`.
  const T& value() const& { return *value_; }
  /// Moves the contained value out. Requires `ok()`.
  T&& value() && { return std::move(*value_); }
  /// Mutable access to the contained value. Requires `ok()`.
  T& value() & { return *value_; }

  /// Returns the value if present, otherwise `fallback`.
  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace wmsketch

/// Propagates a non-OK Status from an expression to the caller.
#define WMS_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::wmsketch::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Evaluates a Result-returning expression; on success binds the value to
/// `lhs`, on failure propagates the Status to the caller.
#define WMS_ASSIGN_OR_RETURN(lhs, rexpr)        \
  auto WMS_CONCAT_(_res_, __LINE__) = (rexpr);  \
  if (!WMS_CONCAT_(_res_, __LINE__).ok()) return WMS_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(WMS_CONCAT_(_res_, __LINE__)).value()

#define WMS_CONCAT_(a, b) WMS_CONCAT_IMPL_(a, b)
#define WMS_CONCAT_IMPL_(a, b) a##b
