#pragma once

#include <cstddef>
#include <cstdint>

namespace wmsketch::simd {

/// A flat view of one example's hash plan (see sketch/hash_plan.h): the
/// nnz × depth (table-offset, sign) pairs of an example, feature-major, so
/// entry (i, j) sits at i·depth + j. `offsets` are absolute offsets into the
/// row-major depth×width table (j·width + bucket), `signs` are ±1.0f.
struct PlanView {
  const uint32_t* offsets = nullptr;
  const float* signs = nullptr;
  size_t nnz = 0;
  uint32_t depth = 1;

  size_t entries() const { return nnz * depth; }
};

/// True when the CPU supports the AVX2+FMA kernels (and they were compiled
/// in, i.e. the build had WMS_SIMD on and targets x86-64).
bool Available();

/// True when the AVX2 kernels are actually dispatched to: Available(), not
/// killed by the WMS_SIMD_DISABLE environment variable, and not turned off
/// via SetEnabled(false).
bool Enabled();

/// Runtime toggle, used by bench_hot_path and the kernel tests to compare
/// the two paths inside one process. Forcing `on` without hardware support
/// is ignored (Enabled() stays false).
void SetEnabled(bool on);

/// "avx2" or "scalar" — the path Enabled() currently selects.
const char* ActiveKernel();

/// Per-kernel dispatch thresholds: the minimum problem size (in the units of
/// each kernel's size argument) at which the AVX2 variant is dispatched even
/// when Enabled(). One global on/off switch turned out to be too coarse —
/// vpgatherdps and the cvt-heavy scatter prologue have real fixed costs, so
/// below these sizes the scalar kernel wins and the AVX2 path *regressed*
/// read-side throughput (see BENCH_hot_path.json history). Thresholds bucket
/// by the size the kernel actually sees (entries = nnz·depth for gathers,
/// nnz for scatters, elements for table sweeps, depth for medians), which is
/// how width/depth shape differences reach the dispatcher. Defaults come
/// from crossover measurements on the development container; SetThresholds
/// exists for per-machine tuning experiments, not for production code.
struct KernelThresholds {
  /// GatherSigned / the PlanMargin gather: minimum entry count (nnz·depth).
  uint32_t gather_min_entries = 16;
  /// GatherSignedPaged / the paged read-plan gathers: minimum entry count.
  /// Separate from gather_min_entries because the page-pointer walk adds two
  /// dependent gathers per four lanes — the crossover sits elsewhere, and the
  /// calibration measures the two shapes independently.
  uint32_t paged_gather_min_entries = 16;
  /// GatherMedianFused / GatherMedianFusedPaged: minimum key count at which
  /// the register-resident median networks beat the gather-to-scratch
  /// round-trip (the kernels transpose 8 keys at a time, so tiny batches run
  /// mostly in the scalar tail anyway).
  uint32_t fused_median_min_keys = 16;
  /// PlanScatter's vectorized per-feature step products: minimum nnz.
  uint32_t scatter_min_nnz = 8;
  /// MergeScaledTable / ScaleTable / L2NormSquared: minimum element count.
  uint32_t sweep_min_elems = 32;
  /// MedianLarge rank-selection: minimum depth (never consulted below 8 —
  /// depths 1–7 always take the branchless sorting networks in util/math.h).
  uint32_t median_min_depth = 8;
};

/// The thresholds the dispatcher currently applies.
KernelThresholds Thresholds();

/// Replaces the dispatch thresholds (benchmark/tuning use; thread-safe).
void SetThresholds(const KernelThresholds& t);

/// True when GatherSigned would dispatch to the AVX2 gather for a problem
/// of `entries` elements.
bool GatherDispatched(size_t entries);

/// True when a *read-only* batch of `entries` (feature, row) pairs should
/// materialize a hash plan and run the wide-gather path instead of the
/// fused hash-and-accumulate loop. Reads differ from updates: an update's
/// plan is consumed by three stages (margin, scatter, heap offers), so
/// materializing it is free amortization, but a read consumes its hashes
/// once — the plan's SoA store + reload + second pass only pays off when
/// the hardware gather beats scalar table reads by more than that overhead.
/// Decided by the startup calibration (measured, not assumed: vpgatherdps
/// speed varies wildly across parts); false whenever gathers are off.
bool ReadPlanDispatched(size_t entries);

/// Forces the read-plan decision (tests/benches: the plan branches of the
/// batched read paths must be exercisable — and their bit-identity against
/// the fused loops assertable — even on machines where the calibration
/// would route reads fused). Settles the calibration like SetThresholds, so
/// the explicit choice stands. The gather size threshold still applies.
void SetReadPlanDispatched(bool on);

/// ReadPlanDispatched for *paged* frozen snapshots: true when a read-only
/// batch of `entries` (feature, row) pairs against a PagedView-backed table
/// should materialize a plan and run the i64 page-pointer-walk gather
/// (GatherSignedPaged) instead of the fused per-cell page-walk loops. The
/// paged gather pays two dependent gathers per four lanes (page pointers,
/// then cells), so it is calibrated separately from the flat route and is
/// conservatively off until the measurement says otherwise.
bool PagedReadPlanDispatched(size_t entries);

/// Forces the paged read-plan decision (the paged analogue of
/// SetReadPlanDispatched, with the same settle-the-calibration semantics).
/// The paged gather size threshold still applies.
void SetPagedReadPlanDispatched(bool on);

/// True when a batched estimate of `keys` point queries should run the
/// fused gather+median kernel (GatherMedianFused / GatherMedianFusedPaged,
/// depth ≤ 7 only) instead of gathering into scratch and running the
/// per-key sorting networks from memory. Calibrated; both routes are
/// bit-identical, so this is pure routing.
bool FusedMedianDispatched(size_t keys);

/// One-shot calibration: times the AVX2 gather (flat and paged) and the
/// fused gather+median kernel against their scalar loops on representative
/// problems and disables each dispatch (its threshold = UINT32_MAX) when it
/// does not measurably win —
/// vpgatherdps is fast on some parts and microcode-crippled or
/// emulation-slow on others, and no compile-time signal distinguishes them.
/// Runs automatically before the first SIMD-*eligible* gather dispatch (a
/// call that would dispatch under the current thresholds; ≈1 ms, once per
/// process) — short-lived binaries whose gathers never reach an eligible
/// size never pay it. Calling SetThresholds first suppresses it, so
/// explicit thresholds always stand, and setting the WMS_SKIP_CALIBRATION
/// environment variable skips the measurement entirely (dispatch then uses
/// the static defaults; both paths are bit-identical, so this only affects
/// routing). No-op without AVX2.
void CalibrateGather();

/// Lower-middle order statistic of v[0..n) for n >= 8 — the median path for
/// sketch depths beyond the util/math.h sorting networks. The AVX2 variant
/// is a branchless rank-counting selection (8 comparisons per instruction,
/// no data-dependent partitioning); the scalar fallback is nth_element. Both
/// return the value of the same order statistic, so the paths are
/// bit-identical; only the scalar path reorders `v`.
float MedianLarge(float* v, size_t n);

/// out[e] = signs[e] · table[offsets[e]]. The AVX2 path uses vpgatherdps;
/// because signs are exactly ±1, the products are exact and both paths are
/// bit-identical.
void GatherSigned(const float* table, const uint32_t* offsets, const float* signs,
                  size_t n, float* out);

/// GatherSigned against a paged table: out[e] = signs[e] ·
/// pages[offsets[e] >> shift][offsets[e] & mask]. The raw (pages, shift,
/// mask) triple is a PagedView<float> unpacked so this header stays free of
/// util/paged_table.h; callers pass view.pages / view.shift / view.mask. The
/// AVX2 path walks the page-pointer indirection in registers: vpgatherqq
/// fetches four 64-bit page pointers, the in-page offsets are shifted to
/// byte distances and added, and vpgatherqps reads the cells through the
/// resulting absolute addresses. Pure loads and ±1 sign products — both
/// paths bit-identical.
void GatherSignedPaged(const float* const* pages, uint32_t shift, uint32_t mask,
                       const uint32_t* offsets, const float* signs, size_t n,
                       float* out);

/// PlanMargin against a paged table: the same gather-then-accumulate with
/// GatherSignedPaged feeding the seed-order double accumulation, so the
/// result is bit-identical to FusedMarginPaged over the same pairs (and to
/// the flat PlanMargin on a flat copy of the cells). `scratch` must hold
/// plan.entries() floats.
double PlanMarginPaged(const float* const* pages, uint32_t shift, uint32_t mask,
                       const PlanView& plan, const float* values, float* scratch);

/// Fused gather+median for batched point estimates, depth in [1, 7]:
/// out[k] = float(factor · double(median_j(signs[k·d+j] ·
/// table[offsets[k·d+j]]))) with the lower-middle median convention. The
/// AVX2 path transposes 8 keys at a time (strided vpgatherdd on the plan
/// itself), keeps the d gathered lanes in registers, and runs the
/// util/math.h sorting networks there with compare+blend swaps that
/// reproduce std::min/std::max exactly (vminps/vmaxps differ on ±0 ties, and
/// these medians feed serialized state downstream) — no scratch round-trip.
/// Bit-identical to the per-key gather + MedianInPlace loop.
void GatherMedianFused(const float* table, const uint32_t* offsets, const float* signs,
                       size_t keys, uint32_t depth, double factor, float* out);

/// GatherMedianFused against a paged table (cells resolved through the
/// page-pointer walk of GatherSignedPaged). Bit-identical to the scalar
/// per-key paged loop.
void GatherMedianFusedPaged(const float* const* pages, uint32_t shift, uint32_t mask,
                            const uint32_t* offsets, const float* signs, size_t keys,
                            uint32_t depth, double factor, float* out);

/// The heap-offer prefilter sweep: abs_out[i] = |v[i]| and above_out[i] =
/// !(|v[i]| <= floor) ? 1 : 0 — the exact complement of the rejection test a
/// full TopKHeap applies to an offered weight (fabs(w) <= floor), precomputed
/// for a whole plan so the scalar heap is only entered for survivors. The
/// NLE form (not >) keeps NaN weights on the "offer" side, as the heap
/// itself would. |·| is a sign-bit clear and the comparison is the same on
/// both paths, so the sweep is bit-identical.
void AbsAboveFloor(const float* v, size_t n, float floor, float* abs_out,
                   uint8_t* above_out);

/// The plan-driven margin accumulation Σᵢ xᵢ · Σⱼ signs[i·d+j] ·
/// table[offsets[i·d+j]], with the per-feature inner sums and the outer
/// accumulation in double, in exactly the seed evaluation order — so scalar
/// and AVX2 (which only vectorizes the gather) agree bit-for-bit.
/// `scratch` must hold plan.entries() floats.
double PlanMargin(const float* table, const PlanView& plan, const float* values,
                  float* scratch);

/// The signed gradient scatter table[offsets[i·d+j]] -= float(step·values[i])
/// · signs[i·d+j] over the whole plan. Only valid when no other read is
/// interleaved per feature (no tracking heap); the heap-tracking sketches
/// scatter per-feature instead. `scratch` must hold plan.nnz floats.
/// Bit-identical across paths: the AVX2 side vectorizes only the per-feature
/// step·valueᵢ products (sign application and stores are exact), and on
/// AVX-512F+CD parts the stores themselves run as masked vpscatterdps rounds
/// with vpconflictd serializing duplicate offsets in lane order, so even
/// colliding entries see the exact scalar store sequence. The AVX-512 route
/// rides under the same Enabled()/ActiveKernel() "avx2" tag — it is a wider
/// implementation of the same dispatch decision, not a third result path.
void PlanScatter(float* table, const PlanView& plan, const float* values, double step,
                 float* scratch);

/// dst[i] += float(ratio · src[i]) — the MergeScaled table sweep. The double
/// product is rounded to float before the add in both paths (bit-identical).
void MergeScaledTable(float* dst, const float* src, size_t n, double ratio);

/// t[i] *= f — the lazy-rescale table sweep (bit-identical across paths).
void ScaleTable(float* t, size_t n, float f);

/// Σ t[i]² accumulated in double. The AVX2 path uses a 4-lane reduction, so
/// unlike the kernels above its rounding can differ from the scalar
/// left-to-right sum (callers of table norms are tolerance-based).
double L2NormSquared(const float* t, size_t n);

}  // namespace wmsketch::simd
