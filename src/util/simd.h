#pragma once

#include <cstddef>
#include <cstdint>

namespace wmsketch::simd {

/// A flat view of one example's hash plan (see sketch/hash_plan.h): the
/// nnz × depth (table-offset, sign) pairs of an example, feature-major, so
/// entry (i, j) sits at i·depth + j. `offsets` are absolute offsets into the
/// row-major depth×width table (j·width + bucket), `signs` are ±1.0f.
struct PlanView {
  const uint32_t* offsets = nullptr;
  const float* signs = nullptr;
  size_t nnz = 0;
  uint32_t depth = 1;

  size_t entries() const { return nnz * depth; }
};

/// True when the CPU supports the AVX2+FMA kernels (and they were compiled
/// in, i.e. the build had WMS_SIMD on and targets x86-64).
bool Available();

/// True when the AVX2 kernels are actually dispatched to: Available(), not
/// killed by the WMS_SIMD_DISABLE environment variable, and not turned off
/// via SetEnabled(false).
bool Enabled();

/// Runtime toggle, used by bench_hot_path and the kernel tests to compare
/// the two paths inside one process. Forcing `on` without hardware support
/// is ignored (Enabled() stays false).
void SetEnabled(bool on);

/// "avx2" or "scalar" — the path Enabled() currently selects.
const char* ActiveKernel();

/// out[e] = signs[e] · table[offsets[e]]. The AVX2 path uses vpgatherdps;
/// because signs are exactly ±1, the products are exact and both paths are
/// bit-identical.
void GatherSigned(const float* table, const uint32_t* offsets, const float* signs,
                  size_t n, float* out);

/// The plan-driven margin accumulation Σᵢ xᵢ · Σⱼ signs[i·d+j] ·
/// table[offsets[i·d+j]], with the per-feature inner sums and the outer
/// accumulation in double, in exactly the seed evaluation order — so scalar
/// and AVX2 (which only vectorizes the gather) agree bit-for-bit.
/// `scratch` must hold plan.entries() floats.
double PlanMargin(const float* table, const PlanView& plan, const float* values,
                  float* scratch);

/// The signed gradient scatter table[offsets[i·d+j]] -= float(step·values[i])
/// · signs[i·d+j] over the whole plan. Only valid when no other read is
/// interleaved per feature (no tracking heap); the heap-tracking sketches
/// scatter per-feature instead. `scratch` must hold plan.nnz floats.
/// Bit-identical across paths (the AVX2 side vectorizes only the per-feature
/// step·valueᵢ products; sign application and stores are exact).
void PlanScatter(float* table, const PlanView& plan, const float* values, double step,
                 float* scratch);

/// dst[i] += float(ratio · src[i]) — the MergeScaled table sweep. The double
/// product is rounded to float before the add in both paths (bit-identical).
void MergeScaledTable(float* dst, const float* src, size_t n, double ratio);

/// t[i] *= f — the lazy-rescale table sweep (bit-identical across paths).
void ScaleTable(float* t, size_t n, float f);

/// Σ t[i]² accumulated in double. The AVX2 path uses a 4-lane reduction, so
/// unlike the kernels above its rounding can differ from the scalar
/// left-to-right sum (callers of table norms are tolerance-based).
double L2NormSquared(const float* t, size_t n);

}  // namespace wmsketch::simd
