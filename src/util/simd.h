#pragma once

#include <cstddef>
#include <cstdint>

namespace wmsketch::simd {

/// A flat view of one example's hash plan (see sketch/hash_plan.h): the
/// nnz × depth (table-offset, sign) pairs of an example, feature-major, so
/// entry (i, j) sits at i·depth + j. `offsets` are absolute offsets into the
/// row-major depth×width table (j·width + bucket), `signs` are ±1.0f.
struct PlanView {
  const uint32_t* offsets = nullptr;
  const float* signs = nullptr;
  size_t nnz = 0;
  uint32_t depth = 1;

  size_t entries() const { return nnz * depth; }
};

/// True when the CPU supports the AVX2+FMA kernels (and they were compiled
/// in, i.e. the build had WMS_SIMD on and targets x86-64).
bool Available();

/// True when the AVX2 kernels are actually dispatched to: Available(), not
/// killed by the WMS_SIMD_DISABLE environment variable, and not turned off
/// via SetEnabled(false).
bool Enabled();

/// Runtime toggle, used by bench_hot_path and the kernel tests to compare
/// the two paths inside one process. Forcing `on` without hardware support
/// is ignored (Enabled() stays false).
void SetEnabled(bool on);

/// "avx2" or "scalar" — the path Enabled() currently selects.
const char* ActiveKernel();

/// Per-kernel dispatch thresholds: the minimum problem size (in the units of
/// each kernel's size argument) at which the AVX2 variant is dispatched even
/// when Enabled(). One global on/off switch turned out to be too coarse —
/// vpgatherdps and the cvt-heavy scatter prologue have real fixed costs, so
/// below these sizes the scalar kernel wins and the AVX2 path *regressed*
/// read-side throughput (see BENCH_hot_path.json history). Thresholds bucket
/// by the size the kernel actually sees (entries = nnz·depth for gathers,
/// nnz for scatters, elements for table sweeps, depth for medians), which is
/// how width/depth shape differences reach the dispatcher. Defaults come
/// from crossover measurements on the development container; SetThresholds
/// exists for per-machine tuning experiments, not for production code.
struct KernelThresholds {
  /// GatherSigned / the PlanMargin gather: minimum entry count (nnz·depth).
  uint32_t gather_min_entries = 16;
  /// PlanScatter's vectorized per-feature step products: minimum nnz.
  uint32_t scatter_min_nnz = 8;
  /// MergeScaledTable / ScaleTable / L2NormSquared: minimum element count.
  uint32_t sweep_min_elems = 32;
  /// MedianLarge rank-selection: minimum depth (never consulted below 8 —
  /// depths 1–7 always take the branchless sorting networks in util/math.h).
  uint32_t median_min_depth = 8;
};

/// The thresholds the dispatcher currently applies.
KernelThresholds Thresholds();

/// Replaces the dispatch thresholds (benchmark/tuning use; thread-safe).
void SetThresholds(const KernelThresholds& t);

/// True when GatherSigned would dispatch to the AVX2 gather for a problem
/// of `entries` elements.
bool GatherDispatched(size_t entries);

/// True when a *read-only* batch of `entries` (feature, row) pairs should
/// materialize a hash plan and run the wide-gather path instead of the
/// fused hash-and-accumulate loop. Reads differ from updates: an update's
/// plan is consumed by three stages (margin, scatter, heap offers), so
/// materializing it is free amortization, but a read consumes its hashes
/// once — the plan's SoA store + reload + second pass only pays off when
/// the hardware gather beats scalar table reads by more than that overhead.
/// Decided by the startup calibration (measured, not assumed: vpgatherdps
/// speed varies wildly across parts); false whenever gathers are off.
bool ReadPlanDispatched(size_t entries);

/// Forces the read-plan decision (tests/benches: the plan branches of the
/// batched read paths must be exercisable — and their bit-identity against
/// the fused loops assertable — even on machines where the calibration
/// would route reads fused). Settles the calibration like SetThresholds, so
/// the explicit choice stands. The gather size threshold still applies.
void SetReadPlanDispatched(bool on);

/// One-shot calibration: times the AVX2 gather against the scalar loop on a
/// representative problem and disables the gather dispatch
/// (gather_min_entries = UINT32_MAX) when it does not measurably win —
/// vpgatherdps is fast on some parts and microcode-crippled or
/// emulation-slow on others, and no compile-time signal distinguishes them.
/// Runs automatically before the first SIMD-*eligible* gather dispatch (a
/// call that would dispatch under the current thresholds; ≈1 ms, once per
/// process) — short-lived binaries whose gathers never reach an eligible
/// size never pay it. Calling SetThresholds first suppresses it, so
/// explicit thresholds always stand, and setting the WMS_SKIP_CALIBRATION
/// environment variable skips the measurement entirely (dispatch then uses
/// the static defaults; both paths are bit-identical, so this only affects
/// routing). No-op without AVX2.
void CalibrateGather();

/// Lower-middle order statistic of v[0..n) for n >= 8 — the median path for
/// sketch depths beyond the util/math.h sorting networks. The AVX2 variant
/// is a branchless rank-counting selection (8 comparisons per instruction,
/// no data-dependent partitioning); the scalar fallback is nth_element. Both
/// return the value of the same order statistic, so the paths are
/// bit-identical; only the scalar path reorders `v`.
float MedianLarge(float* v, size_t n);

/// out[e] = signs[e] · table[offsets[e]]. The AVX2 path uses vpgatherdps;
/// because signs are exactly ±1, the products are exact and both paths are
/// bit-identical.
void GatherSigned(const float* table, const uint32_t* offsets, const float* signs,
                  size_t n, float* out);

/// The plan-driven margin accumulation Σᵢ xᵢ · Σⱼ signs[i·d+j] ·
/// table[offsets[i·d+j]], with the per-feature inner sums and the outer
/// accumulation in double, in exactly the seed evaluation order — so scalar
/// and AVX2 (which only vectorizes the gather) agree bit-for-bit.
/// `scratch` must hold plan.entries() floats.
double PlanMargin(const float* table, const PlanView& plan, const float* values,
                  float* scratch);

/// The signed gradient scatter table[offsets[i·d+j]] -= float(step·values[i])
/// · signs[i·d+j] over the whole plan. Only valid when no other read is
/// interleaved per feature (no tracking heap); the heap-tracking sketches
/// scatter per-feature instead. `scratch` must hold plan.nnz floats.
/// Bit-identical across paths (the AVX2 side vectorizes only the per-feature
/// step·valueᵢ products; sign application and stores are exact).
void PlanScatter(float* table, const PlanView& plan, const float* values, double step,
                 float* scratch);

/// dst[i] += float(ratio · src[i]) — the MergeScaled table sweep. The double
/// product is rounded to float before the add in both paths (bit-identical).
void MergeScaledTable(float* dst, const float* src, size_t n, double ratio);

/// t[i] *= f — the lazy-rescale table sweep (bit-identical across paths).
void ScaleTable(float* t, size_t n, float f);

/// Σ t[i]² accumulated in double. The AVX2 path uses a 4-lane reduction, so
/// unlike the kernels above its rounding can differ from the scalar
/// left-to-right sum (callers of table norms are tolerance-based).
double L2NormSquared(const float* t, size_t n);

}  // namespace wmsketch::simd
