#pragma once

#include <cstddef>
#include <cstdint>

namespace wmsketch {

/// The memory cost model of Sec. 7.1: every method is charged 4 bytes per
/// feature identifier, 4 bytes per feature weight, and 4 bytes per auxiliary
/// scalar (Space-Saving counts, reservoir keys, sketch counters, ...). All
/// budget planning and the `MemoryCostBytes()` accounting of every classifier
/// use these constants so that methods are compared at genuinely equal
/// budgets.
inline constexpr size_t kBytesPerId = 4;
inline constexpr size_t kBytesPerWeight = 4;
inline constexpr size_t kBytesPerAux = 4;

/// Cost of a heap of `capacity` entries, each holding an id, a weight, and
/// `aux_per_entry` auxiliary scalars.
constexpr size_t HeapBytes(size_t capacity, size_t aux_per_entry = 0) {
  return capacity * (kBytesPerId + kBytesPerWeight + aux_per_entry * kBytesPerAux);
}

/// Cost of a flat array of `cells` sketch counters/weights.
constexpr size_t TableBytes(size_t cells) { return cells * kBytesPerWeight; }

/// Per-page bookkeeping of the copy-on-write paged tables
/// (util/paged_table.h): the refcounted mirror pointer with its control
/// block plus the 64-bit epoch tag. Charged by the *resident* accounting
/// (BudgetedClassifier::ResidentStorageBytes, PageSet::ResidentBytes,
/// bench_serving's per-snapshot reporting) — deliberately NOT by the
/// Sec. 7.1 cost model above, which is the equal-budget comparison metric
/// the planner sizes against, not a resident-set measure.
inline constexpr size_t kBytesPerPageMeta = 2 * sizeof(void*) + sizeof(uint64_t);

/// Resident bytes of a paged table of `cells` cells split into `pages`
/// pages: the live cells plus per-page metadata. Snapshot-pinned page
/// copies are accounted to the snapshots that pin them.
constexpr size_t PagedTableBytes(size_t cells, size_t pages) {
  return cells * kBytesPerWeight + pages * kBytesPerPageMeta;
}

/// Kilobyte convenience (budgets in the paper are quoted in KB).
constexpr size_t KiB(size_t n) { return n * 1024; }

}  // namespace wmsketch
