#pragma once

#include <cstddef>

namespace wmsketch {

/// The memory cost model of Sec. 7.1: every method is charged 4 bytes per
/// feature identifier, 4 bytes per feature weight, and 4 bytes per auxiliary
/// scalar (Space-Saving counts, reservoir keys, sketch counters, ...). All
/// budget planning and the `MemoryCostBytes()` accounting of every classifier
/// use these constants so that methods are compared at genuinely equal
/// budgets.
inline constexpr size_t kBytesPerId = 4;
inline constexpr size_t kBytesPerWeight = 4;
inline constexpr size_t kBytesPerAux = 4;

/// Cost of a heap of `capacity` entries, each holding an id, a weight, and
/// `aux_per_entry` auxiliary scalars.
constexpr size_t HeapBytes(size_t capacity, size_t aux_per_entry = 0) {
  return capacity * (kBytesPerId + kBytesPerWeight + aux_per_entry * kBytesPerAux);
}

/// Cost of a flat array of `cells` sketch counters/weights.
constexpr size_t TableBytes(size_t cells) { return cells * kBytesPerWeight; }

/// Kilobyte convenience (budgets in the paper are quoted in KB).
constexpr size_t KiB(size_t n) { return n * 1024; }

}  // namespace wmsketch
