#pragma once

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace wmsketch {

/// Walker/Vose alias method: O(1) sampling from an arbitrary discrete
/// distribution after O(n) preprocessing.
///
/// The packet-trace and corpus generators need non-Zipf (perturbed-Zipf)
/// distributions — e.g. per-IP popularity with planted relative-ratio
/// deltoids — which rules out the closed-form Zipf sampler; the alias table
/// handles any weight vector.
class AliasTable {
 public:
  /// Builds the table from non-negative weights (at least one positive).
  /// Returns InvalidArgument for empty/negative/non-finite/all-zero input.
  static Result<AliasTable> Build(const std::vector<double>& weights);

  /// Draws an index in [0, size) with probability weight[i]/Σweights.
  uint32_t Sample(Rng& rng) const {
    const uint32_t slot = static_cast<uint32_t>(rng.Bounded(prob_.size()));
    return rng.NextDouble() < prob_[slot] ? slot : alias_[slot];
  }

  size_t size() const { return prob_.size(); }

  /// Exact sampling probability of index i (for tests / ground truth).
  double Probability(uint32_t i) const { return normalized_[i]; }

 private:
  AliasTable() = default;

  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
  std::vector<double> normalized_;
};

}  // namespace wmsketch
