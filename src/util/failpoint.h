#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace wmsketch::failpoint {

/// Deterministic fault injection for the durability paths (RocksDB/TiKV
/// style). Code under test plants named sites with WMS_FAILPOINT("name");
/// tests arm a site with an \ref Action — force an I/O error, a short
/// write, or a hard crash — either through the Arm() API or the
/// WMS_FAILPOINTS environment variable ("name=action[:count],...", e.g.
/// WMS_FAILPOINTS="checkpoint:before_rename=crash:1").
///
/// Disarmed cost: one relaxed atomic load and a branch — no lock, no map
/// lookup, no string construction — so sites are safe on warm paths.
enum class Action : uint8_t {
  kOff = 0,
  /// The site should fail its operation and surface an IOError.
  kError,
  /// The site should write a truncated prefix, then fail (torn output).
  kShortWrite,
  /// The process exits immediately (std::_Exit(kCrashExitCode)): no atexit
  /// handlers, no stream flushes — the closest in-process stand-in for
  /// kill -9 between two instructions.
  kCrash,
};

/// Exit code used by Action::kCrash, asserted by death tests.
inline constexpr int kCrashExitCode = 134;

namespace internal {

struct Spec {
  Action action = Action::kOff;
  // Remaining firings; negative means unlimited.
  int remaining = -1;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Spec> points;
  // Number of currently armed sites; the macro's fast-path gate.
  std::atomic<int> armed{0};
};

inline bool ParseAction(std::string_view token, Action* action) {
  if (token == "off") return (*action = Action::kOff), true;
  if (token == "error") return (*action = Action::kError), true;
  if (token == "short" || token == "short_write") {
    return (*action = Action::kShortWrite), true;
  }
  if (token == "crash") return (*action = Action::kCrash), true;
  return false;
}

// A malformed WMS_FAILPOINTS spec aborts the process loudly. Silently
// skipping a bad entry would disarm the very fault a chaos run meant to
// inject — the test then passes vacuously, which is strictly worse than
// crashing at startup with the offending entry spelled out.
[[noreturn]] inline void DieOnBadSpec(std::string_view entry, const char* why) {
  std::fprintf(stderr,
               "wmsketch: fatal: malformed WMS_FAILPOINTS entry '%.*s' (%s); "
               "expected name=action[:count] with action in "
               "{off, error, short, short_write, crash} and count an integer\n",
               static_cast<int>(entry.size()), entry.data(), why);
  std::abort();
}

inline void ArmLocked(Registry& reg, const std::string& name, Action action,
                      int count) {
  Spec& spec = reg.points[name];
  const bool was_armed = spec.action != Action::kOff && spec.remaining != 0;
  spec.action = action;
  spec.remaining = count;
  const bool now_armed = action != Action::kOff && count != 0;
  if (now_armed && !was_armed) reg.armed.fetch_add(1, std::memory_order_relaxed);
  if (!now_armed && was_armed) reg.armed.fetch_sub(1, std::memory_order_relaxed);
}

// Parses WMS_FAILPOINTS ("name=action[:count]" entries split on ',' or ';')
// once, at first registry access. Malformed entries abort via DieOnBadSpec;
// empty entries (trailing separators) are tolerated.
inline void ArmFromEnvLocked(Registry& reg) {
  const char* env = std::getenv("WMS_FAILPOINTS");
  if (env == nullptr) return;
  std::string_view rest(env);
  while (!rest.empty()) {
    const size_t sep = rest.find_first_of(",;");
    std::string_view entry = rest.substr(0, sep);
    rest = (sep == std::string_view::npos) ? std::string_view() : rest.substr(sep + 1);
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) DieOnBadSpec(entry, "missing name=");
    std::string_view name = entry.substr(0, eq);
    std::string_view action_token = entry.substr(eq + 1);
    int count = -1;
    const size_t colon = action_token.find(':');
    if (colon != std::string_view::npos) {
      const std::string digits(action_token.substr(colon + 1));
      char* end = nullptr;
      const long parsed = std::strtol(digits.c_str(), &end, 10);
      if (digits.empty() || end == nullptr || *end != '\0') {
        DieOnBadSpec(entry, "count is not an integer");
      }
      count = static_cast<int>(parsed);
      action_token = action_token.substr(0, colon);
    }
    Action action = Action::kOff;
    if (!ParseAction(action_token, &action)) DieOnBadSpec(entry, "unknown action");
    ArmLocked(reg, std::string(name), action, count);
  }
}

inline Registry& GetRegistry() {
  // Leaked singleton: failpoints may fire during static destruction of
  // whatever owns a stream.
  static Registry* reg = [] {
    auto* r = new Registry();
    std::lock_guard<std::mutex> lock(r->mu);
    ArmFromEnvLocked(*r);
    return r;
  }();
  return *reg;
}

}  // namespace internal

/// Number of armed sites (0 on the untouched fast path).
inline int ArmedCount() {
  return internal::GetRegistry().armed.load(std::memory_order_relaxed);
}

/// Arms `name` with `action`. `count` bounds the number of firings
/// (negative: unlimited); each firing consumes one, and an exhausted site
/// reverts to kOff.
inline void Arm(const std::string& name, Action action, int count = -1) {
  internal::Registry& reg = internal::GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  internal::ArmLocked(reg, name, action, count);
}

/// Disarms `name` (no-op when not armed).
inline void Disarm(const std::string& name) { Arm(name, Action::kOff, 0); }

/// Disarms every site (test teardown).
inline void DisarmAll() {
  internal::Registry& reg = internal::GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, spec] : reg.points) {
    spec.action = Action::kOff;
    spec.remaining = 0;
  }
  reg.armed.store(0, std::memory_order_relaxed);
}

/// Slow path behind WMS_FAILPOINT: consumes one firing of `name` and
/// returns the action the site must simulate. kCrash exits here and does
/// not return.
inline Action Fire(const char* name) {
  internal::Registry& reg = internal::GetRegistry();
  Action action = Action::kOff;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.points.find(name);
    if (it == reg.points.end()) return Action::kOff;
    internal::Spec& spec = it->second;
    if (spec.action == Action::kOff || spec.remaining == 0) return Action::kOff;
    action = spec.action;
    if (spec.remaining > 0 && --spec.remaining == 0) {
      spec.action = Action::kOff;
      reg.armed.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (action == Action::kCrash) std::_Exit(kCrashExitCode);
  return action;
}

}  // namespace wmsketch::failpoint

/// Evaluates to the Action the named site must simulate this call
/// (Action::kOff when the registry is empty or the site is not armed).
/// Armed kCrash sites exit the process inside the macro.
#define WMS_FAILPOINT(name)                                 \
  (::wmsketch::failpoint::ArmedCount() == 0                 \
       ? ::wmsketch::failpoint::Action::kOff                \
       : ::wmsketch::failpoint::Fire(name))
