#pragma once

// Clang Thread Safety Analysis annotations and the annotated synchronization
// primitives the engine layers use. Compiling with clang and -Wthread-safety
// (the static-analysis CI job adds -Werror) turns the locking discipline of
// engine/serving.h and engine/sharded_learner.cc into compile-time errors:
// touching a WMS_GUARDED_BY member without holding its mutex, releasing a
// lock twice, or waiting on a condition variable without the lock held all
// fail the build. On gcc (and on clang without the warning) everything
// expands to nothing and the wrappers are zero-cost veneers over std::mutex
// and std::condition_variable.
//
// The wrappers exist because libstdc++'s std::mutex carries no analysis
// attributes, so `std::lock_guard<std::mutex>` is invisible to the checker.
// wmsketch::Mutex + wmsketch::MutexLock are the annotated equivalents.

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define WMS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define WMS_THREAD_ANNOTATION(x)
#endif

// A type that acts as a capability (lockable).
#define WMS_CAPABILITY(x) WMS_THREAD_ANNOTATION(capability(x))
// RAII types that acquire in the constructor and release in the destructor.
#define WMS_SCOPED_CAPABILITY WMS_THREAD_ANNOTATION(scoped_lockable)
// Data members readable/writable only while the capability is held.
#define WMS_GUARDED_BY(x) WMS_THREAD_ANNOTATION(guarded_by(x))
#define WMS_PT_GUARDED_BY(x) WMS_THREAD_ANNOTATION(pt_guarded_by(x))
// Functions that must be called with / without the capability held.
#define WMS_REQUIRES(...) WMS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define WMS_EXCLUDES(...) WMS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Functions that acquire / release the capability.
#define WMS_ACQUIRE(...) WMS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define WMS_RELEASE(...) WMS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// Escape hatch for code the analysis cannot model (document why at each use).
#define WMS_NO_THREAD_SAFETY_ANALYSIS WMS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace wmsketch {

class CondVar;

/// std::mutex with thread-safety-analysis attributes. Prefer MutexLock for
/// scoped acquisition; Lock/Unlock exist for the rare manual protocols.
class WMS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() WMS_ACQUIRE() { mu_.lock(); }
  void Unlock() WMS_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over a wmsketch::Mutex (the annotated lock_guard/unique_lock).
class WMS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WMS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() WMS_RELEASE() {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable whose waits are checked against the mutex they
/// atomically release: callers must hold `mu` (the same mutex `lock` locked)
/// or the analysis rejects the call site. Waits re-acquire before returning,
/// so the capability is continuously held from the checker's point of view —
/// the one thing it cannot see is the unlock window inside the wait, which
/// is exactly the blind spot the guarded-member annotations cover (the
/// predicate re-checks after every wakeup).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu, MutexLock& lock) WMS_REQUIRES(mu) {
    static_cast<void>(mu);
    cv_.wait(lock.lock_);
  }

  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) WMS_REQUIRES(mu) {
    static_cast<void>(mu);
    return cv_.wait_for(lock.lock_, timeout, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace wmsketch
