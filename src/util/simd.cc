#include "util/simd.h"

#include <atomic>
#include <cstdlib>

// The AVX2 kernels are compiled with per-function target attributes (no
// global -mavx2 / -march=native), so a single binary carries both paths and
// picks one per-process via cpuid — CI runners and older machines without
// AVX2 exercise the scalar fallback of the very same build.
#if defined(WMS_SIMD) && (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define WMS_SIMD_X86 1
#include <immintrin.h>
#endif

namespace wmsketch::simd {

namespace {

bool CpuHasAvx2Fma() {
#ifdef WMS_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool InitialEnabled() {
  if (!CpuHasAvx2Fma()) return false;
  return std::getenv("WMS_SIMD_DISABLE") == nullptr;
}

// Atomic because SetEnabled may be called (bench/test toggling) while
// engine worker threads read the flag inside every kernel; relaxed order
// suffices — both paths compute the same results, so there is nothing to
// synchronize beyond the flag itself.
std::atomic<bool> g_enabled{InitialEnabled()};

// ------------------------------------------------------- scalar kernels
//
// These are the semantics of record: every expression matches the seed
// per-feature loops (see wm_sketch.cc) so a WMS_SIMD=OFF build is
// bit-identical to pre-plan behavior, and the AVX2 kernels below reproduce
// them exactly (signs are ±1, so sign application never rounds).

void GatherSignedScalar(const float* table, const uint32_t* offsets, const float* signs,
                        size_t n, float* out) {
  for (size_t e = 0; e < n; ++e) out[e] = signs[e] * table[offsets[e]];
}

void PlanScatterScalar(float* table, const PlanView& plan, const float* values,
                       double step) {
  const uint32_t d = plan.depth;
  for (size_t i = 0; i < plan.nnz; ++i) {
    const double delta = step * static_cast<double>(values[i]);
    const uint32_t* off = plan.offsets + i * d;
    const float* sg = plan.signs + i * d;
    for (uint32_t j = 0; j < d; ++j) {
      table[off[j]] -= static_cast<float>(delta * static_cast<double>(sg[j]));
    }
  }
}

void MergeScaledTableScalar(float* dst, const float* src, size_t n, double ratio) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] += static_cast<float>(ratio * static_cast<double>(src[i]));
  }
}

void ScaleTableScalar(float* t, size_t n, float f) {
  for (size_t i = 0; i < n; ++i) t[i] *= f;
}

double L2NormSquaredScalar(const float* t, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<double>(t[i]) * static_cast<double>(t[i]);
  }
  return s;
}

// --------------------------------------------------------- AVX2 kernels

#ifdef WMS_SIMD_X86

__attribute__((target("avx2,fma"))) void GatherSignedAvx2(const float* table,
                                                          const uint32_t* offsets,
                                                          const float* signs, size_t n,
                                                          float* out) {
  size_t e = 0;
  for (; e + 8 <= n; e += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(offsets + e));
    const __m256 cells = _mm256_i32gather_ps(table, idx, 4);
    const __m256 sg = _mm256_loadu_ps(signs + e);
    _mm256_storeu_ps(out + e, _mm256_mul_ps(sg, cells));
  }
  for (; e < n; ++e) out[e] = signs[e] * table[offsets[e]];
}

/// fdelta[i] = float(step · values[i]), the per-feature scatter magnitudes,
/// 4 double-precision products per iteration.
__attribute__((target("avx2,fma"))) void StepDeltasAvx2(const float* values, size_t n,
                                                        double step, float* fdelta) {
  const __m256d vstep = _mm256_set1_pd(step);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(values + i));
    _mm_storeu_ps(fdelta + i, _mm256_cvtpd_ps(_mm256_mul_pd(vstep, v)));
  }
  for (; i < n; ++i) {
    fdelta[i] = static_cast<float>(step * static_cast<double>(values[i]));
  }
}

__attribute__((target("avx2,fma"))) void MergeScaledTableAvx2(float* dst,
                                                              const float* src, size_t n,
                                                              double ratio) {
  const __m256d vratio = _mm256_set1_pd(ratio);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 s = _mm256_loadu_ps(src + i);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(s));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(s, 1));
    const __m128 flo = _mm256_cvtpd_ps(_mm256_mul_pd(vratio, lo));
    const __m128 fhi = _mm256_cvtpd_ps(_mm256_mul_pd(vratio, hi));
    const __m256 add = _mm256_set_m128(fhi, flo);
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), add));
  }
  for (; i < n; ++i) {
    dst[i] += static_cast<float>(ratio * static_cast<double>(src[i]));
  }
}

__attribute__((target("avx2,fma"))) void ScaleTableAvx2(float* t, size_t n, float f) {
  const __m256 vf = _mm256_set1_ps(f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(t + i, _mm256_mul_ps(_mm256_loadu_ps(t + i), vf));
  }
  for (; i < n; ++i) t[i] *= f;
}

__attribute__((target("avx2,fma"))) double L2NormSquaredAvx2(const float* t, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(t + i));
    acc = _mm256_fmadd_pd(v, v, acc);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    s += static_cast<double>(t[i]) * static_cast<double>(t[i]);
  }
  return s;
}

#endif  // WMS_SIMD_X86

}  // namespace

bool Available() { return CpuHasAvx2Fma(); }

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on && Available(), std::memory_order_relaxed); }

const char* ActiveKernel() { return Enabled() ? "avx2" : "scalar"; }

void GatherSigned(const float* table, const uint32_t* offsets, const float* signs,
                  size_t n, float* out) {
#ifdef WMS_SIMD_X86
  // Below one vector width (the depth ≤ 7 sketch queries) the AVX2 variant
  // would run its scalar tail anyway; skip the extra call.
  if (g_enabled.load(std::memory_order_relaxed) && n >= 8) {
    GatherSignedAvx2(table, offsets, signs, n, out);
    return;
  }
#endif
  GatherSignedScalar(table, offsets, signs, n, out);
}

double PlanMargin(const float* table, const PlanView& plan, const float* values,
                  float* scratch) {
  // Gather phase (vectorizable), then the seed-order accumulation: the
  // per-feature inner sum is carried in double and folded into the outer
  // accumulator scaled by x_i, exactly as the pre-plan PredictMargin loops
  // did — so the margin is bit-identical whichever gather path ran.
  GatherSigned(table, plan.offsets, plan.signs, plan.entries(), scratch);
  const uint32_t d = plan.depth;
  double acc = 0.0;
  for (size_t i = 0; i < plan.nnz; ++i) {
    const float* g = scratch + i * d;
    double per_feature = 0.0;
    for (uint32_t j = 0; j < d; ++j) per_feature += static_cast<double>(g[j]);
    acc += per_feature * static_cast<double>(values[i]);
  }
  return acc;
}

void PlanScatter(float* table, const PlanView& plan, const float* values, double step,
                 float* scratch) {
#ifdef WMS_SIMD_X86
  if (g_enabled.load(std::memory_order_relaxed)) {
    // float(step·xᵢ·σ) == float(step·xᵢ)·σ for σ = ±1, so precomputing the
    // per-feature magnitudes keeps the stores bit-identical to the scalar
    // per-entry formula.
    StepDeltasAvx2(values, plan.nnz, step, scratch);
    const uint32_t d = plan.depth;
    for (size_t i = 0; i < plan.nnz; ++i) {
      const float fd = scratch[i];
      const uint32_t* off = plan.offsets + i * d;
      const float* sg = plan.signs + i * d;
      for (uint32_t j = 0; j < d; ++j) table[off[j]] -= sg[j] * fd;
    }
    return;
  }
#endif
  PlanScatterScalar(table, plan, values, step);
}

void MergeScaledTable(float* dst, const float* src, size_t n, double ratio) {
#ifdef WMS_SIMD_X86
  if (g_enabled.load(std::memory_order_relaxed)) {
    MergeScaledTableAvx2(dst, src, n, ratio);
    return;
  }
#endif
  MergeScaledTableScalar(dst, src, n, ratio);
}

void ScaleTable(float* t, size_t n, float f) {
#ifdef WMS_SIMD_X86
  if (g_enabled.load(std::memory_order_relaxed)) {
    ScaleTableAvx2(t, n, f);
    return;
  }
#endif
  ScaleTableScalar(t, n, f);
}

double L2NormSquared(const float* t, size_t n) {
#ifdef WMS_SIMD_X86
  if (g_enabled.load(std::memory_order_relaxed)) return L2NormSquaredAvx2(t, n);
#endif
  return L2NormSquaredScalar(t, n);
}

}  // namespace wmsketch::simd
