#include "util/simd.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/math.h"

// The AVX2 kernels are compiled with per-function target attributes (no
// global -mavx2 / -march=native), so a single binary carries both paths and
// picks one per-process via cpuid — CI runners and older machines without
// AVX2 exercise the scalar fallback of the very same build.
#if defined(WMS_SIMD) && (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define WMS_SIMD_X86 1
#include <immintrin.h>
#endif

namespace wmsketch::simd {

namespace {

bool CpuHasAvx2Fma() {
#ifdef WMS_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool InitialEnabled() {
  if (!CpuHasAvx2Fma()) return false;
  return std::getenv("WMS_SIMD_DISABLE") == nullptr;
}

// Atomic because SetEnabled may be called (bench/test toggling) while
// engine worker threads read the flag inside every kernel; relaxed order
// suffices — both paths compute the same results, so there is nothing to
// synchronize beyond the flag itself.
std::atomic<bool> g_enabled{InitialEnabled()};

// Dispatch thresholds, one relaxed atomic per field: read on every kernel
// call (possibly from engine worker threads) while SetThresholds may be
// called from a bench/tuning thread. Both paths compute identical results,
// so — exactly as with g_enabled — nothing beyond the fields themselves
// needs synchronizing.
struct AtomicThresholds {
  std::atomic<uint32_t> gather_min_entries{KernelThresholds{}.gather_min_entries};
  std::atomic<uint32_t> paged_gather_min_entries{
      KernelThresholds{}.paged_gather_min_entries};
  std::atomic<uint32_t> fused_median_min_keys{KernelThresholds{}.fused_median_min_keys};
  std::atomic<uint32_t> scatter_min_nnz{KernelThresholds{}.scatter_min_nnz};
  std::atomic<uint32_t> sweep_min_elems{KernelThresholds{}.sweep_min_elems};
  std::atomic<uint32_t> median_min_depth{KernelThresholds{}.median_min_depth};
};
AtomicThresholds g_thresholds;

inline bool DispatchAvx2(size_t n, const std::atomic<uint32_t>& min_size) {
  return g_enabled.load(std::memory_order_relaxed) &&
         n >= min_size.load(std::memory_order_relaxed);
}

// Gather-calibration state: 0 = pending, 1 = running, 2 = settled. The hot
// path pays one acquire load; an explicit SetThresholds settles the state
// so user-chosen thresholds are never clobbered by a late calibration.
std::atomic<int> g_gather_cal_state{0};

// Serializes threshold *writers* (SetThresholds, the calibration's result
// application, SetReadPlanDispatched) so a calibration that was already
// mid-run when SetThresholds arrived cannot clobber the explicit values —
// the calibration re-checks the state under this lock before applying.
// Readers stay lock-free.
std::mutex g_threshold_writer_mu;

// Whether the read-only batch paths should materialize plans for the wide
// gather (see ReadPlanDispatched). Calibrated; conservatively off.
std::atomic<bool> g_read_plan_profitable{false};

// The paged-snapshot analogue (see PagedReadPlanDispatched): whether frozen
// read models should materialize plans for the page-pointer-walk gather.
// Calibrated separately — the paged gather's dependent-gather chain shifts
// the crossover — and conservatively off.
std::atomic<bool> g_paged_read_plan_profitable{false};

// ------------------------------------------------------- scalar kernels
//
// These are the semantics of record: every expression matches the seed
// per-feature loops (see wm_sketch.cc) so a WMS_SIMD=OFF build is
// bit-identical to pre-plan behavior, and the AVX2 kernels below reproduce
// them exactly (signs are ±1, so sign application never rounds).

void GatherSignedScalar(const float* table, const uint32_t* offsets, const float* signs,
                        size_t n, float* out) {
  for (size_t e = 0; e < n; ++e) out[e] = signs[e] * table[offsets[e]];
}

void GatherSignedPagedScalar(const float* const* pages, uint32_t shift, uint32_t mask,
                             const uint32_t* offsets, const float* signs, size_t n,
                             float* out) {
  for (size_t e = 0; e < n; ++e) {
    out[e] = signs[e] * pages[offsets[e] >> shift][offsets[e] & mask];
  }
}

// The fused-median scalar fallbacks: per key, read the d signed cells into a
// small buffer, run the util/math.h sorting network, round through double for
// the factor. This is exactly what the gather-to-scratch route (and the
// per-feature RawMedianFromPlan loop) computes, so routing between them can
// never change a result. Depth is capped at 7 by the callers (deeper medians
// take the rank-selection path).
void GatherMedianFusedScalar(const float* table, const uint32_t* offsets,
                             const float* signs, size_t keys, uint32_t depth,
                             double factor, float* out) {
  float est[7];
  for (size_t k = 0; k < keys; ++k) {
    const uint32_t* off = offsets + k * depth;
    const float* sg = signs + k * depth;
    for (uint32_t j = 0; j < depth; ++j) est[j] = sg[j] * table[off[j]];
    out[k] = static_cast<float>(factor *
                                static_cast<double>(MedianInPlace(est, depth)));
  }
}

void GatherMedianFusedPagedScalar(const float* const* pages, uint32_t shift,
                                  uint32_t mask, const uint32_t* offsets,
                                  const float* signs, size_t keys, uint32_t depth,
                                  double factor, float* out) {
  float est[7];
  for (size_t k = 0; k < keys; ++k) {
    const uint32_t* off = offsets + k * depth;
    const float* sg = signs + k * depth;
    for (uint32_t j = 0; j < depth; ++j) {
      est[j] = sg[j] * pages[off[j] >> shift][off[j] & mask];
    }
    out[k] = static_cast<float>(factor *
                                static_cast<double>(MedianInPlace(est, depth)));
  }
}

void AbsAboveFloorScalar(const float* v, size_t n, float floor, float* abs_out,
                         uint8_t* above_out) {
  for (size_t i = 0; i < n; ++i) {
    abs_out[i] = std::fabs(v[i]);
    // !(|v| <= floor), not (|v| > floor): TopKHeap::Offer rejects on
    // fabs(w) <= floor, so its complement must treat NaN as "not rejected"
    // exactly as the heap would.
    above_out[i] = !(abs_out[i] <= floor) ? 1 : 0;
  }
}

void PlanScatterScalar(float* table, const PlanView& plan, const float* values,
                       double step) {
  const uint32_t d = plan.depth;
  for (size_t i = 0; i < plan.nnz; ++i) {
    const double delta = step * static_cast<double>(values[i]);
    const uint32_t* off = plan.offsets + i * d;
    const float* sg = plan.signs + i * d;
    for (uint32_t j = 0; j < d; ++j) {
      table[off[j]] -= static_cast<float>(delta * static_cast<double>(sg[j]));
    }
  }
}

void MergeScaledTableScalar(float* dst, const float* src, size_t n, double ratio) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] += static_cast<float>(ratio * static_cast<double>(src[i]));
  }
}

void ScaleTableScalar(float* t, size_t n, float f) {
  for (size_t i = 0; i < n; ++i) t[i] *= f;
}

double L2NormSquaredScalar(const float* t, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<double>(t[i]) * static_cast<double>(t[i]);
  }
  return s;
}

float MedianLargeScalar(float* v, size_t n) {
  const size_t mid = (n - 1) / 2;
  std::nth_element(v, v + static_cast<ptrdiff_t>(mid), v + n);
  return v[mid];
}

// --------------------------------------------------------- AVX2 kernels

#ifdef WMS_SIMD_X86

__attribute__((target("avx2,fma"))) void GatherSignedAvx2(const float* table,
                                                          const uint32_t* offsets,
                                                          const float* signs, size_t n,
                                                          float* out) {
  size_t e = 0;
  for (; e + 8 <= n; e += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(offsets + e));
    const __m256 cells = _mm256_i32gather_ps(table, idx, 4);
    const __m256 sg = _mm256_loadu_ps(signs + e);
    _mm256_storeu_ps(out + e, _mm256_mul_ps(sg, cells));
  }
  for (; e < n; ++e) out[e] = signs[e] * table[offsets[e]];
}

/// fdelta[i] = float(step · values[i]), the per-feature scatter magnitudes,
/// 4 double-precision products per iteration.
__attribute__((target("avx2,fma"))) void StepDeltasAvx2(const float* values, size_t n,
                                                        double step, float* fdelta) {
  const __m256d vstep = _mm256_set1_pd(step);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(values + i));
    _mm_storeu_ps(fdelta + i, _mm256_cvtpd_ps(_mm256_mul_pd(vstep, v)));
  }
  for (; i < n; ++i) {
    fdelta[i] = static_cast<float>(step * static_cast<double>(values[i]));
  }
}

__attribute__((target("avx2,fma"))) void MergeScaledTableAvx2(float* dst,
                                                              const float* src, size_t n,
                                                              double ratio) {
  const __m256d vratio = _mm256_set1_pd(ratio);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 s = _mm256_loadu_ps(src + i);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(s));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(s, 1));
    const __m128 flo = _mm256_cvtpd_ps(_mm256_mul_pd(vratio, lo));
    const __m128 fhi = _mm256_cvtpd_ps(_mm256_mul_pd(vratio, hi));
    const __m256 add = _mm256_set_m128(fhi, flo);
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), add));
  }
  for (; i < n; ++i) {
    dst[i] += static_cast<float>(ratio * static_cast<double>(src[i]));
  }
}

__attribute__((target("avx2,fma"))) void ScaleTableAvx2(float* t, size_t n, float f) {
  const __m256 vf = _mm256_set1_ps(f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(t + i, _mm256_mul_ps(_mm256_loadu_ps(t + i), vf));
  }
  for (; i < n; ++i) t[i] *= f;
}

__attribute__((target("avx2,fma"))) double L2NormSquaredAvx2(const float* t, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(t + i));
    acc = _mm256_fmadd_pd(v, v, acc);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    s += static_cast<double>(t[i]) * static_cast<double>(t[i]);
  }
  return s;
}

/// Rank-counting selection: v[i] is the lower-middle order statistic iff
/// #(y < v[i]) <= mid < #(y < v[i]) + #(y == v[i]). Eight comparisons per
/// instruction, no data-dependent partitioning, and the input is left
/// untouched. For the depth range this serves (8..64 rows) the O(n²/8)
/// comparison count undercuts nth_element's call-and-branch overhead.
__attribute__((target("avx2"))) float MedianLargeAvx2(const float* v, size_t n) {
  const size_t mid = (n - 1) / 2;
  for (size_t i = 0; i < n; ++i) {
    const __m256 xi = _mm256_set1_ps(v[i]);
    size_t lt = 0, eq = 0;
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 w = _mm256_loadu_ps(v + j);
      lt += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_cmp_ps(w, xi, _CMP_LT_OQ)))));
      eq += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_cmp_ps(w, xi, _CMP_EQ_OQ)))));
    }
    for (; j < n; ++j) {
      lt += v[j] < v[i] ? 1 : 0;
      eq += v[j] == v[i] ? 1 : 0;
    }
    if (lt <= mid && mid < lt + eq) return v[i];
  }
  return v[mid];  // unreachable for totally ordered (finite) inputs
}

// ---- paged-gather and fused-median building blocks (not standalone kernels:
// the `inline` storage keeps them out of the simd-paired coverage regex; they
// are exercised through the *Avx2 kernels below, which the table registers).

/// Eight table cells through the page-pointer indirection: vpgatherqq loads
/// four 64-bit page pointers per half, the in-page offsets become byte
/// distances, and vpgatherqps reads through the absolute addresses (base
/// nullptr, scale 1). Pure loads — bit-identical to pages[off>>s][off&m].
__attribute__((target("avx2,fma"))) inline __m256 PagedCellGather8(
    const float* const* pages, __m128i vshift, __m256i vmask, __m256i off) {
  const __m256i page = _mm256_srl_epi32(off, vshift);
  const __m256i in_page = _mm256_and_si256(off, vmask);
  const long long* ptab = reinterpret_cast<const long long*>(pages);
  const __m256i ptr_lo = _mm256_i32gather_epi64(ptab, _mm256_castsi256_si128(page), 8);
  const __m256i ptr_hi =
      _mm256_i32gather_epi64(ptab, _mm256_extracti128_si256(page, 1), 8);
  const __m256i in_lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(in_page));
  const __m256i in_hi = _mm256_cvtepu32_epi64(_mm256_extracti128_si256(in_page, 1));
  const __m256i addr_lo = _mm256_add_epi64(ptr_lo, _mm256_slli_epi64(in_lo, 2));
  const __m256i addr_hi = _mm256_add_epi64(ptr_hi, _mm256_slli_epi64(in_hi, 2));
  const __m128 cells_lo =
      _mm256_i64gather_ps(static_cast<const float*>(nullptr), addr_lo, 1);
  const __m128 cells_hi =
      _mm256_i64gather_ps(static_cast<const float*>(nullptr), addr_hi, 1);
  return _mm256_set_m128(cells_hi, cells_lo);
}

/// (b < a) ? b : a and (a < b) ? b : a — std::min / std::max reproduced
/// exactly. vminps/vmaxps are NOT usable here: they return the second
/// operand on ±0 ties where std::min/std::max return the first, and the
/// fused medians feed heap offers and serialized state downstream.
__attribute__((target("avx2,fma"))) inline __m256 VMinExact(__m256 a, __m256 b) {
  return _mm256_blendv_ps(a, b, _mm256_cmp_ps(b, a, _CMP_LT_OQ));
}
__attribute__((target("avx2,fma"))) inline __m256 VMaxExact(__m256 a, __m256 b) {
  return _mm256_blendv_ps(a, b, _mm256_cmp_ps(a, b, _CMP_LT_OQ));
}
__attribute__((target("avx2,fma"))) inline void VCSwap(__m256& a, __m256& b) {
  const __m256 lo = VMinExact(a, b);
  const __m256 hi = VMaxExact(a, b);
  a = lo;
  b = hi;
}

/// The util/math.h MedianInPlace sorting networks, one comparator sequence
/// per depth, run on 8 independent columns held in registers. Any edit to
/// the scalar networks must be mirrored here verbatim — the bit-identity
/// tests in hash_plan_test.cc will catch a drift.
__attribute__((target("avx2,fma"))) inline __m256 MedianNetwork8(__m256* v, uint32_t n) {
  switch (n) {
    case 1:
      return v[0];
    case 2:
      return VMinExact(v[0], v[1]);
    case 3:
      VCSwap(v[0], v[1]);
      VCSwap(v[1], v[2]);
      return VMaxExact(v[0], v[1]);
    case 4:
      VCSwap(v[0], v[1]);
      VCSwap(v[2], v[3]);
      VCSwap(v[0], v[2]);
      VCSwap(v[1], v[3]);
      return VMinExact(v[1], v[2]);
    case 5:
      VCSwap(v[0], v[1]);
      VCSwap(v[3], v[4]);
      VCSwap(v[2], v[4]);
      VCSwap(v[2], v[3]);
      VCSwap(v[1], v[4]);
      VCSwap(v[0], v[3]);
      VCSwap(v[0], v[2]);
      VCSwap(v[1], v[3]);
      return VMaxExact(v[1], v[2]);
    case 6:
      VCSwap(v[1], v[2]);
      VCSwap(v[4], v[5]);
      VCSwap(v[0], v[2]);
      VCSwap(v[3], v[5]);
      VCSwap(v[0], v[1]);
      VCSwap(v[3], v[4]);
      VCSwap(v[2], v[5]);
      VCSwap(v[0], v[3]);
      VCSwap(v[1], v[4]);
      VCSwap(v[2], v[4]);
      VCSwap(v[1], v[3]);
      return VMinExact(v[2], v[3]);
    default:  // 7 (callers cap depth at 7)
      VCSwap(v[1], v[2]);
      VCSwap(v[3], v[4]);
      VCSwap(v[5], v[6]);
      VCSwap(v[0], v[2]);
      VCSwap(v[3], v[5]);
      VCSwap(v[4], v[6]);
      VCSwap(v[0], v[1]);
      VCSwap(v[4], v[5]);
      VCSwap(v[2], v[6]);
      VCSwap(v[0], v[4]);
      VCSwap(v[1], v[5]);
      VCSwap(v[0], v[3]);
      VCSwap(v[2], v[5]);
      VCSwap(v[1], v[3]);
      VCSwap(v[2], v[4]);
      VCSwap(v[2], v[3]);
      return v[3];
  }
}

/// float(factor · double(med)) per lane — the exact per-key rounding of the
/// scalar estimate path (widen to double, multiply, round back once).
__attribute__((target("avx2,fma"))) inline __m256 ApplyFactor8(__m256 med,
                                                               __m256d vfactor) {
  const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(med));
  const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(med, 1));
  const __m128 flo = _mm256_cvtpd_ps(_mm256_mul_pd(vfactor, lo));
  const __m128 fhi = _mm256_cvtpd_ps(_mm256_mul_pd(vfactor, hi));
  return _mm256_set_m128(fhi, flo);
}

__attribute__((target("avx2,fma"))) void GatherSignedPagedAvx2(
    const float* const* pages, uint32_t shift, uint32_t mask, const uint32_t* offsets,
    const float* signs, size_t n, float* out) {
  const __m128i vshift = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
  size_t e = 0;
  for (; e + 8 <= n; e += 8) {
    const __m256i off =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(offsets + e));
    const __m256 cells = PagedCellGather8(pages, vshift, vmask, off);
    _mm256_storeu_ps(out + e, _mm256_mul_ps(_mm256_loadu_ps(signs + e), cells));
  }
  for (; e < n; ++e) {
    out[e] = signs[e] * pages[offsets[e] >> shift][offsets[e] & mask];
  }
}

__attribute__((target("avx2,fma"))) void GatherMedianFusedAvx2(
    const float* table, const uint32_t* offsets, const float* signs, size_t keys,
    uint32_t depth, double factor, float* out) {
  const __m256d vfactor = _mm256_set1_pd(factor);
  const int d = static_cast<int>(depth);
  // Transposed plan loads: the 8 keys' row-j entries sit a stride of d apart.
  const __m256i stride =
      _mm256_mullo_epi32(_mm256_set1_epi32(d), _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  __m256 lane[7];
  size_t k = 0;
  for (; k + 8 <= keys; k += 8) {
    const uint32_t* base_off = offsets + k * depth;
    const float* base_sg = signs + k * depth;
    for (int j = 0; j < d; ++j) {
      const __m256i offv =
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(base_off) + j, stride, 4);
      const __m256 sgv = _mm256_i32gather_ps(base_sg + j, stride, 4);
      const __m256 cells = _mm256_i32gather_ps(table, offv, 4);
      lane[j] = _mm256_mul_ps(sgv, cells);
    }
    _mm256_storeu_ps(out + k, ApplyFactor8(MedianNetwork8(lane, depth), vfactor));
  }
  if (k < keys) {
    GatherMedianFusedScalar(table, offsets + k * depth, signs + k * depth, keys - k,
                            depth, factor, out + k);
  }
}

__attribute__((target("avx2,fma"))) void GatherMedianFusedPagedAvx2(
    const float* const* pages, uint32_t shift, uint32_t mask, const uint32_t* offsets,
    const float* signs, size_t keys, uint32_t depth, double factor, float* out) {
  const __m128i vshift = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
  const __m256d vfactor = _mm256_set1_pd(factor);
  const int d = static_cast<int>(depth);
  const __m256i stride =
      _mm256_mullo_epi32(_mm256_set1_epi32(d), _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  __m256 lane[7];
  size_t k = 0;
  for (; k + 8 <= keys; k += 8) {
    const uint32_t* base_off = offsets + k * depth;
    const float* base_sg = signs + k * depth;
    for (int j = 0; j < d; ++j) {
      const __m256i offv =
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(base_off) + j, stride, 4);
      const __m256 sgv = _mm256_i32gather_ps(base_sg + j, stride, 4);
      const __m256 cells = PagedCellGather8(pages, vshift, vmask, offv);
      lane[j] = _mm256_mul_ps(sgv, cells);
    }
    _mm256_storeu_ps(out + k, ApplyFactor8(MedianNetwork8(lane, depth), vfactor));
  }
  if (k < keys) {
    GatherMedianFusedPagedScalar(pages, shift, mask, offsets + k * depth,
                                 signs + k * depth, keys - k, depth, factor, out + k);
  }
}

__attribute__((target("avx2,fma"))) void AbsAboveFloorAvx2(const float* v, size_t n,
                                                           float floor, float* abs_out,
                                                           uint8_t* above_out) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  const __m256 vfloor = _mm256_set1_ps(floor);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 a = _mm256_andnot_ps(sign_mask, _mm256_loadu_ps(v + i));
    _mm256_storeu_ps(abs_out + i, a);
    // NLE (unordered) == !(a <= floor): matches the scalar kernel on NaN.
    const unsigned m = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(a, vfloor, _CMP_NLE_UQ)));
    for (int b = 0; b < 8; ++b) above_out[i + b] = static_cast<uint8_t>((m >> b) & 1u);
  }
  for (; i < n; ++i) {
    abs_out[i] = std::fabs(v[i]);
    above_out[i] = !(abs_out[i] <= floor) ? 1 : 0;
  }
}

// -------------------------------------------------------- AVX-512 kernels

bool CpuHasAvx512Scatter() {
  // f for the 16-lane gather/scatter/masks, cd for vpconflictd.
  return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512cd");
}

/// table[offsets[e]] -= amounts[e] in exact lane order: vpconflictd finds,
/// per lane, the set of earlier lanes holding an equal offset, and the
/// masked gather→sub→scatter loop retires a lane only once every earlier
/// duplicate has stored — so duplicate offsets see the same store *sequence*
/// as the scalar loop (combining their amounts first would round
/// differently). Conflict-free blocks (the overwhelmingly common case for
/// hashed offsets) retire in a single round.
__attribute__((target("avx512f,avx512cd"))) void PlanScatterAvx512(
    float* table, const uint32_t* offsets, const float* amounts, size_t n) {
  size_t e = 0;
  for (; e + 16 <= n; e += 16) {
    const __m512i off = _mm512_loadu_si512(offsets + e);
    const __m512 amt = _mm512_loadu_ps(amounts + e);
    const __m512i conf = _mm512_conflict_epi32(off);
    __mmask16 pending = 0xffff;
    while (pending != 0) {
      // Ready: pending lanes none of whose earlier equal-offset lanes are
      // still pending. The earliest pending lane of every distinct offset
      // qualifies, so each round makes progress.
      const __mmask16 ready =
          pending & _mm512_testn_epi32_mask(
                        conf, _mm512_set1_epi32(static_cast<int>(
                                  static_cast<unsigned>(pending))));
      const __m512 cur =
          _mm512_mask_i32gather_ps(_mm512_setzero_ps(), ready, off, table, 4);
      _mm512_mask_i32scatter_ps(table, ready, off, _mm512_sub_ps(cur, amt), 4);
      pending = static_cast<__mmask16>(pending & ~ready);
    }
  }
  for (; e < n; ++e) table[offsets[e]] -= amounts[e];
}

/// Times the AVX2 gather against the scalar loop on an L2-resident table
/// with random offsets, at an update-sized problem (256 entries ≈ one
/// example's nnz·depth) and at a batch-sized one (4096 ≈ one EstimateBatch
/// chunk), and sets the gather dispatch accordingly: full (wins at both
/// sizes), batch-only (wins only wide), or off. A kernel must win by a
/// clear margin (≥20%) to dispatch — vpgatherdps runs at wildly different
/// speeds across parts (microcode mitigations, virtualization), borderline
/// wins flip with scheduling noise, and the scalar loop is never wrong.
void CalibrateGatherImpl() {
  if (!CpuHasAvx2Fma()) return;
  constexpr size_t kTableSize = 1u << 15;  // 128 KiB of floats
  constexpr size_t kBatchEntries = 4096;
  constexpr size_t kUpdateEntries = 256;
  std::vector<float> table(kTableSize);
  std::vector<uint32_t> offsets(kBatchEntries);
  std::vector<float> signs(kBatchEntries);
  std::vector<float> out(kBatchEntries);
  uint64_t x = 0x9e3779b97f4a7c15ULL;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (float& c : table) {
    c = static_cast<float>(static_cast<int>(next() & 0xff) - 128) * 0.01f;
  }
  for (size_t i = 0; i < kBatchEntries; ++i) {
    const uint64_t r = next();
    offsets[i] = static_cast<uint32_t>(r) & (kTableSize - 1);
    signs[i] = ((r >> 32) & 1) != 0 ? 1.0f : -1.0f;
  }
  float sink = 0.0f;
  double acc_sink = 0.0;
  // Best-of-7 over fixed-work inner loops: the minimum is the noise-robust
  // estimator for "how fast can this kernel go on this machine".
  const auto best_of = [&](size_t iters, auto&& kernel) {
    double best = 1e300;
    for (int rep = 0; rep < 7; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      for (size_t iter = 0; iter < iters; ++iter) kernel();
      const auto t1 = std::chrono::steady_clock::now();
      sink += out[kBatchEntries / 2];  // defeat dead-code elimination
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };
  const auto gather_pair = [&](size_t n, size_t iters, double required_ratio) {
    const double scalar_time = best_of(iters, [&] {
      GatherSignedScalar(table.data(), offsets.data(), signs.data(), n, out.data());
    });
    const double avx2_time = best_of(iters, [&] {
      GatherSignedAvx2(table.data(), offsets.data(), signs.data(), n, out.data());
    });
    return avx2_time < required_ratio * scalar_time;
  };
  // Update-sized gathers run interleaved with hashing, scatters, and heap
  // offers, whose work the out-of-order core overlaps with scalar table
  // reads for free — in-situ measurements show an isolated ~1.5× gather win
  // evaporating inside the update loop. Demand a 2× isolated win before
  // believing any of it transfers; wide batch gathers run back-to-back with
  // nothing to hide behind, so a clear (1.25×) win suffices there.
  const bool wins_update_size = gather_pair(kUpdateEntries, 128, 0.5);
  const bool wins_batch_size = gather_pair(kBatchEntries, 8, 0.8);

  // The read-path structural comparison at batch size: one fused pass (read
  // table, apply sign, accumulate — what the fused margin/median loops do
  // after hashing) versus the plan route (hardware gather into scratch + an
  // accumulation pass over it). Hashing costs both routes the same and
  // cancels out.
  const double fused_read_time = best_of(8, [&] {
    double acc = 0.0;
    for (size_t e = 0; e < kBatchEntries; ++e) {
      acc += static_cast<double>(signs[e]) * static_cast<double>(table[offsets[e]]);
    }
    acc_sink += acc;
  });
  const double plan_read_time = best_of(8, [&] {
    GatherSignedAvx2(table.data(), offsets.data(), signs.data(), kBatchEntries,
                     out.data());
    double acc = 0.0;
    for (size_t e = 0; e < kBatchEntries; ++e) acc += static_cast<double>(out[e]);
    acc_sink += acc;
  });
  // Paged-gather arms: the same table viewed through a synthetic page array
  // (1024 cells per page — the mid-range PickPageCells outcome), timing the
  // page-pointer-walk gather against the scalar paged loop at both shapes.
  // The dependent pointer gather shifts the crossover, hence the separate
  // threshold.
  constexpr uint32_t kPageShift = 10;
  constexpr uint32_t kPageMask = (1u << kPageShift) - 1;
  std::vector<const float*> pages(kTableSize >> kPageShift);
  for (size_t p = 0; p < pages.size(); ++p) {
    pages[p] = table.data() + (p << kPageShift);
  }
  const auto paged_pair = [&](size_t n, size_t iters, double required_ratio) {
    const double scalar_time = best_of(iters, [&] {
      GatherSignedPagedScalar(pages.data(), kPageShift, kPageMask, offsets.data(),
                              signs.data(), n, out.data());
    });
    const double avx2_time = best_of(iters, [&] {
      GatherSignedPagedAvx2(pages.data(), kPageShift, kPageMask, offsets.data(),
                            signs.data(), n, out.data());
    });
    return avx2_time < required_ratio * scalar_time;
  };
  const bool paged_wins_update_size = paged_pair(kUpdateEntries, 128, 0.5);
  const bool paged_wins_batch_size = paged_pair(kBatchEntries, 8, 0.8);

  // Paged structural read comparison, mirroring the flat one: the fused
  // per-cell page walk (what FusedMarginPaged/FusedEstimatePaged do after
  // hashing) versus the paged plan route (hardware page-walk gather into
  // scratch + an accumulation pass).
  const double fused_paged_read_time = best_of(8, [&] {
    double acc = 0.0;
    for (size_t e = 0; e < kBatchEntries; ++e) {
      acc += static_cast<double>(signs[e]) *
             static_cast<double>(pages[offsets[e] >> kPageShift][offsets[e] & kPageMask]);
    }
    acc_sink += acc;
  });
  const double plan_paged_read_time = best_of(8, [&] {
    GatherSignedPagedAvx2(pages.data(), kPageShift, kPageMask, offsets.data(),
                          signs.data(), kBatchEntries, out.data());
    double acc = 0.0;
    for (size_t e = 0; e < kBatchEntries; ++e) acc += static_cast<double>(out[e]);
    acc_sink += acc;
  });

  // Fused gather+median versus the route it replaces: gather-to-scratch plus
  // the per-key scalar sorting networks, at a batch-estimate shape (depth 5).
  // Both routes are bit-identical, so this is pure routing; the fused kernel
  // must still clearly win to dispatch.
  constexpr uint32_t kMedDepth = 5;
  constexpr size_t kMedKeys = kBatchEntries / kMedDepth;
  std::vector<float> med_out(kMedKeys);
  const double scratch_median_time = best_of(8, [&] {
    GatherSignedAvx2(table.data(), offsets.data(), signs.data(), kMedKeys * kMedDepth,
                     out.data());
    for (size_t k = 0; k < kMedKeys; ++k) {
      med_out[k] = static_cast<float>(
          1.0 * static_cast<double>(MedianInPlace(out.data() + k * kMedDepth, kMedDepth)));
    }
    sink += med_out[kMedKeys / 2];
  });
  const double fused_median_time = best_of(8, [&] {
    GatherMedianFusedAvx2(table.data(), offsets.data(), signs.data(), kMedKeys,
                          kMedDepth, 1.0, med_out.data());
    sink += med_out[kMedKeys / 2];
  });
  if (sink == 12345.678f || acc_sink == 12345.678) std::abort();  // keep sinks live

  // Apply under the writer lock, and only if nobody settled the state while
  // the timing loops ran: an explicit SetThresholds that raced with this
  // calibration must win ("explicit thresholds always stand"). Every clause
  // below only *raises* a threshold or *enables* a flag — the invariant the
  // eligible-call pre-check in the dispatchers relies on.
  std::lock_guard<std::mutex> lk(g_threshold_writer_mu);
  if (g_gather_cal_state.load(std::memory_order_acquire) != 1) return;
  if (!wins_batch_size) {
    // Not even the most gather-friendly shape wins: scalar everywhere.
    g_thresholds.gather_min_entries.store(0xffffffffu, std::memory_order_relaxed);
  } else if (!wins_update_size) {
    // Wide gathers pay, update-sized ones don't: dispatch batch-width only.
    g_thresholds.gather_min_entries.store(1024, std::memory_order_relaxed);
  }
  if (wins_batch_size && plan_read_time < 0.8 * fused_read_time) {
    // Gathers beat fused reads despite the extra pass: let the batched
    // read paths materialize plans.
    g_read_plan_profitable.store(true, std::memory_order_relaxed);
  }
  if (!paged_wins_batch_size) {
    g_thresholds.paged_gather_min_entries.store(0xffffffffu, std::memory_order_relaxed);
  } else if (!paged_wins_update_size) {
    g_thresholds.paged_gather_min_entries.store(1024, std::memory_order_relaxed);
  }
  if (paged_wins_batch_size && plan_paged_read_time < 0.8 * fused_paged_read_time) {
    g_paged_read_plan_profitable.store(true, std::memory_order_relaxed);
  }
  // The fused median replaces an already-vectorized route, so a modest but
  // clear win (≥10%) suffices; anything less and the scratch route stays.
  if (!(fused_median_time < 0.9 * scratch_median_time)) {
    g_thresholds.fused_median_min_keys.store(0xffffffffu, std::memory_order_relaxed);
  }
}

#endif  // WMS_SIMD_X86

#ifdef WMS_SIMD_X86
// WMS_SKIP_CALIBRATION: opt out of the ~1 ms timing run entirely (CI and
// short-lived test binaries). Dispatch then stands on the static defaults —
// both dispatch targets are bit-identical, so this only trades the measured
// per-machine routing for the unmeasured default one.
bool SkipCalibrationByEnv() {
  static const bool skip = std::getenv("WMS_SKIP_CALIBRATION") != nullptr;
  return skip;
}

void EnsureGatherCalibrated() {
  if (g_gather_cal_state.load(std::memory_order_acquire) == 2) return;
  // Deferral, not settlement: with the AVX2 path off nothing can dispatch a
  // gather, so there is nothing to calibrate — but a later SetEnabled(true)
  // must still be able to trigger the measurement.
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  if (SkipCalibrationByEnv()) {
    // Settle on the static defaults without measuring ("explicit choice
    // stands", like SetThresholds).
    std::lock_guard<std::mutex> lk(g_threshold_writer_mu);
    g_gather_cal_state.store(2, std::memory_order_release);
    return;
  }
  int expected = 0;
  if (g_gather_cal_state.compare_exchange_strong(expected, 1,
                                                 std::memory_order_acq_rel)) {
    CalibrateGatherImpl();
    g_gather_cal_state.store(2, std::memory_order_release);
  }
  // A concurrent calibrator is mid-run: proceed with the current thresholds
  // (both dispatch targets are bit-identical, so nothing can go wrong).
}
#endif

}  // namespace

bool Available() { return CpuHasAvx2Fma(); }

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on && Available(), std::memory_order_relaxed); }

const char* ActiveKernel() { return Enabled() ? "avx2" : "scalar"; }

KernelThresholds Thresholds() {
  KernelThresholds t;
  t.gather_min_entries = g_thresholds.gather_min_entries.load(std::memory_order_relaxed);
  t.paged_gather_min_entries =
      g_thresholds.paged_gather_min_entries.load(std::memory_order_relaxed);
  t.fused_median_min_keys =
      g_thresholds.fused_median_min_keys.load(std::memory_order_relaxed);
  t.scatter_min_nnz = g_thresholds.scatter_min_nnz.load(std::memory_order_relaxed);
  t.sweep_min_elems = g_thresholds.sweep_min_elems.load(std::memory_order_relaxed);
  t.median_min_depth = g_thresholds.median_min_depth.load(std::memory_order_relaxed);
  return t;
}

void SetThresholds(const KernelThresholds& t) {
  // Explicit thresholds settle the calibration state so a later lazy
  // calibration can never clobber them; the writer lock covers a
  // calibration that is already mid-run (it re-checks the state under the
  // same lock before applying its results).
  std::lock_guard<std::mutex> lk(g_threshold_writer_mu);
  g_gather_cal_state.store(2, std::memory_order_release);
  g_thresholds.gather_min_entries.store(t.gather_min_entries, std::memory_order_relaxed);
  g_thresholds.paged_gather_min_entries.store(t.paged_gather_min_entries,
                                              std::memory_order_relaxed);
  g_thresholds.fused_median_min_keys.store(t.fused_median_min_keys,
                                           std::memory_order_relaxed);
  g_thresholds.scatter_min_nnz.store(t.scatter_min_nnz, std::memory_order_relaxed);
  g_thresholds.sweep_min_elems.store(t.sweep_min_elems, std::memory_order_relaxed);
  g_thresholds.median_min_depth.store(t.median_min_depth, std::memory_order_relaxed);
}

void SetReadPlanDispatched(bool on) {
  std::lock_guard<std::mutex> lk(g_threshold_writer_mu);
  g_gather_cal_state.store(2, std::memory_order_release);  // explicit choice stands
  g_read_plan_profitable.store(on, std::memory_order_relaxed);
}

void SetPagedReadPlanDispatched(bool on) {
  std::lock_guard<std::mutex> lk(g_threshold_writer_mu);
  g_gather_cal_state.store(2, std::memory_order_release);  // explicit choice stands
  g_paged_read_plan_profitable.store(on, std::memory_order_relaxed);
}

void CalibrateGather() {
#ifdef WMS_SIMD_X86
  EnsureGatherCalibrated();
#endif
}

// The calibration triggers only on a SIMD-*eligible* call — one that would
// dispatch the AVX2 gather under the thresholds as they stand. That check
// is sound uncalibrated: the calibration only ever *raises*
// gather_min_entries (to batch-only or off) and only ever *enables* the
// read-plan route, so a call that fails the pre-check would fail it after
// calibrating too. Short-lived binaries that never reach an eligible size
// (unit tests, scalar-routed workloads) therefore never pay the ~1 ms run.

bool GatherDispatched(size_t entries) {
#ifdef WMS_SIMD_X86
  if (DispatchAvx2(entries, g_thresholds.gather_min_entries)) {
    EnsureGatherCalibrated();
  }
#endif
  return DispatchAvx2(entries, g_thresholds.gather_min_entries);
}

bool ReadPlanDispatched(size_t entries) {
#ifdef WMS_SIMD_X86
  if (DispatchAvx2(entries, g_thresholds.gather_min_entries)) {
    EnsureGatherCalibrated();
  }
#endif
  return g_read_plan_profitable.load(std::memory_order_relaxed) &&
         DispatchAvx2(entries, g_thresholds.gather_min_entries);
}

bool PagedReadPlanDispatched(size_t entries) {
#ifdef WMS_SIMD_X86
  if (DispatchAvx2(entries, g_thresholds.paged_gather_min_entries)) {
    EnsureGatherCalibrated();
  }
#endif
  return g_paged_read_plan_profitable.load(std::memory_order_relaxed) &&
         DispatchAvx2(entries, g_thresholds.paged_gather_min_entries);
}

bool FusedMedianDispatched(size_t keys) {
#ifdef WMS_SIMD_X86
  if (DispatchAvx2(keys, g_thresholds.fused_median_min_keys)) {
    EnsureGatherCalibrated();
    return DispatchAvx2(keys, g_thresholds.fused_median_min_keys);
  }
#endif
  return false;
}

void GatherSigned(const float* table, const uint32_t* offsets, const float* signs,
                  size_t n, float* out) {
#ifdef WMS_SIMD_X86
  // Below the crossover (in particular every depth ≤ 7 per-feature median
  // gather) the AVX2 variant would pay the vpgatherdps setup only to run its
  // scalar tail anyway; skip the extra call. The first *eligible* dispatch
  // calibrates whether this machine's hardware gather is worth using at all
  // (and may raise the threshold, hence the re-check).
  if (DispatchAvx2(n, g_thresholds.gather_min_entries)) {
    EnsureGatherCalibrated();
    if (DispatchAvx2(n, g_thresholds.gather_min_entries)) {
      GatherSignedAvx2(table, offsets, signs, n, out);
      return;
    }
  }
#endif
  GatherSignedScalar(table, offsets, signs, n, out);
}

void GatherSignedPaged(const float* const* pages, uint32_t shift, uint32_t mask,
                       const uint32_t* offsets, const float* signs, size_t n,
                       float* out) {
#ifdef WMS_SIMD_X86
  if (DispatchAvx2(n, g_thresholds.paged_gather_min_entries)) {
    EnsureGatherCalibrated();
    if (DispatchAvx2(n, g_thresholds.paged_gather_min_entries)) {
      GatherSignedPagedAvx2(pages, shift, mask, offsets, signs, n, out);
      return;
    }
  }
#endif
  GatherSignedPagedScalar(pages, shift, mask, offsets, signs, n, out);
}

void GatherMedianFused(const float* table, const uint32_t* offsets, const float* signs,
                       size_t keys, uint32_t depth, double factor, float* out) {
  assert(depth >= 1 && depth <= 7);
#ifdef WMS_SIMD_X86
  if (DispatchAvx2(keys, g_thresholds.fused_median_min_keys)) {
    EnsureGatherCalibrated();
    if (DispatchAvx2(keys, g_thresholds.fused_median_min_keys)) {
      GatherMedianFusedAvx2(table, offsets, signs, keys, depth, factor, out);
      return;
    }
  }
#endif
  GatherMedianFusedScalar(table, offsets, signs, keys, depth, factor, out);
}

void GatherMedianFusedPaged(const float* const* pages, uint32_t shift, uint32_t mask,
                            const uint32_t* offsets, const float* signs, size_t keys,
                            uint32_t depth, double factor, float* out) {
  assert(depth >= 1 && depth <= 7);
#ifdef WMS_SIMD_X86
  if (DispatchAvx2(keys, g_thresholds.fused_median_min_keys)) {
    EnsureGatherCalibrated();
    if (DispatchAvx2(keys, g_thresholds.fused_median_min_keys)) {
      GatherMedianFusedPagedAvx2(pages, shift, mask, offsets, signs, keys, depth,
                                 factor, out);
      return;
    }
  }
#endif
  GatherMedianFusedPagedScalar(pages, shift, mask, offsets, signs, keys, depth, factor,
                               out);
}

void AbsAboveFloor(const float* v, size_t n, float floor, float* abs_out,
                   uint8_t* above_out) {
#ifdef WMS_SIMD_X86
  if (DispatchAvx2(n, g_thresholds.sweep_min_elems)) {
    AbsAboveFloorAvx2(v, n, floor, abs_out, above_out);
    return;
  }
#endif
  AbsAboveFloorScalar(v, n, floor, abs_out, above_out);
}

float MedianLarge(float* v, size_t n) {
#ifdef WMS_SIMD_X86
  if (DispatchAvx2(n, g_thresholds.median_min_depth)) return MedianLargeAvx2(v, n);
#endif
  return MedianLargeScalar(v, n);
}

// The seed-order accumulation shared by the flat and paged plan margins: the
// per-feature inner sum is carried in double and folded into the outer
// accumulator scaled by x_i, exactly as the pre-plan PredictMargin loops did
// — so the margin is bit-identical whichever gather path filled `gathered`.
static double PlanAccumulate(const PlanView& plan, const float* gathered,
                             const float* values) {
  const uint32_t d = plan.depth;
  double acc = 0.0;
  for (size_t i = 0; i < plan.nnz; ++i) {
    const float* g = gathered + i * d;
    double per_feature = 0.0;
    for (uint32_t j = 0; j < d; ++j) per_feature += static_cast<double>(g[j]);
    acc += per_feature * static_cast<double>(values[i]);
  }
  return acc;
}

double PlanMargin(const float* table, const PlanView& plan, const float* values,
                  float* scratch) {
  GatherSigned(table, plan.offsets, plan.signs, plan.entries(), scratch);
  return PlanAccumulate(plan, scratch, values);
}

double PlanMarginPaged(const float* const* pages, uint32_t shift, uint32_t mask,
                       const PlanView& plan, const float* values, float* scratch) {
  GatherSignedPaged(pages, shift, mask, plan.offsets, plan.signs, plan.entries(),
                    scratch);
  return PlanAccumulate(plan, scratch, values);
}

void PlanScatter(float* table, const PlanView& plan, const float* values, double step,
                 [[maybe_unused]] float* scratch) {  // scratch feeds the AVX2 path only
#ifdef WMS_SIMD_X86
  if (DispatchAvx2(plan.nnz, g_thresholds.scatter_min_nnz)) {
    // float(step·xᵢ·σ) == float(step·xᵢ)·σ for σ = ±1, so precomputing the
    // per-feature magnitudes keeps the stores bit-identical to the scalar
    // per-entry formula.
    StepDeltasAvx2(values, plan.nnz, step, scratch);
    const uint32_t d = plan.depth;
    static const bool has_avx512_scatter = CpuHasAvx512Scatter();
    if (has_avx512_scatter && plan.entries() >= 16) {
      // Expand the per-entry signed amounts (σ · float(step·xᵢ), exact for
      // σ = ±1) into a local buffer — the caller's scratch contract is
      // plan.nnz floats and the scatter consumes plan.entries() — then run
      // the conflict-serialized masked scatter.
      thread_local std::vector<float> amounts;
      const size_t entries = plan.entries();
      if (amounts.size() < entries) amounts.resize(entries);
      for (size_t i = 0; i < plan.nnz; ++i) {
        const float fd = scratch[i];
        const float* sg = plan.signs + i * d;
        float* am = amounts.data() + i * d;
        for (uint32_t j = 0; j < d; ++j) am[j] = sg[j] * fd;
      }
      PlanScatterAvx512(table, plan.offsets, amounts.data(), entries);
      return;
    }
    for (size_t i = 0; i < plan.nnz; ++i) {
      const float fd = scratch[i];
      const uint32_t* off = plan.offsets + i * d;
      const float* sg = plan.signs + i * d;
      for (uint32_t j = 0; j < d; ++j) table[off[j]] -= sg[j] * fd;
    }
    return;
  }
#endif
  PlanScatterScalar(table, plan, values, step);
}

void MergeScaledTable(float* dst, const float* src, size_t n, double ratio) {
#ifdef WMS_SIMD_X86
  if (DispatchAvx2(n, g_thresholds.sweep_min_elems)) {
    MergeScaledTableAvx2(dst, src, n, ratio);
    return;
  }
#endif
  MergeScaledTableScalar(dst, src, n, ratio);
}

void ScaleTable(float* t, size_t n, float f) {
#ifdef WMS_SIMD_X86
  if (DispatchAvx2(n, g_thresholds.sweep_min_elems)) {
    ScaleTableAvx2(t, n, f);
    return;
  }
#endif
  ScaleTableScalar(t, n, f);
}

double L2NormSquared(const float* t, size_t n) {
#ifdef WMS_SIMD_X86
  if (DispatchAvx2(n, g_thresholds.sweep_min_elems)) return L2NormSquaredAvx2(t, n);
#endif
  return L2NormSquaredScalar(t, n);
}

}  // namespace wmsketch::simd
