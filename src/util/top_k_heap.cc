#include "util/top_k_heap.h"

#include <algorithm>

namespace wmsketch {

void SortByMagnitudeAndTruncate(std::vector<FeatureWeight>& entries, size_t k) {
  std::sort(entries.begin(), entries.end(), [](const FeatureWeight& a, const FeatureWeight& b) {
    const float ma = std::fabs(a.weight);
    const float mb = std::fabs(b.weight);
    if (ma != mb) return ma > mb;
    return a.feature < b.feature;
  });
  if (entries.size() > k) entries.resize(k);
}

std::vector<FeatureWeight> TopKHeap::TopK(size_t k) const {
  std::vector<FeatureWeight> out = Entries();
  SortByMagnitudeAndTruncate(out, k);
  return out;
}

}  // namespace wmsketch
