#include "util/alias.h"

#include <cmath>

namespace wmsketch {

Result<AliasTable> AliasTable::Build(const std::vector<double>& weights) {
  if (weights.empty()) return Status::InvalidArgument("alias table needs at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument("alias weights must be finite and non-negative");
    }
    total += w;
  }
  if (total <= 0.0) return Status::InvalidArgument("alias weights sum to zero");

  const size_t n = weights.size();
  AliasTable table;
  table.prob_.assign(n, 0.0);
  table.alias_.assign(n, 0);
  table.normalized_.resize(n);

  // Vose's stable construction with explicit small/large worklists.
  std::vector<double> scaled(n);
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  for (size_t i = 0; i < n; ++i) {
    table.normalized_[i] = weights[i] / total;
    scaled[i] = table.normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    table.prob_[s] = scaled[s];
    table.alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers are full slots.
  for (const uint32_t i : small) table.prob_[i] = 1.0;
  for (const uint32_t i : large) table.prob_[i] = 1.0;
  return table;
}

}  // namespace wmsketch
