#pragma once

#include <cmath>
#include <cstdint>

namespace wmsketch {

/// SplitMix64: a tiny, statistically strong 64-bit PRNG used to seed larger
/// generators and to derive independent per-row hash seeds from a single
/// user-provided experiment seed (Steele et al., "Fast splittable
/// pseudorandom number generators").
class SplitMix64 {
 public:
  /// Constructs the generator from a 64-bit seed. Any value is valid.
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64 pseudorandom bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: the repository-wide pseudorandom generator (Blackman &
/// Vigna). Fast, 256-bit state, passes BigCrush; all experiment randomness
/// flows through explicitly seeded instances so every run is reproducible.
class Rng {
 public:
  /// Constructs the generator, expanding `seed` through SplitMix64 as the
  /// xoshiro authors recommend (avoids correlated low-entropy states).
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  /// Returns the next 64 pseudorandom bits.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Returns the next 32 pseudorandom bits.
  uint32_t NextU32() { return static_cast<uint32_t>(Next() >> 32); }

  /// Returns a uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Returns a uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(Next() >> 40) * 0x1.0p-24f; }

  /// Returns a uniform integer in [0, n). Requires n > 0. Uses Lemire's
  /// nearly-divisionless bounded-rejection method.
  uint64_t Bounded(uint64_t n) {
    // Unbiased via 128-bit multiply-shift with rejection.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = -n % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Returns a standard normal variate (Box–Muller with a cached spare).
  double NextGaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Returns an Exponential(1) variate.
  double NextExponential() { return -std::log1p(-NextDouble()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace wmsketch
