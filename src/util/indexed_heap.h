#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/status.h"

namespace wmsketch {

/// A binary min-heap over (key, priority, value) entries with O(1) key
/// lookup, supporting the decrease/increase-key operations that the
/// active-set classifiers need.
///
/// * `key`      — 32-bit feature identifier (unique within the heap).
/// * `priority` — the heap order; the minimum-priority entry is at the root.
/// * `value`    — an arbitrary payload scalar (e.g. the model weight).
///
/// Used by: the AWM-Sketch active set and the simple-truncation baseline
/// (priority = |weight|), the probabilistic-truncation baseline (priority =
/// reservoir key), the Count-Min frequent-features baseline (priority =
/// estimated count), and the Space-Saving stream summary (priority = count).
class IndexedMinHeap {
 public:
  struct Entry {
    uint32_t key;
    double priority;
    float value;
  };

  IndexedMinHeap() = default;

  /// Number of entries currently stored.
  size_t size() const { return heap_.size(); }
  /// True iff the heap is empty.
  bool empty() const { return heap_.empty(); }

  /// True iff `key` is present.
  bool Contains(uint32_t key) const { return pos_.find(key) != pos_.end(); }

  /// Returns a pointer to the entry for `key`, or nullptr if absent. The
  /// pointer is invalidated by any mutating call.
  const Entry* Find(uint32_t key) const {
    auto it = pos_.find(key);
    if (it == pos_.end()) return nullptr;
    return &heap_[it->second];
  }

  /// Inserts a new entry. Requires that `key` is not already present.
  void Insert(uint32_t key, double priority, float value) {
    assert(!Contains(key));
    heap_.push_back(Entry{key, priority, value});
    pos_[key] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
  }

  /// Updates the priority and value of an existing entry, restoring heap
  /// order. Requires that `key` is present.
  void Update(uint32_t key, double priority, float value) {
    auto it = pos_.find(key);
    assert(it != pos_.end());
    const size_t i = it->second;
    heap_[i].priority = priority;
    heap_[i].value = value;
    if (!SiftUp(i)) SiftDown(i);
  }

  /// Removes the entry for `key`. Requires that `key` is present.
  Entry Remove(uint32_t key) {
    auto it = pos_.find(key);
    assert(it != pos_.end());
    const size_t i = it->second;
    const Entry removed = heap_[i];
    const size_t last = heap_.size() - 1;
    if (i != last) {
      MoveInto(i, last);
      heap_.pop_back();
      pos_.erase(removed.key);
      if (!SiftUp(i)) SiftDown(i);
    } else {
      heap_.pop_back();
      pos_.erase(removed.key);
    }
    return removed;
  }

  /// The minimum-priority entry. Requires non-empty.
  const Entry& Min() const {
    assert(!heap_.empty());
    return heap_[0];
  }

  /// Removes and returns the minimum-priority entry. Requires non-empty.
  Entry PopMin() {
    assert(!heap_.empty());
    return Remove(heap_[0].key);
  }

  /// Applies `fn(Entry&)` to every entry. The caller must guarantee that the
  /// mutation preserves the relative priority order of all entries (e.g.
  /// multiplying every priority by the same positive constant); the heap is
  /// not re-sifted. Used for O(n) global ℓ2-regularization decay.
  template <typename Fn>
  void MutateAllOrderPreserving(Fn fn) {
    for (Entry& e : heap_) fn(e);
  }

  /// All entries in unspecified (heap) order.
  const std::vector<Entry>& entries() const { return heap_; }

  /// Replaces the heap's contents with `entries`, preserving their array
  /// order exactly (snapshot-restore support). Array order matters because
  /// eviction tie-breaking among equal priorities depends on it: restoring
  /// a sorted or re-sifted copy would make post-restore evictions diverge
  /// from the never-serialized run. Returns InvalidArgument for duplicate
  /// keys or a sequence violating the heap property.
  Status RestoreHeapOrder(std::vector<Entry> entries) {
    std::unordered_map<uint32_t, size_t> pos;
    pos.reserve(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      if (!pos.emplace(entries[i].key, i).second) {
        return Status::InvalidArgument("duplicate heap key");
      }
      if (i > 0 && entries[(i - 1) / 2].priority > entries[i].priority) {
        return Status::InvalidArgument("entries violate the heap property");
      }
    }
    heap_ = std::move(entries);
    pos_ = std::move(pos);
    return Status::OK();
  }

  /// Removes all entries.
  void Clear() {
    heap_.clear();
    pos_.clear();
  }

 private:
  // Returns true if the entry moved.
  bool SiftUp(size_t i) {
    bool moved = false;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (heap_[parent].priority <= heap_[i].priority) break;
      Swap(i, parent);
      i = parent;
      moved = true;
    }
    return moved;
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    while (true) {
      const size_t l = 2 * i + 1;
      const size_t r = 2 * i + 2;
      size_t smallest = i;
      if (l < n && heap_[l].priority < heap_[smallest].priority) smallest = l;
      if (r < n && heap_[r].priority < heap_[smallest].priority) smallest = r;
      if (smallest == i) break;
      Swap(i, smallest);
      i = smallest;
    }
  }

  void Swap(size_t a, size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a].key] = a;
    pos_[heap_[b].key] = b;
  }

  // Overwrites slot `dst` with the entry at slot `src` (used by Remove).
  void MoveInto(size_t dst, size_t src) {
    heap_[dst] = heap_[src];
    pos_[heap_[dst].key] = dst;
  }

  std::vector<Entry> heap_;
  std::unordered_map<uint32_t, size_t> pos_;
};

}  // namespace wmsketch
