#pragma once

#include <cstdint>

#include "util/random.h"

namespace wmsketch {

/// Samples from a Zipf (zeta) distribution over {0, 1, ..., n-1}, where rank
/// r (0-based) has probability proportional to 1/(r+1)^exponent.
///
/// Uses Hörmann & Derflinger's rejection-inversion method ("Rejection-
/// inversion to generate variates from monotone discrete distributions"),
/// which is O(1) per sample independent of `n` and supports any exponent
/// > 0 including the harmonic case exponent == 1. This is the workhorse for
/// every synthetic workload generator in the repository: skewed feature
/// frequencies, attribute value marginals, IP address popularity, and
/// unigram token frequencies are all Zipfian.
class ZipfSampler {
 public:
  /// Constructs a sampler over {0, ..., n-1} with the given exponent.
  /// Requires n >= 1 and exponent > 0.
  ZipfSampler(uint64_t n, double exponent);

  /// Draws one 0-based rank using randomness from `rng`.
  uint64_t Sample(Rng& rng) const;

  /// Number of distinct values.
  uint64_t n() const { return n_; }
  /// Skew exponent.
  double exponent() const { return exponent_; }

  /// Exact probability of 0-based rank `r` under this distribution
  /// (computed with the generalized harmonic normalizer; O(n) the first
  /// call, cached thereafter is not needed since callers use it in tests).
  double Pmf(uint64_t r) const;

 private:
  // H(x) is the integral of the density h(x) = 1/x^exponent; HInv its inverse.
  double H(double x) const;
  double HInv(double x) const;

  uint64_t n_;
  double exponent_;
  double h_integral_x1_;          // H(1.5) - 1 (left edge of inversion range)
  double h_integral_num_values_;  // H(n + 0.5)
  double s_;
};

}  // namespace wmsketch
