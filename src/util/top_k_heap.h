#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/indexed_heap.h"

namespace wmsketch {

/// A (feature, weight) pair; the unit of top-K weight retrieval across the
/// library.
struct FeatureWeight {
  uint32_t feature;
  float weight;

  bool operator==(const FeatureWeight& other) const = default;
};

/// Fixed-capacity tracker of the K largest-magnitude feature weights.
///
/// This is the "min-heap ordered by the absolute value of the estimated
/// weights" of Sec. 5.2: a bounded IndexedMinHeap keyed by |weight| whose
/// root is the smallest-magnitude retained feature. All memory-budgeted
/// classifiers use it either passively (WM-Sketch top-K tracking) or as
/// their primary store (truncation baselines, AWM active set).
class TopKHeap {
 public:
  /// Constructs a tracker retaining at most `capacity` features.
  /// Requires capacity >= 1.
  explicit TopKHeap(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }
  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() >= capacity_; }
  bool Contains(uint32_t feature) const { return heap_.Contains(feature); }

  /// Returns the weight stored for `feature`, or nullopt if untracked.
  std::optional<float> Get(uint32_t feature) const {
    const IndexedMinHeap::Entry* e = heap_.Find(feature);
    if (e == nullptr) return std::nullopt;
    return e->value;
  }

  /// Sets (inserts or overwrites) the weight for a feature that is either
  /// already tracked or for which there is spare capacity; use Offer() for
  /// the evicting path. Requires Contains(feature) || !full().
  void Set(uint32_t feature, float weight) {
    if (heap_.Contains(feature)) {
      heap_.Update(feature, std::fabs(weight), weight);
    } else {
      heap_.Insert(feature, std::fabs(weight), weight);
    }
  }

  /// Offers a (feature, weight) estimate. If the feature is tracked, its
  /// weight is refreshed. Otherwise it is admitted if there is capacity or
  /// if |weight| beats the current minimum magnitude, in which case the
  /// displaced minimum entry is returned so the caller can spill it (the
  /// AWM-Sketch folds it back into its sketch).
  std::optional<FeatureWeight> Offer(uint32_t feature, float weight) {
    if (heap_.Contains(feature)) {
      heap_.Update(feature, std::fabs(weight), weight);
      return std::nullopt;
    }
    if (!full()) {
      heap_.Insert(feature, std::fabs(weight), weight);
      return std::nullopt;
    }
    const IndexedMinHeap::Entry& min = heap_.Min();
    if (std::fabs(weight) <= min.priority) return std::nullopt;
    const IndexedMinHeap::Entry evicted = heap_.PopMin();
    heap_.Insert(feature, std::fabs(weight), weight);
    return FeatureWeight{evicted.key, evicted.value};
  }

  /// The minimum-magnitude tracked entry. Requires non-empty.
  FeatureWeight Min() const {
    const IndexedMinHeap::Entry& min = heap_.Min();
    return FeatureWeight{min.key, min.value};
  }

  /// The admission floor: the stored priority (|weight|) of the minimum
  /// entry — the exact value Offer() compares a candidate's magnitude
  /// against when full. Exposed for the vectorized offer prefilter, which
  /// must reproduce that comparison bit-for-bit (recomputing fabs(value)
  /// would match today, but the stored priority is the contract). Requires
  /// non-empty.
  float MinPriority() const { return heap_.Min().priority; }

  /// Removes and returns the minimum-magnitude entry. Requires non-empty.
  FeatureWeight PopMin() {
    const IndexedMinHeap::Entry e = heap_.PopMin();
    return FeatureWeight{e.key, e.value};
  }

  /// Removes a tracked feature. Requires Contains(feature).
  FeatureWeight Remove(uint32_t feature) {
    const IndexedMinHeap::Entry e = heap_.Remove(feature);
    return FeatureWeight{e.key, e.value};
  }

  /// Multiplies every tracked weight by `factor` (> 0). Magnitude order is
  /// preserved, so this is a single O(size) pass with no re-sifting; it is
  /// the heap half of the lazy ℓ2-decay `S ← (1-λη)S` in Algorithm 2.
  void Scale(float factor) {
    heap_.MutateAllOrderPreserving([factor](IndexedMinHeap::Entry& e) {
      e.value *= factor;
      e.priority *= factor;
    });
  }

  /// Adds `delta` to the weight of a tracked feature. Requires
  /// Contains(feature).
  void Add(uint32_t feature, float delta) {
    const IndexedMinHeap::Entry* e = heap_.Find(feature);
    const float w = e->value + delta;
    heap_.Update(feature, std::fabs(w), w);
  }

  /// All tracked entries in unspecified order.
  std::vector<FeatureWeight> Entries() const {
    std::vector<FeatureWeight> out;
    out.reserve(heap_.size());
    for (const auto& e : heap_.entries()) out.push_back(FeatureWeight{e.key, e.value});
    return out;
  }

  /// The k largest-magnitude entries, sorted by descending |weight|
  /// (ties broken by ascending feature id for determinism).
  std::vector<FeatureWeight> TopK(size_t k) const;

 private:
  size_t capacity_;
  IndexedMinHeap heap_;
};

/// Sorts (in place) by descending |weight|, ties by ascending feature id, and
/// truncates to at most `k` entries. Shared by every classifier's TopK().
void SortByMagnitudeAndTruncate(std::vector<FeatureWeight>& entries, size_t k);

}  // namespace wmsketch
