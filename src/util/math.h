#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/simd.h"

namespace wmsketch {

/// Numerically stable log(1 + exp(x)); avoids overflow for large |x|.
inline double Log1pExp(double x) {
  if (x > 0.0) return x + std::log1p(std::exp(-x));
  return std::log1p(std::exp(x));
}

/// Logistic sigmoid 1 / (1 + exp(-x)), stable for large |x|.
inline double Sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// Returns the median of `values`, destroying their order. For even sizes
/// returns the lower-middle element (the convention used by Count-Sketch
/// style estimators, where depth is typically odd). Requires non-empty input.
inline float MedianInPlace(std::vector<float>& values) {
  const size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(mid), values.end());
  return values[mid];
}

namespace detail {

/// Compare-exchange of a sorting network: branchless under -O2 (min/max
/// lower to vminss/vmaxss on x86), no libc call.
inline void CSwap(float& a, float& b) {
  const float lo = std::min(a, b);
  const float hi = std::max(a, b);
  a = lo;
  b = hi;
}

}  // namespace detail

/// Median of a small fixed buffer (the per-query path for depth-s sketches);
/// `n` must be >= 1 and the buffer is reordered. Depths 1–7 — every depth
/// the paper's configurations use — run an optimal sorting network instead
/// of std::nth_element: the per-feature heap offer in the update loop calls
/// this once per nonzero, and the nth_element call overhead dominated the
/// work at these sizes. Returns the same order statistic (lower-middle
/// element) on every path.
inline float MedianInPlace(float* v, size_t n) {
  using detail::CSwap;
  switch (n) {
    case 1:
      return v[0];
    case 2:
      return std::min(v[0], v[1]);
    case 3:
      CSwap(v[0], v[1]);
      CSwap(v[1], v[2]);
      return std::max(v[0], v[1]);
    case 4:
      CSwap(v[0], v[1]);
      CSwap(v[2], v[3]);
      CSwap(v[0], v[2]);
      CSwap(v[1], v[3]);
      return std::min(v[1], v[2]);
    case 5:
      CSwap(v[0], v[1]);
      CSwap(v[3], v[4]);
      CSwap(v[2], v[4]);
      CSwap(v[2], v[3]);
      CSwap(v[1], v[4]);
      CSwap(v[0], v[3]);
      CSwap(v[0], v[2]);
      CSwap(v[1], v[3]);
      return std::max(v[1], v[2]);
    case 6:
      CSwap(v[1], v[2]);
      CSwap(v[4], v[5]);
      CSwap(v[0], v[2]);
      CSwap(v[3], v[5]);
      CSwap(v[0], v[1]);
      CSwap(v[3], v[4]);
      CSwap(v[2], v[5]);
      CSwap(v[0], v[3]);
      CSwap(v[1], v[4]);
      CSwap(v[2], v[4]);
      CSwap(v[1], v[3]);
      return std::min(v[2], v[3]);
    case 7:
      CSwap(v[1], v[2]);
      CSwap(v[3], v[4]);
      CSwap(v[5], v[6]);
      CSwap(v[0], v[2]);
      CSwap(v[3], v[5]);
      CSwap(v[4], v[6]);
      CSwap(v[0], v[1]);
      CSwap(v[4], v[5]);
      CSwap(v[2], v[6]);
      CSwap(v[0], v[4]);
      CSwap(v[1], v[5]);
      CSwap(v[0], v[3]);
      CSwap(v[2], v[5]);
      CSwap(v[1], v[3]);
      CSwap(v[2], v[4]);
      CSwap(v[2], v[3]);
      return v[3];
    default:
      // Depth >= 8: rank-counting AVX2 selection when dispatched, with an
      // nth_element scalar fallback — bit-identical order statistic either
      // way (util/simd.cc).
      return simd::MedianLarge(v, n);
  }
}

/// True iff `x` is a power of two (and nonzero).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x must be >= 1 and representable).
constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Euclidean (L2) norm of a vector (AVX2 table sweep when available; the
/// vector reduction reorders the sum, so compare with tolerance).
inline double L2Norm(const std::vector<float>& v) {
  return std::sqrt(simd::L2NormSquared(v.data(), v.size()));
}

/// L1 norm of a vector.
inline double L1Norm(const std::vector<float>& v) {
  double s = 0.0;
  for (float x : v) s += std::fabs(static_cast<double>(x));
  return s;
}

}  // namespace wmsketch
