#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace wmsketch {

/// Numerically stable log(1 + exp(x)); avoids overflow for large |x|.
inline double Log1pExp(double x) {
  if (x > 0.0) return x + std::log1p(std::exp(-x));
  return std::log1p(std::exp(x));
}

/// Logistic sigmoid 1 / (1 + exp(-x)), stable for large |x|.
inline double Sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// Returns the median of `values`, destroying their order. For even sizes
/// returns the lower-middle element (the convention used by Count-Sketch
/// style estimators, where depth is typically odd). Requires non-empty input.
inline float MedianInPlace(std::vector<float>& values) {
  const size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(mid), values.end());
  return values[mid];
}

/// Median of a small fixed buffer (the per-query path for depth-s sketches);
/// `n` must be >= 1 and the buffer is reordered.
inline float MedianInPlace(float* values, size_t n) {
  const size_t mid = (n - 1) / 2;
  std::nth_element(values, values + static_cast<ptrdiff_t>(mid), values + n);
  return values[mid];
}

/// True iff `x` is a power of two (and nonzero).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x must be >= 1 and representable).
constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Euclidean (L2) norm of a vector.
inline double L2Norm(const std::vector<float>& v) {
  double s = 0.0;
  for (float x : v) s += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(s);
}

/// L1 norm of a vector.
inline double L1Norm(const std::vector<float>& v) {
  double s = 0.0;
  for (float x : v) s += std::fabs(static_cast<double>(x));
  return s;
}

}  // namespace wmsketch
