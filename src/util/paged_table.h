#pragma once

// Copy-on-write paged table storage: the weight/counter arrays of the
// sketches (CountSketch, CountMinSketch, WM/AWM tables, the feature-hashing
// bucket array) live in a BasicPagedTable instead of a bare std::vector, so
// snapshot publication, cloning, and estimator capture cost O(dirtied pages)
// instead of O(budget).
//
// Layout contract (what keeps the hot paths bit-identical and fast):
//
//   * The LIVE data is one contiguous arena. Every existing kernel —
//     absolute-offset HashPlan scatters, simd::PlanMargin gathers, row-major
//     Row(j) access — keeps operating on `data()` exactly as it did on the
//     flat vector. Pages never fragment the writer's view.
//   * Pages are power-of-two slices of that arena (page size a power of two,
//     so with power-of-two row widths a page never straddles a row boundary:
//     pages subdivide rows evenly or contain whole rows). A published page is
//     an immutable, refcounted copy of its slice.
//   * Copy-on-write with a deferred physical copy: the writer's first touch
//     of a page after a publish tags the page with the current epoch (one
//     plain store — no bitmap to clear, publication just advances the
//     epoch). The page's published identity diverges at that moment; the
//     physical copy is deferred to the NEXT publish, which copies exactly
//     the epoch-tagged (dirty) pages and re-shares the rest by bumping
//     refcounts. Readers only ever see immutable copied-out pages, so there
//     is no reader-visible mutation and nothing for them to synchronize on.
//
// Publication cost: O(#pages) refcount bumps + O(dirty pages) copies —
// proportional to what changed, which is what a high-cadence (small
// ServeEvery) serving tier needs. Cloning a table copies the arena but
// SHARES all clean published pages, so a clone's next publication also
// copies only what the clone itself dirtied.
//
// Threading contract: all mutation (writes + dirty marking) and SharePages()
// belong to the single writer thread that owns the containing model — the
// same contract the serving layer already imposes. Published PageSets are
// immutable and may be read (and destroyed) from any thread; page lifetime
// is managed by atomic shared_ptr refcounts.
//
// The contract is machine-checked under ThreadSanitizer: every dirty-mark
// and every publish does a plain store to one `writer_fence_` byte, so two
// threads that mutate or publish the same table without a happens-before
// edge between them race on that byte and get a deterministic TSan report —
// even when their actual writes land on disjoint pages or cells, which TSan
// alone would never flag. Legitimate writer handoffs (a worker thread joins,
// the owner thread takes over; a merge barrier parks the workers first)
// carry the required edge and stay silent. There is deliberately no mutex
// and no clang thread-safety capability here: a lock would put an
// acquire/release on the hottest write paths to protect state that is never
// legally shared, and a static writer-role capability would cascade
// annotations through the whole virtual classifier SPI. The annotated-mutex
// layers live where real locks exist (engine/serving.h, sharded_learner.cc).

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "util/memory_cost.h"

#if defined(__SANITIZE_THREAD__)
#define WMS_PAGED_TABLE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WMS_PAGED_TABLE_TSAN 1
#endif
#endif

namespace wmsketch {

/// Cumulative publication counters of one paged table (monotone; benches
/// difference them around a window to report per-publish cost).
struct TablePublishStats {
  /// SharePages() calls so far.
  uint64_t publishes = 0;
  /// Pages physically copied out of the arena across all publishes.
  uint64_t copied_pages = 0;
  /// Bytes those copies moved (copied_pages · page bytes).
  uint64_t copied_bytes = 0;
  /// Pages re-shared by refcount bump instead of copied.
  uint64_t shared_pages = 0;
};

/// Picks the page size (in cells) for a table of `cells` cells: a power of
/// two targeting a few thousand pages, floored so a page copy clearly
/// outweighs the per-page refcount bump the publish sweep pays even for
/// clean pages, and capped to bound the copy cost of a single dirty page.
/// Small tables get the floor (few pages): their full copy was never the
/// problem, and tiny pages would make metadata rival the data.
size_t PickPageCells(size_t cells);

/// The POD view read kernels use to address a published page set: cell at
/// logical offset `off` (the same j·width+bucket offsets the flat kernels
/// use) lives at pages[off >> shift][off & mask]. Reads of distinct
/// snapshots sharing pages resolve to the same physical memory.
template <typename T>
struct PagedView {
  const T* const* pages = nullptr;
  uint32_t shift = 0;
  uint32_t mask = 0;

  T At(size_t off) const { return pages[off >> shift][off & mask]; }
};

/// One published, immutable set of table pages: what a frozen ReadModel /
/// estimator closure holds instead of a table copy. Copying a PageSet (or
/// holding several from different publishes) shares page storage; pages are
/// freed when the last PageSet referencing them dies.
template <typename T>
class PageSet {
 public:
  PageSet() = default;

  PagedView<T> view() const {
    return PagedView<T>{raw_.data(), shift_, mask_};
  }

  /// Logical cell count (the table size the offsets address).
  size_t cells() const { return cells_; }
  size_t num_pages() const { return refs_.size(); }
  size_t page_cells() const { return static_cast<size_t>(mask_) + 1; }

  /// Resident bytes this snapshot keeps alive: page data plus per-page
  /// metadata. NOTE: pages shared with other snapshots (or with the live
  /// table's clean mirrors) are counted in full here — this is "bytes this
  /// snapshot pins", not "bytes uniquely attributable to it".
  size_t ResidentBytes() const {
    return refs_.size() * (page_cells() * sizeof(T) + kBytesPerPageMeta);
  }

 private:
  template <typename U>
  friend class BasicPagedTable;

  std::vector<std::shared_ptr<const T[]>> refs_;  // keep-alive, one per page
  std::vector<const T*> raw_;                     // kernel-friendly mirror of refs_
  uint32_t shift_ = 0;
  uint32_t mask_ = 0;
  size_t cells_ = 0;
};

/// The copy-on-write paged storage described in the file comment: a
/// contiguous live arena (the writer's view, used by every existing kernel
/// unchanged) plus per-page epoch tags and refcounted published mirrors.
template <typename T>
class BasicPagedTable {
 public:
  BasicPagedTable() = default;

  explicit BasicPagedTable(size_t cells) : cells_(cells) {
    const size_t pc = PickPageCells(cells);
    shift_ = 0;
    while ((size_t{1} << shift_) < pc) ++shift_;
    mask_ = static_cast<uint32_t>(pc - 1);
    const size_t pages = (cells + pc - 1) / pc;
    arena_.assign(pages * pc, T{});  // padded tail cells stay zero forever
    mirror_.resize(pages);
    page_epoch_.assign(pages, 0);
  }

  // Copyable: a clone copies the arena and epoch tags but SHARES the
  // published mirrors, so clean pages are re-shared (not re-copied) by the
  // clone's next publish. Default member-wise semantics do exactly that.
  BasicPagedTable(const BasicPagedTable&) = default;
  BasicPagedTable& operator=(const BasicPagedTable&) = default;
  BasicPagedTable(BasicPagedTable&&) noexcept = default;
  BasicPagedTable& operator=(BasicPagedTable&&) noexcept = default;

  /// The live contiguous arena — the writer's (and live read paths') view.
  /// Mutating through it requires the matching MarkDirty* call; the sketches
  /// route every mutation through helpers that do.
  T* data() { return arena_.data(); }
  const T* data() const { return arena_.data(); }

  /// Logical cell count (excludes the page-rounding pad).
  size_t size() const { return cells_; }
  bool empty() const { return cells_ == 0; }
  size_t page_cells() const { return static_cast<size_t>(mask_) + 1; }
  size_t num_pages() const { return mirror_.size(); }

  /// Marks the page holding logical offset `off` dirty (a plain store;
  /// idempotent within one publish interval). A no-op until the first
  /// publish: before anything is shared there is nothing to diverge from.
  void MarkDirtyOffset(size_t off) {
    TouchWriterFence();
    if (!tracking_) return;
    page_epoch_[off >> shift_] = epoch_;
  }

  /// Marks every page a hash plan's entries touch — the batched write
  /// barrier of the plan-driven scatter paths (offsets are the plan's
  /// absolute table offsets).
  void MarkPlanDirty(const uint32_t* offsets, size_t n) {
    TouchWriterFence();
    if (!tracking_) return;
    const uint64_t e = epoch_;
    for (size_t i = 0; i < n; ++i) page_epoch_[offsets[i] >> shift_] = e;
  }

  /// Marks everything dirty (table-wide sweeps: merge, scale, clear, load).
  void MarkAllDirty() {
    TouchWriterFence();
    if (!tracking_) return;
    const uint64_t e = epoch_;
    for (uint64_t& pe : page_epoch_) pe = e;
  }

  /// Fills the whole table with `value` (Clear support).
  void Fill(T value) {
    std::fill(arena_.begin(), arena_.end(), value);
    MarkAllDirty();
  }

  /// Publishes the current contents as an immutable PageSet: pages dirtied
  /// since their mirror was made are copied out (O(dirty)); the rest are
  /// re-shared by refcount bump (O(#pages), cheap). Logically const — the
  /// table's values are untouched; the mirror cache, epoch counter, and
  /// stats are memoization. Writer-thread only (see file comment).
  PageSet<T> SharePages() const {
    TouchWriterFence();
    PageSet<T> out;
    out.shift_ = shift_;
    out.mask_ = mask_;
    out.cells_ = cells_;
    const size_t pages = mirror_.size();
    out.refs_.reserve(pages);
    out.raw_.reserve(pages);
    const size_t pc = page_cells();
    for (size_t p = 0; p < pages; ++p) {
      const bool dirty = mirror_[p] == nullptr || page_epoch_[p] >= publish_watermark_;
      if (dirty) {
        std::shared_ptr<T[]> fresh = std::make_shared<T[]>(pc);
        std::memcpy(fresh.get(), arena_.data() + p * pc, pc * sizeof(T));
        mirror_[p] = std::move(fresh);
        ++stats_.copied_pages;
        stats_.copied_bytes += pc * sizeof(T);
      } else {
        ++stats_.shared_pages;
      }
      out.refs_.push_back(mirror_[p]);
      out.raw_.push_back(mirror_[p].get());
    }
    // Advance the epoch and remember it as the publish watermark: every page
    // is now clean relative to its mirror, and any later write's tag (>= the
    // watermark) re-dirties exactly its page. No per-page state is cleared.
    // The watermark comparison (rather than == epoch_) keeps publication
    // correct when BeginDeltaWindow() advances the epoch between publishes.
    publish_watermark_ = ++epoch_;
    tracking_ = true;
    ++stats_.publishes;
    return out;
  }

  /// Opens a new delta window and returns its watermark: every write from
  /// this call on tags its page with an epoch >= the returned value, so
  /// ForEachDirtyPageSince(watermark) enumerates exactly the pages touched
  /// afterwards. Enables dirty tracking immediately (unlike publication,
  /// which only starts tracking at the first SharePages), so a window opened
  /// at construction time captures the model's entire mutation history —
  /// what the distributed delta-sync tier ships between syncs. Writer-thread
  /// only, like all mutation.
  uint64_t BeginDeltaWindow() {
    TouchWriterFence();
    tracking_ = true;
    return ++epoch_;
  }

  /// Number of pages written since `since` (a BeginDeltaWindow watermark).
  size_t CountDirtyPagesSince(uint64_t since) const {
    size_t n = 0;
    for (const uint64_t pe : page_epoch_) n += pe >= since ? 1 : 0;
    return n;
  }

  /// Visits every page written since `since` as
  /// fn(page_index, cells_ptr, cell_count): the live arena slice of each
  /// dirty page, in ascending page order. cell_count is page_cells() even
  /// for the final page (the arena is padded; pad cells are zero).
  template <typename Fn>
  void ForEachDirtyPageSince(uint64_t since, Fn&& fn) const {
    const size_t pc = page_cells();
    for (size_t p = 0; p < page_epoch_.size(); ++p) {
      if (page_epoch_[p] >= since) fn(p, arena_.data() + p * pc, pc);
    }
  }

  /// Cumulative publication counters (see TablePublishStats).
  const TablePublishStats& publish_stats() const { return stats_; }

  /// Bytes of paged-storage bookkeeping beyond the raw cells: per-page
  /// mirror + epoch metadata (kBytesPerPageMeta each). Mirror *data* is not
  /// included: clean mirrors duplicate arena slices transiently and are
  /// owned by whichever snapshots pin them (PageSet::ResidentBytes).
  size_t MetadataBytes() const { return mirror_.size() * kBytesPerPageMeta; }

 private:
  std::vector<T> arena_;  // live data, padded to a whole number of pages
  size_t cells_ = 0;
  uint32_t shift_ = 0;
  uint32_t mask_ = 0;
  // Publication cache (mutable: memoization, not model state). mirror_[p] is
  // a refcounted immutable copy whose contents match arena page p unless the
  // page's epoch tag says it was written since the mirror was made.
  mutable std::vector<std::shared_ptr<const T[]>> mirror_;
  std::vector<uint64_t> page_epoch_;  // last epoch each page was written in
  mutable uint64_t epoch_ = 1;
  // Pages tagged at or after this are dirty relative to their mirror (set at
  // each publish; delta windows advance epoch_ without touching it).
  mutable uint64_t publish_watermark_ = 1;
  mutable bool tracking_ = false;  // true after first publish or delta window
  mutable TablePublishStats stats_;

#if defined(WMS_PAGED_TABLE_TSAN)
  // Single-writer tripwire (see file comment): plain unsynchronized stores,
  // so TSan reports any two mutation/publish calls lacking a happens-before
  // edge. `volatile` keeps the dead store from being optimized away.
  mutable volatile unsigned char writer_fence_ = 0;
  void TouchWriterFence() const {
    writer_fence_ = static_cast<unsigned char>(writer_fence_ + 1);
  }
#else
  void TouchWriterFence() const {}
#endif
};

using PagedTable = BasicPagedTable<float>;

}  // namespace wmsketch
