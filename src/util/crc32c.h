#pragma once

#include <cstddef>
#include <cstdint>

namespace wmsketch::crc32c {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum used
/// by the snapshot envelope (core/snapshot_io.h). Two implementations ship
/// in one binary, following the util/simd.h pattern exactly: a hardware
/// kernel built on the SSE4.2 `crc32` instruction with a per-function target
/// attribute (no global -msse4.2), and a scalar slicing-by-8 fallback. The
/// process picks one via cpuid at startup; both are bit-identical for every
/// input (enforced by the simd-paired coverage table in hash_plan_test).
///
/// Convention: values are *finalized* CRCs (init 0xFFFFFFFF, final xor), so
/// Extend composes over concatenation: Extend(Extend(0, a), b) == Value(ab).

/// The CRC32C of `data[0, n)` continued from a previous finalized `crc`.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// The CRC32C of `data[0, n)`.
inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }

/// True when the CPU exposes the SSE4.2 crc32 instruction (and the build
/// carries the hardware kernel).
bool HardwareAvailable();

/// Whether the hardware kernel is in use. Starts as HardwareAvailable()
/// unless the WMS_SIMD_DISABLE environment variable is set (the same
/// kill-switch util/simd.h honors).
bool Enabled();

/// Forces the scalar path (`false`) or re-enables hardware (`true`, ignored
/// without HardwareAvailable()). Test/bench hook for the bit-identity suite.
void SetEnabled(bool enabled);

}  // namespace wmsketch::crc32c
