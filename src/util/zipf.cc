#include "util/zipf.h"

#include <cassert>
#include <cmath>

namespace wmsketch {

namespace {

// Helper: computes (exp(x) - 1) / x with a series fallback near zero.
double ExpM1OverX(double x) {
  if (std::fabs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x / 2.0 * (1.0 + x / 3.0 * (1.0 + x / 4.0));
}

// Helper: computes log1p(x) / x with a series fallback near zero.
double Log1pOverX(double x) {
  if (std::fabs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - x / 4.0));
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double exponent) : n_(n), exponent_(exponent) {
  assert(n >= 1);
  assert(exponent > 0.0);
  // Hörmann's hIntegralX1 is H(1.5) − 1: the left edge of the inversion
  // interval accounts for the unit mass of the first atom.
  h_integral_x1_ = H(1.5) - 1.0;
  h_integral_num_values_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInv(H(2.5) - std::pow(2.0, -exponent));
}

double ZipfSampler::H(double x) const {
  // Integral of 1/t^e from 1 to x: (x^(1-e) - 1) / (1 - e), with the
  // log-based limit at e == 1, computed stably via exp/log1p helpers.
  const double log_x = std::log(x);
  return ExpM1OverX((1.0 - exponent_) * log_x) * log_x;
}

double ZipfSampler::HInv(double x) const {
  double t = x * (1.0 - exponent_);
  if (t < -1.0) t = -1.0;  // guard floating-point undershoot at the boundary
  return std::exp(Log1pOverX(t) * x);
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  while (true) {
    const double u =
        h_integral_num_values_ + rng.NextDouble() * (h_integral_x1_ - h_integral_num_values_);
    const double x = HInv(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) {
      k = 1.0;
    } else if (k > static_cast<double>(n_)) {
      k = static_cast<double>(n_);
    }
    // Accept if k is within the rejection envelope.
    if (k - x <= s_ || u >= H(k + 0.5) - std::pow(k, -exponent_)) {
      return static_cast<uint64_t>(k) - 1;  // 0-based rank
    }
  }
}

double ZipfSampler::Pmf(uint64_t r) const {
  assert(r < n_);
  double z = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) z += std::pow(static_cast<double>(i), -exponent_);
  return std::pow(static_cast<double>(r + 1), -exponent_) / z;
}

}  // namespace wmsketch
