#include "util/crc32c.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

// Like src/util/simd.cc: the hardware kernel is compiled with a per-function
// target attribute, so one binary carries both paths and picks per-process
// via cpuid. A machine without SSE4.2 (or a WMS_SIMD=OFF build) runs the
// scalar slicing-by-8 fallback of the very same build.
#if defined(WMS_SIMD) && (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define WMS_CRC32C_X86 1
#include <nmmintrin.h>
#endif

namespace wmsketch::crc32c {

namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Tables {
  // t[0] is the classic byte-at-a-time table; t[1..7] extend it so eight
  // input bytes fold in one step (slicing-by-8).
  uint32_t t[8][256];
};

constexpr Tables MakeTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables.t[0][i];
    for (int slice = 1; slice < 8; ++slice) {
      crc = tables.t[0][crc & 0xff] ^ (crc >> 8);
      tables.t[slice][i] = crc;
    }
  }
  return tables;
}

constexpr Tables kTables = MakeTables();

// Scalar slicing-by-8. `state` is the raw (non-finalized) CRC register.
uint32_t Crc32cScalar(uint32_t state, const uint8_t* p, size_t n) {
  const auto& t = kTables.t;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    state = t[0][(state ^ *p++) & 0xff] ^ (state >> 8);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    word ^= state;
    state = t[7][word & 0xff] ^ t[6][(word >> 8) & 0xff] ^
            t[5][(word >> 16) & 0xff] ^ t[4][(word >> 24) & 0xff] ^
            t[3][(word >> 32) & 0xff] ^ t[2][(word >> 40) & 0xff] ^
            t[1][(word >> 48) & 0xff] ^ t[0][(word >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    state = t[0][(state ^ *p++) & 0xff] ^ (state >> 8);
    --n;
  }
  return state;
}

#ifdef WMS_CRC32C_X86

// Hardware kernel: one crc32q per eight bytes. Registered in the
// simd-paired coverage table (tests/hash_plan_test.cc); the paired test
// proves bit-identity with Crc32cScalar on every length/alignment class.
__attribute__((target("sse4.2")))
uint32_t Crc32cSse42(uint32_t state, const uint8_t* p, size_t n) {
  uint64_t crc = state;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    crc = _mm_crc32_u8(static_cast<uint32_t>(crc), *p++);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    crc = _mm_crc32_u64(crc, word);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(static_cast<uint32_t>(crc), *p++);
    --n;
  }
  return static_cast<uint32_t>(crc);
}

#endif  // WMS_CRC32C_X86

bool CpuHasSse42() {
#ifdef WMS_CRC32C_X86
  return __builtin_cpu_supports("sse4.2");
#else
  return false;
#endif
}

bool InitialEnabled() {
  if (!CpuHasSse42()) return false;
  return std::getenv("WMS_SIMD_DISABLE") == nullptr;
}

// Relaxed for the same reason as simd.cc's g_enabled: both paths compute
// identical results, so the flag itself is the only shared state.
std::atomic<bool> g_enabled{InitialEnabled()};

}  // namespace

bool HardwareAvailable() { return CpuHasSse42(); }

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled && CpuHasSse42(), std::memory_order_relaxed);
}

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t state = crc ^ 0xffffffffu;
#ifdef WMS_CRC32C_X86
  if (g_enabled.load(std::memory_order_relaxed)) {
    return Crc32cSse42(state, p, n) ^ 0xffffffffu;
  }
#endif
  return Crc32cScalar(state, p, n) ^ 0xffffffffu;
}

}  // namespace wmsketch::crc32c
