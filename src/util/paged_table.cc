#include "util/paged_table.h"

namespace wmsketch {

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

size_t PickPageCells(size_t cells) {
  // Target ~4K pages: the publish sweep pays one refcount bump per page even
  // when nothing changed, so the page count must stay small enough that the
  // sweep is a rounding error next to the copies it replaces, while the page
  // size stays small enough that a lightly-dirtied table publishes a small
  // fraction of itself.
  //  * floor 64 cells (256 B for floats): below that, copying a page costs
  //    about as much as the refcount bump that sharing it saves, and per-page
  //    metadata (kBytesPerPageMeta) rivals the data;
  //  * cap 4096 cells: bounds the latency contribution of one dirty page and
  //    keeps granularity useful for multi-megabyte tables.
  // Power of two, so with power-of-two row widths pages subdivide rows
  // evenly (or hold whole rows) and never straddle a row boundary.
  constexpr size_t kMinPageCells = 64;
  constexpr size_t kMaxPageCells = 4096;
  constexpr size_t kTargetPages = 4096;
  if (cells == 0) return kMinPageCells;
  const size_t ideal = NextPowerOfTwo((cells + kTargetPages - 1) / kTargetPages);
  if (ideal < kMinPageCells) return kMinPageCells;
  if (ideal > kMaxPageCells) return kMaxPageCells;
  return ideal;
}

}  // namespace wmsketch
