#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wmsketch {

/// A bounded lock-free single-producer/single-consumer ring buffer — the
/// hand-off queue between the sharding thread and one training worker.
///
/// Exactly one thread may call TryPush and exactly one thread may call
/// TryPop; under that contract the only shared state is the two monotonic
/// cursors, synchronized release/acquire. Each side keeps a local cache of
/// the other side's cursor so the common case touches one shared atomic, not
/// two (the folly/rigtorp ProducerConsumerQueue layout). Capacity is rounded
/// up to a power of two so the cursor-to-slot mapping is a mask.
template <typename T>
class SpscRing {
 public:
  /// Constructs a ring holding at most `capacity` items (rounded up to a
  /// power of two; minimum 2).
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side: enqueues `item` unless the ring is full.
  bool TryPush(T&& item) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: dequeues into `*out` unless the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// True iff no items are in flight (callable from either side; the answer
  /// is exact only once the other side has quiesced).
  bool Empty() const {
    return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_ = 0;
  uint64_t mask_ = 0;
  std::vector<T> slots_;
  // Consumer cursor + the producer's cached copy of it, on separate cache
  // lines from the producer cursor to avoid false sharing on the hot path.
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
  alignas(64) uint64_t head_cache_ = 0;  // producer-owned
  alignas(64) uint64_t tail_cache_ = 0;  // consumer-owned
};

}  // namespace wmsketch
