#include "engine/sharded_learner.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "core/budget.h"
#include "engine/checkpoint.h"
#include "engine/serving.h"
#include "engine/spsc_ring.h"
#include "util/thread_annotations.h"

namespace wmsketch {

namespace {

/// Per-worker queue depth. Deep enough to absorb bursts and keep workers
/// busy across scheduling jitter, small enough that a drain barrier is fast.
constexpr size_t kQueueCapacity = 1024;

/// How long an idle worker spin-checks its queue before sleeping; bounds the
/// cost of a missed wakeup alongside the timed wait below.
constexpr auto kIdleWait = std::chrono::microseconds(200);

/// How many queued examples a worker drains into one UpdateBatch call. The
/// batch path hashes the whole run into the model's per-thread plan arena
/// (one hash per (feature, row) pair, table prefetch across examples), so
/// each shard trains at the single-thread batched rate instead of the
/// per-example rate. Small enough that drain barriers stay prompt.
constexpr size_t kDrainBatch = 64;

/// Content hash of an example's feature indices (splitmix64-style mixing).
/// Examples are partitioned by feature content, not arrival index, so the
/// shard assignment is a pure function of the example itself.
uint64_t ExampleHash(const SparseVector& x) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < x.nnz(); ++i) {
    h ^= x.index(i);
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
  }
  h *= 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// The decay exponent p of the learning-rate schedule η_t ∝ t^{-p}. With N
/// shards over T examples, one shard's cumulative step mass is
/// Σ_{t≤T/N} η_t ∝ (T/N)^{1-p}, so the N-way *sum* of shard models carries
/// N^p times the step mass of a sequential pass over all T examples. The
/// schedule-matched combination is therefore N^{-p}·Σᵢwᵢ: a plain sum for a
/// constant rate, N^{-1/2}·Σ for the paper's η₀/√t, and the plain average
/// for the Pegasos-style η_t ∝ 1/t. (Empirically on the synthetic
/// classification streams the N^{-1/2} rule recovers within a few percent of
/// the sequential model's top-K error where plain averaging loses 2×.)
double MixingExponent(const LearningRate& rate) {
  switch (rate.kind()) {
    case LearningRate::Kind::kConstant:
      return 0.0;
    case LearningRate::Kind::kInverseSqrt:
      return 0.5;
    case LearningRate::Kind::kInverse:
      return 1.0;
  }
  return 1.0;
}

}  // namespace

struct ShardedLearner::Impl {
  struct Worker {
    Worker() : ring(kQueueCapacity) {}

    SpscRing<Example> ring;
    std::unique_ptr<BudgetedClassifier> model;
    std::thread thread;
    /// Backs the park/sleep protocol only. No data is guarded: the ring is
    /// SPSC-safe on its own and the flags are atomics. The lock exists so a
    /// Wake between an idle worker's final ring check and its wait cannot be
    /// lost — the annotated CondVar still makes clang verify every wait
    /// happens with `mu` held.
    Mutex mu;
    CondVar cv;
    std::atomic<bool> sleeping{false};
    /// The pause epoch this worker last parked in (0 = never). A worker
    /// counts as parked for barrier k only when this equals k, so a stale
    /// park from barrier k-1 — with examples pushed since still sitting in
    /// the ring — can never satisfy barrier k.
    std::atomic<uint64_t> parked_epoch{0};
    std::atomic<uint64_t> processed{0};
  };

  BudgetConfig config;
  LearnerOptions opts;
  uint32_t shards = 1;
  uint64_t sync_interval = 0;

  std::vector<std::unique_ptr<Worker>> workers;
  std::atomic<bool> stop{false};
  std::atomic<bool> pause{false};
  /// Barrier generation counter; incremented (before `pause` is raised) by
  /// each PauseAll.
  std::atomic<uint64_t> pause_epoch{0};

  /// The shared model every replica was reset to at the last sync (null
  /// before the first sync, i.e. the zero model): the subtracted base of the
  /// base-corrected mixing rule below.
  std::unique_ptr<BudgetedClassifier> base;

  // Owner-thread-only bookkeeping.
  uint64_t pushed = 0;
  uint64_t since_sync = 0;
  uint64_t syncs = 0;
  bool collapsed = false;

  // Serving (null until AcquireServingHandle): snapshots are published at
  // merge barriers, where a consistent global model exists.
  std::shared_ptr<ServingState> serving;
  uint64_t serve_every = 0;
  uint64_t since_publish = 0;

  // Checkpointing (null unless CheckpointTo was configured): like serving
  // publications, checkpoints are cut at merge barriers — the only points
  // where a consistent global model exists — and a write failure is recorded
  // rather than aborting ingestion.
  std::shared_ptr<Checkpointer> checkpointer;
  uint64_t checkpoint_every = 0;
  uint64_t since_checkpoint = 0;
  Status last_checkpoint_status;

  void WorkerLoop(Worker& w) {
    Example ex;
    std::vector<Example> run;
    run.reserve(kDrainBatch);
    for (;;) {
      // Drain a run of queued examples and train them through the batched
      // (plan-arena) path. Equivalent to example-by-example updates — the
      // batch path is bit-identical by contract — and the run is fully
      // trained before the idle/park logic below can observe an empty ring.
      while (run.size() < kDrainBatch && w.ring.TryPop(&ex)) {
        run.push_back(std::move(ex));
      }
      if (!run.empty()) {
        w.model->UpdateBatch(run);
        w.processed.fetch_add(run.size(), std::memory_order_relaxed);
        run.clear();
        continue;
      }
      // Queue empty: park, stop, or sleep until there is work.
      if (stop.load(std::memory_order_acquire)) return;
      if (pause.load(std::memory_order_acquire)) {
        MutexLock lk(w.mu);
        for (;;) {
          if (stop.load(std::memory_order_acquire)) break;
          if (!pause.load(std::memory_order_acquire)) break;
          // Work that arrived after a *previous* barrier's park: leave and
          // drain it before this park can count toward the current barrier.
          if (!w.ring.Empty()) break;
          w.parked_epoch.store(pause_epoch.load(std::memory_order_acquire),
                               std::memory_order_release);
          w.cv.Wait(w.mu, lk);
        }
        continue;
      }
      MutexLock lk(w.mu);
      w.sleeping.store(true, std::memory_order_relaxed);
      w.cv.WaitFor(w.mu, lk, kIdleWait, [&] {
        return !w.ring.Empty() || stop.load(std::memory_order_acquire) ||
               pause.load(std::memory_order_acquire);
      });
      w.sleeping.store(false, std::memory_order_relaxed);
    }
  }

  void Wake(Worker& w) {
    // Taking the lock (empty critical section) orders this notify after the
    // worker's flag checks, so a wakeup racing the decision to sleep is
    // observed by the wait and never lost.
    MutexLock lk(w.mu);
    w.cv.NotifyOne();
  }

  /// Barrier: every queued example is trained and every worker is parked in
  /// *this* barrier's epoch on return. Must be called from the owner thread
  /// (so no concurrent pushes).
  void PauseAll() {
    // Epoch before pause: a worker that observes pause==true is guaranteed
    // (release/acquire through `pause`) to read at least this epoch.
    const uint64_t epoch = pause_epoch.fetch_add(1, std::memory_order_release) + 1;
    pause.store(true, std::memory_order_release);
    for (auto& w : workers) Wake(*w);
    for (auto& w : workers) {
      while (w->parked_epoch.load(std::memory_order_acquire) != epoch) {
        std::this_thread::yield();
      }
    }
  }

  void ResumeAll() {
    pause.store(false, std::memory_order_release);
    for (auto& w : workers) Wake(*w);
  }

  /// Combines the (quiescent) replicas with the schedule-matched,
  /// base-corrected mixing rule
  ///
  ///   w ← w_base + N^{-p}·Σᵢ (wᵢ − w_base) = N^{-p}·Σᵢwᵢ + (1 − N^{1-p})·w_base,
  ///
  /// where p is the learning-rate decay exponent (see MixingExponent) and
  /// w_base the shared model the replicas diverged from at the last sync
  /// (zero before the first, collapsing the rule to N^{-p}·Σᵢwᵢ). The result
  /// carries the true global step count. Requires all workers parked or
  /// stopped.
  Result<std::unique_ptr<BudgetedClassifier>> CombineLocked() {
    std::unique_ptr<BudgetedClassifier> acc = workers[0]->model->Clone();
    if (acc == nullptr) {
      return Status::Unimplemented(workers[0]->model->Name() +
                                   " does not support cloning");
    }
    for (size_t i = 1; i < workers.size(); ++i) {
      WMS_RETURN_NOT_OK(acc->MergeScaled(*workers[i]->model, 1.0));
    }
    const double n = static_cast<double>(workers.size());
    const double p = MixingExponent(opts.rate);
    WMS_RETURN_NOT_OK(acc->ScaleWeights(std::pow(n, -p)));
    const double base_coeff = 1.0 - std::pow(n, 1.0 - p);
    if (base != nullptr && base_coeff != 0.0) {
      WMS_RETURN_NOT_OK(acc->MergeScaled(*base, base_coeff));
    }
    WMS_RETURN_NOT_OK(acc->SetSteps(pushed));
    return acc;
  }

  /// One synchronization round: barrier, combine, redistribute. With
  /// `force_checkpoint` the barrier cuts a checkpoint regardless of cadence.
  Status Sync(bool force_checkpoint = false) {
    PauseAll();
    Status st;
    if (shards > 1) {
      Result<std::unique_ptr<BudgetedClassifier>> combined = CombineLocked();
      if (combined.ok()) {
        base = std::move(combined).value();
        for (auto& w : workers) {
          w->model = base->Clone();
          // Each replica resumes on its *local* learning-rate schedule
          // (iterative parameter mixing): a worker has taken ~1/N of the
          // global steps, and resetting it to the global count would shrink
          // η_t by ~√N and stall per-shard progress after the first sync.
          st = w->model->SetSteps(w->processed.load(std::memory_order_relaxed));
          if (!st.ok()) break;
        }
      } else {
        st = combined.status();
      }
    }
    if (st.ok()) {
      ++syncs;
      since_sync = 0;
      // Publish while the workers are still parked: for multiple shards the
      // freshly combined `base` is the global model; for one shard the lone
      // (drained, quiescent) replica is. Readers switch over wait-free.
      if (serving != nullptr) {
        const BudgetedClassifier& model =
            (shards > 1 && base != nullptr) ? *base : *workers[0]->model;
        serving->Publish(CaptureServingSnapshot(model, Learner::kDefaultSnapshotTopK));
        since_publish = 0;
      }
      // Checkpoint inside the same paused window, from the same consistent
      // model the publication path uses.
      if (checkpointer != nullptr &&
          (force_checkpoint ||
           (checkpoint_every > 0 && since_checkpoint >= checkpoint_every))) {
        const BudgetedClassifier& model =
            (shards > 1 && base != nullptr) ? *base : *workers[0]->model;
        last_checkpoint_status = checkpointer->WriteClassifier(config.method, model);
        since_checkpoint = 0;
      }
    }
    ResumeAll();
    return st;
  }

  void Shutdown() {
    stop.store(true, std::memory_order_release);
    for (auto& w : workers) Wake(*w);
    for (auto& w : workers) {
      if (w->thread.joinable()) w->thread.join();
    }
  }

  // Every destruction path must join the workers — including replacement by
  // move assignment, which destroys the old Impl without going through
  // ~ShardedLearner's guard. Idempotent after an explicit Shutdown.
  ~Impl() { Shutdown(); }
};

ShardedLearner::ShardedLearner(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
ShardedLearner::ShardedLearner(ShardedLearner&&) noexcept = default;
ShardedLearner& ShardedLearner::operator=(ShardedLearner&&) noexcept = default;

ShardedLearner::~ShardedLearner() = default;

Status ShardedLearner::Push(Example example) {
  Impl& impl = *impl_;
  if (impl.collapsed) {
    return Status::FailedPrecondition("sharded learner already collapsed");
  }
  if (impl.sync_interval > 0 && impl.since_sync >= impl.sync_interval) {
    WMS_RETURN_NOT_OK(impl.Sync());
  } else if (impl.serving != nullptr && impl.serve_every > 0 &&
             impl.since_publish >= impl.serve_every) {
    // A publication needs a consistent global model, which only a merge
    // barrier produces — so ServeEvery paces extra sync-and-publish rounds.
    WMS_RETURN_NOT_OK(impl.Sync());
  } else if (impl.checkpointer != nullptr && impl.checkpoint_every > 0 &&
             impl.since_checkpoint >= impl.checkpoint_every) {
    // Likewise CheckpointEvery: a durable snapshot needs a merge barrier.
    WMS_RETURN_NOT_OK(impl.Sync());
  }
  const size_t shard =
      impl.shards > 1 ? static_cast<size_t>(ExampleHash(example.x) % impl.shards) : 0;
  Impl::Worker& w = *impl.workers[shard];
  while (!w.ring.TryPush(std::move(example))) {
    if (w.sleeping.load(std::memory_order_relaxed)) impl.Wake(w);
    std::this_thread::yield();
  }
  if (w.sleeping.load(std::memory_order_relaxed)) impl.Wake(w);
  ++impl.pushed;
  ++impl.since_sync;
  ++impl.since_publish;
  ++impl.since_checkpoint;
  return Status::OK();
}

Status ShardedLearner::PushBatch(std::span<const Example> batch) {
  for (const Example& ex : batch) {
    WMS_RETURN_NOT_OK(Push(ex));
  }
  return Status::OK();
}

Status ShardedLearner::SyncNow() {
  if (impl_->collapsed) {
    return Status::FailedPrecondition("sharded learner already collapsed");
  }
  return impl_->Sync();
}

Result<Learner> ShardedLearner::Collapse() {
  Impl& impl = *impl_;
  if (impl.collapsed) {
    return Status::FailedPrecondition("sharded learner already collapsed");
  }
  impl.PauseAll();  // drain every queue so all pushed examples are trained
  impl.Shutdown();
  impl.collapsed = true;

  // A single shard's replica passes through untouched (bit-identical to
  // sequential training); multiple shards combine under the mixing rule.
  std::unique_ptr<BudgetedClassifier> model;
  if (impl.shards == 1) {
    model = std::move(impl.workers[0]->model);
  } else {
    WMS_ASSIGN_OR_RETURN(model, impl.CombineLocked());
  }
  Learner collapsed(impl.config, impl.opts, std::move(model));
  if (impl.serving != nullptr) {
    // Publish the final model, and hand the serving state to the collapsed
    // learner: existing handles keep working, and further (sequential)
    // training keeps publishing on the same cadence.
    impl.serving->Publish(
        CaptureServingSnapshot(collapsed.impl(), Learner::kDefaultSnapshotTopK));
    collapsed.serving_ = std::move(impl.serving);
    collapsed.serve_every_ = impl.serve_every;
    collapsed.next_publish_steps_ = collapsed.steps() + impl.serve_every;
  }
  if (impl.checkpointer != nullptr) {
    // Cut a final checkpoint of the collapsed model and hand the checkpointer
    // over: further (sequential) training keeps checkpointing on the same
    // cadence into the same directory.
    collapsed.checkpointer_ = std::move(impl.checkpointer);
    collapsed.checkpoint_every_ = impl.checkpoint_every;
    collapsed.next_checkpoint_steps_ =
        impl.checkpoint_every == 0 ? 0 : collapsed.steps() + impl.checkpoint_every;
    collapsed.last_checkpoint_status_ = collapsed.checkpointer_->Write(collapsed);
  }
  return collapsed;
}

Status ShardedLearner::CheckpointNow() {
  Impl& impl = *impl_;
  if (impl.collapsed) {
    return Status::FailedPrecondition("sharded learner already collapsed");
  }
  if (impl.checkpointer == nullptr) {
    return Status::FailedPrecondition("checkpointing not enabled on this engine");
  }
  WMS_RETURN_NOT_OK(impl.Sync(/*force_checkpoint=*/true));
  return impl.last_checkpoint_status;
}

const Status& ShardedLearner::last_checkpoint_status() const {
  return impl_->last_checkpoint_status;
}

Result<ServingHandle> ShardedLearner::AcquireServingHandle() {
  Impl& impl = *impl_;
  if (impl.collapsed) {
    return Status::FailedPrecondition("sharded learner already collapsed");
  }
  if (impl.serving == nullptr) impl.serving = std::make_shared<ServingState>();
  if (impl.serving->published_version() == 0) {
    // First acquisition: one barrier publishes the current global model so
    // the handle is immediately servable.
    WMS_RETURN_NOT_OK(impl.Sync());
  }
  ServingState::Slot* slot = impl.serving->RegisterHandle();
  if (slot == nullptr) {
    return Status::FailedPrecondition(
        "serving: all " + std::to_string(ServingState::kMaxHandles) +
        " reader handle slots are registered");
  }
  return ServingHandle(impl.serving, slot);
}

uint32_t ShardedLearner::shards() const { return impl_->shards; }
uint64_t ShardedLearner::sync_interval() const { return impl_->sync_interval; }

ShardedLearnerStats ShardedLearner::Stats() const {
  ShardedLearnerStats stats;
  stats.pushed = impl_->pushed;
  stats.syncs = impl_->syncs;
  stats.per_shard.reserve(impl_->workers.size());
  for (const auto& w : impl_->workers) {
    stats.per_shard.push_back(w->processed.load(std::memory_order_relaxed));
  }
  return stats;
}

// Defined here rather than in api/learner.cc so the api layer carries no
// dependency on the engine (or on <thread>); the builder declaration
// forward-declares ShardedLearner only.
Result<ShardedLearner> LearnerBuilder::BuildSharded() const {
  if (shards_ == 0) {
    return Status::InvalidArgument("Shards(0): at least one shard is required");
  }
  // Validate the specification once through the ordinary build path; the
  // prototype also answers whether the method is mergeable at all.
  WMS_ASSIGN_OR_RETURN(Learner prototype, Build());
  if (shards_ > 1) {
    const Status mergeable = prototype.impl().CanMerge(prototype.impl());
    if (!mergeable.ok()) {
      return Status::Unimplemented(
          "Shards(" + std::to_string(shards_) + ") requires a mergeable method: " +
          mergeable.message());
    }
  }

  auto impl = std::make_unique<ShardedLearner::Impl>();
  impl->config = prototype.config();
  impl->opts = prototype.options();
  impl->shards = shards_;
  impl->sync_interval = sync_interval_;
  impl->serve_every = serve_every_;
  if (!checkpoint_spec_.dir.empty()) {
    WMS_ASSIGN_OR_RETURN(Checkpointer cp,
                         Checkpointer::Open(checkpoint_spec_.dir, checkpoint_spec_.keep_last));
    impl->checkpointer = std::make_shared<Checkpointer>(std::move(cp));
    impl->checkpoint_every = checkpoint_spec_.every;
  }
  impl->workers.reserve(shards_);
  for (uint32_t i = 0; i < shards_; ++i) {
    auto worker = std::make_unique<ShardedLearner::Impl::Worker>();
    // Every replica is stamped from the identical validated configuration
    // (same seed, hence identical hash rows — the merge prerequisite).
    worker->model = MakeClassifier(impl->config, impl->opts);
    impl->workers.push_back(std::move(worker));
  }
  ShardedLearner::Impl* raw = impl.get();
  for (auto& worker : impl->workers) {
    ShardedLearner::Impl::Worker* w = worker.get();
    w->thread = std::thread([raw, w] { raw->WorkerLoop(*w); });
  }
  return ShardedLearner(std::move(impl));
}

}  // namespace wmsketch
