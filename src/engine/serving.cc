#include "engine/serving.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "api/learner.h"

namespace wmsketch {

// ---------------------------------------------------------- ServingState

ServingState::~ServingState() {
  // Handles co-own the state, so destruction implies no registered readers
  // remain; `live_` uniquely owns every surviving snapshot.
}

void ServingState::Publish(std::unique_ptr<ServingSnapshot> snap) {
  MutexLock lk(writer_mu_);
  snap->version = next_version_++;
  const ServingSnapshot* fresh = snap.get();
  live_.push_back(std::move(snap));
  current_.store(fresh, std::memory_order_release);
  // Order the publication before the hazard scan (the writer half of the
  // pin/free protocol in the header comment).
  std::atomic_thread_fence(std::memory_order_seq_cst);

  // Reclaim: free every retired snapshot no reader pins. The acquire loads
  // synchronize with each reader's release store of its *next* pin, so a
  // reader's final reads of a snapshot happen-before its reclamation here.
  for (size_t i = 0; i < live_.size();) {
    const ServingSnapshot* candidate = live_[i].get();
    if (candidate == fresh) {
      ++i;
      continue;
    }
    bool pinned = false;
    for (const Slot& slot : slots_) {
      if (slot.in_use.load(std::memory_order_relaxed) &&
          slot.pinned.load(std::memory_order_acquire) == candidate) {
        pinned = true;
        break;
      }
    }
    if (pinned) {
      ++i;
    } else {
      live_.erase(live_.begin() + static_cast<ptrdiff_t>(i));
    }
  }
}

uint64_t ServingState::published_version() const {
  const ServingSnapshot* cur = current_.load(std::memory_order_acquire);
  return cur == nullptr ? 0 : cur->version;
}

ServingState::Slot* ServingState::RegisterHandle() {
  MutexLock lk(writer_mu_);
  for (Slot& slot : slots_) {
    if (!slot.in_use.load(std::memory_order_relaxed)) {
      slot.pinned.store(nullptr, std::memory_order_relaxed);
      slot.in_use.store(true, std::memory_order_release);
      return &slot;
    }
  }
  return nullptr;
}

void ServingState::ReleaseHandle(Slot* slot) {
  MutexLock lk(writer_mu_);
  slot->pinned.store(nullptr, std::memory_order_release);
  slot->in_use.store(false, std::memory_order_release);
}

const ServingSnapshot* ServingState::Pin(Slot* slot,
                                         const ServingSnapshot* cached) const {
  const ServingSnapshot* cur = current_.load(std::memory_order_acquire);
  if (cur == cached) return cached;  // nothing new; slot already pins it
  for (;;) {
    slot->pinned.store(cur, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const ServingSnapshot* check = current_.load(std::memory_order_acquire);
    if (check == cur) return cur;
    cur = check;  // a publication landed inside the window; pin the newer one
  }
}

// --------------------------------------------------------- ServingHandle

ServingHandle::ServingHandle(std::shared_ptr<ServingState> state,
                             ServingState::Slot* slot)
    : state_(std::move(state)), slot_(slot) {}

ServingHandle::ServingHandle(ServingHandle&& other) noexcept
    : state_(std::move(other.state_)),
      slot_(std::exchange(other.slot_, nullptr)),
      pinned_(std::exchange(other.pinned_, nullptr)) {}

ServingHandle& ServingHandle::operator=(ServingHandle&& other) noexcept {
  if (this != &other) {
    if (slot_ != nullptr) state_->ReleaseHandle(slot_);
    state_ = std::move(other.state_);
    slot_ = std::exchange(other.slot_, nullptr);
    pinned_ = std::exchange(other.pinned_, nullptr);
  }
  return *this;
}

ServingHandle::~ServingHandle() {
  if (slot_ != nullptr) state_->ReleaseHandle(slot_);
}

const ServingSnapshot& ServingHandle::Pin() {
  pinned_ = state_->Pin(slot_, pinned_);
  assert(pinned_ != nullptr);  // an initial snapshot is published at acquire
  return *pinned_;
}

uint64_t ServingHandle::Refresh() { return Pin().version; }

double ServingHandle::PredictMargin(const SparseVector& x) {
  return Pin().model->PredictMargin(x);
}

void ServingHandle::PredictBatch(std::span<const Example> batch, double* out) {
  Pin().model->PredictBatch(batch, out);
}

float ServingHandle::Estimate(uint32_t feature) {
  return Pin().model->Estimate(feature);
}

void ServingHandle::EstimateBatch(std::span<const uint32_t> features, float* out) {
  Pin().model->EstimateBatch(features, out);
}

std::vector<FeatureWeight> ServingHandle::TopK(size_t k) {
  const ServingSnapshot& snap = Pin();
  const std::vector<FeatureWeight>& all = snap.top_k;
  return std::vector<FeatureWeight>(
      all.begin(), all.begin() + static_cast<ptrdiff_t>(std::min(k, all.size())));
}

// --------------------------------------------------------------- capture

std::unique_ptr<ServingSnapshot> CaptureServingSnapshot(const BudgetedClassifier& model,
                                                        size_t top_k) {
  auto snap = std::make_unique<ServingSnapshot>();
  snap->steps = model.steps();
  // Difference the paged-storage counters around the capture: what this
  // snapshot cost is exactly the pages MakeReadModel copied out (zero for
  // the closure-backed baselines, whose stats stay zero).
  const uint64_t copied_before = model.publish_stats().copied_bytes;
  snap->model = model.MakeReadModel();
  snap->publish_bytes = model.publish_stats().copied_bytes - copied_before;
  snap->top_k = model.TopK(top_k);
  snap->resident_bytes =
      snap->model->ResidentBytes() + snap->top_k.size() * sizeof(FeatureWeight);
  return snap;
}

// -------------------------------------------------- Learner integration
//
// Defined here rather than in api/learner.cc so the api layer carries no
// dependency on the serving machinery (mirroring BuildSharded in
// sharded_learner.cc); api/learner.h only forward-declares the types.

Result<ServingHandle> Learner::AcquireServingHandle() {
  if (serving_ == nullptr) {
    serving_ = std::make_shared<ServingState>();
  }
  if (serving_->published_version() == 0) {
    // First acquisition: publish the current model so the handle is
    // immediately servable, and start the ServeEvery cadence from here.
    serving_->Publish(CaptureServingSnapshot(*impl_, kDefaultSnapshotTopK));
    next_publish_steps_ = impl_->steps() + serve_every_;
  }
  ServingState::Slot* slot = serving_->RegisterHandle();
  if (slot == nullptr) {
    return Status::FailedPrecondition(
        "serving: all " + std::to_string(ServingState::kMaxHandles) +
        " reader handle slots are registered");
  }
  return ServingHandle(serving_, slot);
}

void Learner::PublishServingSnapshot() {
  if (serving_ == nullptr) return;
  serving_->Publish(CaptureServingSnapshot(*impl_, kDefaultSnapshotTopK));
  next_publish_steps_ = impl_->steps() + serve_every_;
}

void Learner::MaybePublishServing() {
  if (serve_every_ == 0) return;
  if (impl_->steps() < next_publish_steps_) return;
  serving_->Publish(CaptureServingSnapshot(*impl_, kDefaultSnapshotTopK));
  next_publish_steps_ = impl_->steps() + serve_every_;
}

}  // namespace wmsketch
