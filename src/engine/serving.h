#pragma once

// Wait-free concurrent serving: RCU-style snapshot publication over the
// frozen ReadModel layer (linear/classifier.h).
//
// The writer — a single-threaded Learner's training thread, or the
// ShardedLearner owner at its merge barriers — periodically captures an
// immutable, versioned snapshot of the model (frozen read model + heap
// top-K, O(budget)) and publishes it with one release store of an atomic
// pointer. Readers hold a ServingHandle each and pin the latest snapshot
// through a per-handle hazard slot:
//
//   reader pin:   load current → store slot (release) → seq_cst fence →
//                 re-load current; retry on mismatch
//   writer free:  store current (release) → seq_cst fence → scan slots
//                 (acquire); free retired snapshots pinned by no slot
//
// The two seq_cst fences close the classic hazard-pointer race: either the
// writer's scan observes the reader's slot (the snapshot survives), or the
// reader's re-load observes the new pointer (the reader retries and never
// touches the freed snapshot). Reader properties, by construction:
//   * no mutexes and no atomic read-modify-write operations — the pin is two
//     plain atomic loads and one plain atomic store (plus a fence);
//   * no allocation on the hot path (per-thread plan scratch only grows);
//   * no waiting on other readers or on the writer: a pin retries only if a
//     publication lands inside its two-instruction validation window, which
//     the ServeEvery(k) cadence makes vanishingly rare — queries on a pinned
//     snapshot are wait-free outright.
// Memory is bounded: at most (#handles + live retired) snapshots exist, and
// an idle handle retains at most the one snapshot it last pinned.
//
// The writer side (publication + reclamation + handle registration) runs
// under a mutex — it was never meant to be concurrent with itself, and the
// training thread amortizes the O(budget) capture over K updates.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "linear/classifier.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace wmsketch {

class BudgetedClassifier;

/// One published, immutable serving version: a frozen read model plus the
/// materialized top-K, stamped with the publication sequence number and the
/// writer's step count at capture time.
struct ServingSnapshot {
  /// Publication sequence number (1, 2, ...; assigned by Publish).
  uint64_t version = 0;
  /// Updates the model had absorbed when this snapshot was captured.
  uint64_t steps = 0;
  /// The frozen model answering margins and point estimates.
  std::unique_ptr<const ReadModel> model;
  /// The top-K heaviest tracked features at capture time (descending
  /// magnitude; empty for identifier-free methods).
  std::vector<FeatureWeight> top_k;
  /// Bytes the capture physically copied. For the paged-table methods this
  /// is the dirtied pages only (clean pages were re-shared by refcount), so
  /// it is O(what changed since the previous capture), not O(budget).
  uint64_t publish_bytes = 0;
  /// Bytes of model state this snapshot keeps alive (shared pages counted
  /// in full — see ReadModel::ResidentBytes — plus the materialized top-K).
  size_t resident_bytes = 0;
};

/// The shared publication state: the atomic current-snapshot pointer, the
/// hazard slots of registered handles, and the retired-snapshot list.
/// Owned jointly (shared_ptr) by the publishing learner and every handle,
/// so handles keep serving the last snapshot even after the learner dies.
class ServingState {
 public:
  /// Maximum concurrently registered handles (one per reader thread).
  static constexpr size_t kMaxHandles = 64;

  /// One reader's hazard slot, padded to its own cache line so reader pins
  /// never contend with each other.
  struct alignas(64) Slot {
    std::atomic<const ServingSnapshot*> pinned{nullptr};
    std::atomic<bool> in_use{false};
  };

  ServingState() = default;
  ServingState(const ServingState&) = delete;
  ServingState& operator=(const ServingState&) = delete;
  ~ServingState();

  /// Publishes `snap` as the current version (assigns the next sequence
  /// number), then frees every retired snapshot no reader still pins.
  /// Writer-side; serialized internally.
  void Publish(std::unique_ptr<ServingSnapshot> snap);

  /// Version of the currently published snapshot (0 = none published yet).
  uint64_t published_version() const;

  /// Registers a hazard slot for a new handle; nullptr when kMaxHandles
  /// handles are already registered.
  Slot* RegisterHandle();

  /// Releases a slot at handle destruction (its pinned snapshot becomes
  /// reclaimable at the next publish).
  void ReleaseHandle(Slot* slot);

  /// The reader pin protocol (see file comment). `cached` is the snapshot
  /// the calling handle already pins (its slot still holds it), or nullptr.
  /// Returns the latest published snapshot, pinned in `slot`; nullptr only
  /// if nothing was ever published.
  const ServingSnapshot* Pin(Slot* slot, const ServingSnapshot* cached) const;

 private:
  std::atomic<const ServingSnapshot*> current_{nullptr};
  std::array<Slot, kMaxHandles> slots_;

  /// Serializes the writer side: publication, reclamation, and handle
  /// registration. Readers never take it — Pin works on `current_` and the
  /// slots alone. clang -Wthread-safety enforces that the guarded members
  /// below are only touched with it held.
  Mutex writer_mu_;
  uint64_t next_version_ WMS_GUARDED_BY(writer_mu_) = 1;
  /// Every snapshot not yet freed (the published one included).
  std::vector<std::unique_ptr<const ServingSnapshot>> live_
      WMS_GUARDED_BY(writer_mu_);
};

/// A single reader's wait-free view of a served learner. Obtain via
/// Learner::AcquireServingHandle() / ShardedLearner::AcquireServingHandle();
/// one handle serves ONE reader thread (the hazard slot is single-owner).
/// Every query pins the latest published snapshot first (two atomic loads
/// when nothing new was published), so results are at most one publication
/// interval stale; within one call the snapshot is fixed, so a batch is
/// internally consistent. Handles may outlive the learner: they keep
/// answering from the last published snapshot.
class ServingHandle {
 public:
  ServingHandle(ServingHandle&& other) noexcept;
  ServingHandle& operator=(ServingHandle&& other) noexcept;
  ServingHandle(const ServingHandle&) = delete;
  ServingHandle& operator=(const ServingHandle&) = delete;
  ~ServingHandle();

  /// Pins the latest published snapshot; returns its version. The explicit
  /// form of the refresh every query performs implicitly.
  uint64_t Refresh();

  /// Version of the currently pinned snapshot (monotone across Refresh).
  uint64_t version() const { return pinned_ == nullptr ? 0 : pinned_->version; }
  /// Steps the pinned snapshot's model had absorbed — the reader-visible
  /// training progress; (writer steps − this) is the current staleness.
  uint64_t steps() const { return pinned_ == nullptr ? 0 : pinned_->steps; }
  /// Bytes of model state the pinned snapshot keeps alive (reporting path —
  /// the serving daemon's model-info response).
  size_t resident_bytes() const {
    return pinned_ == nullptr ? 0 : pinned_->resident_bytes;
  }
  /// Entries materialized in the pinned snapshot's top-K list (the upper
  /// bound any TopK(k) call can return).
  size_t top_k_size() const { return pinned_ == nullptr ? 0 : pinned_->top_k.size(); }

  /// The margin wᵀx under the latest published snapshot.
  double PredictMargin(const SparseVector& x);
  /// The predicted label sign(wᵀx) ∈ {-1, +1} (ties map to +1).
  int8_t Classify(const SparseVector& x) { return PredictMargin(x) >= 0.0 ? 1 : -1; }
  /// Batched margins (one snapshot pin for the whole batch): out[e] =
  /// margin of batch[e], through the frozen model's SIMD batch path.
  void PredictBatch(std::span<const Example> batch, double* out);
  /// Frozen point estimate ŵᵢ under the latest published snapshot.
  float Estimate(uint32_t feature);
  /// Batched point estimates (one pin for the whole batch).
  void EstimateBatch(std::span<const uint32_t> features, float* out);
  /// The `k` heaviest materialized features of the latest snapshot (a copy;
  /// allocates — reporting path, not the serving hot path).
  std::vector<FeatureWeight> TopK(size_t k);

 private:
  friend class Learner;
  friend class ShardedLearner;

  ServingHandle(std::shared_ptr<ServingState> state, ServingState::Slot* slot);

  const ServingSnapshot& Pin();

  std::shared_ptr<ServingState> state_;
  ServingState::Slot* slot_ = nullptr;
  const ServingSnapshot* pinned_ = nullptr;
};

/// Captures a publishable snapshot of `model` (frozen read model + top-K).
/// The version field is assigned by ServingState::Publish.
std::unique_ptr<ServingSnapshot> CaptureServingSnapshot(const BudgetedClassifier& model,
                                                        size_t top_k);

}  // namespace wmsketch
