#include "engine/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/failpoint.h"

namespace wmsketch {

namespace fs = std::filesystem;

namespace {

constexpr const char* kPrefix = "ckpt-";
constexpr const char* kSuffix = ".wms";
constexpr const char* kTmpSuffix = ".wms.tmp";

Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

// Parses "ckpt-<seq>.wms"; returns 0 when the name is not a checkpoint.
uint64_t SequenceOf(const std::string& filename) {
  const size_t prefix_len = std::strlen(kPrefix);
  const size_t suffix_len = std::strlen(kSuffix);
  if (filename.size() <= prefix_len + suffix_len) return 0;
  if (filename.compare(0, prefix_len, kPrefix) != 0) return 0;
  if (filename.compare(filename.size() - suffix_len, suffix_len, kSuffix) != 0) return 0;
  const std::string digits =
      filename.substr(prefix_len, filename.size() - prefix_len - suffix_len);
  if (digits.empty()) return 0;
  uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

// write(2) until done, retrying short kernel writes and EINTR.
Status WriteAllFd(int fd, const char* data, size_t n, const std::string& path) {
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("checkpoint: write failed for", path);
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) return ErrnoError("checkpoint: cannot open directory", dir);
  const int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0) return ErrnoError("checkpoint: directory fsync failed for", dir);
  return Status::OK();
}

// Committed checkpoints in `dir`, as (sequence, filename) sorted ascending.
std::vector<std::pair<uint64_t, std::string>> ScanCheckpoints(const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const uint64_t seq = SequenceOf(name);
    if (seq != 0) found.emplace_back(seq, name);
  }
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace

Result<Checkpointer> Checkpointer::Open(const std::string& dir, size_t keep_last) {
  if (dir.empty()) return Status::InvalidArgument("checkpoint: empty directory path");
  if (keep_last == 0) return Status::InvalidArgument("checkpoint: keep_last must be >= 1");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("checkpoint: cannot create directory '" + dir +
                           "': " + ec.message());
  }
  // Sweep temp files left by a crash between temp write and rename; they were
  // never committed, so deleting them is always safe.
  uint64_t max_seq = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > std::strlen(kTmpSuffix) &&
        name.compare(name.size() - std::strlen(kTmpSuffix), std::strlen(kTmpSuffix),
                     kTmpSuffix) == 0) {
      fs::remove(entry.path(), ec);
      continue;
    }
    max_seq = std::max(max_seq, SequenceOf(name));
  }
  return Checkpointer(dir, keep_last, max_seq + 1);
}

Status Checkpointer::Write(const Learner& learner) {
  std::ostringstream buf(std::ios::binary);
  WMS_RETURN_NOT_OK(SaveLearner(learner, buf));
  return CommitBytes(std::move(buf).str());
}

Status Checkpointer::WriteClassifier(Method method, const BudgetedClassifier& impl) {
  std::ostringstream buf(std::ios::binary);
  WMS_RETURN_NOT_OK(SaveClassifier(method, impl, buf));
  return CommitBytes(std::move(buf).str());
}

Status Checkpointer::CommitBytes(const std::string& bytes) {
  const std::string final_path =
      dir_ + "/" + kPrefix + std::to_string(next_seq_) + kSuffix;
  const std::string tmp_path = final_path + ".tmp";

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoError("checkpoint: cannot create", tmp_path);

  // The payload is written in two halves so an armed "checkpoint:mid_payload"
  // crash leaves a genuinely torn temp file on disk.
  Status st = WriteAllFd(fd, bytes.data(), bytes.size() / 2, tmp_path);
  if (st.ok()) {
    switch (WMS_FAILPOINT("checkpoint:mid_payload")) {
      case failpoint::Action::kOff:
        break;
      default:
        st = Status::IOError("checkpoint: injected fault mid payload");
        break;
    }
  }
  if (st.ok()) {
    st = WriteAllFd(fd, bytes.data() + bytes.size() / 2, bytes.size() - bytes.size() / 2,
                    tmp_path);
  }
  if (st.ok() && WMS_FAILPOINT("checkpoint:fsync") != failpoint::Action::kOff) {
    st = Status::IOError("checkpoint: injected fsync fault");
  }
  if (st.ok() && ::fsync(fd) != 0) st = ErrnoError("checkpoint: fsync failed for", tmp_path);
  ::close(fd);
  if (st.ok() && WMS_FAILPOINT("checkpoint:before_rename") != failpoint::Action::kOff) {
    st = Status::IOError("checkpoint: injected fault before rename");
  }
  if (!st.ok()) {
    ::unlink(tmp_path.c_str());
    return st;
  }

  // rename(2) is the atomic commit point: before it the previous checkpoint
  // set is intact, after it the new checkpoint is fully visible.
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const Status rename_st = ErrnoError("checkpoint: rename failed for", tmp_path);
    ::unlink(tmp_path.c_str());
    return rename_st;
  }
  WMS_FAILPOINT("checkpoint:after_rename");  // crash-only site: commit landed
  WMS_RETURN_NOT_OK(FsyncDir(dir_));

  ++next_seq_;
  Prune();
  return Status::OK();
}

void Checkpointer::Prune() const {
  auto found = ScanCheckpoints(dir_);
  if (found.size() <= keep_last_) return;
  std::error_code ec;
  for (size_t i = 0; i + keep_last_ < found.size(); ++i) {
    fs::remove(fs::path(dir_) / found[i].second, ec);
  }
}

std::vector<std::string> Checkpointer::ListCheckpoints() const {
  std::vector<std::string> paths;
  for (const auto& [seq, name] : ScanCheckpoints(dir_)) {
    paths.push_back(dir_ + "/" + name);
  }
  return paths;
}

Result<Learner> Checkpointer::RecoverLatest(const LearnerOptions& opts,
                                            std::vector<std::string>* skipped) const {
  return RecoverFrom(dir_, opts, skipped);
}

Result<Learner> Checkpointer::RecoverFrom(const std::string& dir,
                                          const LearnerOptions& opts,
                                          std::vector<std::string>* skipped) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("checkpoint: no such directory '" + dir + "'");
  }
  auto found = ScanCheckpoints(dir);
  // Newest first: a torn or corrupt newest checkpoint falls back to the one
  // before it instead of failing recovery outright.
  for (auto it = found.rbegin(); it != found.rend(); ++it) {
    const std::string path = dir + "/" + it->second;
    Status read_st = Status::OK();
    if (WMS_FAILPOINT("recover:read_error") != failpoint::Action::kOff) {
      read_st = Status::IOError("checkpoint: injected recovery read fault");
    }
    if (read_st.ok()) {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        read_st = ErrnoError("checkpoint: cannot open", path);
      } else {
        Result<Learner> restored = LoadLearner(in, opts);
        if (restored.ok()) return restored;
        read_st = restored.status();
      }
    }
    if (skipped != nullptr) {
      skipped->push_back(it->second + ": " + read_st.ToString());
    }
  }
  return Status::NotFound("checkpoint: no valid checkpoint in '" + dir + "'");
}

// -------------------------------------------------- Learner integration
//
// Defined here rather than in api/learner.cc so the api layer carries no
// dependency on the checkpoint machinery (mirroring the serving.cc pattern);
// api/learner.h only forward-declares Checkpointer.

Status Learner::EnableCheckpointing(const CheckpointSpec& spec) {
  WMS_ASSIGN_OR_RETURN(Checkpointer cp, Checkpointer::Open(spec.dir, spec.keep_last));
  checkpointer_ = std::make_shared<Checkpointer>(std::move(cp));
  checkpoint_every_ = spec.every;
  next_checkpoint_steps_ =
      checkpoint_every_ == 0 ? 0 : impl_->steps() + checkpoint_every_;
  last_checkpoint_status_ = Status::OK();
  return Status::OK();
}

Status Learner::CheckpointNow() {
  if (checkpointer_ == nullptr) {
    return Status::FailedPrecondition("checkpointing not enabled on this learner");
  }
  last_checkpoint_status_ = checkpointer_->Write(*this);
  if (checkpoint_every_ > 0) {
    next_checkpoint_steps_ = impl_->steps() + checkpoint_every_;
  }
  return last_checkpoint_status_;
}

void Learner::MaybeCheckpoint() {
  if (checkpoint_every_ == 0) return;
  if (impl_->steps() < next_checkpoint_steps_) return;
  last_checkpoint_status_ = checkpointer_->Write(*this);
  next_checkpoint_steps_ = impl_->steps() + checkpoint_every_;
}

}  // namespace wmsketch
