#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "api/learner.h"
#include "util/status.h"

namespace wmsketch {

/// Ingestion counters of a \ref ShardedLearner. `per_shard` counts are read
/// from the workers' relaxed atomics, so they are exact after a barrier
/// (SyncNow/Collapse) and momentarily approximate while ingestion runs.
struct ShardedLearnerStats {
  /// Examples accepted by Push/PushBatch.
  uint64_t pushed = 0;
  /// Merge-average synchronizations performed so far (periodic + explicit).
  uint64_t syncs = 0;
  /// Examples each worker has trained on.
  std::vector<uint64_t> per_shard;
};

/// Sharded parallel training engine over mergeable learners (the linearity
/// dividend of the Weight-Median Sketch: sketches with equal projection
/// matrices sum, so disjoint-partition models combine into one valid model).
///
/// N worker threads each own a *private* replica of the configured learner,
/// fed through a bounded SPSC ring buffer. The calling thread hash-partitions
/// examples across workers by feature content, so a given example always
/// lands on the same shard regardless of arrival order. Periodically (every
/// `SetSyncInterval` examples, if enabled) all workers are drained and parked
/// while the replicas are merge-averaged and redistributed — one-pass
/// iterative parameter mixing. `Collapse()` performs the final merge-average
/// and returns an ordinary \ref Learner, so snapshots, queries, and
/// serialization work unchanged on the result; with `Shards(1)` the collapsed
/// model is bit-identical to a sequential Learner fed the same stream.
///
/// Threading contract: Push/PushBatch/SyncNow/Collapse/Stats must be called
/// from one thread (the owner); the engine manages its worker threads
/// internally. Construct via LearnerBuilder::BuildSharded().
class ShardedLearner {
 public:
  ShardedLearner(ShardedLearner&&) noexcept;
  ShardedLearner& operator=(ShardedLearner&&) noexcept;
  ShardedLearner(const ShardedLearner&) = delete;
  ShardedLearner& operator=(const ShardedLearner&) = delete;
  /// Stops and joins the workers; un-collapsed training state is discarded.
  ~ShardedLearner();

  /// Routes one example to its shard's queue (blocking only while that queue
  /// is full), and runs a synchronization first if the sync interval has
  /// elapsed. FailedPrecondition after Collapse().
  Status Push(Example example);

  /// Push() for every example in `batch`, in order.
  Status PushBatch(std::span<const Example> batch);

  /// Explicit barrier: drains every queue, parks the workers, merge-averages
  /// the replicas, redistributes the result, and resumes. A no-op model-wise
  /// for a single shard (still drains). FailedPrecondition after Collapse().
  Status SyncNow();

  /// Drains and stops the workers, merges the N replicas into one averaged
  /// model with the true global step count, and returns it as an ordinary
  /// \ref Learner. The engine is spent afterwards: further Push/SyncNow/
  /// Collapse calls return FailedPrecondition.
  Result<Learner> Collapse();

  /// Registers a reader with the engine's serving state (see
  /// engine/serving.h) and returns a wait-free \ref ServingHandle. Reader
  /// queries never block ingestion; it is *publication* that needs a
  /// consistent global model, so the engine publishes at every merge
  /// barrier: each periodic/explicit Sync, every ServeEvery(k) pushed
  /// examples (each such publication IS a merge barrier), and the final
  /// Collapse. The first acquisition runs one sync to publish the current
  /// state. Owner-thread call, like Push/SyncNow; FailedPrecondition after
  /// Collapse.
  Result<ServingHandle> AcquireServingHandle();

  /// Explicit barrier that also cuts a checkpoint (requires CheckpointTo on
  /// the builder). Returns the checkpoint write status; like periodic merge-
  /// barrier checkpoints, the model state is the consistent merged view.
  /// Owner-thread call; FailedPrecondition after Collapse.
  Status CheckpointNow();

  /// Outcome of the most recent merge-barrier checkpoint (OK before any).
  /// Periodic checkpoint failures are recorded here, not surfaced from Push:
  /// a full disk must not abort ingestion.
  const Status& last_checkpoint_status() const;

  /// Number of parallel shards (fixed at build time).
  uint32_t shards() const;
  /// Examples between periodic synchronizations (0 = only at Collapse).
  uint64_t sync_interval() const;
  /// Current ingestion counters.
  ShardedLearnerStats Stats() const;

 private:
  friend class LearnerBuilder;

  struct Impl;
  explicit ShardedLearner(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

}  // namespace wmsketch
