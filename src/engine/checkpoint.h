#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/learner.h"
#include "util/status.h"

namespace wmsketch {

/// Crash-safe checkpoint directory manager.
///
/// Each checkpoint is one enveloped learner snapshot (SaveLearner wire
/// format: checksummed "WMS3" envelope around the "WLF1" facade payload)
/// written as `ckpt-<seq>.wms` with a strictly increasing sequence number.
/// Durability protocol per checkpoint:
///
///   1. serialize to `ckpt-<seq>.wms.tmp`
///   2. fsync the temp file
///   3. rename(2) it to `ckpt-<seq>.wms`
///   4. fsync the directory
///
/// A crash at any point leaves either the previous checkpoint set intact
/// (steps 1–3) or the new checkpoint fully visible (after 3); rename is the
/// atomic commit point. `RecoverLatest` never trusts a name alone: it
/// deserializes newest-first and skips files whose envelope fails CRC or
/// truncation checks, so a torn write (possible only if the platform lies
/// about fsync) degrades to "restore the previous checkpoint", never to a
/// crash or a half-restored model.
///
/// Failpoints (see util/failpoint.h): "checkpoint:mid_payload",
/// "checkpoint:fsync", "checkpoint:before_rename", "checkpoint:after_rename",
/// "recover:read_error".
class Checkpointer {
 public:
  /// Opens (creating if needed) `dir` as a checkpoint directory. Scans
  /// existing checkpoints to resume the sequence counter and removes stale
  /// `.tmp` files left by a previous crash. `keep_last` >= 1 bounds how many
  /// committed checkpoints are retained.
  static Result<Checkpointer> Open(const std::string& dir, size_t keep_last = 3);

  /// Serializes `learner` and commits it as the next checkpoint, then prunes
  /// checkpoints beyond `keep_last`. Returns the first error encountered;
  /// on error the previous checkpoint set is untouched.
  Status Write(const Learner& learner);

  /// Like Write but for a bare classifier (the sharded merge path, which has
  /// no Learner facade). Byte-identical to Write of a Learner holding `impl`.
  Status WriteClassifier(Method method, const BudgetedClassifier& impl);

  /// Restores the newest checkpoint that deserializes cleanly. Corrupt or
  /// torn files are skipped (and reported in `skipped` if non-null). Returns
  /// NotFound if the directory holds no valid checkpoint.
  Result<Learner> RecoverLatest(const LearnerOptions& opts,
                                std::vector<std::string>* skipped = nullptr) const;

  /// Same, but returns NotFound instead of scanning when the directory has
  /// never been opened. Convenience for the resume-from-checkpoint flag.
  static Result<Learner> RecoverFrom(const std::string& dir, const LearnerOptions& opts,
                                     std::vector<std::string>* skipped = nullptr);

  /// Directory this checkpointer commits into.
  const std::string& dir() const { return dir_; }

  /// Sequence number of the most recently committed checkpoint (0 = none).
  uint64_t last_sequence() const { return next_seq_ == 0 ? 0 : next_seq_ - 1; }

  /// Paths of committed checkpoints, oldest first (rescans the directory).
  std::vector<std::string> ListCheckpoints() const;

 private:
  Checkpointer(std::string dir, size_t keep_last, uint64_t next_seq)
      : dir_(std::move(dir)), keep_last_(keep_last), next_seq_(next_seq) {}

  Status CommitBytes(const std::string& bytes);
  void Prune() const;

  std::string dir_;
  size_t keep_last_;
  uint64_t next_seq_;
};

}  // namespace wmsketch
