#include "datagen/classification_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/math.h"

namespace wmsketch {

ClassificationProfile ClassificationProfile::Rcv1Like() {
  ClassificationProfile p;
  p.name = "rcv1";
  p.dimension = 47236;  // exact RCV1 dimensionality
  p.zipf_exponent = 1.1;
  p.min_nnz = 30;
  p.max_nnz = 120;  // mean ~75, matching RCV1's average document length
  p.teacher_support = 1024;
  p.teacher_scale = 4.0;
  p.target_logit_std = 5.0;  // Bayes error ~9%, matching RCV1 error-rate scale
  // Discriminative mass overlaps the frequent features (news topics are
  // signaled by common words) — the regime where Space-Saving is competitive.
  p.teacher_rank_lo = 0;
  p.teacher_rank_hi = 8192;
  return p;
}

ClassificationProfile ClassificationProfile::UrlLike() {
  ClassificationProfile p;
  p.name = "url";
  p.dimension = 1u << 22;  // 4.2M, the paper's 3.2M rounded to a power of two
  p.zipf_exponent = 1.3;
  p.min_nnz = 60;
  p.max_nnz = 170;  // mean ~115 nonzeros, matching the URL dataset
  p.teacher_support = 131072;
  p.teacher_scale = 5.0;
  p.target_logit_std = 6.0;  // Bayes error ~4%, matching the URL scale
  // Discriminative features are *rare and numerous* (one-shot URL tokens):
  // the most frequent 2^11 features (boilerplate URL components) carry no
  // signal, and each informative feature recurs only a handful of times —
  // so heavy-hitter filters waste their budget and magnitude truncation
  // churns, the paper's key URL observations.
  p.teacher_rank_lo = 1u << 11;
  p.teacher_rank_hi = 1u << 18;
  return p;
}

ClassificationProfile ClassificationProfile::KddaLike() {
  ClassificationProfile p;
  p.name = "kdda";
  p.dimension = 1u << 21;  // 2.1M (paper: 20M; scaled, DESIGN.md §4)
  p.zipf_exponent = 1.2;
  p.min_nnz = 10;
  p.max_nnz = 60;
  // The teacher concentrates on frequent ranks so most examples carry
  // signal; moderate scale keeps the Bayes error near the paper's ~0.13
  // KDDA error-rate plateau.
  p.teacher_support = 768;
  p.teacher_scale = 2.5;
  p.target_logit_std = 3.5;  // Bayes error ~13%, the paper KDDA plateau
  p.teacher_rank_lo = 0;
  p.teacher_rank_hi = 4096;
  return p;
}

ClassificationProfile ClassificationProfile::SmallTest() {
  ClassificationProfile p;
  p.name = "small";
  p.dimension = 4096;
  p.zipf_exponent = 1.1;
  p.min_nnz = 5;
  p.max_nnz = 25;
  p.teacher_support = 64;
  p.teacher_scale = 5.0;
  p.target_logit_std = 4.0;
  p.teacher_rank_lo = 0;
  p.teacher_rank_hi = 512;
  return p;
}

SyntheticClassificationGen::SyntheticClassificationGen(const ClassificationProfile& profile,
                                                       uint64_t seed)
    : profile_(profile),
      zipf_(profile.dimension, profile.zipf_exponent),
      rng_(seed) {
  assert(profile.teacher_rank_hi <= profile.dimension);
  assert(profile.teacher_rank_lo < profile.teacher_rank_hi);
  assert(profile.min_nnz >= 1 && profile.min_nnz <= profile.max_nnz);
  // Draw the teacher support uniformly from the designated rank band; the
  // Zipf sampler makes low ranks frequent, so the band placement controls
  // the frequency–discriminativeness alignment.
  Rng teacher_rng(seed ^ 0xa0761d6478bd642fULL);
  const uint32_t band = profile.teacher_rank_hi - profile.teacher_rank_lo;
  const uint32_t support = std::min(profile.teacher_support, band);
  while (teacher_.size() < support) {
    const uint32_t rank =
        profile.teacher_rank_lo + static_cast<uint32_t>(teacher_rng.Bounded(band));
    if (teacher_.count(rank) != 0) continue;
    const double mag = (0.5 + teacher_rng.NextDouble()) * profile.teacher_scale;
    const double sign = teacher_rng.Bernoulli(0.5) ? 1.0 : -1.0;
    teacher_[rank] = static_cast<float>(sign * mag);
  }

  // Calibrate the label bias so classes are balanced: sample calibration
  // logits (with a PRNG independent of the example stream) and bisect for
  // the b with mean sigmoid(logit − b) = 1/2. Mean-centering is not enough:
  // a teacher realization that lands a large weight on a very frequent rank
  // skews the logit distribution, and skewed logits through a sigmoid give
  // arbitrarily unbalanced labels.
  Rng calib_rng(seed ^ 0xd6e8feb86659fd93ULL);
  std::vector<double> logits;
  logits.reserve(4000);
  std::vector<uint32_t> features;
  for (int i = 0; i < 4000; ++i) {
    const uint32_t nnz =
        profile.min_nnz +
        static_cast<uint32_t>(calib_rng.Bounded(profile.max_nnz - profile.min_nnz + 1));
    features.clear();
    while (features.size() < nnz) {
      const uint32_t f = static_cast<uint32_t>(zipf_.Sample(calib_rng));
      if (std::find(features.begin(), features.end(), f) == features.end()) {
        features.push_back(f);
      }
    }
    logits.push_back(TeacherLogit(features));
  }

  // Difficulty rescale: set the centered logit spread to the profile's
  // target so the Bayes error of the stream is controlled rather than an
  // accident of the teacher draw.
  if (profile.target_logit_std > 0.0) {
    double mean = 0.0;
    for (const double l : logits) mean += l;
    mean /= static_cast<double>(logits.size());
    double var = 0.0;
    for (const double l : logits) var += (l - mean) * (l - mean);
    var /= static_cast<double>(logits.size());
    if (var > 1e-12) {
      const double factor = profile.target_logit_std / std::sqrt(var);
      for (auto& [rank, weight] : teacher_) {
        weight = static_cast<float>(weight * factor);
      }
      for (double& l : logits) l *= factor;
    }
  }

  double lo = *std::min_element(logits.begin(), logits.end());
  double hi = *std::max_element(logits.begin(), logits.end());
  for (int iter = 0; iter < 60 && hi - lo > 1e-9; ++iter) {
    const double mid = 0.5 * (lo + hi);
    double mean_p = 0.0;
    for (const double l : logits) mean_p += Sigmoid(l - mid);
    mean_p /= static_cast<double>(logits.size());
    (mean_p > 0.5 ? lo : hi) = mid;
  }
  label_bias_ = 0.5 * (lo + hi);
}

double SyntheticClassificationGen::TeacherLogit(const std::vector<uint32_t>& features) const {
  double logit = 0.0;
  for (const uint32_t f : features) {
    auto it = teacher_.find(f);
    if (it != teacher_.end()) logit += static_cast<double>(it->second);
  }
  return logit;
}

Example SyntheticClassificationGen::Next() {
  const uint32_t nnz =
      profile_.min_nnz +
      static_cast<uint32_t>(rng_.Bounded(profile_.max_nnz - profile_.min_nnz + 1));

  // Distinct Zipf draws by rejection; duplicates are rare enough that this
  // stays O(nnz) in expectation even at high skew.
  scratch_features_.clear();
  while (scratch_features_.size() < nnz) {
    const uint32_t f = static_cast<uint32_t>(zipf_.Sample(rng_));
    if (std::find(scratch_features_.begin(), scratch_features_.end(), f) !=
        scratch_features_.end()) {
      continue;
    }
    scratch_features_.push_back(f);
  }

  const double logit = TeacherLogit(scratch_features_) - label_bias_;
  int8_t y = rng_.Bernoulli(Sigmoid(logit)) ? 1 : -1;
  if (profile_.label_flip_prob > 0.0 && rng_.Bernoulli(profile_.label_flip_prob)) y = -y;

  std::sort(scratch_features_.begin(), scratch_features_.end());
  std::vector<float> values(nnz);
  if (profile_.binary_values) {
    // Binary bag-of-words, matching the paper's benchmark datasets (the
    // ‖x‖₁ = 1 normalization in Sec. 6 is a theory assumption, not the
    // experimental preprocessing; unit values keep the teacher scale
    // directly realizable by online gradient descent).
    std::fill(values.begin(), values.end(), 1.0f);
  } else {
    for (float& v : values) {
      v = static_cast<float>(std::fabs(rng_.NextGaussian())) + 1e-3f;
    }
  }
  return Example{SparseVector(scratch_features_, std::move(values)), y};
}

}  // namespace wmsketch
