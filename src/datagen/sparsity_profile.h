#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stream/sparse_vector.h"
#include "util/random.h"
#include "util/status.h"

namespace wmsketch {

/// One bucket of a per-example nonzero-count histogram: examples with nnz in
/// the inclusive range [lo, hi] carry `mass` of the probability.
struct NnzBucket {
  uint32_t lo = 0;
  uint32_t hi = 0;
  double mass = 0.0;

  bool operator==(const NnzBucket&) const = default;
};

/// One feature-frequency rank band: the features whose frequency rank (0 =
/// most frequent) falls in the half-open range [rank_lo, rank_hi) collectively
/// receive `mass` of all (example, feature) occurrences. Geometric bands
/// capture the heavy-tailed skew that drives sketch cache behavior without
/// committing a 47k-entry frequency table.
struct RankBand {
  uint32_t rank_lo = 0;
  uint32_t rank_hi = 0;
  double mass = 0.0;

  bool operator==(const RankBand&) const = default;
};

/// A measured sparsity profile of a real sparse classification dataset: the
/// shape information the serving and update hot paths are sensitive to (how
/// many cells an example touches, and how feature popularity concentrates),
/// small enough to commit next to the benchmarks. A profile deliberately
/// carries no label-feature correlation — replayed streams exercise access
/// patterns, not learnability (use datagen/classification_gen.h for accuracy
/// experiments).
struct SparsityProfile {
  std::string name;
  /// Number of distinct features (replayed feature ids are < dimension).
  uint32_t dimension = 0;
  /// Fraction of +1 labels.
  double positive_fraction = 0.5;
  /// True for binary bag-of-words data (all values 1.0); false replays
  /// |N(0, 1)| magnitudes (tf-idf-like spread).
  bool binary_values = true;
  /// Nonzeros-per-example histogram; masses sum to ~1.
  std::vector<NnzBucket> nnz_histogram;
  /// Occurrence mass by frequency rank band; bands are disjoint, ordered by
  /// rank, and masses sum to ~1.
  std::vector<RankBand> rank_bands;

  /// Checks structural invariants: nonempty histograms, ordered nonempty
  /// ranges within the dimension, masses in [0, 1] summing to 1 ± 1e-6.
  Status Validate() const;
};

/// Parses a profile from its committed JSON form. The parser is a strict
/// stdlib-only subset of JSON (objects, arrays, numbers, strings, booleans —
/// exactly what FormatSparsityProfileJson emits); unknown keys are errors so
/// committed profiles cannot silently rot.
Result<SparsityProfile> ParseSparsityProfileJson(std::string_view json);

/// Reads and parses a profile file; parse errors are prefixed with the path.
Result<SparsityProfile> LoadSparsityProfile(const std::string& path);

/// Serializes a profile to the JSON form ParseSparsityProfileJson accepts
/// (round-trips exactly; used by the benches' --dump-profile).
std::string FormatSparsityProfileJson(const SparsityProfile& profile);

/// Measures a profile from parsed examples (e.g. a LIBSVM file): geometric
/// nnz buckets, power-of-two frequency rank bands, label fraction, value
/// binariness. Requires at least one example with at least one nonzero.
Result<SparsityProfile> MeasureSparsityProfile(const std::vector<Example>& examples,
                                               std::string name);

/// Deterministic replay generator for a sparsity profile. Each example draws
/// its nonzero count from the histogram and its features by rank band
/// (uniform within a band, identity rank→feature-id mapping so frequency
/// order is reproducible); indices are sorted and deduplicated to nnz
/// distinct features. Two generators with equal (profile, seed) yield
/// identical streams, the same contract as SyntheticClassificationGen.
class SparsityReplayGen {
 public:
  /// Requires profile.Validate().ok().
  SparsityReplayGen(const SparsityProfile& profile, uint64_t seed);

  /// Draws the next labeled example.
  Example Next();

  const SparsityProfile& profile() const { return profile_; }

 private:
  uint32_t DrawNnz();
  uint32_t DrawFeature();

  SparsityProfile profile_;
  Rng rng_;
  /// Cumulative masses, renormalized to end exactly at 1.
  std::vector<double> nnz_cdf_;
  std::vector<double> band_cdf_;
  std::vector<uint32_t> scratch_features_;
};

}  // namespace wmsketch
