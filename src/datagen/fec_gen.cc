#include "datagen/fec_gen.h"

#include <algorithm>
#include <cmath>

namespace wmsketch {

namespace {
// Base log-amount distribution: exp(N(mu, sigma^2)).
constexpr double kLogAmountMu = 5.0;     // median ~$148
constexpr double kLogAmountSigma = 1.4;
// Planted shifts (log-space): high-risk attributes push amounts up by ~e^1.8,
// low-risk pull them down.
constexpr double kHighRiskShift = 1.8;
constexpr double kLowRiskShift = -1.2;
// Every attribute value additionally carries a small idiosyncratic shift
// (payees have price tendencies, candidates have spending styles), giving
// the continuous relative-risk spectrum that Figs. 8-9 measure.
constexpr double kBaseShiftRange = 1.3;
constexpr size_t kPlantedPerColumn = 40;
}  // namespace

FecLikeGenerator::FecLikeGenerator(uint64_t seed)
    : rng_(seed), base_shift_hash_(seed ^ 0x9f2d3582fb6b235bULL) {
  // Cardinalities sized so the total attribute space (~0.4M values) matches
  // the paper's FEC feature dimension (5.14e5, Table 1).
  columns_ = {
      {"candidate", 20000, 1.10}, {"payee", 1u << 18, 1.25}, {"state", 51, 1.05},
      {"category", 64, 1.05},     {"purpose", 8192, 1.10},
  };
  uint32_t offset = 0;
  for (const Column& col : columns_) {
    offsets_.push_back(offset);
    offset += col.cardinality;
    samplers_.emplace_back(col.cardinality, col.zipf_exponent);
  }
  dimension_ = offset;

  // Plant risk-bearing attribute values. Values are picked from mid-frequency
  // ranks: rank 0 values are so common that shifting them would move the
  // whole amount distribution, and very rare values never accumulate counts.
  Rng plant_rng(seed ^ 0xe7037ed1a0b428dbULL);
  for (size_t c = 0; c < columns_.size(); ++c) {
    const uint32_t card = columns_[c].cardinality;
    // Frequent-enough ranks that planted values accumulate observable
    // counts at laptop-scale row counts.
    const uint32_t lo = 2;
    const uint32_t hi =
        std::min(card, std::max<uint32_t>(lo + 2 * kPlantedPerColumn + 2, card / 64));
    size_t planted = 0;
    while (planted < kPlantedPerColumn && planted < (hi - lo) / 2) {
      const uint32_t value = lo + static_cast<uint32_t>(plant_rng.Bounded(hi - lo));
      const uint32_t feature = FeatureId(c, value);
      if (high_risk_.count(feature) != 0 || low_risk_.count(feature) != 0) continue;
      (plant_rng.Bernoulli(0.5) ? high_risk_ : low_risk_).insert(feature);
      ++planted;
    }
  }

  // Calibrate the 80th-percentile threshold by simulating the marginal
  // amount distribution (deterministic given the seed).
  Rng calib_rng(seed ^ 0x8ebc6af09c88c6e3ULL);
  std::vector<double> amounts;
  amounts.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    double shift = 0.0;
    for (size_t c = 0; c < columns_.size(); ++c) {
      const uint32_t value = static_cast<uint32_t>(samplers_[c].Sample(calib_rng));
      shift += AmountLogShift(FeatureId(c, value));
    }
    amounts.push_back(kLogAmountMu + shift + kLogAmountSigma * calib_rng.NextGaussian());
  }
  std::nth_element(amounts.begin(), amounts.begin() + amounts.size() * 4 / 5, amounts.end());
  outlier_threshold_ = amounts[amounts.size() * 4 / 5];
}

double FecLikeGenerator::AmountLogShift(uint32_t feature) const {
  if (high_risk_.count(feature) != 0) return kHighRiskShift;
  if (low_risk_.count(feature) != 0) return kLowRiskShift;
  // Idiosyncratic per-value tendency, deterministic in (seed, feature).
  const uint64_t h = base_shift_hash_.Hash(feature);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return kBaseShiftRange * (2.0 * u - 1.0);
}

FecRow FecLikeGenerator::Next() {
  FecRow row;
  row.attributes.reserve(columns_.size());
  double shift = 0.0;
  for (size_t c = 0; c < columns_.size(); ++c) {
    const uint32_t value = static_cast<uint32_t>(samplers_[c].Sample(rng_));
    const uint32_t feature = FeatureId(c, value);
    row.attributes.push_back(feature);
    shift += AmountLogShift(feature);
  }
  const double log_amount = kLogAmountMu + shift + kLogAmountSigma * rng_.NextGaussian();
  row.amount = std::exp(log_amount);
  row.outlier = log_amount > outlier_threshold_;
  return row;
}

}  // namespace wmsketch
