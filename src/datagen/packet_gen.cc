#include "datagen/packet_gen.h"

#include <cassert>
#include <cmath>

namespace wmsketch {

PacketTraceGenerator::PacketTraceGenerator(uint32_t num_ips, uint32_t num_deltoids,
                                           uint64_t seed, double zipf_exponent)
    : num_ips_(num_ips),
      rng_(seed),
      outbound_(AliasTable::Build({1.0}).value()),  // placeholders, rebuilt below
      inbound_(AliasTable::Build({1.0}).value()) {
  assert(num_deltoids < num_ips);

  // Base Zipf popularity over address ranks.
  std::vector<double> base(num_ips);
  for (uint32_t i = 0; i < num_ips; ++i) {
    base[i] = std::pow(static_cast<double>(i + 1), -zipf_exponent);
  }

  // Plant deltoids on mid-popularity addresses (very frequent addresses make
  // the ratio trivially detectable from tiny samples; very rare ones never
  // appear at laptop-scale stream lengths). Both directions are planted.
  Rng plant_rng(seed ^ 0x589965cc75374cc3ULL);
  const uint32_t lo = num_ips / 256 + 8;
  const uint32_t hi = num_ips / 4;
  while (planted_.size() < num_deltoids) {
    const uint32_t ip = lo + static_cast<uint32_t>(plant_rng.Bounded(hi - lo));
    if (planted_.count(ip) != 0) continue;
    // |log ratio| uniform in [1.5, 8] covers Fig. 10's x-axis (5..8).
    const double magnitude = 1.5 + 6.5 * plant_rng.NextDouble();
    const double sign = plant_rng.Bernoulli(0.5) ? 1.0 : -1.0;
    planted_[ip] = sign * magnitude;
  }

  // Direction-specific sampling weights: w·e^{+r/2} outbound, w·e^{−r/2}
  // inbound, so the occurrence-rate ratio is e^r.
  std::vector<double> out_w = base;
  std::vector<double> in_w = base;
  for (const auto& [ip, log_ratio] : planted_) {
    out_w[ip] *= std::exp(log_ratio / 2.0);
    in_w[ip] *= std::exp(-log_ratio / 2.0);
  }
  outbound_ = AliasTable::Build(out_w).value();
  inbound_ = AliasTable::Build(in_w).value();
}

PacketEvent PacketTraceGenerator::Next() {
  const bool outbound = rng_.Bernoulli(0.5);
  const uint32_t ip = outbound ? outbound_.Sample(rng_) : inbound_.Sample(rng_);
  return PacketEvent{ip, outbound};
}

double PacketTraceGenerator::TrueLogRatio(uint32_t ip) const {
  // The two alias tables have different normalizers, so the exact expected
  // log occurrence ratio includes that offset (identical for all IPs).
  const double p_out = outbound_.Probability(ip);
  const double p_in = inbound_.Probability(ip);
  if (p_out <= 0.0 || p_in <= 0.0) return 0.0;
  return std::log(p_out / p_in);
}

}  // namespace wmsketch
