#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/random.h"
#include "util/zipf.h"

namespace wmsketch {

/// A planted collocation: after token `u` appears, `v` immediately follows
/// with probability `follow_prob`, producing a pair with large positive PMI.
struct Collocation {
  uint32_t u;
  uint32_t v;
  double follow_prob;
};

/// Generator of a Zipfian token stream with planted collocations for the
/// streaming-PMI experiments (Fig. 11, Table 3). Substitutes for the
/// billion-word newswire corpus (DESIGN.md §4).
///
/// Unigrams follow Zipf(exponent) over the vocabulary ("prime", "minister",
/// ... are just token ids here). Collocation heads trigger their tail token
/// next with the planted probability, so PMI(u,v) ≈ log(follow_prob/p(v)) is
/// large and known; all other pairs co-occur only by chance (PMI ≈ 0 for
/// frequent pairs — the Table 3 right-hand column). Documents have geometric
/// length; pair windows should be reset at document boundaries.
class CorpusGenerator {
 public:
  /// Constructs with `vocab` tokens and `num_collocations` planted pairs.
  CorpusGenerator(uint32_t vocab, uint32_t num_collocations, uint64_t seed,
                  double zipf_exponent = 1.05, double mean_doc_length = 200.0);

  /// Emits the next token. Sets *document_boundary (if non-null) to true
  /// when this token starts a new document.
  uint32_t Next(bool* document_boundary = nullptr);

  uint32_t vocab() const { return vocab_; }
  const std::vector<Collocation>& collocations() const { return collocations_; }

  /// Unigram probability under the base Zipf law (collocation triggering
  /// perturbs this only mildly; tests use generous tolerances).
  double UnigramProb(uint32_t token) const { return zipf_.Pmf(token); }

 private:
  uint32_t vocab_;
  ZipfSampler zipf_;
  Rng rng_;
  double continue_prob_;
  std::vector<Collocation> collocations_;
  std::unordered_map<uint32_t, size_t> head_index_;  // token -> collocation
  uint32_t pending_tail_ = kNone;
  bool at_document_start_ = true;

  static constexpr uint32_t kNone = 0xffffffffu;
};

}  // namespace wmsketch
