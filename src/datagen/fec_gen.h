#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "hash/tabulation.h"
#include "util/random.h"
#include "util/zipf.h"

namespace wmsketch {

/// One synthetic disbursement record: the global feature ids of its
/// categorical attribute values, the dollar amount, and the outlier label
/// (top-20% by amount, as in Sec. 8.1).
struct FecRow {
  std::vector<uint32_t> attributes;  // one feature id per column
  double amount = 0.0;
  bool outlier = false;
};

/// Generator of FEC-disbursement-like tabular rows for the streaming-
/// explanation experiments (Figs. 8–9). Substitutes for the 2010–2016
/// House/Senate itemized disbursements data (DESIGN.md §4).
///
/// Shape: several categorical columns (candidate, payee, state, category,
/// purpose) with Zipfian value marginals; `amount` is log-normal with
/// additive log-space shifts attached to a small planted set of high-risk
/// and low-risk attribute values. Outliers are rows whose amount exceeds the
/// (calibrated) 80th percentile, so planted high-risk values genuinely have
/// relative risk ≫ 1 while frequent-but-neutral values sit near risk 1 —
/// the structure Figs. 8–9 measure.
class FecLikeGenerator {
 public:
  struct Column {
    std::string name;
    uint32_t cardinality;
    double zipf_exponent;
  };

  /// Constructs with the default five-column schema.
  explicit FecLikeGenerator(uint64_t seed);

  /// Draws the next row.
  FecRow Next();

  /// Global feature-id range (columns are offset-packed).
  uint32_t FeatureDimension() const { return dimension_; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Planted high-risk feature ids (relative risk > 1 by construction).
  const std::unordered_set<uint32_t>& high_risk_features() const { return high_risk_; }
  /// Planted protective feature ids (relative risk < 1 by construction).
  const std::unordered_set<uint32_t>& low_risk_features() const { return low_risk_; }

  /// Feature id for (column, value).
  uint32_t FeatureId(size_t column, uint32_t value) const {
    return offsets_[column] + value;
  }

 private:
  double AmountLogShift(uint32_t feature) const;

  std::vector<Column> columns_;
  std::vector<uint32_t> offsets_;
  uint32_t dimension_;
  std::vector<ZipfSampler> samplers_;
  Rng rng_;
  TabulationHash base_shift_hash_{0};
  std::unordered_set<uint32_t> high_risk_;
  std::unordered_set<uint32_t> low_risk_;
  double outlier_threshold_;
};

}  // namespace wmsketch
