#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "stream/sparse_vector.h"
#include "util/random.h"
#include "util/zipf.h"

namespace wmsketch {

/// Statistical profile of a synthetic sparse classification stream.
///
/// These profiles stand in for the paper's benchmark datasets (Table 1),
/// which are not redistributable offline; DESIGN.md §4 documents the
/// substitution. The knobs preserve what the budgeted learners are
/// sensitive to: dimensionality, per-example sparsity, Zipfian feature-
/// frequency skew, the alignment (or misalignment) between frequency and
/// discriminativeness, and label noise.
struct ClassificationProfile {
  std::string name;
  /// Feature-space dimension d.
  uint32_t dimension = 1 << 16;
  /// Zipf exponent of the feature-frequency distribution.
  double zipf_exponent = 1.1;
  /// Nonzeros per example are uniform in [min_nnz, max_nnz].
  uint32_t min_nnz = 20;
  uint32_t max_nnz = 120;
  /// Number of nonzero teacher weights.
  uint32_t teacher_support = 512;
  /// Teacher weights are drawn from ±Uniform[0.5, 1.5] · teacher_scale.
  double teacher_scale = 4.0;
  /// Teacher support is drawn from frequency ranks
  /// [teacher_rank_lo, teacher_rank_hi). Placing it on high (rare) ranks
  /// creates the "frequent features are not discriminative" regime that
  /// defeats heavy-hitter baselines on the URL dataset.
  uint32_t teacher_rank_lo = 0;
  uint32_t teacher_rank_hi = 4096;
  /// Additional label-flip noise on top of the sigmoid sampling.
  double label_flip_prob = 0.0;
  /// Teacher weights are rescaled at construction so the centered logit
  /// distribution has this standard deviation — the direct knob for the
  /// Bayes error of the stream (σ ≈ 3 gives ~10% irreducible error, σ ≈ 6
  /// gives ~4%). Set 0 to disable rescaling.
  double target_logit_std = 3.0;
  /// If true, feature values are 1.0 (binary bag-of-words, like the
  /// paper's benchmark datasets); otherwise |N(0,1)| magnitudes.
  bool binary_values = true;

  /// Profiles mirroring the paper's three benchmark datasets (Table 1), at
  /// identical (RCV1) or laptop-scaled (URL, KDDA) dimensionality.
  static ClassificationProfile Rcv1Like();
  static ClassificationProfile UrlLike();
  static ClassificationProfile KddaLike();
  /// A small profile for unit tests (d = 4096).
  static ClassificationProfile SmallTest();
};

/// Deterministic generator of labeled sparse examples from a profile.
///
/// Construction samples a ground-truth sparse "teacher" w° (weights on
/// chosen frequency ranks); each example draws distinct features from the
/// Zipf law, and the label is +1 with probability sigmoid(w°ᵀx_unnormalized)
/// — so labels are intrinsically noisy, like real text. Two generators with
/// equal (profile, seed) yield identical streams, which is how benches train
/// multiple methods on the same data without buffering it.
class SyntheticClassificationGen {
 public:
  SyntheticClassificationGen(const ClassificationProfile& profile, uint64_t seed);

  /// Draws the next labeled example.
  Example Next();

  const ClassificationProfile& profile() const { return profile_; }

  /// The ground-truth teacher weights (feature -> weight). Note: recovery
  /// experiments compare against the trained *uncompressed model*, not the
  /// teacher (Sec. 7.2); the teacher is exposed for tests and diagnostics.
  const std::unordered_map<uint32_t, float>& teacher() const { return teacher_; }

  /// Teacher margin w°ᵀx with *unit* feature values (the label logit,
  /// before centering).
  double TeacherLogit(const std::vector<uint32_t>& features) const;

  /// Centering offset subtracted from the teacher logit when sampling
  /// labels, chosen so E[logit − bias] ≈ 0 and classes stay balanced even
  /// when frequent features happen to carry large same-sign weights.
  double label_bias() const { return label_bias_; }

 private:
  ClassificationProfile profile_;
  ZipfSampler zipf_;
  Rng rng_;
  std::unordered_map<uint32_t, float> teacher_;
  double label_bias_ = 0.0;
  std::vector<uint32_t> scratch_features_;
};

}  // namespace wmsketch
