#include "datagen/sparsity_profile.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <functional>
#include <sstream>
#include <unordered_map>

namespace wmsketch {

namespace {

// ------------------------------------------------------ JSON subset parser
//
// A strict recursive-descent parser for exactly the JSON subset
// FormatSparsityProfileJson emits: one object of string keys mapping to
// numbers, strings, booleans, or arrays of fixed-width number triples. No
// escapes beyond \" and \\, no nested objects, no null. Small enough to
// audit, and with no dependency to vendor.

class JsonCursor {
 public:
  explicit JsonCursor(std::string_view s) : s_(s) {}

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= s_.size();
  }

  // Consumes `c` (after whitespace) or fails.
  Status Expect(char c) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      return Status::InvalidArgument(std::string("expected '") + c + "' at byte " +
                                     std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  // Peeks the next non-whitespace character (0 at end).
  char Peek() {
    SkipWs();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  // Consumes `c` if it is next; returns whether it did.
  bool Accept(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ParseString() {
    WMS_RETURN_NOT_OK(Expect('"'));
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size() || (s_[pos_] != '"' && s_[pos_] != '\\')) {
          return Status::InvalidArgument("unsupported string escape at byte " +
                                         std::to_string(pos_));
        }
        c = s_[pos_++];
      }
      out += c;
    }
    if (pos_ >= s_.size()) return Status::InvalidArgument("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Result<double> ParseNumber() {
    SkipWs();
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    double v = 0.0;
    const auto [p, err] = std::from_chars(s_.data() + start, s_.data() + pos_, v);
    if (err != std::errc() || p != s_.data() + pos_ || start == pos_) {
      return Status::InvalidArgument("bad number at byte " + std::to_string(start));
    }
    return v;
  }

  Result<bool> ParseBool() {
    SkipWs();
    if (s_.substr(pos_).starts_with("true")) {
      pos_ += 4;
      return true;
    }
    if (s_.substr(pos_).starts_with("false")) {
      pos_ += 5;
      return false;
    }
    return Status::InvalidArgument("expected boolean at byte " + std::to_string(pos_));
  }

  // Parses an array of `width`-element number arrays, e.g. [[1,2,0.5],...].
  Result<std::vector<std::array<double, 3>>> ParseTripleArray() {
    std::vector<std::array<double, 3>> out;
    WMS_RETURN_NOT_OK(Expect('['));
    if (Accept(']')) return out;
    do {
      WMS_RETURN_NOT_OK(Expect('['));
      std::array<double, 3> triple{};
      for (int i = 0; i < 3; ++i) {
        if (i > 0) WMS_RETURN_NOT_OK(Expect(','));
        WMS_ASSIGN_OR_RETURN(triple[i], ParseNumber());
      }
      WMS_RETURN_NOT_OK(Expect(']'));
      out.push_back(triple);
    } while (Accept(','));
    WMS_RETURN_NOT_OK(Expect(']'));
    return out;
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

Result<uint32_t> AsU32(double v, const char* what) {
  if (v < 0 || v > 4294967295.0 || v != std::floor(v)) {
    return Status::InvalidArgument(std::string("expected 32-bit integer for ") + what);
  }
  return static_cast<uint32_t>(v);
}

// Shared format for the two triple-list fields.
void AppendTriples(std::ostringstream& os, const char* key,
                   const std::vector<std::array<double, 3>>& triples) {
  os << "  \"" << key << "\": [";
  for (size_t i = 0; i < triples.size(); ++i) {
    os << (i ? ",\n    " : "\n    ");
    os << '[' << static_cast<uint64_t>(triples[i][0]) << ", "
       << static_cast<uint64_t>(triples[i][1]) << ", " << triples[i][2] << ']';
  }
  os << "\n  ]";
}

double MassSum(const std::vector<NnzBucket>& b) {
  double s = 0.0;
  for (const auto& x : b) s += x.mass;
  return s;
}

double MassSum(const std::vector<RankBand>& b) {
  double s = 0.0;
  for (const auto& x : b) s += x.mass;
  return s;
}

}  // namespace

Status SparsityProfile::Validate() const {
  if (dimension == 0) return Status::InvalidArgument("profile dimension must be > 0");
  if (!(positive_fraction >= 0.0 && positive_fraction <= 1.0)) {
    return Status::InvalidArgument("positive_fraction must be in [0, 1]");
  }
  if (nnz_histogram.empty()) return Status::InvalidArgument("empty nnz_histogram");
  if (rank_bands.empty()) return Status::InvalidArgument("empty rank_bands");
  for (const NnzBucket& b : nnz_histogram) {
    if (b.lo == 0 || b.hi < b.lo) {
      return Status::InvalidArgument("nnz bucket range must satisfy 1 <= lo <= hi");
    }
    if (!(b.mass >= 0.0 && b.mass <= 1.0)) {
      return Status::InvalidArgument("nnz bucket mass must be in [0, 1]");
    }
  }
  uint32_t prev_hi = 0;
  for (const RankBand& b : rank_bands) {
    if (b.rank_hi <= b.rank_lo || b.rank_lo < prev_hi) {
      return Status::InvalidArgument("rank bands must be nonempty, ordered, disjoint");
    }
    if (b.rank_hi > dimension) {
      return Status::InvalidArgument("rank band exceeds the profile dimension");
    }
    if (!(b.mass >= 0.0 && b.mass <= 1.0)) {
      return Status::InvalidArgument("rank band mass must be in [0, 1]");
    }
    prev_hi = b.rank_hi;
  }
  if (std::fabs(MassSum(nnz_histogram) - 1.0) > 1e-6) {
    return Status::InvalidArgument("nnz_histogram masses must sum to 1");
  }
  if (std::fabs(MassSum(rank_bands) - 1.0) > 1e-6) {
    return Status::InvalidArgument("rank_bands masses must sum to 1");
  }
  return Status::OK();
}

Result<SparsityProfile> ParseSparsityProfileJson(std::string_view json) {
  JsonCursor c(json);
  SparsityProfile p;
  bool saw_dimension = false;
  WMS_RETURN_NOT_OK(c.Expect('{'));
  if (!c.Accept('}')) {
    do {
      WMS_ASSIGN_OR_RETURN(const std::string key, c.ParseString());
      WMS_RETURN_NOT_OK(c.Expect(':'));
      if (key == "name") {
        WMS_ASSIGN_OR_RETURN(p.name, c.ParseString());
      } else if (key == "dimension") {
        WMS_ASSIGN_OR_RETURN(const double v, c.ParseNumber());
        WMS_ASSIGN_OR_RETURN(p.dimension, AsU32(v, "dimension"));
        saw_dimension = true;
      } else if (key == "positive_fraction") {
        WMS_ASSIGN_OR_RETURN(p.positive_fraction, c.ParseNumber());
      } else if (key == "binary_values") {
        WMS_ASSIGN_OR_RETURN(p.binary_values, c.ParseBool());
      } else if (key == "nnz_histogram") {
        WMS_ASSIGN_OR_RETURN(const auto triples, c.ParseTripleArray());
        for (const auto& t : triples) {
          NnzBucket b;
          WMS_ASSIGN_OR_RETURN(b.lo, AsU32(t[0], "nnz bucket lo"));
          WMS_ASSIGN_OR_RETURN(b.hi, AsU32(t[1], "nnz bucket hi"));
          b.mass = t[2];
          p.nnz_histogram.push_back(b);
        }
      } else if (key == "rank_bands") {
        WMS_ASSIGN_OR_RETURN(const auto triples, c.ParseTripleArray());
        for (const auto& t : triples) {
          RankBand b;
          WMS_ASSIGN_OR_RETURN(b.rank_lo, AsU32(t[0], "rank band lo"));
          WMS_ASSIGN_OR_RETURN(b.rank_hi, AsU32(t[1], "rank band hi"));
          b.mass = t[2];
          p.rank_bands.push_back(b);
        }
      } else {
        return Status::InvalidArgument("unknown profile key '" + key + "'");
      }
    } while (c.Accept(','));
    WMS_RETURN_NOT_OK(c.Expect('}'));
  }
  if (!c.AtEnd()) return Status::InvalidArgument("trailing content after profile object");
  if (!saw_dimension) return Status::InvalidArgument("profile missing 'dimension'");
  WMS_RETURN_NOT_OK(p.Validate());
  return p;
}

Result<SparsityProfile> LoadSparsityProfile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open profile '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  Result<SparsityProfile> r = ParseSparsityProfileJson(buf.str());
  if (!r.ok()) {
    return Status(r.status().code(), path + ": " + r.status().message());
  }
  return r;
}

std::string FormatSparsityProfileJson(const SparsityProfile& p) {
  std::ostringstream os;
  os.precision(17);  // double round-trip
  os << "{\n";
  os << "  \"name\": \"" << p.name << "\",\n";
  os << "  \"dimension\": " << p.dimension << ",\n";
  os << "  \"positive_fraction\": " << p.positive_fraction << ",\n";
  os << "  \"binary_values\": " << (p.binary_values ? "true" : "false") << ",\n";
  std::vector<std::array<double, 3>> triples;
  for (const NnzBucket& b : p.nnz_histogram) {
    triples.push_back({static_cast<double>(b.lo), static_cast<double>(b.hi), b.mass});
  }
  AppendTriples(os, "nnz_histogram", triples);
  os << ",\n";
  triples.clear();
  for (const RankBand& b : p.rank_bands) {
    triples.push_back({static_cast<double>(b.rank_lo), static_cast<double>(b.rank_hi), b.mass});
  }
  AppendTriples(os, "rank_bands", triples);
  os << "\n}\n";
  return os.str();
}

Result<SparsityProfile> MeasureSparsityProfile(const std::vector<Example>& examples,
                                               std::string name) {
  SparsityProfile p;
  p.name = std::move(name);

  std::unordered_map<uint32_t, uint64_t> freq;
  uint64_t occurrences = 0;
  uint64_t positives = 0;
  uint32_t max_index = 0;
  uint32_t max_nnz = 0;
  bool binary = true;
  for (const Example& ex : examples) {
    if (ex.y > 0) ++positives;
    max_nnz = std::max(max_nnz, static_cast<uint32_t>(ex.x.nnz()));
    for (size_t i = 0; i < ex.x.nnz(); ++i) {
      ++freq[ex.x.index(i)];
      ++occurrences;
      max_index = std::max(max_index, ex.x.index(i));
      binary = binary && ex.x.value(i) == 1.0f;
    }
  }
  if (occurrences == 0) {
    return Status::InvalidArgument("cannot measure a profile from an all-empty dataset");
  }
  p.dimension = max_index + 1;
  p.positive_fraction = static_cast<double>(positives) / static_cast<double>(examples.size());
  p.binary_values = binary;

  // Geometric nnz buckets [1,1], [2,2], [3,4], [5,8], ... — fine where most
  // of the mass is, coarse in the tail.
  for (uint32_t lo = 1, hi = 1; lo <= max_nnz; lo = hi + 1, hi = 2 * hi) {
    uint64_t count = 0;
    for (const Example& ex : examples) {
      const uint32_t n = static_cast<uint32_t>(ex.x.nnz());
      if (n >= lo && n <= hi) ++count;
    }
    if (count > 0) {
      p.nnz_histogram.push_back(
          {lo, std::min(hi, max_nnz),
           static_cast<double>(count) / static_cast<double>(examples.size())});
    }
  }
  // Empty examples (nnz = 0) carry no occurrences; fold their mass into the
  // smallest bucket so the histogram still sums to 1.
  if (!p.nnz_histogram.empty()) {
    const double sum = MassSum(p.nnz_histogram);
    if (sum < 1.0) p.nnz_histogram.front().mass += 1.0 - sum;
  }

  // Frequency ranks: sort features by descending count, then carve
  // power-of-two bands [0,1), [1,2), [2,4), ...
  std::vector<uint64_t> counts;
  counts.reserve(freq.size());
  for (const auto& [feature, count] : freq) counts.push_back(count);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  for (uint32_t lo = 0, hi = 1; lo < counts.size(); lo = hi, hi = 2 * hi) {
    const uint32_t end = std::min<uint32_t>(hi, static_cast<uint32_t>(counts.size()));
    uint64_t band = 0;
    for (uint32_t r = lo; r < end; ++r) band += counts[r];
    p.rank_bands.push_back(
        {lo, end, static_cast<double>(band) / static_cast<double>(occurrences)});
  }

  WMS_RETURN_NOT_OK(p.Validate());
  return p;
}

SparsityReplayGen::SparsityReplayGen(const SparsityProfile& profile, uint64_t seed)
    : profile_(profile), rng_(seed) {
  double acc = 0.0;
  for (const NnzBucket& b : profile_.nnz_histogram) nnz_cdf_.push_back(acc += b.mass);
  const double nnz_total = acc;
  for (double& c : nnz_cdf_) c /= nnz_total;
  acc = 0.0;
  for (const RankBand& b : profile_.rank_bands) band_cdf_.push_back(acc += b.mass);
  const double band_total = acc;
  for (double& c : band_cdf_) c /= band_total;
}

uint32_t SparsityReplayGen::DrawNnz() {
  const double u = rng_.NextDouble();
  size_t i = std::lower_bound(nnz_cdf_.begin(), nnz_cdf_.end(), u) - nnz_cdf_.begin();
  if (i >= nnz_cdf_.size()) i = nnz_cdf_.size() - 1;
  const NnzBucket& b = profile_.nnz_histogram[i];
  const uint32_t hi = std::min(b.hi, profile_.dimension);
  const uint32_t lo = std::min(b.lo, hi);
  return lo + static_cast<uint32_t>(rng_.Bounded(hi - lo + 1));
}

uint32_t SparsityReplayGen::DrawFeature() {
  const double u = rng_.NextDouble();
  size_t i = std::lower_bound(band_cdf_.begin(), band_cdf_.end(), u) - band_cdf_.begin();
  if (i >= band_cdf_.size()) i = band_cdf_.size() - 1;
  const RankBand& b = profile_.rank_bands[i];
  // Rank → feature id is the identity: replayed id r is the r-th most
  // frequent feature. Uniform within a band — the bands carry the skew.
  return b.rank_lo + static_cast<uint32_t>(rng_.Bounded(b.rank_hi - b.rank_lo));
}

Example SparsityReplayGen::Next() {
  const uint32_t nnz = DrawNnz();
  scratch_features_.clear();
  // Rejection-sample distinct features; nnz <= dimension by DrawNnz's clamp,
  // and real profiles have nnz ≪ dimension so collisions are rare.
  while (scratch_features_.size() < nnz) {
    const uint32_t f = DrawFeature();
    if (std::find(scratch_features_.begin(), scratch_features_.end(), f) ==
        scratch_features_.end()) {
      scratch_features_.push_back(f);
    }
  }
  std::sort(scratch_features_.begin(), scratch_features_.end());
  std::vector<float> values(scratch_features_.size());
  for (float& v : values) {
    if (profile_.binary_values) {
      v = 1.0f;
    } else {
      float m = static_cast<float>(std::fabs(rng_.NextGaussian()));
      if (m == 0.0f) m = 1.0f;  // keep the vector's nnz exact
      v = m;
    }
  }
  const int8_t y = rng_.Bernoulli(profile_.positive_fraction) ? 1 : -1;
  return Example{SparseVector(std::vector<uint32_t>(scratch_features_), std::move(values)), y};
}

}  // namespace wmsketch
