#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/alias.h"
#include "util/random.h"

namespace wmsketch {

/// One synthetic packet observation: the item (IP address id) and which of
/// the two monitored links it crossed.
struct PacketEvent {
  uint32_t ip;
  bool outbound;  // true → stream 1 (positive class), false → stream 2
};

/// Generator of a two-link packet trace with planted *relative deltoids* for
/// the network-monitoring experiments (Fig. 10). Substitutes for the CAIDA
/// OC48 trace (DESIGN.md §4).
///
/// Base per-IP popularity is Zipfian (heavy-tailed address frequencies). A
/// planted subset of IPs has its outbound/inbound occurrence-rate ratio
/// φ(i) = n1(i)/n2(i) multiplied by factors spanning e^±[1.5, 8] in log
/// space, giving a known, seedable ground truth for recall-vs-threshold
/// curves. Each event flips a fair coin for direction and samples from the
/// direction-specific distribution, mirroring concurrent observation of two
/// links (Sec. 8.2).
class PacketTraceGenerator {
 public:
  /// Constructs with `num_ips` addresses, of which `num_deltoids` get
  /// planted ratios. Requires num_deltoids < num_ips.
  PacketTraceGenerator(uint32_t num_ips, uint32_t num_deltoids, uint64_t seed,
                       double zipf_exponent = 1.1);

  /// Draws the next packet event.
  PacketEvent Next();

  uint32_t num_ips() const { return num_ips_; }

  /// The planted log-ratio (log of outbound/inbound rate ratio) per deltoid
  /// IP; absent IPs have log-ratio 0 by construction.
  const std::unordered_map<uint32_t, double>& planted_log_ratios() const {
    return planted_;
  }

  /// True expected log-occurrence-ratio for any IP (0 for non-deltoids).
  double TrueLogRatio(uint32_t ip) const;

 private:
  uint32_t num_ips_;
  Rng rng_;
  std::unordered_map<uint32_t, double> planted_;
  AliasTable outbound_;
  AliasTable inbound_;
};

}  // namespace wmsketch
