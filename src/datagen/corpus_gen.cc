#include "datagen/corpus_gen.h"

#include <algorithm>
#include <cassert>

namespace wmsketch {

CorpusGenerator::CorpusGenerator(uint32_t vocab, uint32_t num_collocations, uint64_t seed,
                                 double zipf_exponent, double mean_doc_length)
    : vocab_(vocab),
      zipf_(vocab, zipf_exponent),
      rng_(seed),
      continue_prob_(1.0 - 1.0 / mean_doc_length) {
  assert(vocab >= 256);
  // Collocation heads come from frequent ranks so the pair accumulates
  // counts at laptop-scale stream lengths and dominates its sketch bucket;
  // tails come from rare ranks so the planted PMI ≈ log(p(u,v)/(p(u)p(v)))
  // is large — like "prime minister" / "los angeles" in the paper's Table 3,
  // where the second token appears mostly inside the collocation.
  Rng plant_rng(seed ^ 0x1d8e4e27c47d124fULL);
  const uint32_t head_lo = vocab / 512 + 8;
  const uint32_t head_hi = head_lo + std::max(4 * num_collocations + 4, vocab / 64);
  const uint32_t tail_lo = vocab / 8;
  const uint32_t tail_hi = vocab / 4;
  std::unordered_map<uint32_t, bool> used;
  while (collocations_.size() < num_collocations) {
    const uint32_t u = head_lo + static_cast<uint32_t>(plant_rng.Bounded(head_hi - head_lo));
    const uint32_t v = tail_lo + static_cast<uint32_t>(plant_rng.Bounded(tail_hi - tail_lo));
    if (u == v || used.count(u) != 0 || used.count(v) != 0) continue;
    used[u] = used[v] = true;
    // Follow probabilities in [0.3, 0.7]: strong but not deterministic.
    const double p = 0.3 + 0.4 * plant_rng.NextDouble();
    head_index_[u] = collocations_.size();
    collocations_.push_back(Collocation{u, v, p});
  }
}

uint32_t CorpusGenerator::Next(bool* document_boundary) {
  bool boundary = at_document_start_;
  at_document_start_ = false;

  uint32_t token;
  if (pending_tail_ != kNone) {
    token = pending_tail_;
    pending_tail_ = kNone;
  } else {
    token = static_cast<uint32_t>(zipf_.Sample(rng_));
    auto it = head_index_.find(token);
    if (it != head_index_.end()) {
      const Collocation& c = collocations_[it->second];
      if (rng_.Bernoulli(c.follow_prob)) pending_tail_ = c.v;
    }
  }

  // Document boundary after this token? (Pending tails never dangle across
  // documents: emit the tail first, then allow a break.)
  if (pending_tail_ == kNone && !rng_.Bernoulli(continue_prob_)) {
    at_document_start_ = true;
  }
  if (document_boundary != nullptr) *document_boundary = boundary;
  return token;
}

}  // namespace wmsketch
