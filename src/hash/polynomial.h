#pragma once

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace wmsketch {

/// k-wise-independent polynomial hashing over the Mersenne prime field
/// GF(2^61 - 1) (Carter & Wegman): h(x) = (c_{k-1} x^{k-1} + ... + c_0) mod p.
///
/// This is the hash family the theoretical analysis assumes (Theorem 1 needs
/// O(log(d/δ))-independence). It is several times slower than tabulation
/// hashing per evaluation — the `bench_ablation_hashing` experiment
/// quantifies the trade-off the paper's Appendix B alludes to.
class PolynomialHash {
 public:
  /// Mersenne prime 2^61 - 1 used as the field modulus.
  static constexpr uint64_t kPrime = (1ULL << 61) - 1;

  /// Constructs a k-wise independent hash with random coefficients drawn
  /// from `seed`. Requires independence >= 1.
  PolynomialHash(uint64_t seed, uint32_t independence);

  /// Evaluates the polynomial at `key`, returning a value in [0, 2^61 - 1).
  uint64_t Hash(uint32_t key) const {
    uint64_t acc = coeffs_[0];
    const uint64_t x = key;
    for (size_t i = 1; i < coeffs_.size(); ++i) {
      acc = ModMulAdd(acc, x, coeffs_[i]);
    }
    return acc;
  }

  /// Degree of independence (number of coefficients).
  uint32_t independence() const { return static_cast<uint32_t>(coeffs_.size()); }

 private:
  // Returns (a * b + c) mod kPrime using 128-bit intermediates and the
  // Mersenne-prime fold (x mod 2^61-1 == (x >> 61) + (x & p), one more fold).
  static uint64_t ModMulAdd(uint64_t a, uint64_t b, uint64_t c) {
    __uint128_t t = static_cast<__uint128_t>(a) * b + c;
    uint64_t lo = static_cast<uint64_t>(t & kPrime);
    uint64_t hi = static_cast<uint64_t>(t >> 61);
    uint64_t r = lo + hi;
    if (r >= kPrime) r -= kPrime;
    return r;
  }

  std::vector<uint64_t> coeffs_;  // coeffs_[0] is the constant term.
};

/// A SignedBucketHash-compatible row hash built on PolynomialHash, for the
/// hashing ablation. `width` must be a power of two.
class PolynomialBucketHash {
 public:
  PolynomialBucketHash(uint64_t seed, uint32_t width, uint32_t independence)
      : poly_(seed, independence), mask_(width - 1) {}

  uint32_t Bucket(uint32_t key) const { return static_cast<uint32_t>(poly_.Hash(key)) & mask_; }

  float Sign(uint32_t key) const { return ((poly_.Hash(key) >> 32) & 1) != 0 ? 1.0f : -1.0f; }

  void BucketAndSign(uint32_t key, uint32_t* bucket, float* sign) const {
    const uint64_t h = poly_.Hash(key);
    *bucket = static_cast<uint32_t>(h) & mask_;
    *sign = ((h >> 32) & 1) != 0 ? 1.0f : -1.0f;
  }

  uint32_t width() const { return mask_ + 1; }

 private:
  PolynomialHash poly_;
  uint32_t mask_;
};

/// Stable 64->64 bit mixer (the SplitMix64 finalizer), used to flatten packed
/// pair keys into well-distributed ids.
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Packs an ordered token pair into the 64-bit key space used by the PMI
/// estimator's bigram features, then mixes to a 32-bit feature id.
inline uint32_t PairFeatureId(uint32_t u, uint32_t v) {
  const uint64_t packed = (static_cast<uint64_t>(u) << 32) | v;
  return static_cast<uint32_t>(Mix64(packed));
}

}  // namespace wmsketch
