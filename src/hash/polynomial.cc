#include "hash/polynomial.h"

#include <cassert>

namespace wmsketch {

PolynomialHash::PolynomialHash(uint64_t seed, uint32_t independence) {
  assert(independence >= 1);
  SplitMix64 sm(seed);
  coeffs_.resize(independence);
  for (auto& c : coeffs_) {
    // Uniform in [0, kPrime); rejection keeps the family exactly k-wise
    // independent over the field.
    uint64_t v;
    do {
      v = sm.Next() & ((1ULL << 61) - 1);
    } while (v >= kPrime);
    c = v;
  }
  // The leading coefficient may be zero without breaking k-independence of
  // the family; no special-casing needed.
}

}  // namespace wmsketch
