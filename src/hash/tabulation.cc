#include "hash/tabulation.h"

namespace wmsketch {

TabulationHash::TabulationHash(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& table : tables_) {
    for (auto& cell : table) cell = sm.Next();
  }
}

}  // namespace wmsketch
