#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wmsketch {

/// MurmurHash3 (Austin Appleby's public-domain algorithm), reimplemented
/// from the specification. The paper's pipeline (Sec. 8.3) hashes strings to
/// 32-bit feature identifiers with MurmurHash3 before sketching; we use it
/// for the same purpose (token and attribute interning) and for seeding.
///
/// x86_32 variant: returns a 32-bit hash of `data[0..len)` under `seed`.
uint32_t Murmur3_x86_32(const void* data, size_t len, uint32_t seed);

/// x64_128 variant: writes a 128-bit hash of `data[0..len)` into `out[2]`.
void Murmur3_x64_128(const void* data, size_t len, uint32_t seed, uint64_t out[2]);

/// Convenience: 32-bit hash of a string.
inline uint32_t Murmur3String(std::string_view s, uint32_t seed = 0) {
  return Murmur3_x86_32(s.data(), s.size(), seed);
}

/// Convenience: 64-bit finalizer-style hash of a 64-bit key (the fmix64
/// finalizer, usable as a fast standalone integer mixer).
uint64_t Murmur3Fmix64(uint64_t key);

}  // namespace wmsketch
