#pragma once

#include <array>
#include <cstdint>

#include "util/random.h"

namespace wmsketch {

#ifdef WMS_HASH_STATS
/// Per-thread count of tabulation-hash evaluations, compiled in only under
/// -DWMS_HASH_STATS=ON. bench_hot_path and hash_plan_test read (and reset)
/// it to verify the single-hash invariant: one evaluation per (feature, row)
/// pair per update, i.e. exactly nnz×depth.
inline thread_local uint64_t g_hash_evaluations = 0;
#endif

/// 3-wise-independent tabulation hashing over 32-bit keys (Appendix B).
///
/// The key is split into four bytes; each byte indexes a table of 256 random
/// 64-bit words whose XOR is the hash. Simple tabulation is 3-independent
/// and, by Pătraşcu–Thorup, behaves like full independence for hashing-based
/// sketches — which is why the paper's implementation uses it instead of the
/// O(log(d/δ))-independent polynomial hashes assumed by the theory. A single
/// 64-bit output supplies both the bucket index (low bits) and the ±1 sign
/// (a high bit), so each (row, feature) pair costs one table-walk.
class TabulationHash {
 public:
  /// Constructs the hash by filling the 4×256 tables from `seed`.
  explicit TabulationHash(uint64_t seed);

  /// 64-bit hash of a 32-bit key.
  uint64_t Hash(uint32_t key) const {
#ifdef WMS_HASH_STATS
    ++g_hash_evaluations;
#endif
    return tables_[0][key & 0xff] ^ tables_[1][(key >> 8) & 0xff] ^
           tables_[2][(key >> 16) & 0xff] ^ tables_[3][(key >> 24) & 0xff];
  }

 private:
  std::array<std::array<uint64_t, 256>, 4> tables_;
};

/// One hash row of a Count-Sketch-style structure: maps a feature id to a
/// bucket in [0, width) and a sign in {-1, +1}, both derived from a single
/// tabulation hash evaluation. `width` must be a power of two.
class SignedBucketHash {
 public:
  /// Constructs a row hash with its own tabulation tables. Requires `width`
  /// to be a power of two (enforced by the sketches that own rows).
  SignedBucketHash(uint64_t seed, uint32_t width)
      : tab_(seed), mask_(width - 1) {}

  /// Bucket index in [0, width).
  uint32_t Bucket(uint32_t key) const { return static_cast<uint32_t>(tab_.Hash(key)) & mask_; }

  /// Sign in {-1.0f, +1.0f}, taken from bit 32 of the hash so it is
  /// independent of the low bucket bits for any width <= 2^32.
  float Sign(uint32_t key) const {
    return ((tab_.Hash(key) >> 32) & 1) != 0 ? 1.0f : -1.0f;
  }

  /// Bucket and sign from a single hash evaluation (the hot path).
  void BucketAndSign(uint32_t key, uint32_t* bucket, float* sign) const {
    const uint64_t h = tab_.Hash(key);
    *bucket = static_cast<uint32_t>(h) & mask_;
    *sign = ((h >> 32) & 1) != 0 ? 1.0f : -1.0f;
  }

  uint32_t width() const { return mask_ + 1; }

 private:
  TabulationHash tab_;
  uint32_t mask_;
};

}  // namespace wmsketch
