#include "sketch/count_sketch.h"

#include <cassert>
#include <cmath>

#include "util/math.h"
#include "util/random.h"
#include "util/simd.h"

namespace wmsketch {

CountSketch::CountSketch(uint32_t width, uint32_t depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  assert(IsPowerOfTwo(width));
  assert(depth >= 1 && depth <= kMaxDepth);
  SplitMix64 sm(seed);
  rows_.reserve(depth);
  for (uint32_t j = 0; j < depth; ++j) rows_.emplace_back(sm.Next(), width);
  table_ = PagedTable(static_cast<size_t>(width) * depth);
}

void CountSketch::Update(uint32_t key, float delta) {
  for (uint32_t j = 0; j < depth_; ++j) {
    uint32_t bucket;
    float sign;
    rows_[j].BucketAndSign(key, &bucket, &sign);
    table_.MarkDirtyOffset(static_cast<size_t>(j) * width_ + bucket);
    Row(j)[bucket] += sign * delta;
  }
}

float CountSketch::Query(uint32_t key) const {
  float est[kMaxDepth];
  for (uint32_t j = 0; j < depth_; ++j) {
    uint32_t bucket;
    float sign;
    rows_[j].BucketAndSign(key, &bucket, &sign);
    est[j] = sign * Row(j)[bucket];
  }
  return MedianInPlace(est, depth_);
}

float CountSketch::UpdateAndQuery(uint32_t key, float delta) {
  // The streaming maintain-and-read pattern (add, then estimate) with one
  // hash evaluation per row instead of Update's plus Query's.
  float est[kMaxDepth];
  for (uint32_t j = 0; j < depth_; ++j) {
    uint32_t bucket;
    float sign;
    rows_[j].BucketAndSign(key, &bucket, &sign);
    table_.MarkDirtyOffset(static_cast<size_t>(j) * width_ + bucket);
    float& cell = Row(j)[bucket];
    cell += sign * delta;
    est[j] = sign * cell;
  }
  return MedianInPlace(est, depth_);
}

Status CountSketch::Merge(const CountSketch& other) {
  WMS_RETURN_NOT_OK(CheckMergeCompatible("count-sketch",
                                         SketchShape{width_, depth_, seed_},
                                         SketchShape{other.width_, other.depth_, other.seed_}));
  table_.MarkAllDirty();
  simd::MergeScaledTable(table_.data(), other.table_.data(), table_.size(), 1.0);
  return Status::OK();
}

void CountSketch::Scale(float factor) {
  table_.MarkAllDirty();
  simd::ScaleTable(table_.data(), table_.size(), factor);
}

void CountSketch::Clear() { table_.Fill(0.0f); }

double CountSketch::TableL2Norm() const {
  return std::sqrt(simd::L2NormSquared(table_.data(), table_.size()));
}

}  // namespace wmsketch
