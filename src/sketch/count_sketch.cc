#include "sketch/count_sketch.h"

#include <cassert>

#include "util/math.h"
#include "util/random.h"

namespace wmsketch {

CountSketch::CountSketch(uint32_t width, uint32_t depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  assert(IsPowerOfTwo(width));
  assert(depth >= 1 && depth <= kMaxDepth);
  SplitMix64 sm(seed);
  rows_.reserve(depth);
  for (uint32_t j = 0; j < depth; ++j) rows_.emplace_back(sm.Next(), width);
  table_.assign(static_cast<size_t>(width) * depth, 0.0f);
}

void CountSketch::Update(uint32_t key, float delta) {
  for (uint32_t j = 0; j < depth_; ++j) {
    uint32_t bucket;
    float sign;
    rows_[j].BucketAndSign(key, &bucket, &sign);
    Row(j)[bucket] += sign * delta;
  }
}

float CountSketch::Query(uint32_t key) const {
  float est[kMaxDepth];
  for (uint32_t j = 0; j < depth_; ++j) {
    uint32_t bucket;
    float sign;
    rows_[j].BucketAndSign(key, &bucket, &sign);
    est[j] = sign * Row(j)[bucket];
  }
  return MedianInPlace(est, depth_);
}

Status CountSketch::Merge(const CountSketch& other) {
  WMS_RETURN_NOT_OK(CheckMergeCompatible("count-sketch",
                                         SketchShape{width_, depth_, seed_},
                                         SketchShape{other.width_, other.depth_, other.seed_}));
  for (size_t i = 0; i < table_.size(); ++i) table_[i] += other.table_[i];
  return Status::OK();
}

void CountSketch::Scale(float factor) {
  for (float& v : table_) v *= factor;
}

void CountSketch::Clear() { table_.assign(table_.size(), 0.0f); }

double CountSketch::TableL2Norm() const { return L2Norm(table_); }

}  // namespace wmsketch
