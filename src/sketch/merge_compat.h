#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace wmsketch {

/// The structural identity of a signed-hash sketch table for merge purposes:
/// two tables can be summed iff their projection matrices are equal, which
/// holds exactly when width, depth, and the seed the row hashes were derived
/// from all match. Shared by CountSketch::Merge, WmSketch::Merge, and
/// AwmSketch::Merge so every merge path rejects mismatches identically.
struct SketchShape {
  uint32_t width = 0;
  uint32_t depth = 0;
  uint64_t seed = 0;
};

/// Checks that two sketch shapes are merge-compatible. Returns OK when they
/// agree; otherwise InvalidArgument naming `kind` (e.g. "count-sketch") and
/// the first mismatching dimension.
inline Status CheckMergeCompatible(const std::string& kind, const SketchShape& a,
                                   const SketchShape& b) {
  if (a.width != b.width) {
    return Status::InvalidArgument(kind + " merge: width mismatch (" +
                                   std::to_string(a.width) + " vs " +
                                   std::to_string(b.width) + ")");
  }
  if (a.depth != b.depth) {
    return Status::InvalidArgument(kind + " merge: depth mismatch (" +
                                   std::to_string(a.depth) + " vs " +
                                   std::to_string(b.depth) + ")");
  }
  if (a.seed != b.seed) {
    return Status::InvalidArgument(kind + " merge: seed mismatch (" +
                                   std::to_string(a.seed) + " vs " +
                                   std::to_string(b.seed) +
                                   "); hash rows differ, tables cannot be summed");
  }
  return Status::OK();
}

/// Companion check for the sketches that pair their table with a tracked-set
/// structure (the WM top-K heap, the AWM active set): rebuilding the merged
/// structure requires equal capacities. `what` names the structure in the
/// error ("heap capacity", "active-set capacity").
inline Status CheckCapacityCompatible(const std::string& kind, const std::string& what,
                                      size_t a, size_t b) {
  if (a != b) {
    return Status::InvalidArgument(kind + " merge: " + what + " mismatch (" +
                                   std::to_string(a) + " vs " + std::to_string(b) + ")");
  }
  return Status::OK();
}

}  // namespace wmsketch
