#pragma once

// Shared batched *read* kernels: the prediction/point-query mirror of the
// batched update path. Both the live classifiers (Learner::PredictBatch /
// EstimateBatch on WM, AWM, and feature hashing) and the frozen serving
// models (src/engine/serving.h) answer batched queries through these, so the
// two paths cannot drift apart.
//
// The single-hash invariant holds exactly as on the write side: a batched
// margin hashes every (feature, row) pair of the batch once into the
// per-thread plan arena (cross-example table prefetch included), and a
// batched point query hashes every (key, row) pair once into the per-thread
// plan, prefetches, runs ONE wide signed gather over all entries, and takes
// the per-key medians from the gathered buffer. No allocation on the steady
// state: the TLS plan/arena buffers only ever grow.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/budget.h"
#include "hash/tabulation.h"
#include "sketch/hash_plan.h"
#include "stream/sparse_vector.h"
#include "util/math.h"
#include "util/paged_table.h"
#include "util/simd.h"

namespace wmsketch::readpath {

/// The fused one-pass margin Σᵢ xᵢ·Σⱼ σⱼ(i)·table[hⱼ(i)] · factor — hash,
/// read, and accumulate per feature with nothing materialized. This is the
/// single-hash optimum for a read-only margin when there is no gather
/// vectorization to feed (unlike updates, a predict has no scatter/heap
/// stage to reuse the hashes, so a plan buffer is pure overhead on the
/// scalar path). Bit-identical to PlanMargin over the same pairs.
inline double FusedMargin(const float* table, std::span<const SignedBucketHash> rows,
                          const SparseVector& x, double factor) {
  double acc = 0.0;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    double per_feature = 0.0;
    for (size_t j = 0; j < rows.size(); ++j) {
      uint32_t bucket;
      float sign;
      rows[j].BucketAndSign(feature, &bucket, &sign);
      per_feature += static_cast<double>(sign) *
                     static_cast<double>(table[j * rows[j].width() + bucket]);
    }
    acc += per_feature * static_cast<double>(x.value(i));
  }
  return factor * acc;
}

/// The fused single-key point estimate float(factor · median_j(σ_j(key)·
/// table[h_j(key)])): hash, read, and take the median with nothing
/// materialized — the one definition of a sketch point query that the live
/// classifiers' frozen read models and the batched fallback below all
/// share, so the "frozen answers == live answers" bit-identity cannot
/// drift copy by copy.
inline float FusedEstimate(const float* table, std::span<const SignedBucketHash> rows,
                           uint32_t key, double factor) {
  float est[kMaxSketchDepth];  // rows.size() never exceeds it (Validate())
  for (size_t j = 0; j < rows.size(); ++j) {
    uint32_t bucket;
    float sign;
    rows[j].BucketAndSign(key, &bucket, &sign);
    est[j] = sign * table[j * rows[j].width() + bucket];
  }
  return static_cast<float>(factor *
                            static_cast<double>(MedianInPlace(est, rows.size())));
}

/// Batched plan-driven margins: out[e] = factor · margin(batch[e]) —
/// bit-identical to the fused per-example PredictMargin loop (PlanMargin
/// keeps the seed evaluation order). With the AVX2 gathers dispatched, the
/// whole batch is hashed up front and example e+1's table cells are
/// prefetched while example e accumulates; on the scalar path the plan
/// buffer round-trip only costs (there is no second consumer of the hashes
/// on a read), so each example runs the fused loop instead.
inline void PlanMarginBatch(const float* table, std::span<const SignedBucketHash> rows,
                            std::span<const Example> batch, double factor, double* out) {
  if (batch.empty()) return;
  if (!simd::ReadPlanDispatched(batch[0].x.nnz() * rows.size())) {
    for (size_t e = 0; e < batch.size(); ++e) {
      out[e] = FusedMargin(table, rows, batch[e].x, factor);
    }
    return;
  }
  HashPlanArena& arena = TlsArena();
  arena.Build(rows, batch);
  for (size_t e = 0; e < batch.size(); ++e) {
    if (e + 1 < batch.size()) arena.PrefetchTable(table, e + 1);
    out[e] = factor * simd::PlanMargin(table, arena.View(e), batch[e].x.values().data(),
                                       arena.scratch());
  }
}

/// Batched sketch point estimates: out[i] = float(factor · median_j(σ_j(kᵢ)·
/// table[h_j(kᵢ)])) — bit-identical to the per-key RawMedian/SketchQuery
/// loop. With depth ≥ 2 and the AVX2 gathers dispatched, all keys are
/// hashed once, prefetched, and read by one wide gather, with network
/// (depth ≤ 7) or rank-selection (depth ≥ 8) medians taken from the
/// gathered buffer. Depth-1 "medians" are single cells (hash + multiply),
/// and without vector gathers the plan round-trip is pure overhead — both
/// cases run the fused per-key loop.
inline void GatherMedianBatch(const float* table, std::span<const SignedBucketHash> rows,
                              std::span<const uint32_t> keys, double factor, float* out) {
  if (keys.empty()) return;
  if (rows.size() == 1 || !simd::ReadPlanDispatched(keys.size() * rows.size())) {
    for (size_t i = 0; i < keys.size(); ++i) {
      out[i] = FusedEstimate(table, rows, keys[i], factor);
    }
    return;
  }
  HashPlan& plan = TlsPlan();
  plan.BuildKeys(rows, keys);
  plan.PrefetchTable(table);
  const simd::PlanView view = plan.View();
  const uint32_t depth = view.depth;
  if (depth <= 7 && simd::FusedMedianDispatched(keys.size())) {
    // Register-resident route: gathered lanes never round-trip through
    // scratch; the sorting networks run in-register on 8 keys at a time.
    // Bit-identical to the scratch route below.
    simd::GatherMedianFused(table, view.offsets, view.signs, keys.size(), depth,
                            factor, out);
    return;
  }
  float* gathered = plan.scratch();
  simd::GatherSigned(table, view.offsets, view.signs, view.entries(), gathered);
  for (size_t i = 0; i < keys.size(); ++i) {
    out[i] = static_cast<float>(
        factor * static_cast<double>(MedianInPlace(gathered + i * depth, depth)));
  }
}

// ------------------------------------------------------------ paged reads
//
// The frozen read models published by the serving layer hold refcounted
// table *pages* (util/paged_table.h) instead of a flat copy, so their read
// paths resolve cells through a PagedView: table[off] becomes
// pages[off >> shift][off & mask]. Everything else — hash evaluation order,
// per-feature double accumulation, median networks — is the flat kernels'
// code verbatim, so a paged frozen model answers bit-identically to the live
// flat model it was captured from. Batched paged reads have their own wide
// route: GatherSignedPaged walks the page-pointer indirection in registers
// (vpgatherqq for the page pointers, vpgatherqps through the resulting
// absolute addresses), so frozen snapshots ride the same plan/gather path as
// flat tables when simd::PagedReadPlanDispatched approves — a separately
// calibrated decision, because the dependent-gather chain shifts the
// crossover (see simd::KernelThresholds::paged_gather_min_entries). Without
// that approval the fused per-key/per-example loops below remain the route,
// and either way the answers are bit-identical.

/// FusedMargin over a paged snapshot — bit-identical to FusedMargin on a
/// flat copy of the same cells.
inline double FusedMarginPaged(const PagedView<float>& table,
                               std::span<const SignedBucketHash> rows,
                               const SparseVector& x, double factor) {
  double acc = 0.0;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    double per_feature = 0.0;
    for (size_t j = 0; j < rows.size(); ++j) {
      uint32_t bucket;
      float sign;
      rows[j].BucketAndSign(feature, &bucket, &sign);
      per_feature += static_cast<double>(sign) *
                     static_cast<double>(table.At(j * rows[j].width() + bucket));
    }
    acc += per_feature * static_cast<double>(x.value(i));
  }
  return factor * acc;
}

/// FusedEstimate over a paged snapshot — bit-identical to the flat kernel.
inline float FusedEstimatePaged(const PagedView<float>& table,
                                std::span<const SignedBucketHash> rows, uint32_t key,
                                double factor) {
  float est[kMaxSketchDepth];
  for (size_t j = 0; j < rows.size(); ++j) {
    uint32_t bucket;
    float sign;
    rows[j].BucketAndSign(key, &bucket, &sign);
    est[j] = sign * table.At(j * rows[j].width() + bucket);
  }
  return static_cast<float>(factor *
                            static_cast<double>(MedianInPlace(est, rows.size())));
}

/// Batched paged margins — the paged mirror of PlanMarginBatch. With the
/// paged plan route dispatched, the batch is hashed up front, example e+1's
/// cells are prefetched through the page pointers while example e
/// accumulates, and PlanMarginPaged runs the page-walk gather; otherwise the
/// fused loop per example. Bit-identical either way.
inline void MarginBatchPaged(const PagedView<float>& table,
                             std::span<const SignedBucketHash> rows,
                             std::span<const Example> batch, double factor,
                             double* out) {
  if (batch.empty()) return;
  if (!simd::PagedReadPlanDispatched(batch[0].x.nnz() * rows.size())) {
    for (size_t e = 0; e < batch.size(); ++e) {
      out[e] = FusedMarginPaged(table, rows, batch[e].x, factor);
    }
    return;
  }
  HashPlanArena& arena = TlsArena();
  arena.Build(rows, batch);
  for (size_t e = 0; e < batch.size(); ++e) {
    if (e + 1 < batch.size()) {
      arena.PrefetchTablePaged(table.pages, table.shift, table.mask, e + 1);
    }
    out[e] = factor * simd::PlanMarginPaged(table.pages, table.shift, table.mask,
                                            arena.View(e), batch[e].x.values().data(),
                                            arena.scratch());
  }
}

/// Batched paged point estimates — the paged mirror of GatherMedianBatch:
/// fused per-key loop unless the paged plan route is dispatched, in which
/// case one wide page-walk gather (register-resident medians when depth ≤ 7
/// and the fused-median calibration approves, scratch + networks otherwise).
inline void EstimateBatchPaged(const PagedView<float>& table,
                               std::span<const SignedBucketHash> rows,
                               std::span<const uint32_t> keys, double factor,
                               float* out) {
  if (keys.empty()) return;
  if (rows.size() == 1 || !simd::PagedReadPlanDispatched(keys.size() * rows.size())) {
    for (size_t i = 0; i < keys.size(); ++i) {
      out[i] = FusedEstimatePaged(table, rows, keys[i], factor);
    }
    return;
  }
  HashPlan& plan = TlsPlan();
  plan.BuildKeys(rows, keys);
  plan.PrefetchTablePaged(table.pages, table.shift, table.mask);
  const simd::PlanView view = plan.View();
  const uint32_t depth = view.depth;
  if (depth <= 7 && simd::FusedMedianDispatched(keys.size())) {
    simd::GatherMedianFusedPaged(table.pages, table.shift, table.mask, view.offsets,
                                 view.signs, keys.size(), depth, factor, out);
    return;
  }
  float* gathered = plan.scratch();
  simd::GatherSignedPaged(table.pages, table.shift, table.mask, view.offsets,
                          view.signs, view.entries(), gathered);
  for (size_t i = 0; i < keys.size(); ++i) {
    out[i] = static_cast<float>(
        factor * static_cast<double>(MedianInPlace(gathered + i * depth, depth)));
  }
}

/// EstimateBatchPaged with an exact active set in front of the tail sketch
/// (the frozen AWM): active hits answer exactly, the rest batch through the
/// paged tail path (so sketch-tail misses reach the page-walk gather route
/// instead of degenerating to per-key fused loops). TLS scratch, no
/// steady-state allocation.
template <typename ActiveLookup>
inline void ActiveEstimateBatchPaged(const PagedView<float>& table,
                                     std::span<const SignedBucketHash> rows,
                                     std::span<const uint32_t> keys, double factor,
                                     ActiveLookup&& lookup, float* out) {
  thread_local std::vector<uint32_t> tail_keys;
  thread_local std::vector<uint32_t> tail_pos;
  thread_local std::vector<float> tail_out;
  tail_keys.clear();
  tail_pos.clear();
  for (size_t i = 0; i < keys.size(); ++i) {
    const std::optional<float> exact = lookup(keys[i]);
    if (exact.has_value()) {
      out[i] = *exact;
    } else {
      tail_keys.push_back(keys[i]);
      tail_pos.push_back(static_cast<uint32_t>(i));
    }
  }
  if (tail_keys.empty()) return;
  tail_out.resize(tail_keys.size());
  EstimateBatchPaged(table, rows, tail_keys, factor, tail_out.data());
  for (size_t k = 0; k < tail_keys.size(); ++k) out[tail_pos[k]] = tail_out[k];
}

/// GatherMedianBatch for models with an exact active set in front of the
/// sketch (the AWM): keys resolved by `lookup` (returning the exact
/// true-scale weight, or no value) answer from it, the rest batch through
/// the gathered-median tail path. TLS scratch, no steady-state allocation.
template <typename ActiveLookup>
inline void ActiveGatherMedianBatch(const float* table,
                                    std::span<const SignedBucketHash> rows,
                                    std::span<const uint32_t> keys, double factor,
                                    ActiveLookup&& lookup, float* out) {
  thread_local std::vector<uint32_t> tail_keys;
  thread_local std::vector<uint32_t> tail_pos;
  thread_local std::vector<float> tail_out;
  tail_keys.clear();
  tail_pos.clear();
  for (size_t i = 0; i < keys.size(); ++i) {
    const std::optional<float> exact = lookup(keys[i]);
    if (exact.has_value()) {
      out[i] = *exact;
    } else {
      tail_keys.push_back(keys[i]);
      tail_pos.push_back(static_cast<uint32_t>(i));
    }
  }
  if (tail_keys.empty()) return;
  tail_out.resize(tail_keys.size());
  GatherMedianBatch(table, rows, tail_keys, factor, tail_out.data());
  for (size_t k = 0; k < tail_keys.size(); ++k) out[tail_pos[k]] = tail_out[k];
}

}  // namespace wmsketch::readpath
