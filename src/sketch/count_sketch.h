#pragma once

#include <cstdint>
#include <vector>

#include "hash/tabulation.h"
#include "sketch/merge_compat.h"
#include "util/memory_cost.h"
#include "util/paged_table.h"

namespace wmsketch {

/// Count-Sketch (Charikar, Chen & Farach-Colton 2002): a linear projection of
/// a d-dimensional vector into `depth` rows of `width` buckets that supports
/// unbiased point estimates of any coordinate via a median over rows.
///
/// With width Θ(1/ε²) and depth Θ(log(d/δ)), point estimates satisfy
/// |x̂ᵢ − xᵢ| ≤ ε‖x‖₂ with probability 1−δ (Lemma 1 in the paper). The
/// WM-Sketch (Algorithm 1) reuses exactly this bucket/sign structure but
/// pushes gradient updates instead of count increments through it; keeping a
/// standalone Count-Sketch lets the tests assert that equivalence and serves
/// the frequency-based baselines.
class CountSketch {
 public:
  /// Maximum supported depth (rows); queries use a fixed scratch buffer.
  static constexpr uint32_t kMaxDepth = 64;

  /// Constructs a sketch with `depth` independent rows of `width` buckets.
  /// Requires: width a power of two, 1 <= depth <= kMaxDepth. Row hash
  /// functions are derived deterministically from `seed`.
  CountSketch(uint32_t width, uint32_t depth, uint64_t seed);

  /// Adds `delta` to coordinate `key` of the sketched vector.
  void Update(uint32_t key, float delta);

  /// Median-of-rows point estimate of coordinate `key`.
  float Query(uint32_t key) const;

  /// Update followed by Query, hashing each row once instead of twice —
  /// the hot pattern of streaming estimate maintenance. Bit-identical to
  /// Update(key, delta); Query(key).
  float UpdateAndQuery(uint32_t key, float delta);

  /// Adds another sketch into this one. Count-Sketch is linear, so the
  /// merged sketch equals the sketch of the summed vectors. Returns
  /// InvalidArgument (and leaves this sketch unchanged) unless both were
  /// constructed with identical (width, depth, seed) — the condition for the
  /// projection matrices to be equal.
  Status Merge(const CountSketch& other);

  /// Multiplies every bucket by `factor` (linearity in the scalar).
  void Scale(float factor);

  /// Resets all buckets to zero.
  void Clear();

  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }
  uint64_t seed() const { return seed_; }
  /// Total number of counters.
  size_t cells() const { return table_.size(); }
  /// Cost under the Sec. 7.1 model: 4 bytes per counter.
  size_t MemoryCostBytes() const { return TableBytes(table_.size()); }

  /// Publishes the current table as an immutable shared page set (copying
  /// only pages dirtied since the last publication) — the O(dirty) snapshot
  /// primitive of the paged storage layer. Writer-thread only.
  PageSet<float> SharePages() const { return table_.SharePages(); }
  /// Cumulative publication counters of the paged storage.
  const TablePublishStats& publish_stats() const { return table_.publish_stats(); }

  /// L2 norm of the raw table (diagnostics / tests).
  double TableL2Norm() const;

 private:
  float* Row(uint32_t j) { return table_.data() + static_cast<size_t>(j) * width_; }
  const float* Row(uint32_t j) const { return table_.data() + static_cast<size_t>(j) * width_; }

  uint32_t width_;
  uint32_t depth_;
  uint64_t seed_;
  std::vector<SignedBucketHash> rows_;
  PagedTable table_;  // depth_ * width_ counters, row-major live arena
};

}  // namespace wmsketch
