#pragma once

#include <cstdint>
#include <vector>

#include "util/indexed_heap.h"
#include "util/memory_cost.h"
#include "util/status.h"

namespace wmsketch {

/// An item tracked by the Space-Saving summary: estimated count and the
/// maximum possible overestimate (the count the slot had when the item
/// claimed it).
struct SpaceSavingEntry {
  uint32_t item;
  uint64_t count;
  uint64_t error;
};

/// Space-Saving heavy-hitters summary (Metwally, Agrawal & El Abbadi 2005).
///
/// Maintains exactly `capacity` monitored (item, count, error) triples; an
/// unmonitored arrival evicts the minimum-count item and inherits its count
/// as both estimate floor and error bound. Guarantees: estimated count is in
/// [true, true + T/capacity], and every item with true count > T/capacity is
/// monitored. This is the frequent-feature filter used by the "SS" classifier
/// baseline (Sec. 7) and the MacroBase-style heavy-hitter explainer the paper
/// compares against in Sec. 8.1.
class SpaceSaving {
 public:
  /// Constructs a summary monitoring at most `capacity` items (>= 1).
  explicit SpaceSaving(size_t capacity) : capacity_(capacity) {}

  /// Observes one occurrence of `item`. Returns the item that was evicted to
  /// make room, or a sentinel (kNoEviction) if none was.
  static constexpr uint32_t kNoEviction = 0xffffffffu;
  uint32_t Update(uint32_t item, uint64_t increment = 1);

  /// True iff `item` currently occupies a monitored slot.
  bool Contains(uint32_t item) const { return heap_.Contains(item); }

  /// Estimated count (upper bound) for `item`; 0 if unmonitored.
  uint64_t EstimateCount(uint32_t item) const;

  /// Maximum overestimation for a monitored item; 0 if unmonitored.
  uint64_t ErrorBound(uint32_t item) const;

  /// All monitored entries, sorted by descending estimated count.
  std::vector<SpaceSavingEntry> Entries() const;

  /// All monitored entries in internal heap-array order (snapshot-save
  /// support: RestoreEntries preserves this order exactly, because eviction
  /// tie-breaking among equal counts depends on it).
  std::vector<SpaceSavingEntry> RawEntries() const;

  /// Items whose guaranteed count (estimate - error) exceeds
  /// `threshold_fraction * TotalCount()` — no false positives; plus items
  /// whose estimate exceeds it — no false negatives (set `guaranteed` to
  /// choose which side of the guarantee you want).
  std::vector<SpaceSavingEntry> HeavyHitters(double threshold_fraction, bool guaranteed) const;

  /// Replaces the summary's state with serialized entries (snapshot-restore
  /// support): the (item, count, error) triples are installed in the given
  /// order as the internal heap array (pass a RawEntries() sequence), and
  /// the observed stream length is set. Returns InvalidArgument for more
  /// entries than capacity, duplicate items, or a non-heap-ordered
  /// sequence.
  Status RestoreEntries(const std::vector<SpaceSavingEntry>& entries, uint64_t total);

  size_t capacity() const { return capacity_; }
  size_t size() const { return heap_.size(); }
  /// Total stream length observed.
  uint64_t TotalCount() const { return total_; }
  /// Cost under the Sec. 7.1 model: id + count + error per slot.
  size_t MemoryCostBytes() const { return HeapBytes(capacity_, /*aux_per_entry=*/1); }

 private:
  size_t capacity_;
  uint64_t total_ = 0;
  // priority = estimated count; value = error (stored as float; exact for
  // the laptop-scale streams in this repo and irrelevant to the guarantees).
  IndexedMinHeap heap_;
};

}  // namespace wmsketch
