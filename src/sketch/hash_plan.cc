#include "sketch/hash_plan.h"

namespace wmsketch {

float* HashPlan::scratch() const {
  const size_t need = nnz_ * depth_;
  if (scratch_.size() < need) scratch_.resize(need);
  return scratch_.data();
}

float* HashPlanArena::scratch() const {
  if (scratch_.size() < max_entries_) scratch_.resize(max_entries_);
  return scratch_.data();
}

HashPlan& TlsPlan() {
  static thread_local HashPlan plan;
  return plan;
}

HashPlanArena& TlsArena() {
  static thread_local HashPlanArena arena;
  return arena;
}

}  // namespace wmsketch
