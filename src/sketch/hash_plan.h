#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "hash/tabulation.h"
#include "stream/sparse_vector.h"
#include "util/simd.h"

namespace wmsketch {

/// Sentinel first-offset of a lazy-plan slot that has not been filled yet
/// (see InitLazy/FillSlot): the AWM-Sketch hashes slots on first sketch
/// touch, and active-set members — whose weights never touch the sketch
/// table — are never filled. A real offset can never collide with it (it
/// would imply a 16 GiB table).
inline constexpr uint32_t kPlanNoEntry = 0xffffffffu;

namespace detail {

/// Appends one example's nnz × depth plan entries to the SoA buffers — the
/// single point where the eager hot path evaluates the row hashes: exactly
/// one BucketAndSign per (feature, row) pair.
inline void AppendPlanEntries(std::span<const SignedBucketHash> rows,
                              const SparseVector& x, std::vector<uint32_t>& offsets,
                              std::vector<float>& signs) {
  const uint32_t depth = static_cast<uint32_t>(rows.size());
  const size_t base = offsets.size();
  offsets.resize(base + x.nnz() * depth);
  signs.resize(base + x.nnz() * depth);
  uint32_t* off = offsets.data() + base;
  float* sg = signs.data() + base;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    for (uint32_t j = 0; j < depth; ++j) {
      uint32_t bucket;
      float sign;
      rows[j].BucketAndSign(feature, &bucket, &sign);
      off[j] = j * rows[j].width() + bucket;
      sg[j] = sign;
      assert(off[j] != kPlanNoEntry);
    }
    off += depth;
    sg += depth;
  }
}

/// Appends the nnz × depth plan entries of an explicit feature-id list — the
/// point-query analogue of AppendPlanEntries (batched WeightEstimate hashes
/// each (key, row) pair exactly once, like updates do).
inline void AppendKeyEntries(std::span<const SignedBucketHash> rows,
                             std::span<const uint32_t> keys,
                             std::vector<uint32_t>& offsets, std::vector<float>& signs) {
  const uint32_t depth = static_cast<uint32_t>(rows.size());
  const size_t base = offsets.size();
  offsets.resize(base + keys.size() * depth);
  signs.resize(base + keys.size() * depth);
  uint32_t* off = offsets.data() + base;
  float* sg = signs.data() + base;
  for (const uint32_t key : keys) {
    for (uint32_t j = 0; j < depth; ++j) {
      uint32_t bucket;
      float sign;
      rows[j].BucketAndSign(key, &bucket, &sign);
      off[j] = j * rows[j].width() + bucket;
      sg[j] = sign;
      assert(off[j] != kPlanNoEntry);
    }
    off += depth;
    sg += depth;
  }
}

}  // namespace detail

/// The per-example hash plan: all nnz × depth (bucket, sign) pairs of one
/// example against a stack of Count-Sketch hash rows, computed exactly once
/// into flat SoA buffers and then reused by every stage of an update —
/// margin accumulation, gradient scatter, and the per-feature raw-median
/// heap offers. Buckets are stored as absolute offsets into the row-major
/// depth×width table (j·width + bucket, as uint32_t) so the kernels index
/// the table directly; signs are ±1.0f.
///
/// This is scratch, not model state: it holds no learned information, and
/// the sketches obtain one per thread via TlsPlan() rather than carrying one
/// per instance (so clones, merges, and serialization never see it).
class HashPlan {
 public:
  /// Hashes every (feature, row) pair of `x` once. All rows must share one
  /// width (they do: sketches construct them with a single width).
  void Build(std::span<const SignedBucketHash> rows, const SparseVector& x) {
    assert(!rows.empty());
    depth_ = static_cast<uint32_t>(rows.size());
    nnz_ = x.nnz();
    offsets_.clear();
    signs_.clear();
    detail::AppendPlanEntries(rows, x, offsets_, signs_);
  }

  /// Hashes every (key, row) pair of an explicit feature-id list once — the
  /// batched point-query (EstimateBatch) analogue of Build, with one plan
  /// slot per key.
  void BuildKeys(std::span<const SignedBucketHash> rows, std::span<const uint32_t> keys) {
    assert(!rows.empty());
    depth_ = static_cast<uint32_t>(rows.size());
    nnz_ = keys.size();
    offsets_.clear();
    signs_.clear();
    detail::AppendKeyEntries(rows, keys, offsets_, signs_);
  }

  /// Read-only prefetch of every table cell the plan touches (the batched
  /// query paths issue it between hashing and the wide gather). Eager builds
  /// only: lazy plans may hold kPlanNoEntry sentinels.
  void PrefetchTable(const float* table) const {
    for (const uint32_t off : offsets_) {
      __builtin_prefetch(table + off, /*rw=*/0, /*locality=*/1);
    }
  }

  /// PrefetchTable against a paged table (frozen snapshots): resolves each
  /// offset through the page-pointer array. The page pointers themselves are
  /// a few cache lines and stay hot; prefetching targets the cells.
  void PrefetchTablePaged(const float* const* pages, uint32_t shift, uint32_t mask) const {
    for (const uint32_t off : offsets_) {
      __builtin_prefetch(pages[off >> shift] + (off & mask), /*rw=*/0, /*locality=*/1);
    }
  }

  /// Prepares an all-empty plan of `nnz` slots for lazy per-feature fills —
  /// the AWM-Sketch's mode: which features touch the sketch depends on live
  /// active-set membership, so slots are hashed on first use (FillSlot)
  /// instead of up front, and active-set members are never hashed at all.
  void InitLazy(uint32_t depth, size_t nnz) {
    assert(depth >= 1);
    depth_ = depth;
    nnz_ = nnz;
    offsets_.assign(nnz * depth, kPlanNoEntry);
    signs_.resize(nnz * depth);
  }

  /// Hashes `feature`'s (bucket, sign) pairs into slot `i` of a lazy plan.
  void FillSlot(std::span<const SignedBucketHash> rows, size_t i, uint32_t feature) {
    uint32_t* off = offsets_.data() + i * depth_;
    float* sg = signs_.data() + i * depth_;
    for (uint32_t j = 0; j < depth_; ++j) {
      uint32_t bucket;
      float sign;
      rows[j].BucketAndSign(feature, &bucket, &sign);
      off[j] = j * rows[j].width() + bucket;
      sg[j] = sign;
    }
  }

  /// The flat kernel view of the plan (only valid for unmasked builds:
  /// kernels walk every entry).
  simd::PlanView View() const {
    return simd::PlanView{offsets_.data(), signs_.data(), nnz_, depth_};
  }

  /// True when feature slot `i` carries hashes (always true for Build).
  bool has(size_t i) const { return offsets_[i * depth_] != kPlanNoEntry; }

  /// The depth offsets / signs of feature slot `i` (the per-feature slice
  /// driving heap offers and AWM tail queries).
  const uint32_t* offsets(size_t i) const { return offsets_.data() + i * depth_; }
  const float* signs(size_t i) const { return signs_.data() + i * depth_; }

  size_t nnz() const { return nnz_; }
  uint32_t depth() const { return depth_; }

  /// Kernel scratch of nnz·depth floats, grown on demand (mutable: scratch
  /// never carries state across calls).
  float* scratch() const;

 private:
  std::vector<uint32_t> offsets_;
  std::vector<float> signs_;
  mutable std::vector<float> scratch_;
  size_t nnz_ = 0;
  uint32_t depth_ = 1;
};

/// A whole batch of hash plans in one arena: UpdateBatch hashes every
/// example up front (amortizing allocation across the batch) and then walks
/// the per-example views, software-prefetching the table rows of example
/// e+1 while example e updates.
class HashPlanArena {
 public:
  void Build(std::span<const SignedBucketHash> rows, std::span<const Example> batch) {
    assert(!rows.empty());
    depth_ = static_cast<uint32_t>(rows.size());
    offsets_.clear();
    signs_.clear();
    starts_.clear();
    starts_.reserve(batch.size() + 1);
    max_entries_ = 0;
    size_t total = 0;
    for (const Example& ex : batch) total += ex.x.nnz() * depth_;
    offsets_.reserve(total);
    signs_.reserve(total);
    for (const Example& ex : batch) {
      starts_.push_back(offsets_.size());
      detail::AppendPlanEntries(rows, ex.x, offsets_, signs_);
      const size_t entries = offsets_.size() - starts_.back();
      if (entries > max_entries_) max_entries_ = entries;
    }
    starts_.push_back(offsets_.size());
  }

  size_t size() const { return starts_.empty() ? 0 : starts_.size() - 1; }

  /// The plan view of example `e`.
  simd::PlanView View(size_t e) const {
    const size_t begin = starts_[e];
    const size_t entries = starts_[e + 1] - begin;
    return simd::PlanView{offsets_.data() + begin, signs_.data() + begin,
                          depth_ == 0 ? 0 : entries / depth_, depth_};
  }

  /// Prefetches the table cells example `e` will touch (read-then-write).
  /// Arena plans are always fully hashed, so every offset is real.
  void PrefetchTable(const float* table, size_t e) const {
    const size_t begin = starts_[e];
    const size_t end = starts_[e + 1];
    for (size_t k = begin; k < end; ++k) {
      __builtin_prefetch(table + offsets_[k], /*rw=*/1, /*locality=*/1);
    }
  }

  /// Prefetches the paged-table cells example `e` will touch (read-only:
  /// frozen snapshots are never written).
  void PrefetchTablePaged(const float* const* pages, uint32_t shift, uint32_t mask,
                          size_t e) const {
    const size_t begin = starts_[e];
    const size_t end = starts_[e + 1];
    for (size_t k = begin; k < end; ++k) {
      const uint32_t off = offsets_[k];
      __builtin_prefetch(pages[off >> shift] + (off & mask), /*rw=*/0, /*locality=*/1);
    }
  }

  /// Kernel scratch sized for the largest example in the arena.
  float* scratch() const;

 private:
  std::vector<uint32_t> offsets_;
  std::vector<float> signs_;
  std::vector<size_t> starts_;
  mutable std::vector<float> scratch_;
  size_t max_entries_ = 0;
  uint32_t depth_ = 1;
};

/// Thread-local plan / arena scratch shared by the single-hash hot paths.
/// Each Build overwrites the previous contents, so a caller must finish
/// consuming a plan before anything else on the thread builds a new one
/// (updates never nest, so this holds structurally).
HashPlan& TlsPlan();
HashPlanArena& TlsArena();

}  // namespace wmsketch
