#include "sketch/count_min.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/math.h"
#include "util/random.h"

namespace wmsketch {

CountMinSketch::CountMinSketch(uint32_t width, uint32_t depth, uint64_t seed, bool conservative)
    : width_(width), depth_(depth), conservative_(conservative) {
  assert(IsPowerOfTwo(width));
  assert(depth >= 1 && depth <= kMaxDepth);
  SplitMix64 sm(seed);
  rows_.reserve(depth);
  for (uint32_t j = 0; j < depth; ++j) rows_.emplace_back(sm.Next(), width);
  table_ = BasicPagedTable<double>(static_cast<size_t>(width) * depth);
}

void CountMinSketch::Update(uint32_t key, double delta) { UpdateAndQuery(key, delta); }

double CountMinSketch::UpdateAndQuery(uint32_t key, double delta) {
  assert(delta >= 0.0);
  total_ += delta;
  // One bucket evaluation per row, shared by the estimate read and the
  // counter write (the conservative path previously hashed twice — once in
  // its internal Query, once for the raise — and callers following with
  // Query(key) paid a third round).
  uint32_t buckets[kMaxDepth];
  for (uint32_t j = 0; j < depth_; ++j) {
    buckets[j] = rows_[j].Bucket(key);
    table_.MarkDirtyOffset(static_cast<size_t>(j) * width_ + buckets[j]);
  }
  if (!conservative_) {
    double est = std::numeric_limits<double>::infinity();
    for (uint32_t j = 0; j < depth_; ++j) {
      double& cell = Row(j)[buckets[j]];
      cell += delta;
      est = std::min(est, cell);
    }
    return est;
  }
  // Conservative update: raise each bucket only as far as needed so the new
  // estimate is (old estimate + delta).
  double est = std::numeric_limits<double>::infinity();
  for (uint32_t j = 0; j < depth_; ++j) est = std::min(est, Row(j)[buckets[j]]);
  const double target = est + delta;
  for (uint32_t j = 0; j < depth_; ++j) {
    double& cell = Row(j)[buckets[j]];
    cell = std::max(cell, target);
  }
  return target;
}

double CountMinSketch::Query(uint32_t key) const {
  double est = std::numeric_limits<double>::infinity();
  for (uint32_t j = 0; j < depth_; ++j) {
    est = std::min(est, Row(j)[rows_[j].Bucket(key)]);
  }
  return est;
}

void CountMinSketch::Clear() {
  table_.Fill(0.0);
  total_ = 0.0;
}

Status CountMinSketch::RestoreState(const std::vector<double>& table, double total) {
  if (table.size() != table_.size()) {
    return Status::InvalidArgument("counter array size does not match sketch shape");
  }
  table_.MarkAllDirty();
  std::copy(table.begin(), table.end(), table_.data());
  total_ = total;
  return Status::OK();
}

}  // namespace wmsketch
