#include "sketch/count_min.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/math.h"
#include "util/random.h"

namespace wmsketch {

CountMinSketch::CountMinSketch(uint32_t width, uint32_t depth, uint64_t seed, bool conservative)
    : width_(width), depth_(depth), conservative_(conservative) {
  assert(IsPowerOfTwo(width));
  assert(depth >= 1 && depth <= kMaxDepth);
  SplitMix64 sm(seed);
  rows_.reserve(depth);
  for (uint32_t j = 0; j < depth; ++j) rows_.emplace_back(sm.Next(), width);
  table_.assign(static_cast<size_t>(width) * depth, 0.0);
}

void CountMinSketch::Update(uint32_t key, double delta) {
  assert(delta >= 0.0);
  total_ += delta;
  if (!conservative_) {
    for (uint32_t j = 0; j < depth_; ++j) {
      Row(j)[rows_[j].Bucket(key)] += delta;
    }
    return;
  }
  // Conservative update: raise each bucket only as far as needed so the new
  // estimate is (old estimate + delta).
  const double target = Query(key) + delta;
  for (uint32_t j = 0; j < depth_; ++j) {
    double& cell = Row(j)[rows_[j].Bucket(key)];
    cell = std::max(cell, target);
  }
}

double CountMinSketch::Query(uint32_t key) const {
  double est = std::numeric_limits<double>::infinity();
  for (uint32_t j = 0; j < depth_; ++j) {
    est = std::min(est, Row(j)[rows_[j].Bucket(key)]);
  }
  return est;
}

void CountMinSketch::Clear() {
  table_.assign(table_.size(), 0.0);
  total_ = 0.0;
}

Status CountMinSketch::RestoreState(const std::vector<double>& table, double total) {
  if (table.size() != table_.size()) {
    return Status::InvalidArgument("counter array size does not match sketch shape");
  }
  table_ = table;
  total_ = total;
  return Status::OK();
}

}  // namespace wmsketch
