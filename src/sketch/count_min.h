#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hash/tabulation.h"
#include "util/memory_cost.h"
#include "util/paged_table.h"
#include "util/status.h"

namespace wmsketch {

/// Count-Min Sketch (Cormode & Muthukrishnan 2005): `depth` rows of `width`
/// non-negative counters; point estimates take the row minimum and
/// overestimate by at most ε‖v‖₁ with width Θ(1/ε), depth Θ(log(d/δ)).
///
/// Used here as (a) the paired ratio estimator baseline for relative-deltoid
/// detection (Fig. 10, following Cormode–Muthukrishnan 2005a) and (b) the
/// frequency filter in the Count-Min Frequent-Features classifier baseline.
class CountMinSketch {
 public:
  static constexpr uint32_t kMaxDepth = 64;

  /// Constructs the sketch. Requires width a power of two and
  /// 1 <= depth <= kMaxDepth. Set `conservative` to enable conservative
  /// update (Estan–Varghese), which only raises the buckets that bound the
  /// current estimate — strictly tighter for increment-only streams.
  CountMinSketch(uint32_t width, uint32_t depth, uint64_t seed, bool conservative = false);

  /// Adds `delta` (must be >= 0) to the count of `key`.
  void Update(uint32_t key, double delta = 1.0);

  /// Update followed by Query with one bucket evaluation per row instead of
  /// two (conservative) or three (caller-side Update-then-Query). Returns
  /// exactly what Query(key) would after Update(key, delta).
  double UpdateAndQuery(uint32_t key, double delta = 1.0);

  /// Point estimate (never underestimates for increment-only streams).
  double Query(uint32_t key) const;

  /// Resets all counters.
  void Clear();

  /// The raw counter array in row-major order (snapshot-save support).
  std::span<const double> table() const { return {table_.data(), table_.size()}; }

  /// Replaces the counter array and total mass (snapshot-restore support;
  /// hash rows stay as constructed from the seed). Returns InvalidArgument
  /// if `table` does not match this sketch's cell count.
  Status RestoreState(const std::vector<double>& table, double total);

  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }
  bool conservative() const { return conservative_; }
  size_t cells() const { return table_.size(); }
  /// Cost under the Sec. 7.1 model: 4 bytes per counter.
  size_t MemoryCostBytes() const { return TableBytes(table_.size()); }
  /// Total mass added (sum of deltas).
  double TotalMass() const { return total_; }

 private:
  double* Row(uint32_t j) { return table_.data() + static_cast<size_t>(j) * width_; }
  const double* Row(uint32_t j) const { return table_.data() + static_cast<size_t>(j) * width_; }

  uint32_t width_;
  uint32_t depth_;
  bool conservative_;
  double total_ = 0.0;
  std::vector<SignedBucketHash> rows_;  // signs unused; bucket mapping only
  BasicPagedTable<double> table_;  // row-major live arena, paged for snapshots
};

}  // namespace wmsketch
