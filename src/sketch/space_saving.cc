#include "sketch/space_saving.h"

#include <algorithm>
#include <utility>

namespace wmsketch {

uint32_t SpaceSaving::Update(uint32_t item, uint64_t increment) {
  total_ += increment;
  const IndexedMinHeap::Entry* existing = heap_.Find(item);
  if (existing != nullptr) {
    heap_.Update(item, existing->priority + static_cast<double>(increment), existing->value);
    return kNoEviction;
  }
  if (heap_.size() < capacity_) {
    heap_.Insert(item, static_cast<double>(increment), /*error=*/0.0f);
    return kNoEviction;
  }
  // Evict the minimum-count item; the newcomer inherits its count as error.
  const IndexedMinHeap::Entry min = heap_.PopMin();
  heap_.Insert(item, min.priority + static_cast<double>(increment),
               /*error=*/static_cast<float>(min.priority));
  return min.key;
}

uint64_t SpaceSaving::EstimateCount(uint32_t item) const {
  const IndexedMinHeap::Entry* e = heap_.Find(item);
  if (e == nullptr) return 0;
  return static_cast<uint64_t>(e->priority);
}

uint64_t SpaceSaving::ErrorBound(uint32_t item) const {
  const IndexedMinHeap::Entry* e = heap_.Find(item);
  if (e == nullptr) return 0;
  return static_cast<uint64_t>(e->value);
}

std::vector<SpaceSavingEntry> SpaceSaving::Entries() const {
  std::vector<SpaceSavingEntry> out;
  out.reserve(heap_.size());
  for (const auto& e : heap_.entries()) {
    out.push_back(SpaceSavingEntry{e.key, static_cast<uint64_t>(e.priority),
                                   static_cast<uint64_t>(e.value)});
  }
  std::sort(out.begin(), out.end(), [](const SpaceSavingEntry& a, const SpaceSavingEntry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  return out;
}

std::vector<SpaceSavingEntry> SpaceSaving::RawEntries() const {
  std::vector<SpaceSavingEntry> out;
  out.reserve(heap_.size());
  for (const auto& e : heap_.entries()) {
    out.push_back(SpaceSavingEntry{e.key, static_cast<uint64_t>(e.priority),
                                   static_cast<uint64_t>(e.value)});
  }
  return out;
}

Status SpaceSaving::RestoreEntries(const std::vector<SpaceSavingEntry>& entries,
                                   uint64_t total) {
  if (entries.size() > capacity_) {
    return Status::InvalidArgument("more Space-Saving entries than capacity");
  }
  std::vector<IndexedMinHeap::Entry> heap_entries;
  heap_entries.reserve(entries.size());
  for (const SpaceSavingEntry& e : entries) {
    heap_entries.push_back(IndexedMinHeap::Entry{e.item, static_cast<double>(e.count),
                                                 static_cast<float>(e.error)});
  }
  WMS_RETURN_NOT_OK(heap_.RestoreHeapOrder(std::move(heap_entries)));
  total_ = total;
  return Status::OK();
}

std::vector<SpaceSavingEntry> SpaceSaving::HeavyHitters(double threshold_fraction,
                                                        bool guaranteed) const {
  const double threshold = threshold_fraction * static_cast<double>(total_);
  std::vector<SpaceSavingEntry> out;
  for (const SpaceSavingEntry& e : Entries()) {
    const double support =
        guaranteed ? static_cast<double>(e.count - e.error) : static_cast<double>(e.count);
    if (support > threshold) out.push_back(e);
  }
  return out;
}

}  // namespace wmsketch
