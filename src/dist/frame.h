#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/wire.h"
#include "util/status.h"

namespace wmsketch::dist {

/// Wire framing for the distributed sync protocol (src/dist/README section
/// in the top-level README): every message on the Unix-domain socket is
///
///   [u8 frame type][20-byte v3 envelope header][payload]
///
/// — the same checksummed envelope the snapshot files use (core/snapshot_io),
/// so a frame is accepted only after its declared length is bounded and its
/// CRC32C verifies. A torn frame (peer died mid-send), a bit-flipped payload,
/// and a lying length field are all rejected *before* any protocol state is
/// touched; the receiver's only possible reactions to a bad frame are "drop
/// the connection" or "reject with an error frame", never "apply half".
///
/// Failpoint sites (util/failpoint.h), exercised by the chaos harness:
///   "dist:send"         — error: fail before writing; short: write a torn
///                         prefix then fail (the peer sees a truncated
///                         frame); crash: exit mid-protocol.
///   "dist:recv"         — error: fail before reading; short: consume a
///                         partial frame then fail (connection torn mid-read).
///   "dist:frame_decode" — reject a fully-read, CRC-valid frame as corrupt
///                         (decode-layer fault).

enum class FrameType : uint8_t {
  kHello = 1,        ///< worker → aggregator: merge-compatibility handshake
  kHelloAck = 2,     ///< aggregator → worker: session token + resume verdict
  kFullState = 3,    ///< worker → aggregator: full enveloped learner snapshot
  kDelta = 4,        ///< worker → aggregator: dirty-page delta payload
  kAck = 5,          ///< aggregator → worker: sync committed
  kError = 6,        ///< aggregator → worker: rejected (encoded Status)
  kFetchMerged = 7,  ///< client → aggregator: request the merged model
  kMergedState = 8,  ///< aggregator → client: enveloped merged snapshot
  kShutdown = 9,     ///< client → aggregator: stop serving
};

/// Stable name for logging ("hello", "delta", ...).
const char* FrameTypeName(FrameType type);

/// Upper bound on a single frame payload. Model snapshots are KBs to MBs
/// (budgets cap them); anything near this bound is a corrupt length field.
/// (The envelope itself lives in net/wire.h, shared with the serving tier.)
inline constexpr uint64_t kMaxFramePayloadBytes = net::kMaxFramePayloadBytes;

struct Frame {
  FrameType type{};
  std::string payload;
};

/// Writes one frame to `fd` (blocking, loops over partial writes). IOError
/// on any write failure — by then a prefix may already be on the wire, so
/// the caller must treat the connection as dead.
Status SendFrame(int fd, FrameType type, std::string_view payload);

/// Reads one frame from `fd`. NotFound on clean EOF before the first byte
/// (peer closed between frames); IOError on timeouts/resets; Corruption on
/// a torn frame, an unknown type, a bad envelope, or a checksum mismatch.
/// Only a returned OK frame has been fully validated.
Result<Frame> RecvFrame(int fd);

}  // namespace wmsketch::dist
