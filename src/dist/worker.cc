#include "dist/worker.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "api/learner.h"
#include "net/wire.h"

namespace wmsketch::dist {

using net::SetIoTimeouts;

namespace {

// An identity rejection can never succeed on retry; everything else
// (timeouts, torn frames, stale sessions, injected faults) is worth another
// attempt.
bool Retryable(const Status& status) {
  return status.code() != StatusCode::kInvalidArgument &&
         status.code() != StatusCode::kUnimplemented;
}

}  // namespace

SyncClient::SyncClient(Method method, SyncClientOptions options)
    : method_(method),
      options_(std::move(options)),
      rng_(options_.jitter_seed != 0
               ? options_.jitter_seed
               : options_.worker_id * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL) {}

SyncClient::~SyncClient() { Close(); }

void SyncClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  handshaken_ = false;
}

void SyncClient::Backoff(int attempt) {
  const int shift = std::min(attempt, 20);
  int64_t delay = static_cast<int64_t>(options_.base_backoff_ms) << shift;
  delay = std::min<int64_t>(delay, options_.max_backoff_ms);
  if (delay <= 0) return;
  // Uniform jitter over [delay/2, delay]: keeps the exponential envelope
  // while decorrelating workers that failed at the same instant.
  std::uniform_int_distribution<int64_t> dist(delay / 2, delay);
  std::this_thread::sleep_for(std::chrono::milliseconds(dist(rng_)));
}

Status SyncClient::Dial() {
  Close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(), options_.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(std::string("socket failed: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Status::IOError("connect failed for '" + options_.socket_path +
                                      "': " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (const Status st = SetIoTimeouts(fd, options_.io_timeout_ms); !st.ok()) {
    ::close(fd);
    return st;
  }
  fd_ = fd;
  return Status::OK();
}

Status SyncClient::Handshake(const BudgetedClassifier& model) {
  HelloPayload hello;
  hello.worker_id = options_.worker_id;
  hello.session_token = session_token_;
  hello.acked_sync_seq = acked_seq_;
  WMS_ASSIGN_OR_RETURN(hello.identity, MergeIdentityOf(method_, model));
  WMS_RETURN_NOT_OK(SendFrame(fd_, FrameType::kHello, EncodeHello(hello)));
  WMS_ASSIGN_OR_RETURN(const Frame reply, RecvFrame(fd_));
  if (reply.type == FrameType::kError) return DecodeErrorStatus(reply.payload);
  if (reply.type != FrameType::kHelloAck) {
    return Status::Corruption(std::string("expected hello-ack, got ") +
                              FrameTypeName(reply.type));
  }
  WMS_ASSIGN_OR_RETURN(const HelloAckPayload ack, DecodeHelloAck(reply.payload));
  session_token_ = ack.session_token;
  if (ack.resume_ok == 0) {
    // The aggregator has no baseline matching our acked state (restart, lost
    // replica, first contact): everything before its next_sync_seq is void.
    needs_full_ = true;
    acked_seq_ = ack.next_sync_seq - 1;
  }
  handshaken_ = true;
  return Status::OK();
}

Status SyncClient::EnsureConnected(const BudgetedClassifier& model) {
  if (connected()) return Status::OK();
  if (fd_ < 0) {
    WMS_RETURN_NOT_OK(Dial());
    ++stats_.reconnects;
  }
  return Handshake(model);
}

Status SyncClient::Connect(const BudgetedClassifier& model) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      Backoff(attempt - 1);
    }
    Close();
    last = EnsureConnected(model);
    if (last.ok()) return last;
    if (!Retryable(last)) return last;
  }
  return last;
}

Status SyncClient::TrySyncOnce(BudgetedClassifier& model, uint64_t window) {
  WMS_RETURN_NOT_OK(EnsureConnected(model));
  SyncHeader header;
  header.worker_id = options_.worker_id;
  header.session_token = session_token_;
  header.sync_seq = acked_seq_ + 1;
  const bool full = needs_full_;
  std::string body;
  DeltaStats delta_stats;
  {
    std::ostringstream os(std::ios::binary);
    if (full) {
      WMS_RETURN_NOT_OK(SaveClassifier(method_, model, os));
    } else {
      WMS_RETURN_NOT_OK(SaveDelta(method_, model, acked_watermark_, os, &delta_stats));
    }
    body = std::move(os).str();
  }
  WMS_RETURN_NOT_OK(SendFrame(fd_, full ? FrameType::kFullState : FrameType::kDelta,
                              EncodeSync(header, body)));
  WMS_ASSIGN_OR_RETURN(const Frame reply, RecvFrame(fd_));
  if (reply.type == FrameType::kError) return DecodeErrorStatus(reply.payload);
  if (reply.type != FrameType::kAck) {
    return Status::Corruption(std::string("expected ack, got ") + FrameTypeName(reply.type));
  }
  WMS_ASSIGN_OR_RETURN(const AckPayload ack, DecodeAck(reply.payload));
  if (ack.sync_seq != header.sync_seq) {
    return Status::Corruption("ack for wrong sync sequence");
  }
  acked_seq_ = header.sync_seq;
  acked_watermark_ = window;
  needs_full_ = false;
  ++stats_.syncs;
  stats_.bytes_shipped += body.size();
  if (full) {
    ++stats_.full_syncs;
  } else {
    ++stats_.delta_syncs;
    stats_.last_pages_shipped = delta_stats.pages_shipped;
    stats_.last_pages_total = delta_stats.pages_total;
  }
  return Status::OK();
}

Status SyncClient::Sync(BudgetedClassifier& model) {
  // Open the next delta window *before* serializing: pages dirtied during or
  // after this sync carry tags >= `window`, so once this sync is acked the
  // next delta (shipping pages >= window) covers them. Re-opening on retry
  // is unnecessary — the model does not change inside this call.
  WMS_ASSIGN_OR_RETURN(const uint64_t window, BeginDeltaWindow(method_, model));
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      Backoff(attempt - 1);
    }
    last = TrySyncOnce(model, window);
    if (last.ok()) return last;
    if (!Retryable(last)) break;
    // Unknown whether the frame landed: drop the connection, re-handshake,
    // and resend. A duplicate of an applied sync is idempotent on the
    // aggregator; a stale-session rejection downgraded us to a full
    // snapshot via the error handler below.
    if (last.code() == StatusCode::kFailedPrecondition ||
        last.code() == StatusCode::kCorruption) {
      needs_full_ = true;
    }
    Close();
  }
  needs_full_ = true;
  return last;
}

Result<std::string> SyncClient::FetchMergedBytes() {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      Backoff(attempt - 1);
    }
    if (fd_ < 0) {
      // kFetchMerged needs no handshake, so a bare redial suffices here.
      last = Dial();
      if (!last.ok()) continue;
      ++stats_.reconnects;
    }
    last = SendFrame(fd_, FrameType::kFetchMerged, "");
    if (last.ok()) {
      Result<Frame> reply = RecvFrame(fd_);
      if (reply.ok()) {
        if (reply.value().type == FrameType::kError) {
          return DecodeErrorStatus(reply.value().payload);
        }
        if (reply.value().type != FrameType::kMergedState) {
          return Status::Corruption(std::string("expected merged-state, got ") +
                                    FrameTypeName(reply.value().type));
        }
        return std::move(reply.value().payload);
      }
      last = reply.status();
    }
    Close();
  }
  return last;
}

Status SyncClient::SendShutdown() {
  if (fd_ < 0) WMS_RETURN_NOT_OK(Dial());
  WMS_RETURN_NOT_OK(SendFrame(fd_, FrameType::kShutdown, ""));
  Result<Frame> reply = RecvFrame(fd_);  // best-effort ack
  Close();
  if (!reply.ok() && reply.status().code() != StatusCode::kNotFound) {
    return reply.status();
  }
  return Status::OK();
}

}  // namespace wmsketch::dist
