#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/delta_io.h"
#include "util/status.h"

namespace wmsketch::dist {

/// Payload codecs for the sync protocol frames (see dist/frame.h for the
/// framing). All payloads are little-endian fixed-field sections encoded
/// with the snapshot WriteRaw/SnapshotReader primitives, so truncation is
/// detected field-by-field and a malformed payload is Corruption, never a
/// partial parse.
///
/// Protocol flow:
///
///   worker                                aggregator
///     | -- kHello {id, session, acked, identity} -->  (identity checked)
///     | <-- kHelloAck {session, resume_ok, next} ---
///     | -- kFullState {sync hdr | learner bytes} -->  (replica replaced)
///     | <-- kAck {seq} ----------------------------
///     | -- kDelta {sync hdr | delta bytes} ------->  (dirty pages applied)
///     | <-- kAck {seq} ----------------------------
///     | -- kFetchMerged ---------------------------> (replicas merged)
///     | <-- kMergedState {learner bytes} ----------
///
/// A rejected frame comes back as kError carrying an encoded Status; the
/// worker reacts by reconnecting, re-handshaking, and falling back to a
/// full-state sync.

inline constexpr uint32_t kProtocolVersion = 1;

/// kHello payload: who the worker is, what session/sync state it believes
/// in, and the merge identity the aggregator must verify before any of this
/// worker's bytes can touch a replica.
struct HelloPayload {
  uint32_t protocol_version = kProtocolVersion;
  uint64_t worker_id = 0;
  /// Aggregator session the worker last spoke to (0 = first contact). An
  /// aggregator restart mints a new token, so a stale token can never pass
  /// for a live baseline.
  uint64_t session_token = 0;
  /// Last sync sequence the worker saw acked (0 = none).
  uint64_t acked_sync_seq = 0;
  MergeIdentity identity;
};

/// kHelloAck payload. resume_ok means the aggregator still holds this
/// worker's replica at exactly `acked_sync_seq` — delta sync may continue.
/// Otherwise the worker's next sync must be a full snapshot.
struct HelloAckPayload {
  uint64_t session_token = 0;
  uint8_t resume_ok = 0;
  uint64_t next_sync_seq = 1;
};

/// Prefix of every kFullState / kDelta payload; the body (enveloped learner
/// bytes or delta section) follows immediately.
struct SyncHeader {
  uint64_t worker_id = 0;
  uint64_t session_token = 0;
  uint64_t sync_seq = 0;
};

/// kAck payload.
struct AckPayload {
  uint64_t sync_seq = 0;
};

std::string EncodeHello(const HelloPayload& hello);
Result<HelloPayload> DecodeHello(std::string_view payload);

std::string EncodeHelloAck(const HelloAckPayload& ack);
Result<HelloAckPayload> DecodeHelloAck(std::string_view payload);

std::string EncodeSync(const SyncHeader& header, std::string_view body);
/// Splits a sync payload into its header and `*body` (a view into
/// `payload`, valid while `payload`'s storage lives).
Result<SyncHeader> DecodeSyncHeader(std::string_view payload, std::string_view* body);

std::string EncodeAck(const AckPayload& ack);
Result<AckPayload> DecodeAck(std::string_view payload);

/// kError payload: the rejecting side's Status, round-tripped so the worker
/// can log and react to the real failure, not a generic "rejected".
std::string EncodeError(const Status& status);
/// The remote Status (Corruption if the payload itself is malformed).
Status DecodeErrorStatus(std::string_view payload);

}  // namespace wmsketch::dist
