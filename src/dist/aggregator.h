#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/budget.h"
#include "core/delta_io.h"
#include "dist/frame.h"
#include "dist/protocol.h"
#include "engine/checkpoint.h"

namespace wmsketch::dist {

/// Configuration of a merge aggregator.
struct AggregatorOptions {
  /// Shape every worker must match (the aggregator's merge identity is
  /// derived from it); config.method must be a linear sketch (wm/awm).
  BudgetConfig config;
  LearnerOptions opts;
  /// Non-empty: checkpoint the merged model here (CheckpointMerged), and at
  /// Create() recover the newest valid checkpoint as the merged baseline —
  /// the answer served until workers resync after a restart.
  std::string checkpoint_dir;
  size_t keep_last = 3;
  /// SO_RCVTIMEO/SO_SNDTIMEO on accepted connections: a worker that dies
  /// mid-frame stalls one read, not the aggregator.
  int io_timeout_ms = 2000;
};

/// The merge aggregator daemon: accepts workers over a Unix-domain socket,
/// verifies each one's merge identity in the handshake, maintains one
/// replica of every worker's model (kept current by dirty-page deltas, with
/// full-snapshot fallback), and serves/checkpoints the exact merge of all
/// replicas. Single-threaded poll loop; every mutation of aggregator state
/// happens between two fully-validated frames, so a worker crash at any
/// protocol point leaves the replicas either at the previous sync or at the
/// new one — never in between.
///
/// Failure model:
///  * A bad frame (torn, CRC-failing, undecodable) drops that connection;
///    the worker's replica keeps its last synced state and keeps
///    contributing to the merged model ("dead worker degrades").
///  * An incompatible handshake or mismatched session/sequence is answered
///    with kError and zero state mutation.
///  * A delta is applied to a clone and swapped in only on success, so even
///    an injected mid-apply failure ("dist:merge_apply") cannot leave a
///    half-applied replica.
class Aggregator {
 public:
  static Result<Aggregator> Create(const AggregatorOptions& options);

  Aggregator(Aggregator&& other) noexcept;
  Aggregator& operator=(Aggregator&& other) noexcept;
  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;
  ~Aggregator();

  /// Binds and listens on `socket_path` (unlinking any stale socket file).
  Status Bind(const std::string& socket_path);

  /// One poll round: accepts pending connections and serves every readable
  /// one. `timeout_ms` < 0 blocks until an event.
  Status PollOnce(int timeout_ms);

  /// Serves until a kShutdown frame arrives.
  Status ServeUntilShutdown();

  /// The exact merge of all worker replicas (ascending worker id), as
  /// enveloped learner bytes; the recovered checkpoint baseline when no
  /// worker has synced yet; NotFound when neither exists.
  Result<std::string> MergedModelBytes() const;

  /// Writes the merged model as the next checkpoint. Requires a
  /// checkpoint_dir.
  Status CheckpointMerged();

  bool shutdown_requested() const { return shutdown_; }
  /// Workers that have completed at least one sync.
  size_t replica_count() const;
  /// Workers known from a handshake (synced or not).
  size_t worker_count() const { return workers_.size(); }
  uint64_t session_token() const { return session_token_; }
  /// Corrupt checkpoints skipped during Create() recovery ("file: status").
  const std::vector<std::string>& recovery_skipped() const { return recovery_skipped_; }
  /// True when a checkpoint baseline was recovered at Create().
  bool has_baseline() const { return baseline_ != nullptr; }

 private:
  struct Connection {
    int fd = -1;
    bool has_worker = false;
    uint64_t worker_id = 0;
  };
  struct WorkerState {
    // Null until the first accepted sync: a handshake alone must not add a
    // zero model to the merge.
    std::unique_ptr<BudgetedClassifier> replica;
    uint64_t acked_seq = 0;
    // The next sync must be a full snapshot (fresh registration, lost
    // session, or a rejected sync); deltas are refused until then so a
    // delta can never land on a baseline it wasn't built against.
    bool needs_full = true;
  };

  Aggregator() = default;

  void CloseAll();
  Status AcceptPending();
  // Serves one frame on `conn`; sets *close_conn when the connection must
  // drop (bad frame, rejected handshake, clean EOF).
  Status ServeConnection(Connection& conn, bool* close_conn);
  Status HandleHello(Connection& conn, const Frame& frame, bool* close_conn);
  Status HandleSync(Connection& conn, const Frame& frame, bool* close_conn);
  Result<std::unique_ptr<BudgetedClassifier>> MergedImpl() const;
  Status SendError(int fd, const Status& status);

  AggregatorOptions options_;
  MergeIdentity identity_;
  uint64_t session_token_ = 0;
  int listen_fd_ = -1;
  std::string socket_path_;
  bool shutdown_ = false;
  std::vector<Connection> conns_;
  std::map<uint64_t, WorkerState> workers_;
  std::unique_ptr<BudgetedClassifier> baseline_;
  std::optional<Checkpointer> checkpointer_;
  std::vector<std::string> recovery_skipped_;
};

}  // namespace wmsketch::dist
