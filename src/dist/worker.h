#pragma once

#include <cstdint>
#include <random>
#include <string>

#include "core/budget.h"
#include "core/delta_io.h"
#include "dist/frame.h"
#include "dist/protocol.h"

namespace wmsketch::dist {

/// Configuration of a worker-side sync client.
struct SyncClientOptions {
  uint64_t worker_id = 1;
  std::string socket_path;
  /// Retries per operation beyond the first attempt. Each retry backs off
  /// exponentially (base_backoff_ms · 2^k, capped) with uniform jitter, and
  /// reconnects + re-handshakes if the connection died.
  int max_retries = 5;
  int base_backoff_ms = 10;
  int max_backoff_ms = 1000;
  int io_timeout_ms = 2000;
  /// 0: derive from worker_id (deterministic per worker, decorrelated
  /// across workers — retry storms must not synchronize).
  uint64_t jitter_seed = 0;
};

/// Cumulative counters (tests and the bench read these).
struct SyncStats {
  uint64_t syncs = 0;
  uint64_t delta_syncs = 0;
  uint64_t full_syncs = 0;
  uint64_t retries = 0;
  uint64_t reconnects = 0;
  uint64_t bytes_shipped = 0;
  /// From the most recent delta sync.
  uint64_t last_pages_shipped = 0;
  uint64_t last_pages_total = 0;
};

/// Worker-side client of the merge aggregator: handshakes the model's merge
/// identity, then ships state — dirty-page deltas when the aggregator holds
/// a matching acked baseline, full snapshots otherwise — surviving
/// aggregator restarts (reconnect, re-handshake, full resync) and transient
/// I/O failures within a bounded retry budget. The model itself is owned by
/// the caller; the client only serializes it.
class SyncClient {
 public:
  SyncClient(Method method, SyncClientOptions options);
  ~SyncClient();
  SyncClient(const SyncClient&) = delete;
  SyncClient& operator=(const SyncClient&) = delete;

  /// Dials the aggregator and performs the merge-compatibility handshake
  /// for `model` (with retries). An identity rejection is returned as the
  /// aggregator's InvalidArgument — not retried, it can never succeed.
  Status Connect(const BudgetedClassifier& model);

  /// Ships `model`'s state: a delta of the pages dirtied since the last
  /// acked sync when the aggregator can accept one, a full snapshot
  /// otherwise. Retries with backoff; reconnects and falls back to a full
  /// snapshot on session loss. On failure the next Sync starts with a full
  /// snapshot — correctness never depends on a delta the aggregator may not
  /// have applied.
  Status Sync(BudgetedClassifier& model);

  /// Fetches the merged model as enveloped learner bytes (LoadLearner
  /// parses them). Requires a prior successful Connect.
  Result<std::string> FetchMergedBytes();

  /// Asks the aggregator to stop serving.
  Status SendShutdown();

  /// Drops the connection (next operation reconnects).
  void Close();

  bool connected() const { return fd_ >= 0 && handshaken_; }
  const SyncStats& stats() const { return stats_; }
  uint64_t session_token() const { return session_token_; }

 private:
  Status Dial();
  Status Handshake(const BudgetedClassifier& model);
  Status EnsureConnected(const BudgetedClassifier& model);
  Status TrySyncOnce(BudgetedClassifier& model, uint64_t window);
  void Backoff(int attempt);

  Method method_;
  SyncClientOptions options_;
  int fd_ = -1;
  bool handshaken_ = false;
  uint64_t session_token_ = 0;
  uint64_t acked_seq_ = 0;
  /// Delta-window watermark captured at the last *acked* sync: the
  /// aggregator's replica matches the model as of this watermark, so the
  /// next delta ships exactly the pages dirtied at or after it.
  uint64_t acked_watermark_ = 0;
  bool needs_full_ = true;
  SyncStats stats_;
  std::mt19937_64 rng_;
};

}  // namespace wmsketch::dist
