#include "dist/aggregator.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <sstream>
#include <utility>

#include "core/snapshot_io.h"
#include "net/wire.h"
#include "util/failpoint.h"

namespace wmsketch::dist {

using net::SetIoTimeouts;

namespace {

uint64_t MintSessionToken() {
  // Uniqueness across restarts is what matters (a worker must never mistake
  // a restarted aggregator for its old session); cryptographic strength is
  // not required.
  std::random_device rd;
  uint64_t token = (uint64_t{rd()} << 32) ^ rd();
  token ^= static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  token ^= static_cast<uint64_t>(::getpid()) << 17;
  return token == 0 ? 1 : token;
}

}  // namespace

Result<Aggregator> Aggregator::Create(const AggregatorOptions& options) {
  WMS_RETURN_NOT_OK(options.config.Validate());
  Aggregator agg;
  agg.options_ = options;
  agg.session_token_ = MintSessionToken();
  {
    // Derive the merge identity from a throwaway instance of the configured
    // shape — the same identity every compatible worker will present.
    const std::unique_ptr<BudgetedClassifier> ref =
        MakeClassifier(options.config, options.opts);
    WMS_ASSIGN_OR_RETURN(agg.identity_, MergeIdentityOf(options.config.method, *ref));
  }
  if (!options.checkpoint_dir.empty()) {
    WMS_ASSIGN_OR_RETURN(Checkpointer ckpt,
                         Checkpointer::Open(options.checkpoint_dir, options.keep_last));
    agg.checkpointer_ = std::move(ckpt);
    Result<Learner> recovered =
        agg.checkpointer_->RecoverLatest(options.opts, &agg.recovery_skipped_);
    if (recovered.ok()) {
      WMS_ASSIGN_OR_RETURN(const MergeIdentity recovered_id,
                           MergeIdentityOf(recovered.value().method(),
                                           recovered.value().impl()));
      WMS_RETURN_NOT_OK(CheckIdentityCompatible(agg.identity_, recovered_id));
      agg.baseline_ = recovered.value().impl().Clone();
    } else if (recovered.status().code() != StatusCode::kNotFound) {
      return recovered.status();
    }
  }
  return agg;
}

Aggregator::Aggregator(Aggregator&& other) noexcept { *this = std::move(other); }

Aggregator& Aggregator::operator=(Aggregator&& other) noexcept {
  if (this == &other) return *this;
  CloseAll();
  options_ = std::move(other.options_);
  identity_ = other.identity_;
  session_token_ = other.session_token_;
  listen_fd_ = std::exchange(other.listen_fd_, -1);
  socket_path_ = std::move(other.socket_path_);
  shutdown_ = other.shutdown_;
  conns_ = std::move(other.conns_);
  other.conns_.clear();
  workers_ = std::move(other.workers_);
  baseline_ = std::move(other.baseline_);
  checkpointer_ = std::move(other.checkpointer_);
  recovery_skipped_ = std::move(other.recovery_skipped_);
  return *this;
}

Aggregator::~Aggregator() { CloseAll(); }

void Aggregator::CloseAll() {
  for (Connection& conn : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
  }
}

Status Aggregator::Bind(const std::string& socket_path) {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("aggregator already bound");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(std::string("socket failed: ") + std::strerror(errno));
  ::unlink(socket_path.c_str());  // stale socket from a previous incarnation
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st =
        Status::IOError("bind failed for '" + socket_path + "': " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    const Status st = Status::IOError(std::string("listen failed: ") + std::strerror(errno));
    ::close(fd);
    ::unlink(socket_path.c_str());
    return st;
  }
  listen_fd_ = fd;
  socket_path_ = socket_path;
  return Status::OK();
}

Status Aggregator::AcceptPending() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
      return Status::IOError(std::string("accept failed: ") + std::strerror(errno));
    }
    const Status st = SetIoTimeouts(fd, options_.io_timeout_ms);
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
    conns_.push_back(Connection{fd, false, 0});
    return Status::OK();  // one accept per poll round keeps the loop fair
  }
}

Status Aggregator::PollOnce(int timeout_ms) {
  if (listen_fd_ < 0) return Status::FailedPrecondition("aggregator not bound");
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  for (const Connection& conn : conns_) fds.push_back(pollfd{conn.fd, POLLIN, 0});
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return Status::OK();
    return Status::IOError(std::string("poll failed: ") + std::strerror(errno));
  }
  if (ready == 0) return Status::OK();
  // Only the connections polled this round may be served: AcceptPending()
  // appends past this prefix, and those newcomers have no pollfd entry yet.
  const size_t polled = conns_.size();
  if ((fds[0].revents & POLLIN) != 0) WMS_RETURN_NOT_OK(AcceptPending());
  // Serve back-to-front so erasing a dropped connection stays O(1) and does
  // not shift the pollfd/conn correspondence of entries not yet visited.
  for (size_t i = polled; i-- > 0;) {
    if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    bool close_conn = false;
    const Status st = ServeConnection(conns_[i], &close_conn);
    if (close_conn || !st.ok()) {
      ::close(conns_[i].fd);
      conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
    }
    // Per-connection failures are absorbed: a misbehaving worker drops its
    // connection, it does not stop the daemon.
  }
  return Status::OK();
}

Status Aggregator::ServeUntilShutdown() {
  while (!shutdown_) WMS_RETURN_NOT_OK(PollOnce(-1));
  return Status::OK();
}

Status Aggregator::SendError(int fd, const Status& status) {
  return SendFrame(fd, FrameType::kError, EncodeError(status));
}

Status Aggregator::ServeConnection(Connection& conn, bool* close_conn) {
  Result<Frame> received = RecvFrame(conn.fd);
  if (!received.ok()) {
    // Clean close, torn frame, checksum mismatch, timeout: the connection is
    // unusable either way. The worker's replica is untouched — it keeps its
    // last fully-validated sync.
    *close_conn = true;
    return Status::OK();
  }
  const Frame& frame = std::move(received).value();
  switch (frame.type) {
    case FrameType::kHello:
      return HandleHello(conn, frame, close_conn);
    case FrameType::kFullState:
    case FrameType::kDelta:
      return HandleSync(conn, frame, close_conn);
    case FrameType::kFetchMerged: {
      Result<std::string> merged = MergedModelBytes();
      if (!merged.ok()) return SendError(conn.fd, merged.status());
      return SendFrame(conn.fd, FrameType::kMergedState, merged.value());
    }
    case FrameType::kShutdown:
      shutdown_ = true;
      *close_conn = true;
      return SendFrame(conn.fd, FrameType::kAck, EncodeAck(AckPayload{0}));
    default:
      *close_conn = true;
      return SendError(conn.fd,
                       Status::InvalidArgument(std::string("unexpected frame type ") +
                                               FrameTypeName(frame.type)));
  }
}

Status Aggregator::HandleHello(Connection& conn, const Frame& frame, bool* close_conn) {
  Result<HelloPayload> decoded = DecodeHello(frame.payload);
  if (!decoded.ok()) {
    *close_conn = true;
    return SendError(conn.fd, decoded.status());
  }
  const HelloPayload& hello = decoded.value();
  // The merge-compatibility gate: a worker whose method, shape, seed, or
  // schedule differs is rejected here, before any of its state frames would
  // even be looked at.
  if (const Status st = CheckIdentityCompatible(identity_, hello.identity); !st.ok()) {
    *close_conn = true;
    return SendError(conn.fd, st);
  }
  conn.has_worker = true;
  conn.worker_id = hello.worker_id;
  WorkerState& ws = workers_[hello.worker_id];  // creates on first contact
  const bool resume_ok = hello.session_token == session_token_ && ws.replica != nullptr &&
                         ws.acked_seq == hello.acked_sync_seq && !ws.needs_full;
  if (!resume_ok) ws.needs_full = true;
  HelloAckPayload ack;
  ack.session_token = session_token_;
  ack.resume_ok = resume_ok ? 1 : 0;
  ack.next_sync_seq = ws.acked_seq + 1;
  return SendFrame(conn.fd, FrameType::kHelloAck, EncodeHelloAck(ack));
}

Status Aggregator::HandleSync(Connection& conn, const Frame& frame, bool* close_conn) {
  if (!conn.has_worker) {
    *close_conn = true;
    return SendError(conn.fd, Status::FailedPrecondition("sync before handshake"));
  }
  std::string_view body;
  Result<SyncHeader> decoded = DecodeSyncHeader(frame.payload, &body);
  if (!decoded.ok()) {
    *close_conn = true;
    return SendError(conn.fd, decoded.status());
  }
  const SyncHeader& header = decoded.value();
  if (header.worker_id != conn.worker_id) {
    *close_conn = true;
    return SendError(conn.fd, Status::InvalidArgument("sync worker id does not match hello"));
  }
  if (header.session_token != session_token_) {
    // A frame from a previous aggregator incarnation: the baseline it was
    // built against no longer exists. The worker must re-handshake and full-
    // resync; its replica here (if any) is untouched.
    return SendError(conn.fd,
                     Status::FailedPrecondition("stale session token; re-handshake"));
  }
  WorkerState& ws = workers_[conn.worker_id];
  // Accept a duplicate of the last acked sequence (a lost ack makes the
  // worker resend; applying again is an idempotent overwrite) or the next.
  if (header.sync_seq != ws.acked_seq && header.sync_seq != ws.acked_seq + 1) {
    ws.needs_full = true;
    return SendError(conn.fd,
                     Status::FailedPrecondition(
                         "sync sequence mismatch (got " + std::to_string(header.sync_seq) +
                         ", expected " + std::to_string(ws.acked_seq + 1) + ")"));
  }

  const failpoint::Action act = WMS_FAILPOINT("dist:merge_apply");
  if (act != failpoint::Action::kOff) {
    ws.needs_full = true;
    return SendError(conn.fd, Status::IOError("injected merge-apply failure"));
  }

  if (frame.type == FrameType::kDelta) {
    if (ws.needs_full || ws.replica == nullptr) {
      return SendError(conn.fd,
                       Status::FailedPrecondition(
                           "full snapshot required before deltas can be applied"));
    }
    // Apply to a clone and swap: a corrupt delta leaves the replica at its
    // previous sync, byte for byte.
    std::unique_ptr<BudgetedClassifier> staged = ws.replica->Clone();
    snapshot::SnapshotReader reader(body);
    if (const Status st = ApplyDelta(options_.config.method, *staged, reader); !st.ok()) {
      ws.needs_full = true;
      return SendError(conn.fd, st);
    }
    ws.replica = std::move(staged);
  } else {  // kFullState
    std::istringstream in{std::string(body), std::ios::binary};
    Result<Learner> loaded = LoadLearner(in, options_.opts);
    if (!loaded.ok()) return SendError(conn.fd, loaded.status());
    Result<MergeIdentity> loaded_id =
        MergeIdentityOf(loaded.value().method(), loaded.value().impl());
    if (!loaded_id.ok()) return SendError(conn.fd, loaded_id.status());
    if (const Status st = CheckIdentityCompatible(identity_, loaded_id.value()); !st.ok()) {
      return SendError(conn.fd, st);
    }
    ws.replica = loaded.value().impl().Clone();
    ws.needs_full = false;
  }
  ws.acked_seq = header.sync_seq;
  return SendFrame(conn.fd, FrameType::kAck, EncodeAck(AckPayload{header.sync_seq}));
}

Result<std::unique_ptr<BudgetedClassifier>> Aggregator::MergedImpl() const {
  std::unique_ptr<BudgetedClassifier> merged;
  for (const auto& [worker_id, ws] : workers_) {
    if (ws.replica == nullptr) continue;
    if (merged == nullptr) {
      merged = ws.replica->Clone();
    } else {
      WMS_RETURN_NOT_OK(merged->Merge(*ws.replica));
    }
  }
  if (merged != nullptr) return merged;
  if (baseline_ != nullptr) return baseline_->Clone();
  return Status::NotFound("no worker has synced and no checkpoint baseline exists");
}

Result<std::string> Aggregator::MergedModelBytes() const {
  WMS_ASSIGN_OR_RETURN(const std::unique_ptr<BudgetedClassifier> merged, MergedImpl());
  std::ostringstream out(std::ios::binary);
  WMS_RETURN_NOT_OK(SaveClassifier(options_.config.method, *merged, out));
  return std::move(out).str();
}

Status Aggregator::CheckpointMerged() {
  if (!checkpointer_.has_value()) {
    return Status::FailedPrecondition("no checkpoint directory configured");
  }
  WMS_ASSIGN_OR_RETURN(const std::unique_ptr<BudgetedClassifier> merged, MergedImpl());
  return checkpointer_->WriteClassifier(options_.config.method, *merged);
}

size_t Aggregator::replica_count() const {
  size_t n = 0;
  for (const auto& [worker_id, ws] : workers_) n += ws.replica != nullptr ? 1 : 0;
  return n;
}

}  // namespace wmsketch::dist
