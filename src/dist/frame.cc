#include "dist/frame.h"

#include "net/wire.h"
#include "util/failpoint.h"

namespace wmsketch::dist {

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello-ack";
    case FrameType::kFullState: return "full-state";
    case FrameType::kDelta: return "delta";
    case FrameType::kAck: return "ack";
    case FrameType::kError: return "error";
    case FrameType::kFetchMerged: return "fetch-merged";
    case FrameType::kMergedState: return "merged-state";
    case FrameType::kShutdown: return "shutdown";
  }
  return "unknown";
}

Status SendFrame(int fd, FrameType type, std::string_view payload) {
  return net::SendFrame(fd, static_cast<uint8_t>(type), payload, "dist:send");
}

Result<Frame> RecvFrame(int fd) {
  WMS_ASSIGN_OR_RETURN(
      net::TypedFrame typed,
      net::RecvFrame(fd, static_cast<uint8_t>(FrameType::kHello),
                     static_cast<uint8_t>(FrameType::kShutdown), "dist:recv"));
  if (WMS_FAILPOINT("dist:frame_decode") != failpoint::Action::kOff) {
    return Status::Corruption("injected frame decode failure");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(typed.type);
  frame.payload = std::move(typed.payload);
  return frame;
}

}  // namespace wmsketch::dist
