#include "dist/frame.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/snapshot_io.h"
#include "util/crc32c.h"
#include "util/failpoint.h"

namespace wmsketch::dist {

namespace {

// type byte + 16-byte envelope header + CRC32C.
constexpr size_t kFrameHeaderBytes = 1 + 16 + 4;

Status WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that died between frames must surface as EPIPE,
    // not kill the process with SIGPIPE — the retry loops depend on it.
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("frame write failed: ") + std::strerror(errno));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

// Reads exactly `n` bytes unless EOF intervenes; `*got` reports the bytes
// actually read (short only at EOF). Timeouts (SO_RCVTIMEO) and resets
// surface as IOError.
Status ReadUpTo(int fd, char* dst, size_t n, size_t* got) {
  *got = 0;
  while (*got < n) {
    const ssize_t r = ::read(fd, dst + *got, n - *got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IOError("frame read timed out");
      }
      return Status::IOError(std::string("frame read failed: ") + std::strerror(errno));
    }
    if (r == 0) return Status::OK();  // EOF; caller inspects *got
    *got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello-ack";
    case FrameType::kFullState: return "full-state";
    case FrameType::kDelta: return "delta";
    case FrameType::kAck: return "ack";
    case FrameType::kError: return "error";
    case FrameType::kFetchMerged: return "fetch-merged";
    case FrameType::kMergedState: return "merged-state";
    case FrameType::kShutdown: return "shutdown";
  }
  return "unknown";
}

Status SendFrame(int fd, FrameType type, std::string_view payload) {
  const failpoint::Action act = WMS_FAILPOINT("dist:send");
  if (act == failpoint::Action::kError) {
    return Status::IOError("injected send failure");
  }
  // Assemble the whole frame first so a torn write is a contiguous prefix —
  // exactly what a process death mid-send leaves on a SOCK_STREAM socket.
  std::string buf;
  buf.reserve(kFrameHeaderBytes + payload.size());
  buf.push_back(static_cast<char>(type));
  char header[16];
  const uint32_t magic = snapshot::kEnvelopeMagic;
  const uint32_t version = snapshot::kEnvelopeVersion;
  const uint64_t length = payload.size();
  std::memcpy(header + 0, &magic, sizeof(magic));
  std::memcpy(header + 4, &version, sizeof(version));
  std::memcpy(header + 8, &length, sizeof(length));
  buf.append(header, sizeof(header));
  const uint32_t crc = crc32c::Extend(crc32c::Value(header, sizeof(header)),
                                      payload.data(), payload.size());
  buf.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  buf.append(payload);
  if (act == failpoint::Action::kShortWrite) {
    WMS_RETURN_NOT_OK(WriteAll(fd, buf.data(), buf.size() / 2));
    return Status::IOError("injected torn write mid-frame");
  }
  return WriteAll(fd, buf.data(), buf.size());
}

Result<Frame> RecvFrame(int fd) {
  const failpoint::Action act = WMS_FAILPOINT("dist:recv");
  if (act == failpoint::Action::kError) {
    return Status::IOError("injected recv failure");
  }
  char head[kFrameHeaderBytes];
  size_t got = 0;
  WMS_RETURN_NOT_OK(ReadUpTo(fd, head, 1, &got));
  if (got == 0) return Status::NotFound("connection closed");
  const uint8_t raw_type = static_cast<uint8_t>(head[0]);
  if (raw_type < static_cast<uint8_t>(FrameType::kHello) ||
      raw_type > static_cast<uint8_t>(FrameType::kShutdown)) {
    return Status::Corruption("unknown frame type " + std::to_string(raw_type));
  }
  WMS_RETURN_NOT_OK(ReadUpTo(fd, head + 1, sizeof(head) - 1, &got));
  if (got != sizeof(head) - 1) return Status::Corruption("torn frame header");

  uint32_t magic, version, declared_crc;
  uint64_t length;
  std::memcpy(&magic, head + 1, sizeof(magic));
  std::memcpy(&version, head + 5, sizeof(version));
  std::memcpy(&length, head + 9, sizeof(length));
  std::memcpy(&declared_crc, head + 17, sizeof(declared_crc));
  if (magic != snapshot::kEnvelopeMagic) return Status::Corruption("bad frame magic");
  if (version != snapshot::kEnvelopeVersion) {
    return Status::Corruption("unsupported frame envelope version");
  }
  if (length > kMaxFramePayloadBytes) {
    return Status::Corruption("frame payload length exceeds sanity cap");
  }

  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.payload.resize(static_cast<size_t>(length));
  if (act == failpoint::Action::kShortWrite) {
    // Consume a partial payload, then fail: the connection is now mid-frame
    // desynchronized, exactly like a peer reset halfway through a read.
    WMS_RETURN_NOT_OK(ReadUpTo(fd, frame.payload.data(), frame.payload.size() / 2, &got));
    return Status::IOError("injected torn read mid-frame");
  }
  WMS_RETURN_NOT_OK(ReadUpTo(fd, frame.payload.data(), frame.payload.size(), &got));
  if (got != frame.payload.size()) return Status::Corruption("torn frame payload");

  const uint32_t actual_crc = crc32c::Extend(crc32c::Value(head + 1, 16),
                                             frame.payload.data(), frame.payload.size());
  if (actual_crc != declared_crc) return Status::Corruption("frame checksum mismatch");
  if (WMS_FAILPOINT("dist:frame_decode") != failpoint::Action::kOff) {
    return Status::Corruption("injected frame decode failure");
  }
  return frame;
}

}  // namespace wmsketch::dist
