#include "dist/protocol.h"

#include <sstream>

#include "core/snapshot_io.h"

namespace wmsketch::dist {

namespace {

using snapshot::SnapshotReader;
using snapshot::WriteRaw;

}  // namespace

std::string EncodeHello(const HelloPayload& hello) {
  std::ostringstream os(std::ios::binary);
  WriteRaw(os, hello.protocol_version);
  WriteRaw(os, hello.worker_id);
  WriteRaw(os, hello.session_token);
  WriteRaw(os, hello.acked_sync_seq);
  EncodeMergeIdentity(os, hello.identity);
  return std::move(os).str();
}

Result<HelloPayload> DecodeHello(std::string_view payload) {
  SnapshotReader in(payload);
  HelloPayload hello;
  if (!in.ReadRaw(&hello.protocol_version) || !in.ReadRaw(&hello.worker_id) ||
      !in.ReadRaw(&hello.session_token) || !in.ReadRaw(&hello.acked_sync_seq)) {
    return Status::Corruption("truncated hello payload");
  }
  if (hello.protocol_version != kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(hello.protocol_version));
  }
  if (hello.worker_id == 0) return Status::InvalidArgument("worker id must be nonzero");
  WMS_ASSIGN_OR_RETURN(hello.identity, DecodeMergeIdentity(in));
  return hello;
}

std::string EncodeHelloAck(const HelloAckPayload& ack) {
  std::ostringstream os(std::ios::binary);
  WriteRaw(os, ack.session_token);
  WriteRaw(os, ack.resume_ok);
  WriteRaw(os, ack.next_sync_seq);
  return std::move(os).str();
}

Result<HelloAckPayload> DecodeHelloAck(std::string_view payload) {
  SnapshotReader in(payload);
  HelloAckPayload ack;
  if (!in.ReadRaw(&ack.session_token) || !in.ReadRaw(&ack.resume_ok) ||
      !in.ReadRaw(&ack.next_sync_seq)) {
    return Status::Corruption("truncated hello-ack payload");
  }
  return ack;
}

std::string EncodeSync(const SyncHeader& header, std::string_view body) {
  std::ostringstream os(std::ios::binary);
  WriteRaw(os, header.worker_id);
  WriteRaw(os, header.session_token);
  WriteRaw(os, header.sync_seq);
  snapshot::WriteBytes(os, body.data(), body.size());
  return std::move(os).str();
}

Result<SyncHeader> DecodeSyncHeader(std::string_view payload, std::string_view* body) {
  constexpr size_t kHeaderBytes = 3 * sizeof(uint64_t);
  SnapshotReader in(payload);
  SyncHeader header;
  if (!in.ReadRaw(&header.worker_id) || !in.ReadRaw(&header.session_token) ||
      !in.ReadRaw(&header.sync_seq)) {
    return Status::Corruption("truncated sync header");
  }
  *body = payload.substr(kHeaderBytes);
  return header;
}

std::string EncodeAck(const AckPayload& ack) {
  std::ostringstream os(std::ios::binary);
  WriteRaw(os, ack.sync_seq);
  return std::move(os).str();
}

Result<AckPayload> DecodeAck(std::string_view payload) {
  SnapshotReader in(payload);
  AckPayload ack;
  if (!in.ReadRaw(&ack.sync_seq)) return Status::Corruption("truncated ack payload");
  return ack;
}

std::string EncodeError(const Status& status) {
  std::ostringstream os(std::ios::binary);
  WriteRaw(os, static_cast<uint8_t>(status.code()));
  WriteRaw(os, status.detail());
  WriteRaw(os, static_cast<uint32_t>(status.message().size()));
  snapshot::WriteBytes(os, status.message().data(), status.message().size());
  return std::move(os).str();
}

Status DecodeErrorStatus(std::string_view payload) {
  SnapshotReader in(payload);
  uint8_t code = 0;
  uint16_t detail = 0;
  uint32_t len = 0;
  if (!in.ReadRaw(&code) || !in.ReadRaw(&detail) || !in.ReadRaw(&len)) {
    return Status::Corruption("truncated error payload");
  }
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kUnimplemented)) {
    return Status::Corruption("error payload has unknown status code");
  }
  if (!in.CanRead(len, 1)) return Status::Corruption("error message exceeds payload");
  std::string message(len, '\0');
  if (!in.ReadExactRaw(message.data(), len)) {
    return Status::Corruption("truncated error message");
  }
  return Status(static_cast<StatusCode>(code), "remote: " + message, detail);
}

}  // namespace wmsketch::dist
