#pragma once

#include <cstdint>

namespace wmsketch {

/// Progressive-validation (online) error rate, Sec. 7.3 / Blum et al. 1999:
/// each example is scored *before* its label is revealed to the learner; the
/// error rate is cumulative mistakes over iterations. Feed it the pre-update
/// margin that every BudgetedClassifier::Update returns.
class OnlineErrorRate {
 public:
  /// Records one prediction. `margin` is the pre-update margin; `label` the
  /// true label in {-1, +1}. Ties (margin == 0) predict +1, matching
  /// Classify().
  void Record(double margin, int8_t label) {
    ++total_;
    const int8_t predicted = margin >= 0.0 ? 1 : -1;
    if (predicted != label) ++mistakes_;
  }

  /// Mistakes / iterations (0 before any records).
  double Rate() const {
    return total_ == 0 ? 0.0 : static_cast<double>(mistakes_) / static_cast<double>(total_);
  }

  uint64_t mistakes() const { return mistakes_; }
  uint64_t total() const { return total_; }

 private:
  uint64_t mistakes_ = 0;
  uint64_t total_ = 0;
};

}  // namespace wmsketch
