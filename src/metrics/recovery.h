#pragma once

#include <cstddef>
#include <vector>

#include "util/top_k_heap.h"

namespace wmsketch {

/// The relative ℓ2 recovery-error metric of Sec. 7.2:
///
///   RelErr(wᴷ, w*) = ‖wᴷ − w*‖₂ / ‖wᴷ* − w*‖₂,
///
/// where wᴷ is the K-sparse vector of a method's estimated top-K weights,
/// w* the uncompressed model's weights, and wᴷ* the true top-K of w*.
/// Bounded below by 1; equals 1 iff the method returned exactly the true
/// top-K with exact values.
///
/// `estimated_topk` may contain fewer than K entries (the missing mass is
/// counted as zeros, as truncation to a K-sparse vector implies). Entries
/// must have distinct features. Requires 1 <= k <= w_star dimension.
double RelErrTopK(const std::vector<FeatureWeight>& estimated_topk,
                  const std::vector<float>& w_star, size_t k);

/// The true top-k of a dense weight vector, sorted by descending magnitude
/// (ties by ascending feature id) — the wᴷ* reference set.
std::vector<FeatureWeight> ExactTopK(const std::vector<float>& w_star, size_t k);

/// Fraction of `expected`'s features present in `actual` (set recall on the
/// feature ids; weights ignored). Returns 1 for empty `expected`.
double TopKRecall(const std::vector<FeatureWeight>& actual,
                  const std::vector<FeatureWeight>& expected);

}  // namespace wmsketch
