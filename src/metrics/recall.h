#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace wmsketch {

/// A point of a recall-vs-threshold curve (Fig. 10): at log-ratio threshold
/// `threshold`, the fraction of ground-truth items above the threshold that
/// the method's retrieved set contains.
struct RecallPoint {
  double threshold;
  double recall;
  size_t relevant;  // number of ground-truth items above the threshold
};

/// Computes recall of `retrieved` against items whose |ground-truth value|
/// (e.g. |log occurrence ratio|) meets or exceeds each threshold.
/// `truth` holds (item, value) pairs for the full universe of interest.
std::vector<RecallPoint> RecallAboveThresholds(
    const std::unordered_set<uint32_t>& retrieved,
    const std::vector<std::pair<uint32_t, double>>& truth,
    const std::vector<double>& thresholds);

}  // namespace wmsketch
