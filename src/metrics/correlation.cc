#include "metrics/correlation.h"

#include <algorithm>
#include <cstddef>
#include <cassert>
#include <cmath>

namespace wmsketch {

double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(mid), values.end());
  return values[mid];
}

}  // namespace wmsketch
