#include "metrics/recovery.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace wmsketch {

std::vector<FeatureWeight> ExactTopK(const std::vector<float>& w_star, size_t k) {
  TopKHeap heap(k);
  for (uint32_t i = 0; i < w_star.size(); ++i) {
    if (w_star[i] == 0.0f) continue;
    heap.Offer(i, w_star[i]);
  }
  return heap.TopK(k);
}

double RelErrTopK(const std::vector<FeatureWeight>& estimated_topk,
                  const std::vector<float>& w_star, size_t k) {
  assert(k >= 1);
  assert(estimated_topk.size() <= k);

  // ‖w*‖² once; then both K-sparse distances via the identity
  // ‖wᴷ − w*‖² = ‖w*‖² + Σ_{i∈K}[(wᴷᵢ − w*ᵢ)² − w*ᵢ²].
  double norm_sq = 0.0;
  for (const float w : w_star) norm_sq += static_cast<double>(w) * static_cast<double>(w);

  double est_sq = norm_sq;
  std::unordered_set<uint32_t> seen;
  for (const FeatureWeight& fw : estimated_topk) {
    assert(fw.feature < w_star.size());
    const bool inserted = seen.insert(fw.feature).second;
    assert(inserted && "duplicate feature in estimated top-K");
    (void)inserted;
    const double truth = static_cast<double>(w_star[fw.feature]);
    const double diff = static_cast<double>(fw.weight) - truth;
    est_sq += diff * diff - truth * truth;
  }

  double ref_sq = norm_sq;
  for (const FeatureWeight& fw : ExactTopK(w_star, k)) {
    const double truth = static_cast<double>(fw.weight);
    ref_sq -= truth * truth;
  }

  // Guard the degenerate all-top-K-covers-everything case (ref distance 0).
  est_sq = std::max(est_sq, 0.0);
  ref_sq = std::max(ref_sq, 0.0);
  if (ref_sq == 0.0) return est_sq == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  return std::sqrt(est_sq / ref_sq);
}

double TopKRecall(const std::vector<FeatureWeight>& actual,
                  const std::vector<FeatureWeight>& expected) {
  if (expected.empty()) return 1.0;
  std::unordered_set<uint32_t> got;
  got.reserve(actual.size());
  for (const FeatureWeight& fw : actual) got.insert(fw.feature);
  size_t hits = 0;
  for (const FeatureWeight& fw : expected) hits += got.count(fw.feature);
  return static_cast<double>(hits) / static_cast<double>(expected.size());
}

}  // namespace wmsketch
