#include "metrics/recall.h"

#include <cmath>

namespace wmsketch {

std::vector<RecallPoint> RecallAboveThresholds(
    const std::unordered_set<uint32_t>& retrieved,
    const std::vector<std::pair<uint32_t, double>>& truth,
    const std::vector<double>& thresholds) {
  std::vector<RecallPoint> out;
  out.reserve(thresholds.size());
  for (const double threshold : thresholds) {
    size_t relevant = 0;
    size_t hits = 0;
    for (const auto& [item, value] : truth) {
      if (std::fabs(value) < threshold) continue;
      ++relevant;
      hits += retrieved.count(item);
    }
    const double recall =
        relevant == 0 ? 1.0 : static_cast<double>(hits) / static_cast<double>(relevant);
    out.push_back(RecallPoint{threshold, recall, relevant});
  }
  return out;
}

}  // namespace wmsketch
