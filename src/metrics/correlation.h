#pragma once

#include <vector>

namespace wmsketch {

/// Pearson correlation coefficient between two equal-length samples
/// (Fig. 9 reports this between classifier weights and exact relative risk).
/// Returns 0 when either sample has zero variance or fewer than 2 points.
double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys);

/// Sample median (copies and partially sorts; empty input returns 0).
double Median(std::vector<double> values);

}  // namespace wmsketch
