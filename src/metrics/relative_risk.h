#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace wmsketch {

/// Exact relative-risk tracker for the streaming-explanation experiments
/// (Sec. 8.1). Relative risk of a binary attribute x is
///
///   r_x = p(y=1 | x=1) / p(y=1 | x=0),
///
/// the factor by which an attribute's presence raises the outlier
/// probability. This tracker keeps exact per-feature counts (it is the
/// *evaluation* oracle, not a budgeted method) so Figs. 8–9 can score any
/// retrieved feature set against ground truth.
class RelativeRiskTracker {
 public:
  /// Records one (attribute occurrence, outlier label) observation.
  void Observe(uint32_t feature, bool outlier) {
    auto& c = counts_[feature];
    ++c.occurrences;
    if (outlier) ++c.positive;
    ++total_;
    if (outlier) ++total_positive_;
  }

  /// Exact relative risk with add-half (Haldane–Anscombe) smoothing so
  /// never-positive and always-positive attributes stay finite.
  double RelativeRisk(uint32_t feature) const;

  /// log(RelativeRisk), the quantity classifier weights correlate with.
  double LogRelativeRisk(uint32_t feature) const;

  /// Occurrences of a feature (0 if never seen).
  uint64_t Occurrences(uint32_t feature) const;

  uint64_t total() const { return total_; }
  uint64_t total_positive() const { return total_positive_; }

 private:
  struct Counts {
    uint64_t occurrences = 0;
    uint64_t positive = 0;
  };
  std::unordered_map<uint32_t, Counts> counts_;
  uint64_t total_ = 0;
  uint64_t total_positive_ = 0;
};

}  // namespace wmsketch
