#include "metrics/relative_risk.h"

#include <cmath>

namespace wmsketch {

double RelativeRiskTracker::RelativeRisk(uint32_t feature) const {
  auto it = counts_.find(feature);
  const uint64_t occurrences = it == counts_.end() ? 0 : it->second.occurrences;
  const uint64_t positive = it == counts_.end() ? 0 : it->second.positive;

  // p(y=1 | x=1) with the feature present...
  const double p_with =
      (static_cast<double>(positive) + 0.5) / (static_cast<double>(occurrences) + 1.0);
  // ...vs. p(y=1 | x=0) over the rest of the stream.
  const uint64_t rest = total_ - occurrences;
  const uint64_t rest_positive = total_positive_ - positive;
  const double p_without =
      (static_cast<double>(rest_positive) + 0.5) / (static_cast<double>(rest) + 1.0);
  return p_with / p_without;
}

double RelativeRiskTracker::LogRelativeRisk(uint32_t feature) const {
  return std::log(RelativeRisk(feature));
}

uint64_t RelativeRiskTracker::Occurrences(uint32_t feature) const {
  auto it = counts_.find(feature);
  return it == counts_.end() ? 0 : it->second.occurrences;
}

}  // namespace wmsketch
