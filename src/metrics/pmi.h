#pragma once

#include <cmath>
#include <cstdint>

namespace wmsketch {

/// Pointwise mutual information from exact counts (Sec. 8.3):
///
///   PMI(u, v) = log[ p(u,v) / (p(u) p(v)) ]
///             = log[ (c_uv / N_pairs) / ((c_u / N) · (c_v / N)) ].
///
/// Requires all counts and totals positive.
inline double PmiFromCounts(uint64_t pair_count, uint64_t total_pairs, uint64_t u_count,
                            uint64_t v_count, uint64_t total_unigrams) {
  const double p_uv = static_cast<double>(pair_count) / static_cast<double>(total_pairs);
  const double p_u = static_cast<double>(u_count) / static_cast<double>(total_unigrams);
  const double p_v = static_cast<double>(v_count) / static_cast<double>(total_unigrams);
  return std::log(p_uv / (p_u * p_v));
}

}  // namespace wmsketch
