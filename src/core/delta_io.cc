#include "core/delta_io.h"

#include <cstring>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/awm_sketch.h"
#include "core/snapshot_io.h"
#include "core/wm_sketch.h"
#include "sketch/merge_compat.h"

namespace wmsketch {

namespace {

using snapshot::SnapshotReader;
using snapshot::WriteBytes;
using snapshot::WriteRaw;

// Delta payload magic; the payload rides inside a v3 envelope like every
// other snapshot stream, so it is length- and CRC-validated before parsing.
constexpr uint32_t kDeltaMagic = 0x31444d57;  // "WMD1"

constexpr size_t kHeapEntryBytes = sizeof(uint32_t) + sizeof(float);

std::string TagName(uint8_t tag) {
  if (tag > static_cast<uint8_t>(Method::kAwmSketch)) {
    return "method#" + std::to_string(tag);
  }
  return MethodName(static_cast<Method>(tag));
}

// Heap/active-set section: full contents every delta. The tracked set is
// small (KBs) and its entries move between sketch and heap on every update,
// so page-level diffing would buy nothing.
void WriteHeapSection(std::ostream& out, const TopKHeap& heap) {
  const std::vector<FeatureWeight> entries = heap.Entries();
  WriteRaw(out, static_cast<uint64_t>(entries.size()));
  for (const FeatureWeight& fw : entries) {
    WriteRaw(out, fw.feature);
    WriteRaw(out, fw.weight);
  }
}

// Parses a heap section into a fresh staged heap (the receiver's heap is
// only replaced after the whole payload validates). Entries are Set() in
// stream order, which reproduces the sender's internal array exactly — the
// round-trip tests in serialization pin this property.
Status ReadHeapSection(SnapshotReader& in, size_t capacity, TopKHeap* staged) {
  uint64_t n = 0;
  if (!in.ReadRaw(&n)) return Status::Corruption("truncated delta heap header");
  if (n > capacity) return Status::Corruption("delta heap entries exceed capacity");
  if (!in.CanRead(n, kHeapEntryBytes)) {
    return Status::Corruption("delta heap entries exceed stream size");
  }
  *staged = TopKHeap(capacity);
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t feature;
    float weight;
    if (!in.ReadRaw(&feature) || !in.ReadRaw(&weight)) {
      return Status::Corruption("truncated delta heap entry");
    }
    if (staged->Contains(feature)) return Status::Corruption("duplicate delta heap feature");
    staged->Set(feature, weight);
  }
  return Status::OK();
}

// Table section: shape header, then the pages dirtied at-or-after `since` as
// (page index, raw cells) records in ascending page order. Raw bytes — no
// float arithmetic on either end — so applying onto a replica that matches
// the sender's unshipped pages reproduces the sender byte-for-byte.
void WriteDirtyPages(std::ostream& out, const PagedTable& table, uint64_t since,
                     DeltaStats* stats) {
  WriteRaw(out, static_cast<uint64_t>(table.size()));
  WriteRaw(out, static_cast<uint32_t>(table.page_cells()));
  WriteRaw(out, static_cast<uint64_t>(table.num_pages()));
  const uint64_t shipped = table.CountDirtyPagesSince(since);
  WriteRaw(out, shipped);
  table.ForEachDirtyPageSince(since, [&](size_t p, const float* cells, size_t pc) {
    WriteRaw(out, static_cast<uint64_t>(p));
    WriteBytes(out, cells, pc * sizeof(float));
  });
  if (stats != nullptr) {
    stats->pages_total = table.num_pages();
    stats->pages_shipped = shipped;
  }
}

struct StagedPage {
  uint64_t index = 0;
  std::vector<float> cells;
};

// Parses a table section against the receiver's live table shape. Everything
// lands in `staged`; the table itself is untouched, so any Corruption below
// leaves the receiver exactly as it was.
Status ReadStagedPages(SnapshotReader& in, const PagedTable& table,
                       std::vector<StagedPage>* staged) {
  uint64_t cells = 0, num_pages = 0, shipped = 0;
  uint32_t page_cells = 0;
  if (!in.ReadRaw(&cells) || !in.ReadRaw(&page_cells) || !in.ReadRaw(&num_pages)) {
    return Status::Corruption("truncated delta table header");
  }
  if (cells != table.size()) return Status::Corruption("delta table size mismatch");
  // Page indices address the receiver's arena, so the page geometry must
  // match exactly — equal shapes pick equal page sizes (PickPageCells is
  // deterministic), making a mismatch corruption rather than a version skew.
  if (page_cells != table.page_cells()) {
    return Status::Corruption("delta page size mismatch");
  }
  if (num_pages != table.num_pages()) return Status::Corruption("delta page count mismatch");
  if (!in.ReadRaw(&shipped)) return Status::Corruption("truncated delta page header");
  if (shipped > num_pages) return Status::Corruption("delta ships more pages than exist");
  const size_t page_bytes = static_cast<size_t>(page_cells) * sizeof(float);
  if (!in.CanRead(shipped, sizeof(uint64_t) + page_bytes)) {
    return Status::Corruption("delta pages exceed stream size");
  }
  staged->resize(shipped);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < shipped; ++i) {
    StagedPage& sp = (*staged)[i];
    if (!in.ReadRaw(&sp.index)) return Status::Corruption("truncated delta page index");
    if (sp.index >= num_pages) return Status::Corruption("delta page index out of range");
    if (i > 0 && sp.index <= prev) {
      return Status::Corruption("delta page indices not strictly increasing");
    }
    prev = sp.index;
    sp.cells.resize(page_cells);
    if (!in.ReadExactRaw(reinterpret_cast<char*>(sp.cells.data()), page_bytes)) {
      return Status::Corruption("truncated delta page");
    }
  }
  return Status::OK();
}

// Overwrites the staged pages into the live arena. The arena is padded to a
// whole number of pages, so a full-page copy at any valid index is in
// bounds (pad cells are zero on both ends and stay zero).
void CommitStagedPages(PagedTable* table, const std::vector<StagedPage>& staged) {
  const size_t pc = table->page_cells();
  for (const StagedPage& sp : staged) {
    std::memcpy(table->data() + static_cast<size_t>(sp.index) * pc, sp.cells.data(),
                pc * sizeof(float));
    table->MarkDirtyOffset(static_cast<size_t>(sp.index) * pc);
  }
}

Status CheckDeltaHeader(SnapshotReader& in, Method expected) {
  uint32_t magic = 0;
  uint8_t tag = 0;
  if (!in.ReadRaw(&magic)) return Status::Corruption("truncated delta header");
  if (magic != kDeltaMagic) return Status::Corruption("not a delta payload");
  if (!in.ReadRaw(&tag)) return Status::Corruption("truncated delta header");
  if (tag != static_cast<uint8_t>(expected)) {
    return Status::Corruption("delta method tag mismatch (" + TagName(tag) + " vs " +
                              MethodName(expected) + ")");
  }
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------------- identity

Result<MergeIdentity> MergeIdentityOf(Method method, const BudgetedClassifier& impl) {
  MergeIdentity id;
  id.method_tag = static_cast<uint8_t>(method);
  const LearnerOptions& opts = impl.options();
  id.seed = opts.seed;
  id.rate_kind = static_cast<uint8_t>(opts.rate.kind());
  id.eta0 = opts.rate.eta0();
  id.lambda = opts.lambda;
  switch (method) {
    case Method::kWmSketch: {
      const WmSketchConfig& c = static_cast<const WmSketch&>(impl).config();
      id.width = c.width;
      id.depth = c.depth;
      id.heap_capacity = c.heap_capacity;
      return id;
    }
    case Method::kAwmSketch: {
      const AwmSketchConfig& c = static_cast<const AwmSketch&>(impl).config();
      id.width = c.width;
      id.depth = c.depth;
      id.heap_capacity = c.heap_capacity;
      return id;
    }
    default:
      return Status::Unimplemented(MethodName(method) +
                                   " has no exact merge; distributed sync supports the "
                                   "linear sketches (wm, awm) only");
  }
}

Status CheckIdentityCompatible(const MergeIdentity& mine, const MergeIdentity& theirs) {
  if (mine.method_tag != theirs.method_tag) {
    return Status::InvalidArgument("distributed merge: method mismatch (" +
                                   TagName(mine.method_tag) + " vs " +
                                   TagName(theirs.method_tag) + ")");
  }
  const std::string kind = TagName(mine.method_tag);
  WMS_RETURN_NOT_OK(CheckMergeCompatible(kind, SketchShape{mine.width, mine.depth, mine.seed},
                                         SketchShape{theirs.width, theirs.depth, theirs.seed}));
  const bool awm = mine.method_tag == static_cast<uint8_t>(Method::kAwmSketch);
  WMS_RETURN_NOT_OK(CheckCapacityCompatible(kind,
                                            awm ? "active-set capacity" : "heap capacity",
                                            mine.heap_capacity, theirs.heap_capacity));
  if (mine.rate_kind != theirs.rate_kind || mine.eta0 != theirs.eta0) {
    return Status::InvalidArgument(
        kind + " merge: learning-rate schedule mismatch; workers must share the "
               "schedule (kind and eta0) for their updates to compose");
  }
  if (mine.lambda != theirs.lambda) {
    return Status::InvalidArgument(kind + " merge: lambda mismatch (" +
                                   std::to_string(mine.lambda) + " vs " +
                                   std::to_string(theirs.lambda) + ")");
  }
  return Status::OK();
}

void EncodeMergeIdentity(std::ostream& out, const MergeIdentity& id) {
  // Field by field — the struct has padding that must not leak to the wire.
  WriteRaw(out, id.method_tag);
  WriteRaw(out, id.width);
  WriteRaw(out, id.depth);
  WriteRaw(out, id.heap_capacity);
  WriteRaw(out, id.seed);
  WriteRaw(out, id.rate_kind);
  WriteRaw(out, id.eta0);
  WriteRaw(out, id.lambda);
}

Result<MergeIdentity> DecodeMergeIdentity(SnapshotReader& in) {
  MergeIdentity id;
  if (!in.ReadRaw(&id.method_tag) || !in.ReadRaw(&id.width) || !in.ReadRaw(&id.depth) ||
      !in.ReadRaw(&id.heap_capacity) || !in.ReadRaw(&id.seed) ||
      !in.ReadRaw(&id.rate_kind) || !in.ReadRaw(&id.eta0) || !in.ReadRaw(&id.lambda)) {
    return Status::Corruption("truncated merge identity");
  }
  if (id.method_tag != static_cast<uint8_t>(Method::kWmSketch) &&
      id.method_tag != static_cast<uint8_t>(Method::kAwmSketch)) {
    return Status::Corruption("merge identity has unknown method tag");
  }
  if (id.rate_kind > static_cast<uint8_t>(LearningRate::Kind::kInverse)) {
    return Status::Corruption("merge identity has unknown learning-rate kind");
  }
  return id;
}

// ------------------------------------------------------------- dispatch

Result<uint64_t> BeginDeltaWindow(Method method, BudgetedClassifier& impl) {
  switch (method) {
    case Method::kWmSketch:
      return detail::BeginWmDeltaWindow(static_cast<WmSketch&>(impl));
    case Method::kAwmSketch:
      return detail::BeginAwmDeltaWindow(static_cast<AwmSketch&>(impl));
    default:
      return Status::Unimplemented(MethodName(method) + " does not support delta sync");
  }
}

Status SaveDelta(Method method, const BudgetedClassifier& impl, uint64_t since,
                 std::ostream& out, DeltaStats* stats) {
  switch (method) {
    case Method::kWmSketch:
      return detail::SaveWmSketchDelta(static_cast<const WmSketch&>(impl), since, out, stats);
    case Method::kAwmSketch:
      return detail::SaveAwmSketchDelta(static_cast<const AwmSketch&>(impl), since, out,
                                        stats);
    default:
      return Status::Unimplemented(MethodName(method) + " does not support delta sync");
  }
}

Status ApplyDelta(Method method, BudgetedClassifier& impl, SnapshotReader& in) {
  switch (method) {
    case Method::kWmSketch:
      return detail::ApplyWmSketchDelta(static_cast<WmSketch&>(impl), in);
    case Method::kAwmSketch:
      return detail::ApplyAwmSketchDelta(static_cast<AwmSketch&>(impl), in);
    default:
      return Status::Unimplemented(MethodName(method) + " does not support delta sync");
  }
}

namespace detail {

// ------------------------------------------------------------ WM-Sketch

uint64_t BeginWmDeltaWindow(WmSketch& sketch) { return sketch.table_.BeginDeltaWindow(); }

Status SaveWmSketchDelta(const WmSketch& sketch, uint64_t since, std::ostream& out,
                         DeltaStats* stats) {
  WriteRaw(out, kDeltaMagic);
  WriteRaw(out, static_cast<uint8_t>(Method::kWmSketch));
  WriteRaw(out, sketch.t_);
  WriteRaw(out, sketch.scale_);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "wm-delta", "state"));
  WriteHeapSection(out, sketch.heap_);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "wm-delta", "heap"));
  WriteDirtyPages(out, sketch.table_, since, stats);
  return snapshot::SectionGuard(out, "wm-delta", "pages");
}

Status ApplyWmSketchDelta(WmSketch& sketch, SnapshotReader& in) {
  WMS_RETURN_NOT_OK(CheckDeltaHeader(in, Method::kWmSketch));
  uint64_t t = 0;
  double scale = 0.0;
  if (!in.ReadRaw(&t) || !in.ReadRaw(&scale)) {
    return Status::Corruption("truncated delta state");
  }
  // Stage everything before touching the sketch: a Corruption anywhere below
  // leaves it byte-identical to its pre-call state.
  TopKHeap staged_heap(0);
  WMS_RETURN_NOT_OK(ReadHeapSection(in, sketch.config_.heap_capacity, &staged_heap));
  std::vector<StagedPage> staged_pages;
  WMS_RETURN_NOT_OK(ReadStagedPages(in, sketch.table_, &staged_pages));
  sketch.t_ = t;
  sketch.scale_ = scale;
  sketch.heap_ = std::move(staged_heap);
  CommitStagedPages(&sketch.table_, staged_pages);
  return Status::OK();
}

// ----------------------------------------------------------- AWM-Sketch

uint64_t BeginAwmDeltaWindow(AwmSketch& sketch) { return sketch.table_.BeginDeltaWindow(); }

Status SaveAwmSketchDelta(const AwmSketch& sketch, uint64_t since, std::ostream& out,
                          DeltaStats* stats) {
  WriteRaw(out, kDeltaMagic);
  WriteRaw(out, static_cast<uint8_t>(Method::kAwmSketch));
  WriteRaw(out, sketch.t_);
  WriteRaw(out, sketch.sketch_scale_);
  WriteRaw(out, sketch.heap_scale_);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "awm-delta", "state"));
  WriteHeapSection(out, sketch.heap_);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "awm-delta", "heap"));
  WriteDirtyPages(out, sketch.table_, since, stats);
  return snapshot::SectionGuard(out, "awm-delta", "pages");
}

Status ApplyAwmSketchDelta(AwmSketch& sketch, SnapshotReader& in) {
  WMS_RETURN_NOT_OK(CheckDeltaHeader(in, Method::kAwmSketch));
  uint64_t t = 0;
  double sketch_scale = 0.0, heap_scale = 0.0;
  if (!in.ReadRaw(&t) || !in.ReadRaw(&sketch_scale) || !in.ReadRaw(&heap_scale)) {
    return Status::Corruption("truncated delta state");
  }
  TopKHeap staged_heap(0);
  WMS_RETURN_NOT_OK(ReadHeapSection(in, sketch.config_.heap_capacity, &staged_heap));
  std::vector<StagedPage> staged_pages;
  WMS_RETURN_NOT_OK(ReadStagedPages(in, sketch.table_, &staged_pages));
  sketch.t_ = t;
  sketch.sketch_scale_ = sketch_scale;
  sketch.heap_scale_ = heap_scale;
  sketch.heap_ = std::move(staged_heap);
  CommitStagedPages(&sketch.table_, staged_pages);
  return Status::OK();
}

}  // namespace detail

}  // namespace wmsketch
