#include "core/truncation.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace wmsketch {

namespace {
constexpr double kMinScale = 1e-25;
}  // namespace

// ---------------------------------------------------------------- SimpleTruncation

SimpleTruncation::SimpleTruncation(size_t budget_entries, const LearnerOptions& opts)
    : opts_(opts), heap_(budget_entries) {
  assert(budget_entries >= 1);
}

double SimpleTruncation::PredictMargin(const SparseVector& x) const {
  double acc = 0.0;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const std::optional<float> w = heap_.Get(x.index(i));
    if (w.has_value()) acc += static_cast<double>(*w) * static_cast<double>(x.value(i));
  }
  return scale_ * acc;
}

double SimpleTruncation::Update(const SparseVector& x, int8_t y) {
  const double margin = PredictMargin(x);
  ++t_;
  const double eta = opts_.rate.Rate(t_);
  const double g = opts_.loss->Derivative(static_cast<double>(y) * margin);
  if (opts_.lambda > 0.0) scale_ *= (1.0 - eta * opts_.lambda);
  const double step = eta * static_cast<double>(y) * g / scale_;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    const double delta = -step * static_cast<double>(x.value(i));
    const std::optional<float> current = heap_.Get(feature);
    if (current.has_value()) {
      heap_.Add(feature, static_cast<float>(delta));
    } else {
      // A previously-truncated feature restarts from zero; it survives this
      // step's truncation only if its fresh weight beats the current min.
      heap_.Offer(feature, static_cast<float>(delta));
    }
  }
  MaybeRescale();
  return margin;
}

void SimpleTruncation::UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) {
  for (const Example& ex : batch) {
    const double margin = Update(ex.x, ex.y);
    if (margins != nullptr) margins->push_back(margin);
  }
}

void SimpleTruncation::MaybeRescale() {
  if (scale_ >= kMinScale) return;
  heap_.Scale(static_cast<float>(scale_));
  scale_ = 1.0;
}

float SimpleTruncation::WeightEstimate(uint32_t feature) const {
  const std::optional<float> w = heap_.Get(feature);
  if (!w.has_value()) return 0.0f;
  return static_cast<float>(scale_ * static_cast<double>(*w));
}

std::vector<FeatureWeight> SimpleTruncation::TopK(size_t k) const {
  std::vector<FeatureWeight> out;
  out.reserve(heap_.size());
  for (const FeatureWeight& fw : heap_.Entries()) {
    out.push_back(FeatureWeight{fw.feature, static_cast<float>(scale_ * fw.weight)});
  }
  SortByMagnitudeAndTruncate(out, k);
  return out;
}

// --------------------------------------------------------- ProbabilisticTruncation

ProbabilisticTruncation::ProbabilisticTruncation(size_t budget_entries,
                                                 const LearnerOptions& opts)
    : opts_(opts), capacity_(budget_entries), rng_(opts.seed ^ 0x9e3779b97f4a7c15ULL) {
  assert(budget_entries >= 1);
}

double ProbabilisticTruncation::Priority(double a, float raw_weight) {
  const double mag = std::fabs(static_cast<double>(raw_weight));
  if (mag == 0.0) return -std::numeric_limits<double>::max();  // evict zeros first
  return -a / mag;
}

double ProbabilisticTruncation::PredictMargin(const SparseVector& x) const {
  double acc = 0.0;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const IndexedMinHeap::Entry* e = heap_.Find(x.index(i));
    if (e != nullptr) acc += static_cast<double>(e->value) * static_cast<double>(x.value(i));
  }
  return scale_ * acc;
}

double ProbabilisticTruncation::Update(const SparseVector& x, int8_t y) {
  const double margin = PredictMargin(x);
  ++t_;
  const double eta = opts_.rate.Rate(t_);
  const double g = opts_.loss->Derivative(static_cast<double>(y) * margin);
  if (opts_.lambda > 0.0) scale_ *= (1.0 - eta * opts_.lambda);
  const double step = eta * static_cast<double>(y) * g / scale_;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    const double delta = -step * static_cast<double>(x.value(i));
    const IndexedMinHeap::Entry* e = heap_.Find(feature);
    if (e != nullptr) {
      // W ← W^{|S_t/S_{t+1}|}: recompute the key with the entry's original
      // exponential variate A (recovered from the stored priority) and its
      // new weight.
      const double a = -e->priority * std::fabs(static_cast<double>(e->value));
      const float w = e->value + static_cast<float>(delta);
      heap_.Update(feature, Priority(a, w), w);
      continue;
    }
    // New candidate: fresh reservoir key with A ~ Exp(1).
    const double a = rng_.NextExponential();
    const float w = static_cast<float>(delta);
    const double priority = Priority(a, w);
    if (heap_.size() < capacity_) {
      heap_.Insert(feature, priority, w);
    } else if (priority > heap_.Min().priority) {
      heap_.PopMin();
      heap_.Insert(feature, priority, w);
    }
  }
  MaybeRescale();
  return margin;
}

void ProbabilisticTruncation::UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) {
  for (const Example& ex : batch) {
    const double margin = Update(ex.x, ex.y);
    if (margins != nullptr) margins->push_back(margin);
  }
}

void ProbabilisticTruncation::MaybeRescale() {
  if (scale_ >= kMinScale) return;
  const float f = static_cast<float>(scale_);
  // Weights shrink by f; priorities -A/|w| grow by 1/f — both are global
  // positive monotone maps, so heap order is untouched.
  heap_.MutateAllOrderPreserving([f](IndexedMinHeap::Entry& e) {
    e.value *= f;
    e.priority /= static_cast<double>(f);
  });
  scale_ = 1.0;
}

float ProbabilisticTruncation::WeightEstimate(uint32_t feature) const {
  const IndexedMinHeap::Entry* e = heap_.Find(feature);
  if (e == nullptr) return 0.0f;
  return static_cast<float>(scale_ * static_cast<double>(e->value));
}

std::vector<FeatureWeight> ProbabilisticTruncation::TopK(size_t k) const {
  std::vector<FeatureWeight> out;
  out.reserve(heap_.size());
  for (const auto& e : heap_.entries()) {
    out.push_back(FeatureWeight{e.key, static_cast<float>(scale_ * e.value)});
  }
  SortByMagnitudeAndTruncate(out, k);
  return out;
}

}  // namespace wmsketch
