#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/budget.h"
#include "linear/classifier.h"

namespace wmsketch {

/// A labeled multiclass example: sparse features and a class index in
/// [0, num_classes).
struct MulticlassExample {
  SparseVector x;
  uint32_t label = 0;
};

/// Multiclass extension of the sketched classifiers (Sec. 9): one budgeted
/// binary model per class, trained one-vs-all; inference returns the class
/// with the maximum margin.
///
/// Any budgeted method can back the per-class models; the paper describes
/// the construction for the WM-Sketch, and the AWM-Sketch slots in
/// identically. The per-class seeds are decorrelated so hash collisions
/// differ across classes.
class MulticlassClassifier {
 public:
  /// Constructs `num_classes` copies of `config`, one per class.
  /// Requires num_classes >= 2.
  MulticlassClassifier(size_t num_classes, const BudgetConfig& config,
                       const LearnerOptions& opts);

  /// The class with the highest margin (ties to the lowest index).
  size_t PredictClass(const SparseVector& x) const;

  /// One-vs-all update: class `label` sees +1, all others see −1.
  /// Requires label < num_classes. Returns the pre-update predicted class.
  size_t Update(const SparseVector& x, size_t label);

  /// Batch ingest, equivalent to updating example by example; mirrors
  /// BudgetedClassifier::UpdateBatch for the multiclass extension.
  void UpdateBatch(std::span<const MulticlassExample> batch);

  /// Per-class margins (diagnostics).
  std::vector<double> Margins(const SparseVector& x) const;

  /// The binary model for one class (e.g. for per-class top-K retrieval).
  const BudgetedClassifier& class_model(size_t c) const { return *models_[c]; }

  size_t num_classes() const { return models_.size(); }
  /// Sum of the per-class footprints.
  size_t MemoryCostBytes() const;

 private:
  std::vector<std::unique_ptr<BudgetedClassifier>> models_;
};

}  // namespace wmsketch
