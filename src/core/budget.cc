#include "core/budget.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "core/awm_sketch.h"
#include "core/frequent_features.h"
#include "core/truncation.h"
#include "core/wm_sketch.h"
#include "linear/feature_hashing.h"
#include "util/math.h"
#include "util/memory_cost.h"

namespace wmsketch {

std::string MethodName(Method method) {
  switch (method) {
    case Method::kSimpleTruncation:
      return "trun";
    case Method::kProbabilisticTruncation:
      return "ptrun";
    case Method::kSpaceSavingFrequent:
      return "ss";
    case Method::kCountMinFrequent:
      return "cmff";
    case Method::kFeatureHashing:
      return "hash";
    case Method::kWmSketch:
      return "wm";
    case Method::kAwmSketch:
      return "awm";
  }
  return "?";
}

const std::vector<Method>& AllMethods() {
  static const std::vector<Method> kAll = {
      Method::kSimpleTruncation,    Method::kProbabilisticTruncation,
      Method::kSpaceSavingFrequent, Method::kCountMinFrequent,
      Method::kFeatureHashing,      Method::kWmSketch,
      Method::kAwmSketch,
  };
  return kAll;
}

static_assert(kMaxSketchDepth == WmSketch::kMaxDepth &&
                  kMaxSketchDepth == AwmSketch::kMaxDepth,
              "budget planner depth cap out of sync with the sketches");

namespace {

Status ShapeError(ConfigError error, const std::string& what) {
  return Status::InvalidArgument(what, ToDetail(error));
}

// Shared table-shape checks for the sketch-backed methods.
Status ValidateTable(uint32_t width, uint32_t depth) {
  if (!IsPowerOfTwo(width)) {
    return ShapeError(ConfigError::kWidthNotPowerOfTwo,
                      "width must be a nonzero power of two, got " + std::to_string(width));
  }
  if (depth < 1) return ShapeError(ConfigError::kDepthZero, "depth must be >= 1");
  if (depth > kMaxSketchDepth) {
    return ShapeError(ConfigError::kDepthTooLarge,
                      "depth " + std::to_string(depth) + " exceeds the maximum " +
                          std::to_string(kMaxSketchDepth));
  }
  return Status::OK();
}

}  // namespace

Status BudgetConfig::Validate() const {
  switch (method) {
    case Method::kSimpleTruncation:
    case Method::kProbabilisticTruncation:
    case Method::kSpaceSavingFrequent:
      if (heap_capacity < 1) {
        return ShapeError(ConfigError::kActiveSetEmpty,
                          MethodName(method) + " requires at least one tracked entry");
      }
      return Status::OK();
    case Method::kFeatureHashing:
      if (!IsPowerOfTwo(width)) {
        return ShapeError(ConfigError::kWidthNotPowerOfTwo,
                          "bucket count must be a nonzero power of two, got " +
                              std::to_string(width));
      }
      return Status::OK();
    case Method::kCountMinFrequent:
      WMS_RETURN_NOT_OK(ValidateTable(width, depth));
      if (heap_capacity < 1) {
        return ShapeError(ConfigError::kActiveSetEmpty,
                          "cmff requires at least one monitored entry");
      }
      return Status::OK();
    case Method::kWmSketch:
      // heap_capacity 0 is legal for WM (it disables passive top-K tracking).
      return ValidateTable(width, depth);
    case Method::kAwmSketch:
      WMS_RETURN_NOT_OK(ValidateTable(width, depth));
      if (heap_capacity < 1) {
        return ShapeError(ConfigError::kActiveSetEmpty,
                          "awm requires a non-empty active set");
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown method");
}

size_t BudgetConfig::MemoryCostBytes() const {
  switch (method) {
    case Method::kSimpleTruncation:
      return HeapBytes(heap_capacity);
    case Method::kProbabilisticTruncation:
    case Method::kSpaceSavingFrequent:
      return HeapBytes(heap_capacity, /*aux_per_entry=*/1);
    case Method::kFeatureHashing:
      return TableBytes(width);
    case Method::kCountMinFrequent:
      return TableBytes(static_cast<size_t>(width) * depth) + HeapBytes(heap_capacity);
    case Method::kWmSketch:
    case Method::kAwmSketch:
      return TableBytes(static_cast<size_t>(width) * depth) + HeapBytes(heap_capacity);
  }
  return 0;
}

std::string BudgetConfig::ToString() const {
  std::ostringstream os;
  os << MethodName(method) << "(";
  switch (method) {
    case Method::kSimpleTruncation:
    case Method::kProbabilisticTruncation:
    case Method::kSpaceSavingFrequent:
      os << "K=" << heap_capacity;
      break;
    case Method::kFeatureHashing:
      os << "w=" << width;
      break;
    default:
      os << "|S|=" << heap_capacity << ", w=" << width << ", d=" << depth;
  }
  os << ")";
  return os.str();
}

namespace {

// Largest power of two with `cells` * 4 bytes <= `bytes` (>= 1 even for
// degenerate inputs; DefaultConfig rejects sub-minimum budgets before this
// can matter).
uint32_t WidthFittingBytes(size_t bytes) {
  const size_t cells = bytes / kBytesPerWeight;
  uint64_t w = 1;
  while (w * 2 <= cells) w *= 2;
  return static_cast<uint32_t>(w);
}

}  // namespace

Result<BudgetConfig> DefaultConfig(Method method, size_t budget_bytes) {
  if (budget_bytes < kMinBudgetBytes) {
    return Status::OutOfRange(
        "budget " + std::to_string(budget_bytes) + " bytes is below the " +
            std::to_string(kMinBudgetBytes) + "-byte minimum",
        ToDetail(ConfigError::kBudgetTooSmall));
  }
  BudgetConfig cfg;
  cfg.method = method;
  switch (method) {
    case Method::kSimpleTruncation:
      cfg.heap_capacity = budget_bytes / HeapBytes(1);
      break;
    case Method::kProbabilisticTruncation:
    case Method::kSpaceSavingFrequent:
      cfg.heap_capacity = budget_bytes / HeapBytes(1, 1);
      break;
    case Method::kFeatureHashing:
      cfg.width = WidthFittingBytes(budget_bytes);
      break;
    case Method::kCountMinFrequent: {
      cfg.heap_capacity = (budget_bytes / 2) / HeapBytes(1);
      cfg.depth = 2;
      cfg.width = WidthFittingBytes((budget_bytes - HeapBytes(cfg.heap_capacity)) / cfg.depth);
      break;
    }
    case Method::kWmSketch: {
      // Fig. 6: width 2^7 (2^8 at large budgets), depth scaling with budget,
      // a 1 KB top-K heap (half the budget below 2 KB). Matches the Table 2
      // optima at 2/8/16/32 KB.
      cfg.heap_capacity = std::min<size_t>(128, (budget_bytes / 2) / HeapBytes(1));
      const size_t sketch_bytes = budget_bytes - HeapBytes(cfg.heap_capacity);
      cfg.width = 128;
      if (TableBytes(cfg.width) > sketch_bytes) cfg.width = 64;
      cfg.depth = static_cast<uint32_t>(sketch_bytes / TableBytes(cfg.width));
      if (cfg.depth > 32) {
        cfg.width = 256;
        cfg.depth = static_cast<uint32_t>(sketch_bytes / TableBytes(cfg.width));
      }
      if (cfg.depth < 1) cfg.depth = 1;
      break;
    }
    case Method::kAwmSketch: {
      // Half to the active set, half to a depth-1 sketch (Sec. 7.3).
      cfg.heap_capacity = (budget_bytes / 2) / HeapBytes(1);
      cfg.depth = 1;
      cfg.width = WidthFittingBytes(budget_bytes - HeapBytes(cfg.heap_capacity));
      break;
    }
  }
  assert(cfg.MemoryCostBytes() <= budget_bytes);
  assert(cfg.Validate().ok());
  return cfg;
}

std::vector<BudgetConfig> EnumerateConfigs(Method method, size_t budget_bytes) {
  std::vector<BudgetConfig> out;
  if (budget_bytes < kMinBudgetBytes) return out;
  switch (method) {
    case Method::kSimpleTruncation:
    case Method::kProbabilisticTruncation:
    case Method::kSpaceSavingFrequent:
    case Method::kFeatureHashing:
      out.push_back(DefaultConfig(method, budget_bytes).value());
      return out;
    case Method::kCountMinFrequent: {
      for (const double heap_fraction : {0.25, 0.5, 0.75}) {
        BudgetConfig cfg;
        cfg.method = method;
        cfg.heap_capacity =
            static_cast<size_t>(static_cast<double>(budget_bytes) * heap_fraction) /
            HeapBytes(1);
        if (cfg.heap_capacity < 16) continue;
        const size_t table_bytes = budget_bytes - HeapBytes(cfg.heap_capacity);
        for (const uint32_t depth : {1u, 2u, 4u}) {
          if (table_bytes / depth < TableBytes(16)) continue;
          cfg.depth = depth;
          cfg.width = WidthFittingBytes(table_bytes / depth);
          out.push_back(cfg);
        }
      }
      return out;
    }
    case Method::kWmSketch:
    case Method::kAwmSketch: {
      for (const double heap_fraction : {0.25, 0.5, 0.75}) {
        BudgetConfig base;
        base.method = method;
        base.heap_capacity =
            static_cast<size_t>(static_cast<double>(budget_bytes) * heap_fraction) /
            HeapBytes(1);
        if (base.heap_capacity < 16) continue;
        const size_t sketch_bytes = budget_bytes - HeapBytes(base.heap_capacity);
        // Depth-major view: for each power-of-two width, the largest depth
        // that fits; skip degenerate widths.
        for (uint32_t width = 64; TableBytes(width) <= sketch_bytes; width *= 2) {
          BudgetConfig cfg = base;
          cfg.width = width;
          cfg.depth = static_cast<uint32_t>(sketch_bytes / TableBytes(width));
          if (cfg.depth < 1) continue;
          if (cfg.depth > WmSketch::kMaxDepth) cfg.depth = WmSketch::kMaxDepth;
          out.push_back(cfg);
          // Also the depth-1 variant at this width (the AWM sweet spot).
          if (cfg.depth > 1) {
            BudgetConfig d1 = cfg;
            d1.depth = 1;
            out.push_back(d1);
          }
        }
      }
      return out;
    }
  }
  return out;
}

std::unique_ptr<BudgetedClassifier> MakeClassifier(const BudgetConfig& config,
                                                   const LearnerOptions& opts) {
  switch (config.method) {
    case Method::kSimpleTruncation:
      return std::make_unique<SimpleTruncation>(config.heap_capacity, opts);
    case Method::kProbabilisticTruncation:
      return std::make_unique<ProbabilisticTruncation>(config.heap_capacity, opts);
    case Method::kSpaceSavingFrequent:
      return std::make_unique<SpaceSavingFrequent>(config.heap_capacity, opts);
    case Method::kCountMinFrequent:
      return std::make_unique<CountMinFrequent>(config.width, config.depth,
                                                config.heap_capacity, opts);
    case Method::kFeatureHashing:
      return std::make_unique<FeatureHashingClassifier>(config.width, opts);
    case Method::kWmSketch: {
      WmSketchConfig c{config.width, config.depth, config.heap_capacity};
      return std::make_unique<WmSketch>(c, opts);
    }
    case Method::kAwmSketch: {
      AwmSketchConfig c{config.width, config.depth, config.heap_capacity};
      return std::make_unique<AwmSketch>(c, opts);
    }
  }
  return nullptr;
}

}  // namespace wmsketch
