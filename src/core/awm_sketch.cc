#include "core/awm_sketch.h"

#include <cassert>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "util/math.h"
#include "util/random.h"

namespace wmsketch {

namespace {
constexpr double kMinScale = 1e-25;
}  // namespace

AwmSketch::AwmSketch(const AwmSketchConfig& config, const LearnerOptions& opts)
    : config_(config),
      opts_(opts),
      sqrt_depth_(std::sqrt(static_cast<double>(config.depth))),
      heap_(config.heap_capacity) {
  assert(IsPowerOfTwo(config.width));
  assert(config.depth >= 1 && config.depth <= kMaxDepth);
  assert(config.heap_capacity >= 1);
  SplitMix64 sm(opts.seed);
  rows_.reserve(config.depth);
  for (uint32_t j = 0; j < config.depth; ++j) rows_.emplace_back(sm.Next(), config.width);
  table_.assign(static_cast<size_t>(config.width) * config.depth, 0.0f);
}

double AwmSketch::PredictMargin(const SparseVector& x) const {
  // τ = Σ_{i∈S} S[i]·x_i + zᵀR·x_tail (Algorithm 2's prediction split).
  double acc = 0.0;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    const std::optional<float> exact = heap_.Get(feature);
    const double w = exact.has_value()
                         ? heap_scale_ * static_cast<double>(*exact)
                         : static_cast<double>(SketchQuery(feature));
    acc += w * static_cast<double>(x.value(i));
  }
  return acc;
}

float AwmSketch::SketchQuery(uint32_t feature) const {
  float est[kMaxDepth];
  for (uint32_t j = 0; j < config_.depth; ++j) {
    uint32_t bucket;
    float sign;
    rows_[j].BucketAndSign(feature, &bucket, &sign);
    est[j] = sign * Row(j)[bucket];
  }
  const float raw = MedianInPlace(est, config_.depth);
  return static_cast<float>(sqrt_depth_ * sketch_scale_ * static_cast<double>(raw));
}

void AwmSketch::SketchAdd(uint32_t feature, double delta) {
  // Inverse of SketchQuery's scaling: the stored cell moves by
  // σ·delta/(√s·α) so the true estimate moves by delta in every row.
  const double raw_delta = delta / (sqrt_depth_ * sketch_scale_);
  for (uint32_t j = 0; j < config_.depth; ++j) {
    uint32_t bucket;
    float sign;
    rows_[j].BucketAndSign(feature, &bucket, &sign);
    Row(j)[bucket] += static_cast<float>(static_cast<double>(sign) * raw_delta);
  }
}

double AwmSketch::Update(const SparseVector& x, int8_t y) {
  const double margin = PredictMargin(x);
  ++t_;
  const double eta = opts_.rate.Rate(t_);
  const double g = opts_.loss->Derivative(static_cast<double>(y) * margin);

  // ℓ2 decay on both structures: S ← (1−λη)S and z ← (1−λη)z, via scales.
  if (opts_.lambda > 0.0) {
    const double decay = 1.0 - eta * opts_.lambda;
    heap_scale_ *= decay;
    sketch_scale_ *= decay;
  }

  const double step = eta * static_cast<double>(y) * g;  // subtracted per unit x_i
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    const double xi = static_cast<double>(x.value(i));
    if (heap_.Contains(feature)) {
      // Exact gradient on an active-set member, written through the scale.
      heap_.Add(feature, static_cast<float>(-step * xi / heap_scale_));
      continue;
    }
    // Candidate weight for a tail feature.
    const double w_tilde = static_cast<double>(SketchQuery(feature)) - step * xi;
    if (!heap_.full()) {
      heap_.Set(feature, static_cast<float>(w_tilde / heap_scale_));
      continue;
    }
    const FeatureWeight min = heap_.Min();
    const double min_true = heap_scale_ * static_cast<double>(min.weight);
    if (std::fabs(w_tilde) > std::fabs(min_true)) {
      // Fold the evictee back into the sketch so its estimate matches its
      // exact weight, then hand its slot to the newcomer. The newcomer's
      // prior sketch mass is left in place (lazy update, Sec. 5.2).
      heap_.PopMin();
      SketchAdd(min.feature, min_true - static_cast<double>(SketchQuery(min.feature)));
      heap_.Set(feature, static_cast<float>(w_tilde / heap_scale_));
    } else {
      // Tail update: apply the gradient inside the sketch.
      SketchAdd(feature, -step * xi);
    }
  }
  MaybeRescale();
  return margin;
}

void AwmSketch::UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) {
  for (const Example& ex : batch) {
    const double margin = Update(ex.x, ex.y);
    if (margins != nullptr) margins->push_back(margin);
  }
}

WeightEstimator AwmSketch::EstimatorSnapshot() const {
  struct State {
    std::unordered_map<uint32_t, float> active;  // raw active-set weights
    std::vector<SignedBucketHash> rows;
    std::vector<float> table;
    uint32_t width;
    uint32_t depth;
    double heap_scale;
    double sketch_scale;  // √s·α, the factor SketchQuery applies
  };
  State st;
  st.active.reserve(heap_.size());
  for (const FeatureWeight& fw : heap_.Entries()) st.active.emplace(fw.feature, fw.weight);
  st.rows = rows_;
  st.table = table_;
  st.width = config_.width;
  st.depth = config_.depth;
  st.heap_scale = heap_scale_;
  st.sketch_scale = sqrt_depth_ * sketch_scale_;
  auto shared = std::make_shared<const State>(std::move(st));
  return [shared](uint32_t feature) {
    const auto it = shared->active.find(feature);
    if (it != shared->active.end()) {
      return static_cast<float>(shared->heap_scale * static_cast<double>(it->second));
    }
    float est[kMaxDepth];
    for (uint32_t j = 0; j < shared->depth; ++j) {
      uint32_t bucket;
      float sign;
      shared->rows[j].BucketAndSign(feature, &bucket, &sign);
      est[j] = sign * shared->table[static_cast<size_t>(j) * shared->width + bucket];
    }
    return static_cast<float>(shared->sketch_scale *
                              static_cast<double>(MedianInPlace(est, shared->depth)));
  };
}

void AwmSketch::MaybeRescale() {
  if (sketch_scale_ < kMinScale) {
    const float f = static_cast<float>(sketch_scale_);
    for (float& v : table_) v *= f;
    sketch_scale_ = 1.0;
  }
  if (heap_scale_ < kMinScale) {
    heap_.Scale(static_cast<float>(heap_scale_));
    heap_scale_ = 1.0;
  }
}

float AwmSketch::WeightEstimate(uint32_t feature) const {
  const std::optional<float> exact = heap_.Get(feature);
  if (exact.has_value()) return static_cast<float>(heap_scale_ * static_cast<double>(*exact));
  return SketchQuery(feature);
}

std::vector<FeatureWeight> AwmSketch::TopK(size_t k) const {
  std::vector<FeatureWeight> out;
  out.reserve(heap_.size());
  for (const FeatureWeight& fw : heap_.Entries()) {
    out.push_back(
        FeatureWeight{fw.feature, static_cast<float>(heap_scale_ * fw.weight)});
  }
  SortByMagnitudeAndTruncate(out, k);
  return out;
}

}  // namespace wmsketch
