#include "core/awm_sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "sketch/hash_plan.h"
#include "sketch/merge_compat.h"
#include "sketch/read_path.h"
#include "util/math.h"
#include "util/random.h"
#include "util/simd.h"

namespace wmsketch {

namespace {

constexpr double kMinScale = 1e-25;

/// The frozen AWM read model: the active set as a hash map of *raw* weights
/// plus its scale (so margins keep the live path's double-precision
/// heap_scale·raw products), and the published pages of the tail sketch
/// (shared across snapshots; only dirtied pages were copied). Answers are
/// bit-identical to what the live model answered at capture time.
class AwmReadModel final : public ReadModel {
 public:
  AwmReadModel(std::unordered_map<uint32_t, float> active, double heap_scale,
               std::vector<SignedBucketHash> rows, PageSet<float> pages,
               double estimate_factor)
      : active_(std::move(active)),
        heap_scale_(heap_scale),
        rows_(std::move(rows)),
        pages_(std::move(pages)),
        estimate_factor_(estimate_factor) {}

  double PredictMargin(const SparseVector& x) const override {
    double acc = 0.0;
    for (size_t i = 0; i < x.nnz(); ++i) {
      const uint32_t feature = x.index(i);
      const auto it = active_.find(feature);
      const double w = it != active_.end()
                           ? heap_scale_ * static_cast<double>(it->second)
                           : static_cast<double>(TailQuery(feature));
      acc += w * static_cast<double>(x.value(i));
    }
    return acc;
  }

  // A batched AWM margin has no second consumer to share hashes with (no
  // scatter follows a read-only margin), so the fused per-example loop —
  // which already hashes each tail (feature, row) pair exactly once — is the
  // single-hash optimum; a plan would only add buffer traffic.
  void PredictBatch(std::span<const Example> batch, double* out) const override {
    for (size_t e = 0; e < batch.size(); ++e) out[e] = PredictMargin(batch[e].x);
  }

  float Estimate(uint32_t feature) const override {
    const auto it = active_.find(feature);
    if (it != active_.end()) {
      return static_cast<float>(heap_scale_ * static_cast<double>(it->second));
    }
    return TailQuery(feature);
  }

  void EstimateBatch(std::span<const uint32_t> features, float* out) const override {
    readpath::ActiveEstimateBatchPaged(
        pages_.view(), rows_, features, estimate_factor_,
        [this](uint32_t feature) -> std::optional<float> {
          const auto it = active_.find(feature);
          if (it == active_.end()) return std::nullopt;
          return static_cast<float>(heap_scale_ * static_cast<double>(it->second));
        },
        out);
  }

  size_t ResidentBytes() const override {
    return pages_.ResidentBytes() + active_.size() * (sizeof(uint32_t) + sizeof(float));
  }

 private:
  float TailQuery(uint32_t feature) const {
    return readpath::FusedEstimatePaged(pages_.view(), rows_, feature, estimate_factor_);
  }

  std::unordered_map<uint32_t, float> active_;  // raw active-set weights
  double heap_scale_;
  std::vector<SignedBucketHash> rows_;
  PageSet<float> pages_;
  double estimate_factor_;  // √s·α for the tail sketch
};

}  // namespace

AwmSketch::AwmSketch(const AwmSketchConfig& config, const LearnerOptions& opts)
    : config_(config),
      opts_(opts),
      sqrt_depth_(std::sqrt(static_cast<double>(config.depth))),
      heap_(config.heap_capacity) {
  assert(IsPowerOfTwo(config.width));
  assert(config.depth >= 1 && config.depth <= kMaxDepth);
  assert(config.heap_capacity >= 1);
  SplitMix64 sm(opts.seed);
  rows_.reserve(config.depth);
  for (uint32_t j = 0; j < config.depth; ++j) rows_.emplace_back(sm.Next(), config.width);
  table_ = PagedTable(static_cast<size_t>(config.width) * config.depth);
}

double AwmSketch::PredictMargin(const SparseVector& x) const {
  // τ = Σ_{i∈S} S[i]·x_i + zᵀR·x_tail (Algorithm 2's prediction split).
  // Standalone queries keep the fused loop (each tail pair hashed once);
  // updates route through PredictMarginWithPlan so the tail hashes are
  // reused by the gradient stage.
  double acc = 0.0;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    const std::optional<float> exact = heap_.Get(feature);
    const double w = exact.has_value()
                         ? heap_scale_ * static_cast<double>(*exact)
                         : static_cast<double>(SketchQuery(feature));
    acc += w * static_cast<double>(x.value(i));
  }
  return acc;
}

double AwmSketch::PredictMarginWithPlan(const SparseVector& x, HashPlan& plan) const {
  // As PredictMargin, but each tail feature's hashes land in its plan slot
  // (filled on first use) where the gradient stage below reuses them.
  double acc = 0.0;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    const std::optional<float> exact = heap_.Get(feature);
    const double w = exact.has_value()
                         ? heap_scale_ * static_cast<double>(*exact)
                         : static_cast<double>(SketchQueryFromPlan(plan, i, feature));
    acc += w * static_cast<double>(x.value(i));
  }
  return acc;
}

void AwmSketch::PredictBatch(std::span<const Example> batch, double* margins) const {
  // Read-only margins have no scatter stage to share hashes with, so the
  // fused loop is already single-hash; see AwmReadModel::PredictBatch.
  for (size_t e = 0; e < batch.size(); ++e) margins[e] = PredictMargin(batch[e].x);
}

void AwmSketch::EstimateBatch(std::span<const uint32_t> features, float* out) const {
  readpath::ActiveGatherMedianBatch(
      table_.data(), rows_, features, sqrt_depth_ * sketch_scale_,
      [this](uint32_t feature) -> std::optional<float> {
        const std::optional<float> raw = heap_.Get(feature);
        if (!raw.has_value()) return std::nullopt;
        return static_cast<float>(heap_scale_ * static_cast<double>(*raw));
      },
      out);
}

std::unique_ptr<const ReadModel> AwmSketch::MakeReadModel() const {
  std::unordered_map<uint32_t, float> active;
  active.reserve(heap_.size());
  for (const FeatureWeight& fw : heap_.Entries()) active.emplace(fw.feature, fw.weight);
  return std::make_unique<AwmReadModel>(std::move(active), heap_scale_, rows_,
                                        table_.SharePages(), sqrt_depth_ * sketch_scale_);
}

float AwmSketch::SketchQuery(uint32_t feature) const {
  float est[kMaxDepth];
  for (uint32_t j = 0; j < config_.depth; ++j) {
    uint32_t bucket;
    float sign;
    rows_[j].BucketAndSign(feature, &bucket, &sign);
    est[j] = sign * Row(j)[bucket];
  }
  const float raw = MedianInPlace(est, config_.depth);
  return static_cast<float>(sqrt_depth_ * sketch_scale_ * static_cast<double>(raw));
}

float AwmSketch::SketchQueryFromPlan(HashPlan& plan, size_t i, uint32_t feature) const {
  if (!plan.has(i)) plan.FillSlot(rows_, i, feature);  // first touch: hash once
  float est[kMaxDepth];
  simd::GatherSigned(table_.data(), plan.offsets(i), plan.signs(i), plan.depth(), est);
  const float raw = MedianInPlace(est, plan.depth());
  return static_cast<float>(sqrt_depth_ * sketch_scale_ * static_cast<double>(raw));
}

void AwmSketch::SketchAdd(uint32_t feature, double delta) {
  // Inverse of SketchQuery's scaling: the stored cell moves by
  // σ·delta/(√s·α) so the true estimate moves by delta in every row.
  const double raw_delta = delta / (sqrt_depth_ * sketch_scale_);
  for (uint32_t j = 0; j < config_.depth; ++j) {
    uint32_t bucket;
    float sign;
    rows_[j].BucketAndSign(feature, &bucket, &sign);
    table_.MarkDirtyOffset(static_cast<size_t>(j) * config_.width + bucket);
    Row(j)[bucket] += static_cast<float>(static_cast<double>(sign) * raw_delta);
  }
}

void AwmSketch::SketchAddFromPlan(HashPlan& plan, size_t i, uint32_t feature,
                                  double delta) {
  if (!plan.has(i)) plan.FillSlot(rows_, i, feature);  // first touch: hash once
  const double raw_delta = delta / (sqrt_depth_ * sketch_scale_);
  const uint32_t* off = plan.offsets(i);
  const float* sg = plan.signs(i);
  table_.MarkPlanDirty(off, plan.depth());
  float* tbl = table_.data();
  for (uint32_t j = 0; j < plan.depth(); ++j) {
    tbl[off[j]] += static_cast<float>(static_cast<double>(sg[j]) * raw_delta);
  }
}

double AwmSketch::Update(const SparseVector& x, int8_t y) {
  // One lazy hash plan per example: a slot is hashed the first time its
  // feature touches the sketch (margin query, candidate query, or tail
  // scatter) and reused from then on. Active-set members — whose weights
  // live in the heap and never touch the sketch — are never hashed, exactly
  // as in the pre-plan code, and membership is looked up no more often.
  HashPlan& plan = TlsPlan();
  plan.InitLazy(config_.depth, x.nnz());
  return UpdateWithPlan(x, y, plan);
}

double AwmSketch::UpdateWithPlan(const SparseVector& x, int8_t y, HashPlan& plan) {
  const double margin = PredictMarginWithPlan(x, plan);
  ++t_;
  const double eta = opts_.rate.Rate(t_);
  const double g = opts_.loss->Derivative(static_cast<double>(y) * margin);

  // ℓ2 decay on both structures: S ← (1−λη)S and z ← (1−λη)z, via scales.
  if (opts_.lambda > 0.0) {
    const double decay = 1.0 - eta * opts_.lambda;
    heap_scale_ *= decay;
    sketch_scale_ *= decay;
  }

  const double step = eta * static_cast<double>(y) * g;  // subtracted per unit x_i
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    const double xi = static_cast<double>(x.value(i));
    if (heap_.Contains(feature)) {
      // Exact gradient on an active-set member, written through the scale.
      heap_.Add(feature, static_cast<float>(-step * xi / heap_scale_));
      continue;
    }
    // Candidate weight for a tail feature.
    const double w_tilde =
        static_cast<double>(SketchQueryFromPlan(plan, i, feature)) - step * xi;
    if (!heap_.full()) {
      heap_.Set(feature, static_cast<float>(w_tilde / heap_scale_));
      continue;
    }
    const FeatureWeight min = heap_.Min();
    const double min_true = heap_scale_ * static_cast<double>(min.weight);
    if (std::fabs(w_tilde) > std::fabs(min_true)) {
      // Fold the evictee back into the sketch so its estimate matches its
      // exact weight, then hand its slot to the newcomer. The newcomer's
      // prior sketch mass is left in place (lazy update, Sec. 5.2). The
      // evictee is generally not a feature of x, so it pays the direct
      // (hashing) query/add path.
      heap_.PopMin();
      SketchAdd(min.feature, min_true - static_cast<double>(SketchQuery(min.feature)));
      heap_.Set(feature, static_cast<float>(w_tilde / heap_scale_));
    } else {
      // Tail update: apply the gradient inside the sketch via the plan.
      SketchAddFromPlan(plan, i, feature, -step * xi);
    }
  }
  MaybeRescale();
  return margin;
}

void AwmSketch::UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) {
  // Unlike WM/feature hashing, the AWM cannot hash a batch up front: which
  // features touch the sketch depends on live active-set membership, which
  // each update mutates. It reuses one lazy per-thread plan across the
  // batch instead (allocation amortizes via the TLS buffers); bit-identical
  // to the per-example loop.
  HashPlan& plan = TlsPlan();
  for (const Example& ex : batch) {
    plan.InitLazy(config_.depth, ex.x.nnz());
    const double margin = UpdateWithPlan(ex.x, ex.y, plan);
    if (margins != nullptr) margins->push_back(margin);
  }
}

Status AwmSketch::CanMerge(const BudgetedClassifier& other) const {
  const auto* o = dynamic_cast<const AwmSketch*>(&other);
  if (o == nullptr) {
    return Status::InvalidArgument("awm merge: cannot merge a '" + other.Name() +
                                   "' model into an awm sketch");
  }
  WMS_RETURN_NOT_OK(CheckMergeCompatible(
      "awm", SketchShape{config_.width, config_.depth, opts_.seed},
      SketchShape{o->config_.width, o->config_.depth, o->opts_.seed}));
  return CheckCapacityCompatible("awm", "active-set capacity", config_.heap_capacity,
                                 o->config_.heap_capacity);
}

Status AwmSketch::MergeScaled(const BudgetedClassifier& other, double coeff) {
  WMS_RETURN_NOT_OK(CanMerge(other));
  if (!std::isfinite(coeff)) {
    return Status::InvalidArgument("awm merge: coefficient must be finite");
  }
  const AwmSketch& o = static_cast<const AwmSketch&>(other);

  // 1. Combined weights of the union of the two active sets, computed
  //    *before* any table mutation. Each side contributes its model's
  //    estimate: the exact active weight when tracked, the tail-sketch
  //    estimate otherwise. (A member's stale sketch mass — left in place by
  //    the lazy eviction scheme — is ignored here exactly as each side's
  //    WeightEstimate ignores it.)
  std::vector<uint32_t> union_ids;
  union_ids.reserve(heap_.size() + o.heap_.size());
  for (const FeatureWeight& fw : heap_.Entries()) union_ids.push_back(fw.feature);
  for (const FeatureWeight& fw : o.heap_.Entries()) union_ids.push_back(fw.feature);
  std::sort(union_ids.begin(), union_ids.end());
  union_ids.erase(std::unique(union_ids.begin(), union_ids.end()), union_ids.end());
  std::vector<std::pair<uint32_t, double>> merged;
  merged.reserve(union_ids.size());
  for (const uint32_t feature : union_ids) {
    merged.emplace_back(feature, static_cast<double>(WeightEstimate(feature)) +
                                     coeff * static_cast<double>(o.WeightEstimate(feature)));
  }

  // 2. Combine the tail tables in this sketch's raw representation:
  //    z = α_a·v_a + c·α_b·v_b = α_a·(v_a + (c·α_b/α_a)·v_b). The sweep
  //    writes every cell, so the whole table COWs.
  const double ratio = coeff * o.sketch_scale_ / sketch_scale_;
  table_.MarkAllDirty();
  simd::MergeScaledTable(table_.data(), o.table_.data(), table_.size(), ratio);

  // 3. The |S| largest-magnitude union members (ties: ascending id, for
  //    determinism) take the exact active-set slots; every other member is
  //    folded into the merged tail sketch exactly as an eviction would be —
  //    its slot's estimate is corrected to its merged weight.
  std::stable_sort(merged.begin(), merged.end(), [](const auto& a, const auto& b) {
    const double ma = std::fabs(a.second), mb = std::fabs(b.second);
    if (ma != mb) return ma > mb;
    return a.first < b.first;
  });
  const size_t keep = std::min(config_.heap_capacity, merged.size());
  TopKHeap rebuilt(config_.heap_capacity);
  for (size_t i = 0; i < keep; ++i) {
    rebuilt.Set(merged[i].first, static_cast<float>(merged[i].second / heap_scale_));
  }
  heap_ = std::move(rebuilt);
  for (size_t i = keep; i < merged.size(); ++i) {
    SketchAdd(merged[i].first,
              merged[i].second - static_cast<double>(SketchQuery(merged[i].first)));
  }
  MaybeRescale();
  return Status::OK();
}

Status AwmSketch::ScaleWeights(double factor) {
  if (!(factor > 0.0)) {
    return Status::InvalidArgument("awm scale: factor must be positive");
  }
  // Both structures carry a lazy global scale, so this is O(1).
  heap_scale_ *= factor;
  sketch_scale_ *= factor;
  MaybeRescale();
  return Status::OK();
}

Status AwmSketch::SetSteps(uint64_t steps) {
  t_ = steps;
  return Status::OK();
}

std::unique_ptr<BudgetedClassifier> AwmSketch::Clone() const {
  return std::make_unique<AwmSketch>(*this);
}

WeightEstimator AwmSketch::EstimatorSnapshot() const {
  // Tail pages shared with every other snapshot (O(dirty) capture); the
  // closure's tail answer is the paged fused estimate, bit-identical to the
  // live SketchQuery at capture time.
  struct State {
    std::unordered_map<uint32_t, float> active;  // raw active-set weights
    std::vector<SignedBucketHash> rows;
    PageSet<float> pages;
    double heap_scale;
    double sketch_scale;  // √s·α, the factor SketchQuery applies
  };
  State st;
  st.active.reserve(heap_.size());
  for (const FeatureWeight& fw : heap_.Entries()) st.active.emplace(fw.feature, fw.weight);
  st.rows = rows_;
  st.pages = table_.SharePages();
  st.heap_scale = heap_scale_;
  st.sketch_scale = sqrt_depth_ * sketch_scale_;
  auto shared = std::make_shared<const State>(std::move(st));
  return [shared](uint32_t feature) {
    const auto it = shared->active.find(feature);
    if (it != shared->active.end()) {
      return static_cast<float>(shared->heap_scale * static_cast<double>(it->second));
    }
    return readpath::FusedEstimatePaged(shared->pages.view(), shared->rows, feature,
                                        shared->sketch_scale);
  };
}

void AwmSketch::MaybeRescale() {
  if (sketch_scale_ < kMinScale) {
    table_.MarkAllDirty();
    simd::ScaleTable(table_.data(), table_.size(), static_cast<float>(sketch_scale_));
    sketch_scale_ = 1.0;
  }
  if (heap_scale_ < kMinScale) {
    heap_.Scale(static_cast<float>(heap_scale_));
    heap_scale_ = 1.0;
  }
}

float AwmSketch::WeightEstimate(uint32_t feature) const {
  const std::optional<float> exact = heap_.Get(feature);
  if (exact.has_value()) return static_cast<float>(heap_scale_ * static_cast<double>(*exact));
  return SketchQuery(feature);
}

std::vector<FeatureWeight> AwmSketch::TopK(size_t k) const {
  std::vector<FeatureWeight> out;
  out.reserve(heap_.size());
  for (const FeatureWeight& fw : heap_.Entries()) {
    out.push_back(
        FeatureWeight{fw.feature, static_cast<float>(heap_scale_ * fw.weight)});
  }
  SortByMagnitudeAndTruncate(out, k);
  return out;
}

}  // namespace wmsketch
