#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "hash/tabulation.h"
#include "linear/classifier.h"
#include "util/memory_cost.h"
#include "util/paged_table.h"
#include "util/simd.h"
#include "util/top_k_heap.h"

namespace wmsketch {

class WmSketch;
struct DeltaStats;
namespace snapshot {
class SnapshotReader;
}
namespace detail {
Status SaveWmSketchPayload(const WmSketch&, std::ostream&);
Result<WmSketch> LoadWmSketchPayload(snapshot::SnapshotReader&, const LearnerOptions&);
uint64_t BeginWmDeltaWindow(WmSketch&);
Status SaveWmSketchDelta(const WmSketch&, uint64_t, std::ostream&, DeltaStats*);
Status ApplyWmSketchDelta(WmSketch&, snapshot::SnapshotReader&);
}  // namespace detail

/// Shape of a Weight-Median Sketch: a depth×width Count-Sketch-structured
/// table plus an optional top-K tracking heap. Total size k = width·depth
/// (the paper writes width as k/s and depth as s).
struct WmSketchConfig {
  /// Buckets per row; must be a power of two.
  uint32_t width = 256;
  /// Number of hash rows s; odd values give unambiguous medians.
  uint32_t depth = 2;
  /// Capacity of the passive top-K heap (0 disables tracking; weight
  /// estimates remain available via WeightEstimate/Query).
  size_t heap_capacity = 128;

  /// Memory under the Sec. 7.1 cost model: 4 bytes per sketch cell plus
  /// (id, weight) per heap slot.
  size_t MemoryCostBytes() const {
    return TableBytes(static_cast<size_t>(width) * depth) + HeapBytes(heap_capacity);
  }
};

/// The Weight-Median Sketch (Algorithm 1): online gradient descent performed
/// directly on a Count-Sketch projection z of the classifier weights.
///
/// * Prediction:  τ = zᵀRx with R = A/√s the scaled Count-Sketch matrix.
/// * Update:      z ← (1−λη_t)·z − η_t·y·ℓ'(y·τ)·Rx, implemented with the
///                lazy global-scale trick so each update costs
///                O(s·nnz(x)) instead of O(k + s·nnz(x)) (Sec. 5.1).
/// * Query(i):    median over rows j of √s·σ_j(i)·z[j, h_j(i)] — the
///                Count-Sketch estimator applied to √s·z.
///
/// Theorem 1/2 guarantee ‖w* − ŵ‖∞ ≤ ε‖w*‖₁ for width and depth
/// polylogarithmic in the dimension. A passive magnitude heap tracks the
/// identities of the heaviest features across updates (Sec. 5.2's baseline
/// scheme) so top-K retrieval needs no feature-universe scan.
class WmSketch final : public BudgetedClassifier {
 public:
  static constexpr uint32_t kMaxDepth = 64;

  /// Constructs the sketch; hash rows are derived from opts.seed.
  /// Requires config.width a power of two and 1 <= depth <= kMaxDepth.
  WmSketch(const WmSketchConfig& config, const LearnerOptions& opts);

  /// Plan-driven: hashes each (feature, row) pair exactly once per call.
  double PredictMargin(const SparseVector& x) const override;
  /// Batched margins through the plan arena: whole batch hashed once,
  /// cross-example prefetch, SIMD gathers — bit-identical to the loop.
  void PredictBatch(std::span<const Example> batch, double* margins) const override;
  /// Batched point estimates: all keys hashed once, one wide signed gather,
  /// per-key medians — bit-identical to a WeightEstimate loop.
  void EstimateBatch(std::span<const uint32_t> features, float* out) const override;
  /// Frozen table-backed read model with the batched SIMD read paths.
  std::unique_ptr<const ReadModel> MakeReadModel() const override;
  /// One OGD step from a single per-example hash plan: the margin, the
  /// gradient scatter, and the heap offers all reuse the same nnz×depth
  /// (bucket, sign) pairs — one hash evaluation per pair per update.
  double Update(const SparseVector& x, int8_t y) override;
  /// Devirtualized batch ingest: hashes the whole batch up front into a
  /// plan arena and prefetches the next example's table cells while the
  /// current one updates. Bit-identical to updating example by example.
  void UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) override;
  float WeightEstimate(uint32_t feature) const override;
  /// OK iff `other` is a WmSketch with identical (width, depth, heap
  /// capacity) and seed — equal projection matrices, so tables can be summed.
  Status CanMerge(const BudgetedClassifier& other) const override;
  /// z ← z_a + coeff·z_b (resolving the two lazy global scales first), then
  /// rebuilds the top-K heap from the merged estimates over the union of
  /// tracked candidates. Steps are not touched (see Merge for the
  /// disjoint-partition semantics that also sums them).
  Status MergeScaled(const BudgetedClassifier& other, double coeff) override;
  /// w ← factor·w in O(1) via the lazy global scale (factor > 0).
  Status ScaleWeights(double factor) override;
  Status SetSteps(uint64_t steps) override;
  std::unique_ptr<BudgetedClassifier> Clone() const override;
  /// Frozen estimator capturing copies of the hash rows, table, and scale.
  WeightEstimator EstimatorSnapshot() const override;
  std::vector<FeatureWeight> TopK(size_t k) const override;
  size_t MemoryCostBytes() const override { return config_.MemoryCostBytes(); }
  size_t ResidentStorageBytes() const override {
    return config_.MemoryCostBytes() + table_.MetadataBytes();
  }
  TablePublishStats publish_stats() const override { return table_.publish_stats(); }
  uint64_t steps() const override { return t_; }
  const LearnerOptions& options() const override { return opts_; }
  std::string Name() const override { return "wm"; }

  const WmSketchConfig& config() const { return config_; }

 private:
  friend Status detail::SaveWmSketchPayload(const WmSketch&, std::ostream&);
  friend Result<WmSketch> detail::LoadWmSketchPayload(snapshot::SnapshotReader&,
                                                      const LearnerOptions&);
  friend uint64_t detail::BeginWmDeltaWindow(WmSketch&);
  friend Status detail::SaveWmSketchDelta(const WmSketch&, uint64_t, std::ostream&,
                                          DeltaStats*);
  friend Status detail::ApplyWmSketchDelta(WmSketch&, snapshot::SnapshotReader&);

  // Median over rows of σ_j(i)·v[j, h_j(i)] on the *raw* table (no scale, no
  // √s); WeightEstimate applies √s·α.
  float RawMedian(uint32_t feature) const;
  /// RawMedian for feature slot `i` of a plan (no re-hash).
  float RawMedianFromPlan(const simd::PlanView& plan, size_t i) const;
  /// The margin τ from a prebuilt plan; `scratch` holds plan.entries() floats.
  double MarginFromPlan(const simd::PlanView& plan, const SparseVector& x,
                        float* scratch) const;
  /// The Update body once the plan exists (shared by Update and UpdateBatch).
  double UpdateWithPlan(const SparseVector& x, int8_t y, const simd::PlanView& plan,
                        float* scratch);
  void MaybeRescale();

  float* Row(uint32_t j) { return table_.data() + static_cast<size_t>(j) * config_.width; }
  const float* Row(uint32_t j) const {
    return table_.data() + static_cast<size_t>(j) * config_.width;
  }

  WmSketchConfig config_;
  LearnerOptions opts_;
  std::vector<SignedBucketHash> rows_;
  // Raw v (z = scale_ * v) in copy-on-write paged storage: the live arena
  // stays contiguous (hot paths and Row() unchanged); MakeReadModel /
  // EstimatorSnapshot publish refcounted pages, copying only those dirtied
  // since the previous publication.
  PagedTable table_;
  double scale_ = 1.0;        // α
  double sqrt_depth_;         // √s, applied at predict/query time
  uint64_t t_ = 0;
  TopKHeap heap_;             // raw medians; rescaled alongside the table
};

}  // namespace wmsketch
