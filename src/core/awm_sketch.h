#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "hash/tabulation.h"
#include "linear/classifier.h"
#include "util/memory_cost.h"
#include "util/paged_table.h"
#include "util/simd.h"
#include "util/top_k_heap.h"

namespace wmsketch {

class HashPlan;

class AwmSketch;
struct DeltaStats;
namespace snapshot {
class SnapshotReader;
}
namespace detail {
Status SaveAwmSketchPayload(const AwmSketch&, std::ostream&);
Result<AwmSketch> LoadAwmSketchPayload(snapshot::SnapshotReader&, const LearnerOptions&);
uint64_t BeginAwmDeltaWindow(AwmSketch&);
Status SaveAwmSketchDelta(const AwmSketch&, uint64_t, std::ostream&, DeltaStats*);
Status ApplyAwmSketchDelta(AwmSketch&, snapshot::SnapshotReader&);
}  // namespace detail

/// Shape of an Active-Set Weight-Median Sketch. The configuration that
/// uniformly performed best in the paper (Sec. 7.3) gives half the budget to
/// the active set and the rest to a depth-1 sketch; that is the default the
/// budget planner emits.
struct AwmSketchConfig {
  /// Buckets per sketch row; must be a power of two.
  uint32_t width = 256;
  /// Sketch rows; the paper's best configs use depth 1.
  uint32_t depth = 1;
  /// Active-set capacity |S| (exact weights); must be >= 1.
  size_t heap_capacity = 128;

  /// Memory under the Sec. 7.1 cost model.
  size_t MemoryCostBytes() const {
    return TableBytes(static_cast<size_t>(width) * depth) + HeapBytes(heap_capacity);
  }
};

/// The Active-Set Weight-Median Sketch (Algorithm 2): a WM-Sketch whose
/// heaviest weights live *exactly* in a min-heap "active set" instead of in
/// the sketch.
///
/// Per update: features currently in the active set receive exact gradient
/// updates; every other feature's candidate weight
/// w̃ = Query(i) − η·y·x_i·ℓ'(y·τ) is compared against the smallest active
/// weight — on a win the minimum is folded back into the sketch (its slot's
/// estimate is corrected to its exact weight) and the winner takes the slot;
/// on a loss the gradient is applied inside the sketch. The sketch therefore
/// carries only the tail of the weight vector, which reduces collision error
/// for exactly the features that matter (Sec. 5.2 / Sec. 9: "a variant of
/// feature hashing where the highest-weighted features are not hashed").
///
/// Both the active set and the sketch use the lazy global-scale trick for
/// ℓ2 decay, so updates stay O(s·nnz(x)).
class AwmSketch final : public BudgetedClassifier {
 public:
  static constexpr uint32_t kMaxDepth = 64;

  /// Constructs the sketch; hash rows are derived from opts.seed.
  AwmSketch(const AwmSketchConfig& config, const LearnerOptions& opts);

  /// Plan-driven: hashes each (feature, row) pair exactly once per call.
  double PredictMargin(const SparseVector& x) const override;
  /// Batched margins. As with UpdateBatch, the AWM cannot hash a batch up
  /// front (membership decides which features touch the sketch), so each
  /// example runs through one lazy per-thread plan — bit-identical to the
  /// PredictMargin loop.
  void PredictBatch(std::span<const Example> batch, double* margins) const override;
  /// Batched point estimates: active-set hits answer exactly; the tail
  /// batches through a hash-once + wide-gather median path. Bit-identical
  /// to a WeightEstimate loop.
  void EstimateBatch(std::span<const uint32_t> features, float* out) const override;
  /// Frozen read model: the active set (raw weights + scale) plus a copy of
  /// the tail sketch, with the batched read paths.
  std::unique_ptr<const ReadModel> MakeReadModel() const override;
  /// One step from a single per-example hash plan: the margin's tail
  /// queries, the candidate queries, and the tail scatters reuse the same
  /// nnz×depth pairs (evictee fold-backs, which involve features outside x,
  /// still hash directly).
  double Update(const SparseVector& x, int8_t y) override;
  /// Devirtualized batch ingest, bit-identical to updating example by
  /// example. Unlike WM/feature hashing the AWM cannot hash a batch up
  /// front (which features touch the sketch depends on live active-set
  /// membership); it reuses one lazy per-thread plan across the batch, so
  /// the win is allocation amortization, not an arena/prefetch pipeline.
  void UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) override;
  float WeightEstimate(uint32_t feature) const override;
  /// OK iff `other` is an AwmSketch with identical (width, depth, active-set
  /// capacity) and seed — equal projection matrices, so tables can be summed.
  Status CanMerge(const BudgetedClassifier& other) const override;
  /// w ← w + coeff·w_other: tail sketches combine linearly (scales resolved
  /// first) and the merged active set is rebuilt as the top-|S| of the union
  /// of both active sets under the combined estimates — union members that
  /// lose their slot are folded back into the tail sketch exactly as an
  /// eviction would (Algorithm 2's invariant is preserved). Steps are not
  /// touched (see Merge for the disjoint-partition semantics).
  Status MergeScaled(const BudgetedClassifier& other, double coeff) override;
  /// w ← factor·w in O(1) via the two lazy global scales (factor > 0).
  Status ScaleWeights(double factor) override;
  Status SetSteps(uint64_t steps) override;
  std::unique_ptr<BudgetedClassifier> Clone() const override;
  /// Frozen estimator capturing the active-set weights plus copies of the
  /// hash rows, tail table, and scales.
  WeightEstimator EstimatorSnapshot() const override;
  /// The top-k of the active set (exact weights); the active set *is* the
  /// AWM-Sketch's answer to top-K queries.
  std::vector<FeatureWeight> TopK(size_t k) const override;
  size_t MemoryCostBytes() const override { return config_.MemoryCostBytes(); }
  size_t ResidentStorageBytes() const override {
    return config_.MemoryCostBytes() + table_.MetadataBytes();
  }
  TablePublishStats publish_stats() const override { return table_.publish_stats(); }
  uint64_t steps() const override { return t_; }
  const LearnerOptions& options() const override { return opts_; }
  std::string Name() const override { return "awm"; }

  const AwmSketchConfig& config() const { return config_; }
  /// Current number of active-set entries (≤ heap_capacity).
  size_t active_set_size() const { return heap_.size(); }
  /// True iff `feature` currently holds an active-set slot (exact weight).
  bool InActiveSet(uint32_t feature) const { return heap_.Contains(feature); }

 private:
  friend Status detail::SaveAwmSketchPayload(const AwmSketch&, std::ostream&);
  friend Result<AwmSketch> detail::LoadAwmSketchPayload(snapshot::SnapshotReader&,
                                                        const LearnerOptions&);
  friend uint64_t detail::BeginAwmDeltaWindow(AwmSketch&);
  friend Status detail::SaveAwmSketchDelta(const AwmSketch&, uint64_t, std::ostream&,
                                           DeltaStats*);
  friend Status detail::ApplyAwmSketchDelta(AwmSketch&, snapshot::SnapshotReader&);

  /// Count-Sketch point estimate of a tail feature's weight (true scale).
  float SketchQuery(uint32_t feature) const;
  /// SketchQuery through feature slot `i` of a lazy plan: the slot is
  /// hashed on first touch and reused afterwards.
  float SketchQueryFromPlan(HashPlan& plan, size_t i, uint32_t feature) const;
  /// Adds `delta` (true scale) to the sketched weight of `feature`: every
  /// row's estimate — and hence the median — shifts by exactly delta.
  void SketchAdd(uint32_t feature, double delta);
  /// SketchAdd through feature slot `i` of a lazy plan (first touch hashes).
  void SketchAddFromPlan(HashPlan& plan, size_t i, uint32_t feature, double delta);
  /// PredictMargin filling/reading tail slots of a lazy plan.
  double PredictMarginWithPlan(const SparseVector& x, HashPlan& plan) const;
  /// The Update body once the plan exists (shared by Update and UpdateBatch).
  double UpdateWithPlan(const SparseVector& x, int8_t y, HashPlan& plan);
  void MaybeRescale();

  float* Row(uint32_t j) { return table_.data() + static_cast<size_t>(j) * config_.width; }
  const float* Row(uint32_t j) const {
    return table_.data() + static_cast<size_t>(j) * config_.width;
  }

  AwmSketchConfig config_;
  LearnerOptions opts_;
  std::vector<SignedBucketHash> rows_;
  // Raw tail sketch (true cell value = sketch_scale_ * cell) in copy-on-
  // write paged storage: live arena contiguous, snapshots publish shared
  // pages and copy only what was dirtied. Active-set-only update bursts
  // dirty no pages at all, so a high-cadence AWM publish is nearly free.
  PagedTable table_;
  double sketch_scale_ = 1.0;  // α for the sketch
  double heap_scale_ = 1.0;    // α for the active set
  double sqrt_depth_;
  uint64_t t_ = 0;
  TopKHeap heap_;              // raw active-set weights; true = heap_scale_ * raw
};

}  // namespace wmsketch
