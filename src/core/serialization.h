#pragma once

#include <iosfwd>

#include "core/awm_sketch.h"
#include "core/frequent_features.h"
#include "core/snapshot_io.h"
#include "core/truncation.h"
#include "core/wm_sketch.h"
#include "linear/feature_hashing.h"
#include "util/status.h"

namespace wmsketch {

/// Binary snapshot serialization for the sketched classifiers.
///
/// A deployed sketch must survive process restarts and be shippable from an
/// edge device to an aggregation point, so both sketches support compact
/// binary snapshots. Hash functions are derived deterministically from the
/// stored seed, so a snapshot is just: header, configuration, learner
/// scalars (λ, schedule, seed, step count), the raw table(s) with their lazy
/// scales, and the active-set/heap entries.
///
/// Every Save* stream is wrapped in the checksummed envelope of
/// core/snapshot_io.h (magic, version, payload length, CRC32C), so a
/// truncated or bit-flipped snapshot is detected before any state is
/// parsed. Load* sniffs the leading magic and still accepts the v1/v2
/// unwrapped streams written before the envelope existed; either way every
/// declared size is validated against the remaining stream bytes *before*
/// the corresponding allocation.
///
/// The loss function is *not* serialized (it may be an arbitrary user type);
/// the caller supplies LearnerOptions whose loss/rate are used for the
/// restored model, while λ and seed are restored from the snapshot and
/// override the passed values. Snapshots are independent of host endianness
/// only across same-endian machines (little-endian assumed, as on all
/// supported targets).

/// Writes a snapshot of `sketch` to `out`. Returns IOError on stream failure.
Status SaveWmSketch(const WmSketch& sketch, std::ostream& out);

/// Restores a WM-Sketch from `in`. `opts.loss` and `opts.rate` are adopted;
/// λ, seed, and all state come from the snapshot. Returns Corruption for
/// malformed input.
Result<WmSketch> LoadWmSketch(std::istream& in, const LearnerOptions& opts);

/// Writes a snapshot of `sketch` to `out`.
Status SaveAwmSketch(const AwmSketch& sketch, std::ostream& out);

/// Restores an AWM-Sketch from `in` (conventions as LoadWmSketch).
Result<AwmSketch> LoadAwmSketch(std::istream& in, const LearnerOptions& opts);

/// Snapshots for the Sec. 7 baseline classifiers, with the same conventions
/// as the sketches: λ and seed are restored from the snapshot; loss and
/// learning-rate schedule come from the caller's options. These exist so the
/// facade-level SaveLearner/LoadLearner (src/api/learner.h) covers *every*
/// Method, not just the sketches.

Status SaveSimpleTruncation(const SimpleTruncation& model, std::ostream& out);
Result<SimpleTruncation> LoadSimpleTruncation(std::istream& in, const LearnerOptions& opts);

/// Note: the reservoir RNG is re-derived from the restored seed rather than
/// resumed mid-sequence, so post-restore *evictions* draw a fresh random
/// stream; all weights, keys, and predictions round-trip exactly.
Status SaveProbabilisticTruncation(const ProbabilisticTruncation& model, std::ostream& out);
Result<ProbabilisticTruncation> LoadProbabilisticTruncation(std::istream& in,
                                                            const LearnerOptions& opts);

Status SaveSpaceSavingFrequent(const SpaceSavingFrequent& model, std::ostream& out);
Result<SpaceSavingFrequent> LoadSpaceSavingFrequent(std::istream& in,
                                                    const LearnerOptions& opts);

Status SaveCountMinFrequent(const CountMinFrequent& model, std::ostream& out);
Result<CountMinFrequent> LoadCountMinFrequent(std::istream& in, const LearnerOptions& opts);

Status SaveFeatureHashing(const FeatureHashingClassifier& model, std::ostream& out);
Result<FeatureHashingClassifier> LoadFeatureHashing(std::istream& in,
                                                    const LearnerOptions& opts);

namespace detail {

/// Payload-level savers/loaders: the raw per-method stream (method magic
/// included) with no envelope. SaveLearner composes these under a single
/// facade header + envelope so the checksum covers the whole stream exactly
/// once; the public per-method Save*/Load* wrap/unwrap the same payloads.
/// Loaders accept both the v1 flat and v2 paged table layouts.

Status SaveWmSketchPayload(const WmSketch& sketch, std::ostream& out);
Result<WmSketch> LoadWmSketchPayload(snapshot::SnapshotReader& in,
                                     const LearnerOptions& opts);

Status SaveAwmSketchPayload(const AwmSketch& sketch, std::ostream& out);
Result<AwmSketch> LoadAwmSketchPayload(snapshot::SnapshotReader& in,
                                       const LearnerOptions& opts);

Status SaveSimpleTruncationPayload(const SimpleTruncation& model, std::ostream& out);
Result<SimpleTruncation> LoadSimpleTruncationPayload(snapshot::SnapshotReader& in,
                                                     const LearnerOptions& opts);

Status SaveProbabilisticTruncationPayload(const ProbabilisticTruncation& model,
                                          std::ostream& out);
Result<ProbabilisticTruncation> LoadProbabilisticTruncationPayload(
    snapshot::SnapshotReader& in, const LearnerOptions& opts);

Status SaveSpaceSavingFrequentPayload(const SpaceSavingFrequent& model, std::ostream& out);
Result<SpaceSavingFrequent> LoadSpaceSavingFrequentPayload(snapshot::SnapshotReader& in,
                                                           const LearnerOptions& opts);

Status SaveCountMinFrequentPayload(const CountMinFrequent& model, std::ostream& out);
Result<CountMinFrequent> LoadCountMinFrequentPayload(snapshot::SnapshotReader& in,
                                                     const LearnerOptions& opts);

Status SaveFeatureHashingPayload(const FeatureHashingClassifier& model, std::ostream& out);
Result<FeatureHashingClassifier> LoadFeatureHashingPayload(snapshot::SnapshotReader& in,
                                                           const LearnerOptions& opts);

}  // namespace detail

}  // namespace wmsketch
