#pragma once

#include <cstdint>
#include <iosfwd>

#include "core/budget.h"
#include "linear/classifier.h"
#include "util/status.h"

namespace wmsketch {

class AwmSketch;
class WmSketch;
namespace snapshot {
class SnapshotReader;
}

/// Dirty-page delta serialization and the merge-compatibility handshake for
/// the distributed training tier (src/dist/).
///
/// The sketches are linear projections, so a worker's state composes into an
/// aggregator's replica *exactly* — and because every raw-cell mutation is
/// tagged in the copy-on-write paged table (util/paged_table.h, enforced by
/// the cow-dirty lint rule), "what changed since the last sync" is knowable
/// per page. A delta therefore ships the full scalar state (step count, lazy
/// scales, the heap/active set — all small) plus only the table pages written
/// since a BeginDeltaWindow watermark, as raw cell bytes. Applying a delta
/// overwrites those pages and scalars on a replica that matches the sender's
/// state as of the watermark, reproducing the sender's model byte-for-byte —
/// no arithmetic on floats, so byte-identity with a sequential reference is a
/// testable property, not an aspiration.
///
/// Only the mergeable methods (WM/AWM) participate; the non-linear baselines
/// return Unimplemented from every entry point.

/// Counters from one delta serialization (for the sync bench and the
/// worker's shipped-bytes accounting).
struct DeltaStats {
  uint64_t pages_total = 0;
  uint64_t pages_shipped = 0;
};

/// The structural identity a worker presents in its handshake: everything
/// that must match for its updates to compose exactly into the aggregator's
/// replica — method, table shape, seed (hash rows), tracked-set capacity,
/// learning-rate schedule (kind + η0, the schedule exponent identity), and λ.
struct MergeIdentity {
  uint8_t method_tag = 0;
  uint32_t width = 0;
  uint32_t depth = 0;
  uint64_t heap_capacity = 0;
  uint64_t seed = 0;
  uint8_t rate_kind = 0;  ///< LearningRate::Kind of the schedule
  double eta0 = 0.0;
  double lambda = 0.0;

  bool operator==(const MergeIdentity&) const = default;
};

/// The merge identity of a classifier. Unimplemented for methods without
/// merge semantics (everything but WM/AWM).
Result<MergeIdentity> MergeIdentityOf(Method method, const BudgetedClassifier& impl);

/// OK iff a learner with identity `theirs` can sync into an aggregator with
/// identity `mine`; otherwise InvalidArgument naming the first mismatching
/// dimension (reusing sketch/merge_compat.h for the shape checks).
Status CheckIdentityCompatible(const MergeIdentity& mine, const MergeIdentity& theirs);

/// Serializes an identity (fixed-size little-endian section).
void EncodeMergeIdentity(std::ostream& out, const MergeIdentity& id);
/// Parses an identity section; Corruption on truncation or an unknown tag.
Result<MergeIdentity> DecodeMergeIdentity(snapshot::SnapshotReader& in);

/// Opens a dirty-page delta window on a mergeable classifier and returns its
/// watermark (see BasicPagedTable::BeginDeltaWindow). Call once right after
/// construction — every later write is then tagged, so the first sync can
/// already be a delta against the deterministic freshly-constructed state —
/// and again at each sync to bound the next window.
Result<uint64_t> BeginDeltaWindow(Method method, BudgetedClassifier& impl);

/// Writes the delta payload of `impl` relative to watermark `since`:
/// scalars + heap in full, table pages dirtied at-or-after `since` as raw
/// bytes. `stats` (optional) receives the page counters.
Status SaveDelta(Method method, const BudgetedClassifier& impl, uint64_t since,
                 std::ostream& out, DeltaStats* stats);

/// Applies a delta payload to `impl`, whose unshipped state must match the
/// sender's as of the delta's watermark (the caller's sync protocol
/// guarantees this; see src/dist/). Validates the method tag and every
/// declared shape/count against `impl` and the remaining stream before
/// touching it — a malformed payload returns Corruption with `impl`
/// untouched, because validation happens up front (shape) or the write is
/// positionally bounded (pages).
Status ApplyDelta(Method method, BudgetedClassifier& impl, snapshot::SnapshotReader& in);

namespace detail {

// Per-method delta implementations (friends of the sketch classes, like the
// snapshot payload savers in core/serialization.h).

uint64_t BeginWmDeltaWindow(WmSketch& sketch);
Status SaveWmSketchDelta(const WmSketch& sketch, uint64_t since, std::ostream& out,
                         DeltaStats* stats);
Status ApplyWmSketchDelta(WmSketch& sketch, snapshot::SnapshotReader& in);

uint64_t BeginAwmDeltaWindow(AwmSketch& sketch);
Status SaveAwmSketchDelta(const AwmSketch& sketch, uint64_t since, std::ostream& out,
                          DeltaStats* stats);
Status ApplyAwmSketchDelta(AwmSketch& sketch, snapshot::SnapshotReader& in);

}  // namespace detail

}  // namespace wmsketch
