#include "core/frequent_features.h"

#include <cassert>

namespace wmsketch {

namespace {
constexpr double kMinScale = 1e-25;
}  // namespace

// ------------------------------------------------------------ SpaceSavingFrequent

SpaceSavingFrequent::SpaceSavingFrequent(size_t budget_entries, const LearnerOptions& opts)
    : opts_(opts), ss_(budget_entries) {
  assert(budget_entries >= 1);
  weights_.reserve(budget_entries);
}

double SpaceSavingFrequent::PredictMargin(const SparseVector& x) const {
  double acc = 0.0;
  for (size_t i = 0; i < x.nnz(); ++i) {
    auto it = weights_.find(x.index(i));
    if (it != weights_.end()) {
      acc += static_cast<double>(it->second) * static_cast<double>(x.value(i));
    }
  }
  return scale_ * acc;
}

double SpaceSavingFrequent::Update(const SparseVector& x, int8_t y) {
  const double margin = PredictMargin(x);
  ++t_;
  const double eta = opts_.rate.Rate(t_);
  const double g = opts_.loss->Derivative(static_cast<double>(y) * margin);
  if (opts_.lambda > 0.0) scale_ *= (1.0 - eta * opts_.lambda);
  const double step = eta * static_cast<double>(y) * g / scale_;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    // Frequency tracking: one occurrence per nonzero appearance.
    const uint32_t evicted = ss_.Update(feature);
    if (evicted != SpaceSaving::kNoEviction) weights_.erase(evicted);
    if (ss_.Contains(feature)) {
      // Learn a weight only while the feature is monitored.
      weights_[feature] -= static_cast<float>(step * static_cast<double>(x.value(i)));
    }
  }
  MaybeRescale();
  return margin;
}

void SpaceSavingFrequent::UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) {
  for (const Example& ex : batch) {
    const double margin = Update(ex.x, ex.y);
    if (margins != nullptr) margins->push_back(margin);
  }
}

void SpaceSavingFrequent::MaybeRescale() {
  if (scale_ >= kMinScale) return;
  const float f = static_cast<float>(scale_);
  for (auto& [feature, w] : weights_) w *= f;
  scale_ = 1.0;
}

float SpaceSavingFrequent::WeightEstimate(uint32_t feature) const {
  auto it = weights_.find(feature);
  if (it == weights_.end()) return 0.0f;
  return static_cast<float>(scale_ * static_cast<double>(it->second));
}

std::vector<FeatureWeight> SpaceSavingFrequent::TopK(size_t k) const {
  std::vector<FeatureWeight> out;
  out.reserve(weights_.size());
  for (const auto& [feature, w] : weights_) {
    out.push_back(FeatureWeight{feature, static_cast<float>(scale_ * static_cast<double>(w))});
  }
  SortByMagnitudeAndTruncate(out, k);
  return out;
}

// --------------------------------------------------------------- CountMinFrequent

CountMinFrequent::CountMinFrequent(uint32_t cm_width, uint32_t cm_depth, size_t budget_entries,
                                   const LearnerOptions& opts)
    : opts_(opts),
      cm_(cm_width, cm_depth, SplitMix64(opts.seed ^ 0xc3a5c85c97cb3127ULL).Next(),
          /*conservative=*/true),
      capacity_(budget_entries) {
  assert(budget_entries >= 1);
}

double CountMinFrequent::PredictMargin(const SparseVector& x) const {
  double acc = 0.0;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const IndexedMinHeap::Entry* e = heap_.Find(x.index(i));
    if (e != nullptr) acc += static_cast<double>(e->value) * static_cast<double>(x.value(i));
  }
  return scale_ * acc;
}

double CountMinFrequent::Update(const SparseVector& x, int8_t y) {
  const double margin = PredictMargin(x);
  ++t_;
  const double eta = opts_.rate.Rate(t_);
  const double g = opts_.loss->Derivative(static_cast<double>(y) * margin);
  if (opts_.lambda > 0.0) scale_ *= (1.0 - eta * opts_.lambda);
  const double step = eta * static_cast<double>(y) * g / scale_;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    // Single-hash: the frequency bump and the refreshed estimate share one
    // bucket evaluation per row.
    const double count = cm_.UpdateAndQuery(feature, 1.0);
    const float delta = static_cast<float>(-step * static_cast<double>(x.value(i)));
    const IndexedMinHeap::Entry* e = heap_.Find(feature);
    if (e != nullptr) {
      heap_.Update(feature, count, e->value + delta);
      continue;
    }
    if (heap_.size() < capacity_) {
      heap_.Insert(feature, count, delta);
    } else if (count > heap_.Min().priority) {
      // The feature's apparent count overtook the least-frequent monitored
      // feature: swap them; the evictee's weight is discarded.
      heap_.PopMin();
      heap_.Insert(feature, count, delta);
    }
  }
  MaybeRescale();
  return margin;
}

void CountMinFrequent::UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) {
  for (const Example& ex : batch) {
    const double margin = Update(ex.x, ex.y);
    if (margins != nullptr) margins->push_back(margin);
  }
}

void CountMinFrequent::MaybeRescale() {
  if (scale_ >= kMinScale) return;
  const float f = static_cast<float>(scale_);
  // Weights scale; count priorities are untouched, so order is preserved.
  heap_.MutateAllOrderPreserving([f](IndexedMinHeap::Entry& e) { e.value *= f; });
  scale_ = 1.0;
}

float CountMinFrequent::WeightEstimate(uint32_t feature) const {
  const IndexedMinHeap::Entry* e = heap_.Find(feature);
  if (e == nullptr) return 0.0f;
  return static_cast<float>(scale_ * static_cast<double>(e->value));
}

std::vector<FeatureWeight> CountMinFrequent::TopK(size_t k) const {
  std::vector<FeatureWeight> out;
  out.reserve(heap_.size());
  for (const auto& e : heap_.entries()) {
    out.push_back(FeatureWeight{e.key, static_cast<float>(scale_ * e.value)});
  }
  SortByMagnitudeAndTruncate(out, k);
  return out;
}

}  // namespace wmsketch
