#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "linear/classifier.h"
#include "util/indexed_heap.h"
#include "util/memory_cost.h"
#include "util/random.h"
#include "util/status.h"
#include "util/top_k_heap.h"

namespace wmsketch {

class SimpleTruncation;
class ProbabilisticTruncation;
namespace snapshot {
class SnapshotReader;
}
namespace detail {
Status SaveSimpleTruncationPayload(const SimpleTruncation&, std::ostream&);
Result<SimpleTruncation> LoadSimpleTruncationPayload(snapshot::SnapshotReader&,
                                                     const LearnerOptions&);
Status SaveProbabilisticTruncationPayload(const ProbabilisticTruncation&, std::ostream&);
Result<ProbabilisticTruncation> LoadProbabilisticTruncationPayload(
    snapshot::SnapshotReader&, const LearnerOptions&);
}  // namespace detail

/// Simple Truncation (Algorithm 3): after every gradient step, keep only the
/// K largest-magnitude weights; everything else is zeroed. Untracked
/// features contribute nothing to predictions and re-enter only through
/// fresh gradient mass. The weakest recovery baseline in Fig. 3 ("Trun").
///
/// Implemented online: tracked features get exact updates; an untracked
/// nonzero feature competes for a slot with its single-step weight
/// −η·y·x_i·ℓ'(y·τ), which is exactly what surviving the end-of-step
/// truncation requires. ℓ2 decay uses the lazy scale trick.
class SimpleTruncation final : public BudgetedClassifier {
 public:
  /// Constructs a truncated model keeping `budget_entries` weights (>= 1).
  SimpleTruncation(size_t budget_entries, const LearnerOptions& opts);

  double PredictMargin(const SparseVector& x) const override;
  double Update(const SparseVector& x, int8_t y) override;
  /// Devirtualized batch ingest (bit-identical to a loop of Update).
  void UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) override;
  float WeightEstimate(uint32_t feature) const override;
  std::vector<FeatureWeight> TopK(size_t k) const override;
  /// (id, weight) per tracked entry.
  size_t MemoryCostBytes() const override { return HeapBytes(heap_.capacity()); }
  uint64_t steps() const override { return t_; }
  const LearnerOptions& options() const override { return opts_; }
  std::string Name() const override { return "trun"; }

  /// Number of tracked entries the budget allows.
  size_t capacity() const { return heap_.capacity(); }

 private:
  friend Status detail::SaveSimpleTruncationPayload(const SimpleTruncation&, std::ostream&);
  friend Result<SimpleTruncation> detail::LoadSimpleTruncationPayload(
      snapshot::SnapshotReader&, const LearnerOptions&);

  void MaybeRescale();

  LearnerOptions opts_;
  TopKHeap heap_;      // raw weights; true = scale_ * raw
  double scale_ = 1.0;
  uint64_t t_ = 0;
};

/// Probabilistic Truncation (Algorithm 4): truncation by *weighted reservoir
/// sampling* (Efraimidis–Spirakis A-ES keys r^{1/|w|}) instead of by
/// magnitude. Entries with large weights are exponentially more likely to
/// survive, but small-weight entries occasionally persist — which breaks the
/// deterministic churn that makes Simple Truncation brittle on heavy-tailed
/// streams ("PTrun" in Figs. 3–6; notably beats Space-Saving on URL-like
/// data).
class ProbabilisticTruncation final : public BudgetedClassifier {
 public:
  /// Constructs with `budget_entries` tracked features (>= 1).
  ProbabilisticTruncation(size_t budget_entries, const LearnerOptions& opts);

  double PredictMargin(const SparseVector& x) const override;
  double Update(const SparseVector& x, int8_t y) override;
  /// Devirtualized batch ingest (bit-identical to a loop of Update).
  void UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) override;
  float WeightEstimate(uint32_t feature) const override;
  std::vector<FeatureWeight> TopK(size_t k) const override;
  /// (id, weight, reservoir key) per tracked entry.
  size_t MemoryCostBytes() const override { return HeapBytes(capacity_, /*aux_per_entry=*/1); }
  uint64_t steps() const override { return t_; }
  const LearnerOptions& options() const override { return opts_; }
  std::string Name() const override { return "ptrun"; }

  /// Number of tracked entries the budget allows.
  size_t capacity() const { return capacity_; }

 private:
  friend Status detail::SaveProbabilisticTruncationPayload(const ProbabilisticTruncation&,
                                                           std::ostream&);
  friend Result<ProbabilisticTruncation> detail::LoadProbabilisticTruncationPayload(
      snapshot::SnapshotReader&, const LearnerOptions&);

  void MaybeRescale();
  // Priority of an entry: -A/|raw w| with A = -log r ~ Exp(1). The reservoir
  // key r^{1/|w|} is monotone in this, the heap-min is the eviction victim,
  // and a global weight rescale shifts every priority by the same positive
  // factor — so decay never needs a re-sift.
  static double Priority(double a, float raw_weight);

  LearnerOptions opts_;
  size_t capacity_;
  Rng rng_;
  // key = feature; priority as above; value = raw weight. A is recovered
  // from priority and weight when needed: A = -priority * |raw w|.
  IndexedMinHeap heap_;
  double scale_ = 1.0;
  uint64_t t_ = 0;
};

}  // namespace wmsketch
