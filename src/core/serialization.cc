#include "core/serialization.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>
#include <sstream>
#include <utility>
#include <vector>

#include "util/math.h"

namespace wmsketch {

namespace {

using snapshot::SnapshotReader;
using snapshot::WriteBytes;
using snapshot::WriteRaw;

// Version-1 magics: the original flat-table layout (table written as one
// u64-count + raw-cell array). Still accepted by the loaders.
constexpr uint32_t kWmMagic = 0x314d5357;    // "WSM1"
constexpr uint32_t kAwmMagic = 0x314d5741;   // "AWM1"
constexpr uint32_t kTrunMagic = 0x314e5254;  // "TRN1"
constexpr uint32_t kPtrnMagic = 0x31525450;  // "PTR1"
constexpr uint32_t kSsfMagic = 0x31465353;   // "SSF1"
constexpr uint32_t kCmfMagic = 0x31464d43;   // "CMF1"
constexpr uint32_t kFhsMagic = 0x31534846;   // "FHS1"
// Version-2 magics for the paged-table methods: the table section gains the
// writer's page size (u32, diagnostics/forward-compat for page-delta
// shipping) and is streamed page by page. Cell bytes and order are identical
// to v1, and restore is layout-independent (any reader page size works), so
// v2 of a given model state differs from its v1 stream by exactly that one
// field. Savers emit v2; loaders accept both.
constexpr uint32_t kWmMagic2 = 0x324d5357;   // "WSM2"
constexpr uint32_t kAwmMagic2 = 0x324d5741;  // "AWM2"
constexpr uint32_t kFhsMagic2 = 0x32534846;  // "FHS2"

// On-wire entry sizes, for bounding declared counts against the stream.
constexpr size_t kHeapEntryBytes = sizeof(uint32_t) + sizeof(float);
constexpr size_t kMinHeapEntryBytes = sizeof(uint32_t) + sizeof(double) + sizeof(float);
constexpr size_t kSpaceSavingEntryBytes = sizeof(uint32_t) + 2 * sizeof(uint64_t);

void WriteHeapEntries(std::ostream& out, const TopKHeap& heap) {
  const std::vector<FeatureWeight> entries = heap.Entries();
  WriteRaw(out, static_cast<uint64_t>(entries.size()));
  for (const FeatureWeight& fw : entries) {
    WriteRaw(out, fw.feature);
    WriteRaw(out, fw.weight);
  }
}

template <typename T>
void WriteArray(std::ostream& out, std::span<const T> values) {
  WriteRaw(out, static_cast<uint64_t>(values.size()));
  WriteBytes(out, values.data(), values.size() * sizeof(T));
}

// Reads an array whose element count must equal `expected`; the count is
// bounded against the remaining stream bytes before the resize.
template <typename T>
Status ReadArrayExact(SnapshotReader& in, std::vector<T>* values, size_t expected) {
  uint64_t n = 0;
  if (!in.ReadRaw(&n)) return Status::Corruption("truncated array header");
  if (n != expected) return Status::Corruption("array size mismatch");
  if (!in.CanRead(n, sizeof(T))) return Status::Corruption("array exceeds stream size");
  values->resize(expected);
  if (!in.ReadExactRaw(reinterpret_cast<char*>(values->data()), expected * sizeof(T))) {
    return Status::Corruption("truncated array");
  }
  return Status::OK();
}

// The v2 table section: logical cell count, the saver's page size, then the
// cells in page order. Pages are contiguous slices of the live arena, so
// page-ordered iteration IS the flat arena order — one write emits exactly
// the v1 cell bytes, and the recorded page size is what a future
// page-delta format needs to address them.
void WritePagedTable(std::ostream& out, const PagedTable& table) {
  WriteRaw(out, static_cast<uint64_t>(table.size()));
  WriteRaw(out, static_cast<uint32_t>(table.page_cells()));
  WriteBytes(out, table.data(), table.size() * sizeof(float));
}

// Restores a table section written by WritePagedTable (`paged_layout` true)
// or by the v1 flat writer (false). Restore is layout-independent: the
// saver's page size is validated but the cells land in whatever pages the
// live table uses.
Status ReadTableInto(SnapshotReader& in, PagedTable* table, bool paged_layout) {
  uint64_t cells = 0;
  if (!in.ReadRaw(&cells)) return Status::Corruption("truncated table header");
  if (cells != table->size()) return Status::Corruption("table size mismatch");
  if (paged_layout) {
    uint32_t page_cells = 0;
    if (!in.ReadRaw(&page_cells)) return Status::Corruption("truncated page header");
    if (page_cells == 0 || (page_cells & (page_cells - 1)) != 0) {
      return Status::Corruption("invalid page size");
    }
  }
  if (!in.CanRead(cells, sizeof(float))) {
    return Status::Corruption("table exceeds stream size");
  }
  if (!in.ReadExactRaw(reinterpret_cast<char*>(table->data()), cells * sizeof(float))) {
    return Status::Corruption("truncated table");
  }
  table->MarkAllDirty();
  return Status::OK();
}

Status ReadHeapEntries(SnapshotReader& in, TopKHeap* heap) {
  uint64_t n = 0;
  if (!in.ReadRaw(&n)) return Status::Corruption("truncated heap header");
  if (n > heap->capacity()) return Status::Corruption("heap entries exceed capacity");
  if (!in.CanRead(n, kHeapEntryBytes)) {
    return Status::Corruption("heap entries exceed stream size");
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t feature;
    float weight;
    if (!in.ReadRaw(&feature) || !in.ReadRaw(&weight)) {
      return Status::Corruption("truncated heap entry");
    }
    if (heap->Contains(feature)) return Status::Corruption("duplicate heap feature");
    heap->Set(feature, weight);
  }
  return Status::OK();
}

// A declared heap/active-set/tracked capacity sizes an allocation that is
// not stream-backed (an empty heap of capacity k occupies no stream bytes),
// so it can't be bounded by remaining bytes; reject anything beyond the
// absolute sanity cap before the allocation happens.
bool CapacityPlausible(uint64_t capacity) {
  return capacity <= snapshot::kMaxDeclaredCapacity;
}

// Wraps a serialized payload in the checksummed envelope.
Status SaveEnveloped(Status payload_status, std::ostringstream&& payload,
                     std::ostream& out) {
  WMS_RETURN_NOT_OK(payload_status);
  return snapshot::WriteEnveloped(out, std::move(payload).str());
}

}  // namespace

namespace detail {

// ------------------------------------------------------------ WM-Sketch

Status SaveWmSketchPayload(const WmSketch& sketch, std::ostream& out) {
  WriteRaw(out, kWmMagic2);
  WriteRaw(out, sketch.config_.width);
  WriteRaw(out, sketch.config_.depth);
  WriteRaw(out, static_cast<uint64_t>(sketch.config_.heap_capacity));
  WriteRaw(out, sketch.opts_.lambda);
  WriteRaw(out, sketch.opts_.seed);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "wm-sketch", "config"));
  WriteRaw(out, sketch.t_);
  WriteRaw(out, sketch.scale_);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "wm-sketch", "state"));
  WritePagedTable(out, sketch.table_);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "wm-sketch", "table"));
  WriteHeapEntries(out, sketch.heap_);
  return snapshot::SectionGuard(out, "wm-sketch", "heap");
}

Result<WmSketch> LoadWmSketchPayload(SnapshotReader& in, const LearnerOptions& opts) {
  uint32_t magic;
  if (!in.ReadRaw(&magic)) return Status::Corruption("truncated header");
  if (magic != kWmMagic && magic != kWmMagic2) {
    return Status::Corruption("not a WM-Sketch snapshot");
  }
  WmSketchConfig config;
  uint64_t heap_capacity;
  LearnerOptions restored = opts;
  if (!in.ReadRaw(&config.width) || !in.ReadRaw(&config.depth) ||
      !in.ReadRaw(&heap_capacity) || !in.ReadRaw(&restored.lambda) ||
      !in.ReadRaw(&restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  if (!IsPowerOfTwo(config.width) || config.depth < 1 ||
      config.depth > WmSketch::kMaxDepth) {
    return Status::Corruption("invalid sketch shape");
  }
  // Bound the declared shape before the constructor allocates it: the table
  // must fit in the bytes that actually follow, the capacity under the cap.
  if (!CapacityPlausible(heap_capacity) ||
      !in.CanRead(uint64_t{config.width} * config.depth, sizeof(float))) {
    return Status::Corruption("declared sketch shape exceeds stream size");
  }
  config.heap_capacity = heap_capacity;
  WmSketch sketch(config, restored);
  if (!in.ReadRaw(&sketch.t_) || !in.ReadRaw(&sketch.scale_)) {
    return Status::Corruption("truncated state");
  }
  WMS_RETURN_NOT_OK(ReadTableInto(in, &sketch.table_, magic == kWmMagic2));
  WMS_RETURN_NOT_OK(ReadHeapEntries(in, &sketch.heap_));
  return sketch;
}

// ----------------------------------------------------------- AWM-Sketch

Status SaveAwmSketchPayload(const AwmSketch& sketch, std::ostream& out) {
  WriteRaw(out, kAwmMagic2);
  WriteRaw(out, sketch.config_.width);
  WriteRaw(out, sketch.config_.depth);
  WriteRaw(out, static_cast<uint64_t>(sketch.config_.heap_capacity));
  WriteRaw(out, sketch.opts_.lambda);
  WriteRaw(out, sketch.opts_.seed);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "awm-sketch", "config"));
  WriteRaw(out, sketch.t_);
  WriteRaw(out, sketch.sketch_scale_);
  WriteRaw(out, sketch.heap_scale_);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "awm-sketch", "state"));
  WritePagedTable(out, sketch.table_);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "awm-sketch", "table"));
  WriteHeapEntries(out, sketch.heap_);
  return snapshot::SectionGuard(out, "awm-sketch", "heap");
}

Result<AwmSketch> LoadAwmSketchPayload(SnapshotReader& in, const LearnerOptions& opts) {
  uint32_t magic;
  if (!in.ReadRaw(&magic)) return Status::Corruption("truncated header");
  if (magic != kAwmMagic && magic != kAwmMagic2) {
    return Status::Corruption("not an AWM-Sketch snapshot");
  }
  AwmSketchConfig config;
  uint64_t heap_capacity;
  LearnerOptions restored = opts;
  if (!in.ReadRaw(&config.width) || !in.ReadRaw(&config.depth) ||
      !in.ReadRaw(&heap_capacity) || !in.ReadRaw(&restored.lambda) ||
      !in.ReadRaw(&restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  if (!IsPowerOfTwo(config.width) || config.depth < 1 ||
      config.depth > AwmSketch::kMaxDepth || heap_capacity < 1) {
    return Status::Corruption("invalid sketch shape");
  }
  if (!CapacityPlausible(heap_capacity) ||
      !in.CanRead(uint64_t{config.width} * config.depth, sizeof(float))) {
    return Status::Corruption("declared sketch shape exceeds stream size");
  }
  config.heap_capacity = heap_capacity;
  AwmSketch sketch(config, restored);
  if (!in.ReadRaw(&sketch.t_) || !in.ReadRaw(&sketch.sketch_scale_) ||
      !in.ReadRaw(&sketch.heap_scale_)) {
    return Status::Corruption("truncated state");
  }
  WMS_RETURN_NOT_OK(ReadTableInto(in, &sketch.table_, magic == kAwmMagic2));
  WMS_RETURN_NOT_OK(ReadHeapEntries(in, &sketch.heap_));
  return sketch;
}

// ------------------------------------------------------------- baselines

Status SaveSimpleTruncationPayload(const SimpleTruncation& model, std::ostream& out) {
  WriteRaw(out, kTrunMagic);
  WriteRaw(out, static_cast<uint64_t>(model.heap_.capacity()));
  WriteRaw(out, model.opts_.lambda);
  WriteRaw(out, model.opts_.seed);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "truncation", "config"));
  WriteRaw(out, model.t_);
  WriteRaw(out, model.scale_);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "truncation", "state"));
  WriteHeapEntries(out, model.heap_);
  return snapshot::SectionGuard(out, "truncation", "heap");
}

Result<SimpleTruncation> LoadSimpleTruncationPayload(SnapshotReader& in,
                                                     const LearnerOptions& opts) {
  uint32_t magic;
  if (!in.ReadRaw(&magic)) return Status::Corruption("truncated header");
  if (magic != kTrunMagic) return Status::Corruption("not a truncation snapshot");
  uint64_t capacity;
  LearnerOptions restored = opts;
  if (!in.ReadRaw(&capacity) || !in.ReadRaw(&restored.lambda) ||
      !in.ReadRaw(&restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  if (capacity < 1) return Status::Corruption("empty truncation capacity");
  if (!CapacityPlausible(capacity)) {
    return Status::Corruption("truncation capacity exceeds sanity cap");
  }
  SimpleTruncation model(capacity, restored);
  if (!in.ReadRaw(&model.t_) || !in.ReadRaw(&model.scale_)) {
    return Status::Corruption("truncated state");
  }
  WMS_RETURN_NOT_OK(ReadHeapEntries(in, &model.heap_));
  return model;
}

Status SaveProbabilisticTruncationPayload(const ProbabilisticTruncation& model,
                                          std::ostream& out) {
  WriteRaw(out, kPtrnMagic);
  WriteRaw(out, static_cast<uint64_t>(model.capacity_));
  WriteRaw(out, model.opts_.lambda);
  WriteRaw(out, model.opts_.seed);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "ptrun", "config"));
  WriteRaw(out, model.t_);
  WriteRaw(out, model.scale_);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "ptrun", "state"));
  WriteRaw(out, static_cast<uint64_t>(model.heap_.size()));
  for (const IndexedMinHeap::Entry& e : model.heap_.entries()) {
    WriteRaw(out, e.key);
    WriteRaw(out, e.priority);
    WriteRaw(out, e.value);
  }
  return snapshot::SectionGuard(out, "ptrun", "heap");
}

Result<ProbabilisticTruncation> LoadProbabilisticTruncationPayload(
    SnapshotReader& in, const LearnerOptions& opts) {
  uint32_t magic;
  if (!in.ReadRaw(&magic)) return Status::Corruption("truncated header");
  if (magic != kPtrnMagic) return Status::Corruption("not a ptrun snapshot");
  uint64_t capacity;
  LearnerOptions restored = opts;
  if (!in.ReadRaw(&capacity) || !in.ReadRaw(&restored.lambda) ||
      !in.ReadRaw(&restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  if (capacity < 1) return Status::Corruption("empty ptrun capacity");
  if (!CapacityPlausible(capacity)) {
    return Status::Corruption("ptrun capacity exceeds sanity cap");
  }
  ProbabilisticTruncation model(capacity, restored);
  uint64_t entries;
  if (!in.ReadRaw(&model.t_) || !in.ReadRaw(&model.scale_) || !in.ReadRaw(&entries)) {
    return Status::Corruption("truncated state");
  }
  if (entries > capacity) return Status::Corruption("ptrun entries exceed capacity");
  if (!in.CanRead(entries, kMinHeapEntryBytes)) {
    return Status::Corruption("ptrun entries exceed stream size");
  }
  std::vector<IndexedMinHeap::Entry> heap_entries(entries);
  for (IndexedMinHeap::Entry& e : heap_entries) {
    if (!in.ReadRaw(&e.key) || !in.ReadRaw(&e.priority) || !in.ReadRaw(&e.value)) {
      return Status::Corruption("truncated ptrun entry");
    }
  }
  {
    const Status st = model.heap_.RestoreHeapOrder(std::move(heap_entries));
    if (!st.ok()) return Status::Corruption(st.message());
  }
  return model;
}

Status SaveSpaceSavingFrequentPayload(const SpaceSavingFrequent& model, std::ostream& out) {
  WriteRaw(out, kSsfMagic);
  WriteRaw(out, static_cast<uint64_t>(model.ss_.capacity()));
  WriteRaw(out, model.opts_.lambda);
  WriteRaw(out, model.opts_.seed);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "space-saving", "config"));
  WriteRaw(out, model.t_);
  WriteRaw(out, model.scale_);
  WriteRaw(out, model.ss_.TotalCount());
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "space-saving", "state"));
  // Raw heap order: restore must reproduce eviction tie-breaking exactly.
  const std::vector<SpaceSavingEntry> entries = model.ss_.RawEntries();
  WriteRaw(out, static_cast<uint64_t>(entries.size()));
  for (const SpaceSavingEntry& e : entries) {
    WriteRaw(out, e.item);
    WriteRaw(out, e.count);
    WriteRaw(out, e.error);
  }
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "space-saving", "summary"));
  WriteRaw(out, static_cast<uint64_t>(model.weights_.size()));
  for (const auto& [feature, weight] : model.weights_) {
    WriteRaw(out, feature);
    WriteRaw(out, weight);
  }
  return snapshot::SectionGuard(out, "space-saving", "weights");
}

Result<SpaceSavingFrequent> LoadSpaceSavingFrequentPayload(SnapshotReader& in,
                                                           const LearnerOptions& opts) {
  uint32_t magic;
  if (!in.ReadRaw(&magic)) return Status::Corruption("truncated header");
  if (magic != kSsfMagic) return Status::Corruption("not a Space-Saving snapshot");
  uint64_t capacity;
  LearnerOptions restored = opts;
  if (!in.ReadRaw(&capacity) || !in.ReadRaw(&restored.lambda) ||
      !in.ReadRaw(&restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  if (capacity < 1) return Status::Corruption("empty Space-Saving capacity");
  if (!CapacityPlausible(capacity)) {
    return Status::Corruption("Space-Saving capacity exceeds sanity cap");
  }
  SpaceSavingFrequent model(capacity, restored);
  uint64_t total, entries;
  if (!in.ReadRaw(&model.t_) || !in.ReadRaw(&model.scale_) || !in.ReadRaw(&total) ||
      !in.ReadRaw(&entries)) {
    return Status::Corruption("truncated state");
  }
  if (entries > capacity) return Status::Corruption("summary entries exceed capacity");
  if (!in.CanRead(entries, kSpaceSavingEntryBytes)) {
    return Status::Corruption("summary entries exceed stream size");
  }
  std::vector<SpaceSavingEntry> summary(entries);
  for (SpaceSavingEntry& e : summary) {
    if (!in.ReadRaw(&e.item) || !in.ReadRaw(&e.count) || !in.ReadRaw(&e.error)) {
      return Status::Corruption("truncated summary entry");
    }
  }
  {
    const Status st = model.ss_.RestoreEntries(summary, total);
    if (!st.ok()) return Status::Corruption(st.message());
  }
  uint64_t weights;
  if (!in.ReadRaw(&weights)) return Status::Corruption("truncated weight header");
  if (weights > capacity) return Status::Corruption("weights exceed capacity");
  if (!in.CanRead(weights, kHeapEntryBytes)) {
    return Status::Corruption("weights exceed stream size");
  }
  for (uint64_t i = 0; i < weights; ++i) {
    uint32_t feature;
    float weight;
    if (!in.ReadRaw(&feature) || !in.ReadRaw(&weight)) {
      return Status::Corruption("truncated weight entry");
    }
    // A weight's feature must be monitored: an unmonitored feature can never
    // be evicted, so its weight would persist (and predict) forever.
    if (!model.ss_.Contains(feature)) {
      return Status::Corruption("weight for unmonitored feature");
    }
    model.weights_[feature] = weight;
  }
  return model;
}

Status SaveCountMinFrequentPayload(const CountMinFrequent& model, std::ostream& out) {
  WriteRaw(out, kCmfMagic);
  WriteRaw(out, model.cm_.width());
  WriteRaw(out, model.cm_.depth());
  WriteRaw(out, static_cast<uint64_t>(model.capacity_));
  WriteRaw(out, model.opts_.lambda);
  WriteRaw(out, model.opts_.seed);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "cm-ff", "config"));
  WriteRaw(out, model.t_);
  WriteRaw(out, model.scale_);
  WriteRaw(out, model.cm_.TotalMass());
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "cm-ff", "state"));
  WriteArray(out, model.cm_.table());
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "cm-ff", "table"));
  WriteRaw(out, static_cast<uint64_t>(model.heap_.size()));
  for (const IndexedMinHeap::Entry& e : model.heap_.entries()) {
    WriteRaw(out, e.key);
    WriteRaw(out, e.priority);
    WriteRaw(out, e.value);
  }
  return snapshot::SectionGuard(out, "cm-ff", "heap");
}

Result<CountMinFrequent> LoadCountMinFrequentPayload(SnapshotReader& in,
                                                     const LearnerOptions& opts) {
  uint32_t magic;
  if (!in.ReadRaw(&magic)) return Status::Corruption("truncated header");
  if (magic != kCmfMagic) return Status::Corruption("not a CM-FF snapshot");
  uint32_t width, depth;
  uint64_t capacity;
  LearnerOptions restored = opts;
  if (!in.ReadRaw(&width) || !in.ReadRaw(&depth) || !in.ReadRaw(&capacity) ||
      !in.ReadRaw(&restored.lambda) || !in.ReadRaw(&restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  if (!IsPowerOfTwo(width) || depth < 1 || depth > CountMinSketch::kMaxDepth ||
      capacity < 1) {
    return Status::Corruption("invalid CM-FF shape");
  }
  if (!CapacityPlausible(capacity) ||
      !in.CanRead(uint64_t{width} * depth, sizeof(double))) {
    return Status::Corruption("declared CM-FF shape exceeds stream size");
  }
  CountMinFrequent model(width, depth, capacity, restored);
  double total;
  if (!in.ReadRaw(&model.t_) || !in.ReadRaw(&model.scale_) || !in.ReadRaw(&total)) {
    return Status::Corruption("truncated state");
  }
  std::vector<double> table;
  WMS_RETURN_NOT_OK(ReadArrayExact(in, &table, model.cm_.cells()));
  {
    const Status st = model.cm_.RestoreState(table, total);
    if (!st.ok()) return Status::Corruption(st.message());
  }
  uint64_t entries;
  if (!in.ReadRaw(&entries)) return Status::Corruption("truncated heap header");
  if (entries > capacity) return Status::Corruption("CM-FF entries exceed capacity");
  if (!in.CanRead(entries, kMinHeapEntryBytes)) {
    return Status::Corruption("CM-FF entries exceed stream size");
  }
  std::vector<IndexedMinHeap::Entry> heap_entries(entries);
  for (IndexedMinHeap::Entry& e : heap_entries) {
    if (!in.ReadRaw(&e.key) || !in.ReadRaw(&e.priority) || !in.ReadRaw(&e.value)) {
      return Status::Corruption("truncated CM-FF entry");
    }
  }
  {
    const Status st = model.heap_.RestoreHeapOrder(std::move(heap_entries));
    if (!st.ok()) return Status::Corruption(st.message());
  }
  return model;
}

Status SaveFeatureHashingPayload(const FeatureHashingClassifier& model, std::ostream& out) {
  WriteRaw(out, kFhsMagic2);
  WriteRaw(out, model.buckets());
  WriteRaw(out, model.opts_.lambda);
  WriteRaw(out, model.opts_.seed);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "feature-hashing", "config"));
  WriteRaw(out, model.t_);
  WriteRaw(out, model.scale_);
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(out, "feature-hashing", "state"));
  WritePagedTable(out, model.table_);
  return snapshot::SectionGuard(out, "feature-hashing", "table");
}

Result<FeatureHashingClassifier> LoadFeatureHashingPayload(SnapshotReader& in,
                                                           const LearnerOptions& opts) {
  uint32_t magic;
  if (!in.ReadRaw(&magic)) return Status::Corruption("truncated header");
  if (magic != kFhsMagic && magic != kFhsMagic2) {
    return Status::Corruption("not a feature-hashing snapshot");
  }
  uint32_t buckets;
  LearnerOptions restored = opts;
  if (!in.ReadRaw(&buckets) || !in.ReadRaw(&restored.lambda) ||
      !in.ReadRaw(&restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  if (!IsPowerOfTwo(buckets)) return Status::Corruption("invalid bucket count");
  if (!in.CanRead(buckets, sizeof(float))) {
    return Status::Corruption("declared bucket table exceeds stream size");
  }
  FeatureHashingClassifier model(buckets, restored);
  if (!in.ReadRaw(&model.t_) || !in.ReadRaw(&model.scale_)) {
    return Status::Corruption("truncated state");
  }
  WMS_RETURN_NOT_OK(ReadTableInto(in, &model.table_, magic == kFhsMagic2));
  return model;
}

}  // namespace detail

// ---------------------------------------------------- enveloped wrappers

Status SaveWmSketch(const WmSketch& sketch, std::ostream& out) {
  std::ostringstream payload(std::ios::binary);
  return SaveEnveloped(detail::SaveWmSketchPayload(sketch, payload),
                       std::move(payload), out);
}

Result<WmSketch> LoadWmSketch(std::istream& in, const LearnerOptions& opts) {
  std::string storage;
  WMS_ASSIGN_OR_RETURN(SnapshotReader reader, snapshot::OpenSnapshot(in, &storage));
  return detail::LoadWmSketchPayload(reader, opts);
}

Status SaveAwmSketch(const AwmSketch& sketch, std::ostream& out) {
  std::ostringstream payload(std::ios::binary);
  return SaveEnveloped(detail::SaveAwmSketchPayload(sketch, payload),
                       std::move(payload), out);
}

Result<AwmSketch> LoadAwmSketch(std::istream& in, const LearnerOptions& opts) {
  std::string storage;
  WMS_ASSIGN_OR_RETURN(SnapshotReader reader, snapshot::OpenSnapshot(in, &storage));
  return detail::LoadAwmSketchPayload(reader, opts);
}

Status SaveSimpleTruncation(const SimpleTruncation& model, std::ostream& out) {
  std::ostringstream payload(std::ios::binary);
  return SaveEnveloped(detail::SaveSimpleTruncationPayload(model, payload),
                       std::move(payload), out);
}

Result<SimpleTruncation> LoadSimpleTruncation(std::istream& in, const LearnerOptions& opts) {
  std::string storage;
  WMS_ASSIGN_OR_RETURN(SnapshotReader reader, snapshot::OpenSnapshot(in, &storage));
  return detail::LoadSimpleTruncationPayload(reader, opts);
}

Status SaveProbabilisticTruncation(const ProbabilisticTruncation& model, std::ostream& out) {
  std::ostringstream payload(std::ios::binary);
  return SaveEnveloped(detail::SaveProbabilisticTruncationPayload(model, payload),
                       std::move(payload), out);
}

Result<ProbabilisticTruncation> LoadProbabilisticTruncation(std::istream& in,
                                                            const LearnerOptions& opts) {
  std::string storage;
  WMS_ASSIGN_OR_RETURN(SnapshotReader reader, snapshot::OpenSnapshot(in, &storage));
  return detail::LoadProbabilisticTruncationPayload(reader, opts);
}

Status SaveSpaceSavingFrequent(const SpaceSavingFrequent& model, std::ostream& out) {
  std::ostringstream payload(std::ios::binary);
  return SaveEnveloped(detail::SaveSpaceSavingFrequentPayload(model, payload),
                       std::move(payload), out);
}

Result<SpaceSavingFrequent> LoadSpaceSavingFrequent(std::istream& in,
                                                    const LearnerOptions& opts) {
  std::string storage;
  WMS_ASSIGN_OR_RETURN(SnapshotReader reader, snapshot::OpenSnapshot(in, &storage));
  return detail::LoadSpaceSavingFrequentPayload(reader, opts);
}

Status SaveCountMinFrequent(const CountMinFrequent& model, std::ostream& out) {
  std::ostringstream payload(std::ios::binary);
  return SaveEnveloped(detail::SaveCountMinFrequentPayload(model, payload),
                       std::move(payload), out);
}

Result<CountMinFrequent> LoadCountMinFrequent(std::istream& in, const LearnerOptions& opts) {
  std::string storage;
  WMS_ASSIGN_OR_RETURN(SnapshotReader reader, snapshot::OpenSnapshot(in, &storage));
  return detail::LoadCountMinFrequentPayload(reader, opts);
}

Status SaveFeatureHashing(const FeatureHashingClassifier& model, std::ostream& out) {
  std::ostringstream payload(std::ios::binary);
  return SaveEnveloped(detail::SaveFeatureHashingPayload(model, payload),
                       std::move(payload), out);
}

Result<FeatureHashingClassifier> LoadFeatureHashing(std::istream& in,
                                                    const LearnerOptions& opts) {
  std::string storage;
  WMS_ASSIGN_OR_RETURN(SnapshotReader reader, snapshot::OpenSnapshot(in, &storage));
  return detail::LoadFeatureHashingPayload(reader, opts);
}

}  // namespace wmsketch
