#include "core/serialization.h"

#include <cstring>
#include <istream>
#include <ostream>

#include "util/math.h"

namespace wmsketch {

namespace {

constexpr uint32_t kWmMagic = 0x314d5357;   // "WSM1"
constexpr uint32_t kAwmMagic = 0x314d5741;  // "AWM1"

template <typename T>
void WriteRaw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadRaw(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteHeapEntries(std::ostream& out, const TopKHeap& heap) {
  const std::vector<FeatureWeight> entries = heap.Entries();
  WriteRaw(out, static_cast<uint64_t>(entries.size()));
  for (const FeatureWeight& fw : entries) {
    WriteRaw(out, fw.feature);
    WriteRaw(out, fw.weight);
  }
}

Status ReadHeapEntries(std::istream& in, TopKHeap* heap) {
  uint64_t n = 0;
  if (!ReadRaw(in, &n)) return Status::Corruption("truncated heap header");
  if (n > heap->capacity()) return Status::Corruption("heap entries exceed capacity");
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t feature;
    float weight;
    if (!ReadRaw(in, &feature) || !ReadRaw(in, &weight)) {
      return Status::Corruption("truncated heap entry");
    }
    if (heap->Contains(feature)) return Status::Corruption("duplicate heap feature");
    heap->Set(feature, weight);
  }
  return Status::OK();
}

}  // namespace

Status SaveWmSketch(const WmSketch& sketch, std::ostream& out) {
  WriteRaw(out, kWmMagic);
  WriteRaw(out, sketch.config_.width);
  WriteRaw(out, sketch.config_.depth);
  WriteRaw(out, static_cast<uint64_t>(sketch.config_.heap_capacity));
  WriteRaw(out, sketch.opts_.lambda);
  WriteRaw(out, sketch.opts_.seed);
  WriteRaw(out, sketch.t_);
  WriteRaw(out, sketch.scale_);
  WriteRaw(out, static_cast<uint64_t>(sketch.table_.size()));
  out.write(reinterpret_cast<const char*>(sketch.table_.data()),
            static_cast<std::streamsize>(sketch.table_.size() * sizeof(float)));
  WriteHeapEntries(out, sketch.heap_);
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Result<WmSketch> LoadWmSketch(std::istream& in, const LearnerOptions& opts) {
  uint32_t magic;
  if (!ReadRaw(in, &magic)) return Status::Corruption("truncated header");
  if (magic != kWmMagic) return Status::Corruption("not a WM-Sketch snapshot");
  WmSketchConfig config;
  uint64_t heap_capacity;
  LearnerOptions restored = opts;
  if (!ReadRaw(in, &config.width) || !ReadRaw(in, &config.depth) ||
      !ReadRaw(in, &heap_capacity) || !ReadRaw(in, &restored.lambda) ||
      !ReadRaw(in, &restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  config.heap_capacity = heap_capacity;
  if (!IsPowerOfTwo(config.width) || config.depth < 1 ||
      config.depth > WmSketch::kMaxDepth) {
    return Status::Corruption("invalid sketch shape");
  }
  WmSketch sketch(config, restored);
  uint64_t cells;
  if (!ReadRaw(in, &sketch.t_) || !ReadRaw(in, &sketch.scale_) || !ReadRaw(in, &cells)) {
    return Status::Corruption("truncated state");
  }
  if (cells != sketch.table_.size()) return Status::Corruption("table size mismatch");
  in.read(reinterpret_cast<char*>(sketch.table_.data()),
          static_cast<std::streamsize>(cells * sizeof(float)));
  if (!in) return Status::Corruption("truncated table");
  WMS_RETURN_NOT_OK(ReadHeapEntries(in, &sketch.heap_));
  return sketch;
}

Status SaveAwmSketch(const AwmSketch& sketch, std::ostream& out) {
  WriteRaw(out, kAwmMagic);
  WriteRaw(out, sketch.config_.width);
  WriteRaw(out, sketch.config_.depth);
  WriteRaw(out, static_cast<uint64_t>(sketch.config_.heap_capacity));
  WriteRaw(out, sketch.opts_.lambda);
  WriteRaw(out, sketch.opts_.seed);
  WriteRaw(out, sketch.t_);
  WriteRaw(out, sketch.sketch_scale_);
  WriteRaw(out, sketch.heap_scale_);
  WriteRaw(out, static_cast<uint64_t>(sketch.table_.size()));
  out.write(reinterpret_cast<const char*>(sketch.table_.data()),
            static_cast<std::streamsize>(sketch.table_.size() * sizeof(float)));
  WriteHeapEntries(out, sketch.heap_);
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Result<AwmSketch> LoadAwmSketch(std::istream& in, const LearnerOptions& opts) {
  uint32_t magic;
  if (!ReadRaw(in, &magic)) return Status::Corruption("truncated header");
  if (magic != kAwmMagic) return Status::Corruption("not an AWM-Sketch snapshot");
  AwmSketchConfig config;
  uint64_t heap_capacity;
  LearnerOptions restored = opts;
  if (!ReadRaw(in, &config.width) || !ReadRaw(in, &config.depth) ||
      !ReadRaw(in, &heap_capacity) || !ReadRaw(in, &restored.lambda) ||
      !ReadRaw(in, &restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  config.heap_capacity = heap_capacity;
  if (!IsPowerOfTwo(config.width) || config.depth < 1 ||
      config.depth > AwmSketch::kMaxDepth || config.heap_capacity < 1) {
    return Status::Corruption("invalid sketch shape");
  }
  AwmSketch sketch(config, restored);
  uint64_t cells;
  if (!ReadRaw(in, &sketch.t_) || !ReadRaw(in, &sketch.sketch_scale_) ||
      !ReadRaw(in, &sketch.heap_scale_) || !ReadRaw(in, &cells)) {
    return Status::Corruption("truncated state");
  }
  if (cells != sketch.table_.size()) return Status::Corruption("table size mismatch");
  in.read(reinterpret_cast<char*>(sketch.table_.data()),
          static_cast<std::streamsize>(cells * sizeof(float)));
  if (!in) return Status::Corruption("truncated table");
  WMS_RETURN_NOT_OK(ReadHeapEntries(in, &sketch.heap_));
  return sketch;
}

}  // namespace wmsketch
