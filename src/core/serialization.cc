#include "core/serialization.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>
#include <utility>
#include <vector>

#include "util/math.h"

namespace wmsketch {

namespace {

// Version-1 magics: the original flat-table layout (table written as one
// u64-count + raw-cell array). Still accepted by the loaders.
constexpr uint32_t kWmMagic = 0x314d5357;    // "WSM1"
constexpr uint32_t kAwmMagic = 0x314d5741;   // "AWM1"
constexpr uint32_t kTrunMagic = 0x314e5254;  // "TRN1"
constexpr uint32_t kPtrnMagic = 0x31525450;  // "PTR1"
constexpr uint32_t kSsfMagic = 0x31465353;   // "SSF1"
constexpr uint32_t kCmfMagic = 0x31464d43;   // "CMF1"
constexpr uint32_t kFhsMagic = 0x31534846;   // "FHS1"
// Version-2 magics for the paged-table methods: the table section gains the
// writer's page size (u32, diagnostics/forward-compat for page-delta
// shipping) and is streamed page by page. Cell bytes and order are identical
// to v1, and restore is layout-independent (any reader page size works), so
// v2 of a given model state differs from its v1 stream by exactly that one
// field. Savers emit v2; loaders accept both.
constexpr uint32_t kWmMagic2 = 0x324d5357;   // "WSM2"
constexpr uint32_t kAwmMagic2 = 0x324d5741;  // "AWM2"
constexpr uint32_t kFhsMagic2 = 0x32534846;  // "FHS2"

template <typename T>
void WriteRaw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadRaw(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteHeapEntries(std::ostream& out, const TopKHeap& heap) {
  const std::vector<FeatureWeight> entries = heap.Entries();
  WriteRaw(out, static_cast<uint64_t>(entries.size()));
  for (const FeatureWeight& fw : entries) {
    WriteRaw(out, fw.feature);
    WriteRaw(out, fw.weight);
  }
}

template <typename T>
void WriteArray(std::ostream& out, std::span<const T> values) {
  WriteRaw(out, static_cast<uint64_t>(values.size()));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
}

// Reads an array whose element count must equal `expected`.
template <typename T>
Status ReadArrayExact(std::istream& in, std::vector<T>* values, size_t expected) {
  uint64_t n = 0;
  if (!ReadRaw(in, &n)) return Status::Corruption("truncated array header");
  if (n != expected) return Status::Corruption("array size mismatch");
  values->resize(expected);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(expected * sizeof(T)));
  if (!in) return Status::Corruption("truncated array");
  return Status::OK();
}

// The v2 table section: logical cell count, the saver's page size, then the
// cells in page order. Pages are contiguous slices of the live arena, so
// page-ordered iteration IS the flat arena order — one write emits exactly
// the v1 cell bytes, and the recorded page size is what a future
// page-delta format needs to address them.
void WritePagedTable(std::ostream& out, const PagedTable& table) {
  WriteRaw(out, static_cast<uint64_t>(table.size()));
  WriteRaw(out, static_cast<uint32_t>(table.page_cells()));
  out.write(reinterpret_cast<const char*>(table.data()),
            static_cast<std::streamsize>(table.size() * sizeof(float)));
}

// Restores a table section written by WritePagedTable (`paged_layout` true)
// or by the v1 flat writer (false). Restore is layout-independent: the
// saver's page size is validated but the cells land in whatever pages the
// live table uses.
Status ReadTableInto(std::istream& in, PagedTable* table, bool paged_layout) {
  uint64_t cells = 0;
  if (!ReadRaw(in, &cells)) return Status::Corruption("truncated table header");
  if (cells != table->size()) return Status::Corruption("table size mismatch");
  if (paged_layout) {
    uint32_t page_cells = 0;
    if (!ReadRaw(in, &page_cells)) return Status::Corruption("truncated page header");
    if (page_cells == 0 || (page_cells & (page_cells - 1)) != 0) {
      return Status::Corruption("invalid page size");
    }
  }
  in.read(reinterpret_cast<char*>(table->data()),
          static_cast<std::streamsize>(cells * sizeof(float)));
  if (!in) return Status::Corruption("truncated table");
  table->MarkAllDirty();
  return Status::OK();
}

Status ReadHeapEntries(std::istream& in, TopKHeap* heap) {
  uint64_t n = 0;
  if (!ReadRaw(in, &n)) return Status::Corruption("truncated heap header");
  if (n > heap->capacity()) return Status::Corruption("heap entries exceed capacity");
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t feature;
    float weight;
    if (!ReadRaw(in, &feature) || !ReadRaw(in, &weight)) {
      return Status::Corruption("truncated heap entry");
    }
    if (heap->Contains(feature)) return Status::Corruption("duplicate heap feature");
    heap->Set(feature, weight);
  }
  return Status::OK();
}

}  // namespace

Status SaveWmSketch(const WmSketch& sketch, std::ostream& out) {
  WriteRaw(out, kWmMagic2);
  WriteRaw(out, sketch.config_.width);
  WriteRaw(out, sketch.config_.depth);
  WriteRaw(out, static_cast<uint64_t>(sketch.config_.heap_capacity));
  WriteRaw(out, sketch.opts_.lambda);
  WriteRaw(out, sketch.opts_.seed);
  WriteRaw(out, sketch.t_);
  WriteRaw(out, sketch.scale_);
  WritePagedTable(out, sketch.table_);
  WriteHeapEntries(out, sketch.heap_);
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Result<WmSketch> LoadWmSketch(std::istream& in, const LearnerOptions& opts) {
  uint32_t magic;
  if (!ReadRaw(in, &magic)) return Status::Corruption("truncated header");
  if (magic != kWmMagic && magic != kWmMagic2) {
    return Status::Corruption("not a WM-Sketch snapshot");
  }
  WmSketchConfig config;
  uint64_t heap_capacity;
  LearnerOptions restored = opts;
  if (!ReadRaw(in, &config.width) || !ReadRaw(in, &config.depth) ||
      !ReadRaw(in, &heap_capacity) || !ReadRaw(in, &restored.lambda) ||
      !ReadRaw(in, &restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  config.heap_capacity = heap_capacity;
  if (!IsPowerOfTwo(config.width) || config.depth < 1 ||
      config.depth > WmSketch::kMaxDepth) {
    return Status::Corruption("invalid sketch shape");
  }
  WmSketch sketch(config, restored);
  if (!ReadRaw(in, &sketch.t_) || !ReadRaw(in, &sketch.scale_)) {
    return Status::Corruption("truncated state");
  }
  WMS_RETURN_NOT_OK(ReadTableInto(in, &sketch.table_, magic == kWmMagic2));
  WMS_RETURN_NOT_OK(ReadHeapEntries(in, &sketch.heap_));
  return sketch;
}

Status SaveAwmSketch(const AwmSketch& sketch, std::ostream& out) {
  WriteRaw(out, kAwmMagic2);
  WriteRaw(out, sketch.config_.width);
  WriteRaw(out, sketch.config_.depth);
  WriteRaw(out, static_cast<uint64_t>(sketch.config_.heap_capacity));
  WriteRaw(out, sketch.opts_.lambda);
  WriteRaw(out, sketch.opts_.seed);
  WriteRaw(out, sketch.t_);
  WriteRaw(out, sketch.sketch_scale_);
  WriteRaw(out, sketch.heap_scale_);
  WritePagedTable(out, sketch.table_);
  WriteHeapEntries(out, sketch.heap_);
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Result<AwmSketch> LoadAwmSketch(std::istream& in, const LearnerOptions& opts) {
  uint32_t magic;
  if (!ReadRaw(in, &magic)) return Status::Corruption("truncated header");
  if (magic != kAwmMagic && magic != kAwmMagic2) {
    return Status::Corruption("not an AWM-Sketch snapshot");
  }
  AwmSketchConfig config;
  uint64_t heap_capacity;
  LearnerOptions restored = opts;
  if (!ReadRaw(in, &config.width) || !ReadRaw(in, &config.depth) ||
      !ReadRaw(in, &heap_capacity) || !ReadRaw(in, &restored.lambda) ||
      !ReadRaw(in, &restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  config.heap_capacity = heap_capacity;
  if (!IsPowerOfTwo(config.width) || config.depth < 1 ||
      config.depth > AwmSketch::kMaxDepth || config.heap_capacity < 1) {
    return Status::Corruption("invalid sketch shape");
  }
  AwmSketch sketch(config, restored);
  if (!ReadRaw(in, &sketch.t_) || !ReadRaw(in, &sketch.sketch_scale_) ||
      !ReadRaw(in, &sketch.heap_scale_)) {
    return Status::Corruption("truncated state");
  }
  WMS_RETURN_NOT_OK(ReadTableInto(in, &sketch.table_, magic == kAwmMagic2));
  WMS_RETURN_NOT_OK(ReadHeapEntries(in, &sketch.heap_));
  return sketch;
}

// ------------------------------------------------------------- baselines

Status SaveSimpleTruncation(const SimpleTruncation& model, std::ostream& out) {
  WriteRaw(out, kTrunMagic);
  WriteRaw(out, static_cast<uint64_t>(model.heap_.capacity()));
  WriteRaw(out, model.opts_.lambda);
  WriteRaw(out, model.opts_.seed);
  WriteRaw(out, model.t_);
  WriteRaw(out, model.scale_);
  WriteHeapEntries(out, model.heap_);
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Result<SimpleTruncation> LoadSimpleTruncation(std::istream& in, const LearnerOptions& opts) {
  uint32_t magic;
  if (!ReadRaw(in, &magic)) return Status::Corruption("truncated header");
  if (magic != kTrunMagic) return Status::Corruption("not a truncation snapshot");
  uint64_t capacity;
  LearnerOptions restored = opts;
  if (!ReadRaw(in, &capacity) || !ReadRaw(in, &restored.lambda) ||
      !ReadRaw(in, &restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  if (capacity < 1) return Status::Corruption("empty truncation capacity");
  SimpleTruncation model(capacity, restored);
  if (!ReadRaw(in, &model.t_) || !ReadRaw(in, &model.scale_)) {
    return Status::Corruption("truncated state");
  }
  WMS_RETURN_NOT_OK(ReadHeapEntries(in, &model.heap_));
  return model;
}

Status SaveProbabilisticTruncation(const ProbabilisticTruncation& model, std::ostream& out) {
  WriteRaw(out, kPtrnMagic);
  WriteRaw(out, static_cast<uint64_t>(model.capacity_));
  WriteRaw(out, model.opts_.lambda);
  WriteRaw(out, model.opts_.seed);
  WriteRaw(out, model.t_);
  WriteRaw(out, model.scale_);
  WriteRaw(out, static_cast<uint64_t>(model.heap_.size()));
  for (const IndexedMinHeap::Entry& e : model.heap_.entries()) {
    WriteRaw(out, e.key);
    WriteRaw(out, e.priority);
    WriteRaw(out, e.value);
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Result<ProbabilisticTruncation> LoadProbabilisticTruncation(std::istream& in,
                                                            const LearnerOptions& opts) {
  uint32_t magic;
  if (!ReadRaw(in, &magic)) return Status::Corruption("truncated header");
  if (magic != kPtrnMagic) return Status::Corruption("not a ptrun snapshot");
  uint64_t capacity;
  LearnerOptions restored = opts;
  if (!ReadRaw(in, &capacity) || !ReadRaw(in, &restored.lambda) ||
      !ReadRaw(in, &restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  if (capacity < 1) return Status::Corruption("empty ptrun capacity");
  ProbabilisticTruncation model(capacity, restored);
  uint64_t entries;
  if (!ReadRaw(in, &model.t_) || !ReadRaw(in, &model.scale_) || !ReadRaw(in, &entries)) {
    return Status::Corruption("truncated state");
  }
  if (entries > capacity) return Status::Corruption("ptrun entries exceed capacity");
  std::vector<IndexedMinHeap::Entry> heap_entries(entries);
  for (IndexedMinHeap::Entry& e : heap_entries) {
    if (!ReadRaw(in, &e.key) || !ReadRaw(in, &e.priority) || !ReadRaw(in, &e.value)) {
      return Status::Corruption("truncated ptrun entry");
    }
  }
  {
    const Status st = model.heap_.RestoreHeapOrder(std::move(heap_entries));
    if (!st.ok()) return Status::Corruption(st.message());
  }
  return model;
}

Status SaveSpaceSavingFrequent(const SpaceSavingFrequent& model, std::ostream& out) {
  WriteRaw(out, kSsfMagic);
  WriteRaw(out, static_cast<uint64_t>(model.ss_.capacity()));
  WriteRaw(out, model.opts_.lambda);
  WriteRaw(out, model.opts_.seed);
  WriteRaw(out, model.t_);
  WriteRaw(out, model.scale_);
  WriteRaw(out, model.ss_.TotalCount());
  // Raw heap order: restore must reproduce eviction tie-breaking exactly.
  const std::vector<SpaceSavingEntry> entries = model.ss_.RawEntries();
  WriteRaw(out, static_cast<uint64_t>(entries.size()));
  for (const SpaceSavingEntry& e : entries) {
    WriteRaw(out, e.item);
    WriteRaw(out, e.count);
    WriteRaw(out, e.error);
  }
  WriteRaw(out, static_cast<uint64_t>(model.weights_.size()));
  for (const auto& [feature, weight] : model.weights_) {
    WriteRaw(out, feature);
    WriteRaw(out, weight);
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Result<SpaceSavingFrequent> LoadSpaceSavingFrequent(std::istream& in,
                                                    const LearnerOptions& opts) {
  uint32_t magic;
  if (!ReadRaw(in, &magic)) return Status::Corruption("truncated header");
  if (magic != kSsfMagic) return Status::Corruption("not a Space-Saving snapshot");
  uint64_t capacity;
  LearnerOptions restored = opts;
  if (!ReadRaw(in, &capacity) || !ReadRaw(in, &restored.lambda) ||
      !ReadRaw(in, &restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  if (capacity < 1) return Status::Corruption("empty Space-Saving capacity");
  SpaceSavingFrequent model(capacity, restored);
  uint64_t total, entries;
  if (!ReadRaw(in, &model.t_) || !ReadRaw(in, &model.scale_) || !ReadRaw(in, &total) ||
      !ReadRaw(in, &entries)) {
    return Status::Corruption("truncated state");
  }
  if (entries > capacity) return Status::Corruption("summary entries exceed capacity");
  std::vector<SpaceSavingEntry> summary(entries);
  for (SpaceSavingEntry& e : summary) {
    if (!ReadRaw(in, &e.item) || !ReadRaw(in, &e.count) || !ReadRaw(in, &e.error)) {
      return Status::Corruption("truncated summary entry");
    }
  }
  {
    const Status st = model.ss_.RestoreEntries(summary, total);
    if (!st.ok()) return Status::Corruption(st.message());
  }
  uint64_t weights;
  if (!ReadRaw(in, &weights)) return Status::Corruption("truncated weight header");
  if (weights > capacity) return Status::Corruption("weights exceed capacity");
  for (uint64_t i = 0; i < weights; ++i) {
    uint32_t feature;
    float weight;
    if (!ReadRaw(in, &feature) || !ReadRaw(in, &weight)) {
      return Status::Corruption("truncated weight entry");
    }
    // A weight's feature must be monitored: an unmonitored feature can never
    // be evicted, so its weight would persist (and predict) forever.
    if (!model.ss_.Contains(feature)) {
      return Status::Corruption("weight for unmonitored feature");
    }
    model.weights_[feature] = weight;
  }
  return model;
}

Status SaveCountMinFrequent(const CountMinFrequent& model, std::ostream& out) {
  WriteRaw(out, kCmfMagic);
  WriteRaw(out, model.cm_.width());
  WriteRaw(out, model.cm_.depth());
  WriteRaw(out, static_cast<uint64_t>(model.capacity_));
  WriteRaw(out, model.opts_.lambda);
  WriteRaw(out, model.opts_.seed);
  WriteRaw(out, model.t_);
  WriteRaw(out, model.scale_);
  WriteRaw(out, model.cm_.TotalMass());
  WriteArray(out, model.cm_.table());
  WriteRaw(out, static_cast<uint64_t>(model.heap_.size()));
  for (const IndexedMinHeap::Entry& e : model.heap_.entries()) {
    WriteRaw(out, e.key);
    WriteRaw(out, e.priority);
    WriteRaw(out, e.value);
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Result<CountMinFrequent> LoadCountMinFrequent(std::istream& in, const LearnerOptions& opts) {
  uint32_t magic;
  if (!ReadRaw(in, &magic)) return Status::Corruption("truncated header");
  if (magic != kCmfMagic) return Status::Corruption("not a CM-FF snapshot");
  uint32_t width, depth;
  uint64_t capacity;
  LearnerOptions restored = opts;
  if (!ReadRaw(in, &width) || !ReadRaw(in, &depth) || !ReadRaw(in, &capacity) ||
      !ReadRaw(in, &restored.lambda) || !ReadRaw(in, &restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  if (!IsPowerOfTwo(width) || depth < 1 || depth > CountMinSketch::kMaxDepth ||
      capacity < 1) {
    return Status::Corruption("invalid CM-FF shape");
  }
  CountMinFrequent model(width, depth, capacity, restored);
  double total;
  if (!ReadRaw(in, &model.t_) || !ReadRaw(in, &model.scale_) || !ReadRaw(in, &total)) {
    return Status::Corruption("truncated state");
  }
  std::vector<double> table;
  WMS_RETURN_NOT_OK(ReadArrayExact(in, &table, model.cm_.cells()));
  {
    const Status st = model.cm_.RestoreState(table, total);
    if (!st.ok()) return Status::Corruption(st.message());
  }
  uint64_t entries;
  if (!ReadRaw(in, &entries)) return Status::Corruption("truncated heap header");
  if (entries > capacity) return Status::Corruption("CM-FF entries exceed capacity");
  std::vector<IndexedMinHeap::Entry> heap_entries(entries);
  for (IndexedMinHeap::Entry& e : heap_entries) {
    if (!ReadRaw(in, &e.key) || !ReadRaw(in, &e.priority) || !ReadRaw(in, &e.value)) {
      return Status::Corruption("truncated CM-FF entry");
    }
  }
  {
    const Status st = model.heap_.RestoreHeapOrder(std::move(heap_entries));
    if (!st.ok()) return Status::Corruption(st.message());
  }
  return model;
}

Status SaveFeatureHashing(const FeatureHashingClassifier& model, std::ostream& out) {
  WriteRaw(out, kFhsMagic2);
  WriteRaw(out, model.buckets());
  WriteRaw(out, model.opts_.lambda);
  WriteRaw(out, model.opts_.seed);
  WriteRaw(out, model.t_);
  WriteRaw(out, model.scale_);
  WritePagedTable(out, model.table_);
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Result<FeatureHashingClassifier> LoadFeatureHashing(std::istream& in,
                                                    const LearnerOptions& opts) {
  uint32_t magic;
  if (!ReadRaw(in, &magic)) return Status::Corruption("truncated header");
  if (magic != kFhsMagic && magic != kFhsMagic2) {
    return Status::Corruption("not a feature-hashing snapshot");
  }
  uint32_t buckets;
  LearnerOptions restored = opts;
  if (!ReadRaw(in, &buckets) || !ReadRaw(in, &restored.lambda) ||
      !ReadRaw(in, &restored.seed)) {
    return Status::Corruption("truncated configuration");
  }
  if (!IsPowerOfTwo(buckets)) return Status::Corruption("invalid bucket count");
  FeatureHashingClassifier model(buckets, restored);
  if (!ReadRaw(in, &model.t_) || !ReadRaw(in, &model.scale_)) {
    return Status::Corruption("truncated state");
  }
  WMS_RETURN_NOT_OK(ReadTableInto(in, &model.table_, magic == kFhsMagic2));
  return model;
}

}  // namespace wmsketch
