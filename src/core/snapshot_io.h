#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "util/status.h"

namespace wmsketch::snapshot {

/// The checksummed snapshot envelope and the bounded reader every snapshot
/// loader parses through.
///
/// Envelope layout (little-endian, 20-byte header):
///
///   offset  size  field
///        0     4  magic "WMS3" (0x33534d57)
///        4     4  envelope version (3)
///        8     8  payload length in bytes
///       16     4  CRC32C over header[0..16) + payload
///       20     -  payload: the v1/v2 snapshot stream (method or facade
///                 header included), unchanged
///
/// Loaders sniff the leading magic: enveloped streams get their declared
/// length validated against the *actual* stream size and their checksum
/// verified before any model state is parsed; v1/v2 unwrapped streams (the
/// pre-envelope formats) parse directly, so old snapshots keep loading.
///
/// All raw stream I/O in the serialization paths lives here — the
/// `checked-io` lint rule (tools/lint/wms_lint.py) forbids naked
/// `.read(`/`.write(` calls in serialization.cc / learner.cc /
/// checkpoint.cc so size-validation can't be bypassed by accident.

inline constexpr uint32_t kEnvelopeMagic = 0x33534d57;  // "WMS3"
inline constexpr uint32_t kEnvelopeVersion = 3;
inline constexpr size_t kEnvelopeHeaderBytes = 20;

/// Absolute sanity cap on declared heap/active-set/tracked capacities.
/// Capacity fields size allocations that are not stream-backed (an empty
/// heap with capacity k is legal and occupies no stream bytes), so they
/// cannot be bounded by remaining bytes; this cap keeps a corrupt header
/// from turning into a multi-gigabyte allocation. 2^24 entries is orders of
/// magnitude beyond any budgeted configuration (budgets are KBs to MBs).
inline constexpr uint64_t kMaxDeclaredCapacity = uint64_t{1} << 24;

/// Fallback bound for stream-backed data when the stream cannot report its
/// size (unseekable legacy input): a declared array larger than this is
/// rejected rather than allocated. Enveloped snapshots never hit this —
/// their payload is fully length- and CRC-validated in memory.
inline constexpr uint64_t kUnseekableStreamBound = uint64_t{1} << 31;

/// Writes `value`'s object representation to `out`.
template <typename T>
inline void WriteRaw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Writes `n` raw bytes to `out`.
inline void WriteBytes(std::ostream& out, const void* data, size_t n) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

/// Wraps a fully serialized snapshot payload in the checksummed envelope
/// and writes it to `out`. Failpoint site "envelope:write" can force an
/// IOError or a torn (short) write.
Status WriteEnveloped(std::ostream& out, std::string_view payload);

/// Returns IOError naming the failing section when `out` has entered a
/// failed state (savers call this after every section so a short write
/// surfaces precisely, not as one opaque failure at the end). Failpoint
/// site "save:section" forces the failure.
Status SectionGuard(std::ostream& out, const char* snapshot_kind, const char* section);

/// The single parsing surface for snapshot loaders: serves bytes either
/// from a verified in-memory envelope payload (remaining() exact) or from a
/// legacy stream (remaining() probed via seek when the stream supports it),
/// and answers CanRead() so loaders bound declared sizes *before*
/// allocating.
class SnapshotReader {
 public:
  /// Memory-backed reader over a verified envelope payload.
  explicit SnapshotReader(std::string_view bytes);

  /// Stream-backed reader for legacy unwrapped snapshots. `pushback` (the
  /// sniffed magic) is re-served before stream bytes.
  SnapshotReader(std::istream& in, std::string_view pushback);

  SnapshotReader(SnapshotReader&&) noexcept = default;
  SnapshotReader& operator=(SnapshotReader&&) noexcept = default;

  /// Reads sizeof(T) bytes into `*value`; false on truncation.
  template <typename T>
  bool ReadRaw(T* value) {
    return ReadExactRaw(reinterpret_cast<char*>(value), sizeof(T));
  }

  /// Reads exactly `n` bytes into `dst`; false on truncation.
  bool ReadExactRaw(char* dst, size_t n);

  /// True when the byte count left in the source is known exactly.
  bool remaining_known() const { return remaining_known_; }
  /// Bytes left (meaningful only when remaining_known()).
  uint64_t remaining() const { return remaining_; }

  /// True when `count` elements of `elem_size` bytes may still follow:
  /// bounded by remaining() when known, by kUnseekableStreamBound
  /// otherwise. The pre-allocation guard every loader must pass before
  /// resizing to a declared size.
  bool CanRead(uint64_t count, size_t elem_size) const {
    const uint64_t bound = remaining_known_ ? remaining_ : kUnseekableStreamBound;
    return elem_size == 0 || count <= bound / elem_size;
  }

 private:
  std::istream* in_ = nullptr;
  std::string pushback_;
  size_t pushback_pos_ = 0;
  std::string_view mem_;
  size_t mem_pos_ = 0;
  bool remaining_known_ = false;
  uint64_t remaining_ = 0;
};

/// Sniffs `in` and returns a reader over the snapshot bytes. Enveloped
/// input: validates version, bounds the declared payload length against the
/// actual stream size before allocating (a header claiming 2^60 bytes is
/// Corruption, not OOM), reads the payload into `*payload_storage` in
/// bounded chunks, and verifies the CRC32C — the returned reader serves the
/// verified payload, which must not outlive `*payload_storage`. Legacy
/// v1/v2 input: returns a stream-backed reader with the sniffed magic
/// pushed back.
Result<SnapshotReader> OpenSnapshot(std::istream& in, std::string* payload_storage);

}  // namespace wmsketch::snapshot
