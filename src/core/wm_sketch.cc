#include "core/wm_sketch.h"

#include <cassert>
#include <cmath>
#include <memory>

#include "util/math.h"
#include "util/random.h"

namespace wmsketch {

namespace {
constexpr double kMinScale = 1e-25;
}  // namespace

WmSketch::WmSketch(const WmSketchConfig& config, const LearnerOptions& opts)
    : config_(config),
      opts_(opts),
      sqrt_depth_(std::sqrt(static_cast<double>(config.depth))),
      heap_(config.heap_capacity > 0 ? config.heap_capacity : 1) {
  assert(IsPowerOfTwo(config.width));
  assert(config.depth >= 1 && config.depth <= kMaxDepth);
  SplitMix64 sm(opts.seed);
  rows_.reserve(config.depth);
  for (uint32_t j = 0; j < config.depth; ++j) rows_.emplace_back(sm.Next(), config.width);
  table_.assign(static_cast<size_t>(config.width) * config.depth, 0.0f);
}

double WmSketch::PredictMargin(const SparseVector& x) const {
  // τ = zᵀRx = (α/√s)·Σ_i x_i Σ_j σ_j(i)·v[j, h_j(i)].
  double acc = 0.0;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    double per_feature = 0.0;
    for (uint32_t j = 0; j < config_.depth; ++j) {
      uint32_t bucket;
      float sign;
      rows_[j].BucketAndSign(feature, &bucket, &sign);
      per_feature += static_cast<double>(sign) * static_cast<double>(Row(j)[bucket]);
    }
    acc += per_feature * static_cast<double>(x.value(i));
  }
  return scale_ / sqrt_depth_ * acc;
}

double WmSketch::Update(const SparseVector& x, int8_t y) {
  const double margin = PredictMargin(x);
  ++t_;
  const double eta = opts_.rate.Rate(t_);
  const double g = opts_.loss->Derivative(static_cast<double>(y) * margin);

  // z ← (1−λη)z, folded into the global scale.
  if (opts_.lambda > 0.0) scale_ *= (1.0 - eta * opts_.lambda);

  // z ← z − η·y·g·Rx: each nonzero feature touches one bucket per row with
  // its sign, scaled by 1/√s (from R = A/√s) and divided by the new α.
  const double step = eta * static_cast<double>(y) * g / (sqrt_depth_ * scale_);
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    const double delta = step * static_cast<double>(x.value(i));
    for (uint32_t j = 0; j < config_.depth; ++j) {
      uint32_t bucket;
      float sign;
      rows_[j].BucketAndSign(feature, &bucket, &sign);
      Row(j)[bucket] -= static_cast<float>(delta * static_cast<double>(sign));
    }
    // Passive top-K tracking on raw medians (Sec. 5.2 baseline scheme): raw
    // magnitude order equals true-estimate order because √s·α is a shared
    // positive factor.
    if (config_.heap_capacity > 0) heap_.Offer(feature, RawMedian(feature));
  }
  MaybeRescale();
  return margin;
}

void WmSketch::UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) {
  for (const Example& ex : batch) {
    const double margin = Update(ex.x, ex.y);
    if (margins != nullptr) margins->push_back(margin);
  }
}

WeightEstimator WmSketch::EstimatorSnapshot() const {
  struct State {
    std::vector<SignedBucketHash> rows;
    std::vector<float> table;
    uint32_t width;
    uint32_t depth;
    double scale;  // √s·α, the factor WeightEstimate applies to raw medians
  };
  auto st = std::make_shared<const State>(
      State{rows_, table_, config_.width, config_.depth, sqrt_depth_ * scale_});
  return [st](uint32_t feature) {
    float est[kMaxDepth];
    for (uint32_t j = 0; j < st->depth; ++j) {
      uint32_t bucket;
      float sign;
      st->rows[j].BucketAndSign(feature, &bucket, &sign);
      est[j] = sign * st->table[static_cast<size_t>(j) * st->width + bucket];
    }
    return static_cast<float>(st->scale *
                              static_cast<double>(MedianInPlace(est, st->depth)));
  };
}

float WmSketch::RawMedian(uint32_t feature) const {
  float est[kMaxDepth];
  for (uint32_t j = 0; j < config_.depth; ++j) {
    uint32_t bucket;
    float sign;
    rows_[j].BucketAndSign(feature, &bucket, &sign);
    est[j] = sign * Row(j)[bucket];
  }
  return MedianInPlace(est, config_.depth);
}

void WmSketch::MaybeRescale() {
  if (scale_ >= kMinScale) return;
  const float f = static_cast<float>(scale_);
  for (float& v : table_) v *= f;
  heap_.Scale(f);
  scale_ = 1.0;
}

float WmSketch::WeightEstimate(uint32_t feature) const {
  // ŵ_i = median_j(√s·σ_j(i)·z[j,h_j(i)]) = √s·α·RawMedian(i).
  return static_cast<float>(sqrt_depth_ * scale_ * static_cast<double>(RawMedian(feature)));
}

std::vector<FeatureWeight> WmSketch::TopK(size_t k) const {
  // The heap supplies candidate identities; estimates are re-queried from
  // the live sketch, since collisions may have shifted raw values since a
  // candidate was last touched.
  std::vector<FeatureWeight> out;
  out.reserve(heap_.size());
  for (const FeatureWeight& fw : heap_.Entries()) {
    out.push_back(FeatureWeight{fw.feature, WeightEstimate(fw.feature)});
  }
  SortByMagnitudeAndTruncate(out, k);
  return out;
}

}  // namespace wmsketch
