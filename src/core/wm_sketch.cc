#include "core/wm_sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "sketch/hash_plan.h"
#include "sketch/merge_compat.h"
#include "sketch/read_path.h"
#include "util/math.h"
#include "util/random.h"
#include "util/simd.h"

namespace wmsketch {

namespace {

constexpr double kMinScale = 1e-25;

/// True when the plan's nnz·depth table offsets are pairwise distinct — the
/// condition under which a full-plan scatter followed by full-plan medians
/// is bit-identical to the per-feature scatter/offer interleave (no feature
/// reads a cell another feature of the same example writes). Epoch-stamped
/// open addressing in thread-local storage: no clearing between calls, no
/// steady-state allocation.
bool PlanOffsetsDistinct(const uint32_t* offsets, size_t n) {
  thread_local std::vector<uint32_t> slot_key;
  thread_local std::vector<uint32_t> slot_epoch;
  thread_local uint32_t epoch = 0;
  const size_t cap = NextPowerOfTwo(2 * n);
  if (slot_key.size() < cap) {
    slot_key.assign(cap, 0);
    slot_epoch.assign(cap, 0);
    epoch = 0;
  }
  if (++epoch == 0) {  // wrap: stale stamps could alias a reused epoch value
    std::fill(slot_epoch.begin(), slot_epoch.end(), 0u);
    epoch = 1;
  }
  const uint32_t mask = static_cast<uint32_t>(slot_key.size()) - 1;
  for (size_t e = 0; e < n; ++e) {
    const uint32_t key = offsets[e];
    uint32_t s = (key * 0x9E3779B9u) & mask;
    while (slot_epoch[s] == epoch) {
      if (slot_key[s] == key) return false;
      s = (s + 1) & mask;
    }
    slot_epoch[s] = epoch;
    slot_key[s] = key;
  }
  return true;
}

/// The frozen WM read model: copies of the hash rows, the *published pages*
/// of the raw table (shared with other snapshots; only pages dirtied since
/// the previous publication were copied), and the two resolved scale
/// factors. Every answer runs the shared sketch/read_path.h paged kernels,
/// whose arithmetic is the flat kernels' verbatim — frozen answers stay
/// bit-identical to what the live model answered at capture time.
class WmReadModel final : public ReadModel {
 public:
  WmReadModel(std::vector<SignedBucketHash> rows, PageSet<float> pages,
              double margin_factor, double estimate_factor)
      : rows_(std::move(rows)),
        pages_(std::move(pages)),
        margin_factor_(margin_factor),
        estimate_factor_(estimate_factor) {}

  double PredictMargin(const SparseVector& x) const override {
    return readpath::FusedMarginPaged(pages_.view(), rows_, x, margin_factor_);
  }

  void PredictBatch(std::span<const Example> batch, double* out) const override {
    readpath::MarginBatchPaged(pages_.view(), rows_, batch, margin_factor_, out);
  }

  float Estimate(uint32_t feature) const override {
    return readpath::FusedEstimatePaged(pages_.view(), rows_, feature, estimate_factor_);
  }

  void EstimateBatch(std::span<const uint32_t> features, float* out) const override {
    readpath::EstimateBatchPaged(pages_.view(), rows_, features, estimate_factor_, out);
  }

  size_t ResidentBytes() const override { return pages_.ResidentBytes(); }

 private:
  std::vector<SignedBucketHash> rows_;
  PageSet<float> pages_;
  double margin_factor_;    // α/√s — applied to raw margin sums
  double estimate_factor_;  // √s·α — applied to raw medians
};

}  // namespace

WmSketch::WmSketch(const WmSketchConfig& config, const LearnerOptions& opts)
    : config_(config),
      opts_(opts),
      sqrt_depth_(std::sqrt(static_cast<double>(config.depth))),
      heap_(config.heap_capacity > 0 ? config.heap_capacity : 1) {
  assert(IsPowerOfTwo(config.width));
  assert(config.depth >= 1 && config.depth <= kMaxDepth);
  SplitMix64 sm(opts.seed);
  rows_.reserve(config.depth);
  for (uint32_t j = 0; j < config.depth; ++j) rows_.emplace_back(sm.Next(), config.width);
  table_ = PagedTable(static_cast<size_t>(config.width) * config.depth);
}

double WmSketch::PredictMargin(const SparseVector& x) const {
  // τ = zᵀRx = (α/√s)·Σ_i x_i Σ_j σ_j(i)·v[j, h_j(i)]. The standalone query
  // path keeps the fused hash-and-accumulate loop: it already hashes each
  // pair once, and materializing a plan here would only add buffer traffic.
  // Updates compute this same sum through their plan (MarginFromPlan) so the
  // hashes are reused by the scatter and heap stages.
  double acc = 0.0;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t feature = x.index(i);
    double per_feature = 0.0;
    for (uint32_t j = 0; j < config_.depth; ++j) {
      uint32_t bucket;
      float sign;
      rows_[j].BucketAndSign(feature, &bucket, &sign);
      per_feature += static_cast<double>(sign) * static_cast<double>(Row(j)[bucket]);
    }
    acc += per_feature * static_cast<double>(x.value(i));
  }
  return scale_ / sqrt_depth_ * acc;
}

void WmSketch::PredictBatch(std::span<const Example> batch, double* margins) const {
  readpath::PlanMarginBatch(table_.data(), rows_, batch, scale_ / sqrt_depth_, margins);
}

void WmSketch::EstimateBatch(std::span<const uint32_t> features, float* out) const {
  readpath::GatherMedianBatch(table_.data(), rows_, features, sqrt_depth_ * scale_, out);
}

std::unique_ptr<const ReadModel> WmSketch::MakeReadModel() const {
  return std::make_unique<WmReadModel>(rows_, table_.SharePages(), scale_ / sqrt_depth_,
                                       sqrt_depth_ * scale_);
}

double WmSketch::MarginFromPlan(const simd::PlanView& plan, const SparseVector& x,
                                float* scratch) const {
  return scale_ / sqrt_depth_ *
         simd::PlanMargin(table_.data(), plan, x.values().data(), scratch);
}

double WmSketch::Update(const SparseVector& x, int8_t y) {
  // Hash once: all nnz×depth (bucket, sign) pairs of this example feed the
  // margin, the gradient scatter, and the heap offers below.
  HashPlan& plan = TlsPlan();
  plan.Build(rows_, x);
  return UpdateWithPlan(x, y, plan.View(), plan.scratch());
}

double WmSketch::UpdateWithPlan(const SparseVector& x, int8_t y,
                                const simd::PlanView& plan, float* scratch) {
  const double margin = MarginFromPlan(plan, x, scratch);
  ++t_;
  const double eta = opts_.rate.Rate(t_);
  const double g = opts_.loss->Derivative(static_cast<double>(y) * margin);

  // z ← (1−λη)z, folded into the global scale.
  if (opts_.lambda > 0.0) scale_ *= (1.0 - eta * opts_.lambda);

  // z ← z − η·y·g·Rx: each nonzero feature touches one bucket per row with
  // its sign, scaled by 1/√s (from R = A/√s) and divided by the new α.
  // Every cell the scatter will touch is in the plan, so one batched mark
  // covers the whole write set (no-op until the first snapshot publication).
  table_.MarkPlanDirty(plan.offsets, plan.entries());
  const double step = eta * static_cast<double>(y) * g / (sqrt_depth_ * scale_);
  if (config_.heap_capacity > 0) {
    // Passive top-K tracking on raw medians (Sec. 5.2 baseline scheme): raw
    // magnitude order equals true-estimate order because √s·α is a shared
    // positive factor. The heap offer for feature i must observe the
    // scatters of features 0..i only (two colliding features of one example
    // read different intermediate cells), so in general scatter and offer
    // interleave per feature exactly as the pre-plan loop did.
    //
    // Batched route: when the example's offsets are pairwise distinct, no
    // feature reads a cell another feature writes, so the interleave is
    // unobservable — a full-plan vectorized scatter, one fused gather+median
    // sweep, and a vectorized |median|-vs-heap-floor prefilter produce the
    // exact per-feature offer sequence with the scalar heap entered only for
    // offers the floor test cannot reject. The width-dependent guard skips
    // the distinctness check when a collision is likelier than not
    // (birthday bound: ~entries²/2 over table cells), which routes narrow
    // sketches to the interleaved loop without scanning.
    const uint32_t d = plan.depth;
    const size_t entries = plan.entries();
    if (d <= 7 && simd::FusedMedianDispatched(plan.nnz) &&
        2 * entries * entries <= table_.size() &&
        PlanOffsetsDistinct(plan.offsets, entries)) {
      thread_local std::vector<float> medians;
      thread_local std::vector<float> mags;
      thread_local std::vector<uint8_t> above;
      const size_t nnz = plan.nnz;
      if (medians.size() < nnz) {
        medians.resize(nnz);
        mags.resize(nnz);
        above.resize(nnz);
      }
      simd::PlanScatter(table_.data(), plan, x.values().data(), step, scratch);
      // Raw medians (factor 1.0 is exact): what RawMedianFromPlan returns.
      simd::GatherMedianFused(table_.data(), plan.offsets, plan.signs, nnz, d, 1.0,
                              medians.data());
      const bool was_full = heap_.full();
      const float floor0 = was_full ? heap_.MinPriority() : 0.0f;
      simd::AbsAboveFloor(medians.data(), nnz, floor0, mags.data(), above.data());
      // The precomputed prefilter is valid while the heap is full and its
      // floor still equals floor0; a tracked-feature refresh can *lower* the
      // floor and an eviction raises it, so re-read after every real offer
      // and fall back to the scalar comparison (same test, current floor)
      // whenever it moved. Contains() must be consulted before skipping: a
      // below-floor offer to a tracked feature still refreshes it.
      float cur_floor = floor0;
      bool floor_current = was_full;
      for (size_t i = 0; i < nnz; ++i) {
        if (heap_.full()) {
          const bool rejected_by_floor =
              floor_current ? above[i] == 0 : mags[i] <= cur_floor;
          if (rejected_by_floor && !heap_.Contains(x.index(i))) continue;
        }
        heap_.Offer(x.index(i), medians[i]);
        if (heap_.full()) {
          const float nf = heap_.MinPriority();
          floor_current = was_full && nf == floor0;
          cur_floor = nf;
        }
      }
    } else {
      float* tbl = table_.data();
      for (size_t i = 0; i < plan.nnz; ++i) {
        const double delta = step * static_cast<double>(x.value(i));
        const uint32_t* off = plan.offsets + i * d;
        const float* sg = plan.signs + i * d;
        for (uint32_t j = 0; j < d; ++j) {
          tbl[off[j]] -= static_cast<float>(delta * static_cast<double>(sg[j]));
        }
        heap_.Offer(x.index(i), RawMedianFromPlan(plan, i));
      }
    }
  } else {
    simd::PlanScatter(table_.data(), plan, x.values().data(), step, scratch);
  }
  MaybeRescale();
  return margin;
}

void WmSketch::UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) {
  // Hash the whole batch up front into one arena (one allocation burst per
  // batch), then walk it, prefetching the table cells of example e+1 while
  // example e updates. State evolution is bit-identical to the per-example
  // loop: the plans are pure functions of the features.
  HashPlanArena& arena = TlsArena();
  arena.Build(rows_, batch);
  for (size_t e = 0; e < batch.size(); ++e) {
    if (e + 1 < batch.size()) arena.PrefetchTable(table_.data(), e + 1);
    const double margin =
        UpdateWithPlan(batch[e].x, batch[e].y, arena.View(e), arena.scratch());
    if (margins != nullptr) margins->push_back(margin);
  }
}

WeightEstimator WmSketch::EstimatorSnapshot() const {
  // Shares published pages with every other snapshot (O(dirty) capture, not
  // O(budget)); the closure is the paged fused estimate, bit-identical to
  // the live WeightEstimate at capture time.
  struct State {
    std::vector<SignedBucketHash> rows;
    PageSet<float> pages;
    double scale;  // √s·α, the factor WeightEstimate applies to raw medians
  };
  auto st = std::make_shared<const State>(
      State{rows_, table_.SharePages(), sqrt_depth_ * scale_});
  return [st](uint32_t feature) {
    return readpath::FusedEstimatePaged(st->pages.view(), st->rows, feature, st->scale);
  };
}

Status WmSketch::CanMerge(const BudgetedClassifier& other) const {
  const auto* o = dynamic_cast<const WmSketch*>(&other);
  if (o == nullptr) {
    return Status::InvalidArgument("wm merge: cannot merge a '" + other.Name() +
                                   "' model into a wm sketch");
  }
  WMS_RETURN_NOT_OK(CheckMergeCompatible(
      "wm", SketchShape{config_.width, config_.depth, opts_.seed},
      SketchShape{o->config_.width, o->config_.depth, o->opts_.seed}));
  return CheckCapacityCompatible("wm", "heap capacity", config_.heap_capacity,
                                 o->config_.heap_capacity);
}

Status WmSketch::MergeScaled(const BudgetedClassifier& other, double coeff) {
  WMS_RETURN_NOT_OK(CanMerge(other));
  if (!std::isfinite(coeff)) {
    return Status::InvalidArgument("wm merge: coefficient must be finite");
  }
  const WmSketch& o = static_cast<const WmSketch&>(other);

  // Resolve the two lazy global scales into this sketch's representation:
  // z = α_a·v_a + c·α_b·v_b = α_a·(v_a + (c·α_b/α_a)·v_b). A merge sweeps
  // every cell, so only the pages it writes — all of them — are COW'd.
  const double ratio = coeff * o.scale_ / scale_;
  table_.MarkAllDirty();
  simd::MergeScaledTable(table_.data(), o.table_.data(), table_.size(), ratio);

  // The merged table shifts every bucket, so neither heap's cached raw
  // medians are current. Rebuild over the union of tracked candidates,
  // offered in ascending feature order for determinism.
  if (config_.heap_capacity > 0) {
    std::vector<uint32_t> candidates;
    candidates.reserve(heap_.size() + o.heap_.size());
    for (const FeatureWeight& fw : heap_.Entries()) candidates.push_back(fw.feature);
    for (const FeatureWeight& fw : o.heap_.Entries()) candidates.push_back(fw.feature);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
    TopKHeap rebuilt(config_.heap_capacity);
    for (const uint32_t feature : candidates) rebuilt.Offer(feature, RawMedian(feature));
    heap_ = std::move(rebuilt);
  }
  MaybeRescale();
  return Status::OK();
}

Status WmSketch::ScaleWeights(double factor) {
  if (!(factor > 0.0)) {
    return Status::InvalidArgument("wm scale: factor must be positive");
  }
  // The heap stores *raw* medians, which are untouched by a pure change of
  // the global scale, so this is O(1).
  scale_ *= factor;
  MaybeRescale();
  return Status::OK();
}

Status WmSketch::SetSteps(uint64_t steps) {
  t_ = steps;
  return Status::OK();
}

std::unique_ptr<BudgetedClassifier> WmSketch::Clone() const {
  return std::make_unique<WmSketch>(*this);
}

float WmSketch::RawMedian(uint32_t feature) const {
  float est[kMaxDepth];
  for (uint32_t j = 0; j < config_.depth; ++j) {
    uint32_t bucket;
    float sign;
    rows_[j].BucketAndSign(feature, &bucket, &sign);
    est[j] = sign * Row(j)[bucket];
  }
  return MedianInPlace(est, config_.depth);
}

float WmSketch::RawMedianFromPlan(const simd::PlanView& plan, size_t i) const {
  // RawMedian without re-hashing: the plan already knows feature i's cells.
  float est[kMaxDepth];
  simd::GatherSigned(table_.data(), plan.offsets + i * plan.depth,
                     plan.signs + i * plan.depth, plan.depth, est);
  return MedianInPlace(est, plan.depth);
}

void WmSketch::MaybeRescale() {
  if (scale_ >= kMinScale) return;
  table_.MarkAllDirty();
  simd::ScaleTable(table_.data(), table_.size(), static_cast<float>(scale_));
  heap_.Scale(static_cast<float>(scale_));
  scale_ = 1.0;
}

float WmSketch::WeightEstimate(uint32_t feature) const {
  // ŵ_i = median_j(√s·σ_j(i)·z[j,h_j(i)]) = √s·α·RawMedian(i).
  return static_cast<float>(sqrt_depth_ * scale_ * static_cast<double>(RawMedian(feature)));
}

std::vector<FeatureWeight> WmSketch::TopK(size_t k) const {
  // The heap supplies candidate identities; estimates are re-queried from
  // the live sketch, since collisions may have shifted raw values since a
  // candidate was last touched.
  std::vector<FeatureWeight> out;
  out.reserve(heap_.size());
  for (const FeatureWeight& fw : heap_.Entries()) {
    out.push_back(FeatureWeight{fw.feature, WeightEstimate(fw.feature)});
  }
  SortByMagnitudeAndTruncate(out, k);
  return out;
}

}  // namespace wmsketch
