#include "core/snapshot_io.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <optional>

#include "util/crc32c.h"
#include "util/failpoint.h"

namespace wmsketch::snapshot {

namespace {

// Payload bytes read per chunk when the stream can't report its size:
// bounds transient over-allocation for a lying length field to one chunk.
constexpr size_t kReadChunkBytes = size_t{1} << 20;

void EncodeHeader(char (&header)[16], uint64_t payload_length) {
  const uint32_t magic = kEnvelopeMagic;
  const uint32_t version = kEnvelopeVersion;
  std::memcpy(header + 0, &magic, sizeof(magic));
  std::memcpy(header + 4, &version, sizeof(version));
  std::memcpy(header + 8, &payload_length, sizeof(payload_length));
}

// Bytes from the stream's current position to its end, or nullopt when the
// stream can't seek.
std::optional<uint64_t> ProbeRemaining(std::istream& in) {
  const std::streampos cur = in.tellg();
  if (cur == std::streampos(-1)) {
    in.clear();
    return std::nullopt;
  }
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  in.seekg(cur);
  if (end == std::streampos(-1) || !in) {
    in.clear();
    in.seekg(cur);
    return std::nullopt;
  }
  return static_cast<uint64_t>(end - cur);
}

}  // namespace

Status WriteEnveloped(std::ostream& out, std::string_view payload) {
  const failpoint::Action act = WMS_FAILPOINT("envelope:write");
  if (act == failpoint::Action::kError) {
    return Status::IOError("injected write failure in snapshot envelope");
  }
  char header[16];
  EncodeHeader(header, payload.size());
  const uint32_t crc = crc32c::Extend(crc32c::Value(header, sizeof(header)),
                                      payload.data(), payload.size());
  out.write(header, sizeof(header));
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  if (act == failpoint::Action::kShortWrite) {
    out.write(payload.data(), static_cast<std::streamsize>(payload.size() / 2));
    out.flush();
    return Status::IOError("injected short write in snapshot envelope");
  }
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) return Status::IOError("write failed in snapshot envelope");
  return Status::OK();
}

Status SectionGuard(std::ostream& out, const char* snapshot_kind, const char* section) {
  const failpoint::Action act = WMS_FAILPOINT("save:section");
  if (act != failpoint::Action::kOff) out.setstate(std::ios::failbit);
  if (!out) {
    return Status::IOError(std::string("write failed in ") + snapshot_kind +
                           " section '" + section + "'");
  }
  return Status::OK();
}

SnapshotReader::SnapshotReader(std::string_view bytes)
    : mem_(bytes), remaining_known_(true), remaining_(bytes.size()) {}

SnapshotReader::SnapshotReader(std::istream& in, std::string_view pushback)
    : in_(&in), pushback_(pushback) {
  if (const std::optional<uint64_t> left = ProbeRemaining(in)) {
    remaining_known_ = true;
    remaining_ = *left + pushback_.size();
  }
}

bool SnapshotReader::ReadExactRaw(char* dst, size_t n) {
  if (in_ == nullptr) {
    if (mem_.size() - mem_pos_ < n) {
      mem_pos_ = mem_.size();
      remaining_ = 0;
      return false;
    }
    std::memcpy(dst, mem_.data() + mem_pos_, n);
    mem_pos_ += n;
    remaining_ -= n;
    return true;
  }
  size_t served = 0;
  while (served < n && pushback_pos_ < pushback_.size()) {
    dst[served++] = pushback_[pushback_pos_++];
  }
  if (served < n) {
    in_->read(dst + served, static_cast<std::streamsize>(n - served));
    if (!*in_) {
      remaining_ = 0;
      return false;
    }
  }
  if (remaining_known_) remaining_ -= std::min<uint64_t>(remaining_, n);
  return true;
}

Result<SnapshotReader> OpenSnapshot(std::istream& in, std::string* payload_storage) {
  char head[4];
  in.read(head, sizeof(head));
  if (!in) return Status::Corruption("truncated snapshot header");
  uint32_t magic;
  std::memcpy(&magic, head, sizeof(magic));
  if (magic != kEnvelopeMagic) {
    // v1/v2 unwrapped snapshot: hand the sniffed magic back to the loader.
    return SnapshotReader(in, std::string_view(head, sizeof(head)));
  }

  char header[16];
  std::memcpy(header, head, sizeof(head));
  in.read(header + 4, sizeof(header) - 4);
  uint32_t declared_crc = 0;
  in.read(reinterpret_cast<char*>(&declared_crc), sizeof(declared_crc));
  if (!in) return Status::Corruption("truncated snapshot envelope");

  uint32_t version;
  uint64_t length;
  std::memcpy(&version, header + 4, sizeof(version));
  std::memcpy(&length, header + 8, sizeof(length));
  if (version != kEnvelopeVersion) {
    return Status::Corruption("unsupported snapshot envelope version");
  }

  // Bound the declared payload length by the actual stream size *before*
  // allocating: a corrupt header claiming 2^60 bytes must be Corruption,
  // not an allocation attempt. Unseekable streams fall back to chunked
  // reads, so even there over-allocation is bounded to one chunk.
  if (const std::optional<uint64_t> left = ProbeRemaining(in)) {
    if (length > *left) {
      return Status::Corruption("snapshot payload length exceeds stream size");
    }
    payload_storage->reserve(static_cast<size_t>(length));
  }
  payload_storage->clear();
  while (payload_storage->size() < length) {
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(kReadChunkBytes, length - payload_storage->size()));
    const size_t old_size = payload_storage->size();
    payload_storage->resize(old_size + chunk);
    in.read(payload_storage->data() + old_size, static_cast<std::streamsize>(chunk));
    if (!in) return Status::Corruption("truncated snapshot payload");
  }

  const uint32_t actual_crc =
      crc32c::Extend(crc32c::Value(header, sizeof(header)),
                     payload_storage->data(), payload_storage->size());
  if (actual_crc != declared_crc) {
    return Status::Corruption("snapshot checksum mismatch");
  }
  return SnapshotReader(std::string_view(*payload_storage));
}

}  // namespace wmsketch::snapshot
