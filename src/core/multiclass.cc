#include "core/multiclass.h"

#include <cassert>

#include "util/random.h"

namespace wmsketch {

MulticlassClassifier::MulticlassClassifier(size_t num_classes, const BudgetConfig& config,
                                           const LearnerOptions& opts) {
  assert(num_classes >= 2);
  models_.reserve(num_classes);
  SplitMix64 sm(opts.seed);
  for (size_t c = 0; c < num_classes; ++c) {
    LearnerOptions per_class = opts;
    per_class.seed = sm.Next();
    models_.push_back(MakeClassifier(config, per_class));
  }
}

std::vector<double> MulticlassClassifier::Margins(const SparseVector& x) const {
  std::vector<double> margins;
  margins.reserve(models_.size());
  for (const auto& m : models_) margins.push_back(m->PredictMargin(x));
  return margins;
}

size_t MulticlassClassifier::PredictClass(const SparseVector& x) const {
  size_t best = 0;
  double best_margin = models_[0]->PredictMargin(x);
  for (size_t c = 1; c < models_.size(); ++c) {
    const double m = models_[c]->PredictMargin(x);
    if (m > best_margin) {
      best_margin = m;
      best = c;
    }
  }
  return best;
}

size_t MulticlassClassifier::Update(const SparseVector& x, size_t label) {
  assert(label < models_.size());
  const size_t predicted = PredictClass(x);
  for (size_t c = 0; c < models_.size(); ++c) {
    models_[c]->Update(x, c == label ? 1 : -1);
  }
  return predicted;
}

void MulticlassClassifier::UpdateBatch(std::span<const MulticlassExample> batch) {
  for (const MulticlassExample& ex : batch) Update(ex.x, ex.label);
}

size_t MulticlassClassifier::MemoryCostBytes() const {
  size_t total = 0;
  for (const auto& m : models_) total += m->MemoryCostBytes();
  return total;
}

}  // namespace wmsketch
