#pragma once

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "linear/classifier.h"
#include "sketch/count_min.h"
#include "sketch/space_saving.h"
#include "util/indexed_heap.h"
#include "util/memory_cost.h"
#include "util/status.h"

namespace wmsketch {

class SpaceSavingFrequent;
class CountMinFrequent;
namespace snapshot {
class SnapshotReader;
}
namespace detail {
Status SaveSpaceSavingFrequentPayload(const SpaceSavingFrequent&, std::ostream&);
Result<SpaceSavingFrequent> LoadSpaceSavingFrequentPayload(snapshot::SnapshotReader&,
                                                           const LearnerOptions&);
Status SaveCountMinFrequentPayload(const CountMinFrequent&, std::ostream&);
Result<CountMinFrequent> LoadCountMinFrequentPayload(snapshot::SnapshotReader&,
                                                     const LearnerOptions&);
}  // namespace detail

/// Space-Saving Frequent-Features classifier ("SS" in Figs. 3–6): the
/// heavy-hitter heuristic the paper argues against. A Space-Saving summary
/// tracks the most *frequent* features, and classifier weights are learned
/// only for the currently-monitored set; when Space-Saving evicts a feature
/// its weight is discarded.
///
/// Works when frequent features happen to be discriminative (RCV1-like
/// streams) and fails when they are not (URL-like streams) — reproducing the
/// paper's central observation that frequency is the wrong notion of
/// importance for classifiers.
class SpaceSavingFrequent final : public BudgetedClassifier {
 public:
  /// Constructs with `budget_entries` monitored features (>= 1).
  SpaceSavingFrequent(size_t budget_entries, const LearnerOptions& opts);

  double PredictMargin(const SparseVector& x) const override;
  double Update(const SparseVector& x, int8_t y) override;
  /// Devirtualized batch ingest (bit-identical to a loop of Update).
  void UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) override;
  float WeightEstimate(uint32_t feature) const override;
  std::vector<FeatureWeight> TopK(size_t k) const override;
  /// (id, count, weight) per monitored slot.
  size_t MemoryCostBytes() const override { return ss_.MemoryCostBytes(); }
  uint64_t steps() const override { return t_; }
  const LearnerOptions& options() const override { return opts_; }
  std::string Name() const override { return "ss"; }

  const SpaceSaving& summary() const { return ss_; }

 private:
  friend Status detail::SaveSpaceSavingFrequentPayload(const SpaceSavingFrequent&,
                                                       std::ostream&);
  friend Result<SpaceSavingFrequent> detail::LoadSpaceSavingFrequentPayload(
      snapshot::SnapshotReader&, const LearnerOptions&);

  void MaybeRescale();

  LearnerOptions opts_;
  SpaceSaving ss_;
  std::unordered_map<uint32_t, float> weights_;  // raw; true = scale_ * raw
  double scale_ = 1.0;
  uint64_t t_ = 0;
};

/// Count-Min Frequent-Features classifier ("CM-FF"): like SpaceSavingFrequent
/// but the frequency filter is a Count-Min sketch and the monitored set is a
/// count-ordered heap of the apparent heavy hitters. Included for
/// completeness — the paper omits it from plots because Space-Saving
/// dominated it, which our `bench_fig3_recovery` confirms.
class CountMinFrequent final : public BudgetedClassifier {
 public:
  /// Constructs with a CM sketch of `cm_width` x `cm_depth` counters and
  /// `budget_entries` monitored (feature, weight) slots.
  CountMinFrequent(uint32_t cm_width, uint32_t cm_depth, size_t budget_entries,
                   const LearnerOptions& opts);

  double PredictMargin(const SparseVector& x) const override;
  double Update(const SparseVector& x, int8_t y) override;
  /// Devirtualized batch ingest (bit-identical to a loop of Update).
  void UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) override;
  float WeightEstimate(uint32_t feature) const override;
  std::vector<FeatureWeight> TopK(size_t k) const override;
  /// CM counters + (id, weight) per monitored slot.
  size_t MemoryCostBytes() const override {
    return cm_.MemoryCostBytes() + HeapBytes(capacity_);
  }
  uint64_t steps() const override { return t_; }
  const LearnerOptions& options() const override { return opts_; }
  std::string Name() const override { return "cmff"; }

  /// The frequency-filter sketch (shape introspection).
  const CountMinSketch& sketch() const { return cm_; }
  /// Number of monitored (feature, weight) slots.
  size_t capacity() const { return capacity_; }

 private:
  friend Status detail::SaveCountMinFrequentPayload(const CountMinFrequent&, std::ostream&);
  friend Result<CountMinFrequent> detail::LoadCountMinFrequentPayload(
      snapshot::SnapshotReader&, const LearnerOptions&);

  void MaybeRescale();

  LearnerOptions opts_;
  CountMinSketch cm_;
  size_t capacity_;
  // priority = estimated count (monotone increasing); value = raw weight.
  IndexedMinHeap heap_;
  double scale_ = 1.0;
  uint64_t t_ = 0;
};

}  // namespace wmsketch
