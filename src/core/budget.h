#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "linear/classifier.h"

namespace wmsketch {

/// The memory-budgeted methods compared throughout the paper's evaluation.
enum class Method {
  kSimpleTruncation,         ///< "Trun" — Algorithm 3
  kProbabilisticTruncation,  ///< "PTrun" — Algorithm 4
  kSpaceSavingFrequent,      ///< "SS" — Space-Saving frequent features
  kCountMinFrequent,         ///< "CM-FF" — Count-Min frequent features
  kFeatureHashing,           ///< "Hash" — hashing trick
  kWmSketch,                 ///< "WM" — Algorithm 1
  kAwmSketch,                ///< "AWM" — Algorithm 2
};

/// Short stable name ("trun", "awm", ...) used in bench output.
std::string MethodName(Method method);
/// All methods, in the paper's plotting order.
const std::vector<Method>& AllMethods();

/// A concrete sizing of one method. Interpretation by method:
///  * truncation/SS: `heap_capacity` tracked entries; width/depth unused.
///  * hashing:       `width` buckets; heap/depth unused.
///  * WM/AWM:        sketch `width` x `depth` plus `heap_capacity` slots.
///  * CM-FF:         CM table `width` x `depth` plus `heap_capacity` slots.
struct BudgetConfig {
  Method method = Method::kAwmSketch;
  size_t heap_capacity = 0;
  uint32_t width = 0;
  uint32_t depth = 0;

  /// Footprint under the Sec. 7.1 cost model (must be <= the budget it was
  /// planned for; tests assert this for every planner output).
  size_t MemoryCostBytes() const;

  /// Human-readable summary, e.g. "awm(|S|=512, w=1024, d=1)".
  std::string ToString() const;
};

/// The per-budget configuration the paper found best for each method
/// (Table 2 for WM/AWM; Sec. 7.3 for the rest):
///  * AWM: half the budget to the active set, half to a depth-1 sketch.
///  * WM: 1 KB heap, width 128 (256 at >=32 KB), depth filling the rest.
///  * Trun: budget/8 entries; PTrun & SS: budget/12 entries (3 fields).
///  * Hash: budget/4 buckets. CM-FF: half table (depth 2), half entries.
/// Requires budget_bytes >= 1 KiB.
BudgetConfig DefaultConfig(Method method, size_t budget_bytes);

/// Enumerates the configuration grid the Table 2 search sweeps: heap/sketch
/// splits in {1/4, 1/2, 3/4} and feasible power-of-two widths with the depth
/// filling the remainder. Single-shape methods return just their default.
std::vector<BudgetConfig> EnumerateConfigs(Method method, size_t budget_bytes);

/// Instantiates a classifier from a configuration. The returned object is
/// freshly initialized (step count zero).
std::unique_ptr<BudgetedClassifier> MakeClassifier(const BudgetConfig& config,
                                                   const LearnerOptions& opts);

}  // namespace wmsketch
