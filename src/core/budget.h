#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "linear/classifier.h"
#include "util/memory_cost.h"
#include "util/status.h"

namespace wmsketch {

/// Smallest budget the planner accepts (the paper's evaluation starts at
/// 2 KB; below 1 KiB every method degenerates).
inline constexpr size_t kMinBudgetBytes = KiB(1);

/// Largest sketch depth any method supports (= WmSketch/AwmSketch/CountMin
/// kMaxDepth; budget.cc static_asserts they agree).
inline constexpr uint32_t kMaxSketchDepth = 64;

/// Why a configuration or budget was rejected. Carried as the `detail()`
/// subcode of the InvalidArgument/OutOfRange Status returned by
/// BudgetConfig::Validate, DefaultConfig, and LearnerBuilder::Build, so
/// callers can react to the *specific* violation without string matching.
enum class ConfigError : uint16_t {
  kNone = 0,
  kBudgetTooSmall = 1,       ///< budget below kMinBudgetBytes
  kWidthNotPowerOfTwo = 2,   ///< sketch/table width zero or not a power of two
  kDepthZero = 3,            ///< sketch depth 0 where a table is required
  kDepthTooLarge = 4,        ///< sketch depth above kMaxSketchDepth
  kActiveSetEmpty = 5,       ///< heap/active-set capacity 0 where >= 1 required
  kShapeUnderspecified = 6,  ///< builder given neither a budget nor a shape
  kShapeConflict = 7,        ///< builder given contradictory shape inputs
};

/// The numeric subcode for a ConfigError (what Status::detail() returns).
constexpr uint16_t ToDetail(ConfigError e) { return static_cast<uint16_t>(e); }

/// The memory-budgeted methods compared throughout the paper's evaluation.
enum class Method {
  kSimpleTruncation,         ///< "Trun" — Algorithm 3
  kProbabilisticTruncation,  ///< "PTrun" — Algorithm 4
  kSpaceSavingFrequent,      ///< "SS" — Space-Saving frequent features
  kCountMinFrequent,         ///< "CM-FF" — Count-Min frequent features
  kFeatureHashing,           ///< "Hash" — hashing trick
  kWmSketch,                 ///< "WM" — Algorithm 1
  kAwmSketch,                ///< "AWM" — Algorithm 2
};

/// Short stable name ("trun", "awm", ...) used in bench output.
std::string MethodName(Method method);
/// All methods, in the paper's plotting order.
const std::vector<Method>& AllMethods();

/// A concrete sizing of one method. Interpretation by method:
///  * truncation/SS: `heap_capacity` tracked entries; width/depth unused.
///  * hashing:       `width` buckets; heap/depth unused.
///  * WM/AWM:        sketch `width` x `depth` plus `heap_capacity` slots.
///  * CM-FF:         CM table `width` x `depth` plus `heap_capacity` slots.
struct BudgetConfig {
  Method method = Method::kAwmSketch;
  size_t heap_capacity = 0;
  uint32_t width = 0;
  uint32_t depth = 0;

  /// Footprint under the Sec. 7.1 cost model (must be <= the budget it was
  /// planned for; tests assert this for every planner output). Pure
  /// arithmetic — meaningful only for configurations that pass Validate().
  size_t MemoryCostBytes() const;

  /// Checks the shape invariants the classifier constructors require
  /// (power-of-two widths, 1 <= depth <= kMaxSketchDepth, non-empty
  /// heaps/active sets — per method). Returns InvalidArgument with a
  /// \ref ConfigError detail() identifying the violated invariant; this is
  /// the single validation point behind LearnerBuilder::Build, replacing
  /// the constructors' assert-and-abort behavior for untrusted shapes.
  Status Validate() const;

  /// Human-readable summary, e.g. "awm(|S|=512, w=1024, d=1)".
  std::string ToString() const;
};

/// The per-budget configuration the paper found best for each method
/// (Table 2 for WM/AWM; Sec. 7.3 for the rest):
///  * AWM: half the budget to the active set, half to a depth-1 sketch.
///  * WM: 1 KB heap, width 128 (256 at >=32 KB), depth filling the rest.
///  * Trun: budget/8 entries; PTrun & SS: budget/12 entries (3 fields).
///  * Hash: budget/4 buckets. CM-FF: half table (depth 2), half entries.
/// Budgets below kMinBudgetBytes yield OutOfRange with detail
/// ConfigError::kBudgetTooSmall (they used to be undefined behavior); every
/// returned config satisfies Validate() and fits the budget.
Result<BudgetConfig> DefaultConfig(Method method, size_t budget_bytes);

/// Enumerates the configuration grid the Table 2 search sweeps: heap/sketch
/// splits in {1/4, 1/2, 3/4} and feasible power-of-two widths with the depth
/// filling the remainder. Single-shape methods return just their default.
/// Budgets below kMinBudgetBytes yield an empty grid.
std::vector<BudgetConfig> EnumerateConfigs(Method method, size_t budget_bytes);

/// Instantiates a classifier from a configuration. The returned object is
/// freshly initialized (step count zero). This is the *internal* factory
/// behind LearnerBuilder::Build: it requires config.Validate().ok() and
/// asserts shape invariants rather than reporting them — build untrusted
/// configurations through the builder (src/api/learner.h) instead.
std::unique_ptr<BudgetedClassifier> MakeClassifier(const BudgetConfig& config,
                                                   const LearnerOptions& opts);

}  // namespace wmsketch
