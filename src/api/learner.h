#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/budget.h"
#include "linear/classifier.h"
#include "util/status.h"

namespace wmsketch {

class Checkpointer;
class Learner;
class ServingHandle;
class ServingState;
class ShardedLearner;

/// Where and how often a learner checkpoints itself (see
/// src/engine/checkpoint.h for the atomic write/recover machinery).
struct CheckpointSpec {
  /// Checkpoint directory (created if missing). Empty disables.
  std::string dir;
  /// Completed checkpoints retained (older ones are pruned).
  size_t keep_last = 3;
  /// Updates between automatic checkpoints (0: only explicit
  /// CheckpointNow / merge-barrier checkpoints).
  uint64_t every = 0;
};

/// An immutable, cheaply-copyable view of a learner's queryable state,
/// decoupled from the live model: the top-K heaviest features materialized
/// at snapshot time, a frozen per-feature weight estimator, and the scalar
/// bookkeeping (step count, memory footprint). Because nothing in a snapshot
/// aliases live learner state, read paths — report generation, the
/// PMI/deltoid/explanation applications, concurrent query serving — can hold
/// and share snapshots while ingestion continues, and two snapshots of the
/// same learner at different times answer from their respective moments.
///
/// Copies share one reference-counted state block, so passing snapshots by
/// value costs a pointer. The state itself is bounded by the learner's byte
/// budget (that is the point of a budgeted classifier), so taking a snapshot
/// is O(budget), not O(dimension).
class LearnerSnapshot {
 public:
  /// The method that produced this snapshot.
  Method method() const;
  /// The method's short stable name ("awm", "hash", ...).
  const std::string& name() const;
  /// Number of updates the learner had absorbed when the snapshot was taken.
  uint64_t steps() const;
  /// Learner footprint under the Sec. 7.1 cost model at snapshot time.
  size_t memory_cost_bytes() const;
  /// The configuration of the learner that produced this snapshot.
  const BudgetConfig& config() const;

  /// The features materialized at snapshot time, sorted by descending
  /// |weight| (at most the `top_k` requested from Learner::Snapshot; fewer
  /// if the learner tracked fewer identifiers — empty for pure feature
  /// hashing, which stores none).
  const std::vector<FeatureWeight>& top_k() const;

  /// The `k` heaviest materialized features (a prefix of top_k()).
  std::vector<FeatureWeight> TopK(size_t k) const;

  /// Frozen point estimate ŵᵢ for an arbitrary feature (works for features
  /// outside the materialized top-K: sketch-backed methods answer from a
  /// captured table copy, heap-backed methods return 0 for untracked ids).
  float Estimate(uint32_t feature) const;

  /// Exhaustive frozen top-k over an explicit universe [0, dimension) — the
  /// snapshot analogue of ScanTopK, and the only ranking available for
  /// identifier-free methods (feature hashing).
  std::vector<FeatureWeight> ScanTopK(size_t k, uint32_t dimension) const;

 private:
  friend class Learner;

  struct State {
    Method method;
    std::string name;
    BudgetConfig config;
    uint64_t steps;
    size_t memory_cost_bytes;
    std::vector<FeatureWeight> top_k;
    WeightEstimator estimator;
  };

  explicit LearnerSnapshot(std::shared_ptr<const State> state);

  std::shared_ptr<const State> state_;
};

/// The unified facade over every memory-budgeted streaming classifier in the
/// library (Fig. 1 of the paper): construct through \ref LearnerBuilder,
/// ingest labeled examples one at a time or in batches, query weights
/// through immutable \ref LearnerSnapshot views, and persist with
/// SaveLearner/LoadLearner. The concrete method (WM-Sketch, AWM-Sketch, or a
/// Sec. 7 baseline) is a constructor-time choice, not a type: code written
/// against Learner runs unchanged across all of them.
///
/// BudgetedClassifier remains the internal SPI that implementations
/// subclass; impl() exposes it for tooling that genuinely needs the raw
/// interface (e.g. ScanTopK over a live model).
class Learner {
 public:
  Learner(Learner&&) noexcept = default;
  Learner& operator=(Learner&&) noexcept = default;
  Learner(const Learner&) = delete;
  Learner& operator=(const Learner&) = delete;

  /// One online-gradient-descent step. Returns the *pre-update* margin for
  /// progressive validation (predict-then-update, Sec. 7.3).
  double Update(const Example& example);

  /// Batch ingest: equivalent to (and bit-identical with) updating example
  /// by example, but pays one virtual dispatch per batch and keeps the whole
  /// hot loop inside the concrete implementation. WM-Sketch and feature
  /// hashing additionally hash the entire batch up front into a per-thread
  /// plan arena and prefetch the next example's table cells while the
  /// current one updates; the AWM-Sketch, whose sketch accesses depend on
  /// live active-set membership, reuses a lazy per-thread plan per example
  /// instead. The fastest ingest path either way; prefer it over
  /// per-example Update wherever examples arrive in runs.
  void UpdateBatch(std::span<const Example> batch);

  /// Batch ingest that also reports the pre-update margin of every example
  /// (appended to `*margins`), for batched progressive validation.
  void UpdateBatch(std::span<const Example> batch, std::vector<double>* margins);

  /// The margin wᵀx under the current model (no state change).
  double PredictMargin(const SparseVector& x) const;
  /// The predicted label sign(wᵀx) ∈ {-1, +1}.
  int8_t Classify(const SparseVector& x) const;
  /// Live point estimate ŵᵢ (prefer Snapshot() for read paths that must not
  /// race with ingestion).
  float WeightEstimate(uint32_t feature) const;

  /// Batched margins under the current model (no state change): appends one
  /// margin per example to `*margins`, bit-identical to a PredictMargin
  /// loop. WM-Sketch and feature hashing hash the whole batch once into the
  /// per-thread plan arena and prefetch across examples (the read mirror of
  /// UpdateBatch); the AWM runs its fused per-example loop, which is already
  /// single-hash for read-only margins. Like PredictMargin this reads the
  /// live model — for queries concurrent with training, use a
  /// \ref ServingHandle instead.
  void PredictBatch(std::span<const Example> batch, std::vector<double>* margins) const;

  /// Batched live point estimates: appends one estimate per feature id to
  /// `*out`, bit-identical to a WeightEstimate loop. Sketch-backed methods
  /// hash every key once and answer from one wide signed gather.
  void EstimateBatch(std::span<const uint32_t> features, std::vector<float>* out) const;

  /// OK iff `other`'s model can be merged into this one: same method, same
  /// shape, same seed. Only the linear sketch methods (WM/AWM) merge; the
  /// non-linear baselines report Unimplemented.
  Status CanMerge(const Learner& other) const;

  /// Merges `other`'s model into this one: weight vectors sum and step
  /// counts add — the combination rule for learners trained on *disjoint*
  /// stream partitions (the sketch is a linear projection, so the sum of
  /// sketches is the sketch of the summed weights). On error this learner is
  /// unchanged. To average N models instead (parameter mixing), merge N-1 of
  /// them in and scale via impl().ScaleWeights(1.0/N).
  Status Merge(const Learner& other);

  /// Takes an immutable snapshot materializing the `top_k` heaviest tracked
  /// features; see \ref LearnerSnapshot. Costs O(budget) — it captures the
  /// frozen per-feature estimator. Read paths that only need the ranked
  /// list should use TopK() instead.
  LearnerSnapshot Snapshot(size_t top_k = kDefaultSnapshotTopK) const;
  static constexpr size_t kDefaultSnapshotTopK = 128;

  // --- Wait-free concurrent serving (src/engine/serving.h) ---

  /// Registers a reader with this learner's serving state and returns a
  /// \ref ServingHandle through which one reader thread queries published
  /// model snapshots wait-free while this thread keeps training. Publishes
  /// an initial snapshot if none exists yet, so a fresh handle is always
  /// servable. Publication then happens every ServeEvery(k) updates (or on
  /// explicit PublishServingSnapshot). Fails when the handle-slot table
  /// (ServingState::kMaxHandles readers) is exhausted. Defined in
  /// src/engine/serving.cc so the api layer stays engine-free.
  Result<ServingHandle> AcquireServingHandle();

  /// Publishes a fresh serving snapshot immediately (O(budget) capture +
  /// one atomic pointer swap). Useful with ServeEvery(0) for caller-paced
  /// publication; no-op until serving is initialized by the first
  /// AcquireServingHandle. Defined in src/engine/serving.cc.
  void PublishServingSnapshot();

  /// Updates between automatic snapshot publications (0 = only explicit
  /// PublishServingSnapshot calls publish).
  uint64_t serve_every() const { return serve_every_; }

  // --- Crash-safe checkpointing (src/engine/checkpoint.h) ---

  /// Enables atomic checkpointing to `spec.dir`: every checkpoint is a
  /// SaveLearner stream written temp-file + fsync + rename, so a crash at
  /// any instant leaves the directory recoverable via
  /// Checkpointer::RecoverLatest. With `spec.every > 0` the learner
  /// checkpoints itself automatically at those step boundaries (UpdateBatch
  /// splits batches so the cadence holds). Normally wired up by
  /// LearnerBuilder::CheckpointTo/CheckpointEvery; call directly to resume
  /// checkpointing on a learner restored by RecoverLatest. Defined in
  /// src/engine/checkpoint.cc so the api layer stays engine-free.
  Status EnableCheckpointing(const CheckpointSpec& spec);

  /// Writes a checkpoint immediately. Requires EnableCheckpointing.
  /// Defined in src/engine/checkpoint.cc.
  Status CheckpointNow();

  /// Outcome of the most recent (automatic or explicit) checkpoint write.
  /// Automatic checkpoints never abort training: a full disk surfaces here,
  /// not as a crash mid-ingest.
  const Status& last_checkpoint_status() const { return last_checkpoint_status_; }

  /// Updates between automatic checkpoints (0 = explicit only).
  uint64_t checkpoint_every() const { return checkpoint_every_; }

  /// The k heaviest tracked features, materialized into a detached vector
  /// (the same list a Snapshot would carry, without paying for the
  /// estimator capture). Empty for identifier-free methods.
  std::vector<FeatureWeight> TopK(size_t k) const;

  /// The method this learner runs.
  Method method() const { return config_.method; }
  /// The concrete sizing the builder resolved (explicit or budget-planned).
  const BudgetConfig& config() const { return config_; }
  /// The hyperparameters the learner was built with.
  const LearnerOptions& options() const { return opts_; }
  /// Footprint under the Sec. 7.1 cost model.
  size_t MemoryCostBytes() const;
  /// Number of updates absorbed so far.
  uint64_t steps() const;
  /// Short stable method name ("awm", "hash", ...).
  std::string Name() const;

  /// The underlying SPI object (internal escape hatch; prefer the facade).
  BudgetedClassifier& impl() { return *impl_; }
  const BudgetedClassifier& impl() const { return *impl_; }

 private:
  friend class LearnerBuilder;
  friend class ShardedLearner;  // Collapse() wraps the merged impl directly
  friend Result<Learner> LoadLearner(std::istream& in, const LearnerOptions& opts);

  Learner(BudgetConfig config, LearnerOptions opts,
          std::unique_ptr<BudgetedClassifier> impl);

  /// Publishes a snapshot when steps() has reached the next ServeEvery
  /// boundary (called after every update once serving is initialized).
  /// Defined in src/engine/serving.cc.
  void MaybePublishServing();

  /// Checkpoints when steps() has reached the next CheckpointEvery boundary
  /// (called after every update once checkpointing is enabled). Defined in
  /// src/engine/checkpoint.cc.
  void MaybeCheckpoint();

  BudgetConfig config_;
  LearnerOptions opts_;
  std::unique_ptr<BudgetedClassifier> impl_;
  // Serving: null until AcquireServingHandle initializes it. shared_ptr so
  // handles outlive the learner safely (they keep serving the last
  // published snapshot).
  std::shared_ptr<ServingState> serving_;
  uint64_t serve_every_ = 0;
  uint64_t next_publish_steps_ = 0;
  // Checkpointing: null until EnableCheckpointing. shared_ptr because
  // Checkpointer is declared but incomplete here (engine type).
  std::shared_ptr<Checkpointer> checkpointer_;
  uint64_t checkpoint_every_ = 0;
  uint64_t next_checkpoint_steps_ = 0;
  Status last_checkpoint_status_;
};

/// Fluent, validating constructor for \ref Learner — the single public entry
/// point for building classifiers. Replaces the per-class throwing/asserting
/// constructors: invalid shapes come back as typed errors (Status with a
/// \ref ConfigError detail code), never as aborts.
///
/// Sizing is specified one of three ways (checked, mutually exclusive):
///  * SetBudgetBytes(b): the paper's per-method budget planner picks the
///    shape (Table 2 / Sec. 7.3 defaults);
///  * SetWidth/SetDepth/SetHeapCapacity: an explicit shape for the chosen
///    method (only the knobs that method uses);
///  * SetConfig(cfg): a fully-specified BudgetConfig (e.g. one enumerated by
///    EnumerateConfigs for a grid search).
///
///   Result<Learner> r = LearnerBuilder()
///                           .SetMethod(Method::kAwmSketch)
///                           .SetBudgetBytes(KiB(8))
///                           .SetLambda(1e-6)
///                           .SetSeed(42)
///                           .Build();
class LearnerBuilder {
 public:
  LearnerBuilder() = default;

  /// Chooses the method (default: the AWM-Sketch, the paper's best).
  LearnerBuilder& SetMethod(Method method);
  /// Sizes the learner by byte budget via the per-method planner.
  LearnerBuilder& SetBudgetBytes(size_t budget_bytes);
  /// Explicit sketch/table width (power of two; WM/AWM/CM-FF/hash).
  LearnerBuilder& SetWidth(uint32_t width);
  /// Explicit sketch depth (WM/AWM/CM-FF).
  LearnerBuilder& SetDepth(uint32_t depth);
  /// Explicit heap / active-set / tracked-entry capacity.
  LearnerBuilder& SetHeapCapacity(size_t heap_capacity);
  /// A fully-specified configuration (method included).
  LearnerBuilder& SetConfig(const BudgetConfig& config);
  /// ℓ2-regularization strength λ (default 1e-6, the paper's default).
  LearnerBuilder& SetLambda(double lambda);
  /// Learning-rate schedule (default η_t = 0.1/√t).
  LearnerBuilder& SetLearningRate(LearningRate rate);
  /// Loss function; `loss` must outlive the learner (default logistic).
  LearnerBuilder& SetLoss(const LossFunction* loss);
  /// Seed for all hashing/randomized internals (default 42).
  LearnerBuilder& SetSeed(uint64_t seed);

  /// Publishes a serving snapshot every `k` updates once serving is active
  /// (see Learner::AcquireServingHandle) — the staleness bound, in updates,
  /// of what concurrent readers observe. 0 (the default) publishes only on
  /// explicit PublishServingSnapshot calls. For BuildSharded engines a
  /// publication requires a merge barrier, so `k` there acts as a sync-and-
  /// publish interval (see ShardedLearner::AcquireServingHandle).
  LearnerBuilder& ServeEvery(uint64_t k);

  /// Enables crash-safe checkpointing into `dir` (created if missing),
  /// retaining the last `keep_last` completed checkpoints. Build() opens the
  /// directory and attaches a \ref Checkpointer; BuildSharded engines
  /// checkpoint the merged global model at merge barriers.
  LearnerBuilder& CheckpointTo(std::string dir, size_t keep_last = 3);
  /// Checkpoints every `k` updates once CheckpointTo is set (0, the
  /// default: only explicit CheckpointNow calls — or, for sharded engines,
  /// every merge barrier). For BuildSharded a checkpoint requires a merge
  /// barrier, so `k` there acts as a minimum update interval between
  /// barrier checkpoints.
  LearnerBuilder& CheckpointEvery(uint64_t k);

  /// Number of parallel ingestion shards for BuildSharded (default 1).
  /// Build() is unaffected: it always constructs the sequential learner.
  LearnerBuilder& Shards(uint32_t shards);
  /// Examples between the sharded engine's periodic merge-average
  /// synchronizations (0, the default, synchronizes only at Collapse).
  LearnerBuilder& SetSyncInterval(uint64_t interval);

  /// Validates the accumulated specification and constructs the learner.
  /// Error cases (each with its ConfigError detail code):
  ///  * no budget and no shape            -> kShapeUnderspecified
  ///  * budget combined with a shape, or
  ///    SetConfig combined with either    -> kShapeConflict
  ///  * budget below kMinBudgetBytes      -> kBudgetTooSmall
  ///  * width zero / not a power of two   -> kWidthNotPowerOfTwo
  ///  * depth 0 where a table is needed   -> kDepthZero
  ///  * depth above kMaxSketchDepth       -> kDepthTooLarge
  ///  * empty active set / tracked set    -> kActiveSetEmpty
  /// Build() is const: one builder can stamp out many learners (e.g. the
  /// per-tenant fleet in a multi-tenant server), varying a knob between
  /// builds.
  Result<Learner> Build() const;

  /// Builds the sharded parallel ingestion engine configured by Shards(n)
  /// and SetSyncInterval: n identically-seeded replicas trained on worker
  /// threads, merge-averaged into one ordinary Learner by
  /// ShardedLearner::Collapse(). Shards(n > 1) requires a mergeable method
  /// (WM/AWM) and returns Unimplemented otherwise. Defined in
  /// src/engine/sharded_learner.cc so the api layer stays engine-free.
  Result<ShardedLearner> BuildSharded() const;

 private:
  Method method_ = Method::kAwmSketch;
  std::optional<size_t> budget_bytes_;
  std::optional<uint32_t> width_;
  std::optional<uint32_t> depth_;
  std::optional<size_t> heap_capacity_;
  std::optional<BudgetConfig> config_;
  bool method_set_ = false;
  uint32_t shards_ = 1;
  uint64_t sync_interval_ = 0;
  uint64_t serve_every_ = 0;
  CheckpointSpec checkpoint_spec_;
  LearnerOptions opts_;
};

/// Writes a self-describing snapshot of any learner: one checksummed
/// envelope (core/snapshot_io.h) whose payload is a facade header with a
/// method tag followed by the method-specific payload (the
/// core/serialization.h format for that method). Works for every Method.
Status SaveLearner(const Learner& learner, std::ostream& out);

/// SaveLearner for a raw SPI classifier plus its method tag — the engine
/// checkpoint path, which serializes a merged model that is not wrapped in
/// a Learner. Byte-identical to SaveLearner of a Learner holding `impl`.
Status SaveClassifier(Method method, const BudgetedClassifier& impl, std::ostream& out);

/// Restores a learner from a SaveLearner stream, dispatching on the stored
/// method tag. As with the per-method loaders, `opts.loss` and `opts.rate`
/// are adopted from the caller while λ, seed, and all learned state come
/// from the snapshot. Returns Corruption for malformed input.
Result<Learner> LoadLearner(std::istream& in, const LearnerOptions& opts);

}  // namespace wmsketch
