#include "api/learner.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/serialization.h"
#include "core/snapshot_io.h"
#include "util/memory_cost.h"

namespace wmsketch {

// ------------------------------------------------------------- snapshot

LearnerSnapshot::LearnerSnapshot(std::shared_ptr<const State> state)
    : state_(std::move(state)) {}

Method LearnerSnapshot::method() const { return state_->method; }
const std::string& LearnerSnapshot::name() const { return state_->name; }
uint64_t LearnerSnapshot::steps() const { return state_->steps; }
size_t LearnerSnapshot::memory_cost_bytes() const { return state_->memory_cost_bytes; }
const BudgetConfig& LearnerSnapshot::config() const { return state_->config; }
const std::vector<FeatureWeight>& LearnerSnapshot::top_k() const { return state_->top_k; }

std::vector<FeatureWeight> LearnerSnapshot::TopK(size_t k) const {
  const std::vector<FeatureWeight>& all = state_->top_k;
  if (k >= all.size()) return all;
  return std::vector<FeatureWeight>(all.begin(), all.begin() + static_cast<ptrdiff_t>(k));
}

float LearnerSnapshot::Estimate(uint32_t feature) const {
  return state_->estimator(feature);
}

std::vector<FeatureWeight> LearnerSnapshot::ScanTopK(size_t k, uint32_t dimension) const {
  return wmsketch::ScanTopK(state_->estimator, k, dimension);
}

// -------------------------------------------------------------- learner

Learner::Learner(BudgetConfig config, LearnerOptions opts,
                 std::unique_ptr<BudgetedClassifier> impl)
    : config_(config), opts_(opts), impl_(std::move(impl)) {}

double Learner::Update(const Example& example) {
  const double margin = impl_->Update(example.x, example.y);
  if (serving_ != nullptr) MaybePublishServing();
  if (checkpointer_ != nullptr) MaybeCheckpoint();
  return margin;
}

void Learner::UpdateBatch(std::span<const Example> batch) { UpdateBatch(batch, nullptr); }

void Learner::UpdateBatch(std::span<const Example> batch, std::vector<double>* margins) {
  if (margins != nullptr) margins->reserve(margins->size() + batch.size());
  const bool chunk_serving = serving_ != nullptr && serve_every_ > 0;
  const bool chunk_checkpoint = checkpointer_ != nullptr && checkpoint_every_ > 0;
  if (!chunk_serving && !chunk_checkpoint) {
    impl_->UpdateBatch(batch, margins);  // margins from the same devirtualized loop
    return;
  }
  // Serving with a staleness bound / checkpointing with a loss bound: split
  // the batch at ServeEvery and CheckpointEvery boundaries so snapshots are
  // published (and checkpoints written) at exactly the promised step counts
  // — readers never observe staleness above K updates, and a crash never
  // loses more than CheckpointEvery updates. Model evolution is
  // bit-identical to the unchunked call — plans are pure per-example.
  size_t at = 0;
  while (at < batch.size()) {
    // Catch up first: steps() can already sit at or past a boundary when
    // something other than an update advanced it (Merge sums step counts).
    // Without this the subtraction below would wrap and the whole batch
    // would run unchunked, silently voiding the staleness bound.
    if (chunk_serving && impl_->steps() >= next_publish_steps_) MaybePublishServing();
    if (chunk_checkpoint && impl_->steps() >= next_checkpoint_steps_) MaybeCheckpoint();
    uint64_t until_boundary = UINT64_MAX;
    if (chunk_serving) {
      until_boundary = std::min(until_boundary, next_publish_steps_ - impl_->steps());
    }
    if (chunk_checkpoint) {
      until_boundary = std::min(until_boundary, next_checkpoint_steps_ - impl_->steps());
    }
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(batch.size() - at, until_boundary));
    impl_->UpdateBatch(batch.subspan(at, n), margins);
    at += n;
    if (chunk_serving) MaybePublishServing();
    if (chunk_checkpoint) MaybeCheckpoint();
  }
}

double Learner::PredictMargin(const SparseVector& x) const { return impl_->PredictMargin(x); }

int8_t Learner::Classify(const SparseVector& x) const { return impl_->Classify(x); }

float Learner::WeightEstimate(uint32_t feature) const {
  return impl_->WeightEstimate(feature);
}

void Learner::PredictBatch(std::span<const Example> batch,
                           std::vector<double>* margins) const {
  const size_t base = margins->size();
  margins->resize(base + batch.size());
  impl_->PredictBatch(batch, margins->data() + base);
}

void Learner::EstimateBatch(std::span<const uint32_t> features,
                            std::vector<float>* out) const {
  const size_t base = out->size();
  out->resize(base + features.size());
  impl_->EstimateBatch(features, out->data() + base);
}

Status Learner::CanMerge(const Learner& other) const {
  return impl_->CanMerge(*other.impl_);
}

Status Learner::Merge(const Learner& other) { return impl_->Merge(*other.impl_); }

LearnerSnapshot Learner::Snapshot(size_t top_k) const {
  auto state = std::make_shared<LearnerSnapshot::State>();
  state->method = config_.method;
  state->name = impl_->Name();
  state->config = config_;
  state->steps = impl_->steps();
  state->memory_cost_bytes = impl_->MemoryCostBytes();
  state->top_k = impl_->TopK(top_k);
  state->estimator = impl_->EstimatorSnapshot();
  return LearnerSnapshot(std::move(state));
}

std::vector<FeatureWeight> Learner::TopK(size_t k) const { return impl_->TopK(k); }

size_t Learner::MemoryCostBytes() const { return impl_->MemoryCostBytes(); }
uint64_t Learner::steps() const { return impl_->steps(); }
std::string Learner::Name() const { return impl_->Name(); }

// -------------------------------------------------------------- builder

LearnerBuilder& LearnerBuilder::SetMethod(Method method) {
  method_ = method;
  method_set_ = true;
  return *this;
}

LearnerBuilder& LearnerBuilder::SetBudgetBytes(size_t budget_bytes) {
  budget_bytes_ = budget_bytes;
  return *this;
}

LearnerBuilder& LearnerBuilder::SetWidth(uint32_t width) {
  width_ = width;
  return *this;
}

LearnerBuilder& LearnerBuilder::SetDepth(uint32_t depth) {
  depth_ = depth;
  return *this;
}

LearnerBuilder& LearnerBuilder::SetHeapCapacity(size_t heap_capacity) {
  heap_capacity_ = heap_capacity;
  return *this;
}

LearnerBuilder& LearnerBuilder::SetConfig(const BudgetConfig& config) {
  config_ = config;
  return *this;
}

LearnerBuilder& LearnerBuilder::SetLambda(double lambda) {
  opts_.lambda = lambda;
  return *this;
}

LearnerBuilder& LearnerBuilder::SetLearningRate(LearningRate rate) {
  opts_.rate = rate;
  return *this;
}

LearnerBuilder& LearnerBuilder::SetLoss(const LossFunction* loss) {
  opts_.loss = loss;
  return *this;
}

LearnerBuilder& LearnerBuilder::SetSeed(uint64_t seed) {
  opts_.seed = seed;
  return *this;
}

LearnerBuilder& LearnerBuilder::ServeEvery(uint64_t k) {
  serve_every_ = k;
  return *this;
}

LearnerBuilder& LearnerBuilder::CheckpointTo(std::string dir, size_t keep_last) {
  checkpoint_spec_.dir = std::move(dir);
  checkpoint_spec_.keep_last = keep_last;
  return *this;
}

LearnerBuilder& LearnerBuilder::CheckpointEvery(uint64_t k) {
  checkpoint_spec_.every = k;
  return *this;
}

LearnerBuilder& LearnerBuilder::Shards(uint32_t shards) {
  shards_ = shards;
  return *this;
}

LearnerBuilder& LearnerBuilder::SetSyncInterval(uint64_t interval) {
  sync_interval_ = interval;
  return *this;
}

Result<Learner> LearnerBuilder::Build() const {
  const bool has_shape =
      width_.has_value() || depth_.has_value() || heap_capacity_.has_value();

  BudgetConfig cfg;
  if (config_.has_value()) {
    if (budget_bytes_.has_value() || has_shape) {
      return Status::InvalidArgument(
          "SetConfig cannot be combined with a budget or explicit shape",
          ToDetail(ConfigError::kShapeConflict));
    }
    if (method_set_ && config_->method != method_) {
      return Status::InvalidArgument("SetMethod disagrees with SetConfig's method",
                                     ToDetail(ConfigError::kShapeConflict));
    }
    cfg = *config_;
  } else if (budget_bytes_.has_value()) {
    if (has_shape) {
      return Status::InvalidArgument(
          "a byte budget and an explicit shape are mutually exclusive",
          ToDetail(ConfigError::kShapeConflict));
    }
    WMS_ASSIGN_OR_RETURN(cfg, DefaultConfig(method_, *budget_bytes_));
  } else if (has_shape) {
    cfg.method = method_;
    switch (method_) {
      case Method::kSimpleTruncation:
      case Method::kProbabilisticTruncation:
      case Method::kSpaceSavingFrequent:
        if (width_.has_value() || depth_.has_value()) {
          return Status::InvalidArgument(
              MethodName(method_) + " has no sketch table; only SetHeapCapacity applies",
              ToDetail(ConfigError::kShapeConflict));
        }
        cfg.heap_capacity = heap_capacity_.value_or(0);
        break;
      case Method::kFeatureHashing:
        if (depth_.has_value() || heap_capacity_.has_value()) {
          return Status::InvalidArgument(
              "feature hashing has no depth or heap; only SetWidth applies",
              ToDetail(ConfigError::kShapeConflict));
        }
        cfg.width = width_.value_or(0);
        break;
      case Method::kCountMinFrequent:
      case Method::kWmSketch:
      case Method::kAwmSketch:
        cfg.width = width_.value_or(0);
        cfg.depth = depth_.value_or(0);
        cfg.heap_capacity = heap_capacity_.value_or(0);
        break;
    }
  } else {
    return Status::InvalidArgument(
        "specify a size: SetBudgetBytes, SetWidth/SetDepth/SetHeapCapacity, or SetConfig",
        ToDetail(ConfigError::kShapeUnderspecified));
  }

  WMS_RETURN_NOT_OK(cfg.Validate());
  Learner learner(cfg, opts_, MakeClassifier(cfg, opts_));
  learner.serve_every_ = serve_every_;
  if (!checkpoint_spec_.dir.empty()) {
    // Resolves to src/engine/checkpoint.cc at link time; the api layer sees
    // only the member declaration, staying engine-header-free.
    WMS_RETURN_NOT_OK(learner.EnableCheckpointing(checkpoint_spec_));
  }
  return learner;
}

// -------------------------------------------------------- serialization

namespace {

constexpr uint32_t kLearnerMagic = 0x31464c57;  // "WLF1"
constexpr uint32_t kLearnerVersion = 1;

// Rebuilds the planner-level view of a restored implementation's shape.
BudgetConfig ConfigOf(Method method, const BudgetedClassifier& impl) {
  BudgetConfig cfg;
  cfg.method = method;
  switch (method) {
    case Method::kSimpleTruncation:
      cfg.heap_capacity = static_cast<const SimpleTruncation&>(impl).capacity();
      break;
    case Method::kProbabilisticTruncation:
      cfg.heap_capacity = static_cast<const ProbabilisticTruncation&>(impl).capacity();
      break;
    case Method::kSpaceSavingFrequent:
      cfg.heap_capacity = static_cast<const SpaceSavingFrequent&>(impl).summary().capacity();
      break;
    case Method::kCountMinFrequent: {
      const auto& cmff = static_cast<const CountMinFrequent&>(impl);
      cfg.width = cmff.sketch().width();
      cfg.depth = cmff.sketch().depth();
      cfg.heap_capacity = cmff.capacity();
      break;
    }
    case Method::kFeatureHashing:
      cfg.width = static_cast<const FeatureHashingClassifier&>(impl).buckets();
      break;
    case Method::kWmSketch: {
      const WmSketchConfig& c = static_cast<const WmSketch&>(impl).config();
      cfg.width = c.width;
      cfg.depth = c.depth;
      cfg.heap_capacity = c.heap_capacity;
      break;
    }
    case Method::kAwmSketch: {
      const AwmSketchConfig& c = static_cast<const AwmSketch&>(impl).config();
      cfg.width = c.width;
      cfg.depth = c.depth;
      cfg.heap_capacity = c.heap_capacity;
      break;
    }
  }
  return cfg;
}

}  // namespace

Status SaveClassifier(Method method, const BudgetedClassifier& impl, std::ostream& out) {
  std::ostringstream payload(std::ios::binary);
  snapshot::WriteRaw(payload, kLearnerMagic);
  snapshot::WriteRaw(payload, kLearnerVersion);
  snapshot::WriteRaw(payload, static_cast<uint8_t>(method));
  WMS_RETURN_NOT_OK(snapshot::SectionGuard(payload, "learner", "facade header"));
  Status body = Status::InvalidArgument("unknown method");
  switch (method) {
    case Method::kSimpleTruncation:
      body = detail::SaveSimpleTruncationPayload(static_cast<const SimpleTruncation&>(impl),
                                                 payload);
      break;
    case Method::kProbabilisticTruncation:
      body = detail::SaveProbabilisticTruncationPayload(
          static_cast<const ProbabilisticTruncation&>(impl), payload);
      break;
    case Method::kSpaceSavingFrequent:
      body = detail::SaveSpaceSavingFrequentPayload(
          static_cast<const SpaceSavingFrequent&>(impl), payload);
      break;
    case Method::kCountMinFrequent:
      body = detail::SaveCountMinFrequentPayload(static_cast<const CountMinFrequent&>(impl),
                                                 payload);
      break;
    case Method::kFeatureHashing:
      body = detail::SaveFeatureHashingPayload(
          static_cast<const FeatureHashingClassifier&>(impl), payload);
      break;
    case Method::kWmSketch:
      body = detail::SaveWmSketchPayload(static_cast<const WmSketch&>(impl), payload);
      break;
    case Method::kAwmSketch:
      body = detail::SaveAwmSketchPayload(static_cast<const AwmSketch&>(impl), payload);
      break;
  }
  WMS_RETURN_NOT_OK(body);
  return snapshot::WriteEnveloped(out, std::move(payload).str());
}

Status SaveLearner(const Learner& learner, std::ostream& out) {
  return SaveClassifier(learner.method(), learner.impl(), out);
}

Result<Learner> LoadLearner(std::istream& in, const LearnerOptions& opts) {
  std::string storage;
  WMS_ASSIGN_OR_RETURN(snapshot::SnapshotReader reader, snapshot::OpenSnapshot(in, &storage));
  uint32_t magic, version;
  uint8_t tag;
  if (!reader.ReadRaw(&magic)) return Status::Corruption("truncated facade header");
  if (magic != kLearnerMagic) return Status::Corruption("not a learner snapshot");
  if (!reader.ReadRaw(&version) || !reader.ReadRaw(&tag)) {
    return Status::Corruption("truncated facade header");
  }
  if (version != kLearnerVersion) return Status::Corruption("unsupported snapshot version");
  if (tag > static_cast<uint8_t>(Method::kAwmSketch)) {
    return Status::Corruption("unknown method tag");
  }
  const Method method = static_cast<Method>(tag);

  std::unique_ptr<BudgetedClassifier> impl;
  switch (method) {
    case Method::kSimpleTruncation: {
      WMS_ASSIGN_OR_RETURN(SimpleTruncation model,
                           detail::LoadSimpleTruncationPayload(reader, opts));
      impl = std::make_unique<SimpleTruncation>(std::move(model));
      break;
    }
    case Method::kProbabilisticTruncation: {
      WMS_ASSIGN_OR_RETURN(ProbabilisticTruncation model,
                           detail::LoadProbabilisticTruncationPayload(reader, opts));
      impl = std::make_unique<ProbabilisticTruncation>(std::move(model));
      break;
    }
    case Method::kSpaceSavingFrequent: {
      WMS_ASSIGN_OR_RETURN(SpaceSavingFrequent model,
                           detail::LoadSpaceSavingFrequentPayload(reader, opts));
      impl = std::make_unique<SpaceSavingFrequent>(std::move(model));
      break;
    }
    case Method::kCountMinFrequent: {
      WMS_ASSIGN_OR_RETURN(CountMinFrequent model,
                           detail::LoadCountMinFrequentPayload(reader, opts));
      impl = std::make_unique<CountMinFrequent>(std::move(model));
      break;
    }
    case Method::kFeatureHashing: {
      WMS_ASSIGN_OR_RETURN(FeatureHashingClassifier model,
                           detail::LoadFeatureHashingPayload(reader, opts));
      impl = std::make_unique<FeatureHashingClassifier>(std::move(model));
      break;
    }
    case Method::kWmSketch: {
      WMS_ASSIGN_OR_RETURN(WmSketch model, detail::LoadWmSketchPayload(reader, opts));
      impl = std::make_unique<WmSketch>(std::move(model));
      break;
    }
    case Method::kAwmSketch: {
      WMS_ASSIGN_OR_RETURN(AwmSketch model, detail::LoadAwmSketchPayload(reader, opts));
      impl = std::make_unique<AwmSketch>(std::move(model));
      break;
    }
  }
  const BudgetConfig cfg = ConfigOf(method, *impl);
  const LearnerOptions restored = impl->options();  // λ/seed from the snapshot
  return Learner(cfg, restored, std::move(impl));
}

}  // namespace wmsketch
