// Unit and property tests for src/util: Status/Result, PRNG, Zipf sampler,
// alias table, math helpers, and the memory cost model.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/alias.h"
#include "util/crc32c.h"
#include "util/math.h"
#include "util/memory_cost.h"
#include "util/random.h"
#include "util/status.h"
#include "util/zipf.h"

namespace wmsketch {
namespace {

// ----------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad width");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kFailedPrecondition, StatusCode::kIOError,
        StatusCode::kCorruption}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Status FailingHelper() { return Status::IOError("disk"); }
Status PropagatingHelper() {
  WMS_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(PropagatingHelper().code(), StatusCode::kIOError);
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Bounded(n), n);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(11);
  const uint64_t n = 10;
  std::vector<int> counts(n, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.Bounded(n)];
  for (uint64_t b = 0; b < n; ++b) {
    EXPECT_NEAR(counts[b], trials / static_cast<int>(n), 600) << "bucket " << b;
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential();
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

// ------------------------------------------------------------------- Zipf

// Property sweep: the empirical frequency of the top ranks must match the
// closed-form PMF across exponents, including the harmonic point s = 1.
class ZipfLawTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfLawTest, EmpiricalFrequenciesMatchPmf) {
  const double exponent = GetParam();
  const uint64_t n = 1000;
  ZipfSampler zipf(n, exponent);
  Rng rng(23);
  std::vector<int> counts(n, 0);
  const int trials = 300000;
  for (int i = 0; i < trials; ++i) ++counts[zipf.Sample(rng)];
  for (uint64_t r : {0ULL, 1ULL, 2ULL, 5ULL, 10ULL, 50ULL}) {
    const double expected = zipf.Pmf(r) * trials;
    EXPECT_NEAR(counts[r], expected, 5.0 * std::sqrt(expected) + 8.0)
        << "rank " << r << " exponent " << exponent;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfLawTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.1, 1.3, 2.0));

TEST(ZipfTest, SingleValueDomain) {
  ZipfSampler zipf(1, 1.1);
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, SamplesCoverDomainBounds) {
  ZipfSampler zipf(10, 0.5);  // mild skew so high ranks appear
  Rng rng(31);
  std::set<uint64_t> seen;
  for (int i = 0; i < 20000; ++i) seen.insert(zipf.Sample(rng));
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.2);
  double total = 0.0;
  for (uint64_t r = 0; r < 100; ++r) total += zipf.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

// ------------------------------------------------------------------ Alias

TEST(AliasTest, RejectsBadInput) {
  EXPECT_FALSE(AliasTable::Build({}).ok());
  EXPECT_FALSE(AliasTable::Build({0.0, 0.0}).ok());
  EXPECT_FALSE(AliasTable::Build({1.0, -2.0}).ok());
  EXPECT_FALSE(AliasTable::Build({1.0, std::nan("")}).ok());
}

TEST(AliasTest, SingleWeight) {
  auto table = AliasTable::Build({5.0});
  ASSERT_TRUE(table.ok());
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.value().Sample(rng), 0u);
}

TEST(AliasTest, MatchesDistribution) {
  const std::vector<double> weights = {10.0, 1.0, 5.0, 0.0, 4.0};
  auto table = AliasTable::Build(weights);
  ASSERT_TRUE(table.ok());
  Rng rng(41);
  std::vector<int> counts(weights.size(), 0);
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) ++counts[table.value().Sample(rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = table.value().Probability(i) * trials;
    EXPECT_NEAR(counts[i], expected, 5.0 * std::sqrt(expected + 1.0) + 8.0) << "index " << i;
  }
  EXPECT_EQ(counts[3], 0);  // zero weight never sampled
}

TEST(AliasTest, ProbabilitiesNormalized) {
  auto table = AliasTable::Build({3.0, 1.0, 2.0});
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table.value().Probability(0), 0.5);
  EXPECT_DOUBLE_EQ(table.value().Probability(1), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(table.value().Probability(2), 1.0 / 3.0);
}

// ------------------------------------------------------------------- Math

TEST(MathTest, Log1pExpStable) {
  EXPECT_NEAR(Log1pExp(0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(Log1pExp(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Log1pExp(100.0), 100.0, 1e-9);
  EXPECT_NEAR(Log1pExp(3.0), std::log1p(std::exp(3.0)), 1e-12);
}

TEST(MathTest, SigmoidStableAndSymmetric) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  for (double x : {0.1, 0.5, 2.0, 7.0}) {
    EXPECT_NEAR(Sigmoid(x) + Sigmoid(-x), 1.0, 1e-12) << x;
  }
}

TEST(MathTest, MedianOddAndEven) {
  std::vector<float> odd = {5.0f, 1.0f, 3.0f};
  EXPECT_EQ(MedianInPlace(odd), 3.0f);
  std::vector<float> even = {4.0f, 1.0f, 3.0f, 2.0f};
  EXPECT_EQ(MedianInPlace(even), 2.0f);  // lower-middle convention
  std::vector<float> single = {7.0f};
  EXPECT_EQ(MedianInPlace(single), 7.0f);
}

TEST(MathTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

// ----------------------------------------------------------- Memory model

TEST(MemoryCostTest, MatchesPaperAccounting) {
  // Sec. 7.1's example: 128 truncation entries (id + weight) = 1024 bytes.
  EXPECT_EQ(HeapBytes(128), 1024u);
  // Space-Saving slots carry an extra count.
  EXPECT_EQ(HeapBytes(128, 1), 1536u);
  EXPECT_EQ(TableBytes(512), 2048u);
  EXPECT_EQ(KiB(8), 8192u);
}

// ----------------------------------------------------------- CRC32C

// RFC 3720 Appendix B.4 / the canonical Castagnoli check value.
TEST(Crc32cTest, KnownAnswerVectors) {
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c::Value("", 0), 0x00000000u);
  EXPECT_EQ(crc32c::Value("a", 1), 0xC1D04330u);
  EXPECT_EQ(crc32c::Value("The quick brown fox jumps over the lazy dog", 43),
            0x22620404u);
  const std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c::Value(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::vector<uint8_t> ones(32, 0xff);
  EXPECT_EQ(crc32c::Value(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendComposesLikeConcatenation) {
  const std::string a = "hello, ", b = "world";
  const uint32_t whole = crc32c::Value((a + b).data(), a.size() + b.size());
  const uint32_t split =
      crc32c::Extend(crc32c::Value(a.data(), a.size()), b.data(), b.size());
  EXPECT_EQ(whole, split);
}

// The scalar twin of the SSE4.2 kernel, registered in the simd-paired
// coverage table (tests/hash_plan_test.cc) as Crc32cSse42.
TEST(Crc32cTest, Crc32cHardwareMatchesScalar) {
  if (!crc32c::HardwareAvailable()) GTEST_SKIP() << "no SSE4.2 on this machine";
  const bool was_enabled = crc32c::Enabled();
  Rng rng(71);
  // Every length 0..257 plus larger blocks, at shifted alignments, so the
  // slicing-by-8 prologue/main/tail boundaries are all crossed both ways.
  std::vector<uint8_t> buf(4096 + 8);
  for (auto& byte : buf) byte = static_cast<uint8_t>(rng.Bounded(256));
  for (size_t align = 0; align < 8; ++align) {
    for (size_t len = 0; len <= 257; ++len) {
      crc32c::SetEnabled(true);
      const uint32_t hw = crc32c::Value(buf.data() + align, len);
      crc32c::SetEnabled(false);
      const uint32_t sw = crc32c::Value(buf.data() + align, len);
      ASSERT_EQ(hw, sw) << "align " << align << " len " << len;
    }
    crc32c::SetEnabled(true);
    const uint32_t hw = crc32c::Value(buf.data() + align, 4096);
    crc32c::SetEnabled(false);
    const uint32_t sw = crc32c::Value(buf.data() + align, 4096);
    ASSERT_EQ(hw, sw) << "align " << align << " len 4096";
  }
  crc32c::SetEnabled(was_enabled);
}

}  // namespace
}  // namespace wmsketch
