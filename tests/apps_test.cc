// Tests for the three stream-processing applications (Sec. 8): streaming
// explanation, relative-deltoid detection, and streaming PMI estimation —
// each exercised end-to-end on its synthetic workload.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>
#include <utility>

#include "apps/deltoid.h"
#include "apps/explanation.h"
#include "apps/pmi.h"
#include "datagen/corpus_gen.h"
#include "datagen/fec_gen.h"
#include "datagen/packet_gen.h"
#include "hash/polynomial.h"
#include "metrics/pmi.h"
#include "metrics/relative_risk.h"

namespace wmsketch {
namespace {

LearnerOptions AppOptions(uint64_t seed = 42) {
  LearnerOptions opts;
  opts.lambda = 1e-6;
  opts.rate = LearningRate::InverseSqrt(0.1);
  opts.seed = seed;
  return opts;
}

// A 32 KB-class AWM learner (4096-bucket depth-1 sketch + 2048 exact slots)
// built through the public facade.
Learner AwmLearner(uint32_t width, size_t heap, const LearnerOptions& opts) {
  Result<Learner> built = LearnerBuilder()
                              .SetMethod(Method::kAwmSketch)
                              .SetWidth(width)
                              .SetDepth(1)
                              .SetHeapCapacity(heap)
                              .SetLambda(opts.lambda)
                              .SetLearningRate(opts.rate)
                              .SetSeed(opts.seed)
                              .Build();
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

// ------------------------------------------------------------ Explanation

TEST(ExplanationTest, ClassifierSurfacesHighRiskAttributes) {
  FecLikeGenerator gen(101);
  LearnerOptions opts = AppOptions(102);
  opts.rate = LearningRate::Constant(0.1);  // stationary 1-sparse objective
  opts.lambda = 1e-4;  // decays rarely-occurring noise out of the ranking
  Learner model = AwmLearner(4096, 2048, opts);
  StreamingExplainer explainer(&model, /*outlier_repeats=*/4);
  RelativeRiskTracker exact;
  for (int i = 0; i < 80000; ++i) {
    const FecRow row = gen.Next();
    explainer.Observe(row.attributes, row.outlier);
    for (const uint32_t f : row.attributes) exact.Observe(f, row.outlier);
  }
  // The most outlier-indicative attributes (largest signed weights) must
  // have substantially elevated relative risk vs the ~1.0 population mean.
  const auto top = explainer.TopIndicative(64);
  ASSERT_GE(top.size(), 64u);
  double hi = 0.0;
  int hi_n = 0;
  for (const auto& fw : top) {
    if (exact.Occurrences(fw.feature) < 30) continue;  // risk estimate noise
    hi += exact.RelativeRisk(fw.feature);
    ++hi_n;
  }
  ASSERT_GE(hi_n, 10);
  EXPECT_GT(hi / hi_n, 1.5);
}

TEST(ExplanationTest, HeavyHitterExplainerFindsFrequentNotRisky) {
  FecLikeGenerator gen(103);
  HeavyHitterExplainer hh(256, HeavyHitterExplainer::Mode::kBoth);
  RelativeRiskTracker exact;
  for (int i = 0; i < 40000; ++i) {
    const FecRow row = gen.Next();
    hh.Observe(row.attributes, row.outlier);
    for (const uint32_t f : row.attributes) exact.Observe(f, row.outlier);
  }
  const auto top = hh.TopAttributes(128);
  ASSERT_GE(top.size(), 64u);
  // Frequent attributes cluster near relative risk 1 (the Fig. 8 claim).
  double sum = 0.0;
  for (const uint32_t f : top) sum += exact.RelativeRisk(f);
  EXPECT_NEAR(sum / top.size(), 1.0, 0.5);
}

TEST(ExplanationTest, PositiveOnlyModeIgnoresInliers) {
  HeavyHitterExplainer hh(16, HeavyHitterExplainer::Mode::kPositiveOnly);
  hh.Observe({1, 2}, /*outlier=*/false);
  EXPECT_TRUE(hh.TopAttributes(4).empty());
  hh.Observe({3}, /*outlier=*/true);
  EXPECT_EQ(hh.TopAttributes(4).size(), 1u);
}

// ---------------------------------------------------------------- Deltoid

TEST(DeltoidTest, ClassifierWeightsApproximateLogRatios) {
  PacketTraceGenerator gen(4096, 24, 201);
  Learner model = AwmLearner(4096, 2048, AppOptions(202));
  RelativeDeltoidDetector detector(&model);
  for (int i = 0; i < 300000; ++i) {
    const PacketEvent e = gen.Next();
    detector.Observe(e.ip, e.outbound);
  }
  // For planted deltoids the detector's sign must match, and magnitude must
  // correlate with the plant (monotone, not exact: logistic weights estimate
  // the posterior log-odds, which saturates with regularization).
  int sign_ok = 0, checked = 0;
  for (const auto& [ip, log_ratio] : gen.planted_log_ratios()) {
    const double est = detector.EstimateLogRatio(ip);
    if (std::fabs(log_ratio) < 3.0) continue;  // only strong plants
    ++checked;
    sign_ok += (est * log_ratio > 0.0);
  }
  ASSERT_GE(checked, 5);
  EXPECT_GE(static_cast<double>(sign_ok) / checked, 0.9);
}

TEST(DeltoidTest, PairedCmRatioFindsStrongDeltoids) {
  PacketTraceGenerator gen(1024, 8, 203);
  PairedCmRatioEstimator cm(1024, 4, 204);
  std::vector<uint64_t> out_counts(1024, 0), in_counts(1024, 0);
  for (int i = 0; i < 200000; ++i) {
    const PacketEvent e = gen.Next();
    cm.Observe(e.ip, e.outbound);
    ++(e.outbound ? out_counts : in_counts)[e.ip];
  }
  // With a generous sketch the CM ratio estimate matches exact counts for
  // well-observed items.
  for (uint32_t ip = 0; ip < 32; ++ip) {
    if (out_counts[ip] + in_counts[ip] < 1000) continue;
    const double exact = std::log((out_counts[ip] + 0.5) / (in_counts[ip] + 0.5));
    EXPECT_NEAR(cm.EstimateLogRatio(ip), exact, 0.5) << "ip " << ip;
  }
}

TEST(DeltoidTest, TopDeltoidsEnumerationWorks) {
  PairedCmRatioEstimator cm(256, 4, 205);
  for (int i = 0; i < 100; ++i) cm.Observe(7, true);   // strongly stream-1
  for (int i = 0; i < 100; ++i) cm.Observe(9, false);  // strongly stream-2
  const auto top = cm.TopDeltoids(2, /*universe=*/64);
  ASSERT_EQ(top.size(), 2u);
  const std::unordered_set<uint32_t> got = {top[0].feature, top[1].feature};
  EXPECT_TRUE(got.count(7));
  EXPECT_TRUE(got.count(9));
}

// -------------------------------------------------------------------- PMI

TEST(PmiTest, PlantedCollocationsRankHighest) {
  CorpusGenerator corpus(4096, 8, 301);
  PmiOptions options;
  options.learner = AppOptions(302);
  options.learner.rate = LearningRate::Constant(0.1);
  options.learner.lambda = 1e-6;
  options.sketch = AwmSketchConfig{1u << 16, 1, 512};
  StreamingPmiEstimator estimator(options);
  for (int i = 0; i < 600000; ++i) {
    bool boundary = false;
    const uint32_t tok = corpus.Next(&boundary);
    estimator.ObserveToken(tok, boundary);
  }
  ASSERT_GT(estimator.positives_seen(), 100000u);
  const auto top = estimator.TopPairs(32);
  ASSERT_GE(top.size(), 8u);

  // Count how many planted (u,v) pairs appear in the top list.
  std::unordered_set<uint64_t> planted;
  for (const Collocation& c : corpus.collocations()) {
    planted.insert((static_cast<uint64_t>(c.u) << 32) | c.v);
  }
  int found = 0;
  for (const PmiPair& p : top) {
    found += planted.count((static_cast<uint64_t>(p.u) << 32) | p.v);
  }
  EXPECT_GE(found, 5) << "planted collocations missing from the top pairs";
  // Estimated PMIs of the found pairs are strongly positive.
  EXPECT_GT(top[0].estimated_pmi, 2.0);
}

TEST(PmiTest, EstimateTracksExactPmiForPlantedPairs) {
  CorpusGenerator corpus(4096, 6, 303);
  // Low-bias regime: the paper notes λ > 0 shrinks estimates for rare
  // pairs; with λ = 1e-7 the weight tracks the exact PMI closely.
  PmiOptions options;
  options.learner = AppOptions(304);
  options.learner.rate = LearningRate::Constant(0.1);
  options.learner.lambda = 1e-7;
  options.sketch = AwmSketchConfig{1u << 16, 1, 1024};
  StreamingPmiEstimator estimator(options);

  // Exact counting of the planted pairs only (two-pass-free: same stream).
  std::unordered_map<uint64_t, uint64_t> pair_counts;
  std::vector<uint64_t> unigram_counts(4096, 0);
  uint64_t total_pairs = 0, total_tokens = 0;
  SlidingWindowPairs window(options.window);
  for (const Collocation& c : corpus.collocations()) {
    pair_counts[(static_cast<uint64_t>(c.u) << 32) | c.v] = 0;
  }
  for (int i = 0; i < 600000; ++i) {
    bool boundary = false;
    const uint32_t tok = corpus.Next(&boundary);
    estimator.ObserveToken(tok, boundary);
    if (boundary) window.Reset();
    ++total_tokens;
    ++unigram_counts[tok];
    window.Push(tok, [&](uint32_t u, uint32_t v) {
      ++total_pairs;
      auto it = pair_counts.find((static_cast<uint64_t>(u) << 32) | v);
      if (it != pair_counts.end()) ++it->second;
    });
  }
  int compared = 0;
  for (const Collocation& c : corpus.collocations()) {
    const uint64_t count = pair_counts[(static_cast<uint64_t>(c.u) << 32) | c.v];
    if (count < 300) continue;
    const double exact =
        PmiFromCounts(count, total_pairs, unigram_counts[c.u], unigram_counts[c.v],
                      total_tokens);
    const double est = estimator.EstimatePmi(c.u, c.v);
    EXPECT_NEAR(est, exact, 1.5) << "pair (" << c.u << "," << c.v << ")";
    ++compared;
  }
  EXPECT_GE(compared, 3);
}

TEST(PmiTest, FrequentIndependentPairsGetLowWeight) {
  CorpusGenerator corpus(4096, 0, 305);  // no collocations at all
  PmiOptions options;
  options.learner = AppOptions(306);
  options.learner.rate = LearningRate::Constant(0.1);
  options.sketch = AwmSketchConfig{1u << 14, 1, 256};
  StreamingPmiEstimator estimator(options);
  for (int i = 0; i < 200000; ++i) {
    bool boundary = false;
    const uint32_t tok = corpus.Next(&boundary);
    estimator.ObserveToken(tok, boundary);
  }
  // The most frequent token pair (0,1)-style combinations have PMI ≈ 0
  // (Table 3's right column): estimates must be small.
  for (const auto& [u, v] : {std::pair<uint32_t, uint32_t>{0, 1}, {1, 0}, {0, 2}}) {
    EXPECT_LT(std::fabs(estimator.EstimatePmi(u, v)), 1.5)
        << "(" << u << "," << v << ")";
  }
}

TEST(PmiTest, IdentityMapStaysBounded) {
  CorpusGenerator corpus(4096, 4, 307);
  PmiOptions options;
  options.learner = AppOptions(308);
  options.learner.rate = LearningRate::Constant(0.1);
  options.sketch = AwmSketchConfig{1u << 12, 1, 128};
  options.prune_interval = 1024;
  StreamingPmiEstimator estimator(options);
  for (int i = 0; i < 100000; ++i) {
    bool boundary = false;
    const uint32_t tok = corpus.Next(&boundary);
    estimator.ObserveToken(tok, boundary);
  }
  // Identity storage must stay within a small multiple of the heap size.
  EXPECT_LT(estimator.MemoryCostBytes(),
            estimator.sketch().MemoryCostBytes() + 64u * 1024u);
}

}  // namespace
}  // namespace wmsketch
