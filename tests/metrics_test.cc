// Tests for the evaluation metrics: RelErr recovery, online error rate,
// Pearson correlation, relative risk, recall curves, and PMI-from-counts.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "metrics/correlation.h"
#include "metrics/online_error.h"
#include "metrics/pmi.h"
#include "metrics/recall.h"
#include "metrics/recovery.h"
#include "metrics/relative_risk.h"

namespace wmsketch {
namespace {

// ---------------------------------------------------------------- RelErr

TEST(RelErrTest, PerfectRecoveryIsOne) {
  const std::vector<float> w_star = {5.0f, -4.0f, 3.0f, 0.1f, -0.2f};
  const std::vector<FeatureWeight> exact = ExactTopK(w_star, 2);
  EXPECT_DOUBLE_EQ(RelErrTopK(exact, w_star, 2), 1.0);
}

TEST(RelErrTest, ExactTopKSortedByMagnitude) {
  const std::vector<float> w_star = {1.0f, -4.0f, 3.0f, 0.0f};
  const auto top = ExactTopK(w_star, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].feature, 1u);
  EXPECT_EQ(top[1].feature, 2u);
  EXPECT_EQ(top[2].feature, 0u);
}

TEST(RelErrTest, WrongFeaturesCostMore) {
  const std::vector<float> w_star = {5.0f, -4.0f, 3.0f, 0.1f, -0.2f};
  // Right features, slightly wrong values.
  const std::vector<FeatureWeight> close = {{0, 4.8f}, {1, -4.1f}};
  // Wrong features entirely.
  const std::vector<FeatureWeight> wrong = {{3, 0.1f}, {4, -0.2f}};
  const double close_err = RelErrTopK(close, w_star, 2);
  const double wrong_err = RelErrTopK(wrong, w_star, 2);
  EXPECT_GE(close_err, 1.0);
  EXPECT_LT(close_err, 1.05);
  EXPECT_GT(wrong_err, close_err);
}

TEST(RelErrTest, MissingEntriesCountAsZeros) {
  const std::vector<float> w_star = {5.0f, -4.0f, 3.0f};
  const std::vector<FeatureWeight> partial = {{0, 5.0f}};  // only 1 of K=2
  const double err = RelErrTopK(partial, w_star, 2);
  // Missing w*_1 = −4 contributes 16 to the numerator; denominator is 9.
  EXPECT_NEAR(err, std::sqrt((16.0 + 9.0) / 9.0), 1e-9);
}

TEST(RelErrTest, MatchesBruteForceOnRandomInputs) {
  std::vector<float> w_star(64);
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<float>(static_cast<int64_t>(state >> 33) % 1000) / 250.0f;
  };
  for (float& w : w_star) w = next() - 2.0f;
  const size_t k = 8;
  std::vector<FeatureWeight> est;
  for (uint32_t i = 0; i < k; ++i) est.push_back({i * 3, next() - 2.0f});

  // Brute force: materialize both K-sparse vectors.
  std::vector<float> est_dense(64, 0.0f), ref_dense(64, 0.0f);
  for (const auto& fw : est) est_dense[fw.feature] = fw.weight;
  for (const auto& fw : ExactTopK(w_star, k)) ref_dense[fw.feature] = fw.weight;
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < 64; ++i) {
    num += (est_dense[i] - w_star[i]) * (est_dense[i] - w_star[i]);
    den += (ref_dense[i] - w_star[i]) * (ref_dense[i] - w_star[i]);
  }
  EXPECT_NEAR(RelErrTopK(est, w_star, k), std::sqrt(num / den), 1e-6);
}

TEST(TopKRecallTest, CountsFeatureOverlap) {
  const std::vector<FeatureWeight> expected = {{1, 1.0f}, {2, 1.0f}, {3, 1.0f}, {4, 1.0f}};
  const std::vector<FeatureWeight> actual = {{2, 0.5f}, {4, -1.0f}, {9, 2.0f}};
  EXPECT_DOUBLE_EQ(TopKRecall(actual, expected), 0.5);
  EXPECT_DOUBLE_EQ(TopKRecall(actual, {}), 1.0);
  EXPECT_DOUBLE_EQ(TopKRecall({}, expected), 0.0);
}

// --------------------------------------------------------- OnlineErrorRate

TEST(OnlineErrorRateTest, ProgressiveValidation) {
  OnlineErrorRate err;
  EXPECT_EQ(err.Rate(), 0.0);
  err.Record(1.0, 1);    // correct
  err.Record(-2.0, 1);   // wrong
  err.Record(0.0, 1);    // tie → +1 → correct
  err.Record(0.0, -1);   // tie → +1 → wrong
  EXPECT_DOUBLE_EQ(err.Rate(), 0.5);
  EXPECT_EQ(err.mistakes(), 2u);
  EXPECT_EQ(err.total(), 4u);
}

// -------------------------------------------------------------- Pearson

TEST(PearsonTest, PerfectAndInverseCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateInputsReturnZero) {
  EXPECT_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
}

TEST(PearsonTest, UncorrelatedNearZero) {
  std::vector<double> xs, ys;
  uint64_t state = 99;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1;
    xs.push_back(static_cast<double>((state >> 33) % 1000));
    state = state * 6364136223846793005ULL + 1;
    ys.push_back(static_cast<double>((state >> 33) % 1000));
  }
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 0.0, 0.05);
}

TEST(MedianTest, Basics) {
  EXPECT_EQ(Median({}), 0.0);
  EXPECT_EQ(Median({3.0}), 3.0);
  EXPECT_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.0);  // lower-middle
}

// ----------------------------------------------------------- RelativeRisk

TEST(RelativeRiskTest, IndicativeFeatureHasHighRisk) {
  RelativeRiskTracker tracker;
  // Background attributes carry the base 20% outlier rate; feature 1
  // appears mostly in outliers. Relative risk compares against the rest of
  // the stream, so the background population defines the denominator.
  for (int i = 0; i < 1000; ++i) {
    tracker.Observe(100 + static_cast<uint32_t>(i % 7), /*outlier=*/i % 5 == 0);
  }
  for (int i = 0; i < 100; ++i) {
    tracker.Observe(1, /*outlier=*/i % 10 != 0);   // 90% outlier
    tracker.Observe(2, /*outlier=*/i % 5 == 0);    // 20% outlier (baseline)
  }
  EXPECT_GT(tracker.RelativeRisk(1), 3.0);
  EXPECT_NEAR(tracker.RelativeRisk(2), 1.0, 0.3);
  EXPECT_GT(tracker.LogRelativeRisk(1), std::log(3.0));
}

TEST(RelativeRiskTest, SmoothingKeepsExtremesFinite) {
  RelativeRiskTracker tracker;
  for (int i = 0; i < 50; ++i) tracker.Observe(1, true);   // always outlier
  for (int i = 0; i < 50; ++i) tracker.Observe(2, false);  // never outlier
  EXPECT_TRUE(std::isfinite(tracker.RelativeRisk(1)));
  EXPECT_TRUE(std::isfinite(tracker.RelativeRisk(2)));
  EXPECT_GT(tracker.RelativeRisk(1), 1.0);
  EXPECT_LT(tracker.RelativeRisk(2), 1.0);
  // Unseen features get a neutral estimate.
  EXPECT_NEAR(tracker.RelativeRisk(99), 1.0, 0.5);
}

TEST(RelativeRiskTest, OccurrencesTracked) {
  RelativeRiskTracker tracker;
  tracker.Observe(5, true);
  tracker.Observe(5, false);
  EXPECT_EQ(tracker.Occurrences(5), 2u);
  EXPECT_EQ(tracker.Occurrences(6), 0u);
  EXPECT_EQ(tracker.total(), 2u);
  EXPECT_EQ(tracker.total_positive(), 1u);
}

// ----------------------------------------------------------------- Recall

TEST(RecallTest, ThresholdCurve) {
  const std::vector<std::pair<uint32_t, double>> truth = {
      {1, 5.0}, {2, -6.0}, {3, 2.0}, {4, 0.1}};
  const std::unordered_set<uint32_t> retrieved = {1, 3};
  const auto curve = RecallAboveThresholds(retrieved, truth, {1.0, 4.0, 10.0});
  ASSERT_EQ(curve.size(), 3u);
  // τ=1: relevant {1,2,3}, hit {1,3} → 2/3.
  EXPECT_NEAR(curve[0].recall, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(curve[0].relevant, 3u);
  // τ=4: relevant {1,2}, hit {1} → 1/2.
  EXPECT_NEAR(curve[1].recall, 0.5, 1e-12);
  // τ=10: nothing relevant → recall 1 by convention.
  EXPECT_EQ(curve[2].recall, 1.0);
  EXPECT_EQ(curve[2].relevant, 0u);
}

// -------------------------------------------------------------------- PMI

TEST(PmiTest, IndependentPairHasZeroPmi) {
  // p(u,v) = p(u)p(v): counts 100/10000 pairs, 100/1000 & 10/1000 unigrams
  // → PMI = log( (100/10000) / (0.1 * 0.01) ) = log(10) ... pick numbers:
  EXPECT_NEAR(PmiFromCounts(10, 1000, 100, 100, 1000), 0.0, 1e-12);
}

TEST(PmiTest, PositiveForOverrepresentedPairs) {
  EXPECT_GT(PmiFromCounts(100, 1000, 100, 100, 1000), 0.0);
  EXPECT_LT(PmiFromCounts(1, 1000, 100, 100, 1000), 0.0);
}

}  // namespace
}  // namespace wmsketch
