// Tests for the synthetic workload generators: determinism, statistical
// shape (sparsity, skew, label balance), and planted ground truth.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datagen/classification_gen.h"
#include "datagen/corpus_gen.h"
#include "datagen/fec_gen.h"
#include "datagen/packet_gen.h"
#include "datagen/sparsity_profile.h"
#include "metrics/relative_risk.h"
#include "stream/libsvm_io.h"

namespace wmsketch {
namespace {

// ------------------------------------------------- SyntheticClassification

TEST(ClassificationGenTest, DeterministicGivenSeed) {
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  SyntheticClassificationGen a(profile, 7), b(profile, 7);
  for (int i = 0; i < 200; ++i) {
    const Example ea = a.Next();
    const Example eb = b.Next();
    EXPECT_EQ(ea.x, eb.x);
    EXPECT_EQ(ea.y, eb.y);
  }
}

TEST(ClassificationGenTest, ExamplesAreValidAndBinary) {
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), 9);
  for (int i = 0; i < 500; ++i) {
    const Example ex = gen.Next();
    ASSERT_TRUE(ex.Validate().ok());
    EXPECT_DOUBLE_EQ(ex.x.L1Norm(), static_cast<double>(ex.x.nnz()));  // binary values
    EXPECT_GE(ex.x.nnz(), 5u);
    EXPECT_LE(ex.x.nnz(), 25u);
  }
}

TEST(ClassificationGenTest, FeatureFrequenciesAreSkewed) {
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), 11);
  std::unordered_map<uint32_t, int> counts;
  for (int i = 0; i < 3000; ++i) {
    const Example ex = gen.Next();
    for (size_t j = 0; j < ex.x.nnz(); ++j) ++counts[ex.x.index(j)];
  }
  // Rank 0 must dominate a mid-rank feature by a large factor.
  EXPECT_GT(counts[0], 50 * (counts[1000] + 1));
}

TEST(ClassificationGenTest, LabelsCorrelateWithTeacher) {
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), 13);
  int teacher_agrees = 0;
  int strong = 0;
  for (int i = 0; i < 5000; ++i) {
    const Example ex = gen.Next();
    std::vector<uint32_t> features(ex.x.indices());
    const double logit = gen.TeacherLogit(features);
    if (std::fabs(logit) > 2.0) {
      ++strong;
      teacher_agrees += ((logit > 0) == (ex.y > 0));
    }
  }
  ASSERT_GT(strong, 100);  // the teacher fires often enough to matter
  EXPECT_GT(static_cast<double>(teacher_agrees) / strong, 0.8);
}

TEST(ClassificationGenTest, LabelsRoughlyBalanced) {
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), 15);
  int pos = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) pos += (gen.Next().y > 0);
  EXPECT_GT(pos, n / 4);
  EXPECT_LT(pos, 3 * n / 4);
}

TEST(ClassificationGenTest, ProfilesMatchPaperShapes) {
  const ClassificationProfile rcv1 = ClassificationProfile::Rcv1Like();
  EXPECT_EQ(rcv1.dimension, 47236u);
  const ClassificationProfile url = ClassificationProfile::UrlLike();
  EXPECT_GT(url.dimension, 1u << 21);
  // URL teacher avoids the most frequent features entirely.
  EXPECT_GE(url.teacher_rank_lo, 1u << 10);
  const ClassificationProfile kdda = ClassificationProfile::KddaLike();
  EXPECT_GT(kdda.dimension, 1u << 20);
}

TEST(ClassificationGenTest, UrlTeacherAvoidsFrequentRanks) {
  SyntheticClassificationGen gen(ClassificationProfile::UrlLike(), 17);
  for (const auto& [feature, weight] : gen.teacher()) {
    EXPECT_GE(feature, 1u << 10);
    EXPECT_LT(feature, 1u << 18);
    EXPECT_NE(weight, 0.0f);
  }
}

// ------------------------------------------------------------- FEC tabular

TEST(FecGenTest, DeterministicAndWellFormed) {
  FecLikeGenerator a(3), b(3);
  for (int i = 0; i < 200; ++i) {
    const FecRow ra = a.Next();
    const FecRow rb = b.Next();
    EXPECT_EQ(ra.attributes, rb.attributes);
    EXPECT_EQ(ra.outlier, rb.outlier);
    ASSERT_EQ(ra.attributes.size(), a.columns().size());
    for (size_t c = 0; c < ra.attributes.size(); ++c) {
      EXPECT_LT(ra.attributes[c], a.FeatureDimension());
    }
    EXPECT_GT(ra.amount, 0.0);
  }
}

TEST(FecGenTest, OutlierRateNearTwentyPercent) {
  FecLikeGenerator gen(5);
  int outliers = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) outliers += gen.Next().outlier;
  EXPECT_NEAR(static_cast<double>(outliers) / n, 0.20, 0.03);
}

TEST(FecGenTest, PlantedAttributesCarryRisk) {
  FecLikeGenerator gen(7);
  RelativeRiskTracker tracker;
  for (int i = 0; i < 60000; ++i) {
    const FecRow row = gen.Next();
    for (const uint32_t f : row.attributes) tracker.Observe(f, row.outlier);
  }
  // Planted high-risk attributes that actually occurred must show risk > 1;
  // aggregate medians keep the test robust to rare planted values.
  double high_risk_sum = 0.0;
  int high_seen = 0;
  for (const uint32_t f : gen.high_risk_features()) {
    if (tracker.Occurrences(f) < 50) continue;
    high_risk_sum += tracker.RelativeRisk(f);
    ++high_seen;
  }
  ASSERT_GT(high_seen, 3);
  EXPECT_GT(high_risk_sum / high_seen, 1.8);

  double low_risk_sum = 0.0;
  int low_seen = 0;
  for (const uint32_t f : gen.low_risk_features()) {
    if (tracker.Occurrences(f) < 50) continue;
    low_risk_sum += tracker.RelativeRisk(f);
    ++low_seen;
  }
  ASSERT_GT(low_seen, 3);
  EXPECT_LT(low_risk_sum / low_seen, 0.7);
}

// ------------------------------------------------------------ Packet trace

TEST(PacketGenTest, DeterministicEvents) {
  PacketTraceGenerator a(1024, 32, 9), b(1024, 32, 9);
  for (int i = 0; i < 500; ++i) {
    const PacketEvent ea = a.Next();
    const PacketEvent eb = b.Next();
    EXPECT_EQ(ea.ip, eb.ip);
    EXPECT_EQ(ea.outbound, eb.outbound);
  }
}

TEST(PacketGenTest, DirectionsBalanced) {
  PacketTraceGenerator gen(1024, 32, 11);
  int outbound = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) outbound += gen.Next().outbound;
  EXPECT_NEAR(static_cast<double>(outbound) / n, 0.5, 0.02);
}

TEST(PacketGenTest, PlantedDeltoidsShowInCounts) {
  PacketTraceGenerator gen(2048, 16, 13);
  std::vector<uint64_t> out_counts(2048, 0), in_counts(2048, 0);
  for (int i = 0; i < 400000; ++i) {
    const PacketEvent e = gen.Next();
    ++(e.outbound ? out_counts : in_counts)[e.ip];
  }
  int checked = 0;
  for (const auto& [ip, log_ratio] : gen.planted_log_ratios()) {
    if (out_counts[ip] + in_counts[ip] < 200) continue;
    const double empirical =
        std::log((out_counts[ip] + 0.5) / (in_counts[ip] + 0.5));
    EXPECT_NEAR(empirical, gen.TrueLogRatio(ip), 2.5) << "ip " << ip;
    // Sign must agree with the plant for well-observed deltoids.
    EXPECT_GT(empirical * log_ratio, 0.0) << "ip " << ip;
    ++checked;
  }
  EXPECT_GE(checked, 4);
}

TEST(PacketGenTest, NonDeltoidsNearZeroRatio) {
  PacketTraceGenerator gen(2048, 16, 15);
  std::vector<uint64_t> out_counts(2048, 0), in_counts(2048, 0);
  for (int i = 0; i < 400000; ++i) {
    const PacketEvent e = gen.Next();
    ++(e.outbound ? out_counts : in_counts)[e.ip];
  }
  const auto& planted = gen.planted_log_ratios();
  for (uint32_t ip = 0; ip < 16; ++ip) {  // most popular, best estimated
    if (planted.count(ip) != 0) continue;
    const double empirical =
        std::log((out_counts[ip] + 0.5) / (in_counts[ip] + 0.5));
    EXPECT_NEAR(empirical, 0.0, 0.35) << "ip " << ip;
  }
}

// ----------------------------------------------------------------- Corpus

TEST(CorpusGenTest, DeterministicTokens) {
  CorpusGenerator a(4096, 16, 17), b(4096, 16, 17);
  for (int i = 0; i < 1000; ++i) {
    bool ba = false, bb = false;
    EXPECT_EQ(a.Next(&ba), b.Next(&bb));
    EXPECT_EQ(ba, bb);
  }
}

TEST(CorpusGenTest, UnigramsFollowZipf) {
  CorpusGenerator gen(4096, 0, 19);  // no collocations: pure Zipf
  std::unordered_map<uint32_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[gen.Next()];
  for (const uint32_t r : {0u, 1u, 5u, 20u}) {
    const double expected = gen.UnigramProb(r) * n;
    EXPECT_NEAR(counts[r], expected, 6.0 * std::sqrt(expected) + 10.0) << "rank " << r;
  }
}

TEST(CorpusGenTest, CollocationsFollowHeads) {
  CorpusGenerator gen(4096, 8, 21);
  ASSERT_EQ(gen.collocations().size(), 8u);
  std::unordered_map<uint32_t, std::pair<int, int>> head_follow;  // head -> (seen, followed)
  uint32_t prev = 0xffffffffu;
  for (int i = 0; i < 500000; ++i) {
    const uint32_t tok = gen.Next();
    for (const Collocation& c : gen.collocations()) {
      if (prev == c.u) {
        ++head_follow[c.u].first;
        if (tok == c.v) ++head_follow[c.u].second;
      }
    }
    prev = tok;
  }
  for (const Collocation& c : gen.collocations()) {
    const auto [seen, followed] = head_follow[c.u];
    if (seen < 100) continue;
    const double tolerance =
        4.0 * std::sqrt(c.follow_prob * (1.0 - c.follow_prob) / seen) + 0.02;
    EXPECT_NEAR(static_cast<double>(followed) / seen, c.follow_prob, tolerance)
        << "pair (" << c.u << "," << c.v << ") seen " << seen;
  }
}

// --------------------------------------------------------- SparsityProfile

SparsityProfile TinyProfile() {
  SparsityProfile p;
  p.name = "tiny";
  p.dimension = 1024;
  p.positive_fraction = 0.25;
  p.binary_values = true;
  p.nnz_histogram = {{2, 4, 0.5}, {5, 16, 0.5}};
  // The head band is wide relative to max nnz so within-example duplicate
  // rejection barely perturbs the band masses.
  p.rank_bands = {{0, 64, 0.6}, {64, 256, 0.3}, {256, 1024, 0.1}};
  return p;
}

TEST(SparsityProfileTest, JsonRoundTripsExactly) {
  const SparsityProfile p = TinyProfile();
  ASSERT_TRUE(p.Validate().ok());
  auto r = ParseSparsityProfileJson(FormatSparsityProfileJson(p));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().name, p.name);
  EXPECT_EQ(r.value().dimension, p.dimension);
  EXPECT_EQ(r.value().positive_fraction, p.positive_fraction);
  EXPECT_EQ(r.value().binary_values, p.binary_values);
  EXPECT_EQ(r.value().nnz_histogram, p.nnz_histogram);
  EXPECT_EQ(r.value().rank_bands, p.rank_bands);
}

TEST(SparsityProfileTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseSparsityProfileJson("").ok());
  EXPECT_FALSE(ParseSparsityProfileJson("{}").ok());  // missing dimension
  EXPECT_FALSE(ParseSparsityProfileJson("{\"dimension\": 4, \"bogus\": 1}").ok());
  EXPECT_FALSE(ParseSparsityProfileJson("{\"dimension\": 4} extra").ok());
  // Structural invariants: overlapping bands, masses not summing to 1.
  SparsityProfile p = TinyProfile();
  p.rank_bands[1].rank_lo = 4;
  EXPECT_FALSE(p.Validate().ok());
  p = TinyProfile();
  p.nnz_histogram[0].mass = 0.25;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(SparsityProfileTest, ReplayIsDeterministicAndMatchesShape) {
  const SparsityProfile p = TinyProfile();
  SparsityReplayGen a(p, 11), b(p, 11);
  int positives = 0;
  uint64_t head_occurrences = 0, occurrences = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const Example ea = a.Next();
    const Example eb = b.Next();
    ASSERT_EQ(ea.x, eb.x);
    ASSERT_EQ(ea.y, eb.y);
    ASSERT_TRUE(ea.Validate().ok());
    ASSERT_GE(ea.x.nnz(), 2u);
    ASSERT_LE(ea.x.nnz(), 16u);
    positives += ea.y > 0;
    for (size_t j = 0; j < ea.x.nnz(); ++j) {
      ASSERT_LT(ea.x.index(j), p.dimension);
      ASSERT_EQ(ea.x.value(j), 1.0f);  // binary profile
      occurrences += 1;
      head_occurrences += ea.x.index(j) < 64;
    }
  }
  EXPECT_NEAR(static_cast<double>(positives) / n, 0.25, 0.03);
  // The head band holds 0.6 of the occurrence mass, minus what rejection
  // sampling redistributes when a head feature repeats within an example.
  EXPECT_NEAR(static_cast<double>(head_occurrences) / occurrences, 0.6, 0.08);
}

TEST(SparsityProfileTest, MeasureRoundTripsThroughReplay) {
  // Measure a profile from generated examples, replay it, re-measure: the
  // coarse shape (dimension bound, mean nnz) should survive.
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), 5);
  std::vector<Example> examples;
  for (int i = 0; i < 2000; ++i) examples.push_back(gen.Next());
  auto measured = MeasureSparsityProfile(examples, "measured");
  ASSERT_TRUE(measured.ok()) << measured.status().ToString();
  ASSERT_TRUE(measured.value().Validate().ok());
  EXPECT_TRUE(measured.value().binary_values);

  SparsityReplayGen replay(measured.value(), 6);
  double mean_src = 0.0, mean_replay = 0.0;
  for (const Example& ex : examples) mean_src += static_cast<double>(ex.x.nnz());
  std::vector<Example> replayed;
  for (int i = 0; i < 2000; ++i) {
    replayed.push_back(replay.Next());
    mean_replay += static_cast<double>(replayed.back().x.nnz());
  }
  mean_src /= static_cast<double>(examples.size());
  mean_replay /= static_cast<double>(replayed.size());
  EXPECT_NEAR(mean_replay, mean_src, 0.25 * mean_src);
  auto remeasured = MeasureSparsityProfile(replayed, "remeasured");
  ASSERT_TRUE(remeasured.ok());
  EXPECT_LE(remeasured.value().dimension, measured.value().dimension);
}

TEST(SparsityProfileTest, CommittedRcv1ProfileLoadsAndValidates) {
  auto r = LoadSparsityProfile("bench/profiles/rcv1_sparsity.json");
  if (!r.ok()) {
    // ctest runs from the build tree; fall back to the source-relative path.
    r = LoadSparsityProfile("../bench/profiles/rcv1_sparsity.json");
  }
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().dimension, 47236u);
  ASSERT_TRUE(r.value().Validate().ok());
  SparsityReplayGen replay(r.value(), 3);
  double mean = 0.0;
  for (int i = 0; i < 500; ++i) mean += static_cast<double>(replay.Next().x.nnz());
  mean /= 500.0;
  EXPECT_NEAR(mean, 74.0, 12.0);  // the committed histogram's mean is ~74
}

TEST(CorpusGenTest, DocumentBoundariesOccur) {
  CorpusGenerator gen(4096, 4, 23, 1.05, /*mean_doc_length=*/50.0);
  int boundaries = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    bool boundary = false;
    gen.Next(&boundary);
    boundaries += boundary;
  }
  // Expected ~ n/50 boundaries.
  EXPECT_NEAR(boundaries, n / 50, n / 200);
}

}  // namespace
}  // namespace wmsketch
