// Tests for the stream substrate: sparse vectors, LIBSVM parsing with
// failure injection, reservoir sampling, and the sliding pair window.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "stream/libsvm_io.h"
#include "stream/reservoir.h"
#include "stream/sparse_vector.h"
#include "stream/window.h"
#include "util/random.h"

namespace wmsketch {
namespace {

// ------------------------------------------------------------ SparseVector

TEST(SparseVectorTest, OneHot) {
  const SparseVector v = SparseVector::OneHot(7, 2.0f);
  EXPECT_EQ(v.nnz(), 1u);
  EXPECT_EQ(v.index(0), 7u);
  EXPECT_EQ(v.value(0), 2.0f);
  EXPECT_TRUE(v.Validate().ok());
}

TEST(SparseVectorTest, FromUnsortedSortsAndMerges) {
  auto r = SparseVector::FromUnsorted({{5, 1.0f}, {2, 2.0f}, {5, 3.0f}, {1, -1.0f}});
  ASSERT_TRUE(r.ok());
  const SparseVector& v = r.value();
  ASSERT_EQ(v.nnz(), 3u);
  EXPECT_EQ(v.index(0), 1u);
  EXPECT_EQ(v.index(1), 2u);
  EXPECT_EQ(v.index(2), 5u);
  EXPECT_EQ(v.value(2), 4.0f);  // merged duplicates
  EXPECT_TRUE(v.Validate().ok());
}

TEST(SparseVectorTest, FromUnsortedDropsCancellations) {
  auto r = SparseVector::FromUnsorted({{3, 1.5f}, {3, -1.5f}, {4, 1.0f}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().nnz(), 1u);
  EXPECT_EQ(r.value().index(0), 4u);
}

TEST(SparseVectorTest, FromUnsortedRejectsNonFinite) {
  EXPECT_FALSE(SparseVector::FromUnsorted({{1, std::nanf("")}}).ok());
  EXPECT_FALSE(SparseVector::FromUnsorted({{1, INFINITY}}).ok());
}

TEST(SparseVectorTest, ValidateRejectsUnsortedAndZeros) {
  EXPECT_FALSE(SparseVector({3, 1}, {1.0f, 1.0f}).Validate().ok());
  EXPECT_FALSE(SparseVector({1, 1}, {1.0f, 1.0f}).Validate().ok());
  EXPECT_FALSE(SparseVector({1, 2}, {1.0f, 0.0f}).Validate().ok());
  EXPECT_TRUE(SparseVector({}, {}).Validate().ok());  // empty is valid
}

TEST(SparseVectorTest, NormsAndNormalize) {
  SparseVector v({0, 3}, {3.0f, -4.0f});
  EXPECT_DOUBLE_EQ(v.L1Norm(), 7.0);
  EXPECT_DOUBLE_EQ(v.L2Norm(), 5.0);
  v.NormalizeL1();
  EXPECT_NEAR(v.L1Norm(), 1.0, 1e-7);
  SparseVector u({1}, {2.0f});
  u.NormalizeL2();
  EXPECT_NEAR(u.L2Norm(), 1.0, 1e-7);
  SparseVector empty;
  empty.NormalizeL1();  // no-op, no crash
  EXPECT_EQ(empty.nnz(), 0u);
}

TEST(SparseVectorTest, DotAgainstDense) {
  const SparseVector v({0, 2}, {2.0f, 3.0f});
  const std::vector<float> dense = {1.0f, 10.0f, -1.0f};
  EXPECT_DOUBLE_EQ(v.Dot(dense), 2.0 - 3.0);
}

TEST(ExampleTest, ValidateLabelDomain) {
  Example good{SparseVector::OneHot(1), 1};
  EXPECT_TRUE(good.Validate().ok());
  Example bad{SparseVector::OneHot(1), 0};
  EXPECT_FALSE(bad.Validate().ok());
}

// ----------------------------------------------------------------- LIBSVM

TEST(LibsvmTest, ParsesWellFormedLine) {
  auto r = ParseLibsvmLine("+1 1:0.5 7:2 12:-3.5");
  ASSERT_TRUE(r.ok());
  const Example& ex = r.value();
  EXPECT_EQ(ex.y, 1);
  ASSERT_EQ(ex.x.nnz(), 3u);
  EXPECT_EQ(ex.x.index(0), 0u);  // shifted to 0-based
  EXPECT_EQ(ex.x.value(2), -3.5f);
}

TEST(LibsvmTest, LabelConventions) {
  EXPECT_EQ(ParseLibsvmLine("1 1:1").value().y, 1);
  EXPECT_EQ(ParseLibsvmLine("-1 1:1").value().y, -1);
  EXPECT_EQ(ParseLibsvmLine("0 1:1").value().y, -1);  // 0/1 convention
}

TEST(LibsvmTest, CommentsAndWhitespaceTolerated) {
  auto r = ParseLibsvmLine("  +1   3:1.5   # trailing comment\r");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().x.nnz(), 1u);
}

TEST(LibsvmTest, FailureInjection) {
  EXPECT_FALSE(ParseLibsvmLine("").ok());                 // empty
  EXPECT_FALSE(ParseLibsvmLine("2 1:1").ok());            // bad label
  EXPECT_FALSE(ParseLibsvmLine("+1 x:1").ok());           // bad index
  EXPECT_FALSE(ParseLibsvmLine("+1 1:abc").ok());         // bad value
  EXPECT_FALSE(ParseLibsvmLine("+1 1:nan").ok());         // non-finite
  EXPECT_FALSE(ParseLibsvmLine("+1 0:1").ok());           // 0 in 1-based
  EXPECT_FALSE(ParseLibsvmLine("+1 :5").ok());            // empty index
  EXPECT_FALSE(ParseLibsvmLine("+1 5:").ok());            // empty value
  EXPECT_FALSE(ParseLibsvmLine("+1 4294967297:1").ok());  // > 32-bit
}

TEST(LibsvmTest, RejectsNonMonotoneIndices) {
  // Duplicate and out-of-order indices are reported, not silently repaired:
  // the strict contract names the offending token.
  auto dup = ParseLibsvmLine("+1 3:1.0 3:2.0");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos)
      << dup.status().ToString();
  EXPECT_NE(dup.status().message().find("3:2.0"), std::string::npos)
      << dup.status().ToString();
  auto ooo = ParseLibsvmLine("+1 7:1.0 2:2.0");
  ASSERT_FALSE(ooo.ok());
  EXPECT_NE(ooo.status().message().find("out-of-order"), std::string::npos)
      << ooo.status().ToString();
  EXPECT_NE(ooo.status().message().find("2:2.0"), std::string::npos)
      << ooo.status().ToString();
}

TEST(LibsvmTest, RejectsTrailingJunk) {
  EXPECT_FALSE(ParseLibsvmLine("+1 1:1.0 junk").ok());     // bare token
  EXPECT_FALSE(ParseLibsvmLine("+1 1:1.0 2:3.5xy").ok());  // junk glued to value
  EXPECT_FALSE(ParseLibsvmLine("+1 1:1.0 2q:3.5").ok());   // junk glued to index
  EXPECT_FALSE(ParseLibsvmLine("+1 1:1.0 -1").ok());       // stray second label
}

TEST(LibsvmTest, ExplicitZerosValidatedThenDropped) {
  // A zero value still participates in the monotonicity check but is not
  // stored (sparse learners only see nonzeros).
  auto r = ParseLibsvmLine("+1 1:1.0 2:0 5:2.0");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().x.nnz(), 2u);
  EXPECT_EQ(r.value().x.index(1), 4u);
  EXPECT_FALSE(ParseLibsvmLine("+1 2:0 2:1.0").ok());  // dup behind a zero
}

TEST(LibsvmTest, GzipPassthroughReadsCompressedFiles) {
  const std::string plain = std::filesystem::temp_directory_path() / "wms_libsvm_gz_test.txt";
  const std::string gz = plain + ".gz";
  {
    std::ofstream out(plain);
    out << "+1 1:0.5 3:-2\n-1 2:1.25\n";
  }
  if (std::system(("gzip -f " + plain).c_str()) != 0) {
    GTEST_SKIP() << "gzip tool unavailable";
  }
  auto r = ReadLibsvmFile(gz);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0].x, SparseVector({0, 2}, {0.5f, -2.0f}));
  EXPECT_EQ(r.value()[1].y, -1);
  std::remove(gz.c_str());
  // A missing .gz surfaces gzip's failure as an error, not an empty dataset.
  EXPECT_FALSE(ReadLibsvmFile("/nonexistent/path/xyz.gz").ok());
}

TEST(LibsvmTest, TruncatedGzipSurfacesDecompressorFailure) {
  // A torn .gz must fail loudly with the decompressor's exit status — EOF on
  // the pipe alone would silently accept a partial dataset as complete.
  const std::string plain =
      std::filesystem::temp_directory_path() / "wms_libsvm_gz_trunc.txt";
  const std::string gz = plain + ".gz";
  {
    std::ofstream out(plain);
    for (int i = 0; i < 64; ++i) out << "+1 1:0.5 3:-2\n";
  }
  if (std::system(("gzip -f " + plain).c_str()) != 0) {
    GTEST_SKIP() << "gzip tool unavailable";
  }
  // Keep only the member header: gzip decodes nothing and exits nonzero.
  std::string head(10, '\0');
  {
    std::ifstream in(gz, std::ios::binary);
    ASSERT_TRUE(in.read(head.data(), static_cast<std::streamsize>(head.size())).good());
  }
  {
    std::ofstream out(gz, std::ios::binary | std::ios::trunc);
    out.write(head.data(), static_cast<std::streamsize>(head.size()));
  }
  auto r = ReadLibsvmFile(gz);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_NE(r.status().message().find("truncated or corrupt"), std::string::npos)
      << r.status().ToString();
  std::remove(gz.c_str());
}

TEST(LibsvmTest, ZeroBasedMode) {
  auto r = ParseLibsvmLine("+1 0:1.0 5:2.0", /*one_based=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().x.index(0), 0u);
  EXPECT_EQ(r.value().x.index(1), 5u);
}

TEST(LibsvmTest, RoundTripFile) {
  const std::string path = std::filesystem::temp_directory_path() / "wms_libsvm_test.txt";
  std::vector<Example> examples;
  examples.push_back(Example{SparseVector({0, 4}, {1.0f, -2.0f}), 1});
  examples.push_back(Example{SparseVector({2}, {0.5f}), -1});
  ASSERT_TRUE(WriteLibsvmFile(path, examples).ok());
  auto r = ReadLibsvmFile(path);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0].x, examples[0].x);
  EXPECT_EQ(r.value()[1].y, -1);
  std::remove(path.c_str());
}

TEST(LibsvmTest, FileErrorsSurfaceLineNumbers) {
  const std::string path = std::filesystem::temp_directory_path() / "wms_libsvm_bad.txt";
  {
    std::ofstream out(path);
    out << "+1 1:1\n# comment\n\n+1 bogus\n";
  }
  auto r = ReadLibsvmFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(":4:"), std::string::npos) << r.status().ToString();
  std::remove(path.c_str());
  EXPECT_FALSE(ReadLibsvmFile("/nonexistent/path/xyz").ok());
}

// -------------------------------------------------------------- Reservoir

TEST(ReservoirTest, FillsToCapacityThenSamples) {
  ReservoirSample<uint32_t> res(4, 1);
  EXPECT_TRUE(res.empty());
  for (uint32_t i = 0; i < 4; ++i) res.Add(i);
  EXPECT_EQ(res.size(), 4u);
  for (uint32_t i = 4; i < 100; ++i) res.Add(i);
  EXPECT_EQ(res.size(), 4u);
  EXPECT_EQ(res.count(), 100u);
}

TEST(ReservoirTest, UniformInclusionProbability) {
  // Each of 100 stream items should land in a 10-slot reservoir w.p. 0.1.
  const int trials = 3000;
  std::vector<int> inclusion(100, 0);
  for (int t = 0; t < trials; ++t) {
    ReservoirSample<uint32_t> res(10, static_cast<uint64_t>(t) + 1);
    for (uint32_t i = 0; i < 100; ++i) res.Add(i);
    for (const uint32_t item : res.items()) ++inclusion[item];
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(static_cast<double>(inclusion[i]) / trials, 0.1, 0.035) << "item " << i;
  }
}

TEST(ReservoirTest, SampleDrawsFromContents) {
  ReservoirSample<uint32_t> res(3, 5);
  res.Add(11);
  res.Add(22);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const uint32_t s = res.Sample(rng);
    EXPECT_TRUE(s == 11 || s == 22);
  }
}

// ----------------------------------------------------------------- Window

TEST(WindowTest, PairsWithinSpanOnly) {
  SlidingWindowPairs window(3);  // pairs with the 2 preceding tokens
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  const auto cb = [&](uint32_t u, uint32_t v) { pairs.emplace_back(u, v); };
  window.Push(1, cb);
  window.Push(2, cb);
  window.Push(3, cb);
  window.Push(4, cb);
  const std::vector<std::pair<uint32_t, uint32_t>> expected = {
      {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}};
  EXPECT_EQ(pairs, expected);
}

TEST(WindowTest, ResetStopsCrossBoundaryPairs) {
  SlidingWindowPairs window(4);
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  const auto cb = [&](uint32_t u, uint32_t v) { pairs.emplace_back(u, v); };
  window.Push(1, cb);
  window.Reset();
  window.Push(2, cb);
  ASSERT_EQ(pairs.size(), 0u);
  window.Push(3, cb);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<uint32_t, uint32_t>{2, 3}));
}

TEST(WindowTest, PaperWindowSixYieldsFivePredecessors) {
  SlidingWindowPairs window(6);
  int count = 0;
  const auto cb = [&](uint32_t, uint32_t) { ++count; };
  for (uint32_t i = 0; i < 20; ++i) window.Push(i, cb);
  // After warmup, each token pairs with 5 predecessors: 0+1+2+3+4+5*15.
  EXPECT_EQ(count, 0 + 1 + 2 + 3 + 4 + 5 * 15);
}

}  // namespace
}  // namespace wmsketch
