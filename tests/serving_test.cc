// Tests for the read-optimized serving path: the batched SIMD read methods
// (facade PredictBatch/EstimateBatch and their bitwise equivalence with the
// per-call loops), frozen ReadModels, and the RCU-style snapshot publication
// layer (ServeEvery cadence, chunked-batch boundaries, snapshot
// immutability, handle lifecycle, sharded publication at merge barriers).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "api/learner.h"
#include "datagen/classification_gen.h"
#include "engine/serving.h"
#include "engine/sharded_learner.h"
#include "util/memory_cost.h"
#include "util/random.h"

namespace wmsketch {
namespace {

std::vector<Example> MakeStream(int n, uint64_t seed) {
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), seed);
  std::vector<Example> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(gen.Next());
  return out;
}

std::vector<uint32_t> RandomFeatureIds(size_t n, uint32_t dimension, uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<uint32_t> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) ids.push_back(static_cast<uint32_t>(rng.Next() % dimension));
  return ids;
}

std::string Serialized(const Learner& learner) {
  std::ostringstream out;
  EXPECT_TRUE(SaveLearner(learner, out).ok());
  return out.str();
}

LearnerBuilder ShapeBuilder(Method m, uint32_t depth) {
  LearnerBuilder b;
  b.SetMethod(m).SetSeed(17).SetLambda(1e-6);
  if (m == Method::kFeatureHashing) {
    b.SetWidth(1024);
  } else {
    b.SetWidth(256).SetDepth(depth).SetHeapCapacity(64);
  }
  return b;
}

// ----------------------------------------------- batched read equivalence

// The batched read paths must be bit-identical to the per-call loops, for
// every plan-driven method and for depths on both sides of the median
// dispatch boundary (networks at d <= 7, rank selection at d >= 8).
TEST(BatchReadTest, PredictAndEstimateBatchBitIdenticalToLoops) {
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  const std::vector<Example> stream = MakeStream(2500, 3);
  const std::vector<uint32_t> ids = RandomFeatureIds(4096, profile.dimension, 5);

  struct Case {
    Method method;
    uint32_t depth;
  };
  const Case cases[] = {{Method::kWmSketch, 3},  {Method::kWmSketch, 9},
                        {Method::kAwmSketch, 1}, {Method::kAwmSketch, 3},
                        {Method::kFeatureHashing, 0}};
  for (const Case& c : cases) {
    Learner model = std::move(ShapeBuilder(c.method, c.depth).Build()).value();
    model.UpdateBatch(std::span<const Example>(stream.data(), 2000));
    SCOPED_TRACE(model.Name() + " d" + std::to_string(c.depth));

    const std::span<const Example> queries(stream.data() + 2000, 500);
    std::vector<double> batched;
    model.PredictBatch(queries, &batched);
    ASSERT_EQ(batched.size(), queries.size());
    for (size_t e = 0; e < queries.size(); ++e) {
      ASSERT_EQ(batched[e], model.PredictMargin(queries[e].x)) << e;
    }

    std::vector<float> estimates;
    model.EstimateBatch(ids, &estimates);
    ASSERT_EQ(estimates.size(), ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(estimates[i], model.WeightEstimate(ids[i])) << ids[i];
    }
  }
}

// Appending semantics: batch calls extend the output vectors.
TEST(BatchReadTest, BatchCallsAppend) {
  Learner model = std::move(ShapeBuilder(Method::kWmSketch, 3).Build()).value();
  const std::vector<Example> stream = MakeStream(600, 9);
  model.UpdateBatch(std::span<const Example>(stream.data(), 500));
  std::vector<double> margins{1.5};
  model.PredictBatch(std::span<const Example>(stream.data() + 500, 100), &margins);
  EXPECT_EQ(margins.size(), 101u);
  EXPECT_EQ(margins[0], 1.5);
}

// ------------------------------------------------------- frozen ReadModel

// A frozen read model must answer exactly what the live model answered at
// capture time — and keep answering it after further training.
TEST(ReadModelTest, FrozenAnswersMatchCaptureMoment) {
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  const std::vector<Example> stream = MakeStream(3000, 11);
  const std::vector<uint32_t> ids = RandomFeatureIds(512, profile.dimension, 6);
  for (const Method m :
       {Method::kWmSketch, Method::kAwmSketch, Method::kFeatureHashing}) {
    Learner model = std::move(ShapeBuilder(m, m == Method::kAwmSketch ? 1 : 3).Build())
                        .value();
    model.UpdateBatch(std::span<const Example>(stream.data(), 1500));
    const std::unique_ptr<const ReadModel> frozen = model.impl().MakeReadModel();

    std::vector<double> live_margins;
    std::vector<float> live_estimates;
    const std::span<const Example> queries(stream.data() + 1500, 300);
    for (const Example& ex : queries) live_margins.push_back(model.PredictMargin(ex.x));
    for (const uint32_t id : ids) live_estimates.push_back(model.WeightEstimate(id));

    // Train past the capture: frozen answers must not move.
    model.UpdateBatch(std::span<const Example>(stream.data() + 1800, 1200));
    std::vector<double> frozen_margins(queries.size());
    frozen->PredictBatch(queries, frozen_margins.data());
    std::vector<float> frozen_estimates(ids.size());
    frozen->EstimateBatch(ids, frozen_estimates.data());
    for (size_t e = 0; e < queries.size(); ++e) {
      ASSERT_EQ(frozen_margins[e], live_margins[e]) << model.Name() << " @" << e;
      ASSERT_EQ(frozen->PredictMargin(queries[e].x), live_margins[e]);
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(frozen_estimates[i], live_estimates[i]) << model.Name() << " @" << i;
      ASSERT_EQ(frozen->Estimate(ids[i]), live_estimates[i]);
    }
  }
}

// The generic (estimator-backed) read model serves the Sec. 7 baselines:
// point estimates exactly, margins as the linear functional of the frozen
// estimates (equal to the live margin up to per-term float rounding).
TEST(ReadModelTest, GenericFallbackServesBaselines) {
  const std::vector<Example> stream = MakeStream(2000, 21);
  Learner model = std::move(LearnerBuilder()
                                .SetMethod(Method::kSimpleTruncation)
                                .SetBudgetBytes(KiB(4))
                                .SetSeed(7)
                                .Build())
                      .value();
  model.UpdateBatch(stream);
  const std::unique_ptr<const ReadModel> frozen = model.impl().MakeReadModel();
  for (int e = 0; e < 200; ++e) {
    const double live = model.PredictMargin(stream[static_cast<size_t>(e)].x);
    const double served = frozen->PredictMargin(stream[static_cast<size_t>(e)].x);
    EXPECT_NEAR(served, live, 1e-5 * (1.0 + std::fabs(live))) << e;
  }
  for (uint32_t f = 0; f < 200; ++f) {
    EXPECT_EQ(frozen->Estimate(f), model.WeightEstimate(f)) << f;
  }
}

// ---------------------------------------------------- publication cadence

TEST(ServingTest, ServeEveryPublishesOnExactBoundaries) {
  constexpr uint64_t kEvery = 128;
  Learner model =
      std::move(ShapeBuilder(Method::kWmSketch, 3).ServeEvery(kEvery).Build()).value();
  EXPECT_EQ(model.serve_every(), kEvery);
  Result<ServingHandle> acquired = model.AcquireServingHandle();
  ASSERT_TRUE(acquired.ok()) << acquired.status().ToString();
  ServingHandle handle = std::move(acquired).value();

  // The initial snapshot (published at acquisition) serves immediately.
  EXPECT_EQ(handle.Refresh(), 1u);
  EXPECT_EQ(handle.steps(), 0u);

  const std::vector<Example> stream = MakeStream(1000, 31);
  for (size_t i = 0; i < stream.size(); ++i) {
    model.Update(stream[i]);
    handle.Refresh();
    // The reader always sees the last completed boundary: staleness in
    // updates is bounded by kEvery.
    EXPECT_EQ(handle.steps(), (model.steps() / kEvery) * kEvery);
    EXPECT_LT(model.steps() - handle.steps(), kEvery);
  }
  EXPECT_EQ(handle.version(), 1u + model.steps() / kEvery);
}

TEST(ServingTest, UpdateBatchChunksAtBoundariesAndStaysBitIdentical) {
  constexpr uint64_t kEvery = 256;
  const std::vector<Example> stream = MakeStream(1000, 41);

  Learner plain = std::move(ShapeBuilder(Method::kAwmSketch, 1).Build()).value();
  plain.UpdateBatch(stream);

  Learner served =
      std::move(ShapeBuilder(Method::kAwmSketch, 1).ServeEvery(kEvery).Build()).value();
  ServingHandle handle = std::move(served.AcquireServingHandle()).value();
  std::vector<double> margins;
  served.UpdateBatch(stream, &margins);
  EXPECT_EQ(margins.size(), stream.size());

  // Chunking at publish boundaries must not change the model.
  EXPECT_EQ(Serialized(served), Serialized(plain));
  // 1000 updates with K=256: published at 0 (acquire), 256, 512, 768.
  handle.Refresh();
  EXPECT_EQ(handle.steps(), 768u);
  EXPECT_EQ(handle.version(), 4u);
}

// A merge sums step counts, jumping steps() past the next publish boundary;
// the chunked UpdateBatch must catch up (publish promptly, re-anchor the
// cadence) instead of wrapping its chunk arithmetic and skipping
// publication for the whole batch.
TEST(ServingTest, MergeJumpingPastBoundaryKeepsStalenessBounded) {
  constexpr uint64_t kEvery = 200;
  LearnerBuilder b = ShapeBuilder(Method::kWmSketch, 3);
  Learner served = std::move(b.ServeEvery(kEvery).Build()).value();
  ServingHandle handle = std::move(served.AcquireServingHandle()).value();

  Learner peer = std::move(ShapeBuilder(Method::kWmSketch, 3).Build()).value();
  peer.UpdateBatch(MakeStream(1000, 91));
  ASSERT_TRUE(served.Merge(peer).ok());  // steps jump 0 -> 1000, past 200

  const std::vector<Example> stream = MakeStream(500, 92);
  served.UpdateBatch(stream);
  handle.Refresh();
  // Catch-up publish at 1000 (+ boundary publishes at 1200 and 1400): the
  // reader is never more than kEvery updates behind.
  EXPECT_EQ(handle.steps(), 1400u);
  EXPECT_LT(served.steps() - handle.steps(), kEvery);
}

TEST(ServingTest, ExplicitPublishAndPinnedSnapshotImmutability) {
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  Learner model = std::move(ShapeBuilder(Method::kWmSketch, 3).Build()).value();
  const std::vector<Example> stream = MakeStream(2000, 51);
  model.UpdateBatch(std::span<const Example>(stream.data(), 1000));

  ServingHandle handle = std::move(model.AcquireServingHandle()).value();
  handle.Refresh();
  EXPECT_EQ(handle.steps(), 1000u);

  const std::vector<uint32_t> ids = RandomFeatureIds(64, profile.dimension, 8);
  std::vector<float> before(ids.size());
  handle.EstimateBatch(ids, before.data());

  // Train on without publishing: the handle keeps serving version 1 bit-
  // for-bit (ServeEvery is 0 — only explicit publication advances it).
  model.UpdateBatch(std::span<const Example>(stream.data() + 1000, 1000));
  std::vector<float> still(ids.size());
  handle.EstimateBatch(ids, still.data());
  EXPECT_EQ(handle.version(), 1u);
  for (size_t i = 0; i < ids.size(); ++i) ASSERT_EQ(still[i], before[i]);

  // Explicit publication advances the served version and the answers.
  model.PublishServingSnapshot();
  EXPECT_EQ(handle.Refresh(), 2u);
  EXPECT_EQ(handle.steps(), 2000u);
  std::vector<float> after(ids.size());
  handle.EstimateBatch(ids, after.data());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(after[i], model.WeightEstimate(ids[i]));
  }
}

TEST(ServingTest, HandleTopKMatchesPublishedModel) {
  Learner model = std::move(ShapeBuilder(Method::kAwmSketch, 1).Build()).value();
  model.UpdateBatch(MakeStream(3000, 61));
  ServingHandle handle = std::move(model.AcquireServingHandle()).value();
  const std::vector<FeatureWeight> served = handle.TopK(16);
  const std::vector<FeatureWeight> live = model.TopK(16);
  ASSERT_EQ(served.size(), live.size());
  for (size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].feature, live[i].feature);
    EXPECT_EQ(served[i].weight, live[i].weight);
  }
}

TEST(ServingTest, HandleSlotsExhaustAndRecycle) {
  Learner model = std::move(ShapeBuilder(Method::kFeatureHashing, 0).Build()).value();
  std::vector<ServingHandle> handles;
  for (size_t i = 0; i < ServingState::kMaxHandles; ++i) {
    Result<ServingHandle> h = model.AcquireServingHandle();
    ASSERT_TRUE(h.ok()) << i;
    handles.push_back(std::move(h).value());
  }
  EXPECT_EQ(model.AcquireServingHandle().status().code(),
            StatusCode::kFailedPrecondition);
  handles.pop_back();  // releasing a handle frees its slot
  EXPECT_TRUE(model.AcquireServingHandle().ok());
}

TEST(ServingTest, HandlesOutliveTheLearner) {
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  const std::vector<uint32_t> ids = RandomFeatureIds(32, profile.dimension, 10);
  std::vector<float> expected(ids.size());
  ServingHandle handle = [&] {
    Learner model = std::move(ShapeBuilder(Method::kWmSketch, 3).Build()).value();
    model.UpdateBatch(MakeStream(1500, 71));
    ServingHandle h = std::move(model.AcquireServingHandle()).value();
    h.EstimateBatch(ids, expected.data());
    return h;
  }();  // learner destroyed here
  std::vector<float> after(ids.size());
  handle.EstimateBatch(ids, after.data());
  EXPECT_EQ(handle.version(), 1u);
  for (size_t i = 0; i < ids.size(); ++i) ASSERT_EQ(after[i], expected[i]);
}

// ------------------------------------------------------- sharded serving

TEST(ServingTest, ShardedPublishesAtBarriersAndCollapse) {
  const std::vector<Example> stream = MakeStream(4000, 81);
  LearnerBuilder builder = ShapeBuilder(Method::kAwmSketch, 1);
  ShardedLearner engine =
      std::move(builder.Shards(2).ServeEvery(1000).BuildSharded()).value();
  Result<ServingHandle> acquired = engine.AcquireServingHandle();
  ASSERT_TRUE(acquired.ok()) << acquired.status().ToString();
  ServingHandle handle = std::move(acquired).value();
  EXPECT_GE(handle.Refresh(), 1u);  // acquisition barrier published

  ASSERT_TRUE(engine.PushBatch(stream).ok());
  handle.Refresh();
  EXPECT_GE(handle.steps(), 3000u);  // ServeEvery(1000) barriers fired

  uint64_t last_version = handle.version();
  Learner collapsed = std::move(engine.Collapse()).value();
  EXPECT_GT(handle.Refresh(), last_version);
  EXPECT_EQ(handle.steps(), stream.size());  // final snapshot: all examples

  // The handle serves the collapsed model's state.
  for (uint32_t f = 0; f < 64; ++f) {
    ASSERT_EQ(handle.Estimate(f), collapsed.WeightEstimate(f)) << f;
  }
  // The collapsed learner inherited the serving state: further training
  // keeps publishing on the ServeEvery cadence.
  collapsed.UpdateBatch(MakeStream(1200, 82));
  handle.Refresh();
  EXPECT_GT(handle.steps(), stream.size());

  EXPECT_EQ(engine.AcquireServingHandle().status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace wmsketch
