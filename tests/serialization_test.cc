// Tests for binary snapshot serialization of the WM- and AWM-Sketches:
// round-trip fidelity (estimates, predictions, and continued training agree
// exactly), plus corruption/failure injection.

#include <gtest/gtest.h>

#include <sstream>

#include "core/serialization.h"
#include "util/random.h"

namespace wmsketch {
namespace {

LearnerOptions Opts(uint64_t seed = 42) {
  LearnerOptions opts;
  opts.lambda = 1e-4;
  opts.rate = LearningRate::Constant(0.2);
  opts.seed = seed;
  return opts;
}

template <typename Sketch>
void Train(Sketch& sketch, uint64_t stream_seed, int n) {
  Rng rng(stream_seed);
  for (int i = 0; i < n; ++i) {
    const uint32_t f = static_cast<uint32_t>(rng.Bounded(2048));
    sketch.Update(SparseVector::OneHot(f), (f % 3 == 0) ? 1 : -1);
  }
}

TEST(SerializationTest, WmRoundTripPreservesEstimates) {
  WmSketch original(WmSketchConfig{256, 3, 32}, Opts());
  Train(original, 7, 3000);

  std::stringstream buffer;
  ASSERT_TRUE(SaveWmSketch(original, buffer).ok());
  Result<WmSketch> restored = LoadWmSketch(buffer, Opts());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  for (uint32_t f = 0; f < 2048; ++f) {
    EXPECT_EQ(restored.value().WeightEstimate(f), original.WeightEstimate(f)) << f;
  }
  EXPECT_EQ(restored.value().steps(), original.steps());
  const auto top_a = original.TopK(16);
  const auto top_b = restored.value().TopK(16);
  ASSERT_EQ(top_a.size(), top_b.size());
  for (size_t i = 0; i < top_a.size(); ++i) EXPECT_EQ(top_a[i], top_b[i]);
}

TEST(SerializationTest, WmContinuedTrainingAgreesExactly) {
  // Snapshot mid-stream; training the restored copy on the remaining stream
  // must match training the original straight through (state completeness).
  WmSketch straight(WmSketchConfig{128, 3, 16}, Opts(9));
  Train(straight, 11, 2000);

  WmSketch first_half(WmSketchConfig{128, 3, 16}, Opts(9));
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t f = static_cast<uint32_t>(rng.Bounded(2048));
    first_half.Update(SparseVector::OneHot(f), (f % 3 == 0) ? 1 : -1);
  }
  std::stringstream buffer;
  ASSERT_TRUE(SaveWmSketch(first_half, buffer).ok());
  Result<WmSketch> resumed = LoadWmSketch(buffer, Opts(9));
  ASSERT_TRUE(resumed.ok());
  for (int i = 1000; i < 2000; ++i) {
    const uint32_t f = static_cast<uint32_t>(rng.Bounded(2048));
    resumed.value().Update(SparseVector::OneHot(f), (f % 3 == 0) ? 1 : -1);
  }
  for (uint32_t f = 0; f < 2048; ++f) {
    EXPECT_EQ(resumed.value().WeightEstimate(f), straight.WeightEstimate(f)) << f;
  }
}

TEST(SerializationTest, AwmRoundTripPreservesEverything) {
  AwmSketch original(AwmSketchConfig{256, 1, 64}, Opts(13));
  Train(original, 15, 4000);

  std::stringstream buffer;
  ASSERT_TRUE(SaveAwmSketch(original, buffer).ok());
  Result<AwmSketch> restored = LoadAwmSketch(buffer, Opts(13));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored.value().active_set_size(), original.active_set_size());
  for (uint32_t f = 0; f < 2048; ++f) {
    EXPECT_EQ(restored.value().WeightEstimate(f), original.WeightEstimate(f)) << f;
    EXPECT_EQ(restored.value().InActiveSet(f), original.InActiveSet(f)) << f;
  }
  // Identical predictions on fresh inputs.
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const SparseVector x = SparseVector::OneHot(static_cast<uint32_t>(rng.Bounded(2048)));
    EXPECT_EQ(restored.value().PredictMargin(x), original.PredictMargin(x));
  }
}

TEST(SerializationTest, AwmContinuedTrainingAgreesExactly) {
  AwmSketch straight(AwmSketchConfig{128, 1, 32}, Opts(19));
  Train(straight, 21, 2000);

  AwmSketch first_half(AwmSketchConfig{128, 1, 32}, Opts(19));
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t f = static_cast<uint32_t>(rng.Bounded(2048));
    first_half.Update(SparseVector::OneHot(f), (f % 3 == 0) ? 1 : -1);
  }
  std::stringstream buffer;
  ASSERT_TRUE(SaveAwmSketch(first_half, buffer).ok());
  Result<AwmSketch> resumed = LoadAwmSketch(buffer, Opts(19));
  ASSERT_TRUE(resumed.ok());
  for (int i = 1000; i < 2000; ++i) {
    const uint32_t f = static_cast<uint32_t>(rng.Bounded(2048));
    resumed.value().Update(SparseVector::OneHot(f), (f % 3 == 0) ? 1 : -1);
  }
  for (uint32_t f = 0; f < 2048; ++f) {
    EXPECT_EQ(resumed.value().WeightEstimate(f), straight.WeightEstimate(f)) << f;
  }
}

// Strips the checksummed envelope from a Save* stream, returning the raw
// payload — i.e. exactly the legacy (pre-envelope) wire bytes.
std::string Unwrap(const std::string& enveloped) {
  EXPECT_GE(enveloped.size(), snapshot::kEnvelopeHeaderBytes);
  uint32_t magic;
  std::memcpy(&magic, enveloped.data(), sizeof(magic));
  EXPECT_EQ(magic, snapshot::kEnvelopeMagic);
  return enveloped.substr(snapshot::kEnvelopeHeaderBytes);
}

TEST(SerializationTest, CorruptionRejected) {
  AwmSketch original(AwmSketchConfig{64, 1, 8}, Opts(23));
  Train(original, 25, 200);
  std::stringstream buffer;
  ASSERT_TRUE(SaveAwmSketch(original, buffer).ok());
  const std::string bytes = buffer.str();

  // Truncations at every prefix boundary must fail cleanly, never crash.
  for (const size_t cut : {0ul, 3ul, 10ul, bytes.size() / 2, bytes.size() - 1}) {
    std::stringstream cut_stream(bytes.substr(0, cut));
    EXPECT_FALSE(LoadAwmSketch(cut_stream, Opts(23)).ok()) << "cut " << cut;
  }
  // Wrong magic (a WM load of an AWM snapshot and vice versa).
  std::stringstream as_wm(bytes);
  EXPECT_EQ(LoadWmSketch(as_wm, Opts(23)).status().code(), StatusCode::kCorruption);

  // Any flipped payload byte fails the envelope checksum.
  std::string flipped = bytes;
  flipped[snapshot::kEnvelopeHeaderBytes + 9] ^= 0x40;
  std::stringstream flipped_stream(flipped);
  EXPECT_EQ(LoadAwmSketch(flipped_stream, Opts(23)).status().code(),
            StatusCode::kCorruption);

  // Corrupted shape field (width -> non-power-of-two) on the unwrapped legacy
  // bytes, where no checksum shields the loader's own validation.
  std::string bad = Unwrap(bytes);
  bad[4] = 0x03;
  std::stringstream bad_stream(bad);
  EXPECT_FALSE(LoadAwmSketch(bad_stream, Opts(23)).ok());
}

TEST(SerializationTest, SnapshotSizeIsCompact) {
  // Snapshot ≈ table bytes + heap entries + small header; no bloat.
  AwmSketch sketch(AwmSketchConfig{1024, 1, 128}, Opts(27));
  Train(sketch, 29, 2000);
  std::stringstream buffer;
  ASSERT_TRUE(SaveAwmSketch(sketch, buffer).ok());
  const size_t size = buffer.str().size();
  EXPECT_LT(size, 1024 * 4 + 128 * 8 + 128);
  EXPECT_GT(size, 1024 * 4);
}

// ----------------------------------------------------- v1 back-compat
//
// The v2 (paged) payload of a given model differs from its legacy v1 (flat)
// stream by exactly the magic and the u32 page-size field after the cell
// count, so a v1 stream can be synthesized from the unwrapped v2 payload:
// swap the magic back and cut those 4 bytes. Loaders must accept both the
// enveloped layout and the bare legacy layouts, restoring identical state.

std::string SynthesizeV1(std::string v2, uint32_t v1_magic, size_t cells_offset) {
  std::memcpy(v2.data(), &v1_magic, sizeof(v1_magic));
  v2.erase(cells_offset + sizeof(uint64_t), sizeof(uint32_t));
  return v2;
}

TEST(SerializationTest, WmFlatV1LayoutStillLoads) {
  WmSketch original(WmSketchConfig{256, 3, 32}, Opts());
  Train(original, 7, 1500);
  std::stringstream buffer;
  ASSERT_TRUE(SaveWmSketch(original, buffer).ok());
  // WM header: magic(4) width(4) depth(4) heap(8) lambda(8) seed(8) t(8)
  // scale(8) = 52 bytes before the cell count.
  std::stringstream v1(SynthesizeV1(Unwrap(buffer.str()), 0x314d5357u, 52));
  Result<WmSketch> restored = LoadWmSketch(v1, Opts());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (uint32_t f = 0; f < 2048; ++f) {
    EXPECT_EQ(restored.value().WeightEstimate(f), original.WeightEstimate(f)) << f;
  }
  EXPECT_EQ(restored.value().steps(), original.steps());
}

TEST(SerializationTest, AwmFlatV1LayoutStillLoads) {
  AwmSketch original(AwmSketchConfig{256, 1, 64}, Opts(23));
  Train(original, 13, 1500);
  std::stringstream buffer;
  ASSERT_TRUE(SaveAwmSketch(original, buffer).ok());
  // AWM header: magic(4) width(4) depth(4) heap(8) lambda(8) seed(8) t(8)
  // sketch_scale(8) heap_scale(8) = 60 bytes before the cell count.
  std::stringstream v1(SynthesizeV1(Unwrap(buffer.str()), 0x314d5741u, 60));
  Result<AwmSketch> restored = LoadAwmSketch(v1, Opts(23));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (uint32_t f = 0; f < 2048; ++f) {
    EXPECT_EQ(restored.value().WeightEstimate(f), original.WeightEstimate(f)) << f;
  }
}

TEST(SerializationTest, HashFlatV1LayoutStillLoads) {
  FeatureHashingClassifier original(1024, Opts(31));
  Train(original, 17, 1500);
  std::stringstream buffer;
  ASSERT_TRUE(SaveFeatureHashing(original, buffer).ok());
  // FHS header: magic(4) buckets(4) lambda(8) seed(8) t(8) scale(8) = 40.
  std::stringstream v1(SynthesizeV1(Unwrap(buffer.str()), 0x31534846u, 40));
  Result<FeatureHashingClassifier> restored = LoadFeatureHashing(v1, Opts(31));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (uint32_t f = 0; f < 2048; ++f) {
    EXPECT_EQ(restored.value().WeightEstimate(f), original.WeightEstimate(f)) << f;
  }
}

TEST(SerializationTest, InvalidPageSizeRejected) {
  WmSketch original(WmSketchConfig{128, 2, 16}, Opts());
  Train(original, 5, 200);
  std::stringstream buffer;
  ASSERT_TRUE(SaveWmSketch(original, buffer).ok());
  std::string bytes = Unwrap(buffer.str());
  const uint32_t bad_page = 3;  // not a power of two
  std::memcpy(bytes.data() + 52 + sizeof(uint64_t), &bad_page, sizeof(bad_page));
  std::stringstream in(bytes);
  EXPECT_EQ(LoadWmSketch(in, Opts()).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace wmsketch
