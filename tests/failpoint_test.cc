// Tests for the failpoint registry (util/failpoint.h): arm/fire/count
// semantics, WMS_FAILPOINTS env-spec parsing, and — the robustness contract
// the chaos harness depends on — a malformed spec aborting the process
// loudly instead of silently disarming the fault it was meant to inject.

#include <gtest/gtest.h>

#include <cstdlib>
#include <mutex>

#include "util/failpoint.h"

namespace wmsketch {
namespace {

using failpoint::Action;

// Parses `spec` into a fresh registry (bypassing the process-global
// singleton, which latches the env var once at first access).
void ParseSpec(const char* spec, failpoint::internal::Registry& reg) {
  ::setenv("WMS_FAILPOINTS", spec, 1);
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    failpoint::internal::ArmFromEnvLocked(reg);
  }
  ::unsetenv("WMS_FAILPOINTS");
}

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override {
    failpoint::DisarmAll();
    ::unsetenv("WMS_FAILPOINTS");
  }
};

TEST_F(FailpointTest, ArmFireAndCountExhaustion) {
  failpoint::Arm("fp:test_site", Action::kError, 2);
  EXPECT_EQ(WMS_FAILPOINT("fp:test_site"), Action::kError);
  EXPECT_EQ(WMS_FAILPOINT("fp:test_site"), Action::kError);
  // Exhausted: the site reverts to off and stops counting against the
  // armed-count fast path.
  EXPECT_EQ(WMS_FAILPOINT("fp:test_site"), Action::kOff);
  EXPECT_EQ(failpoint::ArmedCount(), 0);
}

TEST_F(FailpointTest, DisarmStopsFiring) {
  failpoint::Arm("fp:test_site", Action::kShortWrite);
  EXPECT_EQ(WMS_FAILPOINT("fp:test_site"), Action::kShortWrite);
  failpoint::Disarm("fp:test_site");
  EXPECT_EQ(WMS_FAILPOINT("fp:test_site"), Action::kOff);
}

TEST_F(FailpointTest, EnvSpecParsesActionsCountsAndSeparators) {
  failpoint::internal::Registry reg;
  ParseSpec("a=error;b=short:3,c=crash:1,d=short_write,e=off,,;", reg);
  EXPECT_EQ(reg.points.at("a").action, Action::kError);
  EXPECT_EQ(reg.points.at("a").remaining, -1);
  EXPECT_EQ(reg.points.at("b").action, Action::kShortWrite);
  EXPECT_EQ(reg.points.at("b").remaining, 3);
  EXPECT_EQ(reg.points.at("c").action, Action::kCrash);
  EXPECT_EQ(reg.points.at("d").action, Action::kShortWrite);
  EXPECT_EQ(reg.points.at("e").action, Action::kOff);
  EXPECT_EQ(reg.armed.load(), 4);  // 'e' is off, empty entries tolerated
}

using FailpointDeathTest = FailpointTest;

TEST_F(FailpointDeathTest, MalformedSpecAbortsLoudly) {
  // Each malformed entry must abort with a message naming the entry — a
  // chaos run configured with a typo must die at startup, not pass
  // vacuously with its fault silently disarmed.
  const struct {
    const char* spec;
    const char* diagnostic;
  } kBad[] = {
      {"noequals", "missing name="},
      {"=error", "missing name="},
      {"site=explode", "unknown action"},
      {"site=error:abc", "count is not an integer"},
      {"site=crash:", "count is not an integer"},
      {"good=error,site=bogus", "unknown action"},
  };
  for (const auto& bad : kBad) {
    EXPECT_DEATH(
        {
          ::setenv("WMS_FAILPOINTS", bad.spec, 1);
          failpoint::internal::Registry reg;
          std::lock_guard<std::mutex> lock(reg.mu);
          failpoint::internal::ArmFromEnvLocked(reg);
        },
        std::string("malformed WMS_FAILPOINTS entry.*") + bad.diagnostic)
        << bad.spec;
  }
}

}  // namespace
}  // namespace wmsketch
