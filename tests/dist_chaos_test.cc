// Chaos harness for the distributed training tier: every (side, failpoint
// site, action) cell of the matrix injects a fault — an I/O error, a torn
// short write, or a hard std::_Exit mid-protocol — into a real two-process
// aggregator/worker topology, then verifies the system recovers to a merged
// model **byte-identical** to the sequential single-process reference.
//
// Topology per case: the aggregator always runs in a forked child (so a
// kCrash _Exit kills only it); the worker runs in a second forked child.
// The parent (the test) orchestrates with waitpid, reforks an unarmed
// replacement after a crash — a new aggregator rebinds the same socket, a
// replacement worker retrains the same deterministic stream under the same
// worker id — and finally fetches the merged model over the wire.
//
// The failpoint registry is per-process: each child arms its own sites
// after fork(), so a worker-side fault never fires in the aggregator and
// vice versa.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "api/learner.h"
#include "datagen/classification_gen.h"
#include "dist/aggregator.h"
#include "dist/worker.h"
#include "util/failpoint.h"
#include "util/memory_cost.h"

namespace wmsketch {
namespace {

using dist::Aggregator;
using dist::AggregatorOptions;
using dist::SyncClient;
using dist::SyncClientOptions;

LearnerOptions Opts() {
  LearnerOptions opts;
  opts.lambda = 1e-4;
  opts.rate = LearningRate::Constant(0.2);
  opts.seed = 42;
  return opts;
}

Result<Learner> BuildModel() {
  return LearnerBuilder()
      .SetMethod(Method::kAwmSketch)
      .SetBudgetBytes(KiB(2))
      .SetLambda(1e-4)
      .SetLearningRate(LearningRate::Constant(0.2))
      .SetSeed(42)
      .Build();
}

// The deterministic training stream every incarnation of the worker
// reproduces exactly: phase 1 then phase 2, fixed seeds.
void TrainPhase(Learner& learner, int phase) {
  const uint64_t seed = phase == 1 ? 7 : 9;
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), seed);
  std::vector<Example> stream;
  stream.reserve(150);
  for (int i = 0; i < 150; ++i) stream.push_back(gen.Next());
  learner.UpdateBatch(stream);
}

std::string FinalModelBytes() {
  Result<Learner> built = BuildModel();
  EXPECT_TRUE(built.ok());
  Learner learner = std::move(built).value();
  TrainPhase(learner, 1);
  TrainPhase(learner, 2);
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(SaveClassifier(learner.method(), learner.impl(), out).ok());
  return std::move(out).str();
}

SyncClientOptions ChaosClientOpts(const std::string& path) {
  SyncClientOptions copts;
  copts.worker_id = 1;
  copts.socket_path = path;
  // Generous budget: a crashed aggregator needs parent-side waitpid + refork
  // before a retry can land, so the worker must outlast that window.
  copts.max_retries = 10;
  copts.base_backoff_ms = 20;
  copts.max_backoff_ms = 300;
  copts.io_timeout_ms = 2000;
  return copts;
}

constexpr int kWorkerFailExit = 42;
constexpr int kAggFailExit = 43;

// Child body: the aggregator daemon. Arms `site` (empty: none) after fork,
// binds, signals readiness on `ready_fd`, serves until shutdown.
[[noreturn]] void RunAggregatorChild(const std::string& path, const std::string& site,
                                     failpoint::Action action, int ready_fd) {
  if (!site.empty()) failpoint::Arm(site, action, 1);
  Result<Learner> ref = BuildModel();
  if (!ref.ok()) std::_Exit(kAggFailExit);
  AggregatorOptions options;
  options.config = ref.value().config();
  options.opts = Opts();
  options.io_timeout_ms = 2000;
  Result<Aggregator> created = Aggregator::Create(options);
  if (!created.ok()) std::_Exit(kAggFailExit);
  Aggregator agg = std::move(created).value();
  if (!agg.Bind(path).ok()) std::_Exit(kAggFailExit);
  const char ready = 'R';
  if (::write(ready_fd, &ready, 1) != 1) std::_Exit(kAggFailExit);
  ::close(ready_fd);
  const Status st = agg.ServeUntilShutdown();
  std::_Exit(st.ok() ? 0 : kAggFailExit);
}

// Child body: the worker. Trains phase 1, full-syncs, trains phase 2, arms
// `site` (empty: none), then syncs the delta — the armed fault fires inside
// that second sync. kError/kShortWrite must be absorbed by the retry loop;
// kCrash kills the process mid-frame.
[[noreturn]] void RunWorkerChild(const std::string& path, const std::string& site,
                                 failpoint::Action action) {
  Result<Learner> built = BuildModel();
  if (!built.ok()) std::_Exit(kWorkerFailExit);
  Learner learner = std::move(built).value();
  SyncClient client(learner.method(), ChaosClientOpts(path));
  TrainPhase(learner, 1);
  if (!client.Connect(learner.impl()).ok()) std::_Exit(kWorkerFailExit);
  if (!client.Sync(learner.impl()).ok()) std::_Exit(kWorkerFailExit);
  TrainPhase(learner, 2);
  if (!site.empty()) failpoint::Arm(site, action, 1);
  if (!client.Sync(learner.impl()).ok()) std::_Exit(kWorkerFailExit);
  std::_Exit(0);
}

// Child body: the replacement after a worker crash — retrains the full
// deterministic stream and syncs once (first contact under the same worker
// id forces a full snapshot, overwriting the dead incarnation's replica).
[[noreturn]] void RunReplacementWorkerChild(const std::string& path) {
  Result<Learner> built = BuildModel();
  if (!built.ok()) std::_Exit(kWorkerFailExit);
  Learner learner = std::move(built).value();
  TrainPhase(learner, 1);
  TrainPhase(learner, 2);
  SyncClient client(learner.method(), ChaosClientOpts(path));
  if (!client.Connect(learner.impl()).ok()) std::_Exit(kWorkerFailExit);
  if (!client.Sync(learner.impl()).ok()) std::_Exit(kWorkerFailExit);
  std::_Exit(0);
}

pid_t ForkAggregator(const std::string& path, const std::string& site,
                     failpoint::Action action) {
  int ready_pipe[2];
  EXPECT_EQ(::pipe(ready_pipe), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(ready_pipe[0]);
    RunAggregatorChild(path, site, action, ready_pipe[1]);
  }
  ::close(ready_pipe[1]);
  // Block until the child has bound the socket (or died trying).
  char byte = 0;
  (void)!::read(ready_pipe[0], &byte, 1);
  ::close(ready_pipe[0]);
  return pid;
}

int WaitFor(pid_t pid) {
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child killed by signal " << WTERMSIG(status);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

struct ChaosCase {
  const char* side;  // "worker" or "aggregator"
  const char* site;
  failpoint::Action action;
};

const char* ActionName(failpoint::Action action) {
  switch (action) {
    case failpoint::Action::kError: return "error";
    case failpoint::Action::kShortWrite: return "short";
    case failpoint::Action::kCrash: return "crash";
    default: return "off";
  }
}

class DistChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(DistChaosTest, EveryFaultSiteRecoversToByteIdenticalMergedModel) {
  const std::string reference = FinalModelBytes();
  ASSERT_FALSE(reference.empty());

  const ChaosCase kMatrix[] = {
      {"worker", "dist:send", failpoint::Action::kError},
      {"worker", "dist:send", failpoint::Action::kShortWrite},
      {"worker", "dist:send", failpoint::Action::kCrash},
      {"worker", "dist:recv", failpoint::Action::kError},
      {"worker", "dist:recv", failpoint::Action::kShortWrite},
      {"worker", "dist:recv", failpoint::Action::kCrash},
      {"aggregator", "dist:recv", failpoint::Action::kError},
      {"aggregator", "dist:recv", failpoint::Action::kShortWrite},
      {"aggregator", "dist:recv", failpoint::Action::kCrash},
      {"aggregator", "dist:frame_decode", failpoint::Action::kError},
      {"aggregator", "dist:frame_decode", failpoint::Action::kShortWrite},
      {"aggregator", "dist:frame_decode", failpoint::Action::kCrash},
      {"aggregator", "dist:merge_apply", failpoint::Action::kError},
      {"aggregator", "dist:merge_apply", failpoint::Action::kShortWrite},
      {"aggregator", "dist:merge_apply", failpoint::Action::kCrash},
  };

  int case_index = 0;
  for (const ChaosCase& c : kMatrix) {
    SCOPED_TRACE(std::string(c.side) + "/" + c.site + "/" + ActionName(c.action));
    const std::string path = "/tmp/wms_chaos_" + std::to_string(::getpid()) + "_" +
                             std::to_string(case_index++);
    ::unlink(path.c_str());

    const bool agg_side = std::string(c.side) == "aggregator";
    const bool crash = c.action == failpoint::Action::kCrash;

    pid_t agg_pid = ForkAggregator(path, agg_side ? c.site : "", c.action);
    const pid_t worker_pid = ::fork();
    if (worker_pid == 0) {
      RunWorkerChild(path, agg_side ? "" : c.site, c.action);
    }

    if (agg_side && crash) {
      // The injected _Exit kills the aggregator mid-protocol; the worker is
      // now retrying against a dead socket. Refork an unarmed aggregator on
      // the same path — the worker's re-handshake lands on a fresh session
      // and resyncs in full.
      EXPECT_EQ(WaitFor(agg_pid), failpoint::kCrashExitCode);
      agg_pid = ForkAggregator(path, "", failpoint::Action::kOff);
    }

    if (!agg_side && crash) {
      // The worker died mid-frame. The aggregator must have survived it;
      // a replacement worker under the same id retrains and overwrites.
      EXPECT_EQ(WaitFor(worker_pid), failpoint::kCrashExitCode);
      const pid_t replacement_pid = ::fork();
      if (replacement_pid == 0) RunReplacementWorkerChild(path);
      EXPECT_EQ(WaitFor(replacement_pid), 0);
    } else {
      // Error/short faults must be absorbed inside the worker's bounded
      // retry budget — the worker itself reports success.
      EXPECT_EQ(WaitFor(worker_pid), 0);
    }

    // The merged model, fetched over the wire, is byte-identical to the
    // sequential single-process reference.
    SyncClient fetcher(Method::kAwmSketch, ChaosClientOpts(path));
    Result<std::string> merged = fetcher.FetchMergedBytes();
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(merged.value(), reference);

    EXPECT_TRUE(fetcher.SendShutdown().ok());
    EXPECT_EQ(WaitFor(agg_pid), 0);
    ::unlink(path.c_str());
  }
}

}  // namespace
}  // namespace wmsketch
