#!/usr/bin/env python3
"""Tier-1 regression tests for tools/lint/wms_lint.py.

Each tests/lint_fixtures/<case>/ directory is a miniature source tree laid
out like the real repo (src/core/..., tools/lint/allowlist.json, ...). The
known-bad trees must keep producing their findings and the known-good trees
must stay clean, so a linter regression — a rule silently going blind, a
broken allowlist ratchet, a suppression bypass — fails ctest, not just CI.

The final test runs every rule over the real repository: the tree itself
must hold the invariants the linter enforces.
"""

import os
import subprocess
import sys
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO, "tools", "lint", "wms_lint.py")
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")


def run_lint(*args):
    return subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True, text=True, timeout=120)


def fixture(name):
    return os.path.join(FIXTURES, name)


class HashOnceRule(unittest.TestCase):
    def test_good_tree_is_clean(self):
        r = run_lint("--rule", "hash-once", "--engine", "token",
                     "--root", fixture("hash_once_good"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_bad_tree_fails_with_site(self):
        r = run_lint("--rule", "hash-once", "--engine", "token",
                     "--root", fixture("hash_once_bad"))
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("src/core/bad_update.cc:10", r.stdout)
        self.assertIn("[hash-once]", r.stdout)

    def test_allowlisted_site_with_reason_passes(self):
        r = run_lint("--rule", "hash-once", "--engine", "token",
                     "--root", fixture("hash_once_allowlisted"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_ratchet_catches_new_site_beyond_audit(self):
        r = run_lint("--rule", "hash-once", "--engine", "token",
                     "--root", fixture("hash_once_ratchet"))
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("exceed the audited allowlist ratchet", r.stdout)

    def test_inline_suppression_with_reason_passes(self):
        r = run_lint("--rule", "hash-once", "--engine", "token",
                     "--root", fixture("hash_once_suppressed"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_libclang_engine_never_silently_skips(self):
        # With or without python libclang installed, an explicit
        # --engine libclang run must still detect the bad tree (via the
        # libclang engine or the loud token fallback).
        r = run_lint("--rule", "hash-once", "--engine", "libclang",
                     "--root", fixture("hash_once_bad"))
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("[hash-once]", r.stdout)


class CowDirtyRule(unittest.TestCase):
    def test_marked_writes_pass(self):
        r = run_lint("--rule", "cow-dirty", "--engine", "token",
                     "--root", fixture("cow_dirty_good"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_unmarked_writes_fail_per_sink_kind(self):
        r = run_lint("--rule", "cow-dirty", "--engine", "token",
                     "--root", fixture("cow_dirty_bad"))
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("write through Row(...)[...]", r.stdout)
        self.assertIn("table sweep simd::ScaleTable", r.stdout)
        self.assertIn("write through table alias 'tbl'", r.stdout)
        # one finding per sink: direct write, sweep, and alias write
        self.assertEqual(r.stdout.count("[cow-dirty]"), 3, r.stdout)


class SimdPairedRule(unittest.TestCase):
    def test_registered_kernel_passes(self):
        r = run_lint("--rule", "simd-paired", "--engine", "token",
                     "--root", fixture("simd_paired_good"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_unregistered_kernel_fails(self):
        r = run_lint("--rule", "simd-paired", "--engine", "token",
                     "--root", fixture("simd_paired_bad"))
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("UnregisteredKernelAvx2", r.stdout)
        self.assertNotIn("DemoKernelAvx2", r.stdout)

    def test_stale_table_entry_fails(self):
        r = run_lint("--rule", "simd-paired", "--engine", "token",
                     "--root", fixture("simd_paired_stale"))
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("RemovedKernelAvx2", r.stdout)
        self.assertIn("stale entry", r.stdout)

    def test_sse42_kernels_are_covered_too(self):
        # target("sse4.2") kernels (src/util/crc32c.cc) need table entries
        # exactly like the AVX ones.
        r = run_lint("--rule", "simd-paired", "--engine", "token",
                     "--root", fixture("simd_paired_sse42"))
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("UnregisteredCrcSse42", r.stdout)
        self.assertNotIn("Crc32cDemoSse42", r.stdout)


class CheckedIoRule(unittest.TestCase):
    def test_helper_based_io_is_clean(self):
        r = run_lint("--rule", "checked-io", "--engine", "token",
                     "--root", fixture("checked_io_good"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_raw_stream_calls_fail_per_site(self):
        r = run_lint("--rule", "checked-io", "--engine", "token",
                     "--root", fixture("checked_io_bad"))
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("src/engine/checkpoint.cc:8", r.stdout)
        self.assertIn("raw stream .write(", r.stdout)
        self.assertIn("raw stream .read(", r.stdout)
        self.assertEqual(r.stdout.count("[checked-io]"), 2, r.stdout)

    def test_inline_suppression_with_reason_passes(self):
        r = run_lint("--rule", "checked-io", "--engine", "token",
                     "--root", fixture("checked_io_suppressed"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


class RealTree(unittest.TestCase):
    def test_repository_holds_all_invariants(self):
        r = run_lint("--all", "--root", REPO)
        self.assertEqual(r.returncode, 0,
                         "the tree violates its own lint rules:\n" +
                         r.stdout + r.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
