// End-to-end integration tests: every budgeted method trained on the same
// synthetic benchmark stream as the uncompressed reference, checked for the
// paper's qualitative claims — recovery ordering, error-rate ordering,
// budget accounting, determinism — plus the multiclass extension.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/budget.h"
#include "core/multiclass.h"
#include "datagen/classification_gen.h"
#include "linear/dense_linear_model.h"
#include "metrics/online_error.h"
#include "metrics/recovery.h"
#include "util/memory_cost.h"

namespace wmsketch {
namespace {

LearnerOptions BenchOptions(double lambda, uint64_t seed) {
  LearnerOptions opts;
  opts.lambda = lambda;
  opts.rate = LearningRate::InverseSqrt(0.1);  // the paper's η0 = 0.1
  opts.seed = seed;
  return opts;
}

// Trains one classifier per method plus the dense reference on the identical
// stream; returns (per-method RelErr@K, per-method error rate, LR error).
struct SweepResult {
  std::vector<double> rel_err;
  std::vector<double> error_rate;
  double lr_error_rate;
};

SweepResult RunSweep(const ClassificationProfile& profile, size_t budget, size_t k,
                     uint64_t seed, int examples) {
  const LearnerOptions opts = BenchOptions(1e-6, seed);
  std::vector<std::unique_ptr<BudgetedClassifier>> models;
  for (const Method m : AllMethods()) {
    models.push_back(MakeClassifier(DefaultConfig(m, budget).value(), opts));
  }
  DenseLinearModel reference(profile.dimension, opts);

  std::vector<OnlineErrorRate> errors(models.size());
  OnlineErrorRate lr_error;
  SyntheticClassificationGen gen(profile, seed + 1);
  for (int i = 0; i < examples; ++i) {
    const Example ex = gen.Next();
    for (size_t m = 0; m < models.size(); ++m) {
      errors[m].Record(models[m]->Update(ex.x, ex.y), ex.y);
    }
    lr_error.Record(reference.Update(ex.x, ex.y), ex.y);
  }

  SweepResult out;
  const std::vector<float> w_star = reference.Weights();
  for (size_t m = 0; m < models.size(); ++m) {
    std::vector<FeatureWeight> top = models[m]->TopK(k);
    if (top.empty()) top = ScanTopK(*models[m], k, profile.dimension);  // Hash
    out.rel_err.push_back(RelErrTopK(top, w_star, k));
    out.error_rate.push_back(errors[m].Rate());
  }
  out.lr_error_rate = lr_error.Rate();
  return out;
}

size_t IndexOf(Method m) {
  const auto& all = AllMethods();
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i] == m) return i;
  }
  return all.size();
}

TEST(IntegrationTest, AwmWinsRecoveryAtSmallBudget) {
  // Fig. 3's headline: at a tight budget the AWM-Sketch has the lowest
  // top-K recovery error of all methods.
  const SweepResult r =
      RunSweep(ClassificationProfile::SmallTest(), KiB(2), /*k=*/64, 11, 30000);
  const double awm = r.rel_err[IndexOf(Method::kAwmSketch)];
  EXPECT_GE(awm, 1.0);
  for (const Method m :
       {Method::kSimpleTruncation, Method::kProbabilisticTruncation,
        Method::kSpaceSavingFrequent, Method::kCountMinFrequent, Method::kFeatureHashing}) {
    EXPECT_LE(awm, r.rel_err[IndexOf(m)] + 1e-9) << MethodName(m);
  }
}

TEST(IntegrationTest, EveryMethodRespectsBudget) {
  const LearnerOptions opts = BenchOptions(1e-6, 3);
  for (const size_t budget : {KiB(2), KiB(8), KiB(32)}) {
    for (const Method m : AllMethods()) {
      auto model = MakeClassifier(DefaultConfig(m, budget).value(), opts);
      EXPECT_LE(model->MemoryCostBytes(), budget) << MethodName(m);
    }
  }
}

TEST(IntegrationTest, ErrorRatesApproachUnconstrainedWithBudget) {
  // Fig. 6's shape: AWM's online error rate decreases with budget and
  // approaches (within a margin) the memory-unconstrained model's.
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  const SweepResult small =
      RunSweep(profile, KiB(2), 64, 21, 20000);
  const SweepResult big =
      RunSweep(profile, KiB(32), 64, 21, 20000);
  const size_t awm = IndexOf(Method::kAwmSketch);
  EXPECT_LE(big.error_rate[awm], small.error_rate[awm] + 0.01);
  EXPECT_LE(big.error_rate[awm], big.lr_error_rate + 0.03);
}

TEST(IntegrationTest, AwmErrorCompetitiveWithHashing) {
  // Sec. 7.3: AWM matches or beats feature hashing at equal budget (the
  // "cost of interpretability" is non-positive). Allow a small tolerance
  // for seed noise at this miniature scale.
  const SweepResult r =
      RunSweep(ClassificationProfile::SmallTest(), KiB(4), 64, 31, 30000);
  EXPECT_LE(r.error_rate[IndexOf(Method::kAwmSketch)],
            r.error_rate[IndexOf(Method::kFeatureHashing)] + 0.01);
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  const SweepResult a =
      RunSweep(ClassificationProfile::SmallTest(), KiB(4), 32, 41, 5000);
  const SweepResult b =
      RunSweep(ClassificationProfile::SmallTest(), KiB(4), 32, 41, 5000);
  for (size_t m = 0; m < a.rel_err.size(); ++m) {
    EXPECT_EQ(a.rel_err[m], b.rel_err[m]);
    EXPECT_EQ(a.error_rate[m], b.error_rate[m]);
  }
}

TEST(IntegrationTest, RecoveryErrorShrinksWithBudget) {
  // Fig. 4's shape for the AWM-Sketch.
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  const double err2 = RunSweep(profile, KiB(2), 64, 51, 25000)
                          .rel_err[IndexOf(Method::kAwmSketch)];
  const double err16 = RunSweep(profile, KiB(16), 64, 51, 25000)
                           .rel_err[IndexOf(Method::kAwmSketch)];
  EXPECT_LE(err16, err2 + 1e-9);
}

TEST(IntegrationTest, HigherRegularizationLowersAwmRecoveryError) {
  // Fig. 5's shape: stronger λ shrinks both w* and the sketch toward zero,
  // reducing relative recovery error.
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  auto run_lambda = [&](double lambda) {
    const LearnerOptions opts = BenchOptions(lambda, 61);
    auto model = MakeClassifier(DefaultConfig(Method::kAwmSketch, KiB(2)).value(), opts);
    DenseLinearModel reference(profile.dimension, opts);
    SyntheticClassificationGen gen(profile, 62);
    for (int i = 0; i < 25000; ++i) {
      const Example ex = gen.Next();
      model->Update(ex.x, ex.y);
      reference.Update(ex.x, ex.y);
    }
    return RelErrTopK(model->TopK(64), reference.Weights(), 64);
  };
  const double high_reg = run_lambda(1e-3);
  const double low_reg = run_lambda(1e-6);
  EXPECT_LE(high_reg, low_reg + 0.02);
}

// ------------------------------------------------------------- Multiclass

TEST(MulticlassTest, LearnsThreeClassProblem) {
  // Three classes, each signaled by its own feature block.
  const BudgetConfig cfg = DefaultConfig(Method::kAwmSketch, KiB(2)).value();
  MulticlassClassifier model(3, cfg, BenchOptions(1e-6, 71));
  Rng rng(72);
  int late_mistakes = 0;
  const int total = 6000;
  for (int i = 0; i < total; ++i) {
    const size_t label = rng.Bounded(3);
    const uint32_t signal = static_cast<uint32_t>(100 * label + rng.Bounded(4));
    const uint32_t noise = static_cast<uint32_t>(1000 + rng.Bounded(500));
    auto x = SparseVector::FromUnsorted({{signal, 0.8f}, {noise, 0.2f}}).value();
    const size_t predicted = model.Update(x, label);
    if (i > total / 2 && predicted != label) ++late_mistakes;
  }
  EXPECT_LT(static_cast<double>(late_mistakes) / (total / 2), 0.12);
}

TEST(MulticlassTest, PerClassTopKIdentifiesSignalFeatures) {
  const BudgetConfig cfg = DefaultConfig(Method::kAwmSketch, KiB(2)).value();
  MulticlassClassifier model(2, cfg, BenchOptions(1e-6, 73));
  Rng rng(74);
  for (int i = 0; i < 4000; ++i) {
    const size_t label = rng.Bounded(2);
    const uint32_t signal = label == 0 ? 5u : 17u;
    model.Update(SparseVector::OneHot(signal), label);
  }
  // One-vs-all: each class model weights its own signal positively and the
  // other class's signal (its negatives) symmetrically negatively; both land
  // in the top-2 by magnitude.
  EXPECT_GT(model.class_model(0).WeightEstimate(5), 0.3f);
  EXPECT_LT(model.class_model(0).WeightEstimate(17), -0.3f);
  EXPECT_GT(model.class_model(1).WeightEstimate(17), 0.3f);
  EXPECT_LT(model.class_model(1).WeightEstimate(5), -0.3f);
  const auto top0 = model.class_model(0).TopK(2);
  ASSERT_EQ(top0.size(), 2u);
  EXPECT_TRUE((top0[0].feature == 5u && top0[1].feature == 17u) ||
              (top0[0].feature == 17u && top0[1].feature == 5u));
}

TEST(MulticlassTest, MemoryIsSumOfClassModels) {
  const BudgetConfig cfg = DefaultConfig(Method::kAwmSketch, KiB(2)).value();
  MulticlassClassifier model(5, cfg, BenchOptions(1e-6, 75));
  EXPECT_EQ(model.MemoryCostBytes(), 5u * KiB(2));
  EXPECT_EQ(model.num_classes(), 5u);
}

}  // namespace
}  // namespace wmsketch
