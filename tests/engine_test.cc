// Tests for the mergeability layer (BudgetedClassifier::Merge and friends),
// the sharded parallel training engine built on top of it, and the
// concurrent behavior of the wait-free serving path (this suite is what the
// TSan CI job runs).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <span>
#include <sstream>
#include <thread>
#include <vector>

#include "api/learner.h"
#include "core/awm_sketch.h"
#include "core/wm_sketch.h"
#include "datagen/classification_gen.h"
#include "engine/serving.h"
#include "engine/sharded_learner.h"
#include "engine/spsc_ring.h"
#include "linear/dense_linear_model.h"
#include "metrics/recovery.h"
#include "util/memory_cost.h"

namespace wmsketch {
namespace {

std::vector<Example> MakeStream(const ClassificationProfile& profile, uint64_t seed,
                                int n) {
  SyntheticClassificationGen gen(profile, seed);
  std::vector<Example> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(gen.Next());
  return out;
}

LearnerBuilder AwmBuilder(uint64_t seed = 42) {
  return LearnerBuilder()
      .SetMethod(Method::kAwmSketch)
      .SetWidth(1024)
      .SetDepth(1)
      .SetHeapCapacity(256)
      .SetLambda(1e-6)
      .SetSeed(seed);
}

LearnerBuilder WmBuilder(uint64_t seed = 42) {
  return LearnerBuilder()
      .SetMethod(Method::kWmSketch)
      .SetWidth(512)
      .SetDepth(3)
      .SetHeapCapacity(128)
      .SetLambda(1e-6)
      .SetSeed(seed);
}

std::string Serialized(const Learner& learner) {
  std::ostringstream out;
  EXPECT_TRUE(SaveLearner(learner, out).ok());
  return out.str();
}

// ------------------------------------------------------------ SPSC ring

TEST(SpscRingTest, OrderPreservedAcrossThreads) {
  SpscRing<int> ring(64);
  constexpr int kCount = 100000;
  std::atomic<bool> fail{false};
  std::thread consumer([&] {
    int expected = 0;
    int v;
    while (expected < kCount) {
      if (ring.TryPop(&v)) {
        if (v != expected++) {
          fail.store(true);
          return;
        }
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kCount;) {
    int v = i;
    if (ring.TryPush(std::move(v))) {
      ++i;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
  EXPECT_FALSE(fail.load());
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, CapacityRoundsUpAndBounds) {
  SpscRing<int> ring(3);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(int(i)));
  EXPECT_FALSE(ring.TryPush(99));
  int v;
  ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ring.TryPush(99));
}

// -------------------------------------------------- merge: error paths

TEST(MergeTest, BaselinesReportUnimplemented) {
  for (const Method m : {Method::kSimpleTruncation, Method::kProbabilisticTruncation,
                         Method::kSpaceSavingFrequent, Method::kCountMinFrequent,
                         Method::kFeatureHashing}) {
    Result<Learner> a =
        LearnerBuilder().SetMethod(m).SetBudgetBytes(KiB(4)).SetSeed(1).Build();
    Result<Learner> b =
        LearnerBuilder().SetMethod(m).SetBudgetBytes(KiB(4)).SetSeed(1).Build();
    ASSERT_TRUE(a.ok() && b.ok()) << MethodName(m);
    const Status st = a.value().Merge(b.value());
    EXPECT_EQ(st.code(), StatusCode::kUnimplemented) << MethodName(m);
    EXPECT_EQ(a.value().CanMerge(b.value()).code(), StatusCode::kUnimplemented);
  }
}

TEST(MergeTest, ShapeAndSeedMismatchesRejected) {
  Learner base = std::move(WmBuilder().Build()).value();
  // Different width.
  Learner wide = std::move(WmBuilder().SetWidth(1024).Build()).value();
  EXPECT_EQ(base.Merge(wide).code(), StatusCode::kInvalidArgument);
  // Different depth.
  Learner deep = std::move(WmBuilder().SetDepth(5).Build()).value();
  EXPECT_EQ(base.Merge(deep).code(), StatusCode::kInvalidArgument);
  // Different seed: identical shape but different hash rows.
  Learner reseeded = std::move(WmBuilder(43).Build()).value();
  EXPECT_EQ(base.Merge(reseeded).code(), StatusCode::kInvalidArgument);
  // Different heap capacity.
  Learner bigheap = std::move(WmBuilder().SetHeapCapacity(64).Build()).value();
  EXPECT_EQ(base.Merge(bigheap).code(), StatusCode::kInvalidArgument);
  // Different method entirely.
  Learner awm = std::move(AwmBuilder().Build()).value();
  EXPECT_EQ(base.Merge(awm).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(awm.Merge(base).code(), StatusCode::kInvalidArgument);
  // A failed merge leaves the target untouched.
  EXPECT_EQ(base.steps(), 0u);
}

// ---------------------------------------------- merge: linearity checks

TEST(MergeTest, WmDepthOneMergeIsExactlyAdditive) {
  // With depth 1 the median is the identity, so per-bucket additivity makes
  // merged estimates exactly the sum of the two models' estimates.
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  auto builder = WmBuilder().SetDepth(1);
  Learner a = std::move(builder.Build()).value();
  Learner b = std::move(builder.Build()).value();
  const std::vector<Example> sa = MakeStream(profile, 11, 2000);
  const std::vector<Example> sb = MakeStream(profile, 22, 2000);
  a.UpdateBatch(sa);
  b.UpdateBatch(sb);

  std::vector<float> expected(profile.dimension);
  for (uint32_t f = 0; f < profile.dimension; ++f) {
    expected[f] = a.WeightEstimate(f) + b.WeightEstimate(f);
  }
  ASSERT_TRUE(a.CanMerge(b).ok());
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.steps(), 4000u);
  for (uint32_t f = 0; f < profile.dimension; ++f) {
    const float tol = 1e-4f + 1e-3f * std::fabs(expected[f]);
    EXPECT_NEAR(a.WeightEstimate(f), expected[f], tol) << f;
  }
}

TEST(MergeTest, AwmMergeAddsEstimatesOnHeavyFeatures) {
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  Learner a = std::move(AwmBuilder().Build()).value();
  Learner b = std::move(AwmBuilder().Build()).value();
  a.UpdateBatch(MakeStream(profile, 31, 3000));
  b.UpdateBatch(MakeStream(profile, 32, 3000));

  // The merged estimate of each feature that holds an active-set slot in the
  // merged model must be the exact sum of the two models' estimates.
  std::vector<float> expected(profile.dimension);
  for (uint32_t f = 0; f < profile.dimension; ++f) {
    expected[f] = a.WeightEstimate(f) + b.WeightEstimate(f);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.steps(), 6000u);
  const std::vector<FeatureWeight> top = a.TopK(32);
  ASSERT_FALSE(top.empty());
  for (const FeatureWeight& fw : top) {
    const float tol = 1e-4f + 1e-3f * std::fabs(expected[fw.feature]);
    EXPECT_NEAR(fw.weight, expected[fw.feature], tol) << fw.feature;
  }
}

TEST(MergeTest, ScaleWeightsAveragesAndClonesAreIndependent) {
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  Learner a = std::move(AwmBuilder().Build()).value();
  a.UpdateBatch(MakeStream(profile, 5, 1500));

  std::unique_ptr<BudgetedClassifier> clone = a.impl().Clone();
  ASSERT_NE(clone, nullptr);
  const uint32_t probe = a.TopK(1).at(0).feature;
  const float before = a.WeightEstimate(probe);
  EXPECT_FLOAT_EQ(clone->WeightEstimate(probe), before);

  // Scaling the clone must not disturb the original (deep copy)...
  ASSERT_TRUE(clone->ScaleWeights(0.5).ok());
  EXPECT_NEAR(clone->WeightEstimate(probe), 0.5f * before, 1e-5f + 1e-4f * std::fabs(before));
  EXPECT_FLOAT_EQ(a.WeightEstimate(probe), before);
  // ...and non-positive factors are rejected.
  EXPECT_EQ(clone->ScaleWeights(0.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(clone->ScaleWeights(-1.0).code(), StatusCode::kInvalidArgument);

  // SetSteps overrides only the counter.
  ASSERT_TRUE(clone->SetSteps(99).ok());
  EXPECT_EQ(clone->steps(), 99u);
}

TEST(MergeTest, MergeThenHalveMatchesParameterMixing) {
  // avg = (w_a + w_b) / 2 through the public pieces.
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  Learner a = std::move(WmBuilder().SetDepth(1).Build()).value();
  Learner b = std::move(WmBuilder().SetDepth(1).Build()).value();
  a.UpdateBatch(MakeStream(profile, 61, 1000));
  b.UpdateBatch(MakeStream(profile, 62, 1000));
  const uint32_t probe = a.TopK(1).at(0).feature;
  const float wa = a.WeightEstimate(probe), wb = b.WeightEstimate(probe);
  ASSERT_TRUE(a.Merge(b).ok());
  ASSERT_TRUE(a.impl().ScaleWeights(0.5).ok());
  const float avg = 0.5f * (wa + wb);
  EXPECT_NEAR(a.WeightEstimate(probe), avg, 1e-4f + 1e-3f * std::fabs(avg));
}

// ------------------------------------------------------ sharded engine

TEST(ShardedLearnerTest, RequiresMergeableMethodForMultipleShards) {
  Result<ShardedLearner> r = LearnerBuilder()
                                 .SetMethod(Method::kSimpleTruncation)
                                 .SetBudgetBytes(KiB(4))
                                 .Shards(4)
                                 .BuildSharded();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);

  // A single shard never merges, so any method works.
  Result<ShardedLearner> single = LearnerBuilder()
                                      .SetMethod(Method::kSimpleTruncation)
                                      .SetBudgetBytes(KiB(4))
                                      .Shards(1)
                                      .BuildSharded();
  EXPECT_TRUE(single.ok());

  EXPECT_FALSE(LearnerBuilder().SetBudgetBytes(KiB(4)).Shards(0).BuildSharded().ok());
}

TEST(ShardedLearnerTest, SingleShardIsBitIdenticalToSequential) {
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  const std::vector<Example> stream = MakeStream(profile, 77, 4000);

  for (const bool use_wm : {false, true}) {
    LearnerBuilder builder = use_wm ? WmBuilder() : AwmBuilder();
    Learner sequential = std::move(builder.Build()).value();
    sequential.UpdateBatch(stream);

    ShardedLearner engine = std::move(builder.Shards(1).SetSyncInterval(512).BuildSharded()).value();
    ASSERT_TRUE(engine.PushBatch(stream).ok());
    Result<Learner> collapsed = engine.Collapse();
    ASSERT_TRUE(collapsed.ok());

    EXPECT_EQ(collapsed.value().steps(), sequential.steps());
    // Byte-for-byte identical serialized state: same tables, same scales,
    // same heap layout, same counters.
    EXPECT_EQ(Serialized(collapsed.value()), Serialized(sequential))
        << (use_wm ? "wm" : "awm");

    EXPECT_EQ(engine.Collapse().status().code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(engine.Push(stream[0]).code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(engine.SyncNow().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(ShardedLearnerTest, StatsCountEveryExampleExactly) {
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  const std::vector<Example> stream = MakeStream(profile, 13, 3000);
  ShardedLearner engine =
      std::move(AwmBuilder().Shards(4).SetSyncInterval(1000).BuildSharded()).value();
  ASSERT_TRUE(engine.PushBatch(stream).ok());
  ASSERT_TRUE(engine.SyncNow().ok());  // barrier: per-shard counts now exact
  const ShardedLearnerStats stats = engine.Stats();
  EXPECT_EQ(stats.pushed, stream.size());
  EXPECT_GE(stats.syncs, 3u);  // two periodic (at 1000, 2000) + the explicit one
  ASSERT_EQ(stats.per_shard.size(), 4u);
  uint64_t total = 0;
  for (const uint64_t n : stats.per_shard) {
    EXPECT_GT(n, 0u);  // hash partitioning spreads the stream across shards
    total += n;
  }
  EXPECT_EQ(total, stream.size());

  Result<Learner> collapsed = engine.Collapse();
  ASSERT_TRUE(collapsed.ok());
  EXPECT_EQ(collapsed.value().steps(), stream.size());
}

TEST(ShardedLearnerTest, ShardedRecoveryQualityWithinToleranceOfSequential) {
  // Recovery quality of the 4-shard collapsed model should be in the same
  // regime as the sequential model on the same stream — parameter mixing
  // loses a little, but must stay far from the unsorted-noise regime.
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  const int kExamples = 12000;
  const size_t kTopK = 64;
  const std::vector<Example> stream = MakeStream(profile, 99, kExamples);

  LearnerOptions ref_opts;
  ref_opts.lambda = 1e-6;
  ref_opts.seed = 42;
  DenseLinearModel reference(profile.dimension, ref_opts);
  for (const Example& ex : stream) reference.Update(ex.x, ex.y);
  const std::vector<float> w_star = reference.Weights();

  Learner sequential = std::move(AwmBuilder().Build()).value();
  sequential.UpdateBatch(stream);
  const double seq_err = RelErrTopK(sequential.TopK(kTopK), w_star, kTopK);

  ShardedLearner engine =
      std::move(AwmBuilder().Shards(4).SetSyncInterval(2000).BuildSharded()).value();
  ASSERT_TRUE(engine.PushBatch(stream).ok());
  Learner collapsed = std::move(engine.Collapse()).value();
  EXPECT_EQ(collapsed.steps(), static_cast<uint64_t>(kExamples));
  const double sharded_err = RelErrTopK(collapsed.TopK(kTopK), w_star, kTopK);

  // RelErr is bounded below by 1. The schedule-matched mixing rule keeps the
  // 4-shard collapse within a few percent of sequential (measured ~0.07
  // delta on this stream); 0.25 leaves headroom without admitting the
  // plain-averaging regime (~0.7 delta).
  EXPECT_LT(sharded_err, seq_err + 0.25)
      << "sequential=" << seq_err << " sharded=" << sharded_err;

  // The collapsed model is an ordinary Learner: snapshots and serialization
  // work unchanged.
  const LearnerSnapshot snap = collapsed.Snapshot(kTopK);
  EXPECT_EQ(snap.steps(), static_cast<uint64_t>(kExamples));
  std::stringstream io;
  ASSERT_TRUE(SaveLearner(collapsed, io).ok());
  Result<Learner> restored = LoadLearner(io, ref_opts);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().steps(), collapsed.steps());
}

// ---------------------------------------------------- concurrent serving

// Readers spin on ServingHandles while the writer trains and publishes
// every K updates. Checked invariants: observed versions and step counts
// are monotone; every snapshot is internally consistent (two reads of the
// same feature under one pin are bit-identical — a torn or mutated table
// would break this); margins are finite. Run under TSan in CI, this is
// also the race-freedom proof of the pin/publish/reclaim protocol.
TEST(ServingConcurrencyTest, PredictUnderUpdateIsMonotoneAndConsistent) {
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  const std::vector<Example> stream = MakeStream(profile, 7, 12000);

  Learner model = std::move(WmBuilder().ServeEvery(512).Build()).value();
  constexpr int kReaders = 3;
  std::vector<ServingHandle> handles;
  for (int r = 0; r < kReaders; ++r) {
    Result<ServingHandle> h = model.AcquireServingHandle();
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    handles.push_back(std::move(h).value());
  }

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      ServingHandle& handle = handles[static_cast<size_t>(r)];
      const std::span<const Example> queries(stream.data(), 64);
      std::vector<double> margins(queries.size());
      const uint32_t probe = 11;
      uint64_t last_version = 0;
      uint64_t last_steps = 0;
      while (!done.load(std::memory_order_acquire)) {
        const uint64_t v = handle.Refresh();
        const uint64_t s = handle.steps();
        if (v < last_version || s < last_steps) {
          failed.store(true);
          return;
        }
        last_version = v;
        last_steps = s;
        handle.PredictBatch(queries, margins.data());
        for (const double m : margins) {
          if (!std::isfinite(m)) {
            failed.store(true);
            return;
          }
        }
        // Internal consistency under one pin: the snapshot is immutable, so
        // two point queries of the same feature in one batch must agree
        // bit-for-bit no matter how many versions the writer publishes.
        const uint32_t ids[2] = {probe, probe};
        float est[2];
        handle.EstimateBatch(ids, est);
        if (est[0] != est[1]) {
          failed.store(true);
          return;
        }
      }
    });
  }

  // The writer trains (and publishes every 512 updates) while readers spin.
  constexpr size_t kChunk = 256;
  for (size_t at = 0; at < stream.size(); at += kChunk) {
    model.UpdateBatch(std::span<const Example>(
        stream.data() + at, std::min(kChunk, stream.size() - at)));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(failed.load());
  // Every boundary was published; the readers' final refresh can observe it.
  EXPECT_EQ(handles[0].Refresh(), 1u + model.steps() / 512);
  EXPECT_EQ(handles[0].steps(), (model.steps() / 512) * 512);
}

// The same under sharded ingestion: readers serve from merge-barrier
// snapshots while the owner pushes and workers train.
TEST(ServingConcurrencyTest, ShardedPredictUnderPushIsMonotone) {
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  const std::vector<Example> stream = MakeStream(profile, 23, 8000);

  ShardedLearner engine =
      std::move(AwmBuilder().Shards(2).ServeEvery(2000).BuildSharded()).value();
  Result<ServingHandle> acquired = engine.AcquireServingHandle();
  ASSERT_TRUE(acquired.ok()) << acquired.status().ToString();
  ServingHandle handle = std::move(acquired).value();

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::thread reader([&] {
    const std::span<const Example> queries(stream.data(), 32);
    std::vector<double> margins(queries.size());
    uint64_t last_version = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t v = handle.Refresh();
      if (v < last_version) {
        failed.store(true);
        return;
      }
      last_version = v;
      handle.PredictBatch(queries, margins.data());
    }
  });

  ASSERT_TRUE(engine.PushBatch(stream).ok());
  Result<Learner> collapsed = engine.Collapse();
  ASSERT_TRUE(collapsed.ok());
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_FALSE(failed.load());
  handle.Refresh();
  EXPECT_EQ(handle.steps(), stream.size());
}

TEST(ShardedLearnerTest, DestructorWithoutCollapseJoinsCleanly) {
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  const std::vector<Example> stream = MakeStream(profile, 3, 500);
  {
    ShardedLearner engine = std::move(AwmBuilder().Shards(2).BuildSharded()).value();
    ASSERT_TRUE(engine.PushBatch(stream).ok());
    // Dropped without Collapse: workers must stop and join without hanging.
  }
  // Move assignment over a live engine must likewise join the replaced
  // engine's workers (not std::terminate on a joinable std::thread).
  ShardedLearner a = std::move(AwmBuilder().Shards(2).BuildSharded()).value();
  ShardedLearner b = std::move(AwmBuilder().Shards(2).BuildSharded()).value();
  ASSERT_TRUE(a.PushBatch(stream).ok());
  a = std::move(b);
  ASSERT_TRUE(a.Push(stream[0]).ok());
  SUCCEED();
}

}  // namespace
}  // namespace wmsketch
