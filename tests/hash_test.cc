// Tests for the hashing substrate: MurmurHash3 reference vectors, tabulation
// hashing uniformity / sign balance, and the k-independent polynomial family.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "hash/murmur3.h"
#include "hash/polynomial.h"
#include "hash/tabulation.h"

namespace wmsketch {
namespace {

// ---------------------------------------------------------------- Murmur3

// Reference vectors from the canonical smhasher implementation.
TEST(Murmur3Test, X86_32KnownVectors) {
  EXPECT_EQ(Murmur3_x86_32("", 0, 0), 0u);
  EXPECT_EQ(Murmur3_x86_32("", 0, 1), 0x514e28b7u);
  EXPECT_EQ(Murmur3_x86_32("", 0, 0xffffffffu), 0x81f16f39u);
  EXPECT_EQ(Murmur3String("test", 0), 0xba6bd213u);
  EXPECT_EQ(Murmur3String("test", 0x9747b28cu), 0x704b81dcu);
  EXPECT_EQ(Murmur3String("Hello, world!", 0), 0xc0363e43u);
  EXPECT_EQ(Murmur3String("Hello, world!", 0x9747b28cu), 0x24884cbau);
  EXPECT_EQ(Murmur3String("The quick brown fox jumps over the lazy dog", 0x9747b28cu),
            0x2fa826cdu);
}

TEST(Murmur3Test, X86_32TailLengths) {
  // Exercise every tail-switch arm (len % 4 in {0,1,2,3}).
  const std::string base = "abcdefgh";
  std::vector<uint32_t> hashes;
  for (size_t len = 0; len <= 8; ++len) {
    hashes.push_back(Murmur3_x86_32(base.data(), len, 42));
  }
  // All distinct.
  for (size_t i = 0; i < hashes.size(); ++i) {
    for (size_t j = i + 1; j < hashes.size(); ++j) EXPECT_NE(hashes[i], hashes[j]);
  }
}

TEST(Murmur3Test, X64_128DeterministicAndSpread) {
  uint64_t a[2], b[2], c[2];
  Murmur3_x64_128("wmsketch", 8, 1, a);
  Murmur3_x64_128("wmsketch", 8, 1, b);
  Murmur3_x64_128("wmsketcj", 8, 1, c);
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[1], b[1]);
  EXPECT_NE(a[0], c[0]);
}

TEST(Murmur3Test, Fmix64Bijective) {
  // Distinct inputs keep distinct outputs (sanity for the mixer).
  EXPECT_NE(Murmur3Fmix64(1), Murmur3Fmix64(2));
  EXPECT_EQ(Murmur3Fmix64(0xdeadbeef), Murmur3Fmix64(0xdeadbeef));
}

// ------------------------------------------------------------- Tabulation

TEST(TabulationTest, DeterministicGivenSeed) {
  TabulationHash a(5), b(5), c(6);
  for (uint32_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(a.Hash(k), b.Hash(k));
  }
  int same = 0;
  for (uint32_t k = 0; k < 1000; ++k) same += (a.Hash(k) == c.Hash(k));
  EXPECT_LT(same, 3);
}

// Property: bucket occupancy chi-square within tolerance across widths.
class TabulationUniformityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TabulationUniformityTest, ChiSquareWithinBounds) {
  const uint32_t width = GetParam();
  SignedBucketHash hash(1234, width);
  std::vector<int> counts(width, 0);
  const int n = 100000;
  for (uint32_t k = 0; k < static_cast<uint32_t>(n); ++k) ++counts[hash.Bucket(k)];
  const double expected = static_cast<double>(n) / width;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // dof = width-1; mean dof, sd sqrt(2*dof). The chi-square distribution is
  // right-skewed, so the normal-approximation tail needs headroom: 8 sigma.
  const double dof = width - 1;
  EXPECT_LT(chi2, dof + 8.0 * std::sqrt(2.0 * dof));
}

INSTANTIATE_TEST_SUITE_P(Widths, TabulationUniformityTest,
                         ::testing::Values(16u, 64u, 256u, 1024u));

TEST(TabulationTest, SignsBalanced) {
  SignedBucketHash hash(777, 256);
  int plus = 0;
  const int n = 100000;
  for (uint32_t k = 0; k < static_cast<uint32_t>(n); ++k) plus += (hash.Sign(k) > 0.0f);
  EXPECT_NEAR(static_cast<double>(plus) / n, 0.5, 0.01);
}

TEST(TabulationTest, SignIndependentOfBucketWidthBits) {
  // Sign comes from bit 32, bucket from low bits: changing width must not
  // change signs.
  TabulationHash tab(99);
  SignedBucketHash narrow(99, 16);
  SignedBucketHash wide(99, 4096);
  // Note: SignedBucketHash(seed,...) builds its own tables from the seed, so
  // equal seeds give equal hashes.
  for (uint32_t k = 0; k < 2000; ++k) {
    EXPECT_EQ(narrow.Sign(k), wide.Sign(k));
  }
}

TEST(TabulationTest, BucketAndSignMatchesSeparateCalls) {
  SignedBucketHash hash(31337, 512);
  for (uint32_t k = 0; k < 2000; ++k) {
    uint32_t bucket;
    float sign;
    hash.BucketAndSign(k, &bucket, &sign);
    EXPECT_EQ(bucket, hash.Bucket(k));
    EXPECT_EQ(sign, hash.Sign(k));
  }
}

// Pairwise independence spot-check: collision rate of key pairs ≈ 1/width.
TEST(TabulationTest, PairwiseCollisionRate) {
  const uint32_t width = 256;
  SignedBucketHash hash(4242, width);
  int collisions = 0;
  const int pairs = 50000;
  for (int i = 0; i < pairs; ++i) {
    const uint32_t a = static_cast<uint32_t>(i) * 2654435761u;
    const uint32_t b = a + 1;
    collisions += (hash.Bucket(a) == hash.Bucket(b));
  }
  const double rate = static_cast<double>(collisions) / pairs;
  EXPECT_NEAR(rate, 1.0 / width, 3.0 / width);
}

// ------------------------------------------------------------- Polynomial

TEST(PolynomialTest, DeterministicAndSeedSensitive) {
  PolynomialHash a(1, 4), b(1, 4), c(2, 4);
  for (uint32_t k = 0; k < 500; ++k) EXPECT_EQ(a.Hash(k), b.Hash(k));
  int same = 0;
  for (uint32_t k = 0; k < 500; ++k) same += (a.Hash(k) == c.Hash(k));
  EXPECT_LT(same, 2);
}

TEST(PolynomialTest, OutputBelowPrime) {
  PolynomialHash h(3, 8);
  for (uint32_t k = 0; k < 10000; ++k) EXPECT_LT(h.Hash(k), PolynomialHash::kPrime);
}

TEST(PolynomialTest, DegreeOneIsAffine) {
  // With independence 2, h(x) = c0 + c1*x mod p: check additivity of
  // differences h(x+2)-h(x+1) == h(x+1)-h(x) (mod p).
  PolynomialHash h(11, 2);
  const auto diff = [&](uint32_t x) {
    const uint64_t a = h.Hash(x + 1);
    const uint64_t b = h.Hash(x);
    return (a + PolynomialHash::kPrime - b) % PolynomialHash::kPrime;
  };
  for (uint32_t x = 0; x < 100; ++x) EXPECT_EQ(diff(x), diff(x + 1));
}

TEST(PolynomialTest, BucketHashUniform) {
  PolynomialBucketHash hash(2024, 128, 5);
  std::vector<int> counts(128, 0);
  const int n = 50000;
  for (uint32_t k = 0; k < static_cast<uint32_t>(n); ++k) ++counts[hash.Bucket(k)];
  const double expected = n / 128.0;
  for (const int c : counts) EXPECT_NEAR(c, expected, 6.0 * std::sqrt(expected));
}

TEST(PairFeatureIdTest, OrderSensitiveAndDeterministic) {
  EXPECT_EQ(PairFeatureId(3, 4), PairFeatureId(3, 4));
  EXPECT_NE(PairFeatureId(3, 4), PairFeatureId(4, 3));
  // Low collision rate over a grid of pairs.
  std::vector<uint32_t> ids;
  for (uint32_t u = 0; u < 200; ++u) {
    for (uint32_t v = 0; v < 200; ++v) ids.push_back(PairFeatureId(u, v));
  }
  std::sort(ids.begin(), ids.end());
  const size_t distinct = std::unique(ids.begin(), ids.end()) - ids.begin();
  EXPECT_GT(distinct, ids.size() - 5);  // 40k ids in 2^32 space: ~0 collisions
}

}  // namespace
}  // namespace wmsketch
