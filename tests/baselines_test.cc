// Tests for the baseline classifiers: Simple/Probabilistic Truncation
// (Algorithms 3–4), Space-Saving Frequent, Count-Min Frequent, plus the
// budget planner / factory they are built through.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/budget.h"
#include "core/frequent_features.h"
#include "core/truncation.h"
#include "util/random.h"

namespace wmsketch {
namespace {

LearnerOptions Opts(double lambda, double eta, uint64_t seed = 42) {
  LearnerOptions opts;
  opts.lambda = lambda;
  opts.rate = LearningRate::Constant(eta);
  opts.seed = seed;
  return opts;
}

// --------------------------------------------------------- SimpleTruncation

TEST(SimpleTruncationTest, KeepsOnlyBudgetedEntries) {
  SimpleTruncation model(2, Opts(0.0, 0.5));
  for (int i = 0; i < 5; ++i) model.Update(SparseVector::OneHot(1), 1);
  for (int i = 0; i < 3; ++i) model.Update(SparseVector::OneHot(2), 1);
  model.Update(SparseVector::OneHot(3), 1);  // too weak to displace
  EXPECT_NE(model.WeightEstimate(1), 0.0f);
  EXPECT_NE(model.WeightEstimate(2), 0.0f);
  EXPECT_EQ(model.WeightEstimate(3), 0.0f);
  EXPECT_EQ(model.TopK(10).size(), 2u);
}

TEST(SimpleTruncationTest, TruncatedFeatureRestartsFromZero) {
  SimpleTruncation model(1, Opts(0.0, 0.5));
  for (int i = 0; i < 10; ++i) model.Update(SparseVector::OneHot(1), 1);
  const float strong = model.WeightEstimate(1);
  // Feature 2's single-step mass is below |strong| → rejected, stays 0.
  model.Update(SparseVector::OneHot(2), 1);
  EXPECT_EQ(model.WeightEstimate(2), 0.0f);
  EXPECT_NEAR(model.WeightEstimate(1), strong, 1e-5);
}

TEST(SimpleTruncationTest, PredictionIgnoresUntracked) {
  SimpleTruncation model(1, Opts(0.0, 0.5));
  for (int i = 0; i < 4; ++i) model.Update(SparseVector::OneHot(1), 1);
  const double margin =
      model.PredictMargin(SparseVector::FromUnsorted({{1, 1.0f}, {9, 100.0f}}).value());
  EXPECT_NEAR(margin, model.WeightEstimate(1), 1e-6);
}

TEST(SimpleTruncationTest, MemoryCostModel) {
  SimpleTruncation model(128, Opts(1e-6, 0.1));
  EXPECT_EQ(model.MemoryCostBytes(), 1024u);  // the Sec. 7.1 example
}

// -------------------------------------------------- ProbabilisticTruncation

TEST(ProbabilisticTruncationTest, CapacityRespected) {
  ProbabilisticTruncation model(4, Opts(0.0, 0.5));
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    model.Update(SparseVector::OneHot(static_cast<uint32_t>(rng.Bounded(100))), 1);
  }
  EXPECT_LE(model.TopK(100).size(), 4u);
}

TEST(ProbabilisticTruncationTest, LargeWeightsSurvivePreferentially) {
  // One dominant feature and many small ones: across seeds, the dominant
  // feature should essentially always be retained (reservoir key r^{1/|w|}
  // → 1 as |w| grows).
  int retained = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    ProbabilisticTruncation model(8, Opts(0.0, 0.5, /*seed=*/100 + t));
    Rng rng(200 + t);
    for (int i = 0; i < 400; ++i) {
      model.Update(SparseVector::OneHot(7), 1);  // dominant
      model.Update(SparseVector::OneHot(static_cast<uint32_t>(8 + rng.Bounded(64)), 0.05f),
                   rng.Bernoulli(0.5) ? 1 : -1);
    }
    retained += (model.WeightEstimate(7) != 0.0f);
  }
  EXPECT_GE(retained, trials - 1);
}

TEST(ProbabilisticTruncationTest, TrackedWeightsUpdateExactly) {
  ProbabilisticTruncation model(4, Opts(0.0, 0.5, 9));
  model.Update(SparseVector::OneHot(1), 1);
  const float w1 = model.WeightEstimate(1);
  EXPECT_NEAR(w1, 0.25f, 1e-6);  // η·|ℓ'(0)| = 0.5·0.5
  model.Update(SparseVector::OneHot(1), 1);
  EXPECT_GT(model.WeightEstimate(1), w1);
}

TEST(ProbabilisticTruncationTest, MemoryChargesReservoirKey) {
  ProbabilisticTruncation model(128, Opts(1e-6, 0.1));
  EXPECT_EQ(model.MemoryCostBytes(), 128u * 12u);
}

// ----------------------------------------------------- SpaceSavingFrequent

TEST(SpaceSavingFrequentTest, LearnsWeightsForFrequentFeaturesOnly) {
  SpaceSavingFrequent model(2, Opts(0.0, 0.5, 3));
  for (int i = 0; i < 20; ++i) {
    model.Update(SparseVector::OneHot(1), 1);
    model.Update(SparseVector::OneHot(2), -1);
  }
  EXPECT_GT(model.WeightEstimate(1), 0.0f);
  EXPECT_LT(model.WeightEstimate(2), 0.0f);
  EXPECT_EQ(model.WeightEstimate(50), 0.0f);
}

TEST(SpaceSavingFrequentTest, EvictionDropsWeight) {
  SpaceSavingFrequent model(2, Opts(0.0, 0.5, 3));
  for (int i = 0; i < 3; ++i) model.Update(SparseVector::OneHot(1), 1);
  model.Update(SparseVector::OneHot(2), 1);
  // Item 3 arrives repeatedly: evicts the min-count item each time it is
  // absent. After enough arrivals it must be monitored with a fresh weight.
  for (int i = 0; i < 4; ++i) model.Update(SparseVector::OneHot(3), 1);
  EXPECT_NE(model.WeightEstimate(3), 0.0f);
  // Exactly 2 features have weights at any time.
  int nonzero = 0;
  for (uint32_t f = 0; f < 10; ++f) nonzero += (model.WeightEstimate(f) != 0.0f);
  EXPECT_LE(nonzero, 2);
}

TEST(SpaceSavingFrequentTest, FrequentButUselessFeaturesWasteBudget) {
  // The paper's central criticism, in miniature: a frequent neutral feature
  // occupies the only slot while a rarer discriminative one gets no weight.
  LearnerOptions opts = Opts(/*lambda=*/0.01, 0.0, 4);
  opts.rate = LearningRate::InverseSqrt(0.3);
  SpaceSavingFrequent model(1, opts);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    model.Update(SparseVector::OneHot(0), rng.Bernoulli(0.5) ? 1 : -1);  // frequent, neutral
    if (i % 3 == 0) model.Update(SparseVector::OneHot(9), 1);            // rare, predictive
  }
  // The frequent feature holds the slot with a near-zero weight (its label
  // is a coin flip and ℓ2 decay shrinks the random walk)...
  EXPECT_NE(model.WeightEstimate(0), 0.0f);
  EXPECT_LT(std::fabs(model.WeightEstimate(0)), 0.3f);
  // ...while the predictive feature never accumulates any weight at all.
  EXPECT_EQ(model.WeightEstimate(9), 0.0f);
}

TEST(SpaceSavingFrequentTest, MemoryCostModel) {
  SpaceSavingFrequent model(128, Opts(1e-6, 0.1));
  EXPECT_EQ(model.MemoryCostBytes(), 128u * 12u);
}

// -------------------------------------------------------- CountMinFrequent

TEST(CountMinFrequentTest, TracksApparentHeavyHitters) {
  CountMinFrequent model(256, 2, 2, Opts(0.0, 0.5, 6));
  for (int i = 0; i < 20; ++i) {
    model.Update(SparseVector::OneHot(1), 1);
    model.Update(SparseVector::OneHot(2), -1);
    if (i % 5 == 0) model.Update(SparseVector::OneHot(3), 1);
  }
  EXPECT_GT(model.WeightEstimate(1), 0.0f);
  EXPECT_LT(model.WeightEstimate(2), 0.0f);
  EXPECT_EQ(model.WeightEstimate(3), 0.0f);  // below the top-2 by count
}

TEST(CountMinFrequentTest, OvertakingFeatureEvictsMin) {
  CountMinFrequent model(256, 2, 1, Opts(0.0, 0.5, 7));
  model.Update(SparseVector::OneHot(1), 1);
  for (int i = 0; i < 5; ++i) model.Update(SparseVector::OneHot(2), 1);
  EXPECT_EQ(model.WeightEstimate(1), 0.0f);
  EXPECT_NE(model.WeightEstimate(2), 0.0f);
}

TEST(CountMinFrequentTest, MemoryCostModel) {
  CountMinFrequent model(512, 2, 128, Opts(1e-6, 0.1));
  EXPECT_EQ(model.MemoryCostBytes(), 512u * 2 * 4 + 128u * 8);
}

// ------------------------------------------------------------------ Budget

TEST(BudgetTest, DefaultConfigsMatchTable2) {
  // AWM column of Table 2.
  const struct {
    size_t kb;
    size_t heap;
    uint32_t width;
  } awm_rows[] = {{2, 128, 256}, {4, 256, 512}, {8, 512, 1024}, {16, 1024, 2048},
                  {32, 2048, 4096}};
  for (const auto& row : awm_rows) {
    const BudgetConfig cfg = DefaultConfig(Method::kAwmSketch, KiB(row.kb)).value();
    EXPECT_EQ(cfg.heap_capacity, row.heap) << row.kb << "KB";
    EXPECT_EQ(cfg.width, row.width) << row.kb << "KB";
    EXPECT_EQ(cfg.depth, 1u);
    EXPECT_EQ(cfg.MemoryCostBytes(), KiB(row.kb));
  }
  // WM at 8 KB: |S|=128, width 128, depth 14 (Table 2); 32 KB: width 256 d31.
  const BudgetConfig wm8 = DefaultConfig(Method::kWmSketch, KiB(8)).value();
  EXPECT_EQ(wm8.heap_capacity, 128u);
  EXPECT_EQ(wm8.width, 128u);
  EXPECT_EQ(wm8.depth, 14u);
  const BudgetConfig wm32 = DefaultConfig(Method::kWmSketch, KiB(32)).value();
  EXPECT_EQ(wm32.width, 256u);
  EXPECT_EQ(wm32.depth, 31u);
}

TEST(BudgetTest, EveryDefaultFitsItsBudget) {
  for (const Method m : AllMethods()) {
    for (const size_t kb : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      const BudgetConfig cfg = DefaultConfig(m, KiB(kb)).value();
      EXPECT_LE(cfg.MemoryCostBytes(), KiB(kb)) << MethodName(m) << " " << kb << "KB";
      // Budgets must also be mostly used (>= 50%), not silently tiny.
      EXPECT_GE(cfg.MemoryCostBytes(), KiB(kb) / 2) << MethodName(m) << " " << kb << "KB";
    }
  }
}

TEST(BudgetTest, EnumerationAllFitAndIncludeDefaultShape) {
  for (const Method m : {Method::kWmSketch, Method::kAwmSketch, Method::kCountMinFrequent}) {
    const auto configs = EnumerateConfigs(m, KiB(8));
    EXPECT_GT(configs.size(), 3u) << MethodName(m);
    for (const BudgetConfig& cfg : configs) {
      EXPECT_LE(cfg.MemoryCostBytes(), KiB(8)) << cfg.ToString();
      EXPECT_EQ(cfg.method, m);
    }
  }
  // Single-shape methods return exactly the default.
  EXPECT_EQ(EnumerateConfigs(Method::kFeatureHashing, KiB(8)).size(), 1u);
}

TEST(BudgetTest, FactoryProducesWorkingClassifiers) {
  const LearnerOptions opts = Opts(1e-4, 0.2, 50);
  for (const Method m : AllMethods()) {
    const BudgetConfig cfg = DefaultConfig(m, KiB(4)).value();
    auto model = MakeClassifier(cfg, opts);
    ASSERT_NE(model, nullptr) << MethodName(m);
    EXPECT_EQ(model->Name(), MethodName(m));
    EXPECT_LE(model->MemoryCostBytes(), KiB(4)) << MethodName(m);
    // A few updates must run and produce a finite margin.
    Rng rng(51);
    for (int i = 0; i < 200; ++i) {
      const uint32_t f = static_cast<uint32_t>(rng.Bounded(1000));
      model->Update(SparseVector::OneHot(f), rng.Bernoulli(0.5) ? 1 : -1);
    }
    EXPECT_TRUE(std::isfinite(model->PredictMargin(SparseVector::OneHot(1))));
    EXPECT_EQ(model->steps(), 200u);
  }
}

TEST(BudgetTest, MethodNamesStable) {
  EXPECT_EQ(MethodName(Method::kAwmSketch), "awm");
  EXPECT_EQ(MethodName(Method::kWmSketch), "wm");
  EXPECT_EQ(MethodName(Method::kFeatureHashing), "hash");
  EXPECT_EQ(AllMethods().size(), 7u);
}

TEST(BudgetTest, ToStringIncludesShape) {
  const BudgetConfig cfg = DefaultConfig(Method::kAwmSketch, KiB(2)).value();
  EXPECT_NE(cfg.ToString().find("awm"), std::string::npos);
  EXPECT_NE(cfg.ToString().find("256"), std::string::npos);
}

}  // namespace
}  // namespace wmsketch
