// Tests for the linear-model substrate: losses, schedules, the uncompressed
// reference model, and feature hashing.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linear/classifier.h"
#include "linear/dense_linear_model.h"
#include "linear/feature_hashing.h"
#include "linear/learning_rate.h"
#include "linear/loss.h"
#include "util/math.h"
#include "util/random.h"

namespace wmsketch {
namespace {

// ------------------------------------------------------------------- Loss

// Property: numerical derivative matches the analytic one for every loss.
class LossDerivativeTest : public ::testing::TestWithParam<double> {};

TEST_P(LossDerivativeTest, AnalyticMatchesNumeric) {
  const double m = GetParam();
  const LogisticLoss logistic;
  const SmoothedHingeLoss hinge(1.0);
  const SmoothedHingeLoss sharp_hinge(0.3);
  const SquaredLoss squared;
  const double h = 1e-6;
  for (const LossFunction* loss :
       std::initializer_list<const LossFunction*>{&logistic, &hinge, &sharp_hinge, &squared}) {
    const double numeric = (loss->Value(m + h) - loss->Value(m - h)) / (2.0 * h);
    EXPECT_NEAR(loss->Derivative(m), numeric, 1e-4) << loss->Name() << " at " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Margins, LossDerivativeTest,
                         ::testing::Values(-3.0, -1.0, -0.2, 0.0, 0.31, 0.85, 0.99, 1.5, 4.0));

TEST(LossTest, LogisticValues) {
  const LogisticLoss loss;
  EXPECT_NEAR(loss.Value(0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(loss.Derivative(0.0), -0.5, 1e-12);
  EXPECT_NEAR(loss.Value(100.0), 0.0, 1e-9);
  EXPECT_NEAR(loss.Derivative(-100.0), -1.0, 1e-9);
}

TEST(LossTest, SmoothedHingeRegions) {
  const SmoothedHingeLoss loss(1.0);
  EXPECT_EQ(loss.Value(2.0), 0.0);
  EXPECT_EQ(loss.Derivative(2.0), 0.0);
  EXPECT_NEAR(loss.Value(0.5), 0.125, 1e-12);  // quadratic zone
  EXPECT_NEAR(loss.Value(-1.0), 1.5, 1e-12);   // linear zone
  EXPECT_EQ(loss.Derivative(-5.0), -1.0);
}

TEST(LossTest, LossesAreConvexOnGrid) {
  const LogisticLoss logistic;
  const SmoothedHingeLoss hinge(0.5);
  for (const LossFunction* loss :
       std::initializer_list<const LossFunction*>{&logistic, &hinge}) {
    double prev_d = -1e100;
    for (double m = -5.0; m <= 5.0; m += 0.1) {
      const double d = loss->Derivative(m);
      EXPECT_GE(d, prev_d - 1e-12) << loss->Name() << " at " << m;
      prev_d = d;
    }
  }
}

TEST(LossTest, DefaultSingletonIsLogistic) {
  EXPECT_EQ(DefaultLogisticLoss().Name(), "logistic");
  EXPECT_EQ(&DefaultLogisticLoss(), &DefaultLogisticLoss());
}

// ---------------------------------------------------------- LearningRate

TEST(LearningRateTest, Schedules) {
  const LearningRate c = LearningRate::Constant(0.5);
  EXPECT_EQ(c.Rate(1), 0.5);
  EXPECT_EQ(c.Rate(1000), 0.5);

  const LearningRate s = LearningRate::InverseSqrt(1.0);
  EXPECT_DOUBLE_EQ(s.Rate(1), 1.0);
  EXPECT_DOUBLE_EQ(s.Rate(4), 0.5);
  EXPECT_DOUBLE_EQ(s.Rate(100), 0.1);

  const LearningRate inv = LearningRate::Inverse(1.0, 0.1);
  EXPECT_DOUBLE_EQ(inv.Rate(1), 1.0 / 1.1);
  EXPECT_GT(inv.Rate(10), inv.Rate(100));
}

// ------------------------------------------------------- DenseLinearModel

LearnerOptions TestOptions(double lambda = 1e-4) {
  LearnerOptions opts;
  opts.lambda = lambda;
  opts.rate = LearningRate::Constant(0.5);
  opts.seed = 42;
  return opts;
}

TEST(DenseLinearModelTest, SingleUpdateMatchesHandComputation) {
  LearnerOptions opts = TestOptions(/*lambda=*/0.0);
  DenseLinearModel model(8, opts);
  const SparseVector x({1, 3}, {1.0f, 2.0f});
  const double margin = model.Update(x, 1);
  EXPECT_EQ(margin, 0.0);
  // Logistic: g = ℓ'(0) = −0.5; w ← w − η·y·g·x = 0.5·0.5·x = 0.25·x.
  EXPECT_NEAR(model.WeightEstimate(1), 0.25f, 1e-6);
  EXPECT_NEAR(model.WeightEstimate(3), 0.5f, 1e-6);
  EXPECT_EQ(model.WeightEstimate(0), 0.0f);
  EXPECT_EQ(model.steps(), 1u);
}

TEST(DenseLinearModelTest, RegularizationDecaysWeights) {
  LearnerOptions opts = TestOptions(/*lambda=*/0.1);
  DenseLinearModel model(4, opts);
  model.Update(SparseVector::OneHot(0), 1);
  const float w1 = model.WeightEstimate(0);
  // Update a disjoint feature: feature 0 must decay by (1 − ηλ).
  model.Update(SparseVector::OneHot(1), 1);
  EXPECT_NEAR(model.WeightEstimate(0), w1 * (1.0f - 0.5f * 0.1f), 1e-6);
}

TEST(DenseLinearModelTest, LazyScaleMatchesEagerDecay) {
  // Train with the lazy-scale implementation and compare against a naive
  // eager implementation run side by side.
  LearnerOptions opts = TestOptions(/*lambda=*/0.01);
  const uint32_t d = 32;
  DenseLinearModel model(d, opts);
  std::vector<double> eager(d, 0.0);
  Rng rng(3);
  uint64_t t = 0;
  for (int i = 0; i < 500; ++i) {
    const uint32_t f1 = static_cast<uint32_t>(rng.Bounded(d));
    uint32_t f2 = static_cast<uint32_t>(rng.Bounded(d));
    if (f2 == f1) f2 = (f2 + 1) % d;
    std::vector<uint32_t> idx = {std::min(f1, f2), std::max(f1, f2)};
    const SparseVector x(idx, {0.5f, 0.5f});
    const int8_t y = rng.Bernoulli(0.5) ? 1 : -1;

    // Eager reference step.
    ++t;
    const double eta = opts.rate.Rate(t);
    double margin = 0.0;
    for (size_t j = 0; j < x.nnz(); ++j) margin += eager[x.index(j)] * x.value(j);
    const double g = opts.loss->Derivative(y * margin);
    for (double& w : eager) w *= (1.0 - eta * opts.lambda);
    for (size_t j = 0; j < x.nnz(); ++j) {
      eager[x.index(j)] -= eta * y * g * x.value(j);
    }

    model.Update(x, y);
  }
  for (uint32_t f = 0; f < d; ++f) {
    EXPECT_NEAR(model.WeightEstimate(f), eager[f], 1e-4) << f;
  }
}

TEST(DenseLinearModelTest, LearnsSeparableProblem) {
  LearnerOptions opts = TestOptions(1e-6);
  opts.rate = LearningRate::Constant(0.2);
  DenseLinearModel model(16, opts);
  Rng rng(7);
  // Feature 3 decides the label.
  int mistakes_late = 0;
  for (int i = 0; i < 2000; ++i) {
    const bool positive = rng.Bernoulli(0.5);
    const SparseVector x = positive ? SparseVector({3, 5}, {1.0f, 0.5f})
                                    : SparseVector({5, 9}, {0.5f, 1.0f});
    const int8_t y = positive ? 1 : -1;
    const double margin = model.Update(x, y);
    if (i >= 1000 && (margin >= 0) != (y > 0)) ++mistakes_late;
  }
  EXPECT_EQ(mistakes_late, 0);
  EXPECT_GT(model.WeightEstimate(3), 0.5f);
  EXPECT_LT(model.WeightEstimate(9), -0.5f);
}

TEST(DenseLinearModelTest, TopKTracksLargestWeights) {
  LearnerOptions opts = TestOptions(0.0);
  DenseLinearModel model(64, opts, /*heap_capacity=*/4);
  // Drive distinct magnitudes into distinct features.
  for (int rep = 0; rep < 5; ++rep) {
    model.Update(SparseVector::OneHot(10), 1);
  }
  for (int rep = 0; rep < 3; ++rep) {
    model.Update(SparseVector::OneHot(20), -1);
  }
  model.Update(SparseVector::OneHot(30), 1);
  const auto top = model.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].feature, 10u);
  EXPECT_EQ(top[1].feature, 20u);
  EXPECT_LT(top[1].weight, 0.0f);
}

TEST(DenseLinearModelTest, WeightsMaterializeWithScale) {
  LearnerOptions opts = TestOptions(0.05);
  DenseLinearModel model(8, opts);
  for (int i = 0; i < 50; ++i) model.Update(SparseVector::OneHot(2), 1);
  const std::vector<float> w = model.Weights();
  ASSERT_EQ(w.size(), 8u);
  EXPECT_NEAR(w[2], model.WeightEstimate(2), 1e-6);
  EXPECT_EQ(w[0], 0.0f);
}

TEST(DenseLinearModelTest, SurvivesHeavyDecayRescale) {
  // λη = 0.05 per step drives the scale below the rescale threshold within
  // ~1200 steps at constant rate; weights must remain finite and tiny.
  LearnerOptions opts = TestOptions(0.1);
  DenseLinearModel model(4, opts);
  for (int i = 0; i < 3000; ++i) model.Update(SparseVector::OneHot(1), 1);
  const float w = model.WeightEstimate(1);
  EXPECT_TRUE(std::isfinite(w));
  EXPECT_GT(w, 0.0f);
}

TEST(DenseLinearModelTest, MemoryCostModel) {
  DenseLinearModel model(1000, TestOptions(), 128);
  EXPECT_EQ(model.MemoryCostBytes(), 1000u * 4 + 128u * 8);
}

// --------------------------------------------------- FeatureHashing model

TEST(FeatureHashingTest, LearnsThroughCollisions) {
  LearnerOptions opts = TestOptions(1e-6);
  opts.rate = LearningRate::Constant(0.2);
  FeatureHashingClassifier model(256, opts);
  Rng rng(11);
  int mistakes_late = 0;
  for (int i = 0; i < 4000; ++i) {
    const bool positive = rng.Bernoulli(0.5);
    const SparseVector x =
        positive ? SparseVector({3}, {1.0f}) : SparseVector({9}, {1.0f});
    const int8_t y = positive ? 1 : -1;
    const double margin = model.Update(x, y);
    if (i >= 2000 && (margin >= 0) != (y > 0)) ++mistakes_late;
  }
  EXPECT_LT(mistakes_late, 20);
}

TEST(FeatureHashingTest, WeightEstimateReflectsSignHash) {
  LearnerOptions opts = TestOptions(0.0);
  FeatureHashingClassifier model(64, opts);
  for (int i = 0; i < 10; ++i) model.Update(SparseVector::OneHot(5), 1);
  EXPECT_GT(model.WeightEstimate(5), 0.0f);
}

TEST(FeatureHashingTest, NativeTopKEmptyButScanWorks) {
  LearnerOptions opts = TestOptions(0.0);
  FeatureHashingClassifier model(64, opts);
  for (int i = 0; i < 10; ++i) model.Update(SparseVector::OneHot(5), 1);
  EXPECT_TRUE(model.TopK(4).empty());
  const auto scanned = ScanTopK(model, 4, /*dimension=*/100);
  ASSERT_FALSE(scanned.empty());
  // Feature 5's bucket-mates tie with it; feature 5 must be among them.
  bool found = false;
  for (const auto& fw : scanned) found |= (fw.feature == 5u);
  EXPECT_TRUE(found);
}

TEST(FeatureHashingTest, MemoryCostIsTableOnly) {
  FeatureHashingClassifier model(512, TestOptions());
  EXPECT_EQ(model.MemoryCostBytes(), 2048u);
}

TEST(FeatureHashingTest, CollidingFeaturesShareWeight) {
  LearnerOptions opts = TestOptions(0.0);
  FeatureHashingClassifier model(2, opts);  // tiny table forces collisions
  for (int i = 0; i < 20; ++i) model.Update(SparseVector::OneHot(1), 1);
  // Any feature hashing to the same bucket reports a related weight
  // (equal magnitude, sign per its own hash).
  const float w1 = model.WeightEstimate(1);
  int sharers = 0;
  for (uint32_t f = 2; f < 40; ++f) {
    if (std::fabs(model.WeightEstimate(f)) == std::fabs(w1)) ++sharers;
  }
  EXPECT_GT(sharers, 5);
}

}  // namespace
}  // namespace wmsketch
