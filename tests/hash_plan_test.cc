// Tests for the single-pass hot path: the per-example hash plan, the SIMD
// table kernels and their scalar fallbacks, the sorting-network median, and
// the batched (plan-arena) ingest path's bitwise equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <random>
#include <sstream>
#include <vector>

#include "api/learner.h"
#include "datagen/classification_gen.h"
#include "hash/tabulation.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/hash_plan.h"
#include "util/math.h"
#include "util/random.h"
#include "util/simd.h"

namespace wmsketch {
namespace {

std::vector<SignedBucketHash> MakeRows(uint32_t depth, uint32_t width, uint64_t seed) {
  SplitMix64 sm(seed);
  std::vector<SignedBucketHash> rows;
  rows.reserve(depth);
  for (uint32_t j = 0; j < depth; ++j) rows.emplace_back(sm.Next(), width);
  return rows;
}

SparseVector RandomVector(std::mt19937& rng, size_t nnz, uint32_t dimension) {
  std::vector<std::pair<uint32_t, float>> pairs;
  std::uniform_int_distribution<uint32_t> id(0, dimension - 1);
  std::uniform_real_distribution<float> val(-2.0f, 2.0f);
  for (size_t i = 0; i < nnz; ++i) {
    float v = val(rng);
    if (v == 0.0f) v = 1.0f;
    pairs.emplace_back(id(rng), v);
  }
  return std::move(SparseVector::FromUnsorted(std::move(pairs))).value();
}

std::vector<Example> MakeStream(int n, uint64_t seed) {
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), seed);
  std::vector<Example> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(gen.Next());
  return out;
}

std::string Serialized(const Learner& learner) {
  std::ostringstream out;
  EXPECT_TRUE(SaveLearner(learner, out).ok());
  return out.str();
}

// Restores the ambient kernel selection, dispatch thresholds, and read-plan
// choice after a test that toggles them — including when the test bails out
// early on a failed ASSERT, so one regression cannot leak forced dispatch
// state into every later test in the binary.
class SimdStateGuard {
 public:
  SimdStateGuard() : was_(simd::Enabled()), thresholds_(simd::Thresholds()) {}
  ~SimdStateGuard() {
    simd::SetEnabled(was_);
    simd::SetThresholds(thresholds_);
    // Only ever forced on by tests; the ambient (calibrated) default is off.
    simd::SetReadPlanDispatched(false);
    simd::SetPagedReadPlanDispatched(false);
  }

 private:
  bool was_;
  simd::KernelThresholds thresholds_;
};

// ------------------------------------------------------------- hash plan

TEST(HashPlanTest, PlanMatchesDirectBucketAndSign) {
  const uint32_t depth = 5, width = 256;
  const std::vector<SignedBucketHash> rows = MakeRows(depth, width, 123);
  std::mt19937 rng(7);
  HashPlan plan;
  for (int trial = 0; trial < 50; ++trial) {
    const SparseVector x = RandomVector(rng, 1 + trial % 30, 1 << 16);
    plan.Build(rows, x);
    ASSERT_EQ(plan.nnz(), x.nnz());
    ASSERT_EQ(plan.depth(), depth);
    for (size_t i = 0; i < x.nnz(); ++i) {
      ASSERT_TRUE(plan.has(i));
      for (uint32_t j = 0; j < depth; ++j) {
        uint32_t bucket;
        float sign;
        rows[j].BucketAndSign(x.index(i), &bucket, &sign);
        EXPECT_EQ(plan.offsets(i)[j], j * width + bucket);
        EXPECT_EQ(plan.signs(i)[j], sign);
      }
    }
  }
}

TEST(HashPlanTest, ArenaViewsMatchPerExamplePlans) {
  const std::vector<SignedBucketHash> rows = MakeRows(3, 128, 9);
  const std::vector<Example> batch = MakeStream(64, 11);
  HashPlanArena arena;
  arena.Build(rows, batch);
  ASSERT_EQ(arena.size(), batch.size());
  HashPlan single;
  for (size_t e = 0; e < batch.size(); ++e) {
    single.Build(rows, batch[e].x);
    const simd::PlanView v = arena.View(e);
    ASSERT_EQ(v.nnz, single.nnz());
    ASSERT_EQ(v.depth, single.depth());
    for (size_t k = 0; k < v.entries(); ++k) {
      EXPECT_EQ(v.offsets[k], single.View().offsets[k]);
      EXPECT_EQ(v.signs[k], single.View().signs[k]);
    }
  }
}

TEST(HashPlanTest, BuildKeysMatchesDirectBucketAndSign) {
  const uint32_t depth = 4, width = 512;
  const std::vector<SignedBucketHash> rows = MakeRows(depth, width, 77);
  SplitMix64 ids(19);
  std::vector<uint32_t> keys;
  for (int i = 0; i < 300; ++i) keys.push_back(static_cast<uint32_t>(ids.Next() % (1 << 18)));
  HashPlan plan;
  plan.BuildKeys(rows, keys);
  ASSERT_EQ(plan.nnz(), keys.size());
  ASSERT_EQ(plan.depth(), depth);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(plan.has(i));
    for (uint32_t j = 0; j < depth; ++j) {
      uint32_t bucket;
      float sign;
      rows[j].BucketAndSign(keys[i], &bucket, &sign);
      EXPECT_EQ(plan.offsets(i)[j], j * width + bucket);
      EXPECT_EQ(plan.signs(i)[j], sign);
    }
  }
}

TEST(HashPlanTest, LazyFillMatchesEagerBuild) {
  const uint32_t depth = 4, width = 64;
  const std::vector<SignedBucketHash> rows = MakeRows(depth, width, 42);
  std::mt19937 rng(3);
  const SparseVector x = RandomVector(rng, 20, 4096);
  HashPlan eager, lazy;
  eager.Build(rows, x);
  lazy.InitLazy(depth, x.nnz());
  for (size_t i = 0; i < x.nnz(); ++i) EXPECT_FALSE(lazy.has(i));
  // Fill out of order; slots are independent.
  for (size_t i = x.nnz(); i-- > 0;) lazy.FillSlot(rows, i, x.index(i));
  for (size_t i = 0; i < x.nnz(); ++i) {
    ASSERT_TRUE(lazy.has(i));
    for (uint32_t j = 0; j < depth; ++j) {
      EXPECT_EQ(lazy.offsets(i)[j], eager.offsets(i)[j]);
      EXPECT_EQ(lazy.signs(i)[j], eager.signs(i)[j]);
    }
  }
}

// -------------------------------------------- batched-path equivalence

// The plan-arena UpdateBatch must leave a model byte-identical to the
// per-example Update loop — margins AND full serialized state, for every
// plan-driven method. (learner_api_test asserts the margin half across all
// methods; this pins the state half to catch a scatter that diverges.)
TEST(HashPlanBatchTest, BatchStateBitIdenticalToPerExampleLoop) {
  const std::vector<Example> stream = MakeStream(2000, 21);
  for (const Method m :
       {Method::kWmSketch, Method::kAwmSketch, Method::kFeatureHashing}) {
    LearnerBuilder b;
    b.SetMethod(m).SetSeed(5);
    if (m == Method::kFeatureHashing) {
      b.SetWidth(512);
    } else {
      b.SetWidth(128).SetDepth(m == Method::kAwmSketch ? 1 : 5).SetHeapCapacity(32);
    }
    Learner one = std::move(b.Build()).value();
    Learner batched = std::move(b.Build()).value();

    std::vector<double> loop_margins, batch_margins;
    for (const Example& ex : stream) loop_margins.push_back(one.Update(ex));
    batched.UpdateBatch(stream, &batch_margins);

    ASSERT_EQ(loop_margins.size(), batch_margins.size());
    for (size_t i = 0; i < loop_margins.size(); ++i) {
      ASSERT_EQ(loop_margins[i], batch_margins[i]) << MethodName(m) << " @" << i;
    }
    EXPECT_EQ(Serialized(one), Serialized(batched)) << MethodName(m);
  }
}

// ---------------------------------------------------------- SIMD kernels

// Machine-checked coverage registry: tools/lint/wms_lint.py (rule
// simd-paired) extracts every __attribute__((target("avx2..."))) and
// __attribute__((target("avx512...")))  kernel from src/util/simd.cc and
// fails CI unless its name appears between these markers — so no vector
// kernel can ship without its scalar twin being asserted (bit-)equal in
// this binary. Keep each entry's comment pointing at the test that
// exercises it.
// wms-lint: simd-kernel-table begin
constexpr const char* const kAvx2KernelBitIdentityCoverage[] = {
    "GatherSignedAvx2",      // Avx2MatchesScalarOnAllKernels (exact equality)
    "StepDeltasAvx2",        // via PlanScatter in Avx2MatchesScalarOnAllKernels
    "MergeScaledTableAvx2",  // Avx2MatchesScalarOnAllKernels (exact equality)
    "ScaleTableAvx2",        // Avx2MatchesScalarOnAllKernels (exact equality)
    "L2NormSquaredAvx2",     // Avx2MatchesScalarOnAllKernels (1e-5 rel: 4-lane reduction reorders)
    "MedianLargeAvx2",       // MedianLargeBitIdenticalAcrossKernelPaths
    "GatherSignedPagedAvx2",      // PagedAndFusedKernelsBitIdenticalToScalar (exact)
    "GatherMedianFusedAvx2",      // PagedAndFusedKernelsBitIdenticalToScalar (exact, depths 1–7)
    "GatherMedianFusedPagedAvx2", // PagedAndFusedKernelsBitIdenticalToScalar (exact, depths 1–7)
    "AbsAboveFloorAvx2",          // PagedAndFusedKernelsBitIdenticalToScalar (exact, NaN + ±0 + ties)
    "PlanScatterAvx512",          // PagedAndFusedKernelsBitIdenticalToScalar (exact, duplicate offsets)
    "Crc32cSse42",                // Crc32cHardwareMatchesScalar (util_test.cc, exact equality)
};
// wms-lint: simd-kernel-table end

TEST(SimdKernelTest, KernelCoverageTableEntriesAreWellFormed) {
  for (const char* name : kAvx2KernelBitIdentityCoverage) {
    ASSERT_NE(name, nullptr);
    const std::string_view sv(name);
    EXPECT_GT(sv.size(), 0u);
    EXPECT_TRUE(sv.ends_with("Avx2") || sv.ends_with("Avx512") || sv.ends_with("Sse42"))
        << name;
  }
}

TEST(SimdKernelTest, ReportsCompileAndCpuState) {
#ifndef WMS_SIMD
  EXPECT_FALSE(simd::Available());  // compiled out: never available
#endif
  if (!simd::Available()) {
    EXPECT_FALSE(simd::Enabled());
    EXPECT_STREQ(simd::ActiveKernel(), "scalar");
  }
}

// The gather, margin, scatter, merge, and scale kernels are documented
// bit-identical between the scalar and AVX2 paths (signs are ±1 and all
// element-wise rounding matches); the ISSUE tolerance of 1e-5 is therefore
// met with exact equality. L2 reorders its reduction and gets the tolerance.
TEST(SimdKernelTest, Avx2MatchesScalarOnAllKernels) {
  if (!simd::Available()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  SimdStateGuard guard;

  const uint32_t depth = 5, width = 512;
  const std::vector<SignedBucketHash> rows = MakeRows(depth, width, 31);
  std::mt19937 rng(13);
  std::uniform_real_distribution<float> cell(-3.0f, 3.0f);
  std::vector<float> table(static_cast<size_t>(width) * depth);
  for (float& c : table) c = cell(rng);

  const SparseVector x = RandomVector(rng, 37, 1 << 14);
  HashPlan plan;
  plan.Build(rows, x);
  const simd::PlanView view = plan.View();
  const size_t n = view.entries();

  // GatherSigned.
  std::vector<float> got_scalar(n), got_avx2(n);
  simd::SetEnabled(false);
  simd::GatherSigned(table.data(), view.offsets, view.signs, n, got_scalar.data());
  simd::SetEnabled(true);
  simd::GatherSigned(table.data(), view.offsets, view.signs, n, got_avx2.data());
  for (size_t k = 0; k < n; ++k) EXPECT_EQ(got_scalar[k], got_avx2[k]) << k;

  // PlanMargin.
  simd::SetEnabled(false);
  const double margin_scalar =
      simd::PlanMargin(table.data(), view, x.values().data(), plan.scratch());
  simd::SetEnabled(true);
  const double margin_avx2 =
      simd::PlanMargin(table.data(), view, x.values().data(), plan.scratch());
  EXPECT_EQ(margin_scalar, margin_avx2);

  // PlanScatter.
  std::vector<float> table_a = table, table_b = table;
  std::vector<float> scatter_scratch(x.nnz());
  simd::SetEnabled(false);
  simd::PlanScatter(table_a.data(), view, x.values().data(), 0.0375,
                    scatter_scratch.data());
  simd::SetEnabled(true);
  simd::PlanScatter(table_b.data(), view, x.values().data(), 0.0375,
                    scatter_scratch.data());
  EXPECT_EQ(table_a, table_b);

  // MergeScaledTable / ScaleTable.
  std::vector<float> src(table.size());
  for (float& c : src) c = cell(rng);
  std::vector<float> dst_a = table, dst_b = table;
  simd::SetEnabled(false);
  simd::MergeScaledTable(dst_a.data(), src.data(), src.size(), -0.731);
  simd::ScaleTable(dst_a.data(), dst_a.size(), 0.25f);
  simd::SetEnabled(true);
  simd::MergeScaledTable(dst_b.data(), src.data(), src.size(), -0.731);
  simd::ScaleTable(dst_b.data(), dst_b.size(), 0.25f);
  EXPECT_EQ(dst_a, dst_b);

  // L2NormSquared: reduction order differs; 1e-5 relative tolerance.
  simd::SetEnabled(false);
  const double l2_scalar = simd::L2NormSquared(table.data(), table.size());
  simd::SetEnabled(true);
  const double l2_avx2 = simd::L2NormSquared(table.data(), table.size());
  EXPECT_NEAR(l2_avx2, l2_scalar, 1e-5 * std::fabs(l2_scalar));
}

// SIMD wave 2 kernels: the paged page-pointer-walk gather, the fused
// gather+median (flat and paged, every networked depth), the heap-offer
// prefilter sweep, and the conflict-serialized AVX-512 scatter. All are
// documented bit-identical; the inputs deliberately include ±0 cells (where
// vminps/vmaxps would diverge from std::min/std::max), NaN weights, values
// exactly at the prefilter floor, and duplicate scatter offsets (where an
// unserialized scatter would reorder rounding).
TEST(SimdKernelTest, PagedAndFusedKernelsBitIdenticalToScalar) {
  if (!simd::Available()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  SimdStateGuard guard;
  simd::KernelThresholds force;
  force.gather_min_entries = 1;
  force.paged_gather_min_entries = 1;
  force.fused_median_min_keys = 1;
  force.scatter_min_nnz = 1;
  force.sweep_min_elems = 1;
  simd::SetThresholds(force);

  std::mt19937 rng(101);
  std::uniform_real_distribution<float> cell(-3.0f, 3.0f);
  constexpr size_t kCells = 1u << 13;
  std::vector<float> table(kCells);
  for (float& c : table) c = cell(rng);
  for (size_t i = 0; i < kCells; i += 61) table[i] = (i % 2) ? 0.0f : -0.0f;

  // Page the same cells: 512-cell pages, so plans straddle page boundaries.
  constexpr uint32_t kShift = 9, kMask = (1u << kShift) - 1;
  std::vector<const float*> pages(kCells >> kShift);
  for (size_t p = 0; p < pages.size(); ++p) pages[p] = table.data() + (p << kShift);

  for (uint32_t depth = 1; depth <= 7; ++depth) {
    for (const size_t keys : {1ul, 7ul, 8ul, 40ul, 333ul}) {
      const size_t n = keys * depth;
      std::vector<uint32_t> off(n);
      std::vector<float> sg(n);
      for (size_t e = 0; e < n; ++e) {
        off[e] = rng() & (kCells - 1);
        sg[e] = (rng() & 1) ? 1.0f : -1.0f;
      }
      // Scalar references with the kernels forced off the AVX2 path.
      simd::SetEnabled(false);
      std::vector<float> flat_ref(n), paged_scalar(n);
      simd::GatherSigned(table.data(), off.data(), sg.data(), n, flat_ref.data());
      simd::GatherSignedPaged(pages.data(), kShift, kMask, off.data(), sg.data(), n,
                              paged_scalar.data());
      const double factor = 2.2360679774997896;  // √5: an irrational factor rounds
      std::vector<float> med_ref(keys);
      simd::GatherMedianFused(table.data(), off.data(), sg.data(), keys, depth, factor,
                              med_ref.data());
      // Cross-check the scalar fused median against first principles.
      for (size_t k = 0; k < keys; ++k) {
        float est[7];
        for (uint32_t j = 0; j < depth; ++j) est[j] = flat_ref[k * depth + j];
        ASSERT_EQ(med_ref[k],
                  static_cast<float>(factor * static_cast<double>(MedianInPlace(est, depth))))
            << "depth=" << depth << " k=" << k;
      }
      simd::SetEnabled(true);
      std::vector<float> paged_avx2(n), med_avx2(keys), med_paged(keys);
      simd::GatherSignedPaged(pages.data(), kShift, kMask, off.data(), sg.data(), n,
                              paged_avx2.data());
      simd::GatherMedianFused(table.data(), off.data(), sg.data(), keys, depth, factor,
                              med_avx2.data());
      simd::GatherMedianFusedPaged(pages.data(), kShift, kMask, off.data(), sg.data(),
                                   keys, depth, factor, med_paged.data());
      ASSERT_EQ(paged_scalar, flat_ref) << "paged view must read the same cells";
      ASSERT_EQ(paged_avx2, flat_ref) << "depth=" << depth << " keys=" << keys;
      ASSERT_EQ(med_avx2, med_ref) << "depth=" << depth << " keys=" << keys;
      ASSERT_EQ(med_paged, med_ref) << "depth=" << depth << " keys=" << keys;
    }
  }

  // AbsAboveFloor: NaN, ±0, and exact-floor ties must all match scalar.
  {
    std::vector<float> v(257);
    for (float& x : v) x = cell(rng);
    v[0] = std::nanf("");
    v[1] = 0.0f;
    v[2] = -0.0f;
    const float floor = 1.25f;
    v[3] = floor;
    v[4] = -floor;
    std::vector<float> abs_a(v.size()), abs_b(v.size());
    std::vector<uint8_t> abv_a(v.size()), abv_b(v.size());
    simd::SetEnabled(false);
    simd::AbsAboveFloor(v.data(), v.size(), floor, abs_a.data(), abv_a.data());
    simd::SetEnabled(true);
    simd::AbsAboveFloor(v.data(), v.size(), floor, abs_b.data(), abv_b.data());
    for (size_t i = 0; i < v.size(); ++i) {
      ASSERT_EQ(std::memcmp(&abs_a[i], &abs_b[i], sizeof(float)), 0) << i;  // NaN-safe
      ASSERT_EQ(abv_a[i], abv_b[i]) << i;
    }
    EXPECT_EQ(abv_a[0], 1u);  // NaN is never rejected by the floor test
    EXPECT_EQ(abv_a[3], 0u);  // exactly at the floor: rejected, like Offer
  }

  // PlanScatter on a deliberately tiny offset range: many duplicate offsets
  // per 16-lane block, so the AVX-512 conflict-serialization (on parts that
  // have it) must reproduce the scalar store order exactly.
  {
    const uint32_t d = 3;
    const size_t nnz = 64;
    std::vector<uint32_t> off(nnz * d);
    std::vector<float> sg(nnz * d), vals(nnz), scratch(nnz);
    for (size_t e = 0; e < nnz * d; ++e) {
      off[e] = rng() & 31;
      sg[e] = (rng() & 1) ? 1.0f : -1.0f;
    }
    for (float& x : vals) x = cell(rng);
    std::vector<float> t_scalar(table.begin(), table.begin() + 32);
    std::vector<float> t_simd = t_scalar;
    const simd::PlanView plan{off.data(), sg.data(), nnz, d};
    simd::SetEnabled(false);
    simd::PlanScatter(t_scalar.data(), plan, vals.data(), 0.0317, scratch.data());
    simd::SetEnabled(true);
    simd::PlanScatter(t_simd.data(), plan, vals.data(), 0.0317, scratch.data());
    EXPECT_EQ(t_scalar, t_simd);
  }
}

// The paged-plan branches of the frozen read models (MarginBatchPaged /
// EstimateBatchPaged through GatherSignedPaged and the fused paged median)
// dispatch only where the paged calibration approves — force them on and
// assert bit-identity against the per-call fused paged loops, for both the
// fused-median and the gather-to-scratch estimate routes.
TEST(SimdKernelTest, ForcedPagedReadPlanBranchesMatchFusedReads) {
  if (!simd::Available()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  SimdStateGuard guard;
  simd::SetEnabled(true);
  simd::SetPagedReadPlanDispatched(true);

  const std::vector<Example> stream = MakeStream(1500, 53);
  SplitMix64 idgen(9);
  std::vector<uint32_t> ids;
  for (int i = 0; i < 3000; ++i) {
    ids.push_back(static_cast<uint32_t>(idgen.Next() % (1 << 14)));
  }
  // Round 0 forces the fused gather+median estimate route; round 1 disables
  // it (fused_median_min_keys = UINT32_MAX) so the paged gather-to-scratch +
  // sorting-network route runs instead. Both must equal the fused per-call
  // answers exactly.
  for (const int round : {0, 1}) {
    simd::KernelThresholds t;
    t.gather_min_entries = 1;
    t.paged_gather_min_entries = 1;
    t.fused_median_min_keys = round == 0 ? 1 : 0xffffffffu;
    simd::SetThresholds(t);
    simd::SetPagedReadPlanDispatched(true);  // SetThresholds settled it; re-force
    for (const Method m :
         {Method::kWmSketch, Method::kAwmSketch, Method::kFeatureHashing}) {
      LearnerBuilder b;
      b.SetMethod(m).SetSeed(29);
      if (m == Method::kFeatureHashing) {
        b.SetWidth(512);
      } else {
        b.SetWidth(128).SetDepth(m == Method::kAwmSketch ? 2 : 5).SetHeapCapacity(32);
      }
      Learner model = std::move(b.Build()).value();
      model.UpdateBatch(std::span<const Example>(stream.data(), 1200));
      const std::unique_ptr<const ReadModel> frozen = model.impl().MakeReadModel();

      std::vector<double> batched(300);
      frozen->PredictBatch(std::span<const Example>(stream.data() + 1200, 300),
                           batched.data());
      for (size_t e = 0; e < 300; ++e) {
        ASSERT_EQ(batched[e], frozen->PredictMargin(stream[1200 + e].x))
            << MethodName(m) << " round=" << round << " @" << e;
      }
      std::vector<float> estimates(ids.size());
      frozen->EstimateBatch(ids, estimates.data());
      for (size_t i = 0; i < ids.size(); ++i) {
        ASSERT_EQ(estimates[i], frozen->Estimate(ids[i]))
            << MethodName(m) << " round=" << round << " @" << i;
      }
    }
  }
}

// The batched heap-offer route (full-plan scatter + fused medians + the
// AbsAboveFloor prefilter, taken when an example's offsets are pairwise
// distinct) must leave the WM model byte-identical to the per-feature
// scatter/offer interleave. Width 4096 × depth 3 passes the birthday guard
// for SmallTest's nnz ≤ 25, so the batched route genuinely runs here (the
// occasional colliding example falls back per-feature — also part of the
// contract under test).
TEST(SimdKernelTest, BatchedHeapOffersBitIdenticalToInterleaved) {
  if (!simd::Available()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  SimdStateGuard guard;
  simd::KernelThresholds force;
  force.gather_min_entries = 1;
  force.paged_gather_min_entries = 1;
  force.fused_median_min_keys = 1;
  force.scatter_min_nnz = 1;
  force.sweep_min_elems = 1;
  simd::SetThresholds(force);

  const std::vector<Example> stream = MakeStream(2500, 59);
  LearnerBuilder b;
  b.SetMethod(Method::kWmSketch).SetSeed(41).SetWidth(4096).SetDepth(3).SetHeapCapacity(24);
  Learner interleaved = std::move(b.Build()).value();
  Learner batched = std::move(b.Build()).value();

  simd::SetEnabled(false);  // FusedMedianDispatched == false: per-feature loop
  std::vector<double> margins_a;
  interleaved.UpdateBatch(stream, &margins_a);
  simd::SetEnabled(true);  // distinct-offset examples take the batched route
  std::vector<double> margins_b;
  batched.UpdateBatch(stream, &margins_b);

  ASSERT_EQ(margins_a.size(), margins_b.size());
  for (size_t i = 0; i < margins_a.size(); ++i) {
    ASSERT_EQ(margins_a[i], margins_b[i]) << "@" << i;
  }
  EXPECT_EQ(Serialized(interleaved), Serialized(batched));
  // The heaps must agree too (Serialized covers the table; TopK pins the
  // tracked set and its stored weights).
  const LearnerSnapshot snap_a = interleaved.Snapshot();
  const LearnerSnapshot snap_b = batched.Snapshot();
  ASSERT_EQ(snap_a.top_k().size(), snap_b.top_k().size());
  for (size_t i = 0; i < snap_a.top_k().size(); ++i) {
    EXPECT_EQ(snap_a.top_k()[i], snap_b.top_k()[i]) << i;
  }
}

// End-to-end: a WM/AWM/hash model trained with the AVX2 kernels produces
// margins and state bit-identical to the scalar fallback — which the margin
// dump against the pre-plan seed showed equals WMS_SIMD=OFF behavior.
TEST(SimdKernelTest, TrainingIsBitIdenticalAcrossKernelPaths) {
  if (!simd::Available()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  SimdStateGuard guard;
  const std::vector<Example> stream = MakeStream(1500, 33);
  for (const Method m :
       {Method::kWmSketch, Method::kAwmSketch, Method::kFeatureHashing}) {
    LearnerBuilder b;
    b.SetMethod(m).SetSeed(17);
    if (m == Method::kFeatureHashing) {
      b.SetWidth(1024);
    } else {
      b.SetWidth(256).SetDepth(m == Method::kAwmSketch ? 1 : 3).SetHeapCapacity(64);
    }
    Learner scalar_model = std::move(b.Build()).value();
    Learner simd_model = std::move(b.Build()).value();

    simd::SetEnabled(false);
    std::vector<double> scalar_margins;
    scalar_model.UpdateBatch(stream, &scalar_margins);
    simd::SetEnabled(true);
    std::vector<double> simd_margins;
    simd_model.UpdateBatch(stream, &simd_margins);

    ASSERT_EQ(scalar_margins.size(), simd_margins.size());
    for (size_t i = 0; i < scalar_margins.size(); ++i) {
      ASSERT_EQ(scalar_margins[i], simd_margins[i]) << MethodName(m) << " @" << i;
    }
    EXPECT_EQ(Serialized(scalar_model), Serialized(simd_model)) << MethodName(m);
  }
}

// The wide-gather (plan) branches of the batched read paths dispatch only
// where the calibration measured hardware gathers profitable — which may be
// nowhere on a given machine. Force them on and assert bit-identity against
// the per-call loops, so a latent plan-branch bug cannot ship green just
// because the recording machine routes reads fused.
TEST(SimdKernelTest, ForcedReadPlanBranchesMatchFusedReads) {
  if (!simd::Available()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  SimdStateGuard guard;
  simd::KernelThresholds t;  // defaults; gather threshold low enough for chunks
  t.gather_min_entries = 1;
  simd::SetThresholds(t);
  simd::SetEnabled(true);
  simd::SetReadPlanDispatched(true);

  const std::vector<Example> stream = MakeStream(1500, 47);
  SplitMix64 idgen(3);
  std::vector<uint32_t> ids;
  for (int i = 0; i < 3000; ++i) {
    ids.push_back(static_cast<uint32_t>(idgen.Next() % (1 << 14)));
  }
  for (const Method m :
       {Method::kWmSketch, Method::kAwmSketch, Method::kFeatureHashing}) {
    LearnerBuilder b;
    b.SetMethod(m).SetSeed(29);
    if (m == Method::kFeatureHashing) {
      b.SetWidth(512);
    } else {
      b.SetWidth(128).SetDepth(m == Method::kAwmSketch ? 2 : 5).SetHeapCapacity(32);
    }
    Learner model = std::move(b.Build()).value();
    model.UpdateBatch(std::span<const Example>(stream.data(), 1200));

    std::vector<double> batched;
    model.PredictBatch(std::span<const Example>(stream.data() + 1200, 300), &batched);
    for (size_t e = 0; e < 300; ++e) {
      ASSERT_EQ(batched[e], model.PredictMargin(stream[1200 + e].x))
          << MethodName(m) << " @" << e;
    }
    std::vector<float> estimates;
    model.EstimateBatch(ids, &estimates);
    for (size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(estimates[i], model.WeightEstimate(ids[i])) << MethodName(m) << " @" << i;
    }
  }
  // SimdStateGuard restores thresholds/read-plan/enabled, assert or not.
}

// ------------------------------------------------------- median networks

TEST(MedianNetworkTest, MatchesNthElementExhaustively) {
  // 0-1 principle over every binary vector plus every permutation of
  // distinct values, for each networked size (and the fallback at 8, 9).
  for (size_t n = 1; n <= 9; ++n) {
    const size_t mid = (n - 1) / 2;
    for (unsigned m = 0; m < (1u << n); ++m) {
      float v[9], r[9];
      for (size_t i = 0; i < n; ++i) v[i] = r[i] = ((m >> i) & 1) ? 1.0f : 0.0f;
      std::nth_element(r, r + mid, r + n);
      EXPECT_EQ(MedianInPlace(v, n), r[mid]) << "binary n=" << n << " m=" << m;
    }
    if (n > 7) continue;  // permutations get large; networks end at 7
    float p[7];
    std::iota(p, p + n, 0.0f);
    do {
      float v[7];
      std::copy(p, p + n, v);
      EXPECT_EQ(MedianInPlace(v, n), static_cast<float>(mid)) << "perm n=" << n;
    } while (std::next_permutation(p, p + n));
  }
}

TEST(MedianNetworkTest, MatchesNthElementOnRandomFloats) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> val(-10.0f, 10.0f);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t n = 1 + static_cast<size_t>(trial) % 9;
    float v[9], r[9];
    for (size_t i = 0; i < n; ++i) v[i] = r[i] = val(rng);
    const size_t mid = (n - 1) / 2;
    std::nth_element(r, r + mid, r + n);
    ASSERT_EQ(MedianInPlace(v, n), r[mid]);
  }
}

// The depth >= 8 median (rank-counting selection on AVX2, nth_element on
// scalar) must return the bit-identical order statistic on both paths, for
// every size up to kMaxSketchDepth, including heavy-duplicate inputs where
// rank arithmetic is easiest to get wrong.
TEST(MedianNetworkTest, MedianLargeBitIdenticalAcrossKernelPaths) {
  if (!simd::Available()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  SimdStateGuard guard;
  std::mt19937 rng(23);
  std::uniform_real_distribution<float> val(-10.0f, 10.0f);
  std::uniform_int_distribution<int> small(-2, 2);  // forces duplicates
  for (int trial = 0; trial < 4000; ++trial) {
    const size_t n = 8 + static_cast<size_t>(trial) % 57;  // 8..64
    std::vector<float> v(n), a(n), b(n);
    const bool dupes = (trial % 2) == 0;
    for (size_t i = 0; i < n; ++i) {
      v[i] = dupes ? static_cast<float>(small(rng)) : val(rng);
    }
    a = v;
    b = v;
    const size_t mid = (n - 1) / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid), v.end());
    simd::SetEnabled(false);
    const float scalar = simd::MedianLarge(a.data(), n);
    simd::SetEnabled(true);
    const float avx2 = simd::MedianLarge(b.data(), n);
    ASSERT_EQ(scalar, v[mid]) << "n=" << n;
    ASSERT_EQ(avx2, v[mid]) << "n=" << n;
  }
}

// Dispatch thresholds are runtime-tunable and never change results: the
// same gather dispatches scalar below the threshold and AVX2 above it,
// bit-identically.
TEST(SimdKernelTest, ThresholdsGateDispatchWithoutChangingResults) {
  const simd::KernelThresholds before = simd::Thresholds();
  simd::KernelThresholds t = before;
  t.gather_min_entries = 1u << 30;  // force scalar
  simd::SetThresholds(t);
  EXPECT_EQ(simd::Thresholds().gather_min_entries, 1u << 30);

  const std::vector<SignedBucketHash> rows = MakeRows(5, 256, 3);
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> cell(-3.0f, 3.0f);
  std::vector<float> table(5 * 256);
  for (float& c : table) c = cell(rng);
  const SparseVector x = RandomVector(rng, 40, 1 << 14);
  HashPlan plan;
  plan.Build(rows, x);
  const simd::PlanView view = plan.View();
  std::vector<float> scalar_out(view.entries()), avx2_out(view.entries());
  simd::GatherSigned(table.data(), view.offsets, view.signs, view.entries(),
                     scalar_out.data());
  t.gather_min_entries = 1;  // force AVX2 (when available/enabled)
  simd::SetThresholds(t);
  simd::GatherSigned(table.data(), view.offsets, view.signs, view.entries(),
                     avx2_out.data());
  simd::SetThresholds(before);
  EXPECT_EQ(scalar_out, avx2_out);
}

// ------------------------------------------- single-hash combined ops

TEST(SingleHashOpsTest, CountSketchUpdateAndQueryMatchesSeparateCalls) {
  CountSketch a(256, 5, 77), b(256, 5, 77);
  SplitMix64 keys(3);
  for (int i = 0; i < 3000; ++i) {
    const uint32_t key = static_cast<uint32_t>(keys.Next() % 1000);
    const float delta = static_cast<float>((i % 7) - 3) * 0.5f;
    a.Update(key, delta);
    const float separate = a.Query(key);
    const float combined = b.UpdateAndQuery(key, delta);
    ASSERT_EQ(separate, combined) << i;
  }
}

TEST(SingleHashOpsTest, CountMinUpdateAndQueryMatchesSeparateCalls) {
  for (const bool conservative : {false, true}) {
    CountMinSketch a(128, 4, 55, conservative), b(128, 4, 55, conservative);
    SplitMix64 keys(8);
    for (int i = 0; i < 3000; ++i) {
      const uint32_t key = static_cast<uint32_t>(keys.Next() % 500);
      a.Update(key, 1.0);
      const double separate = a.Query(key);
      const double combined = b.UpdateAndQuery(key, 1.0);
      ASSERT_EQ(separate, combined) << "conservative=" << conservative << " @" << i;
    }
    EXPECT_EQ(a.TotalMass(), b.TotalMass());
  }
}

// ----------------------------------------------- hash-count invariant

// Exactly one tabulation-hash evaluation per (feature, row) pair per WM
// update (the seed code paid three), and none at all for AWM active-set
// members. Requires the -DWMS_HASH_STATS=ON diagnostics build.
TEST(HashCountTest, UpdateHashesEachFeatureRowPairOnce) {
#ifndef WMS_HASH_STATS
  GTEST_SKIP() << "rebuild with -DWMS_HASH_STATS=ON to count hash evaluations";
#else
  const uint32_t depth = 5;
  Learner wm = std::move(LearnerBuilder()
                             .SetMethod(Method::kWmSketch)
                             .SetWidth(128)
                             .SetDepth(depth)
                             .SetHeapCapacity(16)
                             .Build())
                   .value();
  const std::vector<Example> stream = MakeStream(200, 71);
  for (const Example& ex : stream) {
    g_hash_evaluations = 0;
    wm.Update(ex);
    EXPECT_EQ(g_hash_evaluations, ex.x.nnz() * depth);
  }
  // The AWM hashes at most nnz×depth (tail features once; active members
  // never; evictee fold-backs add 2·depth each, bounded by one per nonzero).
  Learner awm = std::move(LearnerBuilder()
                              .SetMethod(Method::kAwmSketch)
                              .SetWidth(128)
                              .SetDepth(1)
                              .SetHeapCapacity(64)
                              .Build())
                    .value();
  for (const Example& ex : stream) {
    g_hash_evaluations = 0;
    awm.Update(ex);
    EXPECT_LE(g_hash_evaluations, 3 * ex.x.nnz());
  }
#endif
}

}  // namespace
}  // namespace wmsketch
