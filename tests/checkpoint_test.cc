// Crash-safety tests for the atomic checkpoint/recover machinery
// (src/engine/checkpoint.{h,cc}): round-trips are byte-identical, a torn or
// corrupt newest checkpoint falls back to the one before it, injected IO
// faults leave the previous checkpoint set recoverable, and death tests
// crash the process at every planted checkpoint failpoint and verify the
// directory recovers to a byte-identical model afterwards.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/learner.h"
#include "datagen/classification_gen.h"
#include "engine/checkpoint.h"
#include "engine/sharded_learner.h"
#include "util/failpoint.h"
#include "util/memory_cost.h"

namespace wmsketch {
namespace {

namespace fs = std::filesystem;

LearnerOptions Opts() {
  LearnerOptions opts;
  opts.lambda = 1e-4;
  opts.rate = LearningRate::Constant(0.2);
  opts.seed = 42;
  return opts;
}

// Fresh empty directory under the test tmpdir, unique per test case.
std::string UniqueDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "wms_ckpt_" + name;
  fs::remove_all(dir);
  return dir;
}

LearnerBuilder Builder() {
  return LearnerBuilder()
      .SetMethod(Method::kAwmSketch)
      .SetBudgetBytes(KiB(2))
      .SetLambda(1e-4)
      .SetLearningRate(LearningRate::Constant(0.2))
      .SetSeed(42);
}

void Train(Learner& learner, int examples, uint64_t seed) {
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), seed);
  std::vector<Example> stream;
  stream.reserve(examples);
  for (int i = 0; i < examples; ++i) stream.push_back(gen.Next());
  learner.UpdateBatch(stream);
}

std::string Bytes(const Learner& learner) {
  std::ostringstream buffer(std::ios::binary);
  EXPECT_TRUE(SaveLearner(learner, buffer).ok());
  return std::move(buffer).str();
}

size_t CommittedCount(const std::string& dir) {
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".wms") ++n;
  }
  return n;
}

// Highest committed "ckpt-<seq>.wms" sequence in `dir` (0 when none).
uint64_t MaxSequence(const std::string& dir) {
  uint64_t max_seq = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (entry.path().extension() != ".wms") continue;
    const std::string digits = name.substr(5, name.size() - 5 - 4);
    max_seq = std::max<uint64_t>(max_seq, std::strtoull(digits.c_str(), nullptr, 10));
  }
  return max_seq;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(CheckpointTest, RoundTripRestoresBitIdenticalModel) {
  const std::string dir = UniqueDir("roundtrip");
  Result<Learner> built = Builder().CheckpointTo(dir).Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Learner learner = std::move(built).value();
  Train(learner, 500, 7);
  ASSERT_TRUE(learner.CheckpointNow().ok());

  Result<Learner> recovered = Checkpointer::RecoverFrom(dir, Opts());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Bytes(recovered.value()), Bytes(learner));
  EXPECT_EQ(recovered.value().steps(), learner.steps());
}

TEST_F(CheckpointTest, PeriodicCadenceWritesAndPrunes) {
  const std::string dir = UniqueDir("cadence");
  Result<Learner> built =
      Builder().CheckpointTo(dir, /*keep_last=*/2).CheckpointEvery(250).Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Learner learner = std::move(built).value();
  Train(learner, 1000, 9);  // checkpoints at 250, 500, 750, 1000

  EXPECT_EQ(CommittedCount(dir), 2u);  // keep_last pruned 1 and 2
  EXPECT_TRUE(fs::exists(dir + "/ckpt-3.wms"));
  EXPECT_TRUE(fs::exists(dir + "/ckpt-4.wms"));
  EXPECT_TRUE(learner.last_checkpoint_status().ok());

  // The newest checkpoint is the end-of-stream state, byte-identical.
  Result<Learner> recovered = Checkpointer::RecoverFrom(dir, Opts());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(Bytes(recovered.value()), Bytes(learner));
}

TEST_F(CheckpointTest, CheckpointNowWithoutEnablementFailsCleanly) {
  Result<Learner> built = Builder().Build();
  ASSERT_TRUE(built.ok());
  Learner learner = std::move(built).value();
  const Status st = learner.CheckpointNow();
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointTest, RecoverFromMissingDirectoryIsNotFound) {
  const Result<Learner> r =
      Checkpointer::RecoverFrom(UniqueDir("never_created"), Opts());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, CorruptNewestFallsBackToPrevious) {
  const std::string dir = UniqueDir("corrupt_newest");
  Result<Learner> built = Builder().CheckpointTo(dir).Build();
  ASSERT_TRUE(built.ok());
  Learner learner = std::move(built).value();
  Train(learner, 300, 11);
  ASSERT_TRUE(learner.CheckpointNow().ok());  // ckpt-1: state A
  const std::string state_a = Bytes(learner);
  Train(learner, 300, 13);
  ASSERT_TRUE(learner.CheckpointNow().ok());  // ckpt-2: state B

  {  // Flip one payload byte in the newest checkpoint: CRC must catch it.
    std::fstream f(dir + "/ckpt-2.wms",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    f.seekp(size / 2);
    char byte;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte ^= 0x20;
    f.seekp(size / 2);
    f.write(&byte, 1);
  }

  std::vector<std::string> skipped;
  Result<Learner> recovered = Checkpointer::RecoverFrom(dir, Opts(), &skipped);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Bytes(recovered.value()), state_a);
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_NE(skipped[0].find("ckpt-2.wms"), std::string::npos) << skipped[0];
}

TEST_F(CheckpointTest, TruncatedNewestFallsBackToPrevious) {
  const std::string dir = UniqueDir("torn_newest");
  Result<Learner> built = Builder().CheckpointTo(dir).Build();
  ASSERT_TRUE(built.ok());
  Learner learner = std::move(built).value();
  Train(learner, 300, 17);
  ASSERT_TRUE(learner.CheckpointNow().ok());
  const std::string state_a = Bytes(learner);
  Train(learner, 300, 19);
  ASSERT_TRUE(learner.CheckpointNow().ok());

  fs::resize_file(dir + "/ckpt-2.wms", fs::file_size(dir + "/ckpt-2.wms") / 2);

  Result<Learner> recovered = Checkpointer::RecoverFrom(dir, Opts());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(Bytes(recovered.value()), state_a);
}

TEST_F(CheckpointTest, InjectedWriteFaultLeavesPreviousRecoverable) {
  const std::string dir = UniqueDir("inject_error");
  Result<Learner> built = Builder().CheckpointTo(dir).Build();
  ASSERT_TRUE(built.ok());
  Learner learner = std::move(built).value();
  Train(learner, 300, 23);
  ASSERT_TRUE(learner.CheckpointNow().ok());
  const std::string state_a = Bytes(learner);
  Train(learner, 300, 29);

  for (const char* site :
       {"checkpoint:mid_payload", "checkpoint:fsync", "checkpoint:before_rename"}) {
    failpoint::Arm(site, failpoint::Action::kError, 1);
    const Status st = learner.CheckpointNow();
    EXPECT_EQ(st.code(), StatusCode::kIOError) << site << ": " << st.ToString();
    // The failed attempt must not leave a temp file or eat the old state.
    for (const auto& entry : fs::directory_iterator(dir)) {
      EXPECT_NE(entry.path().extension(), ".tmp") << site;
    }
    Result<Learner> recovered = Checkpointer::RecoverFrom(dir, Opts());
    ASSERT_TRUE(recovered.ok()) << site;
    EXPECT_EQ(Bytes(recovered.value()), state_a) << site;
  }

  // With the faults exhausted the same learner checkpoints fine.
  ASSERT_TRUE(learner.CheckpointNow().ok());
  Result<Learner> recovered = Checkpointer::RecoverFrom(dir, Opts());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(Bytes(recovered.value()), Bytes(learner));
}

TEST_F(CheckpointTest, InjectedReadFaultSkipsNewestDuringRecovery) {
  const std::string dir = UniqueDir("inject_read");
  Result<Learner> built = Builder().CheckpointTo(dir).Build();
  ASSERT_TRUE(built.ok());
  Learner learner = std::move(built).value();
  Train(learner, 300, 31);
  ASSERT_TRUE(learner.CheckpointNow().ok());
  const std::string state_a = Bytes(learner);
  Train(learner, 300, 37);
  ASSERT_TRUE(learner.CheckpointNow().ok());

  failpoint::Arm("recover:read_error", failpoint::Action::kError, 1);
  std::vector<std::string> skipped;
  Result<Learner> recovered = Checkpointer::RecoverFrom(dir, Opts(), &skipped);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(Bytes(recovered.value()), state_a);  // newest was skipped
  ASSERT_EQ(skipped.size(), 1u);
}

TEST_F(CheckpointTest, OpenSweepsStaleTempFilesAndResumesSequence) {
  const std::string dir = UniqueDir("sweep");
  fs::create_directories(dir);
  std::ofstream(dir + "/ckpt-7.wms.tmp", std::ios::binary) << "torn garbage";

  Result<Checkpointer> cp = Checkpointer::Open(dir);
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  EXPECT_FALSE(fs::exists(dir + "/ckpt-7.wms.tmp"));

  Result<Learner> built = Builder().Build();
  ASSERT_TRUE(built.ok());
  Learner learner = std::move(built).value();
  Train(learner, 100, 41);
  ASSERT_TRUE(cp.value().Write(learner).ok());
  EXPECT_TRUE(fs::exists(dir + "/ckpt-1.wms"));  // tmp did not claim a sequence
}

TEST_F(CheckpointTest, ShardedEngineCheckpointsAtMergeBarriers) {
  const std::string dir = UniqueDir("sharded");
  Result<ShardedLearner> built = Builder()
                                     .Shards(2)
                                     .SetSyncInterval(0)
                                     .CheckpointTo(dir, /*keep_last=*/4)
                                     .CheckpointEvery(300)
                                     .BuildSharded();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ShardedLearner engine = std::move(built).value();

  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), 43);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(engine.Push(gen.Next()).ok());
  EXPECT_TRUE(engine.last_checkpoint_status().ok());
  EXPECT_GE(CommittedCount(dir), 1u);  // periodic barrier checkpoints landed

  ASSERT_TRUE(engine.CheckpointNow().ok());
  const uint64_t before_collapse = MaxSequence(dir);

  Result<Learner> collapsed = engine.Collapse();
  ASSERT_TRUE(collapsed.ok()) << collapsed.status().ToString();
  EXPECT_TRUE(collapsed.value().last_checkpoint_status().ok());
  EXPECT_GT(MaxSequence(dir), before_collapse);  // Collapse cut a final one

  // The newest checkpoint is the collapsed model, byte for byte.
  Result<Learner> recovered = Checkpointer::RecoverFrom(dir, Opts());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(Bytes(recovered.value()), Bytes(collapsed.value()));
}

// ------------------------------------------------------------- death tests
//
// Each test crashes a forked child (std::_Exit(134) inside the armed
// failpoint) at a different instant of the commit protocol, then verifies
// the parent can recover the directory the child left behind — the
// in-process stand-in for kill -9 during a checkpoint.

using CheckpointDeathTest = CheckpointTest;

struct CrashSite {
  const char* site;
  bool commits;  // does the crash land after the rename (commit point)?
  const char* leftover_tmp;
};

TEST_F(CheckpointDeathTest, CrashAtEveryFailpointLeavesDirectoryRecoverable) {
  const CrashSite kSites[] = {
      {"checkpoint:mid_payload", false, "ckpt-2.wms.tmp"},
      {"checkpoint:before_rename", false, "ckpt-2.wms.tmp"},
      {"checkpoint:after_rename", true, nullptr},
  };
  for (const CrashSite& cs : kSites) {
    const std::string dir = UniqueDir(std::string("crash_") +
                                      (cs.commits ? "after" : "before"));
    Result<Learner> built = Builder().CheckpointTo(dir).Build();
    ASSERT_TRUE(built.ok());
    Learner learner = std::move(built).value();
    Train(learner, 300, 47);
    ASSERT_TRUE(learner.CheckpointNow().ok());  // ckpt-1: state A
    const std::string state_a = Bytes(learner);
    Train(learner, 300, 53);
    const std::string state_b = Bytes(learner);

    EXPECT_EXIT(
        {
          failpoint::Arm(cs.site, failpoint::Action::kCrash, 1);
          (void)learner.CheckpointNow();
          std::_Exit(0);  // unreachable: the failpoint must have crashed
        },
        ::testing::ExitedWithCode(failpoint::kCrashExitCode), "")
        << cs.site;

    if (cs.leftover_tmp != nullptr) {
      EXPECT_TRUE(fs::exists(dir + "/" + cs.leftover_tmp))
          << cs.site << " should leave a torn temp file";
    }

    // Recovery sees state B iff the crash landed after the rename.
    Result<Learner> recovered = Checkpointer::RecoverFrom(dir, Opts());
    ASSERT_TRUE(recovered.ok()) << cs.site << ": " << recovered.status().ToString();
    EXPECT_EQ(Bytes(recovered.value()), cs.commits ? state_b : state_a) << cs.site;

    // Reopening the directory sweeps any torn temp file and resumes the
    // sequence past the committed set.
    Result<Checkpointer> reopened = Checkpointer::Open(dir);
    ASSERT_TRUE(reopened.ok()) << cs.site;
    for (const auto& entry : fs::directory_iterator(dir)) {
      EXPECT_NE(entry.path().extension(), ".tmp") << cs.site;
    }
  }
}

}  // namespace
}  // namespace wmsketch
