// Corruption fuzz harness for the snapshot wire formats: truncations at
// every prefix and random bit flips, over every method's Save*/Load* pair
// and the SaveLearner/LoadLearner facade, must always fail cleanly — a
// Status, never a crash, hang, or huge transient allocation. Rides the
// ASan/UBSan CI jobs like every other ctest binary.

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/learner.h"
#include "core/snapshot_io.h"
#include "datagen/classification_gen.h"
#include "util/memory_cost.h"
#include "util/random.h"

namespace wmsketch {
namespace {

LearnerOptions Opts(uint64_t seed = 42) {
  LearnerOptions opts;
  opts.lambda = 1e-4;
  opts.rate = LearningRate::Constant(0.2);
  opts.seed = seed;
  return opts;
}

Learner TrainedLearner(Method method, int examples, uint64_t seed) {
  Result<Learner> built = LearnerBuilder()
                              .SetMethod(method)
                              .SetBudgetBytes(KiB(2))
                              .SetLambda(1e-4)
                              .SetLearningRate(LearningRate::Constant(0.2))
                              .SetSeed(seed)
                              .Build();
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  Learner learner = std::move(built).value();
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), seed ^ 0x9e77);
  std::vector<Example> stream;
  stream.reserve(examples);
  for (int i = 0; i < examples; ++i) stream.push_back(gen.Next());
  learner.UpdateBatch(stream);
  return learner;
}

std::string Snapshot(const Learner& learner) {
  std::ostringstream buffer(std::ios::binary);
  EXPECT_TRUE(SaveLearner(learner, buffer).ok());
  return std::move(buffer).str();
}

// Every truncation prefix of an enveloped snapshot must be rejected: the
// envelope declares its payload length, so a short stream can never parse.
TEST(SnapshotCorruptionTest, EveryTruncationOfEveryMethodIsRejected) {
  for (const Method m : AllMethods()) {
    const std::string bytes = Snapshot(TrainedLearner(m, 400, 51));
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      std::stringstream in(bytes.substr(0, cut));
      const Result<Learner> r = LoadLearner(in, Opts(51));
      ASSERT_FALSE(r.ok()) << MethodName(m) << " accepted a " << cut
                           << "-byte prefix of " << bytes.size();
    }
  }
}

// Random single-bit flips anywhere in the stream: the envelope CRC catches
// payload damage; header damage fails the magic/version/length checks; and
// a magic-breaking flip drops to the legacy path, which must reject the
// enveloped layout as garbage. Either way: clean Status, no crash.
TEST(SnapshotCorruptionTest, RandomBitFlipsOnEveryMethodAreRejected) {
  Rng rng(97);
  for (const Method m : AllMethods()) {
    const std::string bytes = Snapshot(TrainedLearner(m, 400, 53));
    for (int trial = 0; trial < 200; ++trial) {
      std::string mutated = bytes;
      const size_t pos = static_cast<size_t>(rng.Bounded(mutated.size()));
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << rng.Bounded(8)));
      std::stringstream in(mutated);
      const Result<Learner> r = LoadLearner(in, Opts(53));
      ASSERT_FALSE(r.ok()) << MethodName(m) << " accepted a flip at byte " << pos;
    }
  }
}

// The same fuzz against the *legacy* (unwrapped) layout, which has no
// checksum: corrupt streams may only be rejected by the loaders' own
// validation, so the property under test is purely "no crash, no OOM" —
// a flip in an unchecked float field can legitimately still load.
TEST(SnapshotCorruptionTest, LegacyLayoutFuzzNeverCrashes) {
  Rng rng(101);
  for (const Method m : AllMethods()) {
    const std::string enveloped = Snapshot(TrainedLearner(m, 400, 57));
    const std::string legacy = enveloped.substr(snapshot::kEnvelopeHeaderBytes);
    for (size_t cut = 0; cut < legacy.size(); cut += 7) {
      std::stringstream in(legacy.substr(0, cut));
      (void)LoadLearner(in, Opts(57));  // must return, never crash
    }
    for (int trial = 0; trial < 200; ++trial) {
      std::string mutated = legacy;
      const size_t pos = static_cast<size_t>(rng.Bounded(mutated.size()));
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << rng.Bounded(8)));
      std::stringstream in(mutated);
      (void)LoadLearner(in, Opts(57));  // must return, never crash
    }
  }
}

// A forged envelope declaring a 2^60-byte payload must fail the
// length-vs-stream check *before* any allocation happens — Corruption in
// microseconds, not an OOM kill.
TEST(SnapshotCorruptionTest, HugeDeclaredPayloadFailsBeforeAllocating) {
  std::string header(snapshot::kEnvelopeHeaderBytes, '\0');
  const uint32_t magic = snapshot::kEnvelopeMagic;
  const uint32_t version = snapshot::kEnvelopeVersion;
  const uint64_t length = uint64_t{1} << 60;
  std::memcpy(header.data(), &magic, sizeof(magic));
  std::memcpy(header.data() + 4, &version, sizeof(version));
  std::memcpy(header.data() + 8, &length, sizeof(length));
  std::stringstream in(header + "only a few real bytes");
  const Result<Learner> r = LoadLearner(in, Opts());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("exceeds stream size"), std::string::npos)
      << r.status().ToString();
}

// Legacy (no-envelope) streams have no declared payload length, so their
// loaders bound every count field against the remaining stream bytes: a
// forged WM header claiming a 2^30 x 2^10 table on a tiny stream must be
// rejected without a gigabyte resize.
TEST(SnapshotCorruptionTest, HugeLegacyShapeClaimFailsBeforeAllocating) {
  const std::string enveloped = Snapshot(TrainedLearner(Method::kWmSketch, 200, 59));
  std::string legacy = enveloped.substr(snapshot::kEnvelopeHeaderBytes);
  // Facade payload: magic(4) version(4) tag(1), then the WM payload whose
  // width field sits 4 bytes into it.
  const size_t wm_at = 9;
  const uint32_t huge_width = 1u << 30;
  const uint32_t huge_depth = 4;  // valid depth, so the stream-bound check fires
  std::memcpy(legacy.data() + wm_at + 4, &huge_width, sizeof(huge_width));
  std::memcpy(legacy.data() + wm_at + 8, &huge_depth, sizeof(huge_depth));
  std::stringstream in(legacy);
  const Result<Learner> r = LoadLearner(in, Opts(59));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

// Heap/summary capacity fields are not stream-backed (an empty heap
// occupies no payload bytes), so they are bounded by an absolute cap.
TEST(SnapshotCorruptionTest, HugeCapacityClaimIsRejected) {
  const std::string enveloped =
      Snapshot(TrainedLearner(Method::kSimpleTruncation, 200, 61));
  std::string legacy = enveloped.substr(snapshot::kEnvelopeHeaderBytes);
  // trun payload: magic(4) capacity(8) at facade offset 9.
  const uint64_t huge_capacity = uint64_t{1} << 50;
  std::memcpy(legacy.data() + 9 + 4, &huge_capacity, sizeof(huge_capacity));
  std::stringstream in(legacy);
  const Result<Learner> r = LoadLearner(in, Opts(61));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace wmsketch
