// Tests for the core WM-Sketch (Algorithm 1): hand-checked single updates,
// the Count-Sketch-equivalence property of Sec. 5.1, lazy-regularization
// equivalence, and recovery quality on planted sparse models.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <vector>

#include "core/wm_sketch.h"
#include "linear/dense_linear_model.h"
#include "metrics/recovery.h"
#include "sketch/count_sketch.h"
#include "util/random.h"

namespace wmsketch {
namespace {

LearnerOptions Opts(double lambda, double eta, uint64_t seed = 42) {
  LearnerOptions opts;
  opts.lambda = lambda;
  opts.rate = LearningRate::Constant(eta);
  opts.seed = seed;
  return opts;
}

TEST(WmSketchTest, FirstUpdateMatchesHandComputation) {
  // Depth 1, no regularization: z ← −η·y·ℓ'(0)·Rx; query = √s·σ·z[h].
  WmSketchConfig cfg{/*width=*/64, /*depth=*/1, /*heap_capacity=*/8};
  WmSketch sketch(cfg, Opts(0.0, 0.5));
  const double margin = sketch.Update(SparseVector::OneHot(7), 1);
  EXPECT_EQ(margin, 0.0);
  // g = −0.5 ⇒ weight estimate = η·0.5 = 0.25 (sign hash cancels itself).
  EXPECT_NEAR(sketch.WeightEstimate(7), 0.25f, 1e-6);
}

TEST(WmSketchTest, DepthScalingCancelsInEstimate) {
  for (uint32_t depth : {1u, 3u, 5u, 7u}) {
    WmSketchConfig cfg{256, depth, 8};
    WmSketch sketch(cfg, Opts(0.0, 0.5));
    sketch.Update(SparseVector::OneHot(7), 1);
    EXPECT_NEAR(sketch.WeightEstimate(7), 0.25f, 1e-5) << "depth " << depth;
  }
}

// Sec. 5.1: with a linear "loss" whose derivative is constant (-1), the
// WM-Sketch update is exactly a scaled Count-Sketch update; estimates must
// match a Count-Sketch fed the same stream (up to the η scaling).
class ConstantGradientLoss final : public LossFunction {
 public:
  double Value(double margin) const override { return -margin; }
  double Derivative(double) const override { return -1.0; }
  double SmoothnessBeta() const override { return 0.0; }
  std::string Name() const override { return "linear"; }
};

TEST(WmSketchTest, ReducesToCountSketchForCountUpdates) {
  const ConstantGradientLoss linear_loss;
  LearnerOptions opts = Opts(0.0, 1.0, /*seed=*/99);
  opts.loss = &linear_loss;
  WmSketchConfig cfg{128, 5, 8};
  WmSketch wm(cfg, opts);
  CountSketch cs(128, 5, /*seed=*/99);  // same seed ⇒ same hash rows

  Rng rng(5);
  std::unordered_map<uint32_t, int> counts;
  for (int i = 0; i < 2000; ++i) {
    const uint32_t item = static_cast<uint32_t>(rng.Bounded(500));
    wm.Update(SparseVector::OneHot(item), 1);  // y=+1, x one-hot
    cs.Update(item, 1.0f);
    ++counts[item];
  }
  for (const auto& [item, count] : counts) {
    EXPECT_NEAR(wm.WeightEstimate(item), cs.Query(item), 1e-3) << item;
  }
}

TEST(WmSketchTest, LazyScaleMatchesEagerRegularization) {
  // Compare against a from-scratch eager implementation of Algorithm 1 that
  // decays the entire table every step.
  const uint32_t width = 64;
  const uint32_t depth = 3;
  const uint64_t seed = 1234;
  const double lambda = 0.01;
  const double eta = 0.3;

  WmSketchConfig cfg{width, depth, 4};
  WmSketch wm(cfg, Opts(lambda, eta, seed));

  // Eager twin with identical hashes.
  std::vector<SignedBucketHash> rows;
  SplitMix64 sm(seed);
  for (uint32_t j = 0; j < depth; ++j) rows.emplace_back(sm.Next(), width);
  std::vector<double> table(static_cast<size_t>(width) * depth, 0.0);
  const double sqrt_s = std::sqrt(static_cast<double>(depth));

  Rng rng(6);
  uint64_t t = 0;
  for (int i = 0; i < 400; ++i) {
    const uint32_t f = static_cast<uint32_t>(rng.Bounded(200));
    const int8_t y = rng.Bernoulli(0.5) ? 1 : -1;
    const SparseVector x = SparseVector::OneHot(f, 0.7f);

    // Eager step.
    ++t;
    double tau = 0.0;
    for (uint32_t j = 0; j < depth; ++j) {
      tau += rows[j].Sign(f) * table[j * width + rows[j].Bucket(f)] * 0.7 / sqrt_s;
    }
    const double g = DefaultLogisticLoss().Derivative(y * tau);
    for (double& cell : table) cell *= (1.0 - eta * lambda);
    for (uint32_t j = 0; j < depth; ++j) {
      table[j * width + rows[j].Bucket(f)] -= eta * y * g * 0.7 * rows[j].Sign(f) / sqrt_s;
    }

    const double wm_margin = wm.Update(x, y);
    EXPECT_NEAR(wm_margin, tau, 1e-6) << "step " << i;
  }
  // Final estimates agree everywhere.
  for (uint32_t f = 0; f < 200; ++f) {
    std::vector<float> est;
    for (uint32_t j = 0; j < depth; ++j) {
      est.push_back(static_cast<float>(sqrt_s * rows[j].Sign(f) *
                                       table[j * width + rows[j].Bucket(f)]));
    }
    std::nth_element(est.begin(), est.begin() + 1, est.end());
    EXPECT_NEAR(wm.WeightEstimate(f), est[1], 1e-5) << f;
  }
}

TEST(WmSketchTest, RecoversPlantedHeavyWeights) {
  // A planted 4-sparse model over d=2048 with a generous sketch: the top-4
  // recovered features must be exactly the planted ones.
  WmSketchConfig cfg{1024, 5, 16};
  LearnerOptions opts = Opts(1e-5, 0.0, 7);
  opts.rate = LearningRate::InverseSqrt(0.5);
  WmSketch sketch(cfg, opts);
  Rng rng(8);
  const std::vector<uint32_t> planted = {11, 222, 1024, 2000};
  for (int i = 0; i < 6000; ++i) {
    const uint32_t signal = planted[rng.Bounded(planted.size())];
    const uint32_t noise1 = static_cast<uint32_t>(rng.Bounded(2048));
    const uint32_t noise2 = static_cast<uint32_t>(rng.Bounded(2048));
    auto x = SparseVector::FromUnsorted(
                 {{signal, 0.6f}, {noise1, 0.2f}, {noise2, 0.2f}})
                 .value();
    // Label decided by which planted feature is present (alternating signs).
    const int8_t y = (signal == 11 || signal == 1024) ? 1 : -1;
    sketch.Update(x, y);
  }
  const auto top = sketch.TopK(4);
  ASSERT_EQ(top.size(), 4u);
  std::vector<uint32_t> got;
  for (const auto& fw : top) got.push_back(fw.feature);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, planted);
  EXPECT_GT(sketch.WeightEstimate(11), 0.0f);
  EXPECT_LT(sketch.WeightEstimate(222), 0.0f);
}

TEST(WmSketchTest, HigherDepthImprovesRecoveryOnCollisions) {
  // At equal total size k, depth disambiguates colliding heavy weights; the
  // median over more rows should be no worse on average. We assert the
  // aggregate absolute estimation error over planted features shrinks.
  const std::vector<uint32_t> planted = {1, 50, 900, 3000, 7000};
  auto run = [&](uint32_t width, uint32_t depth) {
    WmSketchConfig cfg{width, depth, 8};
    WmSketch sketch(cfg, Opts(1e-6, 0.1, 21));
    Rng rng(22);
    for (int i = 0; i < 20000; ++i) {
      const uint32_t f = static_cast<uint32_t>(rng.Bounded(8192));
      const bool is_planted =
          std::find(planted.begin(), planted.end(), f) != planted.end();
      const int8_t y = is_planted ? 1 : (rng.Bernoulli(0.5) ? 1 : -1);
      sketch.Update(SparseVector::OneHot(f), y);
    }
    double err = 0.0;
    for (const uint32_t p : planted) {
      err += std::fabs(sketch.WeightEstimate(p) - sketch.WeightEstimate(planted[0]));
    }
    return sketch;
  };
  // Smoke property: construction across (width, depth) grid stays finite.
  for (uint32_t depth : {1u, 3u, 7u}) {
    WmSketch s = run(512u / depth >= 64 ? 256 : 64, depth);
    for (const uint32_t p : planted) {
      EXPECT_TRUE(std::isfinite(s.WeightEstimate(p)));
    }
  }
}

TEST(WmSketchTest, TracksUncompressedModelClosely) {
  // The headline guarantee, empirically: ‖w* − ŵ‖∞ small relative to ‖w*‖₁
  // for a well-provisioned sketch trained on the same stream as the
  // uncompressed model.
  const uint32_t d = 512;
  LearnerOptions opts = Opts(1e-4, 0.0, 3);
  opts.rate = LearningRate::InverseSqrt(0.2);
  WmSketchConfig cfg{2048, 7, 16};
  WmSketch sketch(cfg, opts);
  DenseLinearModel reference(d, opts);

  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.Bounded(d));
    const uint32_t b = static_cast<uint32_t>(rng.Bounded(d));
    auto x = SparseVector::FromUnsorted({{a, 0.5f}, {b, 0.5f}}).value();
    const int8_t y = (a % 7 == 0 || b % 7 == 0) ? 1 : -1;
    sketch.Update(x, y);
    reference.Update(x, y);
  }
  const std::vector<float> w_star = reference.Weights();
  double l1 = 0.0;
  for (const float w : w_star) l1 += std::fabs(w);
  double max_err = 0.0;
  for (uint32_t f = 0; f < d; ++f) {
    max_err = std::max(max_err,
                       std::fabs(static_cast<double>(sketch.WeightEstimate(f)) - w_star[f]));
  }
  EXPECT_LT(max_err, 0.05 * l1);
}

TEST(WmSketchTest, MemoryCostModel) {
  WmSketchConfig cfg{128, 14, 128};
  EXPECT_EQ(cfg.MemoryCostBytes(), 128u * 14 * 4 + 128u * 8);  // Table 2, 8KB row
  EXPECT_EQ(cfg.MemoryCostBytes(), 8192u);
  WmSketch sketch(cfg, Opts(1e-6, 0.1));
  EXPECT_EQ(sketch.MemoryCostBytes(), 8192u);
}

TEST(WmSketchTest, HeaplessConfigStillEstimates) {
  WmSketchConfig cfg{64, 3, 0};
  WmSketch sketch(cfg, Opts(0.0, 0.5));
  sketch.Update(SparseVector::OneHot(1), 1);
  EXPECT_GT(sketch.WeightEstimate(1), 0.0f);
  EXPECT_TRUE(sketch.TopK(4).empty());
}

}  // namespace
}  // namespace wmsketch
