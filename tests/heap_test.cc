// Unit and property tests for the indexed min-heap and the magnitude top-K
// tracker — the data structures under every active-set / truncation method.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/indexed_heap.h"
#include "util/random.h"
#include "util/top_k_heap.h"

namespace wmsketch {
namespace {

// ---------------------------------------------------------- IndexedMinHeap

TEST(IndexedMinHeapTest, EmptyBasics) {
  IndexedMinHeap heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_FALSE(heap.Contains(1));
  EXPECT_EQ(heap.Find(1), nullptr);
}

TEST(IndexedMinHeapTest, InsertFindMin) {
  IndexedMinHeap heap;
  heap.Insert(10, 3.0, 1.0f);
  heap.Insert(20, 1.0, 2.0f);
  heap.Insert(30, 2.0, 3.0f);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_EQ(heap.Min().key, 20u);
  ASSERT_NE(heap.Find(30), nullptr);
  EXPECT_EQ(heap.Find(30)->value, 3.0f);
}

TEST(IndexedMinHeapTest, UpdateMovesEntries) {
  IndexedMinHeap heap;
  heap.Insert(1, 1.0, 0.0f);
  heap.Insert(2, 2.0, 0.0f);
  heap.Insert(3, 3.0, 0.0f);
  heap.Update(1, 10.0, 0.0f);  // demote the old min
  EXPECT_EQ(heap.Min().key, 2u);
  heap.Update(3, 0.5, 0.0f);  // promote
  EXPECT_EQ(heap.Min().key, 3u);
}

TEST(IndexedMinHeapTest, RemoveArbitrary) {
  IndexedMinHeap heap;
  for (uint32_t k = 0; k < 10; ++k) heap.Insert(k, static_cast<double>(k), 0.0f);
  const IndexedMinHeap::Entry removed = heap.Remove(5);
  EXPECT_EQ(removed.key, 5u);
  EXPECT_FALSE(heap.Contains(5));
  EXPECT_EQ(heap.size(), 9u);
  EXPECT_EQ(heap.Min().key, 0u);
}

TEST(IndexedMinHeapTest, RemoveLastSlotEntry) {
  IndexedMinHeap heap;
  heap.Insert(1, 1.0, 0.0f);
  heap.Insert(2, 2.0, 0.0f);
  heap.Remove(2);  // tail position — exercises the no-swap path
  EXPECT_EQ(heap.size(), 1u);
  EXPECT_EQ(heap.Min().key, 1u);
}

TEST(IndexedMinHeapTest, PopMinDrainsInPriorityOrder) {
  IndexedMinHeap heap;
  Rng rng(99);
  for (uint32_t k = 0; k < 200; ++k) heap.Insert(k, rng.NextDouble(), 0.0f);
  double prev = -1.0;
  while (!heap.empty()) {
    const IndexedMinHeap::Entry e = heap.PopMin();
    EXPECT_GE(e.priority, prev);
    prev = e.priority;
  }
}

// Property: against a reference std::multimap model under a random operation
// mix, the heap min always matches.
TEST(IndexedMinHeapTest, RandomOpsAgainstReferenceModel) {
  IndexedMinHeap heap;
  std::map<uint32_t, double> model;  // key -> priority
  Rng rng(7);
  for (int step = 0; step < 20000; ++step) {
    const uint32_t key = static_cast<uint32_t>(rng.Bounded(64));
    const double op = rng.NextDouble();
    if (op < 0.5) {
      const double pri = rng.NextDouble();
      if (model.count(key)) {
        heap.Update(key, pri, 0.0f);
      } else {
        heap.Insert(key, pri, 0.0f);
      }
      model[key] = pri;
    } else if (op < 0.7 && !model.empty() && model.count(key)) {
      heap.Remove(key);
      model.erase(key);
    } else if (!model.empty()) {
      auto min_it = std::min_element(
          model.begin(), model.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      EXPECT_EQ(heap.Min().priority, min_it->second);
    }
    ASSERT_EQ(heap.size(), model.size());
  }
}

// --------------------------------------------------------------- TopKHeap

TEST(TopKHeapTest, OfferBelowCapacityAlwaysAdmits) {
  TopKHeap heap(3);
  EXPECT_FALSE(heap.Offer(1, 0.1f).has_value());
  EXPECT_FALSE(heap.Offer(2, -0.2f).has_value());
  EXPECT_FALSE(heap.Offer(3, 0.05f).has_value());
  EXPECT_TRUE(heap.full());
}

TEST(TopKHeapTest, OfferEvictsSmallestMagnitude) {
  TopKHeap heap(2);
  heap.Offer(1, 1.0f);
  heap.Offer(2, -3.0f);
  auto evicted = heap.Offer(3, 2.0f);  // beats |1.0|
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->feature, 1u);
  EXPECT_EQ(evicted->weight, 1.0f);
  EXPECT_FALSE(heap.Contains(1));
  EXPECT_TRUE(heap.Contains(3));
}

TEST(TopKHeapTest, OfferRejectsSmallerMagnitude) {
  TopKHeap heap(2);
  heap.Offer(1, 1.0f);
  heap.Offer(2, -3.0f);
  EXPECT_FALSE(heap.Offer(3, 0.5f).has_value());
  EXPECT_FALSE(heap.Contains(3));
}

TEST(TopKHeapTest, OfferRefreshesTrackedFeature) {
  TopKHeap heap(2);
  heap.Offer(1, 1.0f);
  heap.Offer(1, -5.0f);  // same feature, new estimate
  EXPECT_EQ(heap.size(), 1u);
  EXPECT_EQ(heap.Get(1).value(), -5.0f);
}

TEST(TopKHeapTest, MagnitudeOrderingIsSignAgnostic) {
  TopKHeap heap(3);
  heap.Offer(1, -10.0f);
  heap.Offer(2, 5.0f);
  heap.Offer(3, -1.0f);
  EXPECT_EQ(heap.Min().feature, 3u);
  const auto top = heap.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].feature, 1u);
  EXPECT_EQ(top[1].feature, 2u);
}

TEST(TopKHeapTest, ScalePreservesOrderAndValues) {
  TopKHeap heap(4);
  heap.Offer(1, 4.0f);
  heap.Offer(2, -2.0f);
  heap.Offer(3, 1.0f);
  heap.Scale(0.5f);
  EXPECT_EQ(heap.Get(1).value(), 2.0f);
  EXPECT_EQ(heap.Get(2).value(), -1.0f);
  EXPECT_EQ(heap.Min().feature, 3u);
}

TEST(TopKHeapTest, AddShiftsWeight) {
  TopKHeap heap(2);
  heap.Set(7, 1.0f);
  heap.Add(7, -3.0f);
  EXPECT_EQ(heap.Get(7).value(), -2.0f);
}

TEST(TopKHeapTest, CapacityOne) {
  TopKHeap heap(1);
  heap.Offer(1, 1.0f);
  auto evicted = heap.Offer(2, 2.0f);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->feature, 1u);
  EXPECT_EQ(heap.TopK(5).size(), 1u);
}

TEST(TopKHeapTest, TopKSortedWithDeterministicTies) {
  TopKHeap heap(4);
  heap.Offer(9, 1.0f);
  heap.Offer(3, -1.0f);
  heap.Offer(5, 2.0f);
  const auto top = heap.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].feature, 5u);
  EXPECT_EQ(top[1].feature, 3u);  // tie |1.0| broken by ascending id
  EXPECT_EQ(top[2].feature, 9u);
}

// Property: offered a long random stream, the heap retains exactly the K
// largest-magnitude final values of distinct keys seen... since Offer keyed
// re-offers replace values, emulate with distinct keys only.
TEST(TopKHeapTest, RetainsLargestOfDistinctStream) {
  const size_t k = 16;
  TopKHeap heap(k);
  Rng rng(5);
  std::vector<FeatureWeight> all;
  for (uint32_t f = 0; f < 500; ++f) {
    const float w = static_cast<float>(rng.NextGaussian());
    all.push_back({f, w});
    heap.Offer(f, w);
  }
  SortByMagnitudeAndTruncate(all, k);
  const auto got = heap.TopK(k);
  ASSERT_EQ(got.size(), k);
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(got[i].feature, all[i].feature) << i;
    EXPECT_EQ(got[i].weight, all[i].weight) << i;
  }
}

}  // namespace
}  // namespace wmsketch
