// Tests for the Active-Set WM-Sketch (Algorithm 2): active-set admission and
// eviction mechanics, the fold-back invariant, exactness for small supports,
// and recovery superiority over the basic WM-Sketch at equal budget.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/awm_sketch.h"
#include "core/wm_sketch.h"
#include "linear/dense_linear_model.h"
#include "metrics/recovery.h"
#include "util/random.h"

namespace wmsketch {
namespace {

LearnerOptions Opts(double lambda, double eta, uint64_t seed = 42) {
  LearnerOptions opts;
  opts.lambda = lambda;
  opts.rate = LearningRate::Constant(eta);
  opts.seed = seed;
  return opts;
}

TEST(AwmSketchTest, FirstFeaturesFillActiveSet) {
  AwmSketchConfig cfg{64, 1, 4};
  AwmSketch sketch(cfg, Opts(0.0, 0.5));
  for (uint32_t f = 0; f < 4; ++f) sketch.Update(SparseVector::OneHot(f), 1);
  EXPECT_EQ(sketch.active_set_size(), 4u);
  for (uint32_t f = 0; f < 4; ++f) EXPECT_TRUE(sketch.InActiveSet(f));
}

TEST(AwmSketchTest, ActiveSetWeightsAreExactForSmallSupport) {
  // With support <= capacity, AWM is an exact online learner: compare to the
  // dense reference on an identical stream.
  const uint32_t d = 16;
  LearnerOptions opts = Opts(0.01, 0.3, 5);
  AwmSketchConfig cfg{64, 1, d};  // capacity covers the whole support
  AwmSketch sketch(cfg, opts);
  DenseLinearModel reference(d, opts);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.Bounded(d));
    const int8_t y = (a < d / 2) ? 1 : -1;
    const SparseVector x = SparseVector::OneHot(a, 0.8f);
    const double ref_margin = reference.Update(x, y);
    const double awm_margin = sketch.Update(x, y);
    ASSERT_NEAR(awm_margin, ref_margin, 1e-5) << "step " << i;
  }
  for (uint32_t f = 0; f < d; ++f) {
    EXPECT_NEAR(sketch.WeightEstimate(f), reference.WeightEstimate(f), 1e-5) << f;
  }
}

TEST(AwmSketchTest, EvictionFoldsExactWeightIntoSketch) {
  AwmSketchConfig cfg{256, 1, 2};
  AwmSketch sketch(cfg, Opts(0.0, 0.5, 11));
  // Fill the active set with two strong features.
  for (int i = 0; i < 8; ++i) {
    sketch.Update(SparseVector::OneHot(100), 1);
    sketch.Update(SparseVector::OneHot(200), 1);
  }
  const float w100 = sketch.WeightEstimate(100);
  ASSERT_TRUE(sketch.InActiveSet(100));
  // Drive a third feature strong enough to evict the weaker one.
  float w_new = 0.0f;
  for (int i = 0; i < 40 && !sketch.InActiveSet(300); ++i) {
    sketch.Update(SparseVector::OneHot(300), 1);
    w_new = sketch.WeightEstimate(300);
  }
  ASSERT_TRUE(sketch.InActiveSet(300));
  EXPECT_GT(w_new, 0.0f);
  // Exactly one of {100, 200} was evicted; its sketch estimate must be close
  // to the exact weight it held (fold-back invariant; depth-1 collisions with
  // feature 300's own tail mass allow small drift).
  const bool evicted_100 = !sketch.InActiveSet(100);
  const uint32_t evicted = evicted_100 ? 100u : 200u;
  EXPECT_TRUE(!sketch.InActiveSet(evicted));
  EXPECT_NEAR(sketch.WeightEstimate(evicted), w100, 0.25f);
}

TEST(AwmSketchTest, PredictionSplitsHeapAndSketch) {
  AwmSketchConfig cfg{128, 1, 1};
  AwmSketch sketch(cfg, Opts(0.0, 0.5, 13));
  sketch.Update(SparseVector::OneHot(1), 1);  // lands in active set
  ASSERT_TRUE(sketch.InActiveSet(1));
  // Second feature trains into the sketch (heap full, too weak to evict
  // after feature 1 strengthens).
  for (int i = 0; i < 6; ++i) sketch.Update(SparseVector::OneHot(1), 1);
  sketch.Update(SparseVector::OneHot(2, 0.1f), 1);
  ASSERT_FALSE(sketch.InActiveSet(2));
  const double margin =
      sketch.PredictMargin(SparseVector::FromUnsorted({{1, 1.0f}, {2, 1.0f}}).value());
  const double expected = static_cast<double>(sketch.WeightEstimate(1)) +
                          static_cast<double>(sketch.WeightEstimate(2));
  EXPECT_NEAR(margin, expected, 1e-6);
}

TEST(AwmSketchTest, RegularizationDecaysBothStores) {
  LearnerOptions opts = Opts(0.1, 0.5, 17);
  AwmSketchConfig cfg{128, 1, 1};
  AwmSketch sketch(cfg, opts);
  sketch.Update(SparseVector::OneHot(1), 1);   // heap member
  for (int i = 0; i < 4; ++i) sketch.Update(SparseVector::OneHot(1), 1);
  sketch.Update(SparseVector::OneHot(2, 0.01f), 1);  // sketch member
  const float heap_w = sketch.WeightEstimate(1);
  const float tail_w = sketch.WeightEstimate(2);
  // An update touching a *disjoint* feature decays both by (1 − ηλ).
  sketch.Update(SparseVector::OneHot(3, 0.01f), 1);
  EXPECT_NEAR(sketch.WeightEstimate(1), heap_w * 0.95f, 1e-6);
  EXPECT_NEAR(sketch.WeightEstimate(2), tail_w * 0.95f, 1e-5);
}

TEST(AwmSketchTest, TopKReturnsActiveSetSortedByMagnitude) {
  AwmSketchConfig cfg{128, 1, 8};
  AwmSketch sketch(cfg, Opts(0.0, 0.5, 19));
  for (int i = 0; i < 1; ++i) sketch.Update(SparseVector::OneHot(1), 1);
  for (int i = 0; i < 3; ++i) sketch.Update(SparseVector::OneHot(2), -1);
  for (int i = 0; i < 6; ++i) sketch.Update(SparseVector::OneHot(3), 1);
  const auto top = sketch.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].feature, 3u);
  EXPECT_EQ(top[1].feature, 2u);
  EXPECT_LT(top[1].weight, 0.0f);
}

TEST(AwmSketchTest, RecoversPlantedModelExactly) {
  // Planted heavy features must all end in the active set with correct signs.
  AwmSketchConfig cfg{512, 1, 16};
  LearnerOptions opts = Opts(1e-5, 0.0, 23);
  opts.rate = LearningRate::InverseSqrt(0.5);
  AwmSketch sketch(cfg, opts);
  Rng rng(24);
  const std::vector<uint32_t> planted = {7, 77, 777, 7777};
  for (int i = 0; i < 8000; ++i) {
    const uint32_t signal = planted[rng.Bounded(planted.size())];
    const uint32_t noise = static_cast<uint32_t>(rng.Bounded(10000));
    auto x = SparseVector::FromUnsorted({{signal, 0.7f}, {noise, 0.3f}}).value();
    const int8_t y = (signal == 7 || signal == 777) ? 1 : -1;
    sketch.Update(x, y);
  }
  for (const uint32_t p : planted) {
    EXPECT_TRUE(sketch.InActiveSet(p)) << p;
  }
  EXPECT_GT(sketch.WeightEstimate(7), 0.2f);
  EXPECT_LT(sketch.WeightEstimate(77), -0.2f);
}

TEST(AwmSketchTest, BeatsWmSketchAtEqualBudgetOnRecovery) {
  // The paper's core empirical claim (Fig. 3), miniaturized: same byte
  // budget, same stream; AWM's top-K recovery error is lower than WM's.
  const uint32_t d = 8192;
  const size_t k_eval = 32;
  LearnerOptions opts = Opts(1e-5, 0.0, 31);
  opts.rate = LearningRate::InverseSqrt(0.3);

  // 2 KB budget: AWM = 128-slot heap + 256-wide depth-1 sketch;
  //              WM  = 128-slot heap + 128-wide depth-2 sketch.
  AwmSketch awm(AwmSketchConfig{256, 1, 128}, opts);
  WmSketch wm(WmSketchConfig{128, 2, 128}, opts);
  ASSERT_EQ(awm.MemoryCostBytes(), wm.MemoryCostBytes());
  DenseLinearModel reference(d, opts);

  auto stream = [&](auto&& consume) {
    Rng rng(32);
    for (int i = 0; i < 30000; ++i) {
      const uint32_t heavy = static_cast<uint32_t>(rng.Bounded(64));
      const uint32_t tail1 = static_cast<uint32_t>(rng.Bounded(d));
      const uint32_t tail2 = static_cast<uint32_t>(rng.Bounded(d));
      auto x = SparseVector::FromUnsorted(
                   {{heavy, 0.5f}, {tail1, 0.25f}, {tail2, 0.25f}})
                   .value();
      const int8_t y = (heavy % 2 == 0) ? 1 : -1;
      consume(x, y);
    }
  };
  stream([&](const SparseVector& x, int8_t y) {
    awm.Update(x, y);
    wm.Update(x, y);
    reference.Update(x, y);
  });

  const std::vector<float> w_star = reference.Weights();
  const double awm_err = RelErrTopK(awm.TopK(k_eval), w_star, k_eval);
  const double wm_err = RelErrTopK(wm.TopK(k_eval), w_star, k_eval);
  EXPECT_GE(wm_err, 1.0);
  EXPECT_GE(awm_err, 1.0);
  EXPECT_LT(awm_err, wm_err);
}

TEST(AwmSketchTest, DeterministicAcrossRuns) {
  auto run = [] {
    AwmSketch sketch(AwmSketchConfig{128, 1, 16}, Opts(1e-4, 0.2, 77));
    Rng rng(78);
    for (int i = 0; i < 2000; ++i) {
      const uint32_t f = static_cast<uint32_t>(rng.Bounded(512));
      sketch.Update(SparseVector::OneHot(f), rng.Bernoulli(0.5) ? 1 : -1);
    }
    return sketch.TopK(16);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].feature, b[i].feature);
    EXPECT_EQ(a[i].weight, b[i].weight);
  }
}

TEST(AwmSketchTest, MemoryCostMatchesTable2) {
  // Table 2's AWM rows: budget = |S|·8 + width·4 at depth 1.
  EXPECT_EQ((AwmSketchConfig{256, 1, 128}).MemoryCostBytes(), 2048u);
  EXPECT_EQ((AwmSketchConfig{512, 1, 256}).MemoryCostBytes(), 4096u);
  EXPECT_EQ((AwmSketchConfig{1024, 1, 512}).MemoryCostBytes(), 8192u);
  EXPECT_EQ((AwmSketchConfig{2048, 1, 1024}).MemoryCostBytes(), 16384u);
  EXPECT_EQ((AwmSketchConfig{4096, 1, 2048}).MemoryCostBytes(), 32768u);
}

TEST(AwmSketchTest, DepthGreaterThanOneSupported) {
  AwmSketchConfig cfg{64, 3, 4};
  AwmSketch sketch(cfg, Opts(1e-5, 0.3, 41));
  Rng rng(42);
  for (int i = 0; i < 3000; ++i) {
    const uint32_t f = static_cast<uint32_t>(rng.Bounded(256));
    sketch.Update(SparseVector::OneHot(f), f < 128 ? 1 : -1);
  }
  for (const auto& fw : sketch.TopK(4)) {
    EXPECT_TRUE(std::isfinite(fw.weight));
  }
}

}  // namespace
}  // namespace wmsketch
